package ftmm

import (
	"fmt"
	"testing"

	"ftmm/internal/analytic"
	"ftmm/internal/disk"
	"ftmm/internal/diskmodel"
	"ftmm/internal/experiments"
	"ftmm/internal/layout"
	"ftmm/internal/parity"
	"ftmm/internal/schemes"
	"ftmm/internal/server"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// --- One benchmark per paper table / figure (EXP index in DESIGN.md) ---

// BenchmarkTable2 regenerates Table 2 (EXP-T2) and reports its headline
// stream counts.
func BenchmarkTable2(b *testing.B) {
	var last *experiments.TableResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Metrics[0].Streams), "SR-streams")
	b.ReportMetric(float64(last.Metrics[3].Streams), "IB-streams")
}

// BenchmarkTable3 regenerates Table 3 (EXP-T3).
func BenchmarkTable3(b *testing.B) {
	var last *experiments.TableResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Metrics[0].Streams), "SR-streams")
}

// BenchmarkKSweep regenerates the §2 k-sweep (EXP-K).
func BenchmarkKSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.KSweep(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMTTFExamples regenerates the inline reliability examples
// (EXP-MTTF).
func BenchmarkMTTFExamples(b *testing.B) {
	var last *experiments.MTTFExamplesResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.MTTFExamples()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.StreamingRAIDYears, "SR-MTTF-years")
}

// BenchmarkFig9a regenerates Figure 9(a) (EXP-F9A).
func BenchmarkFig9a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9a(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9b regenerates Figure 9(b) (EXP-F9B).
func BenchmarkFig9b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9b(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSizing regenerates the §5 worked example (EXP-COST).
func BenchmarkSizing(b *testing.B) {
	var last *experiments.SizingResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Sizing(1200)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Winner.Total), "winner-$")
}

// BenchmarkFig4 runs the staggered-group buffer simulation (EXP-F4).
func BenchmarkFig4(b *testing.B) {
	var last *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.SGPeak), "SG-peak-tracks")
	b.ReportMetric(float64(last.SRPeak), "SR-peak-tracks")
}

// BenchmarkNCFailure runs the Figures 5-7 transition simulation
// (EXP-F5-7).
func BenchmarkNCFailure(b *testing.B) {
	var last *experiments.NCFailureResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.NCFailure()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Lost[schemes.SimpleSwitchover][2]), "simple-lost")
	b.ReportMetric(float64(last.Lost[schemes.AlternateSwitchover][2]), "alternate-lost")
}

// BenchmarkIBShift runs the Figure 8 shift simulation (EXP-F8).
func BenchmarkIBShift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.IBShift(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarlo runs the reliability validation (EXP-MC) at a
// reduced trial count.
func BenchmarkMonteCarlo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MonteCarlo(200); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Engine microbenchmarks: cost of one scheduling cycle per scheme ---

func benchRig(b *testing.B, placement layout.Placement) (*layout.Layout, schemes.Config, []*layout.Object) {
	b.Helper()
	p := diskmodel.Table1()
	const d, c, nObj, groups = 20, 5, 8, 200
	p.Capacity = units.ByteSize(nObj*groups*c/d+groups*c+10) * p.TrackSize
	farm, err := disk.NewFarm(d, c, p)
	if err != nil {
		b.Fatal(err)
	}
	lay, err := layout.ForFarm(farm, placement)
	if err != nil {
		b.Fatal(err)
	}
	trackSize := int(p.TrackSize)
	var objs []*layout.Object
	for i := 0; i < nObj; i++ {
		id := fmt.Sprintf("obj%d", i)
		obj, err := lay.AddObject(id, groups*(c-1), i%lay.Clusters(), units.MPEG1)
		if err != nil {
			b.Fatal(err)
		}
		if err := layout.WriteObject(farm, obj, workload.SyntheticContent(id, groups*(c-1)*trackSize)); err != nil {
			b.Fatal(err)
		}
		objs = append(objs, obj)
	}
	return lay, schemes.Config{Farm: farm, Layout: lay, Rate: units.MPEG1}, objs
}

// benchCycles drives Step b.N times, rebuilding the engine (off the
// clock) whenever its finite streams run out.
func benchCycles(b *testing.B, build func() schemes.Simulator, perCycleBytes int64) {
	b.Helper()
	e := build()
	b.ResetTimer()
	b.SetBytes(perCycleBytes)
	for i := 0; i < b.N; i++ {
		if e.Active() == 0 {
			b.StopTimer()
			e = build()
			b.StartTimer()
		}
		if _, err := e.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCycleStreamingRAID measures one Streaming RAID cycle with 8
// streams (8 parity groups of real bytes moved per cycle).
func BenchmarkCycleStreamingRAID(b *testing.B) {
	_, cfg, objs := benchRig(b, layout.DedicatedParity)
	build := func() schemes.Simulator {
		e, err := schemes.NewStreamingRAID(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range objs {
			if _, err := e.AddStream(o); err != nil {
				b.Fatal(err)
			}
		}
		return e
	}
	benchCycles(b, build, int64(len(objs))*5*50_000)
}

// BenchmarkCycleStaggeredGroup measures one Staggered-group cycle.
func BenchmarkCycleStaggeredGroup(b *testing.B) {
	_, cfg, objs := benchRig(b, layout.DedicatedParity)
	build := func() schemes.Simulator {
		e, err := schemes.NewStaggeredGroup(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range objs {
			if _, err := e.AddStream(o); err != nil {
				b.Fatal(err)
			}
			if _, err := e.Step(); err != nil {
				b.Fatal(err)
			}
		}
		return e
	}
	benchCycles(b, build, int64(len(objs))*50_000/4*5)
}

// BenchmarkCycleNonClustered measures one Non-clustered cycle.
func BenchmarkCycleNonClustered(b *testing.B) {
	_, cfg, objs := benchRig(b, layout.DedicatedParity)
	build := func() schemes.Simulator {
		e, err := schemes.NewNonClustered(cfg, schemes.AlternateSwitchover, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range objs {
			if _, err := e.AddStream(o); err != nil {
				b.Fatal(err)
			}
			if _, err := e.Step(); err != nil {
				b.Fatal(err)
			}
		}
		return e
	}
	benchCycles(b, build, int64(len(objs))*50_000)
}

// BenchmarkCycleNonClusteredDegraded measures a Non-clustered cycle while
// one cluster runs degraded (the reconstruction hot path).
func BenchmarkCycleNonClusteredDegraded(b *testing.B) {
	// Each rebuild needs a farm with the drive still failed, so the rig
	// is rebuilt per engine instance.
	build := func() schemes.Simulator {
		_, cfg, objs := benchRig(b, layout.DedicatedParity)
		e, err := schemes.NewNonClustered(cfg, schemes.AlternateSwitchover, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range objs {
			if _, err := e.AddStream(o); err != nil {
				b.Fatal(err)
			}
			if _, err := e.Step(); err != nil {
				b.Fatal(err)
			}
		}
		if err := e.FailDisk(0); err != nil {
			b.Fatal(err)
		}
		return e
	}
	benchCycles(b, build, 8*50_000)
}

// BenchmarkCycleImprovedBandwidth measures one Improved-bandwidth cycle.
func BenchmarkCycleImprovedBandwidth(b *testing.B) {
	_, cfg, objs := benchRig(b, layout.IntermixedParity)
	build := func() schemes.Simulator {
		e, err := schemes.NewImprovedBandwidth(cfg, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range objs {
			if _, err := e.AddStream(o); err != nil {
				b.Fatal(err)
			}
		}
		return e
	}
	benchCycles(b, build, int64(len(objs))*4*50_000)
}

// --- Substrate microbenchmarks ---

// BenchmarkParityEncode measures XOR-encoding a C=5 parity group of 50 KB
// tracks.
func BenchmarkParityEncode(b *testing.B) {
	blocks := make([][]byte, 4)
	for i := range blocks {
		blocks[i] = workload.SyntheticContent(fmt.Sprintf("b%d", i), 50_000)
	}
	b.SetBytes(4 * 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parity.Encode(blocks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParityReconstruct measures rebuilding one erased 50 KB track
// into a reused destination — the engines' hot path. Accounted like
// Encode (three survivors in, one block out) so the two rows compare.
func BenchmarkParityReconstruct(b *testing.B) {
	blocks := make([][]byte, 4)
	for i := range blocks {
		blocks[i] = workload.SyntheticContent(fmt.Sprintf("b%d", i), 50_000)
	}
	g, err := parity.NewGroup(blocks)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]byte, 50_000)
	b.SetBytes(4 * 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.ReconstructDataInto(dst, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRebuildDrive measures a full parity rebuild of one drive.
func BenchmarkRebuildDrive(b *testing.B) {
	p := diskmodel.Table1()
	p.Capacity = 120 * p.TrackSize
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		farm, err := disk.NewFarm(10, 5, p)
		if err != nil {
			b.Fatal(err)
		}
		lay, err := layout.ForFarm(farm, layout.DedicatedParity)
		if err != nil {
			b.Fatal(err)
		}
		obj, err := lay.AddObject("x", 80, 0, units.MPEG1)
		if err != nil {
			b.Fatal(err)
		}
		if err := layout.WriteObject(farm, obj, workload.SyntheticContent("x", 80*50_000)); err != nil {
			b.Fatal(err)
		}
		drv, _ := farm.Drive(0)
		if err := drv.Fail(); err != nil {
			b.Fatal(err)
		}
		if err := drv.Replace(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := layout.RebuildDrive(farm, lay, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerEndToEnd measures a complete small service run: stage
// two titles from tape, play four streams to completion under Streaming
// RAID with a mid-run failure.
func BenchmarkServerEndToEnd(b *testing.B) {
	p := diskmodel.Table1()
	p.Capacity = 200 * p.TrackSize
	for i := 0; i < b.N; i++ {
		srv, err := server.New(server.Options{
			Disks: 10, ClusterSize: 5, DiskParams: p,
			Scheme: analytic.StreamingRAID,
		})
		if err != nil {
			b.Fatal(err)
		}
		for t := 0; t < 2; t++ {
			id := fmt.Sprintf("t%d", t)
			size := units.ByteSize(80) * p.TrackSize
			if err := srv.AddTitle(id, size, 0, workload.SyntheticContent(id, int(size))); err != nil {
				b.Fatal(err)
			}
		}
		for s := 0; s < 4; s++ {
			if _, _, err := srv.Request(fmt.Sprintf("t%d", s%2)); err != nil {
				b.Fatal(err)
			}
		}
		if err := srv.RunFor(3); err != nil {
			b.Fatal(err)
		}
		if err := srv.FailDisk(1); err != nil {
			b.Fatal(err)
		}
		if err := srv.RunUntilIdle(200); err != nil {
			b.Fatal(err)
		}
		if st := srv.Stats(); st.Hiccups != 0 {
			b.Fatalf("hiccups: %d", st.Hiccups)
		}
	}
}

// BenchmarkIntro regenerates the §1 capacity arithmetic (EXP-INTRO).
func BenchmarkIntro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Intro(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRebuildMode measures the rebuild-mode comparison
// (EXP-REBUILD): online parity rebuild sweeps plus the tape alternative.
func BenchmarkRebuildMode(b *testing.B) {
	var last *experiments.RebuildResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Rebuild()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.ParityCycles[8]), "cycles-at-budget-8")
}

// BenchmarkReliability runs the three-way reliability comparison
// (EXP-REL) at a reduced trial count.
func BenchmarkReliability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Reliability(200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations runs the reserve-depth ablations (EXP-ABL).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablations(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeek runs the seek-order validation of the disk model
// (EXP-SEEK).
func BenchmarkSeek(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Seek(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBandwidth runs the operational bandwidth-overhead validation
// (EXP-BW).
func BenchmarkBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Bandwidth(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPriceSensitivity runs the §5 price sweep (EXP-PRICE).
func BenchmarkPriceSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PriceSensitivity(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPaperScaleStreamingRAID runs Table 2's headline configuration
// operationally: D = 100, C = 5, at the full integrally-schedulable
// capacity of 1040 concurrent MPEG-1 streams (Table 2's global floor
// says 1041, but one cluster would then need 53 tracks per disk per
// cycle against a budget of 52 — the integral per-cluster capacity is
// 52 x 20 = 1040), one failed drive, real bytes moving: each cycle
// reads 1040 x 5 tracks = 260 MB.
func BenchmarkPaperScaleStreamingRAID(b *testing.B) {
	p := diskmodel.Table1()
	const d, c = 100, 5
	const streams = 1040 // Table 2's N_SR = 1041, integrally 52/cluster
	build := func() *schemes.StreamingRAID { return buildPaperScale(b, p, d, c, streams) }
	e := build()
	b.SetBytes(int64(streams) * 5 * 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Active() == 0 {
			b.StopTimer()
			e = build()
			b.StartTimer()
		}
		rep, err := e.Step()
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Hiccups) > 0 {
			b.Fatalf("hiccups at paper scale: %d", len(rep.Hiccups))
		}
	}
}

// buildPaperScale assembles the D=100 farm at full integral capacity
// with one failed drive.
func buildPaperScale(b *testing.B, p diskmodel.Params, d, c, streams int) *schemes.StreamingRAID {
	b.Helper()
	// Each stream needs its own object (many small ones keep placement
	// light): 52 streams per cluster-start, 20 cluster-starts.
	groups := 4
	p.Capacity = units.ByteSize((streams*groups*c)/d+groups*c+50) * p.TrackSize
	farm, err := disk.NewFarm(d, c, p)
	if err != nil {
		b.Fatal(err)
	}
	lay, err := layout.ForFarm(farm, layout.DedicatedParity)
	if err != nil {
		b.Fatal(err)
	}
	trackSize := int(p.TrackSize)
	e, err := schemes.NewStreamingRAID(schemes.Config{Farm: farm, Layout: lay, Rate: units.MPEG1})
	if err != nil {
		b.Fatal(err)
	}
	admitted := 0
	for i := 0; admitted < streams; i++ {
		id := fmt.Sprintf("o%d", i)
		obj, err := lay.AddObject(id, groups*(c-1), i%lay.Clusters(), units.MPEG1)
		if err != nil {
			b.Fatal(err)
		}
		if err := layout.WriteObject(farm, obj, workload.SyntheticContent(id, groups*(c-1)*trackSize)); err != nil {
			b.Fatal(err)
		}
		if _, err := e.AddStream(obj); err != nil {
			b.Fatalf("admission of stream %d rejected (engine capacity below Table 2's N)", admitted)
		}
		admitted++
	}
	// The 1041st stream must NOT fit (per-cluster budget 52 x 20).
	extra, err := lay.AddObject("extra", groups*(c-1), 0, units.MPEG1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.AddStream(extra); err == nil {
		b.Fatal("stream 1041 admitted beyond the integral schedule")
	}
	if err := e.FailDisk(7); err != nil {
		b.Fatal(err)
	}
	return e
}
