// Package ftmm is a from-scratch Go reproduction of "Fault Tolerant
// Design of Multimedia Servers" (Berson, Golubchik, Muntz — SIGMOD 1995):
// the four parity-based fault-tolerance schemes for video-on-demand disk
// farms (Streaming RAID, Staggered-group, Non-clustered, and
// Improved-bandwidth), the analytic model comparing them, the cost model
// used for system sizing, and byte-accurate cycle-driven simulators of
// all four schemes over a simulated disk farm and tape library.
//
// The implementation lives under internal/ (see DESIGN.md for the layer
// map); cmd/ftmmbench regenerates every table and figure of the paper's
// evaluation, cmd/ftmmsim runs ad-hoc failure scenarios, and cmd/ftmmcost
// explores the sizing model. The benchmarks in this package, one per
// paper artifact, both time the pipelines and re-assert the headline
// numbers.
package ftmm
