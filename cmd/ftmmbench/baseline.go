// Performance-baseline mode: -bench-baseline <path> runs the data-path
// benchmark suite (one scheduling cycle per scheme, the netserve
// loopback delivery path, plus the parity substrate) via
// testing.Benchmark and writes ns/op, allocs/op, and the stream count
// to a BENCH_*.json file.
//
// If the output file already exists, its previous "benchmarks" section
// is carried forward as "pre_change" (unless it already carries one), so
// a committed baseline records both sides of an optimisation: write the
// old numbers once, re-run after the change, diff inside one file.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"ftmm/internal/chaos"
	"ftmm/internal/cluster"
	"ftmm/internal/disk"
	"ftmm/internal/diskmodel"
	"ftmm/internal/layout"
	"ftmm/internal/metrics"
	"ftmm/internal/netserve"
	"ftmm/internal/node"
	"ftmm/internal/parity"
	"ftmm/internal/schemes"
	"ftmm/internal/server"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// benchEntry is one benchmark's result in the baseline file.
type benchEntry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	// Streams is the number of active streams the engine serves during
	// the measured cycles (0 for substrate microbenchmarks).
	Streams int `json:"streams"`
	// Extra carries b.ReportMetric columns — for the fan-out rows, the
	// pipeline phase breakdown (mean read/stage µs per cycle and overlap
	// percentage). Informational; the compare gate ignores it.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// baselineFile is the BENCH_*.json wire shape.
type baselineFile struct {
	Schema     string       `json:"schema"`
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	Benchmarks []benchEntry `json:"benchmarks"`
	// Capacity holds the scheme-comparison section: degraded-mode
	// stream capacity and measured rebuild window per scheme (see
	// capacity.go). Deterministic counts, unlike the timing rows.
	Capacity []capacityEntry `json:"capacity,omitempty"`
	// PreChange holds the numbers from before the change under test,
	// carried forward from the file's previous contents.
	PreChange []benchEntry `json:"pre_change,omitempty"`
}

// baselineRig mirrors the bench_test.go rig: 20 drives in clusters of 5,
// 8 objects of 200 parity groups each.
func baselineRig(tb testing.TB, placement layout.Placement) (schemes.Config, []*layout.Object) {
	p := diskmodel.Table1()
	const d, c, nObj, groups = 20, 5, 8, 200
	p.Capacity = units.ByteSize(nObj*groups*c/d+groups*c+10) * p.TrackSize
	farm, err := disk.NewFarm(d, c, p)
	if err != nil {
		tb.Fatal(err)
	}
	lay, err := layout.ForFarm(farm, placement)
	if err != nil {
		tb.Fatal(err)
	}
	trackSize := int(p.TrackSize)
	var objs []*layout.Object
	for i := 0; i < nObj; i++ {
		id := fmt.Sprintf("obj%d", i)
		obj, err := lay.AddObject(id, groups*(c-1), i%lay.Clusters(), units.MPEG1)
		if err != nil {
			tb.Fatal(err)
		}
		if err := layout.WriteObject(farm, obj, workload.SyntheticContent(id, groups*(c-1)*trackSize)); err != nil {
			tb.Fatal(err)
		}
		objs = append(objs, obj)
	}
	return schemes.Config{Farm: farm, Layout: lay, Rate: units.MPEG1}, objs
}

// declusteredBaselineRig mirrors baselineRig for the fifth scheme: the
// same catalog shape (8 objects of 200 parity groups of C=5) but placed
// on two 9-drive declustering groups via the complete (9,5) design.
func declusteredBaselineRig(tb testing.TB) (schemes.Config, []*layout.Object) {
	p := diskmodel.Table1()
	const d, g, c, nObj, groups = 18, 9, 5, 8, 200
	p.Capacity = units.ByteSize(nObj*groups*c/d+groups*c+10) * p.TrackSize
	farm, err := disk.NewFarm(d, g, p)
	if err != nil {
		tb.Fatal(err)
	}
	lay, err := layout.ForFarmDeclustered(farm, c)
	if err != nil {
		tb.Fatal(err)
	}
	trackSize := int(p.TrackSize)
	var objs []*layout.Object
	for i := 0; i < nObj; i++ {
		id := fmt.Sprintf("obj%d", i)
		obj, err := lay.AddObject(id, groups*(c-1), i%lay.Clusters(), units.MPEG1)
		if err != nil {
			tb.Fatal(err)
		}
		if err := layout.WriteObject(farm, obj, workload.SyntheticContent(id, groups*(c-1)*trackSize)); err != nil {
			tb.Fatal(err)
		}
		objs = append(objs, obj)
	}
	return schemes.Config{Farm: farm, Layout: lay, Rate: units.MPEG1}, objs
}

// benchEngineCycles drives Step b.N times, rebuilding the engine (off
// the clock) whenever its finite streams run out.
func benchEngineCycles(b *testing.B, build func(tb testing.TB) schemes.Simulator, perCycleBytes int64) {
	e := build(b)
	b.SetBytes(perCycleBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Active() == 0 {
			b.StopTimer()
			e = build(b)
			b.StartTimer()
		}
		if _, err := e.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// admitAll adds every object as a stream; prime additionally steps once
// per admission, matching the staggered-admission engines' benchmarks.
func admitAll(tb testing.TB, e schemes.Simulator, objs []*layout.Object, prime bool) {
	for _, o := range objs {
		if _, err := e.AddStream(o); err != nil {
			tb.Fatal(err)
		}
		if prime {
			if _, err := e.Step(); err != nil {
				tb.Fatal(err)
			}
		}
	}
}

// baselineSpec names one benchmark in the suite.
type baselineSpec struct {
	name    string
	streams int
	run     func(b *testing.B)
}

const baselineTrack = 50_000 // Table 1 track size in bytes

func baselineSpecs() []baselineSpec {
	const nObj = 8
	return []baselineSpec{
		{"CycleStreamingRAID", nObj, func(b *testing.B) {
			cfg, objs := baselineRig(b, layout.DedicatedParity)
			benchEngineCycles(b, func(tb testing.TB) schemes.Simulator {
				e, err := schemes.NewStreamingRAID(cfg)
				if err != nil {
					tb.Fatal(err)
				}
				admitAll(tb, e, objs, false)
				return e
			}, nObj*5*baselineTrack)
		}},
		{"CycleStaggeredGroup", nObj, func(b *testing.B) {
			cfg, objs := baselineRig(b, layout.DedicatedParity)
			benchEngineCycles(b, func(tb testing.TB) schemes.Simulator {
				e, err := schemes.NewStaggeredGroup(cfg)
				if err != nil {
					tb.Fatal(err)
				}
				admitAll(tb, e, objs, true)
				return e
			}, nObj*baselineTrack/4*5)
		}},
		{"CycleNonClustered", nObj, func(b *testing.B) {
			cfg, objs := baselineRig(b, layout.DedicatedParity)
			benchEngineCycles(b, func(tb testing.TB) schemes.Simulator {
				e, err := schemes.NewNonClustered(cfg, schemes.AlternateSwitchover, 2)
				if err != nil {
					tb.Fatal(err)
				}
				admitAll(tb, e, objs, true)
				return e
			}, nObj*baselineTrack)
		}},
		{"CycleNonClusteredDegraded", nObj, func(b *testing.B) {
			// FailDisk mutates the farm, so each engine instance needs a
			// fresh rig.
			benchEngineCycles(b, func(tb testing.TB) schemes.Simulator {
				cfg, objs := baselineRig(tb, layout.DedicatedParity)
				e, err := schemes.NewNonClustered(cfg, schemes.AlternateSwitchover, 2)
				if err != nil {
					tb.Fatal(err)
				}
				admitAll(tb, e, objs, true)
				if err := e.FailDisk(0); err != nil {
					tb.Fatal(err)
				}
				return e
			}, nObj*baselineTrack)
		}},
		{"CycleImprovedBandwidth", nObj, func(b *testing.B) {
			cfg, objs := baselineRig(b, layout.IntermixedParity)
			benchEngineCycles(b, func(tb testing.TB) schemes.Simulator {
				e, err := schemes.NewImprovedBandwidth(cfg, 2)
				if err != nil {
					tb.Fatal(err)
				}
				admitAll(tb, e, objs, false)
				return e
			}, nObj*4*baselineTrack)
		}},
		{"CycleDeclustered", nObj, func(b *testing.B) {
			cfg, objs := declusteredBaselineRig(b)
			benchEngineCycles(b, func(tb testing.TB) schemes.Simulator {
				e, err := schemes.NewDeclustered(cfg)
				if err != nil {
					tb.Fatal(err)
				}
				admitAll(tb, e, objs, false)
				return e
			}, nObj*5*baselineTrack)
		}},
		{"NetserveLoopbackStream", 1, func(b *testing.B) {
			// End-to-end network delivery, steady state: one client streams
			// long titles over loopback TCP with virtual-clock pacing and
			// reused payload buffers; the op is one TRACK frame arriving at
			// the client, with dial/admit amortized off the timer. The
			// number is protocol + socket cost of the zero-copy write path.
			ns, names, trackSize, _ := netserveBenchRig(b, 1, 128)
			defer ns.Close()
			dial := func() *netserve.Client {
				cl, err := netserve.Dial(ns.Addr().String(), 30*time.Second)
				if err != nil {
					b.Fatal(err)
				}
				cl.ReuseBuffers(true)
				if _, err := cl.Admit(names[0]); err != nil {
					b.Fatal(err)
				}
				return cl
			}
			cl := dial()
			defer func() { cl.Close() }()
			b.SetBytes(int64(trackSize))
			b.ResetTimer()
			for delivered := 0; delivered < b.N; {
				ev, err := cl.Next()
				if err != nil {
					b.Fatal(err)
				}
				switch {
				case ev.Bye != nil:
					b.StopTimer()
					cl.Close()
					cl = dial()
					b.StartTimer()
				case ev.Hiccup != nil:
					b.Fatalf("hiccup: %+v", ev.Hiccup)
				default:
					delivered++
				}
			}
		}},
		{"NetserveFanout64", 64, func(b *testing.B) {
			// Fan-out: 64 concurrent sessions over loopback, 8 per title.
			// Like the wider fan-out rows, the cohort's dials and ADMIT
			// handshakes run off the timer (64 TCP dials alone cost more
			// allocations than a whole title's delivery) and the op is one
			// delivered TRACK frame, so MB/s is the aggregate delivery rate
			// and allocs/op isolates the steady-state zero-copy path —
			// refcounted tracks shared across sessions, one vectored write
			// per session per cycle — from connection setup.
			benchFanoutTracks(b, 64, 8, 8)
		}},
		{"NetserveFanout1k", 1000, func(b *testing.B) {
			// Wide fan-out on the Zipf head: 1000 concurrent sessions, 100
			// per title, admitted in lockstep so every title's pack is
			// served from one shared merged burst per cycle. One op is one
			// TRACK frame arriving at some client; allocs/op must stay flat
			// in the session count (the gate pins it near the single-stream
			// row), which is only possible when staging, headers, and
			// payload references are shared across the pack.
			benchFanoutTracks(b, 1000, 10, 24)
		}},
		{"NetserveFlashCrowd", 96, func(b *testing.B) {
			// Flash crowd with batched starts: 96 sessions, 24 per title,
			// all arriving inside a 2-cycle admission window, so each
			// title's crowd flushes as one batch onto one shared staged
			// run. The merged-starts/run column is the acceptance number
			// (it must be well above 1 for the batching to mean anything);
			// wait-p50/p99-ms are the client-visible cost of the window.
			benchFlashCrowdTracks(b, 96, 4, 8, 2)
		}},
		{"ClusterFanout24", 24, func(b *testing.B) {
			// Sharded fan-out: 24 concurrent sessions admitted through the
			// coordinator across a 3-node cluster (each node holds its
			// rendezvous placement slice, cold titles on 2 replicas). One
			// op is a full wave — every client redirected to a holder and
			// streaming its whole title — so the number is the admission
			// plane's routing overhead plus three nodes' delivery paths
			// running concurrently.
			const fanout = 24
			nodes, coord, names, titleSize := clusterBenchRig(b, 3, 8, 8)
			defer coord.Close()
			defer func() {
				for _, n := range nodes {
					n.Close()
				}
			}()
			b.SetBytes(int64(fanout) * int64(titleSize))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make(chan error, fanout)
				for s := 0; s < fanout; s++ {
					wg.Add(1)
					go func(title string) {
						defer wg.Done()
						if err := streamViaOnce(coord.Addr().String(), title); err != nil {
							errs <- err
						}
					}(names[s%len(names)])
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
			}
		}},
		{"ParityEncode", 0, func(b *testing.B) {
			blocks := parityBlocks(4)
			b.SetBytes(4 * baselineTrack)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := parity.Encode(blocks); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ParityReconstruct", 0, func(b *testing.B) {
			// Allocation-free reconstruction into a reused block; the op
			// touches four blocks (three survivors in, one rebuilt out),
			// accounted like Encode so the two rows' MB/s are comparable.
			g, err := parity.NewGroup(parityBlocks(4))
			if err != nil {
				b.Fatal(err)
			}
			dst := make([]byte, baselineTrack)
			b.SetBytes(4 * baselineTrack)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := g.ReconstructDataInto(dst, 2); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ParityXORInto", 0, func(b *testing.B) {
			blocks := parityBlocks(2)
			b.SetBytes(baselineTrack)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := parity.XORInto(blocks[0], blocks[1]); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ParityXORIntoWord", 0, func(b *testing.B) {
			blocks := parityBlocks(2)
			b.SetBytes(baselineTrack)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := parity.XORIntoWord(blocks[0], blocks[1]); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ParityXORIntoBlocked", 0, func(b *testing.B) {
			blocks := parityBlocks(2)
			b.SetBytes(baselineTrack)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := parity.XORIntoBlocked(blocks[0], blocks[1]); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ParityXORIntoRef", 0, func(b *testing.B) {
			blocks := parityBlocks(2)
			b.SetBytes(baselineTrack)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := parity.XORIntoRef(blocks[0], blocks[1]); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// netserveBenchRig builds a loopback SR farm with the given catalog
// shape and a virtual-clock netserve front end (8 drives in clusters of
// 4, titles spread across both clusters).
func netserveBenchRig(tb testing.TB, titles, groups int) (*netserve.NetServer, []string, int, int) {
	scheme, policy, err := server.ParseScheme("sr")
	if err != nil {
		tb.Fatal(err)
	}
	const d, c, reserve = 8, 4, 2
	p := diskmodel.Table1()
	tracksPerTitle := groups * c
	p.Capacity = units.ByteSize(titles*c*tracksPerTitle/d+tracksPerTitle+50) * p.TrackSize
	srv, err := server.New(server.Options{
		Disks: d, ClusterSize: c,
		DiskParams: p, Scheme: scheme, K: reserve, NCPolicy: policy,
	})
	if err != nil {
		tb.Fatal(err)
	}
	trackSize := int(p.TrackSize)
	titleSize := groups * (c - 1) * trackSize
	names := workload.ObjectNames("bench", titles)
	for i, id := range names {
		if err := srv.AddTitle(id, units.ByteSize(titleSize), i, workload.SyntheticContent(id, titleSize)); err != nil {
			tb.Fatal(err)
		}
	}
	// The virtual clock steps cycles back to back with no pacing delay,
	// so the send queue is the only flow control: it must hold a whole
	// title's bursts or the engine outruns the clients and sheds them.
	ns, err := netserve.New(netserve.Options{Server: srv, Clock: netserve.VirtualClock(), SendQueue: groups + 8})
	if err != nil {
		tb.Fatal(err)
	}
	return ns, names, trackSize, titleSize
}

// fanoutBenchRig is netserveBenchRig's manual-clock sibling, sized for
// very wide fan-out: the admission budget is lifted to fanout slots per
// disk (the row measures the delivery plane, not the paper's admission
// bound — with merged reads the physical load is per title, not per
// session), there is no pacing clock (the bench drives StepCycle), and
// the send queue holds a whole title so no client can be shed however
// fast cycles are pushed.
func fanoutBenchRig(tb testing.TB, fanout, titles, groups, batchCycles int) (*netserve.NetServer, *server.Server, []string, int) {
	scheme, policy, err := server.ParseScheme("sr")
	if err != nil {
		tb.Fatal(err)
	}
	const d, c, reserve = 8, 4, 2
	p := diskmodel.Table1()
	tracksPerTitle := groups * c
	p.Capacity = units.ByteSize(titles*c*tracksPerTitle/d+tracksPerTitle+50) * p.TrackSize
	srv, err := server.New(server.Options{
		Disks: d, ClusterSize: c,
		DiskParams: p, Scheme: scheme, K: reserve, NCPolicy: policy,
		SlotsPerDisk: fanout,
	})
	if err != nil {
		tb.Fatal(err)
	}
	trackSize := int(p.TrackSize)
	titleSize := groups * (c - 1) * trackSize
	names := workload.ObjectNames("bench", titles)
	for i, id := range names {
		if err := srv.AddTitle(id, units.ByteSize(titleSize), i, workload.SyntheticContent(id, titleSize)); err != nil {
			tb.Fatal(err)
		}
	}
	ns, err := netserve.New(netserve.Options{Server: srv, SendQueue: groups + 8, BatchCycles: batchCycles})
	if err != nil {
		tb.Fatal(err)
	}
	return ns, srv, names, trackSize
}

// benchFanoutTracks drives the fan-out rows: admit the whole cohort off
// the timer (fanout sessions, round-robin across the titles, all in the
// same cycle so same-title packs stay in lockstep), then step cycles
// until b.N tracks have gone out, re-admitting a fresh cohort whenever
// the titles run dry. The op is one delivered TRACK frame, counted
// across all sessions, so SetBytes(trackSize) makes MB/s the aggregate
// delivery rate.
func benchFanoutTracks(b *testing.B, fanout, titles, groups int) {
	const clusterSize = 4 // fanoutBenchRig's farm shape
	perCycle := fanout * (clusterSize - 1)
	ns, srv, names, trackSize := fanoutBenchRig(b, fanout, titles, groups, 0)
	defer ns.Close()
	b.SetBytes(int64(trackSize))
	b.ResetTimer()
	for delivered := 0; delivered < b.N; {
		b.StopTimer()
		clients := make([]*netserve.Client, fanout)
		for i := range clients {
			cl, err := netserve.Dial(ns.Addr().String(), 30*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			cl.ReuseBuffers(true)
			if _, err := cl.Admit(names[i%len(names)]); err != nil {
				b.Fatal(err)
			}
			clients[i] = cl
		}
		var wg sync.WaitGroup
		var finished atomic.Int32
		errs := make(chan error, fanout)
		for _, cl := range clients {
			wg.Add(1)
			go func(cl *netserve.Client) {
				defer wg.Done()
				defer finished.Add(1)
				defer cl.Close()
				for {
					ev, err := cl.Next()
					if err != nil {
						errs <- err
						return
					}
					switch {
					case ev.Hiccup != nil:
						errs <- fmt.Errorf("hiccup: %+v", ev.Hiccup)
						return
					case ev.Bye != nil:
						if ev.Bye.Reason != "finished" {
							errs <- fmt.Errorf("bye %q", ev.Bye.Reason)
						}
						return
					}
				}
			}(cl)
		}
		b.StartTimer()
		start := time.Now()
		for cyc := 0; finished.Load() < int32(fanout) && delivered < b.N; cyc++ {
			if err := ns.StepCycle(); err != nil {
				b.Fatal(err)
			}
			if cyc < groups {
				delivered += perCycle
			} else {
				// The whole title is pushed (or queued); the cohort is
				// draining. Stepping is an idle no-op now, so yield.
				time.Sleep(200 * time.Microsecond)
				if time.Since(start) > 2*time.Minute {
					b.Fatal("fan-out cohort never drained")
				}
			}
		}
		b.StopTimer()
		if finished.Load() != int32(fanout) {
			// b.N reached mid-title: unwind the cohort off the clock. The
			// forced closes make the consumers' read errors expected, so
			// they are dropped rather than checked.
			for _, cl := range clients {
				cl.Close()
			}
			wg.Wait()
		} else {
			wg.Wait()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
		}
		b.StartTimer()
	}
	b.StopTimer()
	reportPhases(b, srv.Metrics())
}

// benchFlashCrowdTracks drives the flash-crowd row: the front end runs
// with BatchCycles, so every fresh ADMIT parks in its title's batch and
// the whole same-title pack starts in lockstep on one shared staged
// run. The cohort dials off the timer and the clock only starts once
// every connection is parked — the batch window is measured in engine
// cycles, which advance only under the bench's StepCycle, so each
// title's crowd lands in exactly one batch. One op is one TRACK frame
// arriving at some client; the extra columns report the merge payoff —
// mean batched starts per staged run and the bucket-resolution
// batch-wait percentiles, the same numbers /metricsz serves from
// net_batched_starts, net_batch_runs, and net_batch_wait_ms.
func benchFlashCrowdTracks(b *testing.B, fanout, titles, groups, batchCycles int) {
	ns, srv, names, trackSize := fanoutBenchRig(b, fanout, titles, groups, batchCycles)
	defer ns.Close()
	b.SetBytes(int64(trackSize))
	var delivered atomic.Int64
	b.ResetTimer()
	for delivered.Load() < int64(b.N) {
		b.StopTimer()
		clients := make([]*netserve.Client, fanout)
		for i := range clients {
			cl, err := netserve.Dial(ns.Addr().String(), 30*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			cl.ReuseBuffers(true)
			clients[i] = cl
		}
		var wg sync.WaitGroup
		var finished atomic.Int32
		errs := make(chan error, fanout)
		for i, cl := range clients {
			wg.Add(1)
			go func(i int, cl *netserve.Client) {
				defer wg.Done()
				defer finished.Add(1)
				defer cl.Close()
				// Admit blocks until the batch flushes under a StepCycle.
				if _, err := cl.Admit(names[i%len(names)]); err != nil {
					errs <- err
					return
				}
				for {
					ev, err := cl.Next()
					if err != nil {
						errs <- err
						return
					}
					switch {
					case ev.Hiccup != nil:
						errs <- fmt.Errorf("hiccup: %+v", ev.Hiccup)
						return
					case ev.Bye != nil:
						if ev.Bye.Reason != "finished" {
							errs <- fmt.Errorf("bye %q", ev.Bye.Reason)
						}
						return
					default:
						delivered.Add(1)
					}
				}
			}(i, cl)
		}
		// The crowd must be fully parked before the window starts
		// closing, or stragglers would spill into a second batch.
		for start := time.Now(); ns.PendingStarts() < fanout; {
			if finished.Load() > 0 {
				b.Fatal("client died during flash-crowd admission")
			}
			if time.Since(start) > time.Minute {
				b.Fatalf("only %d/%d starts parked", ns.PendingStarts(), fanout)
			}
			time.Sleep(50 * time.Microsecond)
		}
		b.StartTimer()
		start := time.Now()
		for cyc := 0; finished.Load() < int32(fanout) && delivered.Load() < int64(b.N); cyc++ {
			if err := ns.StepCycle(); err != nil {
				b.Fatal(err)
			}
			if cyc > batchCycles+groups {
				// Everything is pushed (or queued); the cohort is
				// draining. Stepping is an idle no-op now, so yield.
				time.Sleep(200 * time.Microsecond)
				if time.Since(start) > 2*time.Minute {
					b.Fatal("flash-crowd cohort never drained")
				}
			}
		}
		b.StopTimer()
		if finished.Load() != int32(fanout) {
			// b.N reached mid-title: unwind the cohort off the clock.
			for _, cl := range clients {
				cl.Close()
			}
			wg.Wait()
		} else {
			wg.Wait()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
		}
		b.StartTimer()
	}
	b.StopTimer()
	reportPhases(b, srv.Metrics())
	snap := srv.Metrics().Snapshot()
	if runs := snap.Counters["net_batch_runs"]; runs > 0 {
		b.ReportMetric(float64(snap.Counters["net_batched_starts"])/float64(runs), "merged-starts/run")
	}
	if h := snap.Histograms["net_batch_wait_ms"]; h.Count > 0 {
		b.ReportMetric(float64(h.P50), "wait-p50-ms")
		b.ReportMetric(float64(h.P99), "wait-p99-ms")
	}
}

// reportPhases turns the front end's pipeline histograms into extra
// benchmark columns: mean engine-read and staging-pass time per cycle
// (µs) and the mean share of each read that overlapped the previous
// cycle's staging (the pipeline's payoff, in percent). The columns ride
// into the baseline file's "extra" field; they are informational, not
// gated.
func reportPhases(b *testing.B, m *metrics.Registry) {
	for _, p := range []struct{ hist, unit string }{
		{"pipe_read_us", "read-us/cycle"},
		{"pipe_stage_us", "stage-us/cycle"},
		{"pipe_overlap_pct", "overlap-%"},
	} {
		if h := m.Histogram(p.hist); h.Count() > 0 {
			b.ReportMetric(h.Mean(), p.unit)
		}
	}
}

// clusterBenchRig builds nNodes loopback shards behind a coordinator,
// all on virtual clocks: each node serves its rendezvous placement
// slice of the catalog (8 drives in clusters of 4 per node, 2 replicas
// per title), and one heartbeat tick disseminates the initial view.
func clusterBenchRig(tb testing.TB, nNodes, titles, groups int) ([]*node.Node, *netserve.Coordinator, []string, int) {
	names := workload.ObjectNames("bench", titles)
	ids := make([]string, nNodes)
	for i := range ids {
		ids[i] = fmt.Sprintf("node%d", i)
	}
	plCfg := cluster.PlacementConfig{Seed: 1, Replicas: 2}
	pl := cluster.Assign(names, ids, plCfg)
	var nodes []*node.Node
	var members []cluster.Member
	for _, id := range ids {
		n, err := node.Start(node.Config{
			ID: id, Scheme: "sr",
			Disks: 8, Cluster: 4, K: 2,
			Titles: pl.Titles(id), Groups: groups,
			Clock: netserve.VirtualClock(), SendQueue: groups + 8,
		})
		if err != nil {
			tb.Fatal(err)
		}
		nodes = append(nodes, n)
		members = append(members, cluster.Member{ID: id, Addr: n.Addr()})
	}
	coord, err := netserve.NewCoordinator(netserve.CoordinatorOptions{
		Nodes: members, Titles: names, Placement: plCfg,
	})
	if err != nil {
		tb.Fatal(err)
	}
	coord.Tick()
	return nodes, coord, names, nodes[0].TitleSize()
}

// streamViaOnce admits through the coordinator (following its REDIRECT
// to the serving node, retrying transient capacity rejections) and
// consumes one full title with reused buffers.
func streamViaOnce(addr, title string) error {
	var cl *netserve.Client
	for attempt := 0; ; attempt++ {
		c, _, err := netserve.AdmitVia(addr, title, 30*time.Second)
		if err != nil {
			var rej *netserve.RejectedError
			if errors.As(err, &rej) && rej.Reject.RetryAfterMillis >= 0 && attempt < 10000 {
				time.Sleep(200 * time.Microsecond)
				continue
			}
			return err
		}
		c.ReuseBuffers(true)
		cl = c
		break
	}
	defer cl.Close()
	for {
		ev, err := cl.Next()
		if err != nil {
			return err
		}
		if ev.Bye != nil {
			if ev.Bye.Reason != "finished" {
				return fmt.Errorf("stream %s ended with bye %q", title, ev.Bye.Reason)
			}
			return nil
		}
	}
}

// fanout10kSpec is the ten-thousand-session row: ~20k sockets on one
// box, so it first raises RLIMIT_NOFILE (needs privilege if the hard
// limit is below the ask) and runs under a longer bench time so the
// iteration count climbs past one cohort's first cycle. Part of the
// committed baseline since BENCH_6; -bench-fanout10k=false skips it on
// fd-limited machines (the compare gate tolerates the missing row).
func fanout10kSpec() baselineSpec {
	return baselineSpec{"NetserveFanout10k", 10_000, func(b *testing.B) {
		if err := raiseFDLimit(25_000); err != nil {
			// Unprivileged containers often pin the hard limit below the
			// ask; the row skips rather than failing the whole run, and
			// runBaseline drops the empty result from the file.
			// testing.Benchmark swallows skip logs, hence the direct print.
			fmt.Fprintf(os.Stderr, "NetserveFanout10k: %v (skipping row)\n", err)
			b.Skip(err)
		}
		benchFanoutTracks(b, 10_000, 10, 12)
	}}
}

// raiseFDLimit lifts the soft (and if needed, hard) RLIMIT_NOFILE to n.
func raiseFDLimit(n uint64) error {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return err
	}
	if lim.Cur >= n {
		return nil
	}
	want := lim
	want.Cur = n
	if want.Max < n {
		want.Max = n // raising the hard limit needs privilege; fails cleanly without it
	}
	if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &want); err != nil {
		return fmt.Errorf("raise RLIMIT_NOFILE %d -> %d for the 10k fan-out: %w", lim.Cur, n, err)
	}
	return nil
}

func parityBlocks(n int) [][]byte {
	blocks := make([][]byte, n)
	for i := range blocks {
		blocks[i] = workload.SyntheticContent(fmt.Sprintf("b%d", i), baselineTrack)
	}
	return blocks
}

// specScheme maps scheme-specific benchmark rows to the -schemes flag
// name that selects them; rows not listed here always run.
var specScheme = map[string]string{
	"CycleStreamingRAID":        "sr",
	"CycleStaggeredGroup":       "sg",
	"CycleNonClustered":         "nc",
	"CycleNonClusteredDegraded": "nc",
	"CycleImprovedBandwidth":    "ib",
	"CycleDeclustered":          "dc",
}

// runBaseline executes the suite and writes the baseline file,
// preserving prior numbers as pre_change. It prints a per-benchmark
// summary, including the allocs/op delta against pre_change when one is
// available. A non-empty `only` (the -schemes flag) restricts the
// scheme-specific rows and the capacity section to the named schemes;
// substrate and netserve rows always run.
func runBaseline(path string, fanout10k bool, only []string) error {
	prev, err := readBaseline(path)
	if err != nil {
		return err
	}
	keep := func(name string) bool {
		s, schemeRow := specScheme[name]
		if !schemeRow || len(only) == 0 {
			return true
		}
		for _, o := range only {
			if o == s || (s == "nc" && o == "nc-simple") {
				return true
			}
		}
		return false
	}
	var specs []baselineSpec
	for _, spec := range baselineSpecs() {
		if keep(spec.name) {
			specs = append(specs, spec)
		}
	}
	if fanout10k {
		specs = append(specs, fanout10kSpec())
	}

	out := baselineFile{
		Schema:    "ftmm-bench-baseline/1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	if prev != nil {
		if len(prev.PreChange) > 0 {
			out.PreChange = prev.PreChange
		} else {
			out.PreChange = prev.Benchmarks
		}
	}
	pre := map[string]benchEntry{}
	for _, e := range out.PreChange {
		pre[e.Name] = e
	}

	for _, spec := range specs {
		restore := benchTimeFor(spec.name)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			spec.run(b)
		})
		restore()
		if r.N == 0 {
			// The benchmark failed or skipped (testing.Benchmark returns a
			// zero result either way); keep it out of the file so the JSON
			// stays finite and the compare gate just reports a missing row.
			fmt.Printf("%-28s skipped (no iterations; see output above)\n", spec.name)
			continue
		}
		e := benchEntry{
			Name:        spec.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Streams:     spec.streams,
		}
		if r.Bytes > 0 && r.T > 0 {
			e.MBPerSec = float64(r.Bytes) * float64(r.N) / r.T.Seconds() / 1e6
		}
		if len(r.Extra) > 0 {
			e.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				e.Extra[k] = v
			}
		}
		out.Benchmarks = append(out.Benchmarks, e)
		line := fmt.Sprintf("%-28s %12.0f ns/op %8d allocs/op %10d B/op",
			e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
		if p, ok := pre[e.Name]; ok && p.AllocsPerOp > 0 {
			line += fmt.Sprintf("   allocs vs pre_change: %+.0f%%",
				100*(float64(e.AllocsPerOp)-float64(p.AllocsPerOp))/float64(p.AllocsPerOp))
		}
		fmt.Println(line)
		if len(e.Extra) > 0 {
			keys := make([]string, 0, len(e.Extra))
			for k := range e.Extra {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			phases := "    phases:"
			for _, k := range keys {
				phases += fmt.Sprintf(" %s=%.0f", k, e.Extra[k])
			}
			fmt.Println(phases)
		}
	}

	if err := checkParityTiers(out.Benchmarks); err != nil {
		return err
	}

	capSchemes := only
	if len(capSchemes) == 0 {
		capSchemes = chaos.SchemeNames()
	}
	if out.Capacity, err = capacityRows(capSchemes); err != nil {
		return err
	}
	if err := checkRebuildWindows(out.Capacity); err != nil {
		return err
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// checkParityTiers asserts ParityReconstruct runs at no less than half
// of ParityEncode's throughput. The two rows use identical byte
// accounting (four blocks per op), so a big gap means the reconstruct
// path fell off the word/unrolled XOR kernel onto the byte-wise
// reference — the regression that once had Reconstruct at ~2.4 GB/s
// against Encode's ~16.
func checkParityTiers(rows []benchEntry) error {
	var enc, rec float64
	for _, e := range rows {
		switch e.Name {
		case "ParityEncode":
			enc = e.MBPerSec
		case "ParityReconstruct":
			rec = e.MBPerSec
		}
	}
	if enc <= 0 || rec <= 0 {
		return nil
	}
	if rec < enc/2 {
		return fmt.Errorf("ParityReconstruct at %.0f MB/s is below half of ParityEncode's %.0f MB/s: reconstruct is off the word kernel", rec, enc)
	}
	fmt.Printf("parity tier check: Reconstruct %.0f MB/s vs Encode %.0f MB/s (>= 0.5x ok)\n", rec, enc)
	return nil
}

// benchTimeFor stretches -test.benchtime for the rows whose first
// iteration alone nearly fills the default 1s target (a 10k-session
// cycle moves ~1.5 GB), so testing.Benchmark still ramps b.N well past
// one cycle and the per-track numbers average over a real run. Returns
// a restore function for the default.
func benchTimeFor(name string) func() {
	if name != "NetserveFanout10k" {
		return func() {}
	}
	testing.Init()
	bt := flag.Lookup("test.benchtime")
	if bt == nil {
		return func() {}
	}
	old := bt.Value.String()
	_ = bt.Value.Set("8s")
	return func() { _ = bt.Value.Set(old) }
}

// readBaseline loads an existing baseline file; a missing file is not an
// error (first run), a malformed one is.
func readBaseline(path string) (*baselineFile, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var f baselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: existing baseline unreadable: %w", path, err)
	}
	return &f, nil
}
