// Command ftmmbench regenerates every table and figure from the paper's
// evaluation (Tables 2-3, Figure 9(a)/(b), the §2 k-sweep, the inline
// MTTF examples), the behavioural figures (4, 5-8), and this
// reproduction's validation and extension experiments.
//
// Usage:
//
//	ftmmbench [flags] [experiment]
//
// Run `ftmmbench -list` for the experiment names; the default runs all.
// -workers N fans independent experiments out across N goroutines
// (results print in registry order regardless); -json emits
// machine-readable results (metric values plus wall-clock) instead of
// the rendered tables.
//
// -bench-baseline <path> instead runs the data-path benchmark suite
// (one scheduling cycle per scheme plus the parity substrate) and
// writes ns/op, allocs/op, and stream counts to a BENCH_*.json file;
// numbers already in the file are preserved as pre_change for
// before/after comparison (see BENCH_0.json). -bench-compare old.json
// new.json diffs two such files and exits non-zero on regressions
// (allocs/op always; ns/op unless -compare-warn-ns).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"ftmm/internal/chaos"
	"ftmm/internal/experiments"
)

var (
	trials  = flag.Int("trials", 1000, "Monte-Carlo trials for the stochastic experiments")
	streams = flag.Float64("streams", 1200, "required streams for the sizing experiment")
	list    = flag.Bool("list", false, "list experiments and exit")
	workers = flag.Int("workers", 1, "experiments run concurrently (0 = GOMAXPROCS)")
	jsonOut = flag.Bool("json", false, "emit machine-readable JSON results")

	benchBaseline = flag.String("bench-baseline", "",
		"run the data-path benchmark suite and write ns/op, allocs/op, and stream counts to this JSON file (existing numbers are kept as pre_change)")
	benchSchemes = flag.String("schemes", "",
		"with -bench-baseline, comma-separated scheme filter for the scheme-cycle rows and capacity section (default: all)")
	benchCompare = flag.Bool("bench-compare", false,
		"diff two -bench-baseline files (args: old.json new.json); exit non-zero on >20% ns/op or any allocs/op regression beyond pool-refill noise")
	compareWarnNS = flag.Bool("compare-warn-ns", false,
		"with -bench-compare, demote ns/op regressions to warnings (allocs/op still hard-fails) — for CI runners whose speed differs from the committed baseline's machine")
	benchFanout10k = flag.Bool("bench-fanout10k", true,
		"with -bench-baseline, run the NetserveFanout10k row (~20k sockets; raises RLIMIT_NOFILE and takes minutes); =false skips it on fd-limited machines")

	cpuProfile = flag.String("cpuprofile", "",
		"write a CPU profile to this file (see DESIGN.md for the fan-out profiling recipe)")
	mutexProfile = flag.String("mutexprofile", "",
		"write a mutex-contention profile to this file (samples 1 in 5 contended lock events)")
	blockProfile = flag.String("blockprofile", "",
		"write a goroutine-blocking profile to this file (10 µs sampling granularity)")
)

// parseSchemesFlag splits and validates the -schemes filter against the
// canonical scheme-name list; unknown names are a usage error.
func parseSchemesFlag(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	valid := make(map[string]bool)
	for _, n := range chaos.SchemeNames() {
		valid[n] = true
	}
	names := strings.Split(s, ",")
	for _, n := range names {
		if !valid[n] {
			return nil, fmt.Errorf("unknown scheme %q in -schemes (valid: %s)",
				n, strings.Join(chaos.SchemeNames(), ", "))
		}
	}
	return names, nil
}

// jsonResult is the -json wire shape for one experiment.
type jsonResult struct {
	Name        string             `json:"name"`
	Description string             `json:"description"`
	WallMillis  float64            `json:"wall_ms"`
	Values      map[string]float64 `json:"values,omitempty"`
	Error       string             `json:"error,omitempty"`
}

func main() {
	flag.Usage = usage
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProfile, *mutexProfile, *blockProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftmmbench: %v\n", err)
		os.Exit(1)
	}
	code := run()
	stopProfiles()
	os.Exit(code)
}

// run is the real main body. It returns an exit code instead of calling
// os.Exit so the deferred profile writers in main always flush.
func run() int {
	only, err := parseSchemesFlag(*benchSchemes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftmmbench: %v\n", err)
		return 2
	}

	if *benchBaseline != "" {
		if err := runBaseline(*benchBaseline, *benchFanout10k, only); err != nil {
			fmt.Fprintf(os.Stderr, "ftmmbench: %v\n", err)
			return 1
		}
		return 0
	}

	if *benchCompare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "ftmmbench: -bench-compare needs exactly two arguments: old.json new.json")
			return 2
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *compareWarnNS); err != nil {
			fmt.Fprintf(os.Stderr, "ftmmbench: %v\n", err)
			return 1
		}
		return 0
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.Name, e.Description)
		}
		return 0
	}

	opts := experiments.Options{Trials: *trials, RequiredStreams: *streams}
	want := "all"
	if flag.NArg() > 0 {
		want = flag.Arg(0)
	}

	var results []experiments.Result
	if want == "all" {
		results = experiments.RunAll(opts, *workers)
	} else {
		e, err := experiments.Find(want)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftmmbench: %v\n\n", err)
			usage()
			return 2
		}
		results = []experiments.Result{experiments.Run(e, opts)}
	}

	if *jsonOut {
		return emitJSON(results)
	}
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "ftmmbench: %s: %v\n", r.Name, r.Err)
			return 1
		}
		fmt.Printf("== %s — %s\n\n%s\n", r.Name, r.Description, r.Output.Text)
	}
	return 0
}

// startProfiles turns on the requested runtime profiles and returns the
// function that flushes them; every exit path must route through it (via
// run's return code) rather than calling os.Exit deeper down, or the
// files come out empty.
func startProfiles(cpu, mutex, block string) (func(), error) {
	var flush []func() error
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		flush = append(flush, func() error { pprof.StopCPUProfile(); return f.Close() })
	}
	if mutex != "" {
		runtime.SetMutexProfileFraction(5)
		flush = append(flush, writeProfile("mutex", mutex))
	}
	if block != "" {
		runtime.SetBlockProfileRate(10_000)
		flush = append(flush, writeProfile("block", block))
	}
	return func() {
		for _, fn := range flush {
			if err := fn(); err != nil {
				fmt.Fprintf(os.Stderr, "ftmmbench: profile: %v\n", err)
			}
		}
	}, nil
}

// writeProfile defers a named runtime profile's snapshot to exit time.
func writeProfile(name, path string) func() error {
	return func() error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
}

// emitJSON prints one JSON array with every result; experiment failures
// are reported in-band and reflected in the exit status.
func emitJSON(results []experiments.Result) int {
	out := make([]jsonResult, 0, len(results))
	failed := false
	for _, r := range results {
		jr := jsonResult{
			Name:        r.Name,
			Description: r.Description,
			WallMillis:  float64(r.Wall.Microseconds()) / 1000,
			Values:      r.Output.Values,
		}
		if r.Err != nil {
			jr.Error = r.Err.Error()
			failed = true
		}
		out = append(out, jr)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "ftmmbench: %v\n", err)
		return 1
	}
	if failed {
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: ftmmbench [flags] [experiment]

Run -list for experiment names; default runs all.
Run -bench-baseline BENCH_N.json for the performance baseline suite.
Run -bench-compare [-compare-warn-ns] old.json new.json to diff two
baseline files (fails on regressions).

Flags:
`)
	flag.PrintDefaults()
}
