// Command ftmmbench regenerates every table and figure from the paper's
// evaluation (Tables 2-3, Figure 9(a)/(b), the §2 k-sweep, the inline
// MTTF examples), the behavioural figures (4, 5-8), and this
// reproduction's validation and extension experiments.
//
// Usage:
//
//	ftmmbench [flags] [experiment]
//
// Run `ftmmbench -list` for the experiment names; the default runs all.
package main

import (
	"flag"
	"fmt"
	"os"

	"ftmm/internal/experiments"
)

var (
	trials  = flag.Int("trials", 1000, "Monte-Carlo trials for the stochastic experiments")
	streams = flag.Float64("streams", 1200, "required streams for the sizing experiment")
	list    = flag.Bool("list", false, "list experiments and exit")
)

func main() {
	flag.Usage = usage
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.Name, e.Description)
		}
		return
	}

	opts := experiments.Options{Trials: *trials, RequiredStreams: *streams}
	want := "all"
	if flag.NArg() > 0 {
		want = flag.Arg(0)
	}
	if want == "all" {
		for _, e := range experiments.All() {
			run(e, opts)
		}
		return
	}
	e, err := experiments.Find(want)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftmmbench: %v\n\n", err)
		usage()
		os.Exit(2)
	}
	run(e, opts)
}

func run(e experiments.Named, opts experiments.Options) {
	out, err := e.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftmmbench: %s: %v\n", e.Name, err)
		os.Exit(1)
	}
	fmt.Printf("== %s — %s\n\n%s\n", e.Name, e.Description, out)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: ftmmbench [flags] [experiment]

Run -list for experiment names; default runs all.

Flags:
`)
	flag.PrintDefaults()
}
