// Bench-compare mode: -bench-compare old.json new.json diffs two
// -bench-baseline files and fails on regressions, so CI can hold the
// committed baseline against a fresh run.
package main

import (
	"fmt"
	"os"
)

// Regression thresholds. ns/op is machine-dependent, so it gets a wide
// 20% band (and can be demoted to a warning for cross-machine CI
// compares); allocs/op is deterministic for the same code modulo
// sync.Pool refills after GC, so it gets only a small noise allowance.
const (
	compareNsTolerance = 0.20
	// compareAllocSlack absorbs pool-refill jitter: a run may see a few
	// extra allocations when GC clears sync.Pools mid-benchmark.
	compareAllocSlack = 2
)

// runCompare diffs newPath against oldPath (both -bench-baseline
// output). It returns an error — non-zero exit — when any benchmark's
// allocs/op regresses beyond the noise slack, or when ns/op regresses
// >20% and warnNs is false.
func runCompare(oldPath, newPath string, warnNS bool) error {
	oldF, err := readBaseline(oldPath)
	if err != nil {
		return err
	}
	if oldF == nil {
		return fmt.Errorf("%s: baseline not found", oldPath)
	}
	newF, err := readBaseline(newPath)
	if err != nil {
		return err
	}
	if newF == nil {
		return fmt.Errorf("%s: baseline not found", newPath)
	}

	oldByName := map[string]benchEntry{}
	for _, e := range oldF.Benchmarks {
		oldByName[e.Name] = e
	}

	var nsRegressed, allocRegressed []string
	seen := map[string]bool{}
	for _, n := range newF.Benchmarks {
		seen[n.Name] = true
		o, ok := oldByName[n.Name]
		if !ok {
			fmt.Printf("%-28s (new benchmark, no baseline)\n", n.Name)
			continue
		}
		nsDelta := 0.0
		if o.NsPerOp > 0 {
			nsDelta = (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		}
		allocDelta := n.AllocsPerOp - o.AllocsPerOp
		status := "ok"
		if allocDelta > compareAllocSlack+o.AllocsPerOp/10 {
			status = "ALLOC REGRESSION"
			allocRegressed = append(allocRegressed, n.Name)
		} else if nsDelta > compareNsTolerance {
			if warnNS {
				status = "ns/op regression (warning)"
			} else {
				status = "NS REGRESSION"
			}
			nsRegressed = append(nsRegressed, n.Name)
		}
		fmt.Printf("%-28s ns/op %12.0f -> %12.0f (%+6.1f%%)   allocs/op %6d -> %6d (%+d)   %s\n",
			n.Name, o.NsPerOp, n.NsPerOp, 100*nsDelta, o.AllocsPerOp, n.AllocsPerOp, allocDelta, status)
	}
	for _, o := range oldF.Benchmarks {
		if !seen[o.Name] {
			fmt.Fprintf(os.Stderr, "ftmmbench: warning: %s present in %s but missing from %s\n", o.Name, oldPath, newPath)
		}
	}

	if len(allocRegressed) > 0 {
		return fmt.Errorf("allocs/op regressed: %v", allocRegressed)
	}
	if len(nsRegressed) > 0 {
		if warnNS {
			fmt.Fprintf(os.Stderr, "ftmmbench: warning: ns/op regressed >%.0f%% (tolerated): %v\n", 100*compareNsTolerance, nsRegressed)
			return nil
		}
		return fmt.Errorf("ns/op regressed >%.0f%%: %v", 100*compareNsTolerance, nsRegressed)
	}
	return nil
}
