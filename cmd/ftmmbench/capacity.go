// Capacity section of the baseline file: the paper-facing payoff
// metrics for the fifth scheme — degraded-mode stream capacity and the
// measured rebuild window — computed for all five schemes on one
// 18-drive farm so the rows are directly comparable. Unlike the timing
// rows these are deterministic counts, so the compare gate can hold
// them exactly.
package main

import (
	"fmt"

	"ftmm/internal/analytic"
	"ftmm/internal/disk"
	"ftmm/internal/diskmodel"
	"ftmm/internal/layout"
	"ftmm/internal/rebuild"
	"ftmm/internal/schemes"
	"ftmm/internal/server"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// capacityEntry is one scheme's row in the baseline file's capacity
// section.
type capacityEntry struct {
	Scheme string `json:"scheme"`
	// DegradedCapacityStreams is how many streams the engine admits
	// with one drive failed (admit-until-reject on the shared rig).
	DegradedCapacityStreams int `json:"degraded_capacity_streams"`
	// RebuildWindowCycles is the measured cycles to rebuild the failed
	// drive under a per-drive spare budget of capRebuildBudget track
	// reads per cycle — the real bottleneck is the busiest survivor, so
	// declustered parity's spread shrinks this by ~(C-1)/(G-1).
	RebuildWindowCycles int `json:"rebuild_window_cycles"`
	// RebuildWindowFrac is the analytic window relative to Streaming
	// RAID at equal farm size: 1 for the clustered schemes, (C-1)/(G-1)
	// for declustered parity.
	RebuildWindowFrac float64 `json:"rebuild_window_frac"`
}

// The shared capacity rig: 18 drives, parity groups of C=3, and for dc
// two G=9 declustering groups on the (9,3) Steiner design.
const (
	capDisks         = 18
	capCluster       = 3
	capGroup         = 9
	capObjects       = 6
	capGroupsEach    = 12
	capRebuildBudget = 2
	capAdmitCeiling  = 10_000
)

// capacityFarm builds the rig farm with the scheme's placement and a
// written object set.
func capacityFarm(scheme string) (*disk.Farm, *layout.Layout, []*layout.Object, error) {
	p := diskmodel.Table1()
	p.Capacity = units.ByteSize(capObjects*capGroupsEach*8) * p.TrackSize
	clusterSize := capCluster
	if scheme == "dc" {
		clusterSize = capGroup
	}
	farm, err := disk.NewFarm(capDisks, clusterSize, p)
	if err != nil {
		return nil, nil, nil, err
	}
	var lay *layout.Layout
	switch scheme {
	case "dc":
		lay, err = layout.ForFarmDeclustered(farm, capCluster)
	case "ib":
		lay, err = layout.ForFarm(farm, layout.IntermixedParity)
	default:
		lay, err = layout.ForFarm(farm, layout.DedicatedParity)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	trackSize := int(p.TrackSize)
	var objs []*layout.Object
	for i := 0; i < capObjects; i++ {
		id := fmt.Sprintf("obj%d", i)
		tracks := capGroupsEach * lay.GroupWidth()
		obj, err := lay.AddObject(id, tracks, i%lay.Clusters(), units.MPEG1)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := layout.WriteObject(farm, obj, workload.SyntheticContent(id, tracks*trackSize)); err != nil {
			return nil, nil, nil, err
		}
		objs = append(objs, obj)
	}
	return farm, lay, objs, nil
}

// capacityEngine builds the scheme's engine over the rig.
func capacityEngine(scheme string, cfg schemes.Config) (schemes.Simulator, error) {
	switch scheme {
	case "sr":
		return schemes.NewStreamingRAID(cfg)
	case "sg":
		return schemes.NewStaggeredGroup(cfg)
	case "nc":
		return schemes.NewNonClustered(cfg, schemes.AlternateSwitchover, 1)
	case "nc-simple":
		return schemes.NewNonClustered(cfg, schemes.SimpleSwitchover, 1)
	case "ib":
		return schemes.NewImprovedBandwidth(cfg, 1)
	case "dc":
		return schemes.NewDeclustered(cfg)
	default:
		return nil, fmt.Errorf("capacity: unknown scheme %q", scheme)
	}
}

// degradedCapacity measures admit-until-reject with one drive down: the
// failure is injected and latched with one cycle, then streams are
// admitted round-robin over the rig's objects until the engine refuses.
func degradedCapacity(scheme string) (int, error) {
	farm, lay, objs, err := capacityFarm(scheme)
	if err != nil {
		return 0, err
	}
	eng, err := capacityEngine(scheme, schemes.Config{Farm: farm, Layout: lay, Rate: units.MPEG1})
	if err != nil {
		return 0, err
	}
	if err := eng.FailDisk(0); err != nil {
		return 0, err
	}
	if _, err := eng.Step(); err != nil {
		return 0, err
	}
	admitted := 0
	for ; admitted < capAdmitCeiling; admitted++ {
		if _, err := eng.AddStream(objs[admitted%len(objs)]); err != nil {
			break
		}
	}
	return admitted, nil
}

// rebuildWindow measures the cycles to rebuild drive 0 under the
// per-drive spare budget, verifying parity consistency afterwards.
func rebuildWindow(scheme string) (int, error) {
	farm, lay, _, err := capacityFarm(scheme)
	if err != nil {
		return 0, err
	}
	drv, err := farm.Drive(0)
	if err != nil {
		return 0, err
	}
	if err := drv.Fail(); err != nil {
		return 0, err
	}
	if err := drv.Replace(); err != nil {
		return 0, err
	}
	r, err := rebuild.New(farm, lay, 0)
	if err != nil {
		return 0, err
	}
	cycles, err := r.RunPerDrive(capRebuildBudget, 100_000)
	if err != nil {
		return 0, err
	}
	if err := rebuild.CheckAll(farm, lay); err != nil {
		return 0, fmt.Errorf("capacity: parity inconsistent after %s rebuild: %w", scheme, err)
	}
	return cycles, nil
}

// capacityRows computes the capacity section for the given schemes.
func capacityRows(schemeNames []string) ([]capacityEntry, error) {
	var rows []capacityEntry
	for _, name := range schemeNames {
		s, _, err := server.ParseScheme(name)
		if err != nil {
			return nil, err
		}
		cap, err := degradedCapacity(name)
		if err != nil {
			return nil, fmt.Errorf("capacity: %s degraded capacity: %w", name, err)
		}
		cycles, err := rebuildWindow(name)
		if err != nil {
			return nil, err
		}
		acfg := analytic.Config{
			Disk: diskmodel.Table1(), ObjectRate: units.MPEG1,
			D: capDisks, C: capCluster, G: capGroup, K: 1,
		}
		rows = append(rows, capacityEntry{
			Scheme:                  name,
			DegradedCapacityStreams: cap,
			RebuildWindowCycles:     cycles,
			RebuildWindowFrac:       acfg.RebuildWindowFrac(s),
		})
		fmt.Printf("%-28s degraded capacity %4d streams   rebuild window %5d cycles (analytic frac %.3f)\n",
			"Capacity/"+name, cap, cycles, acfg.RebuildWindowFrac(s))
	}
	return rows, nil
}

// checkRebuildWindows asserts the fifth scheme's payoff on the measured
// numbers: declustered parity's rebuild window is at most half of
// Streaming RAID's at equal farm size.
func checkRebuildWindows(rows []capacityEntry) error {
	var sr, dc int
	for _, r := range rows {
		switch r.Scheme {
		case "sr":
			sr = r.RebuildWindowCycles
		case "dc":
			dc = r.RebuildWindowCycles
		}
	}
	if sr == 0 || dc == 0 {
		return nil // filtered run without both rows
	}
	if 2*dc > sr {
		return fmt.Errorf("declustered rebuild window %d cycles exceeds 0.5 x Streaming RAID's %d", dc, sr)
	}
	fmt.Printf("rebuild window check: dc %d cycles vs sr %d cycles (<= 0.5x ok)\n", dc, sr)
	return nil
}
