// Command ftmmload is a closed-loop load generator for ftmmserve: N
// concurrent clients repeatedly pick a title from a Zipf popularity
// distribution, stream it over the session protocol, verify every
// received track bit-for-bit against the deterministic synthetic
// content, and report hiccups, rejections, throughput, and inter-track
// gap percentiles.
//
// Example (against a running ftmmserve):
//
//	ftmmload -addr 127.0.0.1:5500 -http 127.0.0.1:5580 -clients 4 -requests 3
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"ftmm/internal/netserve"
	"ftmm/internal/trace"
	"ftmm/internal/workload"
)

var (
	addr        = flag.String("addr", "127.0.0.1:5500", "session protocol address of the server")
	httpAddr    = flag.String("http", "127.0.0.1:5580", "server HTTP address, used to fetch /titlesz")
	clients     = flag.Int("clients", 4, "concurrent closed-loop clients")
	requests    = flag.Int("requests", 2, "streams each client plays to completion")
	seed        = flag.Int64("seed", 1, "workload seed")
	zipf        = flag.Float64("zipf", 1.0, "title popularity skew")
	readTimeout = flag.Duration("read-timeout", 2*time.Minute, "per-frame read deadline")
	retries     = flag.Int("retries", 200, "admission retries before a request counts as failed")
)

// tally aggregates everything the clients saw.
type tally struct {
	mu          sync.Mutex
	streams     int
	failures    int
	rejects     int
	tracks      int
	bytes       int64
	hiccups     int
	corrupt     int
	gaps        []time.Duration
	elapsedBusy time.Duration
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftmmload:", err)
		os.Exit(1)
	}
}

func run() error {
	titles, err := fetchTitles(*httpAddr)
	if err != nil {
		return fmt.Errorf("fetching /titlesz from %s: %w", *httpAddr, err)
	}
	if len(titles) == 0 {
		return errors.New("server has no titles")
	}
	fmt.Printf("load   %s  clients=%d requests=%d titles=%d zipf=%.2f\n",
		*addr, *clients, *requests, len(titles), *zipf)

	var tl tally
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen, err := workload.New(workload.Config{
				Seed: *seed + int64(c), Objects: titles, ZipfS: *zipf, ArrivalsPerSecond: 1,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "client %d: %v\n", c, err)
				return
			}
			for rq := 0; rq < *requests; rq++ {
				playOne(&tl, gen.Pick())
			}
		}(c)
	}
	wg.Wait()
	report(&tl, time.Since(start))
	if tl.failures > 0 || tl.corrupt > 0 {
		return fmt.Errorf("%d failed requests, %d corrupt tracks", tl.failures, tl.corrupt)
	}
	return nil
}

// playOne streams one title to completion, retrying transient admission
// rejections with the server's hint.
func playOne(tl *tally, title string) {
	for attempt := 0; ; attempt++ {
		c, err := netserve.Dial(*addr, *readTimeout)
		if err != nil {
			tl.fail("dial %s: %v", title, err)
			return
		}
		// Each track is verified before the next Next() call, so the
		// client can recycle its payload buffer between frames.
		c.ReuseBuffers(true)
		ok, err := c.Admit(title)
		var rej *netserve.RejectedError
		if errors.As(err, &rej) && rej.Reject.RetryAfterMillis > 0 && attempt < *retries {
			c.Close()
			tl.mu.Lock()
			tl.rejects++
			tl.mu.Unlock()
			time.Sleep(time.Duration(rej.Reject.RetryAfterMillis) * time.Millisecond)
			continue
		}
		if err != nil {
			c.Close()
			tl.fail("admit %s: %v", title, err)
			return
		}
		consumeStream(tl, c, ok)
		c.Close()
		return
	}
}

// consumeStream plays the admitted session out, verifying every track
// with the same predicate the engine's integrity checker uses.
func consumeStream(tl *tally, c *netserve.Client, ok netserve.AdmitOK) {
	content := workload.SyntheticContent(ok.Title, ok.Size)
	covered := make(map[int]bool, ok.Tracks)
	begin := time.Now()
	last := begin
	tracks, hiccups, corrupt := 0, 0, 0
	var gaps []time.Duration
	var nbytes int64
	for {
		ev, err := c.Next()
		if err != nil {
			tl.fail("%s: read: %v", ok.Title, err)
			return
		}
		switch {
		case ev.Bye != nil:
			missing := 0
			for i := 0; i < ok.Tracks; i++ {
				if !covered[i] {
					missing++
				}
			}
			if missing > 0 {
				tl.fail("%s: %d tracks neither delivered nor hiccuped", ok.Title, missing)
				return
			}
			tl.mu.Lock()
			tl.streams++
			tl.tracks += tracks
			tl.bytes += nbytes
			tl.hiccups += hiccups
			tl.corrupt += corrupt
			tl.gaps = append(tl.gaps, gaps...)
			tl.elapsedBusy += time.Since(begin)
			tl.mu.Unlock()
			return
		case ev.Hiccup != nil:
			hiccups++
			covered[ev.Hiccup.Track] = true
		default:
			now := time.Now()
			if tracks > 0 {
				gaps = append(gaps, now.Sub(last))
			}
			last = now
			tracks++
			nbytes += int64(len(ev.Data))
			covered[ev.Track] = true
			if err := trace.CheckTrack(content, ok.TrackSize, ev.Track, ev.Data); err != nil {
				corrupt++
				fmt.Fprintf(os.Stderr, "ftmmload: %v\n", err)
			}
		}
	}
}

func (tl *tally) fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftmmload: "+format+"\n", args...)
	tl.mu.Lock()
	tl.failures++
	tl.mu.Unlock()
}

func report(tl *tally, wall time.Duration) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	fmt.Printf("\nstreams   %d ok, %d failed, %d transient rejects\n", tl.streams, tl.failures, tl.rejects)
	fmt.Printf("tracks    %d delivered, %d hiccups, %d corrupt\n", tl.tracks, tl.hiccups, tl.corrupt)
	mb := float64(tl.bytes) / 1e6
	fmt.Printf("volume    %.1f MB in %v (%.1f MB/s)\n", mb, wall.Round(time.Millisecond), mb/wall.Seconds())
	if len(tl.gaps) > 0 {
		sort.Slice(tl.gaps, func(i, j int) bool { return tl.gaps[i] < tl.gaps[j] })
		q := func(p float64) time.Duration {
			i := int(p * float64(len(tl.gaps)-1))
			return tl.gaps[i].Round(time.Microsecond)
		}
		fmt.Printf("gap       p50=%v p95=%v p99=%v max=%v (between tracks)\n",
			q(0.50), q(0.95), q(0.99), tl.gaps[len(tl.gaps)-1].Round(time.Microsecond))
	}
}

func fetchTitles(httpAddr string) ([]string, error) {
	resp, err := http.Get("http://" + httpAddr + "/titlesz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/titlesz: %s", resp.Status)
	}
	var titles []string
	if err := json.NewDecoder(resp.Body).Decode(&titles); err != nil {
		return nil, err
	}
	return titles, nil
}
