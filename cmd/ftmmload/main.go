// Command ftmmload is a closed-loop load generator for ftmmserve: N
// concurrent clients repeatedly pick a title from a Zipf popularity
// distribution, stream it over the session protocol, verify every
// received track bit-for-bit against the deterministic synthetic
// content, and report hiccups, rejections, throughput, and inter-track
// gap percentiles.
//
// It is cluster-aware: -addr takes a comma-separated endpoint list
// (coordinator and/or nodes), REDIRECTs are followed to the serving
// node, and a connection that dies mid-stream is resumed on a replica
// holder via the coordinator (the session failover path). The summary
// breaks sessions down per node and counts failovers.
//
// Example (against a running ftmmserve or cluster):
//
//	ftmmload -addr 127.0.0.1:5500 -http 127.0.0.1:5580 -clients 4 -requests 3
//	ftmmload -addr coord:5500,node1:5501 -http coord:5580 -clients 8
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"ftmm/internal/netserve"
	"ftmm/internal/trace"
	"ftmm/internal/workload"
)

var (
	addr        = flag.String("addr", "127.0.0.1:5500", "comma-separated session-protocol endpoints (coordinator and/or nodes)")
	httpAddr    = flag.String("http", "127.0.0.1:5580", "comma-separated HTTP addresses, used to fetch /titlesz")
	clients     = flag.Int("clients", 4, "concurrent closed-loop clients")
	requests    = flag.Int("requests", 2, "streams each client plays to completion")
	seed        = flag.Int64("seed", 1, "workload seed")
	zipf        = flag.Float64("zipf", 1.0, "title popularity skew")
	readTimeout = flag.Duration("read-timeout", 2*time.Minute, "per-frame read deadline")
	retries     = flag.Int("retries", 200, "admission/resume retries before a request counts as failed")
	vcrProb     = flag.Float64("vcr", 0, "per-track probability of a VCR interaction (pause+resume, fast-forward, rewind); schedules are derived from -seed")
)

// tally aggregates everything the clients saw.
type tally struct {
	mu          sync.Mutex
	streams     int
	failures    int
	rejects     int
	resumes     int
	vcrOps      int
	vcrRejects  int
	tracks      int
	bytes       int64
	hiccups     int
	corrupt     int
	gaps        []time.Duration
	elapsedBusy time.Duration
	// sessionsByNode counts admissions per serving node, resumed
	// segments included — the cluster's observed load split.
	sessionsByNode map[string]int
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftmmload:", err)
		os.Exit(1)
	}
}

func run() error {
	endpoints := splitList(*addr)
	if len(endpoints) == 0 {
		return errors.New("no endpoints in -addr")
	}
	titles, err := fetchTitles(splitList(*httpAddr))
	if err != nil {
		return fmt.Errorf("fetching /titlesz: %w", err)
	}
	if len(titles) == 0 {
		return errors.New("server has no titles")
	}
	fmt.Printf("load   %s  clients=%d requests=%d titles=%d zipf=%.2f\n",
		strings.Join(endpoints, ","), *clients, *requests, len(titles), *zipf)

	tl := tally{sessionsByNode: make(map[string]int)}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen, err := workload.New(workload.Config{
				Seed: *seed + int64(c), Objects: titles, ZipfS: *zipf, ArrivalsPerSecond: 1,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "client %d: %v\n", c, err)
				return
			}
			var vrng *rand.Rand
			if *vcrProb > 0 {
				vrng = rand.New(rand.NewSource(*seed + 1000003*int64(c)))
			}
			for rq := 0; rq < *requests; rq++ {
				playOne(&tl, endpoints, gen.Pick(), vrng)
			}
		}(c)
	}
	wg.Wait()
	report(&tl, time.Since(start))
	if tl.failures > 0 || tl.corrupt > 0 {
		return fmt.Errorf("%d failed requests, %d corrupt tracks", tl.failures, tl.corrupt)
	}
	return nil
}

// playState carries one logical session across admissions: the original
// admission plus any failover resumes all fill the same coverage map.
type playState struct {
	content                  []byte
	covered                  map[int]bool
	total                    int
	tracks, hiccups, corrupt int
	nbytes                   int64
	gaps                     []time.Duration
	begin, last              time.Time
	skipGap                  bool // first gap after a failover is the outage, not pacing
}

// nextNeeded returns the lowest track the viewer is still owed.
func (st *playState) nextNeeded() int {
	for i := 0; i < st.total; i++ {
		if !st.covered[i] {
			return i
		}
	}
	return st.total
}

// playOne streams one title to completion: admit (following redirects,
// backing off on transient rejections), play, and on a mid-stream
// connection loss resume the session on a surviving replica via any
// remaining endpoint, avoiding the node that died.
func playOne(tl *tally, endpoints []string, title string, vrng *rand.Rand) {
	var st *playState
	var avoid []string
	currentNode := ""
	for attempt := 0; attempt <= *retries; attempt++ {
		ep := endpoints[attempt%len(endpoints)]
		var c *netserve.Client
		var ok netserve.AdmitOK
		var err error
		if st == nil {
			c, ok, err = netserve.AdmitVia(ep, title, *readTimeout)
		} else {
			c, ok, err = netserve.ResumeVia(ep, title, st.nextNeeded(), avoid, *readTimeout)
		}
		var rej *netserve.RejectedError
		if errors.As(err, &rej) && rej.Reject.RetryAfterMillis > 0 {
			tl.mu.Lock()
			tl.rejects++
			tl.mu.Unlock()
			time.Sleep(time.Duration(rej.Reject.RetryAfterMillis) * time.Millisecond)
			continue
		}
		if errors.As(err, &rej) {
			// Rejection without a retry hint is permanent (unknown title,
			// no live holder).
			tl.fail("admit %s via %s: %v", title, ep, err)
			return
		}
		if err != nil {
			// Transient plumbing failure: a redirect pointed at a node
			// that died before the coordinator absorbed the death, or the
			// endpoint is briefly unreachable. Give the view a moment and
			// try again — for resumes this is the failover race itself.
			time.Sleep(50 * time.Millisecond)
			continue
		}
		// Each track is verified before the next Next() call, so the
		// client can recycle its payload buffer between frames.
		c.ReuseBuffers(true)
		if st == nil {
			st = &playState{
				content: workload.SyntheticContent(ok.Title, ok.Size),
				covered: make(map[int]bool, ok.Tracks),
				total:   ok.Tracks,
				begin:   time.Now(),
			}
		} else {
			tl.mu.Lock()
			tl.resumes++
			tl.mu.Unlock()
			st.skipGap = true
		}
		currentNode = ok.NodeID
		tl.mu.Lock()
		tl.sessionsByNode[nodeKey(ok.NodeID)]++
		tl.mu.Unlock()

		var vd *vcrDriver
		if vrng != nil {
			vd = &vcrDriver{rng: vrng}
		}
		finished, rerr := consumeStream(tl, c, ok, st, vd)
		c.Close()
		if vd != nil {
			tl.mu.Lock()
			tl.vcrOps += vd.ops
			tl.vcrRejects += vd.rejects
			tl.mu.Unlock()
		}
		if finished {
			missing := st.total - len(st.covered)
			if missing > 0 {
				tl.fail("%s: %d tracks neither delivered nor hiccuped", title, missing)
				return
			}
			tl.mu.Lock()
			tl.streams++
			tl.tracks += st.tracks
			tl.bytes += st.nbytes
			tl.hiccups += st.hiccups
			tl.corrupt += st.corrupt
			tl.gaps = append(tl.gaps, st.gaps...)
			tl.elapsedBusy += time.Since(st.begin)
			tl.mu.Unlock()
			return
		}
		// Mid-stream loss: fail the session over, avoiding the dead node.
		fmt.Fprintf(os.Stderr, "ftmmload: %s: connection to %s lost (%v); resuming at track %d\n",
			title, nodeKey(currentNode), rerr, st.nextNeeded())
		if currentNode != "" {
			avoid = append(avoid, currentNode)
		}
	}
	tl.fail("%s: retries exhausted", title)
}

// vcrDriver injects interactive-viewer behaviour into one session: at
// the configured per-track probability it pauses (resuming as soon as
// the park is acknowledged), fast-forwards at 2× (dropping back to
// normal rate a few tracks later), or rewinds a short distance. One
// verb is in flight at a time, and the whole schedule is determined by
// the seed.
type vcrDriver struct {
	rng     *rand.Rand
	pending string // verb awaiting its ack ("" = idle)
	ffLeft  int    // delivered tracks until a fast-forward is resumed away
	ops     int
	rejects int
}

// onTrack decides whether to issue a verb after one delivered track.
func (v *vcrDriver) onTrack(c *netserve.Client, track int) {
	if v.pending != "" {
		return
	}
	if v.ffLeft > 0 {
		v.ffLeft--
		if v.ffLeft == 0 && c.ResumePlay() == nil {
			v.pending = "resume"
		}
		return
	}
	if v.rng.Float64() >= *vcrProb {
		return
	}
	v.ops++
	switch v.rng.Intn(3) {
	case 0:
		if c.Pause() == nil {
			v.pending = "pause"
		}
	case 1:
		if c.FastForward(2) == nil {
			v.pending = "ff"
		}
	default:
		back := track - 1 - v.rng.Intn(8)
		if back < 0 {
			back = 0
		}
		if c.Rewind(back) == nil {
			v.pending = "rewind"
		}
	}
}

// onVcr handles an ack.
func (v *vcrDriver) onVcr(c *netserve.Client, ok *netserve.VcrOK) {
	switch ok.Verb {
	case "pause":
		// Parked; resume right away — the schedule exercises the slot
		// release/re-admission seam, not wall-clock idling.
		v.pending = ""
		if c.ResumePlay() == nil {
			v.pending = "resume"
		}
	case "ff":
		v.pending = ""
		v.ffLeft = 8
	default: // resume, rewind
		v.pending = ""
	}
}

// onReject handles a refusal. A refused resume or rewind leaves the
// session parked server-side, so the driver honors the Retry-After
// hint and asks again — the viewer is owed the rest of the title. A
// refused pause or fast-forward leaves it playing; nothing to do.
func (v *vcrDriver) onReject(c *netserve.Client, rej *netserve.Reject) {
	v.rejects++
	if v.pending == "resume" || v.pending == "rewind" {
		if rej.RetryAfterMillis > 0 {
			time.Sleep(time.Duration(rej.RetryAfterMillis) * time.Millisecond)
		}
		if c.ResumePlay() == nil {
			v.pending = "resume"
			return
		}
	}
	v.pending = ""
}

// consumeStream plays an admitted (or resumed) segment out, verifying
// every track with the same predicate the engine's integrity checker
// uses. It reports whether the stream reached its goodbye; a read error
// means the serving node died mid-stream. A non-nil vd drives seeded
// VCR interactions against the session as tracks arrive.
func consumeStream(tl *tally, c *netserve.Client, ok netserve.AdmitOK, st *playState, vd *vcrDriver) (bool, error) {
	for {
		ev, err := c.Next()
		if err != nil {
			return false, err
		}
		switch {
		case ev.Bye != nil:
			return true, nil
		case ev.Hiccup != nil:
			st.hiccups++
			st.covered[ev.Hiccup.Track] = true
		case ev.Vcr != nil:
			if vd != nil {
				vd.onVcr(c, ev.Vcr)
			}
			st.skipGap = true // position jumps are not pacing gaps
		case ev.VcrReject != nil:
			if vd != nil {
				vd.onReject(c, ev.VcrReject)
			}
			st.skipGap = true
		default:
			now := time.Now()
			if st.tracks > 0 && !st.skipGap {
				st.gaps = append(st.gaps, now.Sub(st.last))
			}
			st.skipGap = false
			st.last = now
			st.tracks++
			st.nbytes += int64(len(ev.Data))
			st.covered[ev.Track] = true
			if err := trace.CheckTrack(st.content, ok.TrackSize, ev.Track, ev.Data); err != nil {
				st.corrupt++
				fmt.Fprintf(os.Stderr, "ftmmload: %v\n", err)
			}
			if vd != nil {
				vd.onTrack(c, ev.Track)
			}
		}
	}
}

func (tl *tally) fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftmmload: "+format+"\n", args...)
	tl.mu.Lock()
	tl.failures++
	tl.mu.Unlock()
}

func nodeKey(id string) string {
	if id == "" {
		return "(standalone)"
	}
	return id
}

func report(tl *tally, wall time.Duration) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	fmt.Printf("\nstreams   %d ok, %d failed, %d transient rejects, %d failovers\n",
		tl.streams, tl.failures, tl.rejects, tl.resumes)
	if tl.vcrOps > 0 || tl.vcrRejects > 0 {
		fmt.Printf("vcr       %d interactions, %d transient rejects\n", tl.vcrOps, tl.vcrRejects)
	}
	fmt.Printf("tracks    %d delivered, %d hiccups, %d corrupt\n", tl.tracks, tl.hiccups, tl.corrupt)
	mb := float64(tl.bytes) / 1e6
	fmt.Printf("volume    %.1f MB in %v (%.1f MB/s)\n", mb, wall.Round(time.Millisecond), mb/wall.Seconds())
	if len(tl.sessionsByNode) > 0 {
		nodes := make([]string, 0, len(tl.sessionsByNode))
		for n := range tl.sessionsByNode {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
		fmt.Printf("nodes    ")
		for _, n := range nodes {
			fmt.Printf(" %s=%d", n, tl.sessionsByNode[n])
		}
		fmt.Println(" (sessions served, resumed segments included)")
	}
	if len(tl.gaps) > 0 {
		sort.Slice(tl.gaps, func(i, j int) bool { return tl.gaps[i] < tl.gaps[j] })
		q := func(p float64) time.Duration {
			i := int(p * float64(len(tl.gaps)-1))
			return tl.gaps[i].Round(time.Microsecond)
		}
		fmt.Printf("gap       p50=%v p95=%v p99=%v max=%v (between tracks)\n",
			q(0.50), q(0.95), q(0.99), tl.gaps[len(tl.gaps)-1].Round(time.Microsecond))
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// fetchTitles asks each HTTP endpoint for the catalog until one
// answers — against a cluster, the coordinator serves the full library.
func fetchTitles(addrs []string) ([]string, error) {
	var lastErr error
	for _, a := range addrs {
		titles, err := fetchTitlesFrom(a)
		if err == nil {
			return titles, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("no HTTP endpoints in -http")
	}
	return nil, lastErr
}

func fetchTitlesFrom(httpAddr string) ([]string, error) {
	resp, err := http.Get("http://" + httpAddr + "/titlesz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s/titlesz: %s", httpAddr, resp.Status)
	}
	var titles []string
	if err := json.NewDecoder(resp.Body).Decode(&titles); err != nil {
		return nil, err
	}
	return titles, nil
}
