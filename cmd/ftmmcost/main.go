// Command ftmmcost explores the paper's §5 cost model: given a working
// set size, required stream count, and memory/disk prices, it prints the
// cheapest design (scheme and parity group size) and the full per-scheme
// comparison.
//
// Example:
//
//	ftmmcost -workingset 100000 -streams 1200 -cb 100 -cd 1
package main

import (
	"flag"
	"fmt"
	"os"

	"ftmm/internal/cost"
	"ftmm/internal/diskmodel"
	"ftmm/internal/report"
	"ftmm/internal/units"
)

var (
	workingSetMB = flag.Float64("workingset", 100_000, "working set W in MB")
	streams      = flag.Float64("streams", 1200, "required concurrent streams (0: size for storage only)")
	cb           = flag.Float64("cb", 100, "memory price c_b in $/MB")
	cd           = flag.Float64("cd", 1, "disk price c_d in $/MB")
	k            = flag.Int("k", 5, "reserve depth K")
	rateMbps     = flag.Float64("rate", 1.5, "object bandwidth b0 in Mb/s")
	cMin         = flag.Int("cmin", 2, "smallest parity group size to consider")
	cMax         = flag.Int("cmax", 10, "largest parity group size to consider")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftmmcost:", err)
		os.Exit(1)
	}
}

func run() error {
	s := cost.Sizing{
		Disk:       diskmodel.Table1(),
		ObjectRate: units.FromMegabitsPerSecond(*rateMbps),
		WorkingSet: units.FromMegabytes(*workingSetMB),
		K:          *k,
		Prices:     cost.Prices{MemoryPerMB: units.PerMB(*cb), DiskPerMB: units.PerMB(*cd)},
	}
	designs, err := s.CompareAll(*streams, *cMin, *cMax)
	if err != nil {
		return err
	}
	winner, err := cost.Cheapest(designs)
	if err != nil {
		return err
	}

	tbl := report.NewTable(
		fmt.Sprintf("Designs for W=%.0fMB, %.0f streams, cb=$%.0f/MB, cd=$%.2f/MB, K=%d",
			*workingSetMB, *streams, *cb, *cd, *k),
		"Scheme", "C", "Disks", "Max streams", "Buffer tracks", "Memory $", "Disk $", "Total $")
	for _, d := range designs {
		tbl.AddRow(
			d.Scheme.String(), report.Int(d.C), report.Float(d.Disks, 1),
			report.Float(d.MaxStreams, 0), report.Float(d.BufferTracks, 0),
			report.Dollars(float64(d.MemoryCost)), report.Dollars(float64(d.DiskCost)),
			report.Dollars(float64(d.Total)))
	}
	fmt.Println(tbl.String())
	fmt.Printf("Cheapest: %s at C=%d for %s\n", winner.Scheme, winner.C, winner.Total)
	if !winner.FeasibleAtMinDisks {
		fmt.Println("(needs more disks than the working set alone requires — bandwidth-bound)")
	}

	// Per-C detail for the winner, Figure 9(a)-style.
	pts, err := s.Curve(winner.Scheme, *cMin, *cMax)
	if err != nil {
		return err
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = float64(p.C)
		ys[i] = float64(p.Total) / 1000
	}
	fmt.Println()
	fmt.Println(report.RenderSeries(
		fmt.Sprintf("%s cost ($ x1000) vs parity group size at working-set-minimum disks", winner.Scheme),
		"C", xs, []report.Series{{Name: "total", Y: ys}}, 1))
	return nil
}
