// Command ftmmsim runs one multimedia-server simulation scenario from
// flags: build a farm, load a synthetic catalog, admit streams under the
// chosen fault-tolerance scheme, optionally fail and repair a drive
// mid-run, and print the delivery/failure report.
//
// Example:
//
//	ftmmsim -scheme nc -disks 20 -cluster 5 -titles 8 -streams 6 \
//	        -fail-disk 2 -fail-cycle 40 -repair-cycle 120 -cycles 400
//
// With -chaos it instead runs a deterministic fault-injection campaign
// (internal/chaos) and exits non-zero on any invariant violation:
//
//	ftmmsim -chaos -seed 1 -campaign 50 -chaos-out /tmp/traces
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ftmm/internal/chaos"
	"ftmm/internal/diskmodel"
	"ftmm/internal/scenario"
	"ftmm/internal/server"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

var (
	scenarioPath = flag.String("scenario", "", "run a JSON scenario file instead of flag-driven setup (see scenarios/)")
	chaosMode    = flag.Bool("chaos", false, "run a deterministic chaos campaign instead of a single simulation")
	campaignRuns = flag.Int("campaign", 20, "chaos: randomized runs in the campaign")
	chaosNodes   = flag.Int("chaos-nodes", 0, "chaos: fan each run across this many cluster nodes with node kill/drain events (0: single node)")
	chaosSchemes = flag.String("chaos-schemes", "", "chaos: comma-separated scheme rotation (default: all)")
	chaosOut     = flag.String("chaos-out", "", "chaos: directory to write shrunk violation traces as replayable scenario JSON")
	schemeFlag   = flag.String("scheme", "sr", "fault-tolerance scheme: sr, sg, nc, nc-simple, ib, dc")
	disks        = flag.Int("disks", 20, "number of drives")
	cluster      = flag.Int("cluster", 5, "cluster (parity group) size C")
	decluster    = flag.Int("decluster", 0, "declustering group size G for -scheme dc (0 = 2C-1)")
	titles       = flag.Int("titles", 8, "titles in the tape library")
	titleGroups  = flag.Int("groups", 20, "parity groups per title")
	streams      = flag.Int("streams", 6, "streams to admit (staggered)")
	k            = flag.Int("k", 2, "reserve depth (buffer servers / reserved bandwidth)")
	cycles       = flag.Int("cycles", 1000, "maximum cycles to run")
	failDisk     = flag.Int("fail-disk", -1, "drive to fail (-1: none)")
	failCycle    = flag.Int("fail-cycle", 20, "cycle at which the drive fails")
	repairCycle  = flag.Int("repair-cycle", -1, "cycle at which the drive is repaired (-1: never)")
	seed         = flag.Int64("seed", 1, "workload seed")
	zipf         = flag.Float64("zipf", 1.0, "title popularity skew")
	workers      = flag.Int("workers", 0, "engine per-cluster worker goroutines (0 = GOMAXPROCS)")
	showMetrics  = flag.Bool("metrics", false, "print the engine metrics snapshot after the run")
	metricsJSON  = flag.Bool("metrics-json", false, "emit the metrics snapshot as JSON on stdout after the run")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftmmsim:", err)
		os.Exit(1)
	}
}

func run() error {
	if *chaosMode {
		return runChaos()
	}
	if *scenarioPath != "" {
		return runScenario(*scenarioPath)
	}
	scheme, policy, err := server.ParseScheme(*schemeFlag)
	if err != nil {
		return err
	}
	p := diskmodel.Table1()
	// Size drives to hold the catalog comfortably.
	tracksPerTitle := *titleGroups * *cluster
	p.Capacity = units.ByteSize((*titles**cluster*tracksPerTitle)/(*disks)+tracksPerTitle+50) * p.TrackSize

	srv, err := server.New(server.Options{
		Disks: *disks, ClusterSize: *cluster,
		DeclusterGroup: *decluster,
		DiskParams:     p, Scheme: scheme, K: *k, NCPolicy: policy,
		Workers: *workers,
	})
	if err != nil {
		return err
	}

	trackSize := int(p.TrackSize)
	names := workload.ObjectNames("title", *titles)
	for i, id := range names {
		size := units.ByteSize(*titleGroups * (*cluster - 1) * trackSize)
		if err := srv.AddTitle(id, size, i/4, workload.SyntheticContent(id, int(size))); err != nil {
			return err
		}
	}
	gen, err := workload.New(workload.Config{
		Seed: *seed, Objects: names, ZipfS: *zipf, ArrivalsPerSecond: 1,
	})
	if err != nil {
		return err
	}

	fmt.Printf("scheme=%s  D=%d C=%d K=%d  cycle=%v  slots/disk=%d\n\n",
		srv.Engine().Name(), *disks, *cluster, *k, srv.CycleTime(), 0)

	admitted := 0
	for cyc := 0; cyc < *cycles; cyc++ {
		if admitted < *streams {
			id := gen.Pick()
			if sid, staging, err := srv.Request(id); err == nil {
				fmt.Printf("cycle %4d: admitted stream %d for %s (staging %v)\n", cyc, sid, id, staging)
				admitted++
			}
		}
		if *failDisk >= 0 && cyc == *failCycle {
			if err := srv.FailDisk(*failDisk); err != nil {
				return err
			}
			fmt.Printf("cycle %4d: DRIVE %d FAILED\n", cyc, *failDisk)
		}
		if *failDisk >= 0 && *repairCycle >= 0 && cyc == *repairCycle {
			if err := srv.RepairDisk(*failDisk); err != nil {
				return err
			}
			fmt.Printf("cycle %4d: drive %d repaired and rebuilt from parity\n", cyc, *failDisk)
		}
		rep, err := srv.Step()
		if err != nil {
			return err
		}
		for _, h := range rep.Hiccups {
			fmt.Printf("cycle %4d: HICCUP stream %d %s track %d (%s)\n", cyc, h.StreamID, h.ObjectID, h.Track, h.Reason)
		}
		for _, id := range rep.Terminated {
			fmt.Printf("cycle %4d: stream %d TERMINATED (degradation of service)\n", cyc, id)
		}
		for _, id := range rep.Finished {
			fmt.Printf("cycle %4d: stream %d finished\n", cyc, id)
		}
		if admitted >= *streams && srv.Engine().Active() == 0 {
			break
		}
	}

	st := srv.Stats()
	fmt.Printf("\n--- summary after %d cycles (%.1f simulated seconds) ---\n",
		st.Cycles, float64(st.Cycles)*srv.CycleTime().Seconds())
	fmt.Printf("delivered tracks:   %d\n", st.Delivered)
	fmt.Printf("hiccups:            %d\n", st.Hiccups)
	fmt.Printf("reconstructions:    %d\n", st.Reconstructions)
	fmt.Printf("streams finished:   %d, terminated: %d\n", st.Finished, st.Terminated)
	fmt.Printf("disk reads:         %d data, %d parity\n", st.DataReads, st.ParityReads)
	fmt.Printf("buffer peak:        %d tracks (%v)\n", st.BufferPeak, srv.BufferPeakBytes())
	fmt.Printf("tertiary stagings:  %d (%v), evictions: %d\n", st.Stagings, srv.StagingTime(), st.Evictions)
	if *showMetrics {
		fmt.Printf("\n--- engine metrics ---\n%s", srv.MetricsSnapshot())
	}
	if *metricsJSON {
		if err := srv.Metrics().WriteJSON(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// runChaos executes a deterministic fault-injection campaign. The exit
// status is non-zero when any invariant was violated, and -chaos-out
// saves each shrunk trace as a scenario file that -scenario replays.
func runChaos() error {
	cfg := chaos.CampaignConfig{
		Seed: *seed, Runs: *campaignRuns, Workers: *workers, Nodes: *chaosNodes,
	}
	if *chaosSchemes != "" {
		cfg.Schemes = strings.Split(*chaosSchemes, ",")
		valid := make(map[string]bool)
		for _, n := range chaos.SchemeNames() {
			valid[n] = true
		}
		for _, n := range cfg.Schemes {
			if !valid[n] {
				return fmt.Errorf("unknown scheme %q in -chaos-schemes (valid: %s)",
					n, strings.Join(chaos.SchemeNames(), ", "))
			}
		}
	}
	fmt.Printf("chaos campaign: seed=%d runs=%d nodes=%d schemes=%v\n",
		cfg.Seed, cfg.Runs, cfg.Nodes, append([]string(nil), cfgSchemes(cfg)...))
	res, err := chaos.Campaign(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("ran %d schedules, %d violations\n", res.Runs, len(res.Violations))
	for _, v := range res.Violations {
		fmt.Printf("\nrun %d (scheme %s, seed %d): %s violation at cycle %d\n  %s\n",
			v.Run, v.Scheme, v.Seed, v.Violation.Checker, v.Violation.Cycle, v.Violation.Detail)
		fmt.Printf("  shrunk to %d of %d events\n", len(v.Shrunk.Events), v.Events)
		if *chaosOut != "" {
			if err := os.MkdirAll(*chaosOut, 0o755); err != nil {
				return err
			}
			data, err := json.MarshalIndent(v.Shrunk.ToSpec(), "", "  ")
			if err != nil {
				return err
			}
			path := filepath.Join(*chaosOut, fmt.Sprintf("chaos-run%03d-%s.json", v.Run, v.Violation.Checker))
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("  trace written to %s (replay: ftmmsim -scenario %s)\n", path, path)
		}
	}
	return chaos.CheckResult(res)
}

func cfgSchemes(cfg chaos.CampaignConfig) []string {
	if len(cfg.Schemes) > 0 {
		return cfg.Schemes
	}
	return chaos.SchemeNames()
}

// runScenario executes a declarative JSON scenario file. Cluster specs
// (nodes > 1) replay through the chaos cluster runner under the full
// checker set; single-node specs run the classic simulation.
func runScenario(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := scenario.Parse(data)
	if err != nil {
		return err
	}
	if spec.Nodes > 1 {
		return runClusterScenario(path, spec)
	}
	res, err := spec.Run()
	if err != nil {
		return err
	}
	fmt.Printf("scenario %s: scheme=%s farm=%dx%d\n", path, spec.Scheme, spec.Disks, spec.ClusterSize)
	fmt.Printf("requests admitted/rejected: %d/%d\n", res.Admitted, res.Rejected)
	fmt.Printf("delivered tracks:           %d\n", res.Stats.Delivered)
	fmt.Printf("hiccups:                    %d\n", res.Summary.Hiccups)
	for cause, n := range res.Summary.HiccupsByCause {
		fmt.Printf("  %-40s %d\n", cause, n)
	}
	fmt.Printf("reconstructions:            %d\n", res.Stats.Reconstructions)
	fmt.Printf("streams finished:           %d, terminated: %d\n", res.Stats.Finished, res.Stats.Terminated)
	fmt.Printf("buffer peak:                %d tracks\n", res.Stats.BufferPeak)
	fmt.Printf("tertiary stagings:          %d (%v)\n", res.Stats.Stagings, res.StagingTime)
	if res.IntegrityErr != nil {
		return fmt.Errorf("INTEGRITY VIOLATION: %w", res.IntegrityErr)
	}
	fmt.Println("integrity:                  every delivered byte matched the stored content")
	return nil
}

// runClusterScenario replays a cluster spec through the deterministic
// multi-node chaos runner, exiting non-zero on any invariant breach.
func runClusterScenario(path string, spec *scenario.Spec) error {
	sch := chaos.FromSpec(spec)
	res, err := chaos.RunCluster(chaos.ClusterRunConfig{Schedule: *sch})
	if err != nil {
		return err
	}
	fmt.Printf("cluster scenario %s: scheme=%s nodes=%d replicas=%d farm=%dx%d per node\n",
		path, spec.Scheme, spec.Nodes, spec.Replicas, spec.Disks, spec.ClusterSize)
	finished, resumed, lost, cancelled, terminated := 0, 0, 0, 0, 0
	for _, s := range res.Sessions {
		if s.Finished {
			finished++
		}
		if s.Resumes > 0 {
			resumed++
		}
		if s.Lost {
			lost++
			fmt.Printf("  session %d (%s) lost: %s\n", s.Ordinal, s.Title, s.LostReason)
		}
		if s.Cancelled {
			cancelled++
		}
		if s.Terminated {
			terminated++
		}
	}
	fmt.Printf("sessions:  %d admitted, %d finished, %d failed over, %d lost, %d cancelled, %d terminated\n",
		len(res.Sessions), finished, resumed, lost, cancelled, terminated)
	fmt.Printf("cycles:    %d, drained=%v\n", res.Cycles, res.Drained)
	if res.Violation != nil {
		return fmt.Errorf("%s violation at cycle %d: %s",
			res.Violation.Checker, res.Violation.Cycle, res.Violation.Detail)
	}
	fmt.Println("invariants: per-node checkers and cross-node continuity all held")
	return nil
}
