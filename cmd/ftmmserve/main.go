// Command ftmmserve runs a multimedia server farm behind the netserve
// network front end: clients connect over TCP with the framed session
// protocol (see internal/netserve), an HTTP surface answers admission
// probes and serves status/metrics, and an optional failure schedule
// injects drive faults mid-run to demonstrate the schemes' fault
// tolerance over a real socket.
//
// Examples:
//
//	ftmmserve -scheme sr -addr :5500 -http :5580
//	ftmmserve -scheme nc -disks 20 -cluster 5 -fail-disk 2 -fail-cycle 40 \
//	          -repair-cycle 200 -speed 100
//
// The pacer runs on a wall clock divided by -speed; -speed 0 selects
// the virtual clock (cycles run back to back, for load tests). SIGINT
// drains gracefully: admissions stop, live streams play out, then the
// process exits. A second SIGINT exits immediately.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ftmm/internal/diskmodel"
	"ftmm/internal/netserve"
	"ftmm/internal/server"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

var (
	addr          = flag.String("addr", "127.0.0.1:5500", "TCP listen address for the session protocol")
	httpAddr      = flag.String("http", "127.0.0.1:5580", "HTTP listen address for /statusz /metricsz /titlesz /admitz (empty: disabled)")
	schemeFlag    = flag.String("scheme", "sr", "fault-tolerance scheme: sr, sg, nc, nc-simple, ib")
	disks         = flag.Int("disks", 20, "number of drives")
	cluster       = flag.Int("cluster", 5, "cluster (parity group) size C")
	k             = flag.Int("k", 2, "reserve depth (buffer servers / reserved bandwidth)")
	titles        = flag.Int("titles", 8, "titles in the tape library")
	titleGroups   = flag.Int("groups", 20, "parity groups per title")
	workers       = flag.Int("workers", 0, "engine per-cluster worker goroutines (0 = GOMAXPROCS)")
	speed         = flag.Float64("speed", 1, "wall-clock speedup for the pacer (0: virtual clock, cycles back to back)")
	queue         = flag.Int("queue", 64, "per-session send queue depth in bursts (overflow sheds the client)")
	writeTimeout  = flag.Duration("write-timeout", 10*time.Second, "per-burst socket write stall limit (timer-wheel supervised)")
	pprofFlag     = flag.Bool("pprof", false, "mount /debug/pprof profiling handlers on the HTTP surface")
	failDisk      = flag.Int("fail-disk", -1, "drive to fail (-1: none)")
	failCycle     = flag.Int("fail-cycle", 20, "cycle at which the drive fails")
	repairCycle   = flag.Int("repair-cycle", -1, "cycle at which the drive is repaired offline (-1: never)")
	rebuildCycle  = flag.Int("rebuild-cycle", -1, "cycle at which an online rebuild starts (-1: never)")
	rebuildBudget = flag.Int("rebuild-budget", 2, "spare reads per cycle for the online rebuild")
	drainTimeout  = flag.Duration("drain-timeout", time.Minute, "how long to wait for streams to play out on shutdown")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftmmserve:", err)
		os.Exit(1)
	}
}

func run() error {
	scheme, policy, err := server.ParseScheme(*schemeFlag)
	if err != nil {
		return err
	}
	p := diskmodel.Table1()
	tracksPerTitle := *titleGroups * *cluster
	p.Capacity = units.ByteSize((*titles**cluster*tracksPerTitle)/(*disks)+tracksPerTitle+50) * p.TrackSize
	srv, err := server.New(server.Options{
		Disks: *disks, ClusterSize: *cluster,
		DiskParams: p, Scheme: scheme, K: *k, NCPolicy: policy,
		Workers: *workers,
	})
	if err != nil {
		return err
	}
	trackSize := int(p.TrackSize)
	for i, id := range workload.ObjectNames("title", *titles) {
		size := units.ByteSize(*titleGroups * (*cluster - 1) * trackSize)
		if err := srv.AddTitle(id, size, i/4, workload.SyntheticContent(id, int(size))); err != nil {
			return err
		}
		// Prestage: an admit-and-cancel pulls the title from tape onto the
		// farm now, so later admissions (possibly under a failed drive,
		// when staging writes would be refused) find it resident.
		sid, _, err := srv.Request(id)
		if err != nil {
			return fmt.Errorf("prestaging %s: %w", id, err)
		}
		if err := srv.Cancel(sid); err != nil {
			return err
		}
	}

	var clock netserve.Clock
	if *speed > 0 {
		clock = netserve.WallClock(*speed)
	} else {
		clock = netserve.VirtualClock()
	}
	ns, err := netserve.New(netserve.Options{
		Server:       srv,
		Addr:         *addr,
		Clock:        clock,
		SendQueue:    *queue,
		WriteTimeout: *writeTimeout,
		EnablePprof:  *pprofFlag,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer ns.Close()

	if *failDisk >= 0 {
		ns.ScheduleFailure(*failCycle, *failDisk)
		if *repairCycle >= 0 {
			ns.ScheduleRepair(*repairCycle, *failDisk)
		}
		if *rebuildCycle >= 0 {
			ns.ScheduleRebuild(*rebuildCycle, *failDisk, *rebuildBudget)
		}
	}

	if *httpAddr != "" {
		hs := &http.Server{Addr: *httpAddr, Handler: ns.Handler()}
		go func() {
			if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "ftmmserve: http:", err)
			}
		}()
		defer hs.Close()
		fmt.Printf("http   %s  (/statusz /metricsz /titlesz /admitz)\n", *httpAddr)
	}
	fmt.Printf("serve  %s  scheme=%s D=%d C=%d K=%d cycle=%v burst=%d titles=%d\n",
		ns.Addr(), srv.Engine().Name(), *disks, *cluster, *k, ns.CycleTime(), ns.Burst(), *titles)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("ftmmserve: draining (interrupt again to exit immediately)")
	done := make(chan error, 1)
	go func() { done <- ns.Drain(*drainTimeout) }()
	select {
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftmmserve:", err)
		}
	case <-sig:
		fmt.Println("ftmmserve: hard exit")
	}
	return ns.Close()
}
