// Command ftmmserve runs one process of a fault-tolerant multimedia
// service. It has two modes:
//
// Node mode (default) hosts one shard of the server farm behind the
// framed session protocol (a thin wrapper over internal/node): clients
// connect over TCP, an HTTP surface answers admission probes and
// serves status/metrics, and an optional failure schedule injects
// drive faults mid-run. With -peers the node computes its slice of the
// catalog with the same deterministic rendezvous placement the
// coordinator uses, so the two agree without talking.
//
// Coordinator mode (-coordinator) runs the cluster admission plane:
// ADMIT/RESUME requests are redirected to the right node by placement,
// heartbeats disseminate membership views and detect node death, and
// /clusterz endpoints add, drain, or remove nodes live.
//
// Examples:
//
//	# standalone server
//	ftmmserve -scheme sr -addr :5500 -http :5580
//
//	# one node of a 3-node cluster (its catalog slice is computed
//	# from -peers; the same placement flags must be given everywhere)
//	ftmmserve -id node0 -addr :5500 -http :5580 -peers node0,node1,node2
//
//	# the admission plane over those nodes
//	ftmmserve -coordinator -addr :5590 -http :5591 \
//	          -nodes node0=127.0.0.1:5500/127.0.0.1:5580,node1=...
//
// The pacer runs on a wall clock divided by -speed; -speed 0 selects
// the virtual clock (cycles run back to back, for load tests). SIGINT
// drains gracefully: admissions stop, live streams play out, then the
// process exits. A second SIGINT exits immediately.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ftmm/internal/cluster"
	"ftmm/internal/netserve"
	"ftmm/internal/node"
	"ftmm/internal/workload"
)

var (
	addr       = flag.String("addr", "127.0.0.1:5500", "TCP listen address for the session protocol")
	httpAddr   = flag.String("http", "127.0.0.1:5580", "HTTP listen address for /statusz /metricsz /titlesz /admitz /viewz (empty: disabled)")
	schemeFlag = flag.String("scheme", "sr", "fault-tolerance scheme: sr, sg, nc, nc-simple, ib, dc")
	disks      = flag.Int("disks", 20, "number of drives")
	clusterSz  = flag.Int("cluster", 5, "cluster (parity group) size C")
	decluster  = flag.Int("decluster", 0, "declustering group size G for -scheme dc (0 = 2C-1)")
	k          = flag.Int("k", 2, "reserve depth (buffer servers / reserved bandwidth)")
	titles     = flag.Int("titles", 8, "titles in the tape library (full catalog, popularity order)")
	groups     = flag.Int("groups", 20, "parity groups per title")
	workers    = flag.Int("workers", 0, "engine per-cluster worker goroutines (0 = GOMAXPROCS)")
	noMerge    = flag.Bool("no-merged-reads", false, "disable same-title read merging (benchmarking knob; reports are identical either way)")
	noPipe     = flag.Bool("no-pipeline", false, "disable the two-stage cycle pipeline (benchmarking/bisection knob; delivered bytes are identical either way)")
	speed      = flag.Float64("speed", 1, "wall-clock speedup for the pacer (0: virtual clock, cycles back to back)")
	queue      = flag.Int("queue", 64, "per-session send queue depth in bursts (overflow sheds the client)")
	batchCyc   = flag.Int("batch-cycles", 0, "hold flash-crowd ADMITs per title for up to this many cycles so same-title arrivals share one staged read (0: off)")
	writeTO    = flag.Duration("write-timeout", 10*time.Second, "per-burst socket write stall limit (timer-wheel supervised)")
	pprofFlag  = flag.Bool("pprof", false, "mount /debug/pprof profiling handlers on the HTTP surface")
	drainTO    = flag.Duration("drain-timeout", time.Minute, "how long to wait for streams to play out on shutdown")

	// Cluster identity and placement. The placement flags must match
	// across every node and the coordinator — the rendezvous hash is the
	// only agreement protocol.
	nodeID    = flag.String("id", "", "this node's cluster identity (rides in ADMIT-OK and /statusz)")
	peers     = flag.String("peers", "", "comma-separated node IDs of the whole cluster; set to serve only this node's placement slice")
	replicas  = flag.Int("replicas", 2, "placement copies of a cold title")
	hotReps   = flag.Int("hot-replicas", 3, "placement copies of a hot title")
	hotTitles = flag.Int("hot-titles", 2, "size of the Zipf head that gets -hot-replicas copies")
	placeSeed = flag.Int64("placement-seed", 1, "rendezvous placement seed")

	// Coordinator mode.
	coordMode = flag.Bool("coordinator", false, "run the cluster admission plane instead of a node")
	nodesFlag = flag.String("nodes", "", "coordinator membership: id=addr[/httpaddr],... (required with -coordinator)")
	heartbeat = flag.Duration("heartbeat", time.Second, "coordinator heartbeat interval")
	hbTimeout = flag.Duration("heartbeat-timeout", 2*time.Second, "per-heartbeat round-trip limit")
	hbMisses  = flag.Int("miss-threshold", 3, "consecutive heartbeat misses that declare a node dead")

	// Single-drive failure schedule (node mode).
	failDisk      = flag.Int("fail-disk", -1, "drive to fail (-1: none)")
	failCycle     = flag.Int("fail-cycle", 20, "cycle at which the drive fails")
	repairCycle   = flag.Int("repair-cycle", -1, "cycle at which the drive is repaired offline (-1: never)")
	rebuildCycle  = flag.Int("rebuild-cycle", -1, "cycle at which an online rebuild starts (-1: never)")
	rebuildBudget = flag.Int("rebuild-budget", 2, "spare reads per cycle for the online rebuild")
)

func main() {
	flag.Parse()
	var err error
	if *coordMode {
		err = runCoordinator()
	} else {
		err = runNode()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftmmserve:", err)
		os.Exit(1)
	}
}

func placementConfig() cluster.PlacementConfig {
	return cluster.PlacementConfig{
		Seed:        *placeSeed,
		Replicas:    *replicas,
		HotReplicas: *hotReps,
		HotTitles:   *hotTitles,
	}
}

// catalog is the full library in popularity-rank order; both modes
// derive it from the same flags so placement agrees.
func catalog() []string { return workload.ObjectNames("title", *titles) }

// ---- node mode ----

func runNode() error {
	var clock netserve.Clock
	if *speed > 0 {
		clock = netserve.WallClock(*speed)
	} else {
		clock = netserve.VirtualClock()
	}
	cfg := node.Config{
		ID:     *nodeID,
		Scheme: *schemeFlag,
		Disks:  *disks, Cluster: *clusterSz, K: *k,
		Decluster:          *decluster,
		Workers:            *workers,
		DisableMergedReads: *noMerge,
		NoPipeline:         *noPipe,
		GenTitles:          *titles,
		Groups:             *groups,
		Addr:               *addr,
		HTTPAddr:           *httpAddr,
		Clock:              clock,
		SendQueue:          *queue,
		BatchCycles:        *batchCyc,
		WriteTimeout:       *writeTO,
		EnablePprof:        *pprofFlag,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if *peers != "" {
		// Serve only this node's placement slice: the same rendezvous
		// computation the coordinator runs, so no catalog negotiation is
		// needed — agreement is deterministic.
		if *nodeID == "" {
			return fmt.Errorf("-peers requires -id")
		}
		ids := splitList(*peers)
		if !containsStr(ids, *nodeID) {
			return fmt.Errorf("-id %s is not in -peers %s", *nodeID, *peers)
		}
		slice := cluster.Assign(catalog(), ids, placementConfig()).Titles(*nodeID)
		if len(slice) == 0 {
			return fmt.Errorf("placement gives node %s no titles", *nodeID)
		}
		cfg.Titles = slice
	}
	n, err := node.Start(cfg)
	if err != nil {
		return err
	}
	defer n.Close()

	if *failDisk >= 0 {
		n.NS().ScheduleFailure(*failCycle, *failDisk)
		if *repairCycle >= 0 {
			n.NS().ScheduleRepair(*repairCycle, *failDisk)
		}
		if *rebuildCycle >= 0 {
			n.NS().ScheduleRebuild(*rebuildCycle, *failDisk, *rebuildBudget)
		}
	}

	if ha := n.HTTPAddr(); ha != "" {
		fmt.Printf("http   %s  (/statusz /metricsz /titlesz /admitz /viewz)\n", ha)
	}
	id := *nodeID
	if id == "" {
		id = "(standalone)"
	}
	fmt.Printf("serve  %s  id=%s scheme=%s D=%d C=%d K=%d cycle=%v burst=%d titles=%d\n",
		n.Addr(), id, n.Server().Engine().Name(), *disks, *clusterSz, *k,
		n.NS().CycleTime(), n.NS().Burst(), len(n.Titles()))

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("ftmmserve: draining (interrupt again to exit immediately)")
	done := make(chan error, 1)
	go func() { done <- n.Drain(*drainTO) }()
	select {
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftmmserve:", err)
		}
	case <-sig:
		fmt.Println("ftmmserve: hard exit")
	}
	return n.Close()
}

// ---- coordinator mode ----

func runCoordinator() error {
	members, err := parseMembers(*nodesFlag)
	if err != nil {
		return err
	}
	c, err := netserve.NewCoordinator(netserve.CoordinatorOptions{
		Addr:              *addr,
		Nodes:             members,
		Titles:            catalog(),
		Placement:         placementConfig(),
		HeartbeatInterval: *heartbeat,
		HeartbeatTimeout:  *hbTimeout,
		MissThreshold:     *hbMisses,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer c.Close()

	if *httpAddr != "" {
		hs := &http.Server{Addr: *httpAddr, Handler: c.Handler()}
		go func() {
			if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "ftmmserve: http:", err)
			}
		}()
		defer hs.Close()
		fmt.Printf("http   %s  (/statusz /viewz /titlesz /clusterz/{add,drain,remove})\n", *httpAddr)
	}
	fmt.Printf("coord  %s  nodes=%d titles=%d replicas=%d/%d heartbeat=%v\n",
		c.Addr(), len(members), *titles, *replicas, *hotReps, *heartbeat)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return c.Close()
}

// parseMembers parses "id=addr[/httpaddr],..." into the initial view.
func parseMembers(s string) ([]cluster.Member, error) {
	parts := splitList(s)
	if len(parts) == 0 {
		return nil, fmt.Errorf("-coordinator requires -nodes id=addr[/httpaddr],...")
	}
	members := make([]cluster.Member, 0, len(parts))
	for _, p := range parts {
		id, rest, ok := strings.Cut(p, "=")
		if !ok || id == "" || rest == "" {
			return nil, fmt.Errorf("bad -nodes entry %q (want id=addr[/httpaddr])", p)
		}
		addr, httpAddr, _ := strings.Cut(rest, "/")
		if addr == "" {
			return nil, fmt.Errorf("bad -nodes entry %q: empty address", p)
		}
		members = append(members, cluster.Member{ID: id, Addr: addr, HTTPAddr: httpAddr})
	}
	return members, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func containsStr(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
