#!/usr/bin/env bash
# Three-node cluster smoke test, the process-level companion to the
# in-process suite in internal/node: boot three ftmmserve shards and a
# coordinator, stream through the admission plane with ftmmload, kill
# one node mid-stream, and require every stream to finish bit-exact.
# ftmmload verifies each track against the synthetic content and exits
# non-zero on any missing or corrupt track, so the assertion is simply
# its exit code.
#
# Usage: scripts/cluster_smoke.sh [bindir]
#   bindir: directory with prebuilt ftmmserve/ftmmload (default: builds
#   into a temp dir; set GOFLAGS=-race beforehand for a race-enabled
#   smoke).
set -euo pipefail

cd "$(dirname "$0")/.."

BASE_PORT="${BASE_PORT:-5600}"
PEERS=node0,node1,node2
SPEED=10        # wall clock sped up: ~107ms cycles, a title plays ~4s
TITLE_GROUPS=40       # parity groups per title (title length)
CLIENTS=6
REQUESTS=2

workdir="$(mktemp -d)"
bindir="${1:-$workdir/bin}"
pids=()

cleanup() {
  local code=$?
  for pid in "${pids[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  if [ "$code" -ne 0 ]; then
    echo "=== smoke failed; server logs ===" >&2
    tail -n 40 "$workdir"/*.log >&2 || true
  fi
  rm -rf "$workdir"
  exit "$code"
}
trap cleanup EXIT

if [ ! -x "$bindir/ftmmserve" ]; then
  mkdir -p "$bindir"
  go build -o "$bindir" ./cmd/ftmmserve ./cmd/ftmmload
fi

# Node ports: session BASE_PORT+i, HTTP BASE_PORT+80+i.
nodes_flag=""
for i in 0 1 2; do
  addr="127.0.0.1:$((BASE_PORT + i))"
  http="127.0.0.1:$((BASE_PORT + 80 + i))"
  "$bindir/ftmmserve" -id "node$i" -peers "$PEERS" \
    -addr "$addr" -http "$http" -groups "$TITLE_GROUPS" -speed "$SPEED" \
    >"$workdir/node$i.log" 2>&1 &
  pids+=($!)
  eval "node${i}_pid=$!"
  nodes_flag+="${nodes_flag:+,}node$i=$addr/$http"
done

wait_http() {
  for _ in $(seq 1 150); do
    if curl -fsS "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "timed out waiting for $1" >&2
  return 1
}

# Nodes bind only after staging their catalog slice; the coordinator
# starts once they answer, so its failure detector never sees the boot
# window (a node declared dead stays dead until re-added — that is the
# disposable-node contract, not a bug to paper over with a longer
# miss threshold).
for i in 0 1 2; do
  wait_http "http://127.0.0.1:$((BASE_PORT + 80 + i))/statusz"
done

coord_addr="127.0.0.1:$((BASE_PORT + 90))"
coord_http="127.0.0.1:$((BASE_PORT + 91))"
"$bindir/ftmmserve" -coordinator -nodes "$nodes_flag" \
  -addr "$coord_addr" -http "$coord_http" -groups "$TITLE_GROUPS" \
  -heartbeat 250ms -heartbeat-timeout 1s -miss-threshold 2 \
  >"$workdir/coord.log" 2>&1 &
pids+=($!)
wait_http "http://$coord_http/viewz"

"$bindir/ftmmload" -addr "$coord_addr" -http "$coord_http" \
  -clients "$CLIENTS" -requests "$REQUESTS" >"$workdir/load.out" 2>"$workdir/load.err" &
load_pid=$!
pids+=("$load_pid")

# Let streams get going, then kill the busiest node hard mid-stream —
# the coordinator's view carries each node's heartbeat-reported session
# count, so this always kills live streams. Those sessions must fail
# over to a replica holder and finish bit-exact.
sleep 2
victim="$(curl -fsS "http://$coord_http/viewz" | python3 -c '
import json, sys
v = json.load(sys.stdin)
m = max(v["members"], key=lambda m: m["sessions"])
if m["sessions"] == 0:
    sys.exit("no node is serving any session")
print(m["id"])
')"
victim_pid="$(eval echo "\$${victim}_pid")"
echo "killing $victim (pid $victim_pid) mid-stream"
kill -9 "$victim_pid"

if ! wait "$load_pid"; then
  echo "=== ftmmload failed ===" >&2
  cat "$workdir/load.out" "$workdir/load.err" >&2
  exit 1
fi
cat "$workdir/load.out"

# The kill must actually have been absorbed as failovers (otherwise the
# test proved nothing); the coordinator must have declared node0 dead.
if ! grep -Eq '[1-9][0-9]* failovers' "$workdir/load.out"; then
  echo "no sessions failed over — the kill missed the streams" >&2
  exit 1
fi
if ! curl -fsS "http://$coord_http/viewz" | grep -q '"dead"'; then
  echo "coordinator never declared $victim dead" >&2
  cat "$workdir/coord.log" >&2
  exit 1
fi
echo "cluster smoke OK"
