// Rebuilddrill: exercise the paper's deferred *rebuild mode* end to end.
// A drive dies mid-service; we compare three recovery paths on the same
// workload: (1) offline parity rebuild (instant in simulated time but
// the cluster is degraded until an operator acts), (2) online
// incremental rebuild from spare bandwidth at several budgets, and (3)
// reloading the affected objects from the tape library — the slow path a
// catastrophic failure forces.
package main

import (
	"fmt"
	"log"
	"time"

	"ftmm/internal/analytic"
	"ftmm/internal/diskmodel"
	"ftmm/internal/rebuild"
	"ftmm/internal/schemes"
	"ftmm/internal/server"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

const (
	disks       = 20
	clusterSize = 5
	titles      = 6
	titleGroups = 24
	victim      = 3
)

func newServer() (*server.Server, error) {
	p := diskmodel.Table1()
	tracksPerTitle := titleGroups * clusterSize
	p.Capacity = units.ByteSize(titles*tracksPerTitle/disks+tracksPerTitle+40) * p.TrackSize
	srv, err := server.New(server.Options{
		Disks: disks, ClusterSize: clusterSize,
		DiskParams: p, Scheme: analytic.NonClustered,
		NCPolicy: schemes.AlternateSwitchover, K: 2,
	})
	if err != nil {
		return nil, err
	}
	trackSize := int(p.TrackSize)
	for i := 0; i < titles; i++ {
		id := fmt.Sprintf("title%d", i)
		size := units.ByteSize(titleGroups * (clusterSize - 1) * trackSize)
		if err := srv.AddTitle(id, size, i/3, workload.SyntheticContent(id, int(size))); err != nil {
			return nil, err
		}
	}
	return srv, nil
}

func main() {
	fmt.Println("=== Online rebuild at increasing spare-read budgets ===")
	for _, budget := range []int{4, 8, 16, 32} {
		srv, err := newServer()
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if _, _, err := srv.Request(fmt.Sprintf("title%d", i)); err != nil {
				log.Fatal(err)
			}
			if _, err := srv.Step(); err != nil {
				log.Fatal(err)
			}
		}
		if err := srv.FailDisk(victim); err != nil {
			log.Fatal(err)
		}
		if err := srv.RunFor(4); err != nil {
			log.Fatal(err)
		}
		if err := srv.StartOnlineRebuild(victim, budget); err != nil {
			log.Fatal(err)
		}
		start := srv.Stats().Cycles
		total := srv.RebuildRemaining()
		for srv.RebuildRemaining() > 0 {
			if _, err := srv.Step(); err != nil {
				log.Fatal(err)
			}
		}
		cycles := srv.Stats().Cycles - start
		if err := srv.RunUntilIdle(2000); err != nil {
			log.Fatal(err)
		}
		st := srv.Stats()
		fmt.Printf("  budget %2d reads/cycle: %3d tracks restored in %3d cycles (%6s wall); "+
			"hiccups %d, service uninterrupted\n",
			budget, total, cycles,
			(time.Duration(cycles) * srv.CycleTime()).Truncate(time.Millisecond),
			st.Hiccups)
	}

	fmt.Println()
	fmt.Println("=== The tape alternative for the same drive ===")
	srv, err := newServer()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := srv.Request(fmt.Sprintf("title%d", i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := srv.RunUntilIdle(2000); err != nil {
		log.Fatal(err)
	}
	if err := srv.FailDisk(victim); err != nil {
		log.Fatal(err)
	}
	cost, err := srv.RebuildFromTertiary(victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  reloading the affected titles from tape: %v of tape-drive time\n", cost.Truncate(time.Second))
	fmt.Println("  (mounts plus 4 Mbit/s transfers — why the paper calls tertiary rebuild slow)")

	fmt.Println()
	fmt.Println("=== Rebuild-time model ===")
	srv2, err := newServer()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := srv2.Request(fmt.Sprintf("title%d", i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := srv2.RunUntilIdle(2000); err != nil {
		log.Fatal(err)
	}
	drv, _ := srv2.Farm().Drive(victim)
	if err := drv.Fail(); err != nil {
		log.Fatal(err)
	}
	if err := drv.Replace(); err != nil {
		log.Fatal(err)
	}
	r, err := rebuild.New(srv2.Farm(), srv2.Catalog().Layout(), victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  tracks to restore: %d; reads per track: %d\n", r.Remaining(), r.ReadsPerTrack())
	for _, budget := range []int{4, 8, 16, 32} {
		fmt.Printf("  budget %2d: CyclesNeeded predicts %d cycles\n", budget, r.CyclesNeeded(budget))
	}
}
