// Capacityplanning: use the paper's §5 cost model to size a video server.
// Reproduces the worked example (≈1200 required streams over a 100 GB
// working set) and then walks the requirement up to show the crossover
// where the Improved-bandwidth scheme becomes the design of choice —
// "when the disks required to hold the working set do not provide the
// bandwidth required".
package main

import (
	"fmt"
	"log"

	"ftmm/internal/analytic"
	"ftmm/internal/cost"
	"ftmm/internal/report"
)

func main() {
	sizing := cost.Figure9() // W = 100,000 MB on 1 GB drives, K = 5

	fmt.Println("=== The paper's worked example: 1200 required streams ===")
	designs, err := sizing.CompareAll(1200, 2, 10)
	if err != nil {
		log.Fatal(err)
	}
	tbl := report.NewTable("", "Scheme", "Best C", "Disks", "Total cost")
	for _, d := range designs {
		tbl.AddRow(d.Scheme.String(), report.Int(d.C), report.Float(d.Disks, 1),
			report.Dollars(float64(d.Total)))
	}
	fmt.Println(tbl.String())
	winner, _ := cost.Cheapest(designs)
	fmt.Printf("cheapest: %s at C=%d (%s)\n", winner.Scheme, winner.C, winner.Total)
	fmt.Println("(the paper: SR wants small clusters ~4, SG/NC large ~10, NC cheapest)")

	fmt.Println()
	fmt.Println("=== Where does Improved-bandwidth start to win? ===")
	sweep := report.NewTable("", "Required streams", "Winner", "C", "Total", "Needs extra disks")
	for _, need := range []float64{1000, 1200, 1400, 1600, 1800, 2000, 2200, 2600, 3000} {
		ds, err := sizing.CompareAll(need, 2, 10)
		if err != nil {
			log.Fatal(err)
		}
		w, _ := cost.Cheapest(ds)
		sweep.AddRow(report.Float(need, 0), w.Scheme.Abbrev(), report.Int(w.C),
			report.Dollars(float64(w.Total)), fmt.Sprintf("%v", !w.FeasibleAtMinDisks))
	}
	fmt.Println(sweep.String())

	// How much capacity do the working-set disks give each scheme for
	// free? Past this, streams must be bought with extra spindles.
	fmt.Println("=== Stream capacity at working-set-minimum disks (Figure 9(b) extremes) ===")
	for _, scheme := range analytic.Schemes() {
		lo, err := sizing.Evaluate(scheme, 2, 0)
		if err != nil {
			log.Fatal(err)
		}
		hi, err := sizing.Evaluate(scheme, 10, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s C=2: %6.0f streams   C=10: %6.0f streams\n",
			scheme.String(), lo.MaxStreams, hi.MaxStreams)
	}
}
