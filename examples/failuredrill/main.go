// Failuredrill: run the identical workload and drive failure against all
// four fault-tolerance schemes side by side and compare how each absorbs
// it — the operational counterpart of the paper's §5 comparison. Shows
// Streaming RAID and Staggered-group masking the failure outright,
// Non-clustered paying a few transition hiccups (fewer with the alternate
// switchover), and Improved-bandwidth shifting parity reads to the right.
package main

import (
	"fmt"
	"log"

	"ftmm/internal/analytic"
	"ftmm/internal/diskmodel"
	"ftmm/internal/report"
	"ftmm/internal/schemes"
	"ftmm/internal/server"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

const (
	disks       = 20
	clusterSize = 5
	titleGroups = 25
	streamCount = 5
	failDrive   = 2
	failAfter   = 12 // cycles
)

type drill struct {
	name   string
	scheme analytic.Scheme
	policy schemes.TransitionPolicy
}

func main() {
	drills := []drill{
		{"Streaming RAID", analytic.StreamingRAID, 0},
		{"Staggered-group", analytic.StaggeredGroup, 0},
		{"Non-clustered (simple)", analytic.NonClustered, schemes.SimpleSwitchover},
		{"Non-clustered (alternate)", analytic.NonClustered, schemes.AlternateSwitchover},
		{"Improved-bandwidth", analytic.ImprovedBandwidth, 0},
	}
	tbl := report.NewTable(
		fmt.Sprintf("Failure drill: drive %d fails after %d cycles, %d streams, C=%d",
			failDrive, failAfter, streamCount, clusterSize),
		"Scheme", "Hiccups", "Reconstructions", "Parity reads", "Terminated", "Buffer peak (tracks)")
	for _, d := range drills {
		st, err := run(d)
		if err != nil {
			log.Fatalf("%s: %v", d.name, err)
		}
		tbl.AddRow(d.name, report.Int(st.Hiccups), report.Int(st.Reconstructions),
			report.Int(st.ParityReads), report.Int(st.Terminated), report.Int(st.BufferPeak))
	}
	fmt.Println(tbl.String())
	fmt.Println("SR/SG: zero hiccups at the price of reading parity every cycle.")
	fmt.Println("NC: loses a handful of tracks in the C-cycle transition; alternate <= simple.")
	fmt.Println("IB: spends no parity bandwidth until the failure, then shifts right.")
}

func run(d drill) (server.Stats, error) {
	params := diskmodel.Table1()
	tracksPerTitle := titleGroups * clusterSize
	params.Capacity = units.ByteSize(streamCount*tracksPerTitle/disks+2*tracksPerTitle) * params.TrackSize

	srv, err := server.New(server.Options{
		Disks: disks, ClusterSize: clusterSize,
		DiskParams: params, Scheme: d.scheme, NCPolicy: d.policy, K: 2,
	})
	if err != nil {
		return server.Stats{}, err
	}
	trackSize := int(params.TrackSize)
	for i := 0; i < streamCount; i++ {
		id := fmt.Sprintf("title%d", i)
		size := units.ByteSize(titleGroups * (clusterSize - 1) * trackSize)
		if err := srv.AddTitle(id, size, i/3, workload.SyntheticContent(id, int(size))); err != nil {
			return server.Stats{}, err
		}
	}
	// Staggered admissions: one stream per cycle.
	for i := 0; i < streamCount; i++ {
		if _, _, err := srv.Request(fmt.Sprintf("title%d", i)); err != nil {
			return server.Stats{}, err
		}
		if _, err := srv.Step(); err != nil {
			return server.Stats{}, err
		}
	}
	if err := srv.RunFor(failAfter); err != nil {
		return server.Stats{}, err
	}
	if err := srv.FailDisk(failDrive); err != nil {
		return server.Stats{}, err
	}
	if err := srv.RunUntilIdle(5000); err != nil {
		return server.Stats{}, err
	}
	return srv.Stats(), nil
}
