// Quickstart: build a small fault-tolerant multimedia server, admit two
// streams, kill a disk mid-playback, and watch the parity machinery mask
// it — zero hiccups, every track delivered.
package main

import (
	"fmt"
	"log"

	"ftmm/internal/analytic"
	"ftmm/internal/diskmodel"
	"ftmm/internal/server"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

func main() {
	// A 10-drive farm in two clusters of 5 (4 data + 1 parity each),
	// running the Streaming RAID scheme from the paper's §2.
	params := diskmodel.Table1()
	params.Capacity = 200 * params.TrackSize // small drives for the demo

	srv, err := server.New(server.Options{
		Disks:       10,
		ClusterSize: 5,
		DiskParams:  params,
		Scheme:      analytic.StreamingRAID,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Archive one "movie" on tape: 40 tracks of deterministic bytes.
	size := units.ByteSize(40) * params.TrackSize
	content := workload.SyntheticContent("big-buck-bunny", int(size))
	if err := srv.AddTitle("big-buck-bunny", size, 0, content); err != nil {
		log.Fatal(err)
	}

	// First request stages the movie from tape to disk; both streams are
	// then served from the striped, parity-protected layout.
	for i := 0; i < 2; i++ {
		id, staging, err := srv.Request("big-buck-bunny")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stream %d admitted (staging from tape: %v)\n", id, staging)
	}

	// A few normal cycles, then a drive dies.
	if err := srv.RunFor(3); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cycle 3: failing drive 1 ...")
	if err := srv.FailDisk(1); err != nil {
		log.Fatal(err)
	}

	// Play both streams to the end.
	if err := srv.RunUntilIdle(100); err != nil {
		log.Fatal(err)
	}

	st := srv.Stats()
	fmt.Printf("delivered %d tracks with %d hiccups (%d reconstructed on the fly)\n",
		st.Delivered, st.Hiccups, st.Reconstructions)
	fmt.Printf("peak buffer use: %d tracks = %v\n", st.BufferPeak, srv.BufferPeakBytes())
	if st.Hiccups == 0 {
		fmt.Println("the failure was completely masked — that is the point of the paper")
	}
}
