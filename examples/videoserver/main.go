// Videoserver: a service window of an on-demand video server under a
// Zipf-skewed Poisson workload — the scenario the paper's introduction
// motivates. Streams arrive over time, cold titles are staged from the
// tape library (evicting cold ones), a drive fails mid-run and is later
// repaired and rebuilt from parity, and the run ends with a service
// report.
package main

import (
	"fmt"
	"log"
	"time"

	"ftmm/internal/analytic"
	"ftmm/internal/diskmodel"
	"ftmm/internal/schemes"
	"ftmm/internal/server"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

const (
	disks       = 20
	clusterSize = 5
	titleCount  = 16
	titleGroups = 30 // parity groups per title: 120 tracks ≈ 6 MB objects
	failAt      = 50 * time.Second
	repairAt    = 120 * time.Second
	serviceEnd  = 300 * time.Second
)

func main() {
	params := diskmodel.Table1()
	tracksPerTitle := titleGroups * clusterSize
	params.Capacity = units.ByteSize(titleCount*tracksPerTitle/disks+2*tracksPerTitle) * params.TrackSize

	srv, err := server.New(server.Options{
		Disks: disks, ClusterSize: clusterSize,
		DiskParams: params,
		Scheme:     analytic.NonClustered,
		NCPolicy:   schemes.AlternateSwitchover,
		K:          2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The permanent database: 16 titles across 4 tapes, hot-to-cold.
	names := workload.ObjectNames("title", titleCount)
	trackSize := int(params.TrackSize)
	for i, id := range names {
		size := units.ByteSize(titleGroups * (clusterSize - 1) * trackSize)
		if err := srv.AddTitle(id, size, i/4, workload.SyntheticContent(id, int(size))); err != nil {
			log.Fatal(err)
		}
	}

	gen, err := workload.New(workload.Config{
		Seed: 7, Objects: names, ZipfS: 1.0, ArrivalsPerSecond: 0.35,
	})
	if err != nil {
		log.Fatal(err)
	}

	cycle := srv.CycleTime()
	fmt.Printf("video server: %d drives, C=%d, %s scheme, cycle %v\n",
		disks, clusterSize, srv.Engine().Name(), cycle)

	next := gen.Next()
	failed, repaired := false, false
	admitted, rejected := 0, 0
	var now time.Duration
	for now = 0; now < serviceEnd; now += cycle {
		// Admit every request that has arrived by this cycle.
		for next.At <= now {
			if _, staging, err := srv.Request(next.ObjectID); err != nil {
				rejected++
			} else {
				admitted++
				if staging > 0 {
					fmt.Printf("%7.1fs  %-8s staged from tape in %v\n", now.Seconds(), next.ObjectID, staging)
				}
			}
			next = gen.Next()
		}
		if !failed && now >= failAt {
			failed = true
			fmt.Printf("%7.1fs  *** drive 3 FAILED ***\n", now.Seconds())
			if err := srv.FailDisk(3); err != nil {
				log.Fatal(err)
			}
		}
		if failed && !repaired && now >= repairAt {
			repaired = true
			if err := srv.RepairDisk(3); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%7.1fs  drive 3 replaced and rebuilt from parity\n", now.Seconds())
		}
		rep, err := srv.Step()
		if err != nil {
			log.Fatal(err)
		}
		for _, h := range rep.Hiccups {
			fmt.Printf("%7.1fs  hiccup: stream %d, %s track %d\n", now.Seconds(), h.StreamID, h.ObjectID, h.Track)
		}
	}

	st := srv.Stats()
	fmt.Printf("\n--- %v of service ---\n", now.Truncate(time.Second))
	fmt.Printf("requests admitted/rejected: %d/%d\n", admitted, rejected)
	fmt.Printf("tracks delivered:           %d (%.1f MB)\n", st.Delivered,
		float64(st.Delivered)*params.TrackSize.Megabytes())
	fmt.Printf("hiccups:                    %d (all within the failure transition)\n", st.Hiccups)
	fmt.Printf("on-the-fly reconstructions: %d\n", st.Reconstructions)
	fmt.Printf("streams finished:           %d (active at close: %d)\n", st.Finished, srv.Engine().Active())
	fmt.Printf("tape stagings/evictions:    %d/%d (tape time %v)\n", st.Stagings, st.Evictions, srv.StagingTime())
	fmt.Printf("peak buffer memory:         %d tracks = %v\n", st.BufferPeak, srv.BufferPeakBytes())
}
