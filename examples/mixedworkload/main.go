// Mixedworkload: plan a server that carries MPEG-1 and MPEG-2 traffic at
// once — the mix the paper's introduction motivates ("900 MPEG-1 movies
// ... or some combination of the two"). Uses the analytic mixed-load
// planner to find the admissible region, then sizes the catalog split
// with the storage model.
package main

import (
	"fmt"
	"log"

	"ftmm/internal/analytic"
	"ftmm/internal/diskmodel"
	"ftmm/internal/report"
	"ftmm/internal/units"
)

func main() {
	cfg := analytic.Config{
		Disk:       diskmodel.Table1(),
		ObjectRate: units.MPEG1, // default; the planner overrides per class
		D:          100,
		C:          5,
		K:          3,
	}

	fmt.Println("=== Pure-class stream capacity (Streaming RAID, D=100, C=5) ===")
	for _, rate := range []struct {
		name string
		r    units.Rate
	}{{"MPEG-1", units.MPEG1}, {"MPEG-2", units.MPEG2}} {
		c := cfg
		c.ObjectRate = rate.r
		n, err := c.MaxStreamsInt(analytic.StreamingRAID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s %4d streams\n", rate.name, n)
	}

	fmt.Println()
	fmt.Println("=== The admissible frontier for mixes ===")
	tbl := report.NewTable("", "MPEG-2 streams", "MPEG-1 headroom", "Utilization at frontier")
	for _, n2 := range []int{0, 50, 100, 150, 200, 250, 300} {
		plan, err := cfg.MixedLoadPlan(analytic.StreamingRAID, []analytic.StreamClass{
			{Name: "mpeg2", Rate: units.MPEG2, Count: n2},
			{Name: "mpeg1", Rate: units.MPEG1, Count: 0},
		})
		if err != nil {
			log.Fatal(err)
		}
		if !plan.Feasible() {
			tbl.AddRow(report.Int(n2), "-", "infeasible alone")
			continue
		}
		n1 := plan.Headroom[1]
		check, err := cfg.MixedLoadPlan(analytic.StreamingRAID, []analytic.StreamClass{
			{Name: "mpeg2", Rate: units.MPEG2, Count: n2},
			{Name: "mpeg1", Rate: units.MPEG1, Count: n1},
		})
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(report.Int(n2), report.Int(n1), report.Float(check.Utilization, 4))
	}
	fmt.Println(tbl.String())

	fmt.Println("=== Catalog split for a 100 GB working set ===")
	s1 := analytic.MovieSize(units.MPEG1, 90)
	s2 := analytic.MovieSize(units.MPEG2, 90)
	for _, frac1 := range []float64{1, 0.75, 0.5, 0.25, 0} {
		mix, err := analytic.EstimateMixedCapacity(100, diskmodel.Table1(), s1, s2, frac1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3.0f%% MPEG-1 titles: %3d MPEG-1 + %2d MPEG-2 movies fit\n",
			frac1*100, mix.MPEG1Objects, mix.MPEG2Objects)
	}

	fmt.Println()
	fmt.Println("Every row of the frontier trades ~3 MPEG-1 streams per MPEG-2 stream,")
	fmt.Println("the bandwidth ratio of the two formats.")
}
