// Package diskgeom models disk head movement at one level below the
// paper's simple model, to validate it. §2 asserts that because a
// cycle's reads "can be read in any order ... seek times can be
// minimized", the per-cycle read time is bounded by
//
//	T(r) = Tseek + r·Ttrk
//
// with one maximum seek charged per cycle and each track's Ttrk covering
// its rotation plus the "slowdown and the speedup fraction of the seek"
// (the paper cites Ruemmler & Wilkes for the underlying modelling).
//
// This package implements a distance-dependent seek curve
//
//	seek(d) = settle + (seekMax - settle)·sqrt(d / (cylinders-1)),  d >= 1
//
// (the square-root shape of real arms: acceleration-limited short seeks,
// velocity-limited long ones), a one-directional elevator sweep, and
// batch service-time evaluation — so experiments can show that sweeping
// a sorted batch stays within the paper's linear bound while FIFO
// service of the same batch does not.
package diskgeom

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Geometry describes one drive's mechanics.
type Geometry struct {
	// Cylinders is the seek span.
	Cylinders int
	// SeekMax is the full-stroke seek time (the paper's Tseek).
	SeekMax time.Duration
	// Settle is the fixed per-seek start/stop cost (the "slowdown and
	// speedup fraction").
	Settle time.Duration
	// Rotation is the time of one full revolution = one full-track read
	// (the paper reads whole tracks from the next sector boundary, so
	// rotational latency is negligible and transfer = one rotation).
	Rotation time.Duration
}

// Default returns a mid-90s drive in the Seagate ST31200N's class,
// calibrated to Table 1: full-stroke seek 25 ms; one rotation at 5411
// rpm ≈ 11.1 ms; 2 ms settle. With these, Table 1's Ttrk = 20 ms leaves
// ~6.9 ms of per-track seek allowance.
func Default() Geometry {
	return Geometry{
		Cylinders: 2700,
		SeekMax:   25 * time.Millisecond,
		Settle:    2 * time.Millisecond,
		Rotation:  11100 * time.Microsecond,
	}
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	switch {
	case g.Cylinders < 2:
		return errors.New("diskgeom: need at least 2 cylinders")
	case g.SeekMax <= 0 || g.Rotation <= 0:
		return errors.New("diskgeom: seek and rotation must be positive")
	case g.Settle < 0 || g.Settle > g.SeekMax:
		return errors.New("diskgeom: settle must be in [0, SeekMax]")
	}
	return nil
}

// SeekTime returns the head-move time between two cylinders.
func (g Geometry) SeekTime(from, to int) time.Duration {
	d := from - to
	if d < 0 {
		d = -d
	}
	if d == 0 {
		return 0
	}
	frac := math.Sqrt(float64(d) / float64(g.Cylinders-1))
	return g.Settle + time.Duration(float64(g.SeekMax-g.Settle)*frac)
}

// ServiceTime returns the time to serve full-track reads at the given
// cylinders in the given order, starting from startCyl: the sum of seeks
// plus one rotation per track.
func (g Geometry) ServiceTime(startCyl int, cylinders []int) time.Duration {
	total := time.Duration(0)
	pos := startCyl
	for _, c := range cylinders {
		total += g.SeekTime(pos, c)
		total += g.Rotation
		pos = c
	}
	return total
}

// SweepOrder returns the cylinders sorted into a one-directional
// elevator sweep starting from startCyl: ascending if that direction
// covers the batch from the head's side, descending otherwise, so the
// arm crosses the span exactly once.
func SweepOrder(startCyl int, cylinders []int) []int {
	out := append([]int(nil), cylinders...)
	sort.Ints(out)
	if len(out) == 0 {
		return out
	}
	// Choose the direction with the nearer batch edge.
	if abs(startCyl-out[0]) <= abs(startCyl-out[len(out)-1]) {
		return out // ascending
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// SweepTime is the service time of the elevator order.
func (g Geometry) SweepTime(startCyl int, cylinders []int) time.Duration {
	return g.ServiceTime(startCyl, SweepOrder(startCyl, cylinders))
}

// PaperBound is the §2 model's claim for a batch of r tracks:
// Tseek + r·Ttrk.
func PaperBound(tseek, ttrk time.Duration, r int) time.Duration {
	return tseek + time.Duration(r)*ttrk
}

// RandomBatch draws r distinct track cylinders uniformly.
func RandomBatch(rng *rand.Rand, g Geometry, r int) []int {
	if r > g.Cylinders {
		r = g.Cylinders
	}
	seen := make(map[int]bool, r)
	out := make([]int, 0, r)
	for len(out) < r {
		c := rng.Intn(g.Cylinders)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}
