package diskgeom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := []Geometry{
		{Cylinders: 1, SeekMax: 1, Rotation: 1},
		{Cylinders: 10, SeekMax: 0, Rotation: 1},
		{Cylinders: 10, SeekMax: 1, Rotation: 0},
		{Cylinders: 10, SeekMax: 1, Rotation: 1, Settle: 2},
		{Cylinders: 10, SeekMax: 1, Rotation: 1, Settle: -1},
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Errorf("bad geometry %d accepted", i)
		}
	}
}

func TestSeekTimeShape(t *testing.T) {
	g := Default()
	if g.SeekTime(100, 100) != 0 {
		t.Error("zero-distance seek should be free")
	}
	// Symmetric.
	if g.SeekTime(0, 500) != g.SeekTime(500, 0) {
		t.Error("seek not symmetric")
	}
	// Full stroke = SeekMax.
	full := g.SeekTime(0, g.Cylinders-1)
	if d := full - g.SeekMax; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("full stroke = %v, want %v", full, g.SeekMax)
	}
	// Monotone in distance, and short seeks cost at least the settle.
	if g.SeekTime(0, 1) < g.Settle {
		t.Error("short seek below settle")
	}
	prev := time.Duration(0)
	for d := 1; d < g.Cylinders; d *= 3 {
		s := g.SeekTime(0, d)
		if s <= prev {
			t.Errorf("seek(%d) = %v not increasing", d, s)
		}
		prev = s
	}
	// Concavity (the sqrt law): two half-strokes cost more than one full.
	half := g.SeekTime(0, (g.Cylinders-1)/2)
	if 2*half <= full {
		t.Error("seek curve not concave")
	}
}

func TestSweepOrder(t *testing.T) {
	batch := []int{500, 10, 900, 300}
	// Head near the bottom sweeps ascending.
	asc := SweepOrder(0, batch)
	for i := 1; i < len(asc); i++ {
		if asc[i] < asc[i-1] {
			t.Fatalf("ascending sweep broken: %v", asc)
		}
	}
	// Head near the top sweeps descending.
	desc := SweepOrder(2699, batch)
	for i := 1; i < len(desc); i++ {
		if desc[i] > desc[i-1] {
			t.Fatalf("descending sweep broken: %v", desc)
		}
	}
	// Input left untouched.
	if batch[0] != 500 {
		t.Error("SweepOrder mutated its input")
	}
	if len(SweepOrder(0, nil)) != 0 {
		t.Error("empty batch")
	}
}

// The sweep never loses to any other service order (spot-checked against
// random permutations).
func TestSweepIsNoWorseThanRandomOrders(t *testing.T) {
	g := Default()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		batch := RandomBatch(rng, g, 2+rng.Intn(20))
		start := rng.Intn(g.Cylinders)
		sweep := g.SweepTime(start, batch)
		perm := append([]int(nil), batch...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if other := g.ServiceTime(start, perm); other < sweep {
			t.Fatalf("trial %d: random order %v beat the sweep %v", trial, other, sweep)
		}
	}
}

// The paper's core modelling claim: a sorted sweep of r tracks fits
// within Tseek + r·Ttrk for Table 1's parameters (Tseek = 25 ms,
// Ttrk = 20 ms) across the per-cycle batch sizes the schemes produce —
// while FIFO service of random batches does NOT (that is why cycles
// exist).
func TestPaperBoundHolds(t *testing.T) {
	g := Default()
	tseek := 25 * time.Millisecond
	ttrk := 20 * time.Millisecond
	rng := rand.New(rand.NewSource(11))

	for _, r := range []int{1, 2, 5, 12, 20, 52} {
		worstSweep := time.Duration(0)
		fifoOver := 0
		const trials = 200
		for i := 0; i < trials; i++ {
			batch := RandomBatch(rng, g, r)
			start := rng.Intn(g.Cylinders)
			if s := g.SweepTime(start, batch); s > worstSweep {
				worstSweep = s
			}
			if g.ServiceTime(start, batch) > PaperBound(tseek, ttrk, r) {
				fifoOver++
			}
		}
		bound := PaperBound(tseek, ttrk, r)
		if worstSweep > bound {
			t.Errorf("r=%d: worst sweep %v exceeds paper bound %v", r, worstSweep, bound)
		}
		// FIFO blows the bound routinely once batches are big enough for
		// per-track seek costs to matter.
		if r >= 12 && fifoOver < trials/2 {
			t.Errorf("r=%d: FIFO exceeded the bound only %d/%d times; expected routine violation", r, fifoOver, trials)
		}
	}
}

// Property: after the initial positioning seek (≤ SeekMax), a
// one-directional sweep's r seeks split at most one full stroke, and by
// concavity of the sqrt curve Σ√(dᵢ/D) ≤ √r, so
//
//	sweep ≤ SeekMax + r·Settle + (SeekMax−Settle)·√r + r·Rotation.
func TestSweepStructuralBound(t *testing.T) {
	g := Default()
	f := func(seed int64, rRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := int(rRaw%30) + 1
		batch := RandomBatch(rng, g, r)
		start := rng.Intn(g.Cylinders)
		sweep := g.SweepTime(start, batch)
		bound := g.SeekMax +
			time.Duration(r)*(g.Rotation+g.Settle) +
			time.Duration(float64(g.SeekMax-g.Settle)*math.Sqrt(float64(r)))
		return sweep <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandomBatchDistinct(t *testing.T) {
	g := Default()
	rng := rand.New(rand.NewSource(1))
	batch := RandomBatch(rng, g, 100)
	seen := map[int]bool{}
	for _, c := range batch {
		if seen[c] {
			t.Fatal("duplicate cylinder")
		}
		if c < 0 || c >= g.Cylinders {
			t.Fatal("cylinder out of range")
		}
		seen[c] = true
	}
	// Clamp at the cylinder count.
	small := Geometry{Cylinders: 5, SeekMax: time.Millisecond, Rotation: time.Millisecond}
	if got := len(RandomBatch(rng, small, 50)); got != 5 {
		t.Fatalf("clamped batch = %d", got)
	}
}
