// Package cluster shards the server farm across nodes behind one
// admission plane: a deterministic placement map routes titles to
// nodes (with extra replicas for the Zipf head), a membership view with
// monotonic view numbers names who is serving, and a thin coordinator
// answers HELLO/ADMIT/RESUME with REDIRECTs, detects node failure by
// heartbeat, fails sessions over to replica nodes, and reconfigures
// live — a node can be added or drained through a view change without
// dropping streams on the survivors. Nodes are disposable: losing one
// loses at most that node's unreplicated streams.
package cluster

import (
	"fmt"
	"sort"
)

// MemberState is a node's standing in the current view.
type MemberState string

const (
	// StateActive nodes serve sessions and receive new placements.
	StateActive MemberState = "active"
	// StateDraining nodes finish their current sessions but receive no
	// new placements; once empty they leave the view (live drain).
	StateDraining MemberState = "draining"
	// StateDead nodes failed their heartbeats; their sessions fail over
	// to replicas, and they receive no placements.
	StateDead MemberState = "dead"
)

// Member is one node of the cluster as a view records it.
type Member struct {
	ID string `json:"id"`
	// Addr is the node's framed-session address; HTTPAddr its status
	// surface (may be empty).
	Addr     string      `json:"addr"`
	HTTPAddr string      `json:"http_addr,omitempty"`
	State    MemberState `json:"state"`
	// Sessions and Active are the node's last heartbeat-reported load
	// (connected sessions / live engine streams).
	Sessions int `json:"sessions"`
	Active   int `json:"active"`
}

// View is one membership epoch. Views are totally ordered by Number:
// every membership change (add, drain, death, removal) produces a new
// view with a strictly larger number, so any two observers agree on
// which of two views is fresher.
type View struct {
	Number  int64    `json:"number"`
	Members []Member `json:"members"`
	// Placement summarizes the routing map at this view: titles served
	// per node (replicas counted on every holder). Informational — the
	// coordinator owns the authoritative map.
	Placement map[string]int `json:"placement,omitempty"`
}

// Clone deep-copies the view.
func (v *View) Clone() *View {
	out := &View{Number: v.Number, Members: append([]Member(nil), v.Members...)}
	if v.Placement != nil {
		out.Placement = make(map[string]int, len(v.Placement))
		for k, n := range v.Placement {
			out.Placement[k] = n
		}
	}
	return out
}

// Member returns the member with the given ID, if present.
func (v *View) Member(id string) (Member, bool) {
	for _, m := range v.Members {
		if m.ID == id {
			return m, true
		}
	}
	return Member{}, false
}

// Live returns the IDs of members that can serve new sessions (active,
// not draining, not dead), sorted.
func (v *View) Live() []string {
	var ids []string
	for _, m := range v.Members {
		if m.State == StateActive {
			ids = append(ids, m.ID)
		}
	}
	sort.Strings(ids)
	return ids
}

// Serving returns the IDs of members still carrying sessions (active or
// draining), sorted.
func (v *View) Serving() []string {
	var ids []string
	for _, m := range v.Members {
		if m.State == StateActive || m.State == StateDraining {
			ids = append(ids, m.ID)
		}
	}
	sort.Strings(ids)
	return ids
}

// String renders a compact one-line view description.
func (v *View) String() string {
	s := fmt.Sprintf("view %d:", v.Number)
	for _, m := range v.Members {
		s += fmt.Sprintf(" %s(%s)", m.ID, m.State)
	}
	return s
}
