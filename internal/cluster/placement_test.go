package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func catalog(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("movie%d", i)
	}
	return out
}

func nodeSet(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node%d", i)
	}
	return out
}

// TestAssignDeterministic pins the satellite requirement: the same seed
// and catalog produce the same placement no matter how the node list is
// permuted (worker order must not matter).
func TestAssignDeterministic(t *testing.T) {
	titles := catalog(40)
	cfg := PlacementConfig{Seed: 7, Replicas: 1, HotReplicas: 2, HotTitles: 8}
	base := Assign(titles, nodeSet(3), cfg)
	perms := [][]string{
		{"node2", "node0", "node1"},
		{"node1", "node2", "node0"},
		{"node2", "node1", "node0"},
	}
	for _, perm := range perms {
		got := Assign(titles, perm, cfg)
		for _, title := range titles {
			if !reflect.DeepEqual(got.Holders(title), base.Holders(title)) {
				t.Fatalf("placement of %s depends on node order: %v vs %v",
					title, got.Holders(title), base.Holders(title))
			}
		}
	}
	// And a literal recomputation is bit-identical.
	again := Assign(titles, nodeSet(3), cfg)
	if !reflect.DeepEqual(again.titles, base.titles) {
		t.Fatal("recomputed placement differs from the original")
	}
}

// TestAssignSeedMatters guards against a constant hash: different seeds
// should shuffle at least one title's home.
func TestAssignSeedMatters(t *testing.T) {
	titles := catalog(64)
	nodes := nodeSet(4)
	a := Assign(titles, nodes, PlacementConfig{Seed: 1})
	b := Assign(titles, nodes, PlacementConfig{Seed: 2})
	for _, title := range titles {
		if a.Holders(title)[0] != b.Holders(title)[0] {
			return
		}
	}
	t.Fatal("64 titles landed identically under two seeds")
}

// TestRebalanceMinimalOnAdd pins the other satellite requirement:
// adding a node only moves titles onto the new node — no title shuffles
// between survivors.
func TestRebalanceMinimalOnAdd(t *testing.T) {
	titles := catalog(100)
	cfg := PlacementConfig{Seed: 3, Replicas: 2, HotReplicas: 3, HotTitles: 10}
	before := Assign(titles, nodeSet(3), cfg)
	after := Assign(titles, nodeSet(4), cfg) // node3 joins
	moved := 0
	for _, title := range titles {
		b, a := before.Holders(title), after.Holders(title)
		if reflect.DeepEqual(b, a) {
			continue
		}
		moved++
		// Every change must involve node3: stripping it from the new
		// list must restore the relative order of the old survivors.
		var rest []string
		for _, n := range a {
			if n != "node3" {
				rest = append(rest, n)
			}
		}
		if !isPrefixOfOrder(rest, b) {
			t.Fatalf("title %s reshuffled among survivors: %v -> %v", title, b, a)
		}
	}
	if moved == 0 {
		t.Fatal("new node attracted no titles — hash is degenerate")
	}
	if moved == len(titles) {
		t.Fatal("every title moved on a single node add — rebalance is not minimal")
	}
}

// TestRebalanceMinimalOnDrain checks node removal: only titles the
// removed node held change holders, and survivors keep their relative
// preference order.
func TestRebalanceMinimalOnDrain(t *testing.T) {
	titles := catalog(100)
	cfg := PlacementConfig{Seed: 9, Replicas: 2, HotReplicas: 3, HotTitles: 10}
	before := Assign(titles, nodeSet(4), cfg)
	after := Assign(titles, []string{"node0", "node1", "node2"}, cfg) // node3 leaves
	for _, title := range titles {
		b, a := before.Holders(title), after.Holders(title)
		held := false
		for _, n := range b {
			if n == "node3" {
				held = true
			}
		}
		if !held {
			if !reflect.DeepEqual(b, a) {
				t.Fatalf("title %s moved though node3 never held it: %v -> %v", title, b, a)
			}
			continue
		}
		// node3's titles: survivors must keep their order, with the
		// replacement appended from below.
		var kept []string
		for _, n := range b {
			if n != "node3" {
				kept = append(kept, n)
			}
		}
		if !isPrefixOfOrder(kept, a) {
			t.Fatalf("title %s survivors reordered on drain: %v -> %v", title, b, a)
		}
	}
}

// TestHotReplication checks the Zipf head gets the extra copies and the
// tail does not.
func TestHotReplication(t *testing.T) {
	titles := catalog(30)
	cfg := PlacementConfig{Seed: 5, Replicas: 1, HotReplicas: 3, HotTitles: 5}
	p := Assign(titles, nodeSet(4), cfg)
	for i, title := range titles {
		want := 1
		if i < 5 {
			want = 3
		}
		if got := len(p.Holders(title)); got != want {
			t.Errorf("title %s (rank %d) has %d holders, want %d", title, i, got, want)
		}
	}
	// Replica lists never repeat a node.
	for _, title := range titles {
		seen := map[string]bool{}
		for _, n := range p.Holders(title) {
			if seen[n] {
				t.Fatalf("title %s lists %s twice", title, n)
			}
			seen[n] = true
		}
	}
}

// TestReplicasClampedToNodes: a 2-node cluster can't hold 3 replicas.
func TestReplicasClampedToNodes(t *testing.T) {
	p := Assign(catalog(4), nodeSet(2), PlacementConfig{Replicas: 3, HotReplicas: 5, HotTitles: 2})
	for _, title := range catalog(4) {
		if got := len(p.Holders(title)); got != 2 {
			t.Fatalf("title %s has %d holders on a 2-node cluster", title, got)
		}
	}
}

// TestCountsAndTitles sanity-checks the reverse indexes.
func TestCountsAndTitles(t *testing.T) {
	titles := catalog(20)
	p := Assign(titles, nodeSet(3), PlacementConfig{Seed: 11, Replicas: 2})
	counts := p.Counts()
	total := 0
	for _, node := range nodeSet(3) {
		if counts[node] != len(p.Titles(node)) {
			t.Fatalf("counts[%s]=%d but Titles lists %d", node, counts[node], len(p.Titles(node)))
		}
		total += counts[node]
	}
	if total != 2*len(titles) {
		t.Fatalf("total holder slots = %d, want %d", total, 2*len(titles))
	}
	if p.Holders("nosuch") != nil {
		t.Fatal("unknown title has holders")
	}
}

// isPrefixOfOrder reports whether want's elements appear in got in the
// same relative order starting at the front (got may have extras
// appended).
func isPrefixOfOrder(want, got []string) bool {
	if len(want) > len(got) {
		return false
	}
	for i, n := range want {
		if got[i] != n {
			return false
		}
	}
	return true
}
