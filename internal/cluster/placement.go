package cluster

import (
	"hash/fnv"
	"sort"
)

// PlacementConfig tunes how titles map onto nodes.
type PlacementConfig struct {
	// Seed perturbs the rendezvous hash so different clusters with the
	// same catalog and node names don't correlate.
	Seed int64
	// Replicas is how many nodes hold a cold title (>= 1).
	Replicas int
	// HotReplicas is how many nodes hold a hot title (>= Replicas).
	// Extra copies of the Zipf head give the access skew somewhere to
	// spill, and give hot sessions a failover target when their node
	// dies.
	HotReplicas int
	// HotTitles is the size of the Zipf head: the first HotTitles
	// entries of the (popularity-ranked) catalog get HotReplicas
	// copies. The paper's workloads rank titles movie0, movie1, ... by
	// decreasing popularity, so catalog order is popularity order.
	HotTitles int
}

func (c PlacementConfig) withDefaults() PlacementConfig {
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.HotReplicas < c.Replicas {
		c.HotReplicas = c.Replicas
	}
	return c
}

// Placement maps every title to the ordered list of nodes that hold
// it. The first node is the title's home; the rest are replicas in
// failover preference order.
type Placement struct {
	cfg    PlacementConfig
	titles map[string][]string
}

// Assign computes the placement of titles (in popularity-rank order)
// across nodes using highest-random-weight (rendezvous) hashing: each
// (title, node) pair gets a deterministic score and a title lives on
// the top-k scoring nodes. Two properties fall out by construction:
//
//   - Determinism: the same seed, catalog, and node set produce the
//     same placement regardless of where or on how many workers the
//     computation runs — scores depend only on the pair.
//   - Minimal rebalance: adding a node steals only the titles it now
//     out-scores someone for; removing a node moves only the titles it
//     held. No other title's node list changes.
func Assign(titles []string, nodes []string, cfg PlacementConfig) *Placement {
	cfg = cfg.withDefaults()
	p := &Placement{cfg: cfg, titles: make(map[string][]string, len(titles))}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for rank, title := range titles {
		want := cfg.Replicas
		if rank < cfg.HotTitles {
			want = cfg.HotReplicas
		}
		if want > len(sorted) {
			want = len(sorted)
		}
		p.titles[title] = topK(title, sorted, want, cfg.Seed)
	}
	return p
}

// topK returns the want highest-scoring nodes for title, best first.
func topK(title string, nodes []string, want int, seed int64) []string {
	type scored struct {
		node  string
		score uint64
	}
	all := make([]scored, len(nodes))
	for i, n := range nodes {
		all[i] = scored{n, rendezvousScore(seed, title, n)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].node < all[j].node // total order even on hash ties
	})
	out := make([]string, want)
	for i := range out {
		out[i] = all[i].node
	}
	return out
}

// rendezvousScore hashes the (seed, title, node) triple. FNV-1a is
// cheap, stdlib, and plenty uniform for placement.
func rendezvousScore(seed int64, title, node string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(title))
	h.Write([]byte{0}) // keep ("ab","c") distinct from ("a","bc")
	h.Write([]byte(node))
	return h.Sum64()
}

// Holders returns the ordered node list for a title (home first), or
// nil if the title is unknown.
func (p *Placement) Holders(title string) []string {
	return p.titles[title]
}

// Titles returns the sorted titles placed on the given node (home or
// replica).
func (p *Placement) Titles(node string) []string {
	var out []string
	for title, holders := range p.titles {
		for _, h := range holders {
			if h == node {
				out = append(out, title)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// Counts returns titles-held per node — the /statusz and VIEW placement
// summary.
func (p *Placement) Counts() map[string]int {
	out := make(map[string]int)
	for _, holders := range p.titles {
		for _, h := range holders {
			out[h]++
		}
	}
	return out
}

// Len returns the number of placed titles.
func (p *Placement) Len() int { return len(p.titles) }
