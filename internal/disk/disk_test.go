package disk

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"ftmm/internal/diskmodel"
	"ftmm/internal/units"
)

func testParams() diskmodel.Params {
	p := diskmodel.Table1()
	p.Capacity = 10 * 50 * units.KB // 10 tracks, keeps tests small
	return p
}

func track(b byte) []byte {
	t := make([]byte, 50*units.KB)
	for i := range t {
		t[i] = b
	}
	return t
}

func TestDriveReadWrite(t *testing.T) {
	d := NewDrive(0, testParams())
	want := track(0xAB)
	if err := d.WriteTrack(3, want); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadTrack(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read differs from write")
	}
	reads, writes := d.Counters()
	if reads != 1 || writes != 1 {
		t.Fatalf("counters = (%d,%d), want (1,1)", reads, writes)
	}
}

func TestDriveReadTrackInto(t *testing.T) {
	d := NewDrive(0, testParams())
	want := track(0xCD)
	if err := d.WriteTrack(2, want); err != nil {
		t.Fatal(err)
	}
	dst := track(0)
	if err := d.ReadTrackInto(dst, 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, want) {
		t.Fatal("ReadTrackInto differs from written data")
	}
	// Mis-sized destination is rejected.
	if err := d.ReadTrackInto(make([]byte, 10), 2); !errors.Is(err, ErrBadSize) {
		t.Fatalf("short dst: got %v, want ErrBadSize", err)
	}
	// Errors leave dst untouched.
	marker := track(0x5A)
	if err := d.ReadTrackInto(marker, 9); !errors.Is(err, ErrEmptyTrack) {
		t.Fatalf("empty track: got %v, want ErrEmptyTrack", err)
	}
	if marker[0] != 0x5A {
		t.Fatal("failed ReadTrackInto modified dst")
	}
	if err := d.ReadTrackInto(marker, -1); !errors.Is(err, ErrBadTrack) {
		t.Fatalf("bad track: got %v, want ErrBadTrack", err)
	}
	// Zero-allocation steady state.
	if n := testing.AllocsPerRun(50, func() {
		if err := d.ReadTrackInto(dst, 2); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("ReadTrackInto allocates %.1f per run, want 0", n)
	}
}

func TestDriveCopySemantics(t *testing.T) {
	d := NewDrive(0, testParams())
	buf := track(1)
	if err := d.WriteTrack(0, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // caller mutates its buffer after write
	got, _ := d.ReadTrack(0)
	if got[0] != 1 {
		t.Fatal("WriteTrack did not copy")
	}
	got[1] = 77 // caller mutates the returned buffer
	again, _ := d.ReadTrack(0)
	if again[1] != 1 {
		t.Fatal("ReadTrack did not copy")
	}
}

func TestDriveErrors(t *testing.T) {
	d := NewDrive(0, testParams())
	if err := d.WriteTrack(-1, track(0)); !errors.Is(err, ErrBadTrack) {
		t.Errorf("negative track: %v", err)
	}
	if err := d.WriteTrack(10, track(0)); !errors.Is(err, ErrBadTrack) {
		t.Errorf("track beyond capacity: %v", err)
	}
	if err := d.WriteTrack(0, []byte{1, 2}); !errors.Is(err, ErrBadSize) {
		t.Errorf("short write: %v", err)
	}
	if _, err := d.ReadTrack(0); !errors.Is(err, ErrEmptyTrack) {
		t.Errorf("empty track read: %v", err)
	}
	if _, err := d.ReadTrack(12); !errors.Is(err, ErrBadTrack) {
		t.Errorf("bad track read: %v", err)
	}
}

func TestDriveFailureLifecycle(t *testing.T) {
	d := NewDrive(7, testParams())
	if err := d.WriteTrack(0, track(5)); err != nil {
		t.Fatal(err)
	}
	if err := d.Fail(); err != nil {
		t.Fatal(err)
	}
	if d.State() != Failed {
		t.Fatal("state not Failed")
	}
	if _, err := d.ReadTrack(0); !errors.Is(err, ErrFailed) {
		t.Errorf("read from failed drive: %v", err)
	}
	if err := d.WriteTrack(0, track(5)); !errors.Is(err, ErrFailed) {
		t.Errorf("write to failed drive: %v", err)
	}
	if err := d.Fail(); !errors.Is(err, ErrDoubleFault) {
		t.Errorf("double fail: %v", err)
	}
	if err := d.Replace(); err != nil {
		t.Fatal(err)
	}
	if d.State() != Operational {
		t.Fatal("state not Operational after replace")
	}
	// Replacement is blank: the old content is gone.
	if _, err := d.ReadTrack(0); !errors.Is(err, ErrEmptyTrack) {
		t.Errorf("replaced drive should be empty: %v", err)
	}
	if err := d.Replace(); !errors.Is(err, ErrNotFailed) {
		t.Errorf("replace of healthy drive: %v", err)
	}
}

func TestDriveConcurrentAccess(t *testing.T) {
	d := NewDrive(0, testParams())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr := (g*50 + i) % 10
				_ = d.WriteTrack(tr, track(byte(g)))
				_, _ = d.ReadTrack(tr)
			}
		}(g)
	}
	wg.Wait()
	reads, writes := d.Counters()
	if writes != 400 {
		t.Fatalf("writes = %d, want 400", writes)
	}
	if reads != 400 {
		t.Fatalf("reads = %d, want 400", reads)
	}
}

func TestNewFarmValidation(t *testing.T) {
	p := testParams()
	if _, err := NewFarm(10, 5, p); err != nil {
		t.Fatalf("valid farm rejected: %v", err)
	}
	if _, err := NewFarm(11, 5, p); err == nil {
		t.Error("non-whole clusters accepted")
	}
	if _, err := NewFarm(3, 5, p); err == nil {
		t.Error("fewer drives than one cluster accepted")
	}
	if _, err := NewFarm(10, 1, p); err == nil {
		t.Error("cluster size 1 accepted")
	}
	bad := p
	bad.TrackSize = 0
	if _, err := NewFarm(10, 5, bad); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestFarmTopology(t *testing.T) {
	f, err := NewFarm(20, 5, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 20 || f.ClusterSize() != 5 || f.Clusters() != 4 {
		t.Fatalf("topology = (%d,%d,%d)", f.Size(), f.ClusterSize(), f.Clusters())
	}
	cl, err := f.Cluster(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl) != 5 || cl[0].ID() != 10 || cl[4].ID() != 14 {
		t.Fatalf("cluster 2 IDs = %d..%d", cl[0].ID(), cl[4].ID())
	}
	if c, _ := f.ClusterOf(14); c != 2 {
		t.Fatalf("ClusterOf(14) = %d, want 2", c)
	}
	if _, err := f.Cluster(4); err == nil {
		t.Error("out-of-range cluster accepted")
	}
	if _, err := f.ClusterOf(20); err == nil {
		t.Error("out-of-range drive accepted")
	}
	if _, err := f.Drive(20); err == nil {
		t.Error("out-of-range drive accepted")
	}
	d, err := f.Drive(7)
	if err != nil || d.ID() != 7 {
		t.Fatalf("Drive(7) = %v, %v", d, err)
	}
}

func TestFarmFailureAccounting(t *testing.T) {
	f, _ := NewFarm(20, 5, testParams())
	if got := f.OperationalCount(); got != 20 {
		t.Fatalf("OperationalCount = %d", got)
	}
	if f.Catastrophic() {
		t.Fatal("fresh farm catastrophic")
	}
	for _, id := range []int{3, 11} {
		d, _ := f.Drive(id)
		if err := d.Fail(); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.FailedDrives(); len(got) != 2 || got[0] != 3 || got[1] != 11 {
		t.Fatalf("FailedDrives = %v", got)
	}
	if f.Catastrophic() {
		t.Fatal("one failure per cluster flagged catastrophic")
	}
	cf := f.ClusterFailures()
	if cf[0] != 1 || cf[2] != 1 || cf[1] != 0 || cf[3] != 0 {
		t.Fatalf("ClusterFailures = %v", cf)
	}
	// Second failure in cluster 0 => catastrophe.
	d, _ := f.Drive(1)
	if err := d.Fail(); err != nil {
		t.Fatal(err)
	}
	if !f.Catastrophic() {
		t.Fatal("two failures in one cluster not catastrophic")
	}
	if got := f.OperationalCount(); got != 17 {
		t.Fatalf("OperationalCount = %d, want 17", got)
	}
}

func TestStateString(t *testing.T) {
	if Operational.String() != "operational" || Failed.String() != "failed" {
		t.Error("state names")
	}
	if State(9).String() != "State(9)" {
		t.Error("unknown state name")
	}
}
