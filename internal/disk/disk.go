// Package disk simulates the multimedia server's disk farm: a set of
// drives that store whole tracks of real bytes, can fail and be replaced,
// and are organized into fixed clusters of C drives for parity layout.
//
// Timing is not simulated here — the cycle scheduler budgets disk time
// with the analytic model from internal/diskmodel — but data movement is:
// every track read returns the stored bytes (or an error from a failed
// drive), which lets the layers above prove that parity reconstruction
// reproduces the original content exactly.
package disk

import (
	"errors"
	"fmt"
	"sync"

	"ftmm/internal/diskmodel"
)

// State is the operational state of one drive.
type State int

const (
	// Operational drives serve reads and writes.
	Operational State = iota
	// Failed drives reject all I/O; their contents are lost.
	Failed
)

// String names the state.
func (s State) String() string {
	switch s {
	case Operational:
		return "operational"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Errors returned by drive I/O.
var (
	ErrFailed      = errors.New("disk: drive has failed")
	ErrBadTrack    = errors.New("disk: track number out of range")
	ErrEmptyTrack  = errors.New("disk: track has never been written")
	ErrBadSize     = errors.New("disk: data must be exactly one track")
	ErrNotFailed   = errors.New("disk: drive is not failed")
	ErrDoubleFault = errors.New("disk: drive already failed")
)

// Drive is one simulated disk.
type Drive struct {
	id     int
	params diskmodel.Params

	mu     sync.Mutex
	state  State
	tracks map[int][]byte
	reads  int64
	writes int64
}

// NewDrive creates an empty operational drive.
func NewDrive(id int, params diskmodel.Params) *Drive {
	return &Drive{id: id, params: params, tracks: make(map[int][]byte)}
}

// ID returns the drive's farm-wide index.
func (d *Drive) ID() int { return d.id }

// State returns the drive's current state.
func (d *Drive) State() State {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// Tracks returns the drive's track count.
func (d *Drive) Tracks() int { return d.params.TracksPerDisk() }

// WriteTrack stores one track of data. The data is copied.
func (d *Drive) WriteTrack(track int, data []byte) error {
	if track < 0 || track >= d.Tracks() {
		return fmt.Errorf("%w: %d (drive has %d)", ErrBadTrack, track, d.Tracks())
	}
	if len(data) != int(d.params.TrackSize) {
		return fmt.Errorf("%w: got %d bytes, track is %d", ErrBadSize, len(data), d.params.TrackSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == Failed {
		return fmt.Errorf("drive %d: %w", d.id, ErrFailed)
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	d.tracks[track] = buf
	d.writes++
	return nil
}

// ReadTrack returns a copy of one track's data. Allocation-sensitive
// callers use ReadTrackInto with a recycled buffer instead.
func (d *Drive) ReadTrack(track int) ([]byte, error) {
	out := make([]byte, int(d.params.TrackSize))
	if err := d.ReadTrackInto(out, track); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadTrackInto copies one track's data into dst, which must be exactly
// one track long. On error dst is left unmodified. This is the zero-
// allocation read path: pair it with a buffer.Arena to recycle track
// buffers across cycles.
func (d *Drive) ReadTrackInto(dst []byte, track int) error {
	if track < 0 || track >= d.Tracks() {
		return fmt.Errorf("%w: %d (drive has %d)", ErrBadTrack, track, d.Tracks())
	}
	if len(dst) != int(d.params.TrackSize) {
		return fmt.Errorf("%w: dst is %d bytes, track is %d", ErrBadSize, len(dst), d.params.TrackSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == Failed {
		return fmt.Errorf("drive %d: %w", d.id, ErrFailed)
	}
	data, ok := d.tracks[track]
	if !ok {
		return fmt.Errorf("drive %d track %d: %w", d.id, track, ErrEmptyTrack)
	}
	copy(dst, data)
	d.reads++
	return nil
}

// Fail marks the drive failed and discards its contents (the paper's
// failure model: a failed disk's data is gone until rebuilt from parity
// or tertiary storage onto a replacement).
func (d *Drive) Fail() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == Failed {
		return fmt.Errorf("drive %d: %w", d.id, ErrDoubleFault)
	}
	d.state = Failed
	d.tracks = make(map[int][]byte)
	return nil
}

// Replace swaps in a blank operational drive (the physical repair of the
// paper's MTTR). The replacement starts empty; it is the rebuild
// machinery's job to restore content.
func (d *Drive) Replace() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != Failed {
		return fmt.Errorf("drive %d: %w", d.id, ErrNotFailed)
	}
	d.state = Operational
	d.tracks = make(map[int][]byte)
	return nil
}

// Counters reports lifetime successful reads and writes.
func (d *Drive) Counters() (reads, writes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes
}

// Farm is the full disk subsystem: D drives in clusters of C.
type Farm struct {
	params      diskmodel.Params
	clusterSize int
	drives      []*Drive
}

// NewFarm builds a farm of d drives in clusters of c (c includes the
// parity disk). d must be a whole number of clusters.
func NewFarm(d, c int, params diskmodel.Params) (*Farm, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if c < 2 {
		return nil, fmt.Errorf("disk: cluster size %d must be >= 2", c)
	}
	if d < c || d%c != 0 {
		return nil, fmt.Errorf("disk: %d drives is not a whole number of clusters of %d", d, c)
	}
	f := &Farm{params: params, clusterSize: c, drives: make([]*Drive, d)}
	for i := range f.drives {
		f.drives[i] = NewDrive(i, params)
	}
	return f, nil
}

// Params returns the drive parameters the farm was built with.
func (f *Farm) Params() diskmodel.Params { return f.params }

// Size returns D, the total drive count.
func (f *Farm) Size() int { return len(f.drives) }

// ClusterSize returns C.
func (f *Farm) ClusterSize() int { return f.clusterSize }

// Clusters returns the number of clusters, D/C.
func (f *Farm) Clusters() int { return len(f.drives) / f.clusterSize }

// Drive returns drive i.
func (f *Farm) Drive(i int) (*Drive, error) {
	if i < 0 || i >= len(f.drives) {
		return nil, fmt.Errorf("disk: drive %d out of range [0,%d)", i, len(f.drives))
	}
	return f.drives[i], nil
}

// Cluster returns the C drives of cluster i, in disk order; the layout
// packages decide which of them holds parity.
func (f *Farm) Cluster(i int) ([]*Drive, error) {
	if i < 0 || i >= f.Clusters() {
		return nil, fmt.Errorf("disk: cluster %d out of range [0,%d)", i, f.Clusters())
	}
	start := i * f.clusterSize
	return f.drives[start : start+f.clusterSize], nil
}

// ClusterOf returns the cluster index that drive i belongs to.
func (f *Farm) ClusterOf(driveID int) (int, error) {
	if driveID < 0 || driveID >= len(f.drives) {
		return 0, fmt.Errorf("disk: drive %d out of range [0,%d)", driveID, len(f.drives))
	}
	return driveID / f.clusterSize, nil
}

// FailedDrives lists the IDs of currently failed drives.
func (f *Farm) FailedDrives() []int {
	var out []int
	for _, d := range f.drives {
		if d.State() == Failed {
			out = append(out, d.id)
		}
	}
	return out
}

// OperationalCount returns the number of drives currently serving I/O.
func (f *Farm) OperationalCount() int {
	n := 0
	for _, d := range f.drives {
		if d.State() == Operational {
			n++
		}
	}
	return n
}

// ClusterFailures returns, per cluster, how many of its drives are
// failed. A value >= 2 in any cluster is the paper's catastrophic
// failure for the dedicated-parity schemes.
func (f *Farm) ClusterFailures() []int {
	out := make([]int, f.Clusters())
	for _, d := range f.drives {
		if d.State() == Failed {
			out[d.id/f.clusterSize]++
		}
	}
	return out
}

// Catastrophic reports whether any cluster has lost two or more drives.
func (f *Farm) Catastrophic() bool {
	for _, n := range f.ClusterFailures() {
		if n >= 2 {
			return true
		}
	}
	return false
}
