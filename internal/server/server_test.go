package server

import (
	"fmt"
	"testing"

	"ftmm/internal/analytic"
	"ftmm/internal/diskmodel"
	"ftmm/internal/schemes"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// testOptions builds a small server: 10 drives x 40 tracks, C=5.
func testOptions(scheme analytic.Scheme) Options {
	p := diskmodel.Table1()
	p.Capacity = 40 * p.TrackSize
	return Options{
		Disks: 10, ClusterSize: 5,
		DiskParams: p,
		Scheme:     scheme,
		K:          2,
		NCPolicy:   schemes.AlternateSwitchover,
	}
}

// loadTitles archives n titles of the given track count.
func loadTitles(t *testing.T, s *Server, n, tracks int) {
	t.Helper()
	trackSize := int(s.Farm().Params().TrackSize)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("movie%d", i)
		size := units.ByteSize(tracks * trackSize)
		content := workload.SyntheticContent(id, int(size))
		if err := s.AddTitle(id, size, i/2, content); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewAllSchemes(t *testing.T) {
	for _, scheme := range analytic.Schemes() {
		s, err := New(testOptions(scheme))
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if s.Engine().Name() != scheme.String() {
			t.Errorf("engine %q for scheme %q", s.Engine().Name(), scheme)
		}
		if s.CycleTime() <= 0 {
			t.Errorf("%v: non-positive cycle time", scheme)
		}
	}
	bad := testOptions(analytic.Scheme(9))
	if _, err := New(bad); err == nil {
		t.Error("unknown scheme accepted")
	}
	badFarm := testOptions(analytic.StreamingRAID)
	badFarm.Disks = 7
	if _, err := New(badFarm); err == nil {
		t.Error("ragged farm accepted")
	}
}

func TestEndToEndEachScheme(t *testing.T) {
	for _, scheme := range analytic.Schemes() {
		s, err := New(testOptions(scheme))
		if err != nil {
			t.Fatal(err)
		}
		loadTitles(t, s, 3, 16)
		for i := 0; i < 3; i++ {
			id := fmt.Sprintf("movie%d", i)
			_, staging, err := s.Request(id)
			if err != nil {
				t.Fatalf("%v: request %s: %v", scheme, id, err)
			}
			if staging <= 0 {
				t.Errorf("%v: first request of %s should stage from tape", scheme, id)
			}
			// Stagger NC/SG admissions a cycle apart.
			if _, err := s.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.RunUntilIdle(200); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		st := s.Stats()
		if st.Hiccups != 0 {
			t.Errorf("%v: %d hiccups in normal operation", scheme, st.Hiccups)
		}
		if st.Delivered != 3*16 {
			t.Errorf("%v: delivered %d tracks, want 48", scheme, st.Delivered)
		}
		if st.Finished != 3 {
			t.Errorf("%v: finished %d, want 3", scheme, st.Finished)
		}
		if st.Stagings != 3 {
			t.Errorf("%v: stagings = %d, want 3", scheme, st.Stagings)
		}
		if s.StagingTime() <= 0 {
			t.Errorf("%v: staging time not accounted", scheme)
		}
		if st.BufferPeak <= 0 || s.BufferPeakBytes() <= 0 {
			t.Errorf("%v: buffer peak missing", scheme)
		}
	}
}

func TestResidentTitleIsFreeToRequest(t *testing.T) {
	s, err := New(testOptions(analytic.StreamingRAID))
	if err != nil {
		t.Fatal(err)
	}
	loadTitles(t, s, 1, 16)
	if _, staging, err := s.Request("movie0"); err != nil || staging <= 0 {
		t.Fatalf("first request: %v, %v", staging, err)
	}
	// Second stream of the same (now resident) title costs nothing.
	if _, staging, err := s.Request("movie0"); err != nil || staging != 0 {
		t.Fatalf("second request: %v, %v", staging, err)
	}
}

func TestFailureMaskedEndToEnd(t *testing.T) {
	for _, scheme := range analytic.Schemes() {
		s, err := New(testOptions(scheme))
		if err != nil {
			t.Fatal(err)
		}
		loadTitles(t, s, 2, 16)
		for i := 0; i < 2; i++ {
			if _, _, err := s.Request(fmt.Sprintf("movie%d", i)); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.FailDisk(1); err != nil {
			t.Fatal(err)
		}
		if err := s.RunUntilIdle(200); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		st := s.Stats()
		// SR, SG and IB (with reserve) mask a boundary failure entirely;
		// NC may lose a bounded handful in the transition.
		switch scheme {
		case analytic.NonClustered:
			if st.Hiccups > 4 {
				t.Errorf("NC lost %d tracks; transition should lose at most C-1", st.Hiccups)
			}
		default:
			if st.Hiccups != 0 {
				t.Errorf("%v: %d hiccups despite single failure", scheme, st.Hiccups)
			}
		}
		if st.Terminated != 0 {
			t.Errorf("%v: %d terminations", scheme, st.Terminated)
		}
	}
}

func TestRepairDiskRestoresService(t *testing.T) {
	for _, scheme := range []analytic.Scheme{analytic.StreamingRAID, analytic.NonClustered} {
		s, err := New(testOptions(scheme))
		if err != nil {
			t.Fatal(err)
		}
		loadTitles(t, s, 1, 16)
		if _, _, err := s.Request("movie0"); err != nil {
			t.Fatal(err)
		}
		if err := s.FailDisk(2); err != nil {
			t.Fatal(err)
		}
		if err := s.RunFor(4); err != nil {
			t.Fatal(err)
		}
		if err := s.RepairDisk(2); err != nil {
			t.Fatalf("%v: repair: %v", scheme, err)
		}
		// Post-repair, another full playback is hiccup-free with no
		// reconstructions (content was rebuilt in place).
		before := s.Stats()
		if _, _, err := s.Request("movie0"); err != nil {
			t.Fatal(err)
		}
		if err := s.RunUntilIdle(300); err != nil {
			t.Fatal(err)
		}
		after := s.Stats()
		if after.Hiccups != before.Hiccups {
			t.Errorf("%v: hiccups after repair: %d", scheme, after.Hiccups-before.Hiccups)
		}
	}
}

func TestRebuildFromTertiary(t *testing.T) {
	s, err := New(testOptions(analytic.StreamingRAID))
	if err != nil {
		t.Fatal(err)
	}
	loadTitles(t, s, 2, 16)
	for i := 0; i < 2; i++ {
		if _, _, err := s.Request(fmt.Sprintf("movie%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunUntilIdle(200); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	cost, err := s.RebuildFromTertiary(0)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("tertiary rebuild should cost tape time")
	}
	// Rebuilt: a fresh playback is clean.
	base := s.Stats().Hiccups
	if _, _, err := s.Request("movie0"); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(200); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Hiccups != base {
		t.Fatal("hiccups after tertiary rebuild")
	}
	// Rebuild from tape is far slower than from parity: it refetched
	// whole objects at tape bandwidth.
	if cost < s.CycleTime() {
		t.Fatalf("tertiary rebuild suspiciously fast: %v", cost)
	}
}

func TestAddTitleValidation(t *testing.T) {
	s, _ := New(testOptions(analytic.StreamingRAID))
	if err := s.AddTitle("x", 100, 0, nil); err == nil {
		t.Error("nil content accepted")
	}
	if err := s.AddTitle("x", 100, 0, make([]byte, 50)); err == nil {
		t.Error("size mismatch accepted")
	}
	if err := s.AddTitle("x", 100, 0, make([]byte, 100)); err != nil {
		t.Error(err)
	}
}

func TestRequestUnknownTitle(t *testing.T) {
	s, _ := New(testOptions(analytic.StreamingRAID))
	if _, _, err := s.Request("ghost"); err == nil {
		t.Error("unknown title accepted")
	}
}

func TestAdmissionRejection(t *testing.T) {
	opts := testOptions(analytic.StreamingRAID)
	opts.SlotsPerDisk = 1
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	loadTitles(t, s, 3, 8)
	if _, _, err := s.Request("movie0"); err != nil {
		t.Fatal(err)
	}
	// The catalog rotates start clusters per placement: movie1 lands on
	// cluster 1 (fine), movie2 back on cluster 0 (over budget).
	if _, _, err := s.Request("movie1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Request("movie2"); err == nil {
		t.Fatal("over-admission accepted")
	}
	// The rejected title is not left pinned: it can be evicted later.
	if n, err := s.Catalog().Pins("movie2"); err != nil || n != 0 {
		t.Fatalf("rejected title pins = %d, %v", n, err)
	}
}

func TestStatsEvictions(t *testing.T) {
	// Tiny farm: 10 drives x 40 tracks = 400 track capacity; titles of
	// 32 data tracks consume 40 tracks each (8 groups x 5); 10 titles
	// don't fit.
	s, err := New(testOptions(analytic.StreamingRAID))
	if err != nil {
		t.Fatal(err)
	}
	loadTitles(t, s, 12, 32)
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("movie%d", i)
		if _, _, err := s.Request(id); err != nil {
			t.Fatalf("request %s: %v", id, err)
		}
		if err := s.RunUntilIdle(300); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions on an over-full catalog")
	}
	if st.Stagings != 12 {
		t.Fatalf("stagings = %d, want 12", st.Stagings)
	}
}

func TestParseScheme(t *testing.T) {
	cases := []struct {
		in     string
		scheme analytic.Scheme
		policy schemes.TransitionPolicy
	}{
		{"sr", analytic.StreamingRAID, 0},
		{"RAID", analytic.StreamingRAID, 0},
		{"streaming-raid", analytic.StreamingRAID, 0},
		{"sg", analytic.StaggeredGroup, 0},
		{"staggered", analytic.StaggeredGroup, 0},
		{"nc", analytic.NonClustered, schemes.AlternateSwitchover},
		{"nc-alternate", analytic.NonClustered, schemes.AlternateSwitchover},
		{"nc-simple", analytic.NonClustered, schemes.SimpleSwitchover},
		{"ib", analytic.ImprovedBandwidth, 0},
		{"Improved", analytic.ImprovedBandwidth, 0},
		{"dc", analytic.DeclusteredParity, 0},
		{"declustered", analytic.DeclusteredParity, 0},
	}
	for _, c := range cases {
		scheme, policy, err := ParseScheme(c.in)
		if err != nil || scheme != c.scheme || policy != c.policy {
			t.Errorf("ParseScheme(%q) = %v,%v,%v", c.in, scheme, policy, err)
		}
	}
	if _, _, err := ParseScheme("bogus"); err == nil {
		t.Error("bogus scheme accepted")
	}
}
