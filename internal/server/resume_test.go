package server

import (
	"testing"

	"ftmm/internal/trace"
	"ftmm/internal/workload"
)

// schemeNames lists every ParseScheme name RequestAt must serve.
var schemeNames = []string{"sr", "sg", "nc", "nc-simple", "ib"}

// TestRequestAtDeliversTail admits a stream mid-title under every scheme
// and checks that exactly the tracks from the resume boundary onward are
// delivered, in order, bit-exact.
func TestRequestAtDeliversTail(t *testing.T) {
	for _, name := range schemeNames {
		t.Run(name, func(t *testing.T) {
			scheme, policy, err := ParseScheme(name)
			if err != nil {
				t.Fatal(err)
			}
			opts := testOptions(scheme)
			opts.NCPolicy = policy
			s, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			const groups = 4
			width := s.GroupWidth()
			tracks := groups * width
			loadTitles(t, s, 1, tracks)
			content := workload.SyntheticContent("movie0", tracks*int(s.Farm().Params().TrackSize))

			const startGroup = 2
			id, _, err := s.RequestAt("movie0", startGroup)
			if err != nil {
				t.Fatalf("RequestAt: %v", err)
			}
			next, total, ok := s.StreamProgress(id)
			if !ok || total != tracks || next != startGroup*width {
				t.Fatalf("progress = (%d,%d,%v), want (%d,%d,true)", next, total, ok, startGroup*width, tracks)
			}

			var got []int
			for cycle := 0; cycle < 4*tracks && s.Engine().Active() > 0; cycle++ {
				rep, err := s.Step()
				if err != nil {
					t.Fatal(err)
				}
				for _, d := range rep.Delivered {
					if d.StreamID != id {
						continue
					}
					if err := trace.CheckTrack(content, int(s.Farm().Params().TrackSize), d.Track, d.Data); err != nil {
						t.Fatalf("track %d: %v", d.Track, err)
					}
					got = append(got, d.Track)
				}
				if len(rep.Hiccups) != 0 {
					t.Fatalf("unexpected hiccups on a healthy farm: %+v", rep.Hiccups)
				}
			}
			want := tracks - startGroup*width
			if len(got) != want {
				t.Fatalf("delivered %d tracks %v, want the %d-track tail", len(got), got, want)
			}
			for i, tr := range got {
				if tr != startGroup*width+i {
					t.Fatalf("delivery %d was track %d, want %d (out-of-order resume tail)", i, tr, startGroup*width+i)
				}
			}
		})
	}
}

// TestRequestAtValidatesStart pins the error (not rejection) contract
// for out-of-range resume points.
func TestRequestAtValidatesStart(t *testing.T) {
	scheme, policy, _ := ParseScheme("sr")
	opts := testOptions(scheme)
	opts.NCPolicy = policy
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	loadTitles(t, s, 1, 4*s.GroupWidth())
	for _, start := range []int{-1, 4, 99} {
		if _, _, err := s.RequestAt("movie0", start); err == nil {
			t.Errorf("start group %d accepted", start)
		}
	}
	if _, _, err := s.RequestAt("movie0", 3); err != nil {
		t.Errorf("last group refused: %v", err)
	}
}

// TestRequestAtCapacityMovesWithStart checks the admission occupancy
// check follows the start cluster: filling cluster 0 must not block a
// resume that starts on another cluster.
func TestRequestAtCapacityMovesWithStart(t *testing.T) {
	scheme, _, _ := ParseScheme("sr")
	opts := testOptions(scheme)
	opts.SlotsPerDisk = 1 // one stream per cluster position
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	loadTitles(t, s, 1, 4*s.GroupWidth())
	if _, _, err := s.Request("movie0"); err != nil {
		t.Fatal(err)
	}
	// The title's start cluster is now full: a second stream from the
	// top is rejected, but a resume starting at group 1 (which lives on
	// the next cluster) fits.
	if _, _, err := s.Request("movie0"); err == nil {
		t.Fatal("second stream at group 0 admitted past a full cluster")
	}
	if _, _, err := s.RequestAt("movie0", 1); err != nil {
		t.Fatalf("resume on a free cluster rejected: %v", err)
	}
}
