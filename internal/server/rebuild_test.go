package server

import (
	"fmt"
	"testing"

	"ftmm/internal/analytic"
	"ftmm/internal/schemes"
)

// Online rebuild: the server keeps serving degraded while the drive is
// restored a few tracks per cycle; when the rebuild completes the NC
// engine's cluster returns to normal and the buffer server is freed.
func TestOnlineRebuildNonClustered(t *testing.T) {
	s, err := New(testOptions(analytic.NonClustered))
	if err != nil {
		t.Fatal(err)
	}
	loadTitles(t, s, 2, 32)
	if _, _, err := s.Request("movie0"); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(2); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(3); err != nil {
		t.Fatal(err)
	}
	nc := s.Engine().(*schemes.NonClustered)
	if !nc.ClusterDegraded(0) {
		t.Fatal("cluster 0 not degraded after failure")
	}
	if err := s.StartOnlineRebuild(2, 8); err != nil {
		t.Fatal(err)
	}
	remaining := s.RebuildRemaining()
	if remaining == 0 {
		t.Fatal("rebuild has no work")
	}
	// A second rebuild cannot start while one runs.
	if err := s.StartOnlineRebuild(3, 8); err == nil {
		t.Fatal("concurrent rebuild accepted")
	}
	// Service continues while rebuilding; the rebuild drains ~2
	// tracks/cycle.
	for i := 0; s.RebuildRemaining() > 0; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if i > remaining {
			t.Fatalf("rebuild not converging: %d left", s.RebuildRemaining())
		}
	}
	if nc.ClusterDegraded(0) {
		t.Fatal("cluster still degraded after online rebuild completed")
	}
	// Post-rebuild playback is clean.
	base := s.Stats().Hiccups
	if _, _, err := s.Request("movie1"); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(300); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Hiccups - base; got != 0 {
		t.Fatalf("%d hiccups after rebuild", got)
	}
}

func TestOnlineRebuildStreamingRAIDWhileServing(t *testing.T) {
	s, err := New(testOptions(analytic.StreamingRAID))
	if err != nil {
		t.Fatal(err)
	}
	loadTitles(t, s, 2, 32)
	for i := 0; i < 2; i++ {
		if _, _, err := s.Request(fmt.Sprintf("movie%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunFor(2); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	if err := s.StartOnlineRebuild(1, 12); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(400); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Hiccups != 0 {
		t.Fatalf("hiccups during online rebuild: %d", st.Hiccups)
	}
	if s.RebuildRemaining() != 0 {
		// The playback may end before the rebuild; drain it.
		for s.RebuildRemaining() > 0 {
			if _, err := s.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The rebuilt drive serves reads again: play once more, counting
	// reconstructions — there must be none.
	before := s.Stats().Reconstructions
	if _, _, err := s.Request("movie0"); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(300); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Reconstructions - before; got != 0 {
		t.Fatalf("%d reconstructions after rebuild completed", got)
	}
}

func TestStartOnlineRebuildValidation(t *testing.T) {
	s, err := New(testOptions(analytic.StreamingRAID))
	if err != nil {
		t.Fatal(err)
	}
	loadTitles(t, s, 1, 16)
	if _, _, err := s.Request("movie0"); err != nil {
		t.Fatal(err)
	}
	if err := s.StartOnlineRebuild(99, 8); err == nil {
		t.Error("bad drive accepted")
	}
	if err := s.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	if err := s.StartOnlineRebuild(0, 1); err == nil {
		t.Error("starvation budget accepted")
	}
}

// Catastrophic failure end to end: two drives in one cluster fail, the
// affected tracks hiccup (parity cannot cover two holes), and service is
// fully restored by reloading from the tape library — the paper's last
// resort.
func TestCatastrophicFailureAndTertiaryRecovery(t *testing.T) {
	s, err := New(testOptions(analytic.StreamingRAID))
	if err != nil {
		t.Fatal(err)
	}
	loadTitles(t, s, 2, 16)
	if _, _, err := s.Request("movie0"); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(2); err != nil {
		t.Fatal(err)
	}
	// Two data drives of cluster 0: catastrophic.
	if err := s.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	if !s.Farm().Catastrophic() {
		t.Fatal("farm not catastrophic")
	}
	if err := s.RunUntilIdle(300); err != nil {
		t.Fatal(err)
	}
	afterCrash := s.Stats()
	if afterCrash.Hiccups == 0 {
		t.Fatal("catastrophic failure produced no hiccups")
	}
	// Recover both drives from tape.
	for _, d := range []int{0, 1} {
		cost, err := s.RebuildFromTertiary(d)
		if err != nil {
			t.Fatalf("tertiary rebuild of %d: %v", d, err)
		}
		if cost <= 0 {
			t.Fatal("free tertiary rebuild")
		}
	}
	// Clean playback afterwards.
	if _, _, err := s.Request("movie0"); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(300); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Hiccups - afterCrash.Hiccups; got != 0 {
		t.Fatalf("%d hiccups after tertiary recovery", got)
	}
}
