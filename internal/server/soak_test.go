package server

import (
	"fmt"
	"math/rand"
	"testing"

	"ftmm/internal/analytic"
	"ftmm/internal/schemes"
	"ftmm/internal/trace"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// Server-level soak: a Zipf workload drives requests against every
// scheme while drives fail and get repaired; the delivery trace must
// stay bit-exact and complete for every finished stream, with losses
// confined to NC transitions.
func TestServerSoak(t *testing.T) {
	for _, scheme := range analytic.Schemes() {
		scheme := scheme
		t.Run(scheme.Abbrev(), func(t *testing.T) {
			serverSoak(t, scheme)
		})
	}
}

func serverSoak(t *testing.T, scheme analytic.Scheme) {
	t.Helper()
	const titles = 8
	const titleTracks = 24
	opts := testOptions(scheme)
	opts.Disks = 20
	p := opts.DiskParams
	p.Capacity = units.ByteSize(titles*titleTracks/opts.Disks*2+60) * p.TrackSize
	opts.DiskParams = p
	opts.K = 3
	opts.NCPolicy = schemes.AlternateSwitchover

	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	content := map[string][]byte{}
	trackSize := int(p.TrackSize)
	for i := 0; i < titles; i++ {
		id := fmt.Sprintf("movie%d", i)
		c := workload.SyntheticContent(id, titleTracks*trackSize)
		content[id] = c
		if err := s.AddTitle(id, units.ByteSize(len(c)), i/3, c); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := trace.NewRecorder(content, trackSize)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.New(workload.Config{
		Seed: 5, Objects: workload.ObjectNames("movie", titles), ZipfS: 0.8, ArrivalsPerSecond: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	streams := map[int]string{}
	failed := -1
	requests, rejected := 0, 0
	for cycle := 0; cycle < 400; cycle++ {
		// A request every few cycles.
		if cycle%3 == 0 && requests < 30 {
			id := gen.Pick()
			sid, _, err := s.Request(id)
			if err != nil {
				rejected++
			} else {
				streams[sid] = id
				requests++
			}
		}
		switch {
		case failed < 0 && rng.Intn(25) == 0:
			failed = rng.Intn(opts.Disks)
			if err := s.FailDisk(failed); err != nil {
				t.Fatal(err)
			}
		case failed >= 0 && rng.Intn(30) == 0:
			if err := s.RepairDisk(failed); err != nil {
				t.Fatal(err)
			}
			failed = -1
		}
		rep, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		rec.Observe(rep)
		if s.Engine().Active() == 0 && requests >= 30 {
			break
		}
	}
	// Drain remaining streams.
	for i := 0; s.Engine().Active() > 0 && i < 600; i++ {
		rep, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		rec.Observe(rep)
	}
	if s.Engine().Active() != 0 {
		t.Fatal("streams still active")
	}
	if requests < 20 {
		t.Fatalf("only %d requests admitted (rejected %d); scenario too tight", requests, rejected)
	}

	if err := rec.VerifyIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
	if err := rec.VerifyContinuity(); err != nil {
		t.Fatalf("continuity: %v", err)
	}
	if err := rec.VerifyComplete(streams); err != nil {
		t.Fatalf("completeness: %v", err)
	}
	sum := rec.Summarize()
	if scheme != analytic.NonClustered && sum.Hiccups != 0 {
		t.Fatalf("%d hiccups under single-failure soak", sum.Hiccups)
	}
	st := s.Stats()
	if st.Terminated != 0 {
		t.Fatalf("%d terminations", st.Terminated)
	}
	if st.Stagings == 0 {
		t.Fatal("no tertiary stagings recorded")
	}
}
