package server

import (
	"testing"

	"ftmm/internal/analytic"
)

// Queued admission: requests beyond capacity park and are admitted FIFO
// as earlier streams finish — the paper's "rescheduled at a later time".
func TestQueuedAdmission(t *testing.T) {
	opts := testOptions(analytic.StreamingRAID)
	opts.SlotsPerDisk = 1 // one stream per cluster
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	loadTitles(t, s, 4, 8)
	// movie0 -> cluster 0, movie1 -> cluster 1: both admitted.
	for i := 0; i < 2; i++ {
		if _, q, err := s.QueueRequest("movie0"); err != nil || q != (i == 1) {
			if i == 0 && err != nil {
				t.Fatal(err)
			}
		}
	}
	// The second movie0 request queued (cluster 0 full).
	if s.QueuedRequests() != 1 {
		t.Fatalf("queued = %d, want 1", s.QueuedRequests())
	}
	// Run: the first stream (8 tracks = 2 groups... runs ~3 cycles)
	// finishes, freeing the slot; the queued request is admitted and
	// completes too.
	deadline := 100
	for i := 0; i < deadline; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if s.QueuedRequests() == 0 && s.Engine().Active() == 0 && s.Stats().Finished == 2 {
			break
		}
	}
	st := s.Stats()
	if st.Finished != 2 {
		t.Fatalf("finished = %d, want 2 (queued stream served)", st.Finished)
	}
	if st.QueuedAdmitted != 1 {
		t.Fatalf("queued admitted = %d, want 1", st.QueuedAdmitted)
	}
	if st.Hiccups != 0 {
		t.Fatalf("hiccups = %d", st.Hiccups)
	}
}

func TestQueueRequestUnknownTitleFailsFast(t *testing.T) {
	s, err := New(testOptions(analytic.StreamingRAID))
	if err != nil {
		t.Fatal(err)
	}
	if _, queued, err := s.QueueRequest("ghost"); err == nil || queued {
		t.Fatal("unknown title should fail, not queue")
	}
	if s.QueuedRequests() != 0 {
		t.Fatal("ghost request parked")
	}
}

// Cancel stops a stream mid-playback: its title unpins (evictable), its
// buffers return, and the farm keeps serving others cleanly.
func TestCancelStream(t *testing.T) {
	for _, scheme := range analytic.Schemes() {
		s, err := New(testOptions(scheme))
		if err != nil {
			t.Fatal(err)
		}
		loadTitles(t, s, 2, 16)
		id0, _, err := s.Request("movie0")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
		id1, _, err := s.Request("movie1")
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunFor(3); err != nil {
			t.Fatal(err)
		}
		if err := s.Cancel(id0); err != nil {
			t.Fatalf("%v: cancel: %v", scheme, err)
		}
		// Cancelled title is unpinned.
		if n, err := s.Catalog().Pins("movie0"); err != nil || n != 0 {
			t.Fatalf("%v: pins after cancel = %d, %v", scheme, n, err)
		}
		// Double cancel fails.
		if err := s.Cancel(id0); err == nil {
			t.Fatalf("%v: double cancel accepted", scheme)
		}
		if err := s.RunUntilIdle(300); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		if st.Hiccups != 0 {
			t.Fatalf("%v: hiccups after cancel: %d", scheme, st.Hiccups)
		}
		if st.Finished != 1 {
			t.Fatalf("%v: finished = %d, want 1 (the uncancelled stream)", scheme, st.Finished)
		}
		// No buffer leak from the cancelled stream.
		if s.Engine().BufferPeak() > 0 && bufferInUseOf(s) != 0 {
			t.Fatalf("%v: buffers leaked after cancel", scheme)
		}
		_ = id1
	}
}

// bufferInUseOf reads occupancy off any engine type.
func bufferInUseOf(s *Server) int {
	type inUse interface{ BufferInUse() int }
	if v, ok := s.Engine().(inUse); ok {
		return v.BufferInUse()
	}
	return 0
}
