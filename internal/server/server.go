// Package server assembles the full multimedia on-demand server of the
// paper's Figure 1: a tertiary tape library holding the permanent
// database, a disk farm staging the working set, a fault-tolerance scheme
// engine scheduling cycle-based delivery, and admission control. It is
// the top-level public surface the examples and benchmarks drive.
//
// A Request stages the title from tape if needed (evicting cold titles),
// pins it, and admits a stream under the active scheme's bandwidth
// budget. Step advances one scheduling cycle. Failures are injected with
// FailDisk and repaired with RepairDisk, which replaces the drive and
// rebuilds its contents from parity.
package server

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"ftmm/internal/analytic"
	"ftmm/internal/catalog"
	"ftmm/internal/disk"
	"ftmm/internal/diskmodel"
	"ftmm/internal/layout"
	"ftmm/internal/metrics"
	"ftmm/internal/rebuild"
	"ftmm/internal/sched"
	"ftmm/internal/schemes"
	"ftmm/internal/tertiary"
	"ftmm/internal/units"
)

// Options configures a Server.
type Options struct {
	// Disks and ClusterSize shape the farm (Disks must be a whole number
	// of clusters).
	Disks, ClusterSize int
	// DiskParams are the drive characteristics (Table 1 if zero).
	DiskParams diskmodel.Params
	// Scheme selects the fault-tolerance scheme.
	Scheme analytic.Scheme
	// Rate is the uniform object bandwidth b0 (MPEG-1 if zero).
	Rate units.Rate
	// K is the reserve depth: buffer servers for Non-clustered, disks'
	// worth of reserved bandwidth for Improved-bandwidth.
	K int
	// DeclusterGroup is G, the declustering group size, for the
	// Declustered-parity scheme: parity groups of ClusterSize drives are
	// mapped onto block-design subsets of G-drive groups. 0 defaults to
	// 2·ClusterSize-1 (halving the rebuild window); ignored by the other
	// schemes. Disks must be a whole number of declustering groups.
	DeclusterGroup int
	// NCPolicy selects the Non-clustered transition policy.
	NCPolicy schemes.TransitionPolicy
	// Tertiary configures the tape library (DefaultConfig if zero).
	Tertiary tertiary.Config
	// SlotsPerDisk optionally overrides the per-disk per-cycle budget.
	SlotsPerDisk int
	// Workers bounds the engine's per-cluster parallelism within a cycle:
	// 0 uses GOMAXPROCS, 1 runs serial. Reports are identical either way.
	Workers int
	// DisableMergedReads turns off the Streaming RAID engine's same-title
	// read merging (see schemes.Config.DisableMergedReads); reports are
	// identical either way.
	DisableMergedReads bool
	// Metrics receives the engine's instruments; nil installs a fresh
	// registry (exposed via Metrics/MetricsSnapshot).
	Metrics *metrics.Registry
}

func (o *Options) fillDefaults() {
	if o.DiskParams == (diskmodel.Params{}) {
		o.DiskParams = diskmodel.Table1()
	}
	if o.Rate == 0 {
		o.Rate = units.MPEG1
	}
	if o.Tertiary == (tertiary.Config{}) {
		o.Tertiary = tertiary.DefaultConfig()
	}
	if o.Metrics == nil {
		o.Metrics = metrics.New()
	}
}

var (
	// ErrRejected marks admission failures: the active scheme's bandwidth
	// budget cannot fit another stream right now. Retrying after streams
	// finish can succeed; front-ends translate this into Retry-After.
	ErrRejected = errors.New("server: admission rejected")
	// ErrDraining marks admissions refused because the server is shutting
	// down gracefully (BeginDrain): existing streams play out, new ones
	// are turned away.
	ErrDraining = errors.New("server: draining, not admitting")
)

// Stats aggregates a server's lifetime activity.
type Stats struct {
	Cycles          int
	QueuedAdmitted  int
	Delivered       int
	Hiccups         int
	Reconstructions int
	Finished        int
	Terminated      int
	DataReads       int
	ParityReads     int
	BufferPeak      int // tracks
	Stagings        int
	Evictions       int
}

// Server is one multimedia on-demand server.
type Server struct {
	opts   Options
	farm   *disk.Farm
	lib    *tertiary.Library
	cat    *catalog.Catalog
	engine schemes.Simulator

	// object IDs by engine stream ID, for unpinning.
	objOf map[int]string
	stats Stats
	// staging accumulates simulated tertiary time spent.
	staging time.Duration
	// rebuilder, when non-nil, is an online rebuild in progress.
	rebuilder     *rebuild.Rebuilder
	rebuildDrive  int
	rebuildBudget int
	// pending holds queued admission requests (title IDs), FIFO.
	pending []string
	// draining, once set, refuses all new admissions (graceful shutdown).
	draining bool
}

// repairer is implemented by engines that coordinate their own repair
// (the Non-clustered engine, which must also release its buffer server).
type repairer interface {
	RepairDisk(int) error
}

// rebuiltNotifier is implemented by engines that track per-cluster
// degraded state and must learn when an incremental rebuild completes.
type rebuiltNotifier interface {
	OnDriveRebuilt(int) error
}

// New builds a server. The tape library starts empty; use AddTitle.
func New(opts Options) (*Server, error) {
	opts.fillDefaults()
	lib, err := tertiary.NewLibrary(opts.Tertiary)
	if err != nil {
		return nil, err
	}
	// Under declustered parity the farm's clusters are the G-drive
	// declustering groups; ClusterSize stays the parity group size C.
	farmCluster := opts.ClusterSize
	if opts.Scheme == analytic.DeclusteredParity {
		if opts.DeclusterGroup == 0 {
			opts.DeclusterGroup = 2*opts.ClusterSize - 1
		}
		farmCluster = opts.DeclusterGroup
	}
	farm, err := disk.NewFarm(opts.Disks, farmCluster, opts.DiskParams)
	if err != nil {
		return nil, err
	}
	var cat *catalog.Catalog
	if opts.Scheme == analytic.DeclusteredParity {
		cat, err = catalog.NewDeclustered(lib, farm, opts.ClusterSize)
	} else {
		placement := layout.DedicatedParity
		if opts.Scheme == analytic.ImprovedBandwidth {
			placement = layout.IntermixedParity
		}
		cat, err = catalog.New(lib, farm, placement)
	}
	if err != nil {
		return nil, err
	}
	cfg := schemes.Config{
		Farm: farm, Layout: cat.Layout(), Rate: opts.Rate,
		SlotsPerDisk:       opts.SlotsPerDisk,
		Workers:            opts.Workers,
		DisableMergedReads: opts.DisableMergedReads,
		Metrics:            opts.Metrics,
	}
	var engine schemes.Simulator
	switch opts.Scheme {
	case analytic.StreamingRAID:
		engine, err = schemes.NewStreamingRAID(cfg)
	case analytic.StaggeredGroup:
		engine, err = schemes.NewStaggeredGroup(cfg)
	case analytic.NonClustered:
		engine, err = schemes.NewNonClustered(cfg, opts.NCPolicy, opts.K)
	case analytic.ImprovedBandwidth:
		engine, err = schemes.NewImprovedBandwidth(cfg, ibReserveSlots(opts))
	case analytic.DeclusteredParity:
		engine, err = schemes.NewDeclustered(cfg)
	default:
		return nil, fmt.Errorf("server: unknown scheme %v", opts.Scheme)
	}
	if err != nil {
		return nil, err
	}
	return &Server{
		opts: opts, farm: farm, lib: lib, cat: cat, engine: engine,
		objOf: make(map[int]string),
	}, nil
}

// ibReserveSlots converts the paper's "K disks' worth of bandwidth" into
// a per-drive slot reserve: ceil(slots·K/D), at least 1 when K > 0.
func ibReserveSlots(opts Options) int {
	if opts.K <= 0 {
		return 0
	}
	slots := opts.SlotsPerDisk
	if slots == 0 {
		window := opts.DiskParams.CycleTime(opts.ClusterSize-1, opts.Rate)
		slots = opts.DiskParams.TrackBudget(window)
	}
	r := (slots*opts.K + opts.Disks - 1) / opts.Disks
	if r < 1 {
		r = 1
	}
	if r >= slots {
		r = slots - 1
	}
	return r
}

// Library exposes the tape library (e.g. for pre-loading a catalog).
func (s *Server) Library() *tertiary.Library { return s.lib }

// Farm exposes the disk subsystem.
func (s *Server) Farm() *disk.Farm { return s.farm }

// Engine exposes the scheme engine.
func (s *Server) Engine() schemes.Simulator { return s.engine }

// Catalog exposes residency state.
func (s *Server) Catalog() *catalog.Catalog { return s.cat }

// AddTitle archives a title with deterministic synthetic content of the
// given size onto the given tape.
func (s *Server) AddTitle(id string, size units.ByteSize, tape int, content []byte) error {
	if content == nil {
		return errors.New("server: nil content; generate it with workload.SyntheticContent")
	}
	if units.ByteSize(len(content)) != size {
		return fmt.Errorf("server: content is %d bytes, size says %d", len(content), int64(size))
	}
	return s.lib.Store(id, tape, content)
}

// Request admits a new stream for the title, staging it from tertiary
// storage if it is not disk-resident. It returns the stream ID and the
// simulated staging latency (zero for resident titles).
func (s *Server) Request(id string) (int, time.Duration, error) {
	return s.RequestAt(id, 0)
}

// resumer is implemented by engines that can admit a stream beginning
// at a parity-group boundary instead of the title's start (all four
// paper engines). The cluster layer's session failover rides on it: a
// client that lost its node resumes on a replica from the group
// boundary at or before its next owed track.
type resumer interface {
	AddStreamAt(obj *layout.Object, startGroup int) (int, error)
}

// RequestAt admits a new stream whose delivery begins at the given
// parity group (group 0 is a plain Request). Staging and pinning match
// Request; a start group outside the title's extent is an error, not a
// rejection.
func (s *Server) RequestAt(id string, startGroup int) (int, time.Duration, error) {
	if s.draining {
		return 0, 0, ErrDraining
	}
	obj, cost, err := s.cat.Ensure(id, s.opts.Rate)
	if err != nil {
		return 0, 0, err
	}
	var streamID int
	if startGroup == 0 {
		streamID, err = s.engine.AddStream(obj)
	} else {
		r, ok := s.engine.(resumer)
		if !ok {
			return 0, cost, errors.New("server: engine cannot admit mid-title")
		}
		if startGroup < 0 || startGroup >= len(obj.Groups) {
			return 0, cost, fmt.Errorf("server: start group %d outside [0,%d) of %s", startGroup, len(obj.Groups), id)
		}
		streamID, err = r.AddStreamAt(obj, startGroup)
	}
	if err != nil {
		return 0, cost, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	if err := s.cat.Pin(id); err != nil {
		return 0, cost, err
	}
	s.objOf[streamID] = id
	s.staging += cost
	if cost > 0 {
		s.stats.Stagings++
	}
	return streamID, cost, nil
}

// Step advances one scheduling cycle and folds the report into the
// server's stats. Finished and terminated streams unpin their titles.
func (s *Server) Step() (*sched.CycleReport, error) {
	s.drainQueue()
	rep, err := s.engine.Step()
	if err != nil {
		return nil, err
	}
	s.stats.Cycles++
	s.stats.Delivered += len(rep.Delivered)
	s.stats.Hiccups += len(rep.Hiccups)
	s.stats.Reconstructions += rep.Reconstructions
	s.stats.DataReads += rep.DataReads
	s.stats.ParityReads += rep.ParityReads
	s.stats.Finished += len(rep.Finished)
	s.stats.Terminated += len(rep.Terminated)
	if p := s.engine.BufferPeak(); p > s.stats.BufferPeak {
		s.stats.BufferPeak = p
	}
	for _, id := range rep.Finished {
		s.release(id)
	}
	for _, id := range rep.Terminated {
		s.release(id)
	}
	if err := s.stepRebuild(); err != nil {
		return nil, err
	}
	return rep, nil
}

func (s *Server) release(streamID int) {
	if objID, ok := s.objOf[streamID]; ok {
		_ = s.cat.Unpin(objID)
		delete(s.objOf, streamID)
	}
}

// RunFor advances n cycles.
func (s *Server) RunFor(n int) error {
	for i := 0; i < n; i++ {
		if _, err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntilIdle advances until no stream is active (bounded by maxCycles).
func (s *Server) RunUntilIdle(maxCycles int) error {
	for i := 0; i < maxCycles; i++ {
		if s.engine.Active() == 0 {
			return nil
		}
		if _, err := s.Step(); err != nil {
			return err
		}
	}
	if s.engine.Active() != 0 {
		return fmt.Errorf("server: %d streams still active after %d cycles", s.engine.Active(), maxCycles)
	}
	return nil
}

// FailDisk injects a drive failure at the next cycle boundary.
func (s *Server) FailDisk(id int) error { return s.engine.FailDisk(id) }

// RepairDisk replaces a failed drive and rebuilds its contents from the
// surviving parity groups (rebuild mode).
func (s *Server) RepairDisk(id int) error {
	if r, ok := s.engine.(repairer); ok {
		return r.RepairDisk(id)
	}
	drv, err := s.farm.Drive(id)
	if err != nil {
		return err
	}
	if err := drv.Replace(); err != nil {
		return err
	}
	return layout.RebuildDrive(s.farm, s.cat.Layout(), id)
}

// StartOnlineRebuild replaces a failed drive and begins restoring its
// contents incrementally — the paper's rebuild mode — spending at most
// readBudget spare track reads per cycle. Until the rebuild completes
// the scheme keeps operating degraded; Step advances the rebuild
// alongside normal service and notifies the engine on completion.
func (s *Server) StartOnlineRebuild(id, readBudget int) error {
	if s.rebuilder != nil && !s.rebuilder.Done() {
		return fmt.Errorf("server: a rebuild of drive %d is already running", s.rebuildDrive)
	}
	drv, err := s.farm.Drive(id)
	if err != nil {
		return err
	}
	if drv.State() == disk.Failed {
		if err := drv.Replace(); err != nil {
			return err
		}
	}
	r, err := rebuild.New(s.farm, s.cat.Layout(), id)
	if err != nil {
		return err
	}
	if r.CyclesNeeded(readBudget) < 0 {
		return fmt.Errorf("server: rebuild budget %d below the %d reads one track needs", readBudget, r.ReadsPerTrack())
	}
	s.rebuilder, s.rebuildDrive, s.rebuildBudget = r, id, readBudget
	return nil
}

// RebuildRemaining returns the tracks left in the online rebuild, or 0.
func (s *Server) RebuildRemaining() int {
	if s.rebuilder == nil {
		return 0
	}
	return s.rebuilder.Remaining()
}

// stepRebuild advances an in-progress online rebuild by one cycle.
func (s *Server) stepRebuild() error {
	if s.rebuilder == nil || s.rebuilder.Done() {
		return nil
	}
	if _, err := s.rebuilder.Step(s.rebuildBudget); err != nil {
		return err
	}
	if s.rebuilder.Done() {
		if n, ok := s.engine.(rebuiltNotifier); ok {
			if err := n.OnDriveRebuilt(s.rebuildDrive); err != nil {
				return err
			}
		}
		s.rebuilder = nil
	}
	return nil
}

// RebuildFromTertiary restores a replaced drive by re-staging the
// affected objects from tape instead of from parity — what a catastrophic
// failure forces — and returns the simulated tertiary time it cost. The
// whole objects touching the drive are re-fetched ("portions of many
// objects to be loaded ... many tapes may need to be referenced").
func (s *Server) RebuildFromTertiary(id int) (time.Duration, error) {
	drv, err := s.farm.Drive(id)
	if err != nil {
		return 0, err
	}
	if drv.State() == disk.Failed {
		if err := drv.Replace(); err != nil {
			return 0, err
		}
	}
	var total time.Duration
	for _, obj := range s.cat.Layout().AllObjects() {
		touched := false
		for gi := range obj.Groups {
			g := &obj.Groups[gi]
			if g.Parity.Disk == id {
				touched = true
			}
			for _, loc := range g.Data {
				if loc.Disk == id {
					touched = true
				}
			}
		}
		if !touched {
			continue
		}
		content, cost, err := s.lib.Fetch(obj.ID)
		if err != nil {
			return total, err
		}
		total += cost
		// Tolerant write: in a multi-drive catastrophe the other failed
		// drives' tracks stay missing until their own rebuilds run.
		if _, err := layout.WriteObjectTolerant(s.farm, obj, content); err != nil {
			return total, err
		}
	}
	return total, nil
}

// Stats returns the lifetime aggregate counters, merging in catalog
// activity.
func (s *Server) Stats() Stats {
	st := s.stats
	stagings, evictions := s.cat.Stats()
	st.Stagings = stagings
	st.Evictions = evictions
	return st
}

// StagingTime returns the cumulative simulated tertiary latency.
func (s *Server) StagingTime() time.Duration { return s.staging }

// Metrics returns the engine's instrument registry.
func (s *Server) Metrics() *metrics.Registry { return s.opts.Metrics }

// MetricsSnapshot returns a point-in-time copy of every instrument.
func (s *Server) MetricsSnapshot() metrics.Snapshot { return s.opts.Metrics.Snapshot() }

// BufferPeakBytes converts the engine's peak buffer occupancy to bytes.
func (s *Server) BufferPeakBytes() units.ByteSize {
	return units.ByteSize(s.engine.BufferPeak()) * s.opts.DiskParams.TrackSize
}

// CycleTime returns the engine's cycle duration.
func (s *Server) CycleTime() time.Duration { return s.engine.CycleTime() }

// GroupWidth returns C-1, the data tracks per parity group — the
// granularity RequestAt admits at and session resume rounds down to.
// Taken from the layout, not the farm: under declustered parity the
// farm's clusters are G-drive declustering groups while parity groups
// stay C wide.
func (s *Server) GroupWidth() int { return s.cat.Layout().GroupWidth() }

// Rate returns the uniform object bandwidth b0 streams play at.
func (s *Server) Rate() units.Rate { return s.opts.Rate }

// ParseScheme maps a command-line scheme name to its scheme and
// Non-clustered transition policy. Accepted: "sr"/"raid"/
// "streaming-raid", "sg"/"staggered", "nc"/"nc-alternate", "nc-simple",
// "ib"/"improved", "dc"/"declustered".
func ParseScheme(name string) (analytic.Scheme, schemes.TransitionPolicy, error) {
	switch strings.ToLower(name) {
	case "sr", "raid", "streaming-raid":
		return analytic.StreamingRAID, 0, nil
	case "sg", "staggered":
		return analytic.StaggeredGroup, 0, nil
	case "nc", "nc-alternate":
		return analytic.NonClustered, schemes.AlternateSwitchover, nil
	case "nc-simple":
		return analytic.NonClustered, schemes.SimpleSwitchover, nil
	case "ib", "improved":
		return analytic.ImprovedBandwidth, 0, nil
	case "dc", "declustered":
		return analytic.DeclusteredParity, 0, nil
	default:
		return 0, 0, fmt.Errorf("server: unknown scheme %q", name)
	}
}

// canceller is implemented by all engines: stop one stream immediately.
type canceller interface {
	CancelStream(int) error
}

// Cancel stops a stream (client hang-up) and unpins its title.
func (s *Server) Cancel(streamID int) error {
	c, ok := s.engine.(canceller)
	if !ok {
		return errors.New("server: engine cannot cancel streams")
	}
	if err := c.CancelStream(streamID); err != nil {
		return err
	}
	s.release(streamID)
	return nil
}

// rateSetter is implemented by engines that support fast-forward: the
// whole-group engines (Streaming RAID, declustered parity) can change a
// stream's per-cycle group draw after admission.
type rateSetter interface {
	SetStreamRate(id, rate int) error
}

// SetStreamRate changes a live stream's playback multiplier (1 =
// normal, r > 1 = fast-forward at r× the per-cycle draw). A refusal
// because the farm cannot absorb the extra draw comes back wrapping
// ErrRejected — transient, worth a retry once capacity frees up; other
// errors (unknown stream, unsupported engine, bad rate) are permanent.
func (s *Server) SetStreamRate(streamID, rate int) error {
	rs, ok := s.engine.(rateSetter)
	if !ok {
		return errors.New("server: engine cannot change stream rates")
	}
	if err := rs.SetStreamRate(streamID, rate); err != nil {
		if errors.Is(err, schemes.ErrCapacity) {
			return fmt.Errorf("%w: %v", ErrRejected, err)
		}
		return err
	}
	return nil
}

// weightedActiver is implemented by engines whose streams can draw more
// than one k′ unit per cycle.
type weightedActiver interface {
	WeightedActive() int
}

// WeightedActive returns the farm's true per-cycle k′ draw: active
// streams weighted by their playback multiplier. For engines without
// fast-forward it equals Active.
func (s *Server) WeightedActive() int {
	if wa, ok := s.engine.(weightedActiver); ok {
		return wa.WeightedActive()
	}
	return s.engine.Active()
}

// QueueRequest admits the title's stream now if capacity allows, or
// parks the request to be retried each cycle — the paper's "terminated
// and rescheduled at a later time" discipline for requests that cannot
// be served immediately. Queued requests are retried in FIFO order at
// the start of every Step; QueuedRequests reports the backlog.
func (s *Server) QueueRequest(id string) (streamID int, queued bool, err error) {
	streamID, _, err = s.Request(id)
	if err == nil {
		return streamID, false, nil
	}
	// Only admission rejections queue; unknown titles, staging failures,
	// and drain refusals surface immediately.
	if errors.Is(err, ErrDraining) || !s.cat.Resident(id) {
		return 0, false, err
	}
	s.pending = append(s.pending, id)
	return 0, true, nil
}

// QueuedRequests returns the admission backlog length.
func (s *Server) QueuedRequests() int { return len(s.pending) }

// BeginDrain stops admitting new streams (Request and QueueRequest
// return ErrDraining, and parked queue entries stop retrying); existing
// streams keep playing to completion. The network layer uses this for
// graceful shutdown: pace out what was promised, promise nothing new.
func (s *Server) BeginDrain() { s.draining = true }

// Draining reports whether the server is refusing new admissions.
func (s *Server) Draining() bool { return s.draining }

// StreamTitle returns the title a live stream is delivering; ok is
// false once the stream has finished, terminated, or been cancelled.
func (s *Server) StreamTitle(streamID int) (string, bool) {
	id, ok := s.objOf[streamID]
	return id, ok
}

// ActiveStreamIDs returns the live stream IDs in ascending order.
func (s *Server) ActiveStreamIDs() []int {
	ids := make([]int, 0, len(s.objOf))
	for id := range s.objOf {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// progresser is implemented by all engines: per-stream delivery
// progress for status surfaces and pacing front-ends.
type progresser interface {
	StreamProgress(id int) (next, total int, ok bool)
}

// StreamProgress reports how far a stream has played: the next track
// owed to the client and the object's total tracks. ok is false for
// streams the engine no longer knows.
func (s *Server) StreamProgress(streamID int) (next, total int, ok bool) {
	p, o := s.engine.(progresser)
	if !o {
		return 0, 0, false
	}
	return p.StreamProgress(streamID)
}

// drainQueue retries parked requests in order, stopping at the first
// that still does not fit (FIFO fairness).
func (s *Server) drainQueue() {
	for len(s.pending) > 0 {
		id := s.pending[0]
		if _, _, err := s.Request(id); err != nil {
			return
		}
		s.pending = s.pending[1:]
		s.stats.QueuedAdmitted++
	}
}
