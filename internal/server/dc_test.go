package server

import (
	"fmt"
	"testing"

	"ftmm/internal/analytic"
	"ftmm/internal/diskmodel"
)

// dcOptions builds a declustered server: one G=9 declustering group of
// 9 drives carrying C=3 parity groups on the (9,3) Steiner design.
func dcOptions() Options {
	p := diskmodel.Table1()
	p.Capacity = 60 * p.TrackSize
	return Options{
		Disks: 9, ClusterSize: 3, DeclusterGroup: 9,
		DiskParams: p,
		Scheme:     analytic.DeclusteredParity,
	}
}

func TestDeclusteredServerEndToEnd(t *testing.T) {
	s, err := New(dcOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Engine().Name(); got != analytic.DeclusteredParity.String() {
		t.Errorf("engine %q for scheme %q", got, analytic.DeclusteredParity)
	}
	// The parity group stays C wide even though the farm's clusters are
	// the G-drive declustering groups (regression: GroupWidth must come
	// from the layout, not the farm).
	if got := s.GroupWidth(); got != 2 {
		t.Fatalf("GroupWidth = %d, want C-1 = 2", got)
	}
	loadTitles(t, s, 2, 16)
	for i := 0; i < 2; i++ {
		if _, _, err := s.Request(fmt.Sprintf("movie%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunUntilIdle(200); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Hiccups != 0 {
		t.Errorf("%d hiccups in normal operation", st.Hiccups)
	}
	if st.Delivered != 2*16 {
		t.Errorf("delivered %d tracks, want 32", st.Delivered)
	}
	if st.Finished != 2 {
		t.Errorf("finished %d, want 2", st.Finished)
	}
}

// G defaults to 2C-1 when DeclusterGroup is zero.
func TestDeclusteredServerDefaultGroup(t *testing.T) {
	opts := dcOptions()
	opts.DeclusterGroup = 0
	opts.Disks, opts.ClusterSize = 10, 3 // G defaults to 5; 10 = 2 groups
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Farm().ClusterSize(); got != 5 {
		t.Fatalf("farm cluster (declustering group) = %d, want default 2C-1 = 5", got)
	}
	if got := s.GroupWidth(); got != 2 {
		t.Fatalf("GroupWidth = %d, want C-1 = 2", got)
	}
}

// A failure anywhere in the declustering group is masked, and RepairDisk
// rebuilds the drive from parity so a replay is clean.
func TestDeclusteredServerFailureAndRepair(t *testing.T) {
	s, err := New(dcOptions())
	if err != nil {
		t.Fatal(err)
	}
	loadTitles(t, s, 1, 16)
	if _, _, err := s.Request("movie0"); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(2); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(4); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(200); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Hiccups != 0 {
		t.Fatalf("%d hiccups despite single failure", st.Hiccups)
	}
	if err := s.RepairDisk(4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Request("movie0"); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(200); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Hiccups != 0 {
		t.Errorf("%d hiccups after repair", st.Hiccups)
	}
	if st.Reconstructions == 0 {
		t.Error("degraded playback should have reconstructed tracks")
	}
}

// Online rebuild drains a few tracks per cycle while streams keep
// playing, same as the clustered schemes.
func TestDeclusteredServerOnlineRebuild(t *testing.T) {
	s, err := New(dcOptions())
	if err != nil {
		t.Fatal(err)
	}
	loadTitles(t, s, 1, 24)
	if _, _, err := s.Request("movie0"); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(2); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFor(2); err != nil {
		t.Fatal(err)
	}
	if err := s.StartOnlineRebuild(1, 8); err != nil {
		t.Fatal(err)
	}
	remaining := s.RebuildRemaining()
	if remaining == 0 {
		t.Fatal("rebuild has no work")
	}
	for i := 0; s.RebuildRemaining() > 0; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if i > remaining+10 {
			t.Fatalf("rebuild not converging: %d left", s.RebuildRemaining())
		}
	}
	if st := s.Stats(); st.Hiccups != 0 {
		t.Errorf("%d hiccups during online rebuild", st.Hiccups)
	}
}
