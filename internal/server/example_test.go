package server_test

import (
	"fmt"

	"ftmm/internal/analytic"
	"ftmm/internal/diskmodel"
	"ftmm/internal/server"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// Build a small Streaming RAID server, survive a drive failure
// mid-playback, and read the service report.
func ExampleServer() {
	params := diskmodel.Table1()
	params.Capacity = 100 * params.TrackSize

	srv, err := server.New(server.Options{
		Disks: 10, ClusterSize: 5,
		DiskParams: params,
		Scheme:     analytic.StreamingRAID,
	})
	if err != nil {
		panic(err)
	}
	size := units.ByteSize(16) * params.TrackSize
	if err := srv.AddTitle("movie", size, 0, workload.SyntheticContent("movie", int(size))); err != nil {
		panic(err)
	}
	if _, _, err := srv.Request("movie"); err != nil {
		panic(err)
	}
	if err := srv.RunFor(2); err != nil {
		panic(err)
	}
	if err := srv.FailDisk(1); err != nil {
		panic(err)
	}
	if err := srv.RunUntilIdle(100); err != nil {
		panic(err)
	}
	st := srv.Stats()
	fmt.Printf("delivered: %d tracks\n", st.Delivered)
	fmt.Printf("hiccups: %d\n", st.Hiccups)
	fmt.Printf("reconstructed on the fly: %d\n", st.Reconstructions)
	// Output:
	// delivered: 16 tracks
	// hiccups: 0
	// reconstructed on the fly: 1
}
