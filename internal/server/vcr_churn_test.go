package server

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ftmm/internal/analytic"
)

// churnGeometry builds the farm options for the churn test under one
// scheme.
func churnGeometry(t *testing.T, name string, workers int) Options {
	t.Helper()
	scheme, policy, err := ParseScheme(name)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(scheme)
	opts.NCPolicy = policy
	opts.Workers = workers
	if name == "dc" {
		opts.Disks, opts.ClusterSize, opts.DeclusterGroup = 13, 4, 13
	}
	return opts
}

// TestVcrChurnHoldsWeightedBound hammers the rate-capable engines (sr,
// dc) with a seeded mix of admissions, cancels, pauses (cancel with a
// held position), resumes (RequestAt the held floor), and
// fast-forwards, asserting after every operation and every cycle that
// the k′-weighted active count never exceeds the analytic N_p — a
// fast-forwarding stream draws rate tracks per cycle and must be
// charged like rate viewers. The decision log must be identical at
// every worker count (read parallelism must not leak into admission),
// and after the churn drains the arena and pool must be empty — a
// pause that strands a buffer would surface here. Run under -race this
// also exercises the engines' worker pools across rekeyed streams.
func TestVcrChurnHoldsWeightedBound(t *testing.T) {
	const seed = 42
	for _, scheme := range []string{"sr", "dc"} {
		var logs []string
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", scheme, workers), func(t *testing.T) {
				opts := churnGeometry(t, scheme, workers)
				s, err := New(opts)
				if err != nil {
					t.Fatal(err)
				}
				cfg := analytic.Config{
					Disk: s.Farm().Params(), ObjectRate: s.Rate(),
					D: opts.Disks, C: opts.ClusterSize, G: opts.DeclusterGroup, K: opts.K,
				}
				bound, err := cfg.MaxStreamsInt(mustScheme(t, scheme))
				if err != nil {
					t.Fatal(err)
				}
				const groups = 4
				width := s.GroupWidth()
				loadTitles(t, s, 3, groups*width)

				check := func(when string) {
					t.Helper()
					if w := s.WeightedActive(); w > bound {
						t.Fatalf("%s: weighted active %d exceeds analytic N_p=%d", when, w, bound)
					}
				}
				type parked struct {
					title string
					next  int
				}
				var playing []int
				titleOf := map[int]string{}
				var shelf []parked
				var log strings.Builder
				rng := rand.New(rand.NewSource(seed))

				prune := func() {
					kept := playing[:0]
					for _, id := range playing {
						if _, _, ok := s.StreamProgress(id); ok {
							kept = append(kept, id)
						}
					}
					playing = kept
				}
				for i := 0; i < 400; i++ {
					prune()
					switch op := rng.Intn(10); {
					case op < 3: // admit
						title := fmt.Sprintf("movie%d", rng.Intn(3))
						if id, _, err := s.Request(title); err == nil {
							playing = append(playing, id)
							titleOf[id] = title
							log.WriteString("A+")
						} else {
							log.WriteString("A-")
						}
					case op < 4 && len(playing) > 0: // hang up
						id := playing[rng.Intn(len(playing))]
						_ = s.Cancel(id)
						log.WriteString("C")
					case op < 6 && len(playing) > 0: // pause
						k := rng.Intn(len(playing))
						id := playing[k]
						next, _, ok := s.StreamProgress(id)
						if !ok {
							break
						}
						if err := s.Cancel(id); err != nil {
							break
						}
						playing = append(playing[:k], playing[k+1:]...)
						shelf = append(shelf, parked{title: titleOf[id], next: next})
						log.WriteString("P")
					case op < 8 && len(shelf) > 0: // resume
						k := rng.Intn(len(shelf))
						p := shelf[k]
						if id, _, err := s.RequestAt(p.title, p.next/width); err == nil {
							playing = append(playing, id)
							titleOf[id] = p.title
							shelf = append(shelf[:k], shelf[k+1:]...)
							log.WriteString("R+")
						} else {
							log.WriteString("R-") // stays parked: a held Retry-After
						}
					case op < 9 && len(playing) > 0: // fast-forward
						id := playing[rng.Intn(len(playing))]
						if err := s.SetStreamRate(id, 2+rng.Intn(2)); err == nil {
							log.WriteString("F+")
						} else {
							log.WriteString("F-")
						}
					default:
						if _, err := s.Step(); err != nil {
							t.Fatal(err)
						}
						log.WriteString("S")
					}
					check(fmt.Sprintf("op %d", i))
				}

				// Drain: hang up everything still playing (parked sessions
				// hold no engine state) and run the farm empty; nothing may
				// remain checked out.
				prune()
				for _, id := range playing {
					_ = s.Cancel(id)
				}
				for i := 0; i < 50 && s.Engine().Active() > 0; i++ {
					if _, err := s.Step(); err != nil {
						t.Fatal(err)
					}
					check("drain")
				}
				if n := s.Engine().Active(); n != 0 {
					t.Fatalf("%d streams still active after drain", n)
				}
				// Two more steps: the engine retains a report's buffers
				// across the double-buffered report window.
				for i := 0; i < 2; i++ {
					if _, err := s.Step(); err != nil {
						t.Fatal(err)
					}
				}
				if n := s.Engine().Arena().Outstanding(); n != 0 {
					t.Errorf("%d arena buffers leaked through pause/ff churn", n)
				}
				if n := s.Engine().BufferInUse(); n != 0 {
					t.Errorf("%d pool tracks leaked through pause/ff churn", n)
				}
				logs = append(logs, log.String())
			})
		}
		if len(logs) == 2 && logs[0] != logs[1] {
			t.Errorf("%s: churn decisions differ between worker counts:\n  w1: %s\n  w8: %s",
				scheme, logs[0], logs[1])
		}
	}
}

func mustScheme(t *testing.T, name string) analytic.Scheme {
	t.Helper()
	scheme, _, err := ParseScheme(name)
	if err != nil {
		t.Fatal(err)
	}
	return scheme
}
