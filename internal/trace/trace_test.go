package trace

import (
	"strings"
	"testing"

	"ftmm/internal/sched"
)

const ts = 4 // track size for tests

func content(id string, tracks int) []byte {
	out := make([]byte, tracks*ts)
	for i := range out {
		out[i] = byte(i) ^ id[0]
	}
	return out
}

func newTestRecorder(t *testing.T) (*Recorder, map[string][]byte) {
	t.Helper()
	c := map[string][]byte{"a": content("a", 3), "b": content("b", 2)}
	r, err := NewRecorder(c, ts)
	if err != nil {
		t.Fatal(err)
	}
	return r, c
}

func deliver(c map[string][]byte, obj string, track int) sched.Delivery {
	return sched.Delivery{StreamID: streamOf(obj), ObjectID: obj, Track: track,
		Data: c[obj][track*ts : (track+1)*ts]}
}

func streamOf(obj string) int {
	if obj == "a" {
		return 1
	}
	return 2
}

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(nil, 0); err == nil {
		t.Error("zero track size accepted")
	}
}

func TestHappyPath(t *testing.T) {
	r, c := newTestRecorder(t)
	r.Observe(&sched.CycleReport{Cycle: 0, Delivered: []sched.Delivery{deliver(c, "a", 0), deliver(c, "b", 0)}})
	r.Observe(&sched.CycleReport{Cycle: 1, Delivered: []sched.Delivery{deliver(c, "a", 1), deliver(c, "b", 1)}})
	r.Observe(&sched.CycleReport{Cycle: 2, Delivered: []sched.Delivery{deliver(c, "a", 2)}})
	if err := r.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyContinuity(); err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyComplete(map[int]string{1: "a", 2: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyHiccupsWithin(nil); err != nil {
		t.Fatal(err)
	}
	s := r.Summarize()
	if s.Delivered != 5 || s.Hiccups != 0 || s.Streams != 2 || s.LastCycle != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if len(r.Events()) != 5 {
		t.Fatal("events")
	}
}

func TestIntegrityCatchesCorruption(t *testing.T) {
	r, c := newTestRecorder(t)
	d := deliver(c, "a", 0)
	bad := append([]byte(nil), d.Data...)
	bad[1] ^= 0xFF
	d.Data = bad
	r.Observe(&sched.CycleReport{Delivered: []sched.Delivery{d}})
	err := r.VerifyIntegrity()
	if err == nil || !strings.Contains(err.Error(), "content differs") {
		t.Fatalf("corruption not caught: %v", err)
	}
}

func TestIntegrityUnknownObject(t *testing.T) {
	r, _ := newTestRecorder(t)
	r.Observe(&sched.CycleReport{Delivered: []sched.Delivery{{ObjectID: "ghost", Data: make([]byte, ts)}}})
	if err := r.VerifyIntegrity(); err == nil {
		t.Fatal("unknown object not caught")
	}
}

func TestIntegrityBeyondContent(t *testing.T) {
	r, _ := newTestRecorder(t)
	r.Observe(&sched.CycleReport{Delivered: []sched.Delivery{{ObjectID: "a", Track: 99, Data: make([]byte, ts)}}})
	if err := r.VerifyIntegrity(); err == nil {
		t.Fatal("out-of-range track not caught")
	}
}

func TestIntegrityPaddedFinalTrack(t *testing.T) {
	// Object "short" is 1.5 tracks long; track 1 is half content, half
	// zero padding.
	c := map[string][]byte{"short": content("s", 2)[:6]}
	r, err := NewRecorder(c, ts)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, ts)
	copy(want, c["short"][4:6])
	r.Observe(&sched.CycleReport{Delivered: []sched.Delivery{{ObjectID: "short", Track: 1, Data: want}}})
	if err := r.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestContinuityCatchesGap(t *testing.T) {
	r, c := newTestRecorder(t)
	r.Observe(&sched.CycleReport{Cycle: 0, Delivered: []sched.Delivery{deliver(c, "a", 0)}})
	r.Observe(&sched.CycleReport{Cycle: 1, Delivered: []sched.Delivery{deliver(c, "a", 2)}})
	if err := r.VerifyContinuity(); err == nil {
		t.Fatal("gap not caught")
	}
}

func TestContinuityCountsHiccupsAsAccounted(t *testing.T) {
	r, c := newTestRecorder(t)
	r.Observe(&sched.CycleReport{Cycle: 0, Delivered: []sched.Delivery{deliver(c, "a", 0)}})
	r.Observe(&sched.CycleReport{Cycle: 1, Hiccups: []sched.Hiccup{{StreamID: 1, ObjectID: "a", Track: 1, Reason: "x"}}})
	r.Observe(&sched.CycleReport{Cycle: 2, Delivered: []sched.Delivery{deliver(c, "a", 2)}})
	if err := r.VerifyContinuity(); err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyComplete(map[int]string{1: "a"}); err != nil {
		t.Fatal(err)
	}
	if got := len(r.Hiccups()); got != 1 {
		t.Fatalf("hiccups = %d", got)
	}
}

func TestContinuityCatchesOutOfOrder(t *testing.T) {
	r, c := newTestRecorder(t)
	r.Observe(&sched.CycleReport{Cycle: 0, Delivered: []sched.Delivery{deliver(c, "a", 1)}})
	r.Observe(&sched.CycleReport{Cycle: 1, Delivered: []sched.Delivery{deliver(c, "a", 0)}})
	if err := r.VerifyContinuity(); err == nil {
		t.Fatal("out-of-order delivery not caught")
	}
}

func TestCompleteCatchesMissing(t *testing.T) {
	r, c := newTestRecorder(t)
	r.Observe(&sched.CycleReport{Delivered: []sched.Delivery{deliver(c, "a", 0)}})
	if err := r.VerifyComplete(map[int]string{1: "a"}); err == nil {
		t.Fatal("missing tracks not caught")
	}
	if err := r.VerifyComplete(map[int]string{9: "zzz"}); err == nil {
		t.Fatal("unknown object not caught")
	}
}

func TestHiccupWindows(t *testing.T) {
	r, _ := newTestRecorder(t)
	r.Observe(&sched.CycleReport{Cycle: 7, Hiccups: []sched.Hiccup{{StreamID: 1, ObjectID: "a", Track: 0, Reason: "transition"}}})
	if err := r.VerifyHiccupsWithin([][2]int{{5, 9}}); err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyHiccupsWithin([][2]int{{0, 6}}); err == nil {
		t.Fatal("out-of-window hiccup not caught")
	}
	if err := r.VerifyHiccupsWithin(nil); err == nil {
		t.Fatal("hiccup with no windows not caught")
	}
}

func TestSummaryBreakdown(t *testing.T) {
	r, c := newTestRecorder(t)
	d := deliver(c, "a", 0)
	d.Reconstructed = true
	r.Observe(&sched.CycleReport{Cycle: 3, Delivered: []sched.Delivery{d}})
	r.Observe(&sched.CycleReport{Cycle: 4, Hiccups: []sched.Hiccup{
		{StreamID: 1, ObjectID: "a", Track: 1, Reason: "transition"},
		{StreamID: 2, ObjectID: "b", Track: 0, Reason: "overload"},
	}})
	s := r.Summarize()
	if s.Reconstructed != 1 || s.Hiccups != 2 || s.HiccupStreams != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.HiccupsByCause["transition"] != 1 || s.HiccupsByCause["overload"] != 1 {
		t.Fatalf("causes = %v", s.HiccupsByCause)
	}
	if s.FirstCycle != 3 || s.LastCycle != 4 {
		t.Fatalf("cycle range = %d..%d", s.FirstCycle, s.LastCycle)
	}
}
