// Package trace records and verifies delivery traces: which tracks each
// stream received, in which cycles, with what content. It turns the
// paper's informal service guarantees into checkable predicates:
//
//   - integrity: every delivered track's bytes equal the stored object's
//     bytes at that position (reconstruction is provably correct);
//   - continuity: per stream, track t is delivered in cycle start+t — a
//     constant-bandwidth stream never stalls, it either delivers or
//     hiccups on schedule;
//   - completeness: every track was either delivered or accounted for as
//     a hiccup (nothing silently dropped);
//   - containment: hiccups occur only inside declared windows (e.g. the
//     C-cycle transition after a failure).
package trace

import (
	"bytes"
	"fmt"
	"sort"

	"ftmm/internal/sched"
)

// Event is one delivered or lost track.
type Event struct {
	Cycle    int
	StreamID int
	ObjectID string
	Track    int
	// Lost marks a hiccup; Data is nil for lost tracks.
	Lost          bool
	Reason        string
	Reconstructed bool
	Data          []byte
}

// Recorder accumulates events from cycle reports.
type Recorder struct {
	events []Event
	// content maps object ID to its full stored byte stream.
	content   map[string][]byte
	trackSize int
}

// NewRecorder creates a Recorder. content maps object IDs to the exact
// bytes stored (as produced by workload.SyntheticContent); trackSize is
// the farm's track size in bytes.
func NewRecorder(content map[string][]byte, trackSize int) (*Recorder, error) {
	if trackSize <= 0 {
		return nil, fmt.Errorf("trace: track size %d must be positive", trackSize)
	}
	return &Recorder{content: content, trackSize: trackSize}, nil
}

// Observe folds one cycle report into the trace. Delivered bytes are
// copied: engines recycle a report's track buffers after the next Step,
// but a trace retains content for verification at the end of the run.
func (r *Recorder) Observe(rep *sched.CycleReport) {
	for _, d := range rep.Delivered {
		r.events = append(r.events, Event{
			Cycle: rep.Cycle, StreamID: d.StreamID, ObjectID: d.ObjectID,
			Track: d.Track, Reconstructed: d.Reconstructed,
			Data: append([]byte(nil), d.Data...),
		})
	}
	for _, h := range rep.Hiccups {
		r.events = append(r.events, Event{
			Cycle: rep.Cycle, StreamID: h.StreamID, ObjectID: h.ObjectID,
			Track: h.Track, Lost: true, Reason: h.Reason,
		})
	}
}

// Record appends one event observed outside a CycleReport — e.g. a
// network client folding received frames into a trace. Delivered data
// is copied, like Observe.
func (r *Recorder) Record(e Event) {
	if !e.Lost {
		e.Data = append([]byte(nil), e.Data...)
	}
	r.events = append(r.events, e)
}

// Events returns the recorded events in observation order.
func (r *Recorder) Events() []Event { return r.events }

// Hiccups returns only the lost-track events.
func (r *Recorder) Hiccups() []Event {
	var out []Event
	for _, e := range r.events {
		if e.Lost {
			out = append(out, e)
		}
	}
	return out
}

// perStream groups events by stream, ordered by track.
func (r *Recorder) perStream() map[int][]Event {
	m := map[int][]Event{}
	for _, e := range r.events {
		m[e.StreamID] = append(m[e.StreamID], e)
	}
	for id := range m {
		es := m[id]
		sort.Slice(es, func(i, j int) bool { return es[i].Track < es[j].Track })
	}
	return m
}

// CheckTrack is the single definition of bit-exactness: a correct
// delivery of the given track carries trackSize bytes of content at the
// track's offset, zero-padded past the end of the object. It allocates
// nothing, so network clients (ftmmload) can verify every received
// track on the fly with the same predicate the server-side trace uses.
func CheckTrack(content []byte, trackSize, track int, got []byte) error {
	if trackSize <= 0 {
		return fmt.Errorf("trace: track size %d must be positive", trackSize)
	}
	if len(got) != trackSize {
		return fmt.Errorf("trace: track %d carries %d bytes, want %d", track, len(got), trackSize)
	}
	start := track * trackSize
	if track < 0 || start >= len(content) {
		return fmt.Errorf("trace: track %d beyond content (%d bytes)", track, len(content))
	}
	end := start + trackSize
	if end > len(content) {
		end = len(content)
	}
	if !bytes.Equal(got[:end-start], content[start:end]) {
		return fmt.Errorf("trace: track %d: content differs", track)
	}
	for _, b := range got[end-start:] { // final partial track, zero padded
		if b != 0 {
			return fmt.Errorf("trace: track %d: padding past object end is not zero", track)
		}
	}
	return nil
}

// VerifyIntegrity checks every delivered track's bytes against the
// stored content.
func (r *Recorder) VerifyIntegrity() error {
	for _, e := range r.events {
		if e.Lost {
			continue
		}
		content, ok := r.content[e.ObjectID]
		if !ok {
			return fmt.Errorf("trace: delivery of unknown object %q", e.ObjectID)
		}
		if err := CheckTrack(content, r.trackSize, e.Track, e.Data); err != nil {
			return fmt.Errorf("trace: stream %d object %q (cycle %d, reconstructed=%v): %w",
				e.StreamID, e.ObjectID, e.Cycle, e.Reconstructed, err)
		}
	}
	return nil
}

// VerifyContinuity checks that each stream's events cover consecutive
// tracks 0..max with exactly one event per track, delivered one track per
// delivery slot: for every consecutive pair of events the cycle gap
// equals the track gap (after the stream's own start).
func (r *Recorder) VerifyContinuity() error {
	for id, es := range r.perStream() {
		for i, e := range es {
			if e.Track != i {
				return fmt.Errorf("trace: stream %d: track %d missing or duplicated (event %d has track %d)", id, i, i, e.Track)
			}
		}
		// Deliveries happen in track order over cycles; a track is never
		// delivered before an earlier one.
		sort.Slice(es, func(i, j int) bool { return es[i].Cycle < es[j].Cycle })
		prev := -1
		for _, e := range es {
			if e.Track < prev {
				return fmt.Errorf("trace: stream %d: track %d delivered after track %d", id, e.Track, prev)
			}
			prev = e.Track
		}
	}
	return nil
}

// VerifyComplete checks each listed stream received (or hiccuped) every
// track of its object.
func (r *Recorder) VerifyComplete(streams map[int]string) error {
	per := r.perStream()
	for id, objID := range streams {
		content, ok := r.content[objID]
		if !ok {
			return fmt.Errorf("trace: unknown object %q for stream %d", objID, id)
		}
		wantTracks := (len(content) + r.trackSize - 1) / r.trackSize
		if got := len(per[id]); got != wantTracks {
			return fmt.Errorf("trace: stream %d: %d of %d tracks accounted for", id, got, wantTracks)
		}
	}
	return nil
}

// VerifyHiccupsWithin checks every hiccup lies inside one of the allowed
// cycle windows [from, to].
func (r *Recorder) VerifyHiccupsWithin(windows [][2]int) error {
	for _, e := range r.Hiccups() {
		ok := false
		for _, w := range windows {
			if e.Cycle >= w[0] && e.Cycle <= w[1] {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("trace: hiccup at cycle %d (stream %d, %s track %d) outside allowed windows %v",
				e.Cycle, e.StreamID, e.ObjectID, e.Track, windows)
		}
	}
	return nil
}

// Summary aggregates the trace.
type Summary struct {
	Delivered      int
	Hiccups        int
	Reconstructed  int
	Streams        int
	FirstCycle     int
	LastCycle      int
	HiccupStreams  int
	HiccupsByCause map[string]int
}

// Summarize computes the aggregate view.
func (r *Recorder) Summarize() Summary {
	s := Summary{FirstCycle: -1, HiccupsByCause: map[string]int{}}
	streams := map[int]bool{}
	hiccupStreams := map[int]bool{}
	for _, e := range r.events {
		streams[e.StreamID] = true
		if s.FirstCycle < 0 || e.Cycle < s.FirstCycle {
			s.FirstCycle = e.Cycle
		}
		if e.Cycle > s.LastCycle {
			s.LastCycle = e.Cycle
		}
		if e.Lost {
			s.Hiccups++
			hiccupStreams[e.StreamID] = true
			s.HiccupsByCause[e.Reason]++
			continue
		}
		s.Delivered++
		if e.Reconstructed {
			s.Reconstructed++
		}
	}
	s.Streams = len(streams)
	s.HiccupStreams = len(hiccupStreams)
	return s
}
