// Package workload generates the synthetic demand the experiments run
// against: Poisson stream arrivals over a Zipf-skewed object popularity
// distribution (a standard video-on-demand model: a few hot movies take
// most requests), plus deterministic synthetic object content so tests
// can verify delivered bytes exactly.
//
// All randomness is seeded math/rand; the same Config always produces the
// same request sequence.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Request is one client request: start delivering an object at a time
// offset from the experiment start.
type Request struct {
	At       time.Duration
	ObjectID string
}

// Config parameterizes a Generator.
type Config struct {
	// Seed makes the sequence reproducible.
	Seed int64
	// Objects are the requestable object IDs, most popular first.
	Objects []string
	// ZipfS is the Zipf skew exponent: object i (0-based) has weight
	// 1/(i+1)^ZipfS. Zero means uniform popularity.
	ZipfS float64
	// ArrivalsPerSecond is the Poisson arrival rate.
	ArrivalsPerSecond float64

	// Flash crowds: when BurstSize > 1 and BurstEvery > 0, every
	// BurstEvery of generated time the Poisson process is interrupted by
	// BurstSize simultaneous requests for one title drawn uniformly from
	// the Zipf head (the first BurstHead objects; 0 means 1) — a
	// premiere or a live-event start, the arrival pattern batched
	// admission exists for.
	BurstSize  int
	BurstEvery time.Duration
	BurstHead  int
}

// Generator produces a reproducible request stream.
type Generator struct {
	rng  *rand.Rand
	cfg  Config
	cdf  []float64
	last time.Duration

	// Flash-crowd state: the next burst instant, and the remainder of a
	// burst in progress (all at g.last, all for burstTitle).
	nextBurst  time.Duration
	burstLeft  int
	burstTitle string
}

// New creates a Generator.
func New(cfg Config) (*Generator, error) {
	if len(cfg.Objects) == 0 {
		return nil, errors.New("workload: no objects")
	}
	if cfg.ZipfS < 0 {
		return nil, fmt.Errorf("workload: negative Zipf skew %v", cfg.ZipfS)
	}
	if cfg.ArrivalsPerSecond <= 0 {
		return nil, fmt.Errorf("workload: arrival rate %v must be positive", cfg.ArrivalsPerSecond)
	}
	if cfg.BurstSize > 1 && cfg.BurstEvery <= 0 {
		return nil, fmt.Errorf("workload: burst size %d needs a positive burst interval", cfg.BurstSize)
	}
	g := &Generator{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg, nextBurst: cfg.BurstEvery}
	g.cdf = make([]float64, len(cfg.Objects))
	total := 0.0
	for i := range cfg.Objects {
		total += 1 / math.Pow(float64(i+1), cfg.ZipfS)
		g.cdf[i] = total
	}
	for i := range g.cdf {
		g.cdf[i] /= total
	}
	return g, nil
}

// Pick draws one object ID from the popularity distribution.
func (g *Generator) Pick() string {
	u := g.rng.Float64()
	i := sort.SearchFloat64s(g.cdf, u)
	if i >= len(g.cfg.Objects) {
		i = len(g.cfg.Objects) - 1
	}
	return g.cfg.Objects[i]
}

// pickHead draws one object uniformly from the Zipf head (the first
// BurstHead objects).
func (g *Generator) pickHead() string {
	head := g.cfg.BurstHead
	if head < 1 {
		head = 1
	}
	if head > len(g.cfg.Objects) {
		head = len(g.cfg.Objects)
	}
	return g.cfg.Objects[g.rng.Intn(head)]
}

// Next returns the next request; inter-arrival times are exponential
// with the configured rate, except when a flash-crowd burst fires: its
// BurstSize requests all carry the burst instant and the same title.
func (g *Generator) Next() Request {
	if g.burstLeft > 0 {
		g.burstLeft--
		return Request{At: g.last, ObjectID: g.burstTitle}
	}
	gap := g.rng.ExpFloat64() / g.cfg.ArrivalsPerSecond
	at := g.last + time.Duration(gap*float64(time.Second))
	if g.cfg.BurstSize > 1 && at >= g.nextBurst {
		g.last = g.nextBurst
		g.nextBurst += g.cfg.BurstEvery
		g.burstTitle = g.pickHead()
		g.burstLeft = g.cfg.BurstSize - 1
		return Request{At: g.last, ObjectID: g.burstTitle}
	}
	g.last = at
	return Request{At: g.last, ObjectID: g.Pick()}
}

// Generate returns the next n requests.
func (g *Generator) Generate(n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// ObjectNames returns n IDs of the form prefix0..prefixN-1.
func ObjectNames(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return out
}

// SyntheticContent produces size bytes of deterministic, id-dependent
// content. The same (id, size) always yields the same bytes, and two
// different IDs almost surely differ — so a delivery trace can prove it
// carried the right object.
func SyntheticContent(id string, size int) []byte {
	out := make([]byte, size)
	// A tiny xorshift-style stream seeded from the id.
	var seed uint64 = 1469598103934665603
	for _, b := range []byte(id) {
		seed ^= uint64(b)
		seed *= 1099511628211
	}
	x := seed
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x)
	}
	return out
}
