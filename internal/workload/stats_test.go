package workload

import (
	"math"
	"testing"
	"time"
)

// chiSquared computes Pearson's statistic for observed counts against
// expected probabilities over n draws.
func chiSquared(obs []int, probs []float64, n int) float64 {
	x2 := 0.0
	for i, o := range obs {
		exp := probs[i] * float64(n)
		d := float64(o) - exp
		x2 += d * d / exp
	}
	return x2
}

// zipfProbs returns the generator's nominal distribution: weight
// 1/(i+1)^s, normalized.
func zipfProbs(objects int, s float64) []float64 {
	probs := make([]float64, objects)
	total := 0.0
	for i := range probs {
		probs[i] = 1 / math.Pow(float64(i+1), s)
		total += probs[i]
	}
	for i := range probs {
		probs[i] /= total
	}
	return probs
}

// TestZipfRankFrequencies draws a large sample and checks the empirical
// rank frequencies against the configured Zipf law with a chi-squared
// goodness-of-fit test. With 8 objects (7 degrees of freedom) the 99.9%
// critical value is 24.32; the seeds are fixed, so a pass is
// deterministic — a failure means the popularity sampling drifted.
func TestZipfRankFrequencies(t *testing.T) {
	const (
		objects  = 8
		draws    = 20000
		critical = 24.32 // chi-squared df=7, p=0.001
		zipfSkew = 1.0
	)
	names := ObjectNames("obj", objects)
	index := map[string]int{}
	for i, id := range names {
		index[id] = i
	}
	probs := zipfProbs(objects, zipfSkew)
	for _, seed := range []int64{1, 42, 9001} {
		gen, err := New(Config{Seed: seed, Objects: names, ZipfS: zipfSkew, ArrivalsPerSecond: 1})
		if err != nil {
			t.Fatal(err)
		}
		obs := make([]int, objects)
		for i := 0; i < draws; i++ {
			obs[index[gen.Pick()]]++
		}
		if x2 := chiSquared(obs, probs, draws); x2 > critical {
			t.Errorf("seed %d: chi-squared %.2f > %.2f; counts %v", seed, x2, critical, obs)
		}
		// The defining Zipf property, rank order: each rank at least as
		// popular as the next (with a slack well under the rank-1 gap).
		for i := 1; i < objects; i++ {
			if float64(obs[i]) > float64(obs[i-1])*1.15 {
				t.Errorf("seed %d: rank %d (%d draws) out-drew rank %d (%d)", seed, i, obs[i], i-1, obs[i-1])
			}
		}
	}
}

// TestUniformChiSquared: ZipfS = 0 must degenerate to uniform, to
// chi-squared precision (the basic test elsewhere only bounds per-object
// deviation).
func TestUniformChiSquared(t *testing.T) {
	const (
		objects  = 10
		draws    = 20000
		critical = 27.88 // chi-squared df=9, p=0.001
	)
	names := ObjectNames("obj", objects)
	index := map[string]int{}
	for i, id := range names {
		index[id] = i
	}
	probs := zipfProbs(objects, 0)
	gen, err := New(Config{Seed: 7, Objects: names, ZipfS: 0, ArrivalsPerSecond: 1})
	if err != nil {
		t.Fatal(err)
	}
	obs := make([]int, objects)
	for i := 0; i < draws; i++ {
		obs[index[gen.Pick()]]++
	}
	if x2 := chiSquared(obs, probs, draws); x2 > critical {
		t.Errorf("chi-squared %.2f > %.2f; counts %v", x2, critical, obs)
	}
}

// TestPoissonInterArrivals checks the arrival process: exponential
// inter-arrival gaps with the configured rate. The sample mean and
// standard deviation must both approximate 1/rate (the exponential's
// defining property), and a four-bucket quartile chi-squared test
// checks the shape, all across three seeds.
func TestPoissonInterArrivals(t *testing.T) {
	const (
		rate     = 4.0 // arrivals per second
		draws    = 20000
		critical = 16.27 // chi-squared df=3, p=0.001
	)
	mean := 1 / rate
	// Exponential quartile boundaries: -ln(1-q)/rate.
	bounds := []float64{
		-math.Log(0.75) * mean,
		-math.Log(0.50) * mean,
		-math.Log(0.25) * mean,
	}
	for _, seed := range []int64{1, 42, 9001} {
		gen, err := New(Config{Seed: seed, Objects: []string{"o"}, ArrivalsPerSecond: rate})
		if err != nil {
			t.Fatal(err)
		}
		var last time.Duration
		obs := make([]int, 4)
		sum, sumSq := 0.0, 0.0
		for i := 0; i < draws; i++ {
			req := gen.Next()
			gap := (req.At - last).Seconds()
			last = req.At
			sum += gap
			sumSq += gap * gap
			bucket := 0
			for bucket < 3 && gap > bounds[bucket] {
				bucket++
			}
			obs[bucket]++
		}
		gotMean := sum / draws
		if math.Abs(gotMean-mean)/mean > 0.05 {
			t.Errorf("seed %d: mean gap %.4fs, want %.4fs ±5%%", seed, gotMean, mean)
		}
		gotSD := math.Sqrt(sumSq/draws - gotMean*gotMean)
		if math.Abs(gotSD-mean)/mean > 0.10 {
			t.Errorf("seed %d: stddev %.4fs, want %.4fs ±10%% (exponential: sd = mean)", seed, gotSD, mean)
		}
		probs := []float64{0.25, 0.25, 0.25, 0.25}
		if x2 := chiSquared(obs, probs, draws); x2 > critical {
			t.Errorf("seed %d: quartile chi-squared %.2f > %.2f; counts %v", seed, x2, critical, obs)
		}
	}
}
