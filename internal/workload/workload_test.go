package workload

import (
	"bytes"
	"math"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{
		Seed:              1,
		Objects:           ObjectNames("movie", 20),
		ZipfS:             1.0,
		ArrivalsPerSecond: 2.0,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(testConfig()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := testConfig()
	bad.Objects = nil
	if _, err := New(bad); err == nil {
		t.Error("no objects accepted")
	}
	bad = testConfig()
	bad.ZipfS = -1
	if _, err := New(bad); err == nil {
		t.Error("negative skew accepted")
	}
	bad = testConfig()
	bad.ArrivalsPerSecond = 0
	if _, err := New(bad); err == nil {
		t.Error("zero arrival rate accepted")
	}
}

func TestDeterminism(t *testing.T) {
	g1, _ := New(testConfig())
	g2, _ := New(testConfig())
	r1 := g1.Generate(100)
	r2 := g2.Generate(100)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("request %d differs: %v vs %v", i, r1[i], r2[i])
		}
	}
	g3cfg := testConfig()
	g3cfg.Seed = 2
	g3, _ := New(g3cfg)
	r3 := g3.Generate(100)
	same := 0
	for i := range r1 {
		if r1[i].ObjectID == r3[i].ObjectID {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical picks")
	}
}

func TestArrivalsAreOrderedAndPoissonish(t *testing.T) {
	g, _ := New(testConfig())
	reqs := g.Generate(5000)
	var prev time.Duration
	var sum time.Duration
	for _, r := range reqs {
		if r.At < prev {
			t.Fatal("arrivals not monotone")
		}
		sum += r.At - prev
		prev = r.At
	}
	mean := sum.Seconds() / float64(len(reqs))
	// Rate 2/s => mean gap 0.5 s; allow 10%.
	if math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("mean inter-arrival = %.3f s, want ~0.5", mean)
	}
}

func TestZipfSkew(t *testing.T) {
	g, _ := New(testConfig())
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		counts[g.Pick()]++
	}
	// With s=1 over 20 objects, object 0 should get ~1/H(20) = 27.8% and
	// object 19 ~1.4%; check the ratio is clearly skewed.
	first, last := counts["movie0"], counts["movie19"]
	if first < 8*last {
		t.Fatalf("popularity not skewed: first=%d last=%d", first, last)
	}
	// Every object is reachable.
	if len(counts) != 20 {
		t.Fatalf("picked %d distinct objects, want 20", len(counts))
	}
}

func TestUniformWhenSkewZero(t *testing.T) {
	cfg := testConfig()
	cfg.ZipfS = 0
	g, _ := New(cfg)
	counts := map[string]int{}
	n := 40000
	for i := 0; i < n; i++ {
		counts[g.Pick()]++
	}
	want := n / len(cfg.Objects)
	for id, c := range counts {
		if math.Abs(float64(c-want)) > 0.2*float64(want) {
			t.Fatalf("object %s count %d deviates from uniform %d", id, c, want)
		}
	}
}

func TestObjectNames(t *testing.T) {
	names := ObjectNames("m", 3)
	if len(names) != 3 || names[0] != "m0" || names[2] != "m2" {
		t.Fatalf("ObjectNames = %v", names)
	}
	if len(ObjectNames("m", 0)) != 0 {
		t.Error("zero names")
	}
}

func TestSyntheticContent(t *testing.T) {
	a1 := SyntheticContent("a", 1000)
	a2 := SyntheticContent("a", 1000)
	b := SyntheticContent("b", 1000)
	if !bytes.Equal(a1, a2) {
		t.Fatal("not deterministic")
	}
	if bytes.Equal(a1, b) {
		t.Fatal("different IDs produced identical content")
	}
	if len(SyntheticContent("a", 0)) != 0 {
		t.Fatal("zero-size content")
	}
	// Prefix property: longer content starts with shorter content.
	long := SyntheticContent("a", 2000)
	if !bytes.Equal(long[:1000], a1) {
		t.Fatal("content is not prefix-stable")
	}
	// Not all zeros / trivially constant.
	same := true
	for _, v := range a1[1:] {
		if v != a1[0] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("content is constant")
	}
}
