package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestByteSizeConversions(t *testing.T) {
	cases := []struct {
		size ByteSize
		mb   float64
		kb   float64
	}{
		{50 * KB, 0.05, 50},
		{MB, 1, 1000},
		{GB, 1000, 1e6},
		{0, 0, 0},
		{100 * KB, 0.1, 100},
	}
	for _, c := range cases {
		if got := c.size.Megabytes(); !almostEqual(got, c.mb, 1e-12) {
			t.Errorf("%v.Megabytes() = %v, want %v", c.size, got, c.mb)
		}
		if got := c.size.Kilobytes(); !almostEqual(got, c.kb, 1e-12) {
			t.Errorf("%v.Kilobytes() = %v, want %v", c.size, got, c.kb)
		}
	}
}

func TestFromMegabytesRoundTrip(t *testing.T) {
	f := func(mb uint16) bool {
		s := FromMegabytes(float64(mb))
		return almostEqual(s.Megabytes(), float64(mb), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByteSizeString(t *testing.T) {
	cases := []struct {
		size ByteSize
		want string
	}{
		{50 * KB, "50 KB"},
		{1500 * KB, "1.50 MB"},
		{GB, "1 GB"},
		{2 * TB, "2 TB"},
		{999, "999 B"},
		{-50 * KB, "-50 KB"},
	}
	for _, c := range cases {
		if got := c.size.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.size), got, c.want)
		}
	}
}

// The critical factor-of-8: the paper's b0 = 1.5 Mb/s must become
// 0.1875 MB/s inside the equations.
func TestMegabitConversion(t *testing.T) {
	r := FromMegabitsPerSecond(1.5)
	if got := r.MegabytesPerSecond(); !almostEqual(got, 0.1875, 1e-12) {
		t.Fatalf("1.5 Mb/s = %v MB/s, want 0.1875", got)
	}
	if got := r.MegabitsPerSecond(); !almostEqual(got, 1.5, 1e-12) {
		t.Fatalf("round trip = %v Mb/s, want 1.5", got)
	}
}

func TestStandardBandwidths(t *testing.T) {
	if got := MPEG1.MegabytesPerSecond(); !almostEqual(got, 0.1875, 1e-12) {
		t.Errorf("MPEG1 = %v MB/s, want 0.1875", got)
	}
	if got := MPEG2.MegabytesPerSecond(); !almostEqual(got, 0.5625, 1e-12) {
		t.Errorf("MPEG2 = %v MB/s, want 0.5625", got)
	}
}

func TestRateTimeFor(t *testing.T) {
	r := FromMegabytesPerSecond(4) // the paper's 4 MB/s disk
	// One 50 KB track takes 12.5 ms of pure transfer at 4 MB/s.
	if got := r.TimeFor(50 * KB); got != 12500*time.Microsecond {
		t.Errorf("TimeFor(50KB @ 4MB/s) = %v, want 12.5ms", got)
	}
	if got := Rate(0).TimeFor(MB); got != 0 {
		t.Errorf("TimeFor at zero rate = %v, want 0", got)
	}
}

func TestRateTimeForProperty(t *testing.T) {
	// Transferring twice the data takes twice as long (within ns rounding).
	f := func(kb uint16) bool {
		if kb == 0 {
			return true
		}
		r := FromMegabitsPerSecond(1.5)
		one := r.TimeFor(ByteSize(kb) * KB)
		two := r.TimeFor(2 * ByteSize(kb) * KB)
		diff := two - 2*one
		return diff >= -time.Microsecond && diff <= time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestYears(t *testing.T) {
	// 2.25e8 hours is the paper's Table 2 MTTF for C=5: 25684.9 years.
	y := YearsFromHours(2.25e8)
	if !almostEqual(float64(y), 25684.93, 0.01) {
		t.Fatalf("2.25e8 h = %v years, want 25684.93", float64(y))
	}
	if got := y.String(); got != "25684.9" {
		t.Fatalf("String = %q, want 25684.9", got)
	}
	if got := y.Hours(); !almostEqual(got, 2.25e8, 1) {
		t.Fatalf("round trip hours = %v", got)
	}
}

func TestDollarsAndPerMB(t *testing.T) {
	p := PerMB(100) // $100/MB memory
	if got := p.Times(50 * KB); !almostEqual(float64(got), 5, 1e-9) {
		t.Errorf("100$/MB * 50KB = %v, want $5", got)
	}
	if got := Dollars(173400).String(); got != "$173400" {
		t.Errorf("Dollars.String = %q", got)
	}
}

func TestRateString(t *testing.T) {
	if got := MPEG1.String(); got != "1.5 Mb/s" {
		t.Errorf("MPEG1.String() = %q", got)
	}
}
