// Package units defines the measurement types used throughout the library:
// data sizes, data rates, and long-horizon times, plus the conversions the
// paper uses implicitly.
//
// The paper ("Fault Tolerant Design of Multimedia Servers", SIGMOD 1995)
// quotes object bandwidths in megabits per second (e.g. 1.5 Mb/s MPEG-1,
// 4.5 Mb/s MPEG-2) but all of its equations take b0 in megabytes per
// second, and track sizes in megabytes. Mixing those up changes every
// result by a factor of eight, so the conversion lives here, once, in one
// direction: construct rates with FromMegabitsPerSecond or
// FromMegabytesPerSecond and read them back explicitly.
//
// Decimal prefixes are used (1 MB = 1e6 bytes, 1 KB = 1e3 bytes), matching
// the disk-industry convention the paper follows (a "1 gigabyte" disk,
// 50 KB tracks, 4 MB/s disks).
package units

import (
	"fmt"
	"time"
)

// ByteSize is a data size in bytes.
type ByteSize int64

// Common decimal size units.
const (
	Byte ByteSize = 1
	KB            = 1000 * Byte
	MB            = 1000 * KB
	GB            = 1000 * MB
	TB            = 1000 * GB
)

// Bytes returns the size as an integer byte count.
func (s ByteSize) Bytes() int64 { return int64(s) }

// Megabytes returns the size in (decimal) megabytes.
func (s ByteSize) Megabytes() float64 { return float64(s) / float64(MB) }

// Kilobytes returns the size in (decimal) kilobytes.
func (s ByteSize) Kilobytes() float64 { return float64(s) / float64(KB) }

// FromMegabytes builds a ByteSize from a (possibly fractional) MB count.
func FromMegabytes(mb float64) ByteSize { return ByteSize(mb * float64(MB)) }

// String formats the size with a suitable unit, e.g. "50 KB", "1.2 GB".
func (s ByteSize) String() string {
	switch {
	case s < 0:
		return "-" + (-s).String()
	case s >= TB:
		return trimUnit(float64(s)/float64(TB), "TB")
	case s >= GB:
		return trimUnit(float64(s)/float64(GB), "GB")
	case s >= MB:
		return trimUnit(float64(s)/float64(MB), "MB")
	case s >= KB:
		return trimUnit(float64(s)/float64(KB), "KB")
	default:
		return fmt.Sprintf("%d B", int64(s))
	}
}

func trimUnit(v float64, unit string) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d %s", int64(v), unit)
	}
	return fmt.Sprintf("%.2f %s", v, unit)
}

// Rate is a data rate in bytes per second.
type Rate float64

// FromMegabitsPerSecond converts a rate quoted in Mb/s (as the paper quotes
// object bandwidths) into a Rate.
func FromMegabitsPerSecond(mbps float64) Rate { return Rate(mbps * 1e6 / 8) }

// FromMegabytesPerSecond converts a rate quoted in MB/s (as the paper's
// equations use) into a Rate.
func FromMegabytesPerSecond(mBps float64) Rate { return Rate(mBps * 1e6) }

// MegabitsPerSecond reports the rate in Mb/s.
func (r Rate) MegabitsPerSecond() float64 { return float64(r) * 8 / 1e6 }

// MegabytesPerSecond reports the rate in MB/s, the unit the paper's
// equations expect for b0.
func (r Rate) MegabytesPerSecond() float64 { return float64(r) / 1e6 }

// BytesPerSecond reports the raw rate.
func (r Rate) BytesPerSecond() float64 { return float64(r) }

// String formats the rate in Mb/s, the unit the paper quotes.
func (r Rate) String() string { return fmt.Sprintf("%.3g Mb/s", r.MegabitsPerSecond()) }

// TimeFor returns how long transferring size at this rate takes.
func (r Rate) TimeFor(size ByteSize) time.Duration {
	if r <= 0 {
		return 0
	}
	return time.Duration(float64(size) / float64(r) * float64(time.Second))
}

// Standard object bandwidths from the paper's introduction.
var (
	// MPEG1 is "about 1.5 mbps, i.e., low TV quality".
	MPEG1 = FromMegabitsPerSecond(1.5)
	// MPEG2 is "about 4.5 megabits per second, i.e., good TV quality".
	MPEG2 = FromMegabitsPerSecond(4.5)
)

// HoursPerYear converts the paper's MTTF hours into years; the paper's
// "25684.9 years" style figures use the 8760 h civil year.
const HoursPerYear = 8760.0

// Years is a long-horizon duration expressed in years, used for MTTF and
// MTTDS figures. time.Duration overflows at ~292 years, far below the
// paper's 3-million-year MTTDS values, hence a float type.
type Years float64

// YearsFromHours converts an hour count (the unit of the MTTF algebra)
// into Years.
func YearsFromHours(h float64) Years { return Years(h / HoursPerYear) }

// Hours converts back into hours.
func (y Years) Hours() float64 { return float64(y) * HoursPerYear }

// String formats like the paper's tables, e.g. "25684.9".
func (y Years) String() string { return fmt.Sprintf("%.1f", float64(y)) }

// Dollars is a cost in US dollars (the paper's cost model unit).
type Dollars float64

// String formats with a thousands-friendly precision, e.g. "$173400".
func (d Dollars) String() string { return fmt.Sprintf("$%.0f", float64(d)) }

// PerMB is a unit price in dollars per megabyte, used for the memory cost
// c_b and the disk cost c_d in the paper's equations (16)-(19).
type PerMB float64

// Times returns the price of size at this unit cost.
func (p PerMB) Times(size ByteSize) Dollars { return Dollars(float64(p) * size.Megabytes()) }
