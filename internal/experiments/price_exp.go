package experiments

import (
	"fmt"

	"ftmm/internal/analytic"
	"ftmm/internal/cost"
	"ftmm/internal/report"
	"ftmm/internal/units"
)

// PriceResult sweeps the memory/disk price ratio the paper never states,
// showing which conclusions of §5 are price-robust.
type PriceResult struct {
	// Ratios are the c_b/c_d values swept (disk fixed at $1/MB).
	Ratios []float64
	// WinnerAt1200[ratio] is the cheapest scheme for the worked example.
	WinnerAt1200 map[float64]analytic.Scheme
	// SRBestC[ratio] is Streaming RAID's optimal cluster size.
	SRBestC map[float64]int
	// IBCrossover[ratio] is the lowest required stream count (searched in
	// steps of 100) at which Improved-bandwidth becomes the winner.
	IBCrossover map[float64]int
	Text        string
}

// PriceSensitivity re-runs the §5 sizing for memory prices from 25 to
// 400 $/MB. The paper's qualitative conclusions should hold across the
// historically plausible range; the crossover point (its "1500 streams")
// is the one quantity that moves.
func PriceSensitivity() (*PriceResult, error) {
	res := &PriceResult{
		Ratios:       []float64{25, 50, 100, 200, 400},
		WinnerAt1200: map[float64]analytic.Scheme{},
		SRBestC:      map[float64]int{},
		IBCrossover:  map[float64]int{},
	}
	tbl := report.NewTable(
		"Price sensitivity of the §5 sizing (W=100000MB, K=5, c_d=$1/MB)",
		"c_b ($/MB)", "Winner @1200", "SR best C", "IB crossover (streams)")
	for _, cb := range res.Ratios {
		s := cost.Figure9()
		s.Prices = cost.Prices{MemoryPerMB: units.PerMB(cb), DiskPerMB: 1}

		designs, err := s.CompareAll(1200, 2, 10)
		if err != nil {
			return nil, err
		}
		winner, err := cost.Cheapest(designs)
		if err != nil {
			return nil, err
		}
		res.WinnerAt1200[cb] = winner.Scheme
		for _, d := range designs {
			if d.Scheme == analytic.StreamingRAID {
				res.SRBestC[cb] = d.C
			}
		}

		crossover := 0
		for need := 1200; need <= 4000; need += 100 {
			ds, err := s.CompareAll(float64(need), 2, 10)
			if err != nil {
				return nil, err
			}
			w, err := cost.Cheapest(ds)
			if err != nil {
				return nil, err
			}
			if w.Scheme == analytic.ImprovedBandwidth {
				crossover = need
				break
			}
		}
		res.IBCrossover[cb] = crossover
		cx := "none <= 4000"
		if crossover > 0 {
			cx = fmt.Sprintf("%d", crossover)
		}
		tbl.AddRow(report.Float(cb, 0), res.WinnerAt1200[cb].Abbrev(),
			report.Int(res.SRBestC[cb]), cx)
	}
	res.Text = tbl.String()
	return res, nil
}

// Render returns the rendered sweep.
func (r *PriceResult) Render() string { return r.Text }
