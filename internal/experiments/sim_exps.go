package experiments

import (
	"fmt"

	"ftmm/internal/disk"
	"ftmm/internal/diskmodel"
	"ftmm/internal/failure"
	"ftmm/internal/layout"
	"ftmm/internal/report"
	"ftmm/internal/schemes"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// simRig builds a farm with placed, materialized objects for the
// operational experiments.
type simRig struct {
	farm *disk.Farm
	lay  *layout.Layout
	objs []*layout.Object
}

// newSimRig places nObjects objects of groupsEach parity groups. When
// sameStart is true all objects start on cluster 0 (the Figures 5-7
// stagger); otherwise starts rotate.
func newSimRig(d, c, nObjects, groupsEach int, placement layout.Placement, sameStart bool) (*simRig, error) {
	p := diskmodel.Table1()
	tracksNeeded := (nObjects*groupsEach*c)/d + groupsEach*c + 10
	p.Capacity = units.ByteSize(tracksNeeded) * p.TrackSize
	farm, err := disk.NewFarm(d, c, p)
	if err != nil {
		return nil, err
	}
	lay, err := layout.ForFarm(farm, placement)
	if err != nil {
		return nil, err
	}
	r := &simRig{farm: farm, lay: lay}
	trackSize := int(p.TrackSize)
	for i := 0; i < nObjects; i++ {
		id := fmt.Sprintf("obj%d", i)
		tracks := groupsEach * (c - 1)
		start := 0
		if !sameStart {
			start = i % lay.Clusters()
		}
		obj, err := lay.AddObject(id, tracks, start, units.MPEG1)
		if err != nil {
			return nil, err
		}
		if err := layout.WriteObject(farm, obj, workload.SyntheticContent(id, tracks*trackSize)); err != nil {
			return nil, err
		}
		r.objs = append(r.objs, obj)
	}
	return r, nil
}

func (r *simRig) config() schemes.Config {
	return schemes.Config{Farm: r.farm, Layout: r.lay, Rate: units.MPEG1}
}

// Fig4Result is the staggered-group memory experiment: per-cycle buffer
// occupancy for SG vs SR with the same four streams.
type Fig4Result struct {
	// Occupancy per cycle (tracks), end of cycle, per scheme — the
	// figure's panel (a): staggered streams interleave into a flat
	// aggregate.
	SG, SR []int
	// SGOne is a single stream's occupancy — panel (b)'s sawtooth.
	SGOne []int
	// Peaks are the within-cycle maxima.
	SGPeak, SRPeak int
	Text           string
}

// Fig4 reproduces Figure 4's claim: C-1 staggered streams under the
// Staggered-group scheme peak at C(C+1)/2 buffers while Streaming RAID
// needs 2C per stream — the "approximately 1/2 the memory" saving.
func Fig4() (*Fig4Result, error) {
	const cycles = 40
	res := &Fig4Result{}

	rigSG, err := newSimRig(10, 5, 4, 12, layout.DedicatedParity, false)
	if err != nil {
		return nil, err
	}
	sg, err := schemes.NewStaggeredGroup(rigSG.config())
	if err != nil {
		return nil, err
	}
	for i, obj := range rigSG.objs {
		if _, err := sg.AddStream(obj); err != nil {
			return nil, fmt.Errorf("SG stream %d: %w", i, err)
		}
		if _, err := sg.Step(); err != nil { // stagger phases
			return nil, err
		}
	}
	for sg.Cycle() < cycles && sg.Active() > 0 {
		rep, err := sg.Step()
		if err != nil {
			return nil, err
		}
		res.SG = append(res.SG, rep.BufferInUse)
	}
	res.SGPeak = sg.BufferPeak()

	rigSR, err := newSimRig(10, 5, 4, 12, layout.DedicatedParity, false)
	if err != nil {
		return nil, err
	}
	sr, err := schemes.NewStreamingRAID(rigSR.config())
	if err != nil {
		return nil, err
	}
	for i, obj := range rigSR.objs {
		if _, err := sr.AddStream(obj); err != nil {
			return nil, fmt.Errorf("SR stream %d: %w", i, err)
		}
	}
	for sr.Cycle() < cycles && sr.Active() > 0 {
		rep, err := sr.Step()
		if err != nil {
			return nil, err
		}
		res.SR = append(res.SR, rep.BufferInUse)
	}
	res.SRPeak = sr.BufferPeak()

	// Panel (b): one lone SG stream's occupancy sawtooth.
	rigOne, err := newSimRig(10, 5, 1, 12, layout.DedicatedParity, false)
	if err != nil {
		return nil, err
	}
	one, err := schemes.NewStaggeredGroup(rigOne.config())
	if err != nil {
		return nil, err
	}
	if _, err := one.AddStream(rigOne.objs[0]); err != nil {
		return nil, err
	}
	for one.Cycle() < cycles && one.Active() > 0 {
		rep, err := one.Step()
		if err != nil {
			return nil, err
		}
		res.SGOne = append(res.SGOne, rep.BufferInUse)
	}

	n := len(res.SG)
	if len(res.SR) < n {
		n = len(res.SR)
	}
	if len(res.SGOne) < n {
		n = len(res.SGOne)
	}
	xs := make([]float64, n)
	sgY := make([]float64, n)
	srY := make([]float64, n)
	oneY := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = float64(i)
		sgY[i] = float64(res.SG[i])
		srY[i] = float64(res.SR[i])
		oneY[i] = float64(res.SGOne[i])
	}
	res.Text = report.RenderSeries(
		fmt.Sprintf("Figure 4: buffer occupancy (tracks, end of cycle), C=5 — peaks: SG=%d (=C(C+1)/2), SR=%d (=2C x 4 streams)", res.SGPeak, res.SRPeak),
		"cycle", xs, []report.Series{
			{Name: "SG 4 streams (panel a)", Y: sgY},
			{Name: "SG 1 stream (panel b)", Y: oneY},
			{Name: "SR 4 streams", Y: srY},
		}, 0)
	return res, nil
}

// NCFailureResult records the Figures 5-7 experiment: tracks lost in the
// degraded-mode transition, per policy and failed-disk position.
type NCFailureResult struct {
	// Lost[policy][failedDisk] is the total tracks lost.
	Lost map[schemes.TransitionPolicy]map[int]int
	Text string
}

// NCFailure reproduces the Figures 6-7 scenario for every failed-disk
// position: four streams staggered at offsets 3,2,1,0 on cluster 0,
// failure just before the offset-0 stream's first read.
func NCFailure() (*NCFailureResult, error) {
	res := &NCFailureResult{Lost: map[schemes.TransitionPolicy]map[int]int{}}
	tbl := report.NewTable(
		"Non-clustered transition losses (C=5, 4 staggered streams, slot budget 1)",
		"Failed disk", "Simple switchover", "Alternate switchover")
	for failed := 0; failed < 4; failed++ {
		row := []string{report.Int(failed)}
		for _, policy := range []schemes.TransitionPolicy{schemes.SimpleSwitchover, schemes.AlternateSwitchover} {
			lost, err := runNCFailure(policy, failed)
			if err != nil {
				return nil, err
			}
			if res.Lost[policy] == nil {
				res.Lost[policy] = map[int]int{}
			}
			res.Lost[policy][failed] = lost
			row = append(row, report.Int(lost))
		}
		tbl.AddRow(row...)
	}
	res.Text = tbl.String()
	return res, nil
}

func runNCFailure(policy schemes.TransitionPolicy, failedDisk int) (int, error) {
	rig, err := newSimRig(10, 5, 4, 6, layout.DedicatedParity, true)
	if err != nil {
		return 0, err
	}
	cfg := rig.config()
	cfg.SlotsPerDisk = 1
	e, err := schemes.NewNonClustered(cfg, policy, 2)
	if err != nil {
		return 0, err
	}
	for i, obj := range rig.objs {
		if _, err := e.AddStream(obj); err != nil {
			return 0, err
		}
		if i < len(rig.objs)-1 {
			if _, err := e.Step(); err != nil {
				return 0, err
			}
		}
	}
	if err := e.FailDisk(failedDisk); err != nil {
		return 0, err
	}
	lost := 0
	for e.Active() > 0 {
		rep, err := e.Step()
		if err != nil {
			return 0, err
		}
		lost += len(rep.Hiccups)
		if e.Cycle() > 500 {
			return 0, fmt.Errorf("experiments: NC failure run did not converge")
		}
	}
	return lost, nil
}

// IBShiftResult records the Figure 8 experiment.
type IBShiftResult struct {
	// MaskedHiccups/MaskedTerminations: boundary failure with reserve.
	MaskedHiccups, MaskedTerminations int
	// SaturatedTerminations: boundary failure with zero reserve on a
	// saturated farm.
	SaturatedTerminations int
	// MidCycleHiccups: hiccups from a mid-cycle failure with reserve.
	MidCycleHiccups int
	Text            string
}

// IBShift demonstrates §4's behaviours: with reserved capacity a boundary
// failure is fully masked by the rightward shift; with no reserve on a
// saturated farm the shift wraps and streams are terminated (degradation
// of service); a mid-cycle failure costs exactly the in-flight tracks as
// one-time hiccups.
func IBShift() (*IBShiftResult, error) {
	res := &IBShiftResult{}

	// Masked case: 3 clusters, reserve 1 slot/drive.
	{
		hiccups, term, err := runIBShift(2, 1, false)
		if err != nil {
			return nil, err
		}
		res.MaskedHiccups, res.MaskedTerminations = hiccups, term
	}
	// Saturated case: 1 slot/drive, no reserve.
	{
		_, term, err := runIBShift(1, 0, false)
		if err != nil {
			return nil, err
		}
		res.SaturatedTerminations = term
	}
	// Mid-cycle case.
	{
		hiccups, _, err := runIBShift(2, 1, true)
		if err != nil {
			return nil, err
		}
		res.MidCycleHiccups = hiccups
	}
	tbl := report.NewTable("Improved-bandwidth failure response (C=5)",
		"Scenario", "Hiccups", "Terminations")
	tbl.AddRow("boundary failure, 1 slot/drive reserved", report.Int(res.MaskedHiccups), report.Int(res.MaskedTerminations))
	tbl.AddRow("boundary failure, saturated (no reserve)", "-", report.Int(res.SaturatedTerminations))
	tbl.AddRow("mid-cycle failure, reserved", report.Int(res.MidCycleHiccups), "0")
	res.Text = tbl.String()
	return res, nil
}

func runIBShift(slots, reserve int, midCycle bool) (hiccups, terminations int, err error) {
	rig, err := newSimRig(10, 5, 3, 8, layout.IntermixedParity, true)
	if err != nil {
		return 0, 0, err
	}
	cfg := rig.config()
	cfg.SlotsPerDisk = slots
	e, err := schemes.NewImprovedBandwidth(cfg, reserve)
	if err != nil {
		return 0, 0, err
	}
	// Two streams admitted a cycle apart so their cluster rotations are
	// out of phase.
	if _, err := e.AddStream(rig.objs[0]); err != nil {
		return 0, 0, err
	}
	if _, err := e.Step(); err != nil {
		return 0, 0, err
	}
	if _, err := e.AddStream(rig.objs[1]); err != nil {
		return 0, 0, err
	}
	if midCycle {
		err = e.FailDiskMidCycle(1)
	} else {
		err = e.FailDisk(1)
	}
	if err != nil {
		return 0, 0, err
	}
	for e.Active() > 0 {
		rep, err := e.Step()
		if err != nil {
			return 0, 0, err
		}
		hiccups += len(rep.Hiccups)
		if e.Cycle() > 500 {
			return 0, 0, fmt.Errorf("experiments: IB run did not converge")
		}
	}
	return hiccups, e.Terminations(), nil
}

// MonteCarloResult compares simulated reliability with the closed forms.
type MonteCarloResult struct {
	Rows []MonteCarloRow
	Text string
}

// MonteCarloRow is one validation row.
type MonteCarloRow struct {
	Name           string
	SimulatedHours float64
	StdErrHours    float64
	AnalyticHours  float64
}

// MonteCarlo validates equations (4)-(6) with event-driven simulation at
// a scaled-down MTTF (500 h instead of 300,000 h) so rare events occur in
// reasonable time; the algebraic structure is unchanged.
func MonteCarlo(trials int) (*MonteCarloResult, error) {
	if trials <= 0 {
		trials = 1000
	}
	res := &MonteCarloResult{}
	ded := failure.Model{D: 40, C: 4, MTTFHours: 500, MTTRHours: 1, Placement: layout.DedicatedParity, K: 2}
	est, err := ded.EstimateMTTF(trials, 11)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, MonteCarloRow{
		Name: "MTTF dedicated parity (eq 4)", SimulatedHours: est.MeanHours,
		StdErrHours: est.StdErrHours, AnalyticHours: ded.AnalyticMTTFHours(),
	})
	ib := ded
	ib.Placement = layout.IntermixedParity
	est, err = ib.EstimateMTTF(trials, 12)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, MonteCarloRow{
		Name: "MTTF intermixed parity (eq 5, corrected 3C-1 exposure)", SimulatedHours: est.MeanHours,
		StdErrHours: est.StdErrHours, AnalyticHours: ib.CorrectedIntermixedMTTFHours(),
	})
	deg := ded
	deg.MTTFHours = 5000
	est, err = deg.EstimateMTTDS(trials, 13)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, MonteCarloRow{
		Name: "MTTDS, K=2 overlapping failures (eq 6)", SimulatedHours: est.MeanHours,
		StdErrHours: est.StdErrHours, AnalyticHours: deg.AnalyticMTTDSHours(),
	})

	tbl := report.NewTable(
		fmt.Sprintf("Monte-Carlo reliability validation (%d trials, scaled MTTF)", trials),
		"Quantity", "Simulated (h)", "StdErr", "Analytic (h)", "Ratio")
	for _, r := range res.Rows {
		tbl.AddRow(r.Name,
			report.Float(r.SimulatedHours, 1),
			report.Float(r.StdErrHours, 1),
			report.Float(r.AnalyticHours, 1),
			report.Float(r.SimulatedHours/r.AnalyticHours, 3))
	}
	res.Text = tbl.String()
	return res, nil
}

// Render returns the rendered occupancy series.
func (r *Fig4Result) Render() string { return r.Text }

// Values exports the buffer peaks.
func (r *Fig4Result) Values() map[string]float64 {
	return map[string]float64{
		"sg_peak_tracks": float64(r.SGPeak),
		"sr_peak_tracks": float64(r.SRPeak),
	}
}

// Render returns the rendered loss table.
func (r *NCFailureResult) Render() string { return r.Text }

// Values exports the per-policy, per-failed-disk track losses.
func (r *NCFailureResult) Values() map[string]float64 {
	v := map[string]float64{}
	for policy, byDisk := range r.Lost {
		for disk, lost := range byDisk {
			v[fmt.Sprintf("lost_%s_disk%d", policy, disk)] = float64(lost)
		}
	}
	return v
}

// Render returns the rendered shift table.
func (r *IBShiftResult) Render() string { return r.Text }

// Values exports the scenario outcomes.
func (r *IBShiftResult) Values() map[string]float64 {
	return map[string]float64{
		"masked_hiccups":         float64(r.MaskedHiccups),
		"masked_terminations":    float64(r.MaskedTerminations),
		"saturated_terminations": float64(r.SaturatedTerminations),
		"midcycle_hiccups":       float64(r.MidCycleHiccups),
	}
}

// Render returns the rendered validation table.
func (r *MonteCarloResult) Render() string { return r.Text }

// Values exports each validation row's simulated/analytic hours.
func (r *MonteCarloResult) Values() map[string]float64 {
	keys := []string{"mttf_dedicated", "mttf_intermixed", "mttds_k2"}
	v := map[string]float64{}
	for i, row := range r.Rows {
		k := fmt.Sprintf("row%d", i)
		if i < len(keys) {
			k = keys[i]
		}
		v[k+"_sim_hours"] = row.SimulatedHours
		v[k+"_stderr_hours"] = row.StdErrHours
		v[k+"_analytic_hours"] = row.AnalyticHours
	}
	return v
}
