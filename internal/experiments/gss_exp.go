package experiments

import (
	"fmt"

	"ftmm/internal/diskgeom"
	"ftmm/internal/gss"
	"ftmm/internal/report"
	"ftmm/internal/units"
)

// GSSResult is the grouped-sweeping tradeoff sweep (the paper's
// reference [3], which §2's buffer-vs-seek discussion builds on).
type GSSResult struct {
	// MaxStreamsAtG[g] is one disk's stream capacity when forced to use
	// exactly g groups (0 = infeasible at that g).
	MaxStreamsAtG map[int]int
	// BufferAtCapacity[g] is the per-disk buffer (tracks) at that load.
	BufferAtCapacity map[int]float64
	Text             string
}

// GSS sweeps the group count for one ST31200N-class disk serving MPEG-1
// streams: g=1 (SCAN) maximizes capacity at ~2 buffers per stream; large
// g approaches 1 buffer per stream but pays a positioning seek per
// subcycle and loses capacity — the §2 tradeoff in one table.
func GSS() (*GSSResult, error) {
	res := &GSSResult{MaxStreamsAtG: map[int]int{}, BufferAtCapacity: map[int]float64{}}
	tbl := report.NewTable(
		"Grouped sweeping (GSS, ref [3]) on one disk: capacity vs buffers",
		"Groups g", "Max streams", "Buffers (tracks)", "Buffers/stream")
	base := gss.Params{
		Geometry:  diskgeom.Default(),
		TrackSize: 50 * units.KB,
		Rate:      units.MPEG1,
		Streams:   1,
		Groups:    1,
	}
	for _, g := range []int{1, 2, 3, 4, 6, 8} {
		// Largest N feasible with exactly g groups.
		best := 0
		for n := g; n <= 60; n++ {
			p := base
			p.Streams, p.Groups = n, g
			if p.Feasible() {
				best = n
			}
		}
		res.MaxStreamsAtG[g] = best
		if best == 0 {
			tbl.AddRow(report.Int(g), "0 (infeasible)", "-", "-")
			continue
		}
		p := base
		p.Streams, p.Groups = best, g
		buf := p.BufferTracks()
		res.BufferAtCapacity[g] = buf
		tbl.AddRow(report.Int(g), report.Int(best),
			report.Float(buf, 1),
			fmt.Sprintf("%.2f", buf/float64(best)))
	}
	res.Text = tbl.String()
	return res, nil
}

// Render returns the rendered table.
func (r *GSSResult) Render() string { return r.Text }
