// Package experiments regenerates every table and figure of the paper's
// evaluation, plus this reproduction's own validation experiments. Each
// experiment returns structured results and renders the same rows the
// paper reports; cmd/ftmmbench prints them and the root-level benchmarks
// time them.
//
// Index (see DESIGN.md for the full mapping):
//
//	EXP-T2   Table2()       — Table 2, C = 5
//	EXP-T3   Table3()       — Table 3, C = 7
//	EXP-F9A  Fig9a()        — Figure 9(a), total cost vs parity group size
//	EXP-F9B  Fig9b()        — Figure 9(b), streams vs parity group size
//	EXP-K    KSweep()       — §2 inline N/D' sweep over k
//	EXP-MTTF MTTFExamples() — §2-§4 inline MTTF figures
//	EXP-F4   Fig4()         — Figure 4, staggered-group buffer sawtooth
//	EXP-F5-7 NCFailure()    — Figures 5-7, non-clustered failure losses
//	EXP-F8   IBShift()      — Figure 8, improved-bandwidth shift
//	EXP-MC   MonteCarlo()   — Monte-Carlo vs equations (4)-(6)
//	EXP-COST Sizing()       — §5 worked sizing example
package experiments

import (
	"fmt"

	"ftmm/internal/analytic"
	"ftmm/internal/report"
)

// TableResult is a reproduced metrics table (Tables 2 and 3).
type TableResult struct {
	C       int
	K       int
	Metrics []analytic.Metrics
	Text    string
}

// reproduceTable evaluates all four schemes at one design point.
func reproduceTable(c, k int) (*TableResult, error) {
	cfg := analytic.Table1Config(c, k)
	ms, err := cfg.AllMetrics()
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable(
		fmt.Sprintf("Results with C = %d (Table 1 parameters, K = %d)", c, k),
		"Metrics", "RAID", "Staggered", "Non-clustered", "Improved BW")
	row := func(name string, f func(analytic.Metrics) string) {
		cells := []string{name}
		for _, m := range ms {
			cells = append(cells, f(m))
		}
		tbl.AddRow(cells...)
	}
	row("Disk storage overhead", func(m analytic.Metrics) string { return report.Pct(m.StorageOverheadFrac) })
	row("Disk bandwidth overhead", func(m analytic.Metrics) string { return report.Pct(m.BandwidthOverheadFrac) })
	row("MTTF (in years)", func(m analytic.Metrics) string { return report.Years(float64(m.MTTF)) })
	row("MTTDS (in years)", func(m analytic.Metrics) string { return report.Years(float64(m.MTTDS)) })
	row("Streams", func(m analytic.Metrics) string { return report.Int(m.Streams) })
	row("Buffers (in tracks)", func(m analytic.Metrics) string { return report.Int(m.BufferTracks) })
	return &TableResult{C: c, K: k, Metrics: ms, Text: tbl.String()}, nil
}

// Table2 reproduces the paper's Table 2 (C = 5, K = 3).
func Table2() (*TableResult, error) { return reproduceTable(5, 3) }

// Table3 reproduces the paper's Table 3 (C = 7, K = 3).
func Table3() (*TableResult, error) { return reproduceTable(7, 3) }

// Render returns the table text.
func (r *TableResult) Render() string { return r.Text }
