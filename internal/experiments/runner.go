package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Result is one completed experiment run.
type Result struct {
	Name        string
	Description string
	Output      Output
	Err         error
	// Wall is the experiment's wall-clock runtime.
	Wall time.Duration
}

// Run executes one experiment and times it.
func Run(e Named, opts Options) Result {
	start := time.Now()
	out, err := e.Run(opts)
	return Result{
		Name: e.Name, Description: e.Description,
		Output: out, Err: err, Wall: time.Since(start),
	}
}

// RunAll executes every registered experiment across at most workers
// goroutines (0 means GOMAXPROCS, 1 runs serial). Experiments are
// independent — each builds its own farms and rigs — and results return
// in registry order at any worker count.
func RunAll(opts Options, workers int) []Result {
	exps := All()
	results := make([]Result, len(exps))
	run := func(i int) { results[i] = Run(exps[i], opts) }
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	if workers <= 1 {
		for i := range exps {
			run(i)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(exps) {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	return results
}
