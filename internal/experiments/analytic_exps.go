package experiments

import (
	"fmt"

	"ftmm/internal/analytic"
	"ftmm/internal/cost"
	"ftmm/internal/diskmodel"
	"ftmm/internal/report"
	"ftmm/internal/units"
)

// KSweepResult is the §2 inline example: the per-disk stream bound N/D'
// as a function of k (tracks per read cycle, k = k').
type KSweepResult struct {
	Ks []int
	// PerDisk[rate][i] is N/D' at Ks[i]; rates are "MPEG-1" and "MPEG-2".
	PerDisk map[string][]float64
	Text    string
}

// KSweep reproduces the §2 sweep (B = 100 KB, Tseek = 30 ms,
// Ttrk = 10 ms): the bound barely moves for 1.5 Mb/s objects (~5%) but
// varies ~15% for 4.5 Mb/s ones, motivating larger k for fast objects.
func KSweep() (*KSweepResult, error) {
	p := diskmodel.Section2()
	ks := []int{1, 2, 4, 6, 8, 10}
	res := &KSweepResult{Ks: ks, PerDisk: map[string][]float64{}}
	rates := []struct {
		name string
		rate units.Rate
	}{{"MPEG-1 (1.5 Mb/s)", units.MPEG1}, {"MPEG-2 (4.5 Mb/s)", units.MPEG2}}
	xs := make([]float64, len(ks))
	for i, k := range ks {
		xs[i] = float64(k)
	}
	var series []report.Series
	for _, r := range rates {
		ys := make([]float64, len(ks))
		for i, k := range ks {
			v, err := p.StreamsPerDisk(k, k, r.rate)
			if err != nil {
				return nil, err
			}
			ys[i] = v
		}
		res.PerDisk[r.name] = ys
		series = append(series, report.Series{Name: r.name, Y: ys})
	}
	res.Text = report.RenderSeries(
		"Streams per disk (N/D') vs k  —  §2 example: B=100KB Tseek=30ms Ttrk=10ms",
		"k", xs, series, 1)
	return res, nil
}

// MTTFExamplesResult collects the paper's inline reliability figures.
type MTTFExamplesResult struct {
	// SomeDiskHours is "the MTTF of some disk in a 1000 disk system":
	// ~300 hours.
	SomeDiskHours float64
	// StreamingRAIDYears is the C=10 catastrophic MTTF: ~1141.6 years.
	StreamingRAIDYears float64
	// FiveFailureYears is the 5-overlapping-failure MTTDS: >250 million
	// years.
	FiveFailureYears float64
	// ImprovedBWYears is the IB catastrophic MTTF: ~540 years.
	ImprovedBWYears float64
	Text            string
}

// MTTFExamples reproduces the §2-§4 inline reliability numbers for the
// 1000-disk, C = 10 system.
func MTTFExamples() (*MTTFExamplesResult, error) {
	cfg := analytic.Config{Disk: diskmodel.Table1(), ObjectRate: units.MPEG1, D: 1000, C: 10, K: 5}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &MTTFExamplesResult{
		SomeDiskHours:      cfg.ClusterMTTFYears().Hours(),
		StreamingRAIDYears: float64(cfg.MTTFCatastrophic(analytic.StreamingRAID)),
		FiveFailureYears:   float64(cfg.MTTDS(analytic.NonClustered)),
		ImprovedBWYears:    float64(cfg.MTTFCatastrophic(analytic.ImprovedBandwidth)),
	}
	tbl := report.NewTable("Inline reliability examples (D = 1000, C = 10, K = 5)",
		"Quantity", "Computed", "Paper")
	tbl.AddRow("Time to first disk failure", fmt.Sprintf("%.0f hours", res.SomeDiskHours), "~300 hours (~12 days)")
	tbl.AddRow("Catastrophic MTTF, SR/SG/NC", report.Years(res.StreamingRAIDYears)+" years", "~1100 (1141) years")
	tbl.AddRow("MTTDS with 5-deep reserve", fmt.Sprintf("%.3g years", res.FiveFailureYears), ">250 million years")
	tbl.AddRow("Catastrophic MTTF, IB", report.Years(res.ImprovedBWYears)+" years", "~540 years")
	res.Text = tbl.String()
	return res, nil
}

// Fig9Result carries one Figure 9 panel: per-scheme curves over C.
type Fig9Result struct {
	Cs     []int
	Points map[analytic.Scheme][]cost.Point
	Text   string
}

func fig9(panel string) (*Fig9Result, error) {
	s := cost.Figure9()
	res := &Fig9Result{Points: map[analytic.Scheme][]cost.Point{}}
	for c := 2; c <= 10; c++ {
		res.Cs = append(res.Cs, c)
	}
	xs := make([]float64, len(res.Cs))
	for i, c := range res.Cs {
		xs[i] = float64(c)
	}
	var series []report.Series
	for _, scheme := range analytic.Schemes() {
		pts, err := s.Curve(scheme, 2, 10)
		if err != nil {
			return nil, err
		}
		res.Points[scheme] = pts
		ys := make([]float64, len(pts))
		for i, p := range pts {
			if panel == "a" {
				ys[i] = float64(p.Total) / 1000 // $ thousands, like the axis
			} else {
				ys[i] = p.MaxStreams
			}
		}
		series = append(series, report.Series{Name: scheme.Abbrev(), Y: ys})
	}
	title := "Figure 9(a): total storage cost ($ x1000) vs parity group size  —  W=100000MB, K=5, cb=$100/MB, cd=$1/MB"
	if panel == "b" {
		title = "Figure 9(b): max streams vs parity group size at D = D(W,C)"
	}
	res.Text = report.RenderSeries(title, "C", xs, series, 1)
	return res, nil
}

// Fig9a reproduces Figure 9(a): total system cost vs parity group size
// with D at the minimum holding the working set.
func Fig9a() (*Fig9Result, error) { return fig9("a") }

// Fig9b reproduces Figure 9(b): supported streams vs parity group size.
func Fig9b() (*Fig9Result, error) { return fig9("b") }

// SizingResult is the §5 worked example: cheapest design per scheme for a
// required stream count.
type SizingResult struct {
	RequiredStreams float64
	Designs         []cost.Design
	Winner          cost.Design
	Text            string
}

// Sizing reproduces the §5 example: size every scheme for the required
// number of concurrent streams over the Figure 9 working set and pick the
// cheapest (the paper works 1200; bandwidth-scarce cases like 2200 flip
// the winner to Improved-bandwidth).
func Sizing(requiredStreams float64) (*SizingResult, error) {
	s := cost.Figure9()
	designs, err := s.CompareAll(requiredStreams, 2, 10)
	if err != nil {
		return nil, err
	}
	winner, err := cost.Cheapest(designs)
	if err != nil {
		return nil, err
	}
	res := &SizingResult{RequiredStreams: requiredStreams, Designs: designs, Winner: winner}
	tbl := report.NewTable(
		fmt.Sprintf("Sizing for %.0f required streams (W=100000MB, K=5, cb=$100/MB, cd=$1/MB)", requiredStreams),
		"Scheme", "Best C", "Disks", "Max streams", "Memory", "Disk $", "Total", "Fits min disks")
	for _, d := range designs {
		tbl.AddRow(
			d.Scheme.String(),
			report.Int(d.C),
			report.Float(d.Disks, 1),
			report.Float(d.MaxStreams, 0),
			report.Dollars(float64(d.MemoryCost)),
			report.Dollars(float64(d.DiskCost)),
			report.Dollars(float64(d.Total)),
			fmt.Sprintf("%v", d.FeasibleAtMinDisks),
		)
	}
	tbl.AddRow("WINNER", winner.Scheme.Abbrev())
	res.Text = tbl.String()
	return res, nil
}

// Render returns the rendered sweep.
func (r *KSweepResult) Render() string { return r.Text }

// Render returns the rendered examples.
func (r *MTTFExamplesResult) Render() string { return r.Text }

// Render returns the rendered panel.
func (r *Fig9Result) Render() string { return r.Text }

// Render returns the rendered sizing comparison.
func (r *SizingResult) Render() string { return r.Text }
