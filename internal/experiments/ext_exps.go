package experiments

import (
	"fmt"
	"time"

	"ftmm/internal/analytic"
	"ftmm/internal/diskmodel"
	"ftmm/internal/failure"
	"ftmm/internal/layout"
	"ftmm/internal/rebuild"
	"ftmm/internal/report"
	"ftmm/internal/schemes"
	"ftmm/internal/tertiary"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// These experiments go beyond the paper's published artifacts: the
// rebuild mode it defers, the introduction's capacity arithmetic, the
// exact Markov treatment of its reliability algebra, and ablations over
// the design knobs it only discusses qualitatively.

// IntroResult is the §1 capacity arithmetic.
type IntroResult struct {
	MPEG2Movies, MPEG1Movies   int
	MPEG2Streams, MPEG1Streams int
	Text                       string
}

// Intro reproduces the introduction's example: 1000 one-gigabyte disks
// store ~300 MPEG-2 or ~900 MPEG-1 ninety-minute movies and, at 4 MB/s
// per disk, feed ~6500 MPEG-2 or ~20,000 MPEG-1 concurrent streams.
func Intro() (*IntroResult, error) {
	p := diskmodel.Table1()
	res := &IntroResult{}
	est2, err := analytic.EstimateCapacity(1000, p, analytic.MovieSize(units.MPEG2, 90), units.MPEG2)
	if err != nil {
		return nil, err
	}
	est1, err := analytic.EstimateCapacity(1000, p, analytic.MovieSize(units.MPEG1, 90), units.MPEG1)
	if err != nil {
		return nil, err
	}
	res.MPEG2Movies, res.MPEG2Streams = est2.Objects, est2.Streams
	res.MPEG1Movies, res.MPEG1Streams = est1.Objects, est1.Streams
	tbl := report.NewTable("Introduction's capacity arithmetic (1000 x 1 GB disks at 4 MB/s)",
		"Quantity", "Computed", "Paper")
	tbl.AddRow("90-min MPEG-2 movies stored", report.Int(res.MPEG2Movies), "~300")
	tbl.AddRow("90-min MPEG-1 movies stored", report.Int(res.MPEG1Movies), "~900")
	tbl.AddRow("Concurrent MPEG-2 streams", report.Int(res.MPEG2Streams), "~6500")
	tbl.AddRow("Concurrent MPEG-1 streams", report.Int(res.MPEG1Streams), "~20,000")
	res.Text = tbl.String()
	return res, nil
}

// Render returns the rendered table.
func (r *IntroResult) Render() string { return r.Text }

// RebuildResult compares rebuild-mode costs.
type RebuildResult struct {
	// ParityCycles[budget] is the online-rebuild duration in cycles for
	// each spare-read budget.
	ParityCycles map[int]int
	// ParityTime is the wall-clock rebuild time at the largest budget,
	// using the Non-clustered cycle time.
	ParityTime time.Duration
	// TertiaryTime is the simulated time to re-fetch the affected
	// objects from tape instead.
	TertiaryTime time.Duration
	Text         string
}

// Rebuild measures the paper's deferred rebuild mode: restoring a
// replaced drive from parity online, a few tracks per cycle out of spare
// bandwidth, versus reloading the affected objects from the tape library
// ("many tapes may need to be referenced and that is very time
// consuming").
func Rebuild() (*RebuildResult, error) {
	res := &RebuildResult{ParityCycles: map[int]int{}}
	budgets := []int{4, 8, 16, 32}
	cycleTime := diskmodel.Table1().CycleTime(1, units.MPEG1)

	var tracks int
	for _, budget := range budgets {
		rig, err := newSimRig(10, 5, 4, 20, layout.DedicatedParity, false)
		if err != nil {
			return nil, err
		}
		drv, err := rig.farm.Drive(0)
		if err != nil {
			return nil, err
		}
		if err := drv.Fail(); err != nil {
			return nil, err
		}
		if err := drv.Replace(); err != nil {
			return nil, err
		}
		r, err := rebuild.New(rig.farm, rig.lay, 0)
		if err != nil {
			return nil, err
		}
		tracks = r.Remaining()
		cycles, err := r.Run(budget, 1_000_000)
		if err != nil {
			return nil, err
		}
		res.ParityCycles[budget] = cycles
	}
	res.ParityTime = time.Duration(res.ParityCycles[budgets[len(budgets)-1]]) * cycleTime

	// Tertiary alternative: re-fetch every object that touched the drive.
	rig, err := newSimRig(10, 5, 4, 20, layout.DedicatedParity, false)
	if err != nil {
		return nil, err
	}
	lib, err := tertiary.NewLibrary(tertiary.DefaultConfig())
	if err != nil {
		return nil, err
	}
	var needs []tertiary.Need
	for i, obj := range rig.objs {
		size := obj.Tracks * int(rig.farm.Params().TrackSize)
		if err := lib.Store(obj.ID, i/2, workload.SyntheticContent(obj.ID, size)); err != nil {
			return nil, err
		}
		// Every object here stripes over both clusters, so all are
		// affected by the failed drive.
		needs = append(needs, tertiary.Need{ObjectID: obj.ID, Offset: 0, Length: size})
	}
	res.TertiaryTime, err = lib.PlanCost(needs)
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable(
		fmt.Sprintf("Rebuild mode: restoring a failed drive (%d tracks) — parity vs tertiary", tracks),
		"Method", "Spare reads/cycle", "Cycles", "Wall clock")
	for _, b := range budgets {
		cyc := res.ParityCycles[b]
		tbl.AddRow("online parity rebuild", report.Int(b), report.Int(cyc),
			(time.Duration(cyc) * cycleTime).Truncate(time.Millisecond).String())
	}
	tbl.AddRow("reload from tape library", "-", "-", res.TertiaryTime.Truncate(time.Second).String())
	res.Text = tbl.String()
	return res, nil
}

// Render returns the rendered table.
func (r *RebuildResult) Render() string { return r.Text }

// ReliabilityResult is the three-way reliability comparison: the paper's
// closed forms vs the exact Markov chains vs Monte-Carlo.
type ReliabilityResult struct {
	Rows []ReliabilityRow
	Text string
}

// ReliabilityRow is one quantity compared three ways (MC omitted where
// impractical).
type ReliabilityRow struct {
	Name                          string
	ClosedHours, MarkovHours      float64
	MCHours, MCErrHours           float64
	MarkovOverClosed, MCOverExact float64
}

// Reliability compares equations (4) and (6) against exact birth-death
// chains and simulation at a scaled MTTF, quantifying the two
// approximations found: equation (6)'s missing (K-1)! factor and the
// higher-order terms both forms drop.
func Reliability(trials int) (*ReliabilityResult, error) {
	if trials <= 0 {
		trials = 1500
	}
	res := &ReliabilityResult{}
	add := func(name string, closed, markov float64, mc failure.Estimate) {
		row := ReliabilityRow{
			Name: name, ClosedHours: closed, MarkovHours: markov,
			MCHours: mc.MeanHours, MCErrHours: mc.StdErrHours,
			MarkovOverClosed: markov / closed,
		}
		if markov > 0 {
			row.MCOverExact = mc.MeanHours / markov
		}
		res.Rows = append(res.Rows, row)
	}

	mttf := failure.Model{D: 40, C: 4, MTTFHours: 500, MTTRHours: 1, Placement: layout.DedicatedParity, K: 3}
	exact, err := mttf.MarkovMTTFHours()
	if err != nil {
		return nil, err
	}
	mc, err := mttf.EstimateMTTF(trials, 41)
	if err != nil {
		return nil, err
	}
	add("catastrophe, dedicated (eq 4)", mttf.AnalyticMTTFHours(), exact, mc)

	ds := mttf
	ds.MTTFHours = 3000
	exactDS, err := ds.MarkovMTTDSHours()
	if err != nil {
		return nil, err
	}
	mcDS, err := ds.EstimateMTTDS(trials, 42)
	if err != nil {
		return nil, err
	}
	add("degradation, K=3 (eq 6; note the (K-1)! factor)", ds.AnalyticMTTDSHours(), exactDS, mcDS)

	tbl := report.NewTable(
		fmt.Sprintf("Reliability three ways (scaled MTTF, %d MC trials)", trials),
		"Quantity", "Closed form (h)", "Markov exact (h)", "Monte-Carlo (h)", "Markov/closed", "MC/Markov")
	for _, r := range res.Rows {
		tbl.AddRow(r.Name,
			report.Float(r.ClosedHours, 1), report.Float(r.MarkovHours, 1),
			fmt.Sprintf("%.1f ± %.1f", r.MCHours, r.MCErrHours),
			report.Float(r.MarkovOverClosed, 3), report.Float(r.MCOverExact, 3))
	}
	res.Text = tbl.String()
	return res, nil
}

// Render returns the rendered table.
func (r *ReliabilityResult) Render() string { return r.Text }

// Values exports each comparison row three ways.
func (r *ReliabilityResult) Values() map[string]float64 {
	keys := []string{"mttf_dedicated", "mttds_k3"}
	v := map[string]float64{}
	for i, row := range r.Rows {
		k := fmt.Sprintf("row%d", i)
		if i < len(keys) {
			k = keys[i]
		}
		v[k+"_closed_hours"] = row.ClosedHours
		v[k+"_markov_hours"] = row.MarkovHours
		v[k+"_mc_hours"] = row.MCHours
		v[k+"_mc_stderr_hours"] = row.MCErrHours
	}
	return v
}

// AblationResult holds the design-knob sweeps.
type AblationResult struct {
	// NCServerYears[k] is the Markov MTTDS (years) with k buffer servers.
	NCServerYears map[int]float64
	// IBReserve[res] records hiccup/termination counts in the saturated
	// Figure 8 scenario at each per-drive reserve.
	IBReserveTerminations map[int]int
	Text                  string
}

// Ablations sweeps the two reserve knobs the paper fixes by fiat: the
// Non-clustered buffer-server count K (which buys MTTDS multiplicatively)
// and the Improved-bandwidth per-drive slot reserve (which buys failure
// masking at full load).
func Ablations() (*AblationResult, error) {
	res := &AblationResult{NCServerYears: map[int]float64{}, IBReserveTerminations: map[int]int{}}

	// NC: MTTDS vs buffer-server count, paper-scale farm.
	tbl := report.NewTable("Ablation: reserve depth",
		"Knob", "Setting", "Outcome")
	for k := 1; k <= 5; k++ {
		m := failure.Model{D: 100, C: 5, MTTFHours: 300_000, MTTRHours: 1, Placement: layout.DedicatedParity, K: k}
		h, err := m.MarkovMTTDSHours()
		if err != nil {
			return nil, err
		}
		years := float64(units.YearsFromHours(h))
		res.NCServerYears[k] = years
		tbl.AddRow("NC buffer servers", report.Int(k), fmt.Sprintf("MTTDS %.3g years", years))
	}

	// IB: terminations under a saturating failure vs per-drive reserve.
	for _, reserve := range []int{0, 1} {
		_, term, err := runIBShift(reserve+1, reserve, false)
		if err != nil {
			return nil, err
		}
		res.IBReserveTerminations[reserve] = term
		tbl.AddRow("IB reserve slots/drive", report.Int(reserve),
			fmt.Sprintf("%d terminations on failure at full load", term))
	}

	// NC switchover policy is covered by NCFailure(); summarize it here.
	nc, err := NCFailure()
	if err != nil {
		return nil, err
	}
	tbl.AddRow("NC switchover policy", "simple",
		fmt.Sprintf("%d tracks lost (disk-2 failure)", nc.Lost[schemes.SimpleSwitchover][2]))
	tbl.AddRow("NC switchover policy", "alternate",
		fmt.Sprintf("%d tracks lost (disk-2 failure)", nc.Lost[schemes.AlternateSwitchover][2]))

	res.Text = tbl.String()
	return res, nil
}

// Render returns the rendered table.
func (r *AblationResult) Render() string { return r.Text }
