package experiments

import (
	"fmt"

	"ftmm/internal/layout"
	"ftmm/internal/report"
	"ftmm/internal/sched"
	"ftmm/internal/schemes"
)

// BandwidthResult validates Table 2's "disk bandwidth overhead" row
// operationally: reads actually issued per track actually delivered, per
// scheme, in normal mode and under one failure.
type BandwidthResult struct {
	// ReadsPerTrack[scheme][mode] with modes "normal" and "degraded".
	ReadsPerTrack map[string]map[string]float64
	Text          string
}

// Bandwidth runs each engine to completion on identical workloads and
// divides total track reads (data + parity) by tracks delivered:
//
//	SR/SG: C/(C-1) = 1.25 at C=5 — the 20% overhead of Table 2, paid in
//	       normal mode;
//	NC/IB: 1.0 in normal mode (the schemes' whole point), rising only in
//	       degraded operation.
func Bandwidth() (*BandwidthResult, error) {
	res := &BandwidthResult{ReadsPerTrack: map[string]map[string]float64{}}
	type build func(r *simRig) (schemes.Simulator, error)
	cases := []struct {
		name  string
		place layout.Placement
		build build
	}{
		{"Streaming RAID", layout.DedicatedParity, func(r *simRig) (schemes.Simulator, error) {
			return schemes.NewStreamingRAID(r.config())
		}},
		{"Staggered-group", layout.DedicatedParity, func(r *simRig) (schemes.Simulator, error) {
			return schemes.NewStaggeredGroup(r.config())
		}},
		{"Non-clustered", layout.DedicatedParity, func(r *simRig) (schemes.Simulator, error) {
			return schemes.NewNonClustered(r.config(), schemes.AlternateSwitchover, 2)
		}},
		{"Improved-bandwidth", layout.IntermixedParity, func(r *simRig) (schemes.Simulator, error) {
			return schemes.NewImprovedBandwidth(r.config(), 2)
		}},
	}
	tbl := report.NewTable(
		"Reads issued per track delivered (C=5, 4 streams, 12 groups each)",
		"Scheme", "Normal mode", "One failed drive", "Table 2 overhead")
	for _, tc := range cases {
		perMode := map[string]float64{}
		for _, mode := range []string{"normal", "degraded"} {
			rig, err := newSimRig(10, 5, 4, 12, tc.place, false)
			if err != nil {
				return nil, err
			}
			e, err := tc.build(rig)
			if err != nil {
				return nil, err
			}
			if mode == "degraded" {
				if err := e.FailDisk(1); err != nil {
					return nil, err
				}
			}
			reads, delivered := 0, 0
			count := func(rep *sched.CycleReport) {
				reads += rep.DataReads + rep.ParityReads
				delivered += len(rep.Delivered)
			}
			for i, obj := range rig.objs {
				if _, err := e.AddStream(obj); err != nil {
					return nil, fmt.Errorf("%s: stream %d: %w", tc.name, i, err)
				}
				rep, err := e.Step()
				if err != nil {
					return nil, err
				}
				count(rep)
			}
			for e.Active() > 0 {
				rep, err := e.Step()
				if err != nil {
					return nil, err
				}
				count(rep)
				if e.Cycle() > 2000 {
					return nil, fmt.Errorf("%s: did not converge", tc.name)
				}
			}
			if delivered == 0 {
				return nil, fmt.Errorf("%s: nothing delivered", tc.name)
			}
			perMode[mode] = float64(reads) / float64(delivered)
		}
		res.ReadsPerTrack[tc.name] = perMode
		overhead := "20.0% (1/C)"
		if tc.name == "Improved-bandwidth" {
			overhead = "3.0% (K/D)"
		}
		tbl.AddRow(tc.name,
			report.Float(perMode["normal"], 3),
			report.Float(perMode["degraded"], 3),
			overhead)
		// Note: under failure the *issued* reads drop (a dead drive
		// serves nothing) — the overhead is about bandwidth that must be
		// provisioned, which normal mode already consumes for SR/SG.
	}
	res.Text = tbl.String()
	return res, nil
}

// Render returns the rendered table.
func (r *BandwidthResult) Render() string { return r.Text }
