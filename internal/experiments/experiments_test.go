package experiments

import (
	"math"
	"strings"
	"testing"

	"ftmm/internal/analytic"
	"ftmm/internal/schemes"
)

func TestTable2Render(t *testing.T) {
	res, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"20.0%", "25684.9", "3176862.3", "1041", "966", "1263",
		"10410", "3623", "2612", "10104", "11415.5",
	} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("Table 2 output missing %q:\n%s", want, res.Text)
		}
	}
	if len(res.Metrics) != 4 {
		t.Fatal("metrics count")
	}
}

func TestTable3Render(t *testing.T) {
	res, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"14.3%", "17123.3", "1125", "1035", "1273",
		"15750", "4830", "3254", "15276", "7903.1",
	} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("Table 3 output missing %q:\n%s", want, res.Text)
		}
	}
}

func TestKSweep(t *testing.T) {
	res, err := KSweep()
	if err != nil {
		t.Fatal(err)
	}
	m2 := res.PerDisk["MPEG-2 (4.5 Mb/s)"]
	if len(m2) != len(res.Ks) {
		t.Fatal("series length")
	}
	// Paper's printed values: 14.7, 16.2, 17.4 at k = 1, 2, 10.
	if m2[0] < 14.7 || m2[0] >= 14.8 {
		t.Errorf("k=1: %v", m2[0])
	}
	if m2[1] < 16.2 || m2[1] >= 16.3 {
		t.Errorf("k=2: %v", m2[1])
	}
	if last := m2[len(m2)-1]; last < 17.4 || last >= 17.5 {
		t.Errorf("k=10: %v", last)
	}
}

func TestMTTFExamples(t *testing.T) {
	res, err := MTTFExamples()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.SomeDiskHours-300) > 1e-9 {
		t.Errorf("first failure = %v h", res.SomeDiskHours)
	}
	if math.Abs(res.StreamingRAIDYears-1141.55) > 0.1 {
		t.Errorf("SR MTTF = %v years", res.StreamingRAIDYears)
	}
	if res.FiveFailureYears < 250e6 {
		t.Errorf("5-failure MTTDS = %v years", res.FiveFailureYears)
	}
	if math.Abs(res.ImprovedBWYears-540.7) > 0.5 {
		t.Errorf("IB MTTF = %v years", res.ImprovedBWYears)
	}
}

func TestFig9Shapes(t *testing.T) {
	a, err := Fig9a()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig9b()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cs) != 9 || len(b.Cs) != 9 {
		t.Fatal("C range")
	}
	// 9(b): IB dominates stream capacity everywhere.
	ib := b.Points[analytic.ImprovedBandwidth]
	sr := b.Points[analytic.StreamingRAID]
	for i := range ib {
		if ib[i].MaxStreams <= sr[i].MaxStreams {
			t.Errorf("C=%d: IB streams %v <= SR %v", b.Cs[i], ib[i].MaxStreams, sr[i].MaxStreams)
		}
	}
	// 9(a): NC is the cheapest dedicated-parity scheme at C=10.
	nc := a.Points[analytic.NonClustered]
	sg := a.Points[analytic.StaggeredGroup]
	last := len(nc) - 1
	if !(nc[last].Total < sg[last].Total && sg[last].Total < a.Points[analytic.StreamingRAID][last].Total) {
		t.Error("cost ordering NC < SG < SR at C=10 broken")
	}
}

func TestSizingWorkedExample(t *testing.T) {
	res, err := Sizing(1200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner.Scheme != analytic.NonClustered {
		t.Errorf("winner at 1200 = %v, want Non-clustered", res.Winner.Scheme)
	}
	scarce, err := Sizing(2200)
	if err != nil {
		t.Fatal(err)
	}
	if scarce.Winner.Scheme != analytic.ImprovedBandwidth {
		t.Errorf("winner at 2200 = %v, want Improved-bandwidth", scarce.Winner.Scheme)
	}
}

func TestFig4(t *testing.T) {
	res, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if res.SGPeak != 15 { // C(C+1)/2
		t.Errorf("SG peak = %d, want 15", res.SGPeak)
	}
	if res.SRPeak != 40 { // 2C x 4 streams
		t.Errorf("SR peak = %d, want 40", res.SRPeak)
	}
	if len(res.SG) == 0 || len(res.SR) == 0 {
		t.Fatal("empty occupancy series")
	}
	// Panel (a): the 4 staggered streams' sawtooths interleave into a
	// steady aggregate.
	first := res.SG[5]
	for _, v := range res.SG[5:9] {
		if v != first {
			t.Errorf("staggered aggregate not flat: %v", res.SG[5:9])
			break
		}
	}
	// Panel (b): one lone stream's occupancy is the 4,3,2,1 sawtooth.
	want := []int{4, 3, 2, 1}
	for i := 4; i+4 < len(res.SGOne); i += 4 {
		for j, w := range want {
			if res.SGOne[i+j] != w {
				t.Fatalf("sawtooth broken at cycle %d: got %d want %d", i+j, res.SGOne[i+j], w)
			}
		}
	}
}

func TestNCFailureMatchesFigures(t *testing.T) {
	res, err := NCFailure()
	if err != nil {
		t.Fatal(err)
	}
	// Figure 6/7 use failed disk 2: 6 lost (simple) vs 3 (alternate).
	if got := res.Lost[schemes.SimpleSwitchover][2]; got != 6 {
		t.Errorf("simple losses at disk 2 = %d, want 6 (Fig 6)", got)
	}
	if got := res.Lost[schemes.AlternateSwitchover][2]; got != 3 {
		t.Errorf("alternate losses at disk 2 = %d, want 3 (Fig 7)", got)
	}
	// Alternate never worse, for every failed-disk position.
	for disk := 0; disk < 4; disk++ {
		s := res.Lost[schemes.SimpleSwitchover][disk]
		a := res.Lost[schemes.AlternateSwitchover][disk]
		if a > s {
			t.Errorf("disk %d: alternate %d > simple %d", disk, a, s)
		}
	}
}

func TestIBShift(t *testing.T) {
	res, err := IBShift()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaskedHiccups != 0 || res.MaskedTerminations != 0 {
		t.Errorf("reserved case: hiccups=%d terminations=%d, want 0,0", res.MaskedHiccups, res.MaskedTerminations)
	}
	if res.SaturatedTerminations == 0 {
		t.Error("saturated case produced no degradation")
	}
	if res.MidCycleHiccups != 1 {
		t.Errorf("mid-cycle hiccups = %d, want 1", res.MidCycleHiccups)
	}
}

func TestMonteCarlo(t *testing.T) {
	res, err := MonteCarlo(400)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatal("row count")
	}
	for _, r := range res.Rows {
		ratio := r.SimulatedHours / r.AnalyticHours
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("%s: sim/analytic ratio %.2f outside [0.8,1.25]", r.Name, ratio)
		}
	}
	if _, err := MonteCarlo(0); err != nil { // default trials
		t.Fatal(err)
	}
}
