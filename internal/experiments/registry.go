package experiments

import "fmt"

// Output is one experiment's result: the rendered text plus any
// machine-readable metric values the result type exports.
type Output struct {
	Text string
	// Values maps stable metric names to numbers (nil when the result
	// type exports none). cmd/ftmmbench -json emits these.
	Values map[string]float64
}

// Named is one registered experiment: a stable name, a one-line
// description, and a runner producing its output.
type Named struct {
	Name        string
	Description string
	Run         func(Options) (Output, error)
}

// Options tunes the stochastic experiments.
type Options struct {
	// Trials for Monte-Carlo based experiments (0 = default).
	Trials int
	// RequiredStreams for the sizing experiment (0 = 1200).
	RequiredStreams float64
}

// valuer is implemented by result types that export metric values.
type valuer interface {
	Values() map[string]float64
}

// All returns every experiment in presentation order. cmd/ftmmbench
// iterates this registry; tests assert each entry renders.
func All() []Named {
	render := func(r interface{ Render() string }, err error) (Output, error) {
		if err != nil {
			return Output{}, err
		}
		out := Output{Text: r.Render()}
		if v, ok := r.(valuer); ok {
			out.Values = v.Values()
		}
		return out, nil
	}
	return []Named{
		{"table2", "Table 2: scheme comparison at C=5", func(Options) (Output, error) {
			r, err := Table2()
			return render(r, err)
		}},
		{"table3", "Table 3: scheme comparison at C=7", func(Options) (Output, error) {
			r, err := Table3()
			return render(r, err)
		}},
		{"ksweep", "§2 k-sweep: streams/disk vs tracks per read cycle", func(Options) (Output, error) {
			r, err := KSweep()
			return render(r, err)
		}},
		{"mttf", "§2-§4 inline MTTF/MTTDS examples (1000 disks)", func(Options) (Output, error) {
			r, err := MTTFExamples()
			return render(r, err)
		}},
		{"fig9a", "Figure 9(a): total storage cost vs parity group size", func(Options) (Output, error) {
			r, err := Fig9a()
			return render(r, err)
		}},
		{"fig9b", "Figure 9(b): streams vs parity group size", func(Options) (Output, error) {
			r, err := Fig9b()
			return render(r, err)
		}},
		{"sizing", "§5 worked example: cheapest design for required streams", func(o Options) (Output, error) {
			streams := o.RequiredStreams
			if streams <= 0 {
				streams = 1200
			}
			r, err := Sizing(streams)
			return render(r, err)
		}},
		{"fig4", "Figure 4: staggered-group buffer sawtooth (simulated)", func(Options) (Output, error) {
			r, err := Fig4()
			return render(r, err)
		}},
		{"ncfailure", "Figures 5-7: non-clustered transition losses (simulated)", func(Options) (Output, error) {
			r, err := NCFailure()
			return render(r, err)
		}},
		{"ibshift", "Figure 8: improved-bandwidth shift to the right (simulated)", func(Options) (Output, error) {
			r, err := IBShift()
			return render(r, err)
		}},
		{"montecarlo", "Monte-Carlo validation of equations (4)-(6)", func(o Options) (Output, error) {
			r, err := MonteCarlo(o.Trials)
			return render(r, err)
		}},
		{"intro", "§1 capacity arithmetic (movies and streams per 1000 disks)", func(Options) (Output, error) {
			r, err := Intro()
			return render(r, err)
		}},
		{"rebuildmode", "rebuild mode: online parity rebuild vs tape reload", func(Options) (Output, error) {
			r, err := Rebuild()
			return render(r, err)
		}},
		{"reliability", "closed form vs exact Markov vs Monte-Carlo", func(o Options) (Output, error) {
			r, err := Reliability(o.Trials)
			return render(r, err)
		}},
		{"ablations", "reserve-depth and switchover-policy ablations", func(Options) (Output, error) {
			r, err := Ablations()
			return render(r, err)
		}},
		{"seek", "seek-order validation of the T(r) disk model", func(Options) (Output, error) {
			r, err := Seek()
			return render(r, err)
		}},
		{"prices", "price sensitivity of the §5 sizing conclusions", func(Options) (Output, error) {
			r, err := PriceSensitivity()
			return render(r, err)
		}},
		{"bandwidth", "operational validation of the bandwidth-overhead row", func(Options) (Output, error) {
			r, err := Bandwidth()
			return render(r, err)
		}},
		{"gss", "grouped-sweeping (ref [3]) capacity/buffer tradeoff", func(Options) (Output, error) {
			r, err := GSS()
			return render(r, err)
		}},
	}
}

// Find returns the named experiment.
func Find(name string) (Named, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Named{}, fmt.Errorf("experiments: unknown experiment %q", name)
}
