package experiments

import (
	"strings"
	"testing"

	"ftmm/internal/analytic"
)

func TestIntro(t *testing.T) {
	res, err := Intro()
	if err != nil {
		t.Fatal(err)
	}
	if res.MPEG2Movies < 300 || res.MPEG2Movies > 340 {
		t.Errorf("MPEG-2 movies = %d", res.MPEG2Movies)
	}
	if res.MPEG1Movies < 900 || res.MPEG1Movies > 1000 {
		t.Errorf("MPEG-1 movies = %d", res.MPEG1Movies)
	}
	if res.MPEG2Streams < 6500 || res.MPEG2Streams > 7200 {
		t.Errorf("MPEG-2 streams = %d", res.MPEG2Streams)
	}
	if res.MPEG1Streams < 20000 || res.MPEG1Streams > 21500 {
		t.Errorf("MPEG-1 streams = %d", res.MPEG1Streams)
	}
	if !strings.Contains(res.Render(), "~6500") {
		t.Error("render missing paper column")
	}
}

func TestRebuild(t *testing.T) {
	res, err := Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	// Doubling the budget halves the cycles (within rounding).
	c4, c8, c32 := res.ParityCycles[4], res.ParityCycles[8], res.ParityCycles[32]
	if c4 == 0 || c8 == 0 || c32 == 0 {
		t.Fatalf("cycles = %v", res.ParityCycles)
	}
	if c8 < c4/2 || c8 > c4/2+1 {
		t.Errorf("budget 8 cycles = %d, want ~%d", c8, c4/2)
	}
	if c32 >= c8 {
		t.Error("bigger budget did not speed rebuild")
	}
	// Tape reload is much slower than even the slowest parity rebuild
	// (mounts plus 4 Mbit/s transfers).
	if res.TertiaryTime <= res.ParityTime {
		t.Errorf("tertiary %v should exceed parity %v", res.TertiaryTime, res.ParityTime)
	}
}

func TestReliability(t *testing.T) {
	res, err := Reliability(800)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatal("rows")
	}
	// MC within 10% of the exact chain for both quantities.
	for _, r := range res.Rows {
		if r.MCOverExact < 0.9 || r.MCOverExact > 1.1 {
			t.Errorf("%s: MC/Markov = %.3f", r.Name, r.MCOverExact)
		}
	}
	// The degradation row exhibits the (K-1)! = 2 factor.
	if f := res.Rows[1].MarkovOverClosed; f < 1.8 || f > 2.2 {
		t.Errorf("MTTDS Markov/closed = %.3f, want ~2", f)
	}
	// The catastrophe row is close to the closed form.
	if f := res.Rows[0].MarkovOverClosed; f < 0.95 || f > 1.1 {
		t.Errorf("MTTF Markov/closed = %.3f, want ~1", f)
	}
	if _, err := Reliability(0); err != nil {
		t.Fatal(err)
	}
}

func TestAblations(t *testing.T) {
	res, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	// Each extra buffer server multiplies MTTDS by roughly
	// MTTF/(D·MTTR)·(K)/(D)… — at minimum it must grow by >100x per step
	// at the paper's scale.
	for k := 2; k <= 5; k++ {
		if res.NCServerYears[k] < 100*res.NCServerYears[k-1] {
			t.Errorf("K=%d MTTDS %.3g not >> K=%d %.3g", k, res.NCServerYears[k], k-1, res.NCServerYears[k-1])
		}
	}
	// The IB reserve ablation shows the cliff: terminations without
	// reserve, none with.
	if res.IBReserveTerminations[0] == 0 {
		t.Error("no terminations at zero reserve")
	}
	if res.IBReserveTerminations[1] != 0 {
		t.Error("terminations despite reserve")
	}
}

func TestSeek(t *testing.T) {
	res, err := Seek()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rs {
		if res.WorstSweepMs[r] > res.BoundMs[r] {
			t.Errorf("r=%d: worst sweep %.1f ms exceeds bound %.1f ms", r, res.WorstSweepMs[r], res.BoundMs[r])
		}
	}
	// At the Streaming RAID batch size, unsorted service routinely blows
	// the bound.
	if res.FIFOViolations[52] < res.Trials/2 {
		t.Errorf("FIFO violations at r=52: %d/%d; expected routine", res.FIFOViolations[52], res.Trials)
	}
	if res.FIFOViolations[1] != 0 {
		t.Error("r=1 cannot violate the bound (one seek <= Tseek)")
	}
}

func TestPriceSensitivity(t *testing.T) {
	res, err := PriceSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	for _, cb := range res.Ratios {
		// The 1200-stream winner is a dedicated-parity scheme at every
		// plausible price (IB never wins the storage-bound case).
		if res.WinnerAt1200[cb] == analytic.ImprovedBandwidth {
			t.Errorf("cb=%v: IB won the storage-bound case", cb)
		}
	}
	// SR's optimal cluster shrinks as memory gets pricier (its 2C-per-
	// stream buffers dominate), staying in the small range throughout.
	prev := 100
	for _, cb := range res.Ratios {
		c := res.SRBestC[cb]
		if c > prev || c > 7 || c < 2 {
			t.Errorf("cb=%v: SR best C = %d (prev %d)", cb, c, prev)
		}
		prev = c
	}
	// At cheap-memory prices the crossover lands at the paper's quoted
	// 1500 streams — evidence of the authors' implicit price regime.
	if res.IBCrossover[25] != 1500 {
		t.Errorf("crossover at cb=25 = %d, want 1500 (the paper's figure)", res.IBCrossover[25])
	}
	// The IB crossover moves down as memory gets cheaper relative to
	// disk (IB's buffers are its handicap).
	if res.IBCrossover[25] == 0 {
		t.Error("no crossover found at cheap memory")
	}
	if c25, c400 := res.IBCrossover[25], res.IBCrossover[400]; c400 != 0 && c25 > c400 {
		t.Errorf("crossover at cb=25 (%d) above cb=400 (%d)", c25, c400)
	}
}

func TestBandwidth(t *testing.T) {
	res, err := Bandwidth()
	if err != nil {
		t.Fatal(err)
	}
	// SR/SG read a whole parity group per C-1 delivered tracks: 1.25.
	for _, name := range []string{"Streaming RAID", "Staggered-group"} {
		if got := res.ReadsPerTrack[name]["normal"]; got < 1.24 || got > 1.26 {
			t.Errorf("%s normal reads/track = %.3f, want 1.25", name, got)
		}
	}
	// NC and IB pay no parity bandwidth in normal mode.
	for _, name := range []string{"Non-clustered", "Improved-bandwidth"} {
		if got := res.ReadsPerTrack[name]["normal"]; got < 0.99 || got > 1.01 {
			t.Errorf("%s normal reads/track = %.3f, want 1.0", name, got)
		}
	}
	// Under one failure the *issued* reads never exceed normal mode for
	// SR/SG (the dead drive serves nothing; its track comes from the
	// already-read parity) — the overhead is provisioned bandwidth, and
	// normal operation is what consumes it. Nothing exceeds the 1/C
	// provisioning level.
	for name, modes := range res.ReadsPerTrack {
		if modes["degraded"] > 1.26 {
			t.Errorf("%s degraded reads/track = %.3f, want <= 1.26", name, modes["degraded"])
		}
	}
	for _, name := range []string{"Streaming RAID", "Staggered-group"} {
		m := res.ReadsPerTrack[name]
		if m["degraded"] > m["normal"] {
			t.Errorf("%s: degraded (%.3f) above normal (%.3f)", name, m["degraded"], m["normal"])
		}
	}
}

func TestGSS(t *testing.T) {
	res, err := GSS()
	if err != nil {
		t.Fatal(err)
	}
	// SCAN (g=1) has the highest capacity; capacity never increases
	// with g (per-subcycle positioning seeks eat the budget).
	if res.MaxStreamsAtG[1] == 0 {
		t.Fatal("g=1 infeasible")
	}
	prev := res.MaxStreamsAtG[1]
	for _, g := range []int{2, 3, 4, 6, 8} {
		if res.MaxStreamsAtG[g] > prev {
			t.Errorf("capacity rose from g-1 to g=%d: %d > %d", g, res.MaxStreamsAtG[g], prev)
		}
		prev = res.MaxStreamsAtG[g]
	}
	// Per-stream buffering falls toward 1 as g grows (where feasible).
	if b1 := res.BufferAtCapacity[1] / float64(res.MaxStreamsAtG[1]); b1 != 2 {
		t.Errorf("g=1 buffers/stream = %v, want 2", b1)
	}
}

// Every registered experiment must render non-empty output at reduced
// trial counts (the figure-exact assertions live in the per-experiment
// tests; this pins the registry and the cmd surface).
func TestRegistryAllRender(t *testing.T) {
	names := map[string]bool{}
	for _, e := range All() {
		if names[e.Name] {
			t.Fatalf("duplicate experiment name %q", e.Name)
		}
		names[e.Name] = true
		out, err := e.Run(Options{Trials: 100})
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if len(out.Text) < 40 {
			t.Fatalf("%s: output suspiciously short: %q", e.Name, out.Text)
		}
	}
	if len(names) < 19 {
		t.Fatalf("registry has %d experiments; expected the full set", len(names))
	}
	if _, err := Find("table2"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("unknown experiment found")
	}
}
