package experiments

import (
	"math/rand"
	"time"

	"ftmm/internal/diskgeom"
	"ftmm/internal/report"
)

// SeekResult validates the paper's §2 disk model: per-cycle batches
// served in elevator order fit the linear bound T(r) = Tseek + r·Ttrk,
// while FIFO service does not — "this optimization of seek times is very
// important since otherwise a significant portion of disk bandwidth
// could be lost".
type SeekResult struct {
	Rs []int
	// WorstSweepMs[r], MeanFIFOMs[r], BoundMs[r] in milliseconds.
	WorstSweepMs, MeanFIFOMs, BoundMs map[int]float64
	// FIFOViolations[r] counts trials whose FIFO time exceeded the bound.
	FIFOViolations map[int]int
	Trials         int
	Text           string
}

// Seek runs the validation over the per-cycle batch sizes the schemes
// produce (from the Non-clustered 12 up to Streaming RAID's 52).
func Seek() (*SeekResult, error) {
	g := diskgeom.Default()
	tseek := 25 * time.Millisecond
	ttrk := 20 * time.Millisecond
	rng := rand.New(rand.NewSource(97))
	const trials = 300

	res := &SeekResult{
		Rs:             []int{1, 2, 5, 12, 20, 52},
		WorstSweepMs:   map[int]float64{},
		MeanFIFOMs:     map[int]float64{},
		BoundMs:        map[int]float64{},
		FIFOViolations: map[int]int{},
		Trials:         trials,
	}
	for _, r := range res.Rs {
		worst := time.Duration(0)
		var fifoSum time.Duration
		violations := 0
		bound := diskgeom.PaperBound(tseek, ttrk, r)
		for i := 0; i < trials; i++ {
			batch := diskgeom.RandomBatch(rng, g, r)
			start := rng.Intn(g.Cylinders)
			if s := g.SweepTime(start, batch); s > worst {
				worst = s
			}
			fifo := g.ServiceTime(start, batch)
			fifoSum += fifo
			if fifo > bound {
				violations++
			}
		}
		res.WorstSweepMs[r] = float64(worst) / float64(time.Millisecond)
		res.MeanFIFOMs[r] = float64(fifoSum) / float64(trials) / float64(time.Millisecond)
		res.BoundMs[r] = float64(bound) / float64(time.Millisecond)
		res.FIFOViolations[r] = violations
	}

	tbl := report.NewTable(
		"Seek-order validation of T(r) = Tseek + r*Ttrk (ST31200N-class geometry, 300 random batches)",
		"r (tracks/cycle)", "Paper bound (ms)", "Worst sweep (ms)", "Mean FIFO (ms)", "FIFO > bound")
	for _, r := range res.Rs {
		tbl.AddRow(report.Int(r),
			report.Float(res.BoundMs[r], 1),
			report.Float(res.WorstSweepMs[r], 1),
			report.Float(res.MeanFIFOMs[r], 1),
			report.Int(res.FIFOViolations[r]))
	}
	res.Text = tbl.String()
	return res, nil
}

// Render returns the rendered table.
func (r *SeekResult) Render() string { return r.Text }
