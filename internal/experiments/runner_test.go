package experiments

import "testing"

// TestRunAllWorkerInvariance checks the parallel harness: results come
// back in registry order and every experiment produces the same output
// serially and concurrently (each builds its own rigs and seeds its own
// RNGs, so text and values must match exactly).
func TestRunAllWorkerInvariance(t *testing.T) {
	opts := Options{Trials: 60}
	serial := RunAll(opts, 1)
	parallel := RunAll(opts, 4)
	if len(serial) != len(All()) || len(parallel) != len(serial) {
		t.Fatalf("result counts: serial %d, parallel %d, registry %d",
			len(serial), len(parallel), len(All()))
	}
	for i, e := range All() {
		s, p := serial[i], parallel[i]
		if s.Name != e.Name || p.Name != e.Name {
			t.Fatalf("slot %d: names %q/%q, registry %q", i, s.Name, p.Name, e.Name)
		}
		if s.Err != nil || p.Err != nil {
			t.Fatalf("%s: errors serial=%v parallel=%v", e.Name, s.Err, p.Err)
		}
		if s.Output.Text != p.Output.Text {
			t.Errorf("%s: text differs between serial and parallel runs", e.Name)
		}
		if len(s.Output.Values) != len(p.Output.Values) {
			t.Fatalf("%s: value counts differ: %d vs %d",
				e.Name, len(s.Output.Values), len(p.Output.Values))
		}
		for k, v := range s.Output.Values {
			if pv, ok := p.Output.Values[k]; !ok || pv != v {
				t.Errorf("%s: value %q = %v serial, %v parallel", e.Name, k, v, pv)
			}
		}
	}
}

// TestRunTimes ensures the runner records a wall clock.
func TestRunTimes(t *testing.T) {
	e, err := Find("intro")
	if err != nil {
		t.Fatal(err)
	}
	r := Run(e, Options{})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Wall <= 0 {
		t.Fatalf("wall = %v", r.Wall)
	}
}
