package cost_test

import (
	"fmt"

	"ftmm/internal/analytic"
	"ftmm/internal/cost"
)

// Size the paper's §5 worked example: the cheapest design for 1200
// concurrent streams over a 100 GB working set.
func ExampleSizing_CheapestDesign() {
	s := cost.Figure9()
	d, err := s.CheapestDesign(analytic.NonClustered, 1200, 2, 10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("scheme: %s\n", d.Scheme)
	fmt.Printf("parity group size: %d\n", d.C)
	fmt.Printf("fits working-set disks: %v\n", d.FeasibleAtMinDisks)
	// Output:
	// scheme: Non-clustered
	// parity group size: 7
	// fits working-set disks: true
}
