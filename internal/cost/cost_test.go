package cost

import (
	"math"
	"testing"
	"testing/quick"

	"ftmm/internal/analytic"
	"ftmm/internal/units"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDisksForWorkingSet(t *testing.T) {
	s := Figure9()
	cases := []struct {
		c    int
		want float64
	}{
		{2, 200},
		{5, 125},
		{10, 111.1111},
	}
	for _, c := range cases {
		if got := s.DisksForWorkingSet(c.c); !almostEqual(got, c.want, 0.001) {
			t.Errorf("D(W,%d) = %v, want %v", c.c, got, c.want)
		}
	}
}

func TestDisksForStreams(t *testing.T) {
	s := Figure9()
	// SR at C=5 has a 13.0208 streams/disk bound; 1041.67 streams need
	// exactly 100 disks (80 data + 20 parity).
	got, err := s.DisksForStreams(analytic.StreamingRAID, 5, 1041.6667)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 100, 0.01) {
		t.Fatalf("SR disks for 1041.67 streams = %v, want 100", got)
	}
	// IB at C=5: 13.0208 streams/disk over D-K disks; 1263.02 streams
	// need 97+5 = 102 disks.
	got, err = s.DisksForStreams(analytic.ImprovedBandwidth, 5, 1263.02)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 102, 0.01) {
		t.Fatalf("IB disks for 1263 streams = %v, want 102", got)
	}
	// Zero streams need zero disks.
	if got, _ := s.DisksForStreams(analytic.StreamingRAID, 5, 0); got != 0 {
		t.Errorf("0 streams => %v disks", got)
	}
}

// Figure 9(b): with D = D(W,C), SG and NC stream capacity is flat in C
// (the two dotted lines), SR rises slightly, and IB decreases with C yet
// dominates everywhere — the paper's "number of streams ... is decreasing
// for the Improved-bandwidth scheme ... because the number of disks
// required to hold the working set decreases".
func TestFigure9bShape(t *testing.T) {
	s := Figure9()
	curves := map[analytic.Scheme][]Point{}
	for _, sc := range analytic.Schemes() {
		c, err := s.Curve(sc, 2, 10)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		curves[sc] = c
	}

	// SG/NC flat at ~1208.3 streams.
	for _, sc := range []analytic.Scheme{analytic.StaggeredGroup, analytic.NonClustered} {
		for _, p := range curves[sc] {
			if !almostEqual(p.MaxStreams, 1208.33, 0.1) {
				t.Errorf("%s C=%d streams = %.2f, want flat 1208.3", sc, p.C, p.MaxStreams)
			}
		}
	}
	// SR strictly increasing from 1208.3 to 1319.4.
	sr := curves[analytic.StreamingRAID]
	for i := 1; i < len(sr); i++ {
		if sr[i].MaxStreams <= sr[i-1].MaxStreams {
			t.Errorf("SR streams not increasing at C=%d", sr[i].C)
		}
	}
	if !almostEqual(sr[0].MaxStreams, 1208.33, 0.1) || !almostEqual(sr[len(sr)-1].MaxStreams, 1319.44, 0.1) {
		t.Errorf("SR endpoints = %.1f..%.1f, want 1208.3..1319.4", sr[0].MaxStreams, sr[len(sr)-1].MaxStreams)
	}
	// IB strictly decreasing and above SR everywhere.
	ib := curves[analytic.ImprovedBandwidth]
	for i := range ib {
		if i > 0 && ib[i].MaxStreams >= ib[i-1].MaxStreams {
			t.Errorf("IB streams not decreasing at C=%d", ib[i].C)
		}
		if ib[i].MaxStreams <= sr[i].MaxStreams {
			t.Errorf("IB streams (%.0f) not above SR (%.0f) at C=%d", ib[i].MaxStreams, sr[i].MaxStreams, ib[i].C)
		}
	}
}

// Figure 9(a): total cost vs cluster size. SR has an interior minimum at
// small C (its memory term grows as 2C per stream); SG and NC decrease
// over the range and NC sits below SG; IB's cost increases with C (paper:
// "the cost for a given working set size increases with the cluster
// size ... this implies that, if Improved-bandwidth is being used, the
// cluster size will always be 2").
func TestFigure9aShape(t *testing.T) {
	s := Figure9()
	get := func(sc analytic.Scheme) []Point {
		c, err := s.Curve(sc, 2, 10)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		return c
	}
	sr, sg, nc, ib := get(analytic.StreamingRAID), get(analytic.StaggeredGroup), get(analytic.NonClustered), get(analytic.ImprovedBandwidth)

	// SR: interior minimum strictly inside (2,10).
	minI := 0
	for i, p := range sr {
		if p.Total < sr[minI].Total {
			minI = i
		}
	}
	if minI == 0 || minI == len(sr)-1 {
		t.Errorf("SR minimum at end of range (C=%d); want interior", sr[minI].C)
	}

	// IB: the memory term makes the curve rise over the upper half of the
	// range (paper: "the cost for a given working set size increases with
	// the cluster size (due to main memory buffer increases)"), and the
	// cost *per supported stream* increases monotonically from C=2 — the
	// robust form of the paper's "if Improved-bandwidth is being used,
	// the cluster size will always be 2". (The total at the very left end
	// depends on the unstated memory/disk price ratio: the 200→150 disk
	// drop from C=2→3 outweighs memory at any historically plausible
	// ratio; see EXPERIMENTS.md.)
	for i := 1; i < len(ib); i++ {
		if ib[i].C >= 5 && ib[i].Total <= ib[i-1].Total {
			t.Errorf("IB cost not increasing at C=%d", ib[i].C)
		}
		perStreamPrev := float64(ib[i-1].Total) / ib[i-1].MaxStreams
		perStream := float64(ib[i].Total) / ib[i].MaxStreams
		if perStream <= perStreamPrev {
			t.Errorf("IB cost per stream not increasing at C=%d (%.2f <= %.2f)", ib[i].C, perStream, perStreamPrev)
		}
	}

	// SG, NC: cost at C=10 below cost at C=2, and NC <= SG pointwise for
	// C >= 4.
	if sg[len(sg)-1].Total >= sg[0].Total {
		t.Error("SG cost at C=10 should be below C=2")
	}
	if nc[len(nc)-1].Total >= nc[0].Total {
		t.Error("NC cost at C=10 should be below C=2")
	}
	for i := range nc {
		if nc[i].C >= 4 && nc[i].Total > sg[i].Total {
			t.Errorf("NC cost (%v) above SG (%v) at C=%d", nc[i].Total, sg[i].Total, nc[i].C)
		}
	}

	// All curves pay the same disk bill at the same C; differences are
	// memory only.
	for i := range sr {
		if !almostEqual(float64(sr[i].DiskCost), float64(ib[i].DiskCost), 1e-6) {
			t.Errorf("disk cost differs between schemes at C=%d", sr[i].C)
		}
	}
}

// §5 worked example at ~1200 required streams: every dedicated-parity
// scheme can meet the load at working-set-minimum disks; SR's best
// cluster size is small (paper: 4), SG's and NC's large (paper: 10); NC
// is the cheapest of the three; and the cost ordering NC < SG < SR holds.
func TestWorkedExample1200(t *testing.T) {
	s := Figure9()
	designs, err := s.CompareAll(1200, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[analytic.Scheme]Design{}
	for _, d := range designs {
		byScheme[d.Scheme] = d
	}

	srD := byScheme[analytic.StreamingRAID]
	sgD := byScheme[analytic.StaggeredGroup]
	ncD := byScheme[analytic.NonClustered]

	if !srD.FeasibleAtMinDisks || !sgD.FeasibleAtMinDisks || !ncD.FeasibleAtMinDisks {
		t.Error("1200 streams should be feasible at working-set-minimum disks for SR/SG/NC")
	}
	if srD.C < 3 || srD.C > 5 {
		t.Errorf("SR best C = %d, want small (paper: 4)", srD.C)
	}
	if sgD.C < 7 {
		t.Errorf("SG best C = %d, want large (paper: 10)", sgD.C)
	}
	if ncD.C < 6 {
		t.Errorf("NC best C = %d, want large (paper: 10)", ncD.C)
	}
	if !(ncD.Total < sgD.Total && sgD.Total < srD.Total) {
		t.Errorf("cost ordering: NC %v < SG %v < SR %v expected", ncD.Total, sgD.Total, srD.Total)
	}

	// Totals land in the paper's ballpark (it reports $173.4k / $146.6k /
	// $128.6k with unstated prices; with ours they must sit within 15%).
	checks := []struct {
		d     Design
		paper float64
	}{
		{srD, 173400},
		{sgD, 146600},
		{ncD, 128600},
	}
	for _, c := range checks {
		ratio := float64(c.d.Total) / c.paper
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s total %v vs paper $%.0f (ratio %.2f) outside 15%%", c.d.Scheme, c.d.Total, c.paper, ratio)
		}
	}
}

// §5: when bandwidth is scarce the Improved-bandwidth scheme wins, and
// its best cluster size is the smallest allowed.
func TestBandwidthScarceIBWins(t *testing.T) {
	s := Figure9()
	designs, err := s.CompareAll(2200, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	best, err := Cheapest(designs)
	if err != nil {
		t.Fatal(err)
	}
	if best.Scheme != analytic.ImprovedBandwidth {
		for _, d := range designs {
			t.Logf("%s: C=%d $%.0f", d.Scheme, d.C, float64(d.Total))
		}
		t.Fatalf("cheapest at 2200 streams = %s, want Improved-bandwidth", best.Scheme)
	}
	if best.C > 3 {
		t.Errorf("IB best C = %d, want smallest (paper: 2)", best.C)
	}
	// And 2200 streams must exceed what SR gets from working-set disks.
	p, err := s.Evaluate(analytic.StreamingRAID, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxStreams >= 2200 {
		t.Errorf("test premise broken: SR working-set capacity %.0f >= 2200", p.MaxStreams)
	}
}

func TestEvaluateRequiredStreamsRaisesDisks(t *testing.T) {
	s := Figure9()
	base, err := s.Evaluate(analytic.StreamingRAID, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	raised, err := s.Evaluate(analytic.StreamingRAID, 5, base.MaxStreams*1.5)
	if err != nil {
		t.Fatal(err)
	}
	if raised.Disks <= base.Disks {
		t.Fatalf("requiring 1.5x capacity should raise disks: %v <= %v", raised.Disks, base.Disks)
	}
	if !almostEqual(raised.MaxStreams, base.MaxStreams*1.5, 0.5) {
		t.Errorf("raised capacity = %v, want %v", raised.MaxStreams, base.MaxStreams*1.5)
	}
}

func TestEvaluateBuffersSizedForLoad(t *testing.T) {
	s := Figure9()
	full, err := s.Evaluate(analytic.StreamingRAID, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := s.Evaluate(analytic.StreamingRAID, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.BufferedStreams != 1000 {
		t.Errorf("BufferedStreams = %v, want 1000", loaded.BufferedStreams)
	}
	if loaded.BufferTracks >= full.BufferTracks {
		t.Errorf("load-sized buffers (%v) should be below capacity-sized (%v)", loaded.BufferTracks, full.BufferTracks)
	}
	// SR: 2C tracks per stream = 10000 tracks for 1000 streams.
	if !almostEqual(loaded.BufferTracks, 10000, 1e-6) {
		t.Errorf("SR buffers for 1000 streams = %v, want 10000", loaded.BufferTracks)
	}
}

func TestValidateAndErrors(t *testing.T) {
	ok := Figure9()
	if err := ok.Validate(); err != nil {
		t.Fatalf("Figure9 invalid: %v", err)
	}
	bad := ok
	bad.WorkingSet = 0
	if bad.Validate() == nil {
		t.Error("zero working set accepted")
	}
	if _, err := bad.Evaluate(analytic.StreamingRAID, 5, 0); err == nil {
		t.Error("Evaluate on invalid sizing accepted")
	}
	bad = ok
	bad.Prices.MemoryPerMB = -1
	if bad.Validate() == nil {
		t.Error("negative price accepted")
	}
	bad = ok
	bad.K = -1
	if bad.Validate() == nil {
		t.Error("negative K accepted")
	}
	if _, err := ok.Evaluate(analytic.StreamingRAID, 1, 0); err == nil {
		t.Error("C=1 accepted")
	}
	if _, err := ok.Curve(analytic.StreamingRAID, 1, 10); err == nil {
		t.Error("bad curve range accepted")
	}
	if _, err := ok.Curve(analytic.StreamingRAID, 5, 4); err == nil {
		t.Error("inverted curve range accepted")
	}
	if _, err := ok.CheapestDesign(analytic.StreamingRAID, 100, 9, 2); err == nil {
		t.Error("inverted design range accepted")
	}
	if _, err := Cheapest(nil); err == nil {
		t.Error("Cheapest(nil) accepted")
	}
}

// Property: total cost is memory + disk, all non-negative, and raising
// the memory price never lowers the total.
func TestCostProperties(t *testing.T) {
	f := func(cRaw, priceRaw uint8) bool {
		c := int(cRaw%9) + 2
		s := Figure9()
		p1, err := s.Evaluate(analytic.StaggeredGroup, c, 0)
		if err != nil {
			return false
		}
		if p1.MemoryCost < 0 || p1.DiskCost < 0 {
			return false
		}
		if !almostEqual(float64(p1.Total), float64(p1.MemoryCost+p1.DiskCost), 1e-6) {
			return false
		}
		s2 := s
		s2.Prices.MemoryPerMB = s.Prices.MemoryPerMB + units.PerMB(priceRaw)
		p2, err := s2.Evaluate(analytic.StaggeredGroup, c, 0)
		if err != nil {
			return false
		}
		return p2.Total >= p1.Total-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: CheapestDesign returns the minimum over the searched range.
func TestCheapestDesignIsMinimum(t *testing.T) {
	s := Figure9()
	d, err := s.CheapestDesign(analytic.NonClustered, 1200, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for c := 2; c <= 10; c++ {
		p, err := s.Evaluate(analytic.NonClustered, c, 1200)
		if err != nil {
			t.Fatal(err)
		}
		if p.Total < d.Total-1e-9 {
			t.Errorf("C=%d total %v below claimed minimum %v", c, p.Total, d.Total)
		}
	}
}
