// Package cost implements the paper's system-sizing cost model (§5,
// equations (16)-(19)): given a working set size W (how much real data
// must live on disk), a cluster size C, and unit prices for memory (c_b)
// and disk (c_d), it computes the number of disks D(W,C) needed to hold
// the working set, the stream capacity at that size, the buffer-memory
// requirement, and the total dollar cost per scheme, i.e. the curves of
// Figure 9(a) and 9(b) and the worked sizing example (≈1200 required
// streams ⇒ SR at C=4, SG at C=10, NC at C=10; IB when bandwidth is
// scarce).
//
// The paper does not state the prices it used for Figure 9; this package
// defaults to c_b = 100 $/MB of RAM and c_d = 1 $/MB of disk
// (1995-plausible), and EXPERIMENTS.md records the sensitivity. All
// quantities here are real-valued (the paper's Figure 9 uses fractional
// D(W,C) such as 111.1 disks).
package cost

import (
	"errors"
	"fmt"
	"math"

	"ftmm/internal/analytic"
	"ftmm/internal/diskmodel"
	"ftmm/internal/units"
)

// Prices carries the two unit prices of the cost model.
type Prices struct {
	// MemoryPerMB is c_b, the cost of main memory in $/MB.
	MemoryPerMB units.PerMB
	// DiskPerMB is c_d, the cost of disk storage in $/MB.
	DiskPerMB units.PerMB
}

// DefaultPrices returns the 1995-plausible prices this reproduction uses
// for Figure 9: c_b = 100 $/MB, c_d = 1 $/MB.
func DefaultPrices() Prices {
	return Prices{MemoryPerMB: 100, DiskPerMB: 1}
}

// Sizing is one sizing problem: a working set that must fit on disk, a
// reserve depth, and prices.
type Sizing struct {
	// Disk holds the drive parameters; Capacity is s_d.
	Disk diskmodel.Params
	// ObjectRate is b0.
	ObjectRate units.Rate
	// WorkingSet is W, the amount of real data to store.
	WorkingSet units.ByteSize
	// K is the reserve depth (buffer servers / reserved bandwidth); the
	// paper's Figure 9 uses K = 5.
	K int
	// Prices are the unit costs c_b and c_d.
	Prices Prices
}

// Figure9 returns the paper's Figure 9 sizing problem: W = 100,000 MB on
// 1000 MB disks, Table 1 drive and object parameters, K = 5.
func Figure9() Sizing {
	return Sizing{
		Disk:       diskmodel.Table1(),
		ObjectRate: units.MPEG1,
		WorkingSet: 100_000 * units.MB,
		K:          5,
		Prices:     DefaultPrices(),
	}
}

// Validate reports whether the sizing problem is well-formed.
func (s Sizing) Validate() error {
	if err := s.Disk.Validate(); err != nil {
		return err
	}
	switch {
	case s.Disk.Capacity <= 0:
		return errors.New("cost: disk capacity (s_d) must be positive")
	case s.ObjectRate <= 0:
		return errors.New("cost: object rate must be positive")
	case s.WorkingSet <= 0:
		return errors.New("cost: working set must be positive")
	case s.K < 0:
		return errors.New("cost: reserve depth K must be >= 0")
	case s.Prices.MemoryPerMB < 0 || s.Prices.DiskPerMB < 0:
		return errors.New("cost: negative unit price")
	}
	return nil
}

// DisksForWorkingSet returns D(W,C): the (real-valued) number of disks
// needed to hold the working set when a 1/C fraction of the raw space
// goes to parity — W/s_d · C/(C−1) for every scheme (IB intermixes parity
// but stores the same amount of it).
func (s Sizing) DisksForWorkingSet(c int) float64 {
	w := s.WorkingSet.Megabytes()
	sd := s.Disk.Capacity.Megabytes()
	return w / sd * float64(c) / float64(c-1)
}

// DisksForStreams returns the number of disks a scheme needs to support n
// streams at cluster size c, inverting equations (8)-(11). The IB result
// includes the K reserved disks.
func (s Sizing) DisksForStreams(scheme analytic.Scheme, c int, n float64) (float64, error) {
	if n <= 0 {
		return 0, nil
	}
	perDisk, err := s.perDisk(scheme, c)
	if err != nil {
		return 0, err
	}
	if perDisk <= 0 {
		return 0, fmt.Errorf("cost: %s at C=%d cannot support any streams", scheme, c)
	}
	if scheme == analytic.ImprovedBandwidth {
		return n/perDisk + float64(s.K), nil
	}
	return n / perDisk * float64(c) / float64(c-1), nil
}

// perDisk returns the scheme's per-data-disk stream bound at cluster
// size c.
func (s Sizing) perDisk(scheme analytic.Scheme, c int) (float64, error) {
	cfg := analytic.Config{Disk: s.Disk, ObjectRate: s.ObjectRate, D: c, C: c, K: 0}
	k, kPrime := cfg.ReadGroup(scheme)
	return s.Disk.StreamsPerDisk(k, kPrime, s.ObjectRate)
}

// Point is one evaluated design: a (scheme, C) pair sized to D disks.
type Point struct {
	Scheme analytic.Scheme
	C      int
	// Disks is D, real-valued as in the paper's Figure 9.
	Disks float64
	// MaxStreams is N_p at this D.
	MaxStreams float64
	// BufferedStreams is the stream count the memory was sized for:
	// MaxStreams when sizing a configuration at full capacity (equations
	// (16)-(19), Figure 9(a)) or the required load when sizing for a
	// target (§5's worked example).
	BufferedStreams float64
	// BufferTracks is BF_p at BufferedStreams.
	BufferTracks float64
	// MemoryCost is c_b · BF_p · B.
	MemoryCost units.Dollars
	// DiskCost is c_d · D · s_d.
	DiskCost units.Dollars
	// Total is the equation (16)-(19) system cost.
	Total units.Dollars
}

// Evaluate computes the cost point for one scheme and cluster size with D
// fixed at the minimum needed to hold the working set AND support
// requiredStreams. With requiredStreams = 0 the configuration is sized
// for the working set alone and memory for its full stream capacity, as
// in Figure 9 and equations (16)-(19); with requiredStreams > 0 memory is
// sized for that load, as in §5's worked example.
func (s Sizing) Evaluate(scheme analytic.Scheme, c int, requiredStreams float64) (Point, error) {
	if err := s.Validate(); err != nil {
		return Point{}, err
	}
	if c < 2 {
		return Point{}, fmt.Errorf("cost: parity group size C=%d must be >= 2", c)
	}
	d := s.DisksForWorkingSet(c)
	if requiredStreams > 0 {
		ds, err := s.DisksForStreams(scheme, c, requiredStreams)
		if err != nil {
			return Point{}, err
		}
		d = math.Max(d, ds)
	}
	return s.evaluateAt(scheme, c, d, requiredStreams)
}

func (s Sizing) evaluateAt(scheme analytic.Scheme, c int, d, loadStreams float64) (Point, error) {
	perDisk, err := s.perDisk(scheme, c)
	if err != nil {
		return Point{}, err
	}
	dataDisks := d * float64(c-1) / float64(c)
	if scheme == analytic.ImprovedBandwidth {
		dataDisks = d - float64(s.K)
		if dataDisks < 0 {
			dataDisks = 0
		}
	}
	n := perDisk * dataDisks

	// Memory is sized for the load: the full capacity N for Figure 9
	// style full-capacity costing, or the required stream count.
	nBuf := n
	if loadStreams > 0 && loadStreams < n {
		nBuf = loadStreams
	}

	// Buffer formulas (12)-(15) evaluated at the real-valued load. The NC
	// degraded-mode term divides by the number of clusters, D'/C with
	// D' = (C-1)/C·D.
	C := float64(c)
	var bf float64
	switch scheme {
	case analytic.StreamingRAID:
		bf = 2 * C * nBuf
	case analytic.StaggeredGroup:
		bf = nBuf / (C - 1) * C * (C + 1) / 2
	case analytic.NonClustered:
		bfSG := nBuf / (C - 1) * C * (C + 1) / 2
		clusters := d * (C - 1) / C / C
		if clusters > 0 {
			bf = 2*nBuf + bfSG/clusters*float64(s.K)
		} else {
			bf = 2 * nBuf
		}
	case analytic.ImprovedBandwidth:
		bf = 2 * (C - 1) * nBuf
	default:
		return Point{}, fmt.Errorf("cost: unknown scheme %v", scheme)
	}

	memMB := bf * s.Disk.TrackSize.Megabytes()
	diskMB := d * s.Disk.Capacity.Megabytes()
	mem := units.Dollars(float64(s.Prices.MemoryPerMB) * memMB)
	dsk := units.Dollars(float64(s.Prices.DiskPerMB) * diskMB)
	return Point{
		Scheme:          scheme,
		C:               c,
		Disks:           d,
		MaxStreams:      n,
		BufferedStreams: nBuf,
		BufferTracks:    bf,
		MemoryCost:      mem,
		DiskCost:        dsk,
		Total:           mem + dsk,
	}, nil
}

// Curve evaluates one scheme over a range of cluster sizes with D =
// D(W,C), producing one series of Figure 9(a) (Total vs C) and 9(b)
// (MaxStreams vs C).
func (s Sizing) Curve(scheme analytic.Scheme, cMin, cMax int) ([]Point, error) {
	if cMin < 2 || cMax < cMin {
		return nil, fmt.Errorf("cost: bad cluster range [%d,%d]", cMin, cMax)
	}
	out := make([]Point, 0, cMax-cMin+1)
	for c := cMin; c <= cMax; c++ {
		p, err := s.Evaluate(scheme, c, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Design is the outcome of sizing one scheme for a required stream count:
// the cheapest feasible cluster size and its cost point.
type Design struct {
	Point
	// Feasible is false when no cluster size in the searched range meets
	// the stream requirement at the working-set disk count; in that case
	// Point holds the evaluated design with D increased beyond D(W,C) to
	// meet the requirement (buying bandwidth with extra disks).
	FeasibleAtMinDisks bool
}

// CheapestDesign searches cluster sizes [cMin, cMax] for the least total
// cost meeting requiredStreams. Designs that need extra disks beyond
// D(W,C) are allowed but marked.
func (s Sizing) CheapestDesign(scheme analytic.Scheme, requiredStreams float64, cMin, cMax int) (Design, error) {
	if cMin < 2 || cMax < cMin {
		return Design{}, fmt.Errorf("cost: bad cluster range [%d,%d]", cMin, cMax)
	}
	var best Design
	found := false
	for c := cMin; c <= cMax; c++ {
		p, err := s.Evaluate(scheme, c, requiredStreams)
		if err != nil {
			return Design{}, err
		}
		feasible := p.Disks <= s.DisksForWorkingSet(c)+1e-9
		if !found || p.Total < best.Total {
			best = Design{Point: p, FeasibleAtMinDisks: feasible}
			found = true
		}
	}
	if !found {
		return Design{}, errors.New("cost: no design found")
	}
	return best, nil
}

// CompareAll sizes every scheme for requiredStreams and returns the
// per-scheme best designs in the paper's scheme order.
func (s Sizing) CompareAll(requiredStreams float64, cMin, cMax int) ([]Design, error) {
	out := make([]Design, 0, 4)
	for _, sc := range analytic.Schemes() {
		d, err := s.CheapestDesign(sc, requiredStreams, cMin, cMax)
		if err != nil {
			return nil, fmt.Errorf("cost: %s: %w", sc, err)
		}
		out = append(out, d)
	}
	return out, nil
}

// Cheapest returns the overall winner among CompareAll results.
func Cheapest(designs []Design) (Design, error) {
	if len(designs) == 0 {
		return Design{}, errors.New("cost: no designs")
	}
	best := designs[0]
	for _, d := range designs[1:] {
		if d.Total < best.Total {
			best = d
		}
	}
	return best, nil
}
