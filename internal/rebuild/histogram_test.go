package rebuild

import (
	"fmt"
	"testing"

	"ftmm/internal/disk"
	"ftmm/internal/diskmodel"
	"ftmm/internal/layout"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// buildFarm places nObjects objects of groupsEach parity groups on a
// fresh farm with the given layout constructor.
func buildFarm(t *testing.T, d, clusterSize int, mkLayout func(*disk.Farm) (*layout.Layout, error),
	nObjects, groupsEach int) (*disk.Farm, *layout.Layout) {
	t.Helper()
	p := diskmodel.Table1()
	p.Capacity = units.ByteSize(nObjects*groupsEach*8) * p.TrackSize
	farm, err := disk.NewFarm(d, clusterSize, p)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := mkLayout(farm)
	if err != nil {
		t.Fatal(err)
	}
	trackSize := int(p.TrackSize)
	for i := 0; i < nObjects; i++ {
		id := fmt.Sprintf("obj%d", i)
		tracks := groupsEach * lay.GroupWidth()
		obj, err := lay.AddObject(id, tracks, i%lay.Clusters(), units.MPEG1)
		if err != nil {
			t.Fatal(err)
		}
		if err := layout.WriteObject(farm, obj, workload.SyntheticContent(id, tracks*trackSize)); err != nil {
			t.Fatal(err)
		}
	}
	return farm, lay
}

// rebuildHistogram fails, replaces and fully rebuilds the drive,
// returning the per-drive read histogram.
func rebuildHistogram(t *testing.T, farm *disk.Farm, lay *layout.Layout, drive int) []int {
	t.Helper()
	failAndReplace(t, farm, drive)
	r, err := New(farm, lay, drive)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(64, 10_000); err != nil {
		t.Fatal(err)
	}
	if err := CheckDrive(farm, lay, drive); err != nil {
		t.Fatalf("parity inconsistent after rebuild: %v", err)
	}
	return r.ReadsByDrive()
}

// Satellite: the clustered placements concentrate the whole rebuild on
// exactly C-1 drives, while declustered parity spreads it uniformly
// (within 10%) over every survivor of the declustering group.
//
// SR, SG and NC all share the DedicatedParity placement, so one
// histogram covers all three: rebuilding a drive reads only its C-1
// cluster mates, each equally. IB's rotation spreads sources over the
// failed drive's cluster and its two parity neighbours — still a
// cluster-confined hotspot, asserted separately below.
func TestRebuildLoadConcentratedVsUniform(t *testing.T) {
	t.Run("dedicated-parity-exactly-C-1", func(t *testing.T) {
		// 20 drives, C=5: SR/SG/NC placement.
		farm, lay := buildFarm(t, 20, 5,
			func(f *disk.Farm) (*layout.Layout, error) { return layout.ForFarm(f, layout.DedicatedParity) },
			4, 10)
		hist := rebuildHistogram(t, farm, lay, 0)
		var loaded []int
		for d, n := range hist {
			if n > 0 {
				loaded = append(loaded, d)
			}
		}
		if len(loaded) != lay.ClusterSize()-1 {
			t.Fatalf("rebuild load on %d drives %v, want exactly C-1 = %d", len(loaded), loaded, lay.ClusterSize()-1)
		}
		for _, d := range loaded {
			if d/lay.ClusterSize() != 0 {
				t.Errorf("drive %d outside the failed drive's cluster carried rebuild load", d)
			}
			if hist[d] != hist[loaded[0]] {
				t.Errorf("unequal load within the cluster: %v", hist)
			}
		}
	})

	t.Run("intermixed-parity-cluster-confined", func(t *testing.T) {
		// 20 drives, C=5, 4 clusters: IB placement. Rotation pulls in the
		// two neighbouring clusters (data mates + parity homes), but the
		// far cluster must stay idle.
		farm, lay := buildFarm(t, 20, 5,
			func(f *disk.Farm) (*layout.Layout, error) { return layout.ForFarm(f, layout.IntermixedParity) },
			4, 12)
		hist := rebuildHistogram(t, farm, lay, 0)
		c := lay.ClusterSize()
		for d, n := range hist {
			if n > 0 && d/c == 2 {
				t.Errorf("drive %d in a non-adjacent cluster served %d rebuild reads", d, n)
			}
		}
	})

	t.Run("declustered-uniform-within-10pct", func(t *testing.T) {
		// One declustering group of G=9, C=3 on the (9,3) Steiner design;
		// 24 groups per object cycle the 12 blocks evenly, so every
		// survivor pair shares the failed drive's load λ-equally.
		farm, lay := buildFarm(t, 9, 9,
			func(f *disk.Farm) (*layout.Layout, error) { return layout.ForFarmDeclustered(f, 3) },
			2, 24)
		hist := rebuildHistogram(t, farm, lay, 0)
		if hist[0] != 0 {
			t.Errorf("rebuilt drive served %d of its own rebuild reads", hist[0])
		}
		total, nonzero := 0, 0
		for d := 1; d < len(hist); d++ {
			if hist[d] == 0 {
				t.Fatalf("survivor %d served no rebuild reads; histogram %v", d, hist)
			}
			total += hist[d]
			nonzero++
		}
		mean := float64(total) / float64(nonzero)
		for d := 1; d < len(hist); d++ {
			if dev := float64(hist[d]) - mean; dev > 0.1*mean || dev < -0.1*mean {
				t.Errorf("survivor %d load %d deviates >10%% from mean %.1f; histogram %v", d, hist[d], mean, hist)
			}
		}
	})
}

// Acceptance: under a per-drive spare-read budget, the declustered
// rebuild window is at most half Streaming RAID's at equal farm size —
// the analytic (C-1)/(G-1) factor made operational. Both farms hold 18
// drives and the same object set; only the placement differs.
func TestDeclusteredRebuildWindowHalvesSR(t *testing.T) {
	const budget = 2
	window := func(mk func(*disk.Farm) (*layout.Layout, error), clusterSize int) int {
		farm, lay := buildFarm(t, 18, clusterSize, mk, 6, 12)
		failAndReplace(t, farm, 0)
		r, err := New(farm, lay, 0)
		if err != nil {
			t.Fatal(err)
		}
		cycles, err := r.RunPerDrive(budget, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckAll(farm, lay); err != nil {
			t.Fatalf("parity inconsistent after rebuild: %v", err)
		}
		return cycles
	}
	sr := window(func(f *disk.Farm) (*layout.Layout, error) { return layout.ForFarm(f, layout.DedicatedParity) }, 3)
	dc := window(func(f *disk.Farm) (*layout.Layout, error) { return layout.ForFarmDeclustered(f, 3) }, 9)
	if sr == 0 || dc == 0 {
		t.Fatalf("degenerate windows: sr=%d dc=%d", sr, dc)
	}
	if 2*dc > sr {
		t.Errorf("declustered window %d cycles > 0.5 x SR window %d cycles", dc, sr)
	}
}

// The per-drive histogram also covers the aggregate-budget path used by
// the four existing schemes: Reads() must equal the histogram total.
func TestReadsByDriveMatchesAggregate(t *testing.T) {
	farm, lay, _ := testRig(t)
	failAndReplace(t, farm, 0)
	r, err := New(farm, lay, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(8, 1000); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range r.ReadsByDrive() {
		total += n
	}
	if total != r.Reads() {
		t.Errorf("histogram total %d != aggregate reads %d", total, r.Reads())
	}
	if r.Reads() != r.Restored()*r.ReadsPerTrack() {
		t.Errorf("reads %d != restored %d x C-1 %d", r.Reads(), r.Restored(), r.ReadsPerTrack())
	}
}
