package rebuild

import (
	"bytes"
	"fmt"

	"ftmm/internal/disk"
	"ftmm/internal/layout"
	"ftmm/internal/parity"
)

// CheckDrive verifies parity consistency for every parity group that has
// a member (data or parity) on the given drive. Groups with any failed
// member drive are skipped — their parity equation cannot be audited
// until repair. For a fully-operational group the check is strict:
//
//   - every member track must be readable, so an ErrEmptyTrack on a
//     replaced-and-supposedly-rebuilt drive is itself a violation (a
//     rebuild that skipped a write leaves exactly this hole), and
//   - the XOR of the data tracks must equal the parity track byte for
//     byte.
//
// The strictness assumes every placed object was materialized with
// layout.WriteObject (true for scenario runs and the chaos harness);
// placed-but-unwritten objects would report false positives.
func CheckDrive(farm *disk.Farm, lay *layout.Layout, driveID int) error {
	if farm == nil || lay == nil {
		return fmt.Errorf("rebuild: nil farm or layout")
	}
	if _, err := farm.Drive(driveID); err != nil {
		return err
	}
	for _, obj := range lay.AllObjects() {
		for gi := range obj.Groups {
			g := &obj.Groups[gi]
			if !groupTouches(g, driveID) {
				continue
			}
			if err := checkGroup(farm, obj, g); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckAll verifies parity consistency for every parity group of every
// placed object, with the same skip rule (groups with a failed member)
// and strictness as CheckDrive.
func CheckAll(farm *disk.Farm, lay *layout.Layout) error {
	if farm == nil || lay == nil {
		return fmt.Errorf("rebuild: nil farm or layout")
	}
	for _, obj := range lay.AllObjects() {
		for gi := range obj.Groups {
			if err := checkGroup(farm, obj, &obj.Groups[gi]); err != nil {
				return err
			}
		}
	}
	return nil
}

// groupTouches reports whether the group stores anything on the drive.
func groupTouches(g *layout.Group, driveID int) bool {
	if g.Parity.Disk == driveID {
		return true
	}
	for _, loc := range g.Data {
		if loc.Disk == driveID {
			return true
		}
	}
	return false
}

// checkGroup audits one parity group, skipping it when any member drive
// is not operational.
func checkGroup(farm *disk.Farm, obj *layout.Object, g *layout.Group) error {
	locs := make([]layout.Location, 0, len(g.Data)+1)
	locs = append(locs, g.Data...)
	locs = append(locs, g.Parity)
	for _, loc := range locs {
		drv, err := farm.Drive(loc.Disk)
		if err != nil {
			return err
		}
		if drv.State() != disk.Operational {
			return nil // unauditable until the member is repaired
		}
	}
	blocks := make([][]byte, 0, len(g.Data))
	for off, loc := range g.Data {
		drv, _ := farm.Drive(loc.Disk)
		blk, err := drv.ReadTrack(loc.Track)
		if err != nil {
			return fmt.Errorf("rebuild: %s group %d data[%d] on drive %d unreadable in fully-operational group: %w",
				obj.ID, g.Index, off, loc.Disk, err)
		}
		blocks = append(blocks, blk)
	}
	pdrv, _ := farm.Drive(g.Parity.Disk)
	pblk, err := pdrv.ReadTrack(g.Parity.Track)
	if err != nil {
		return fmt.Errorf("rebuild: %s group %d parity on drive %d unreadable in fully-operational group: %w",
			obj.ID, g.Index, g.Parity.Disk, err)
	}
	want, err := parity.Encode(blocks)
	if err != nil {
		return err
	}
	if !bytes.Equal(want, pblk) {
		return fmt.Errorf("rebuild: %s group %d parity on drive %d track %d does not match XOR of its data tracks",
			obj.ID, g.Index, g.Parity.Disk, g.Parity.Track)
	}
	return nil
}
