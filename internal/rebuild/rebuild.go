// Package rebuild implements the paper's third operating mode — rebuild
// mode, which §1 defines ("the disks are still down, but the process of
// rebuilding the missing information on spare disks is in progress") and
// the paper then defers "due to lack of space". It restores a replaced
// drive's contents *online*, a bounded number of tracks per scheduling
// cycle, using only spare disk bandwidth, so active streams keep their
// guarantees while redundancy is restored.
//
// Restoring one data track reads the C-2 surviving data tracks plus the
// parity track of its group (C-1 reads) and XORs them; restoring a parity
// track reads the group's C-1 data tracks and re-encodes. The rebuild
// duration in cycles is therefore ceil(tracks·(C-1)/readBudget), which
// the paper's MTTR parameter summarizes — this package lets experiments
// measure it instead of assuming it.
package rebuild

import (
	"errors"
	"fmt"

	"ftmm/internal/disk"
	"ftmm/internal/layout"
	"ftmm/internal/parity"
)

// item is one track to restore.
type item struct {
	obj *layout.Object
	// group index within the object.
	group int
	// dataOffset is the in-group offset of the lost data track, or -1
	// when the lost track is the group's parity.
	dataOffset int
}

// Rebuilder restores one replaced drive incrementally.
type Rebuilder struct {
	farm  *disk.Farm
	lay   *layout.Layout
	drive int

	queue    []item
	done     int
	restored int
	reads    int
	// readsBy[d] counts the track reads served by drive d so far — the
	// per-drive rebuild-read histogram. Under the clustered placements
	// the load lands on exactly C-1 drives; under declustered parity it
	// spreads uniformly over the failed drive's G-1 group mates.
	readsBy []int
}

// New plans the rebuild of the given drive, which must already be
// replaced (operational and blank). The plan covers every placed
// object's tracks that lived on the drive — data and parity.
func New(farm *disk.Farm, lay *layout.Layout, driveID int) (*Rebuilder, error) {
	if farm == nil || lay == nil {
		return nil, errors.New("rebuild: nil farm or layout")
	}
	drv, err := farm.Drive(driveID)
	if err != nil {
		return nil, err
	}
	if drv.State() != disk.Operational {
		return nil, fmt.Errorf("rebuild: drive %d must be replaced before rebuild (state %v)", driveID, drv.State())
	}
	r := &Rebuilder{farm: farm, lay: lay, drive: driveID, readsBy: make([]int, farm.Size())}
	for _, obj := range lay.AllObjects() {
		for gi := range obj.Groups {
			g := &obj.Groups[gi]
			for off, loc := range g.Data {
				if loc.Disk == driveID {
					r.queue = append(r.queue, item{obj: obj, group: gi, dataOffset: off})
				}
			}
			if g.Parity.Disk == driveID {
				r.queue = append(r.queue, item{obj: obj, group: gi, dataOffset: -1})
			}
		}
	}
	return r, nil
}

// Remaining returns the tracks still to restore.
func (r *Rebuilder) Remaining() int { return len(r.queue) - r.done }

// Restored returns the tracks restored so far.
func (r *Rebuilder) Restored() int { return r.restored }

// Reads returns the surviving-drive track reads consumed so far.
func (r *Rebuilder) Reads() int { return r.reads }

// ReadsByDrive returns the per-drive rebuild-read histogram: entry d is
// how many track reads drive d has served for this rebuild so far.
func (r *Rebuilder) ReadsByDrive() []int {
	return append([]int(nil), r.readsBy...)
}

// Done reports completion.
func (r *Rebuilder) Done() bool { return r.Remaining() == 0 }

// ReadsPerTrack returns the surviving reads needed per restored track:
// C-1, the restored track's parity-group mates. Note C is the parity
// group size, not the declustering group size — under declustered
// parity the farm's "cluster" is the G-drive declustering group, but a
// track restore still only reads its C-1 block mates.
func (r *Rebuilder) ReadsPerTrack() int { return r.lay.GroupWidth() }

// CyclesNeeded estimates the remaining rebuild duration given a spare
// read budget per cycle.
func (r *Rebuilder) CyclesNeeded(readBudget int) int {
	if readBudget < r.ReadsPerTrack() {
		return -1 // cannot make progress
	}
	perCycle := readBudget / r.ReadsPerTrack()
	return (r.Remaining() + perCycle - 1) / perCycle
}

// Step restores as many tracks as the given read budget allows this
// cycle and returns the number restored. A budget below C-1 restores
// nothing (one track needs a whole group's worth of reads within the
// cycle, per Observation 2's all-at-once requirement).
func (r *Rebuilder) Step(readBudget int) (int, error) {
	restored := 0
	for r.done < len(r.queue) && readBudget >= r.ReadsPerTrack() {
		if err := r.restore(r.queue[r.done]); err != nil {
			return restored, err
		}
		readBudget -= r.ReadsPerTrack()
		r.done++
		r.restored++
		restored++
	}
	return restored, nil
}

// sourceDrives appends the drives a restore of it would read from: the
// group's other data drives plus parity for a data track, or every data
// drive for a parity track.
func (r *Rebuilder) sourceDrives(dst []int, it item) []int {
	g := &it.obj.Groups[it.group]
	for j, loc := range g.Data {
		if j != it.dataOffset {
			dst = append(dst, loc.Disk)
		}
	}
	if it.dataOffset >= 0 {
		dst = append(dst, g.Parity.Disk)
	}
	return dst
}

// StepPerDrive restores tracks for one cycle under a per-drive spare
// read budget: every surviving drive serves at most budget track reads
// this cycle. Unlike Step's aggregate budget, this models the real
// rebuild bottleneck — the busiest survivor — and is what separates the
// clustered schemes (whole rebuild through C-1 drives) from declustered
// parity (load spread over G-1 drives, window shrunk by (C-1)/(G-1)).
// Tracks whose sources are saturated are skipped this cycle and retried
// the next, so declustered rebuilds fill every drive's budget.
func (r *Rebuilder) StepPerDrive(budget int) (int, error) {
	if budget < 1 {
		return 0, nil
	}
	used := make(map[int]int)
	var srcs []int
	restored := 0
	pending := r.queue[r.done:]
	kept := 0
	for i := 0; i < len(pending); i++ {
		it := pending[i]
		srcs = r.sourceDrives(srcs[:0], it)
		feasible := true
		for _, d := range srcs {
			if used[d]+1 > budget {
				feasible = false
				break
			}
		}
		if !feasible {
			pending[kept] = it
			kept++
			continue
		}
		if err := r.restore(it); err != nil {
			// Preserve the unprocessed tail before reporting.
			kept += copy(pending[kept:], pending[i+1:])
			r.queue = r.queue[:r.done+kept]
			return restored, err
		}
		for _, d := range srcs {
			used[d]++
		}
		r.restored++
		restored++
	}
	r.queue = r.queue[:r.done+kept]
	return restored, nil
}

// RunPerDrive drives StepPerDrive until done and returns the rebuild
// window in cycles.
func (r *Rebuilder) RunPerDrive(budget, maxCycles int) (int, error) {
	for cycles := 0; cycles < maxCycles; cycles++ {
		if r.Done() {
			return cycles, nil
		}
		n, err := r.StepPerDrive(budget)
		if err != nil {
			return cycles, err
		}
		if n == 0 {
			return cycles, fmt.Errorf("rebuild: no progress with per-drive budget %d", budget)
		}
	}
	if !r.Done() {
		return maxCycles, fmt.Errorf("rebuild: incomplete after %d cycles (%d tracks left)", maxCycles, r.Remaining())
	}
	return maxCycles, nil
}

// Run drives Step until done, returning the cycles consumed.
func (r *Rebuilder) Run(readBudget, maxCycles int) (int, error) {
	for cycles := 0; cycles < maxCycles; cycles++ {
		if r.Done() {
			return cycles, nil
		}
		n, err := r.Step(readBudget)
		if err != nil {
			return cycles, err
		}
		if n == 0 {
			return cycles, fmt.Errorf("rebuild: no progress with budget %d (need >= %d)", readBudget, r.ReadsPerTrack())
		}
	}
	if !r.Done() {
		return maxCycles, fmt.Errorf("rebuild: incomplete after %d cycles (%d tracks left)", maxCycles, r.Remaining())
	}
	return maxCycles, nil
}

// restore rebuilds one track onto the replacement drive.
func (r *Rebuilder) restore(it item) error {
	g := &it.obj.Groups[it.group]
	drv, err := r.farm.Drive(r.drive)
	if err != nil {
		return err
	}
	if it.dataOffset >= 0 {
		survivors := make([][]byte, 0, len(g.Data))
		for j, loc := range g.Data {
			if j == it.dataOffset {
				continue
			}
			blk, err := r.readTrack(loc)
			if err != nil {
				return fmt.Errorf("rebuild: %s group %d: %w", it.obj.ID, it.group, err)
			}
			survivors = append(survivors, blk)
		}
		pblk, err := r.readTrack(g.Parity)
		if err != nil {
			return fmt.Errorf("rebuild: %s group %d parity: %w", it.obj.ID, it.group, err)
		}
		survivors = append(survivors, pblk)
		rec, err := parity.Reconstruct(survivors)
		if err != nil {
			return err
		}
		return drv.WriteTrack(g.Data[it.dataOffset].Track, rec)
	}
	// Parity track: re-encode from the group's data.
	blocks := make([][]byte, 0, len(g.Data))
	for _, loc := range g.Data {
		blk, err := r.readTrack(loc)
		if err != nil {
			return fmt.Errorf("rebuild: %s group %d: %w", it.obj.ID, it.group, err)
		}
		blocks = append(blocks, blk)
	}
	p, err := parity.Encode(blocks)
	if err != nil {
		return err
	}
	return drv.WriteTrack(g.Parity.Track, p)
}

// readTrack reads one surviving track, charging the read to the serving
// drive's histogram entry.
func (r *Rebuilder) readTrack(loc layout.Location) ([]byte, error) {
	drv, err := r.farm.Drive(loc.Disk)
	if err != nil {
		return nil, err
	}
	blk, err := drv.ReadTrack(loc.Track)
	if err != nil {
		return nil, err
	}
	r.reads++
	r.readsBy[loc.Disk]++
	return blk, nil
}
