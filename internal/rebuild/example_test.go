package rebuild_test

import (
	"fmt"

	"ftmm/internal/disk"
	"ftmm/internal/diskmodel"
	"ftmm/internal/layout"
	"ftmm/internal/rebuild"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// Restore a replaced drive online, two tracks per cycle.
func ExampleRebuilder() {
	p := diskmodel.Table1()
	p.Capacity = 60 * p.TrackSize
	farm, _ := disk.NewFarm(10, 5, p)
	lay, _ := layout.ForFarm(farm, layout.DedicatedParity)
	obj, _ := lay.AddObject("movie", 16, 0, units.MPEG1)
	content := workload.SyntheticContent("movie", 16*int(p.TrackSize))
	if err := layout.WriteObject(farm, obj, content); err != nil {
		panic(err)
	}

	drv, _ := farm.Drive(0)
	_ = drv.Fail()
	_ = drv.Replace()

	r, err := rebuild.New(farm, lay, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tracks to restore: %d\n", r.Remaining())
	cycles, err := r.Run(8, 1000) // 8 spare reads per cycle = 2 tracks
	if err != nil {
		panic(err)
	}
	fmt.Printf("restored in %d cycles\n", cycles)
	// Output:
	// tracks to restore: 2
	// restored in 1 cycles
}
