package rebuild

import (
	"bytes"
	"testing"

	"ftmm/internal/disk"
	"ftmm/internal/diskmodel"
	"ftmm/internal/layout"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// rig: 10 drives x 60 tracks, C=5, two 12-track objects.
func testRig(t *testing.T) (*disk.Farm, *layout.Layout, map[string][]byte) {
	t.Helper()
	p := diskmodel.Table1()
	p.Capacity = 60 * p.TrackSize
	farm, err := disk.NewFarm(10, 5, p)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := layout.ForFarm(farm, layout.DedicatedParity)
	if err != nil {
		t.Fatal(err)
	}
	content := map[string][]byte{}
	trackSize := int(p.TrackSize)
	for i, id := range []string{"X", "Y"} {
		c := workload.SyntheticContent(id, 12*trackSize)
		content[id] = c
		obj, err := lay.AddObject(id, 12, i, units.MPEG1)
		if err != nil {
			t.Fatal(err)
		}
		if err := layout.WriteObject(farm, obj, c); err != nil {
			t.Fatal(err)
		}
	}
	return farm, lay, content
}

func failAndReplace(t *testing.T, farm *disk.Farm, id int) {
	t.Helper()
	drv, err := farm.Drive(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := drv.Fail(); err != nil {
		t.Fatal(err)
	}
	if err := drv.Replace(); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	farm, lay, _ := testRig(t)
	if _, err := New(nil, lay, 0); err == nil {
		t.Error("nil farm accepted")
	}
	if _, err := New(farm, nil, 0); err == nil {
		t.Error("nil layout accepted")
	}
	if _, err := New(farm, lay, 99); err == nil {
		t.Error("bad drive accepted")
	}
	drv, _ := farm.Drive(0)
	if err := drv.Fail(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(farm, lay, 0); err == nil {
		t.Error("failed (unreplaced) drive accepted")
	}
}

func TestPlanSize(t *testing.T) {
	farm, lay, _ := testRig(t)
	// Drive 0 holds the first data track of each cluster-0 group:
	// X groups 0 and 2 (start cluster 0), Y groups 1 (start cluster 1 →
	// group 1 wraps to cluster 0) ... count explicitly instead.
	failAndReplace(t, farm, 0)
	r, err := New(farm, lay, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, obj := range lay.AllObjects() {
		for gi := range obj.Groups {
			g := &obj.Groups[gi]
			for _, loc := range g.Data {
				if loc.Disk == 0 {
					want++
				}
			}
			if g.Parity.Disk == 0 {
				want++
			}
		}
	}
	if r.Remaining() != want || want == 0 {
		t.Fatalf("plan = %d items, want %d (nonzero)", r.Remaining(), want)
	}
	if r.ReadsPerTrack() != 4 {
		t.Fatalf("reads per track = %d", r.ReadsPerTrack())
	}
}

func TestIncrementalRebuildRestoresExactBytes(t *testing.T) {
	for _, victim := range []int{0, 4} { // a data drive and a parity drive
		farm, lay, content := testRig(t)
		failAndReplace(t, farm, victim)
		r, err := New(farm, lay, victim)
		if err != nil {
			t.Fatal(err)
		}
		total := r.Remaining()
		// Budget of 8 reads per cycle restores 2 tracks per cycle.
		cycles := 0
		for !r.Done() {
			n, err := r.Step(8)
			if err != nil {
				t.Fatal(err)
			}
			if n != 2 && !r.Done() {
				t.Fatalf("restored %d per cycle, want 2", n)
			}
			cycles++
			if cycles > 100 {
				t.Fatal("rebuild not converging")
			}
		}
		if r.Restored() != total {
			t.Fatalf("restored %d of %d", r.Restored(), total)
		}
		if r.Reads() != total*4 {
			t.Fatalf("reads = %d, want %d", r.Reads(), total*4)
		}
		wantCycles := (total + 1) / 2
		if cycles != wantCycles {
			t.Fatalf("cycles = %d, want %d", cycles, wantCycles)
		}
		// Everything reads back bit-exact and parity verifies.
		trackSize := int(farm.Params().TrackSize)
		for id, c := range content {
			obj, _ := lay.Object(id)
			for i := 0; i < obj.Tracks; i++ {
				blk, err := layout.ReadDataTrack(farm, obj, i)
				if err != nil {
					t.Fatalf("victim %d: %s/%d: %v", victim, id, i, err)
				}
				if !bytes.Equal(blk, c[i*trackSize:(i+1)*trackSize]) {
					t.Fatalf("victim %d: %s/%d content differs", victim, id, i)
				}
				rec, err := layout.ReconstructDataTrack(farm, obj, i)
				if err != nil || !bytes.Equal(rec, blk) {
					t.Fatalf("victim %d: parity inconsistent at %s/%d: %v", victim, id, i, err)
				}
			}
		}
	}
}

func TestStepBudgetTooSmall(t *testing.T) {
	farm, lay, _ := testRig(t)
	failAndReplace(t, farm, 0)
	r, _ := New(farm, lay, 0)
	n, err := r.Step(3) // < C-1
	if err != nil || n != 0 {
		t.Fatalf("Step(3) = %d, %v; want 0 progress", n, err)
	}
	if _, err := r.Run(3, 10); err == nil {
		t.Error("Run with starvation budget should error")
	}
}

func TestCyclesNeeded(t *testing.T) {
	farm, lay, _ := testRig(t)
	failAndReplace(t, farm, 0)
	r, _ := New(farm, lay, 0)
	total := r.Remaining()
	if got := r.CyclesNeeded(4); got != total {
		t.Errorf("budget 4: %d cycles, want %d", got, total)
	}
	if got := r.CyclesNeeded(12); got != (total+2)/3 {
		t.Errorf("budget 12: %d cycles, want %d", got, (total+2)/3)
	}
	if got := r.CyclesNeeded(3); got != -1 {
		t.Errorf("starvation budget: %d, want -1", got)
	}
}

func TestRun(t *testing.T) {
	farm, lay, _ := testRig(t)
	failAndReplace(t, farm, 2)
	r, _ := New(farm, lay, 2)
	want := r.CyclesNeeded(8)
	cycles, err := r.Run(8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != want {
		t.Fatalf("Run took %d cycles, estimate said %d", cycles, want)
	}
	if !r.Done() {
		t.Fatal("not done after Run")
	}
	// Running again is a no-op.
	if cycles, err := r.Run(8, 10); err != nil || cycles != 0 {
		t.Fatalf("re-Run = %d, %v", cycles, err)
	}
}

func TestRunBoundsExceeded(t *testing.T) {
	farm, lay, _ := testRig(t)
	failAndReplace(t, farm, 0)
	r, _ := New(farm, lay, 0)
	if _, err := r.Run(4, 1); err == nil {
		t.Error("maxCycles bound not enforced")
	}
}

func TestRebuildFailsWithSecondFailure(t *testing.T) {
	farm, lay, _ := testRig(t)
	failAndReplace(t, farm, 0)
	drv, _ := farm.Drive(1)
	if err := drv.Fail(); err != nil {
		t.Fatal(err)
	}
	r, _ := New(farm, lay, 0)
	if _, err := r.Step(100); err == nil {
		t.Fatal("rebuild with a concurrent failure in the group should error")
	}
}
