package analytic

import (
	"testing"

	"ftmm/internal/diskmodel"
	"ftmm/internal/units"
)

// The introduction's arithmetic: 1000 one-gigabyte disks store ~300
// MPEG-2 or ~900 MPEG-1 ninety-minute movies and, at 4 MB/s each, feed
// ~6500 MPEG-2 or ~20,000 MPEG-1 concurrent streams.
func TestIntroCapacityExample(t *testing.T) {
	p := diskmodel.Table1() // 1 GB, 4 MB/s

	mpeg2Movie := MovieSize(units.MPEG2, 90)
	// 4.5 Mb/s * 90 min = 3037.5 MB.
	if got := mpeg2Movie.Megabytes(); got < 3037 || got > 3038 {
		t.Fatalf("MPEG-2 movie = %.1f MB", got)
	}
	est2, err := EstimateCapacity(1000, p, mpeg2Movie, units.MPEG2)
	if err != nil {
		t.Fatal(err)
	}
	if est2.Objects < 300 || est2.Objects > 340 {
		t.Errorf("MPEG-2 movies = %d, paper says ~300", est2.Objects)
	}
	if est2.Streams < 6500 || est2.Streams > 7200 {
		t.Errorf("MPEG-2 streams = %d, paper says ~6500", est2.Streams)
	}

	mpeg1Movie := MovieSize(units.MPEG1, 90)
	est1, err := EstimateCapacity(1000, p, mpeg1Movie, units.MPEG1)
	if err != nil {
		t.Fatal(err)
	}
	if est1.Objects < 900 || est1.Objects > 1000 {
		t.Errorf("MPEG-1 movies = %d, paper says ~900", est1.Objects)
	}
	if est1.Streams < 20000 || est1.Streams > 21500 {
		t.Errorf("MPEG-1 streams = %d, paper says ~20,000", est1.Streams)
	}
}

func TestEstimateCapacityErrors(t *testing.T) {
	p := diskmodel.Table1()
	if _, err := EstimateCapacity(0, p, units.MB, units.MPEG1); err == nil {
		t.Error("zero disks accepted")
	}
	if _, err := EstimateCapacity(10, p, 0, units.MPEG1); err == nil {
		t.Error("zero object size accepted")
	}
	if _, err := EstimateCapacity(10, p, units.MB, 0); err == nil {
		t.Error("zero rate accepted")
	}
	bad := p
	bad.TrackSize = 0
	if _, err := EstimateCapacity(10, bad, units.MB, units.MPEG1); err == nil {
		t.Error("invalid disk accepted")
	}
}

func TestMixedCapacity(t *testing.T) {
	p := diskmodel.Table1()
	s1 := MovieSize(units.MPEG1, 90)
	s2 := MovieSize(units.MPEG2, 90)

	// All MPEG-1: matches the single-class estimate.
	all1, err := EstimateMixedCapacity(1000, p, s1, s2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if all1.MPEG2Objects != 0 || all1.MPEG1Objects < 900 {
		t.Errorf("all-MPEG1 mix = %+v", all1)
	}
	// Half and half: counts equal, between the two extremes.
	half, err := EstimateMixedCapacity(1000, p, s1, s2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if diff := half.MPEG1Objects - half.MPEG2Objects; diff < 0 || diff > 1 {
		t.Errorf("half mix unbalanced: %+v", half)
	}
	if half.MPEG1Objects <= 300/2 || half.MPEG1Objects >= 900 {
		t.Errorf("half mix out of range: %+v", half)
	}

	if _, err := EstimateMixedCapacity(1000, p, s1, s2, 1.5); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := EstimateMixedCapacity(1000, p, 0, s2, 0.5); err == nil {
		t.Error("zero size accepted")
	}
	bad := p
	bad.Track = 0
	if _, err := EstimateMixedCapacity(1000, bad, s1, s2, 0.5); err == nil {
		t.Error("invalid disk accepted")
	}
}
