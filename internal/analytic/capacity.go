package analytic

import (
	"errors"
	"math"

	"ftmm/internal/diskmodel"
	"ftmm/internal/units"
)

// CapacityEstimate is the back-of-envelope system sizing of the paper's
// introduction: how many objects a disk farm stores and how many
// concurrent streams its raw bandwidth feeds, before any fault-tolerance
// overhead.
type CapacityEstimate struct {
	// Objects is how many whole objects of the given size fit.
	Objects int
	// Streams is how many concurrent streams the aggregate bandwidth
	// supports.
	Streams int
}

// EstimateCapacity reproduces the §1 arithmetic: D disks of the given
// capacity and bandwidth, objects of objectSize delivered at rate b0.
// The paper's example: 1000 one-gigabyte disks hold ≈300 90-minute
// MPEG-2 movies (4.5 Mb/s) or ≈900 MPEG-1 movies (1.5 Mb/s), and at
// 4 MB/s per disk feed ≈6500 MPEG-2 or ≈20,000 MPEG-1 streams.
func EstimateCapacity(d int, disk diskmodel.Params, objectSize units.ByteSize, b0 units.Rate) (CapacityEstimate, error) {
	if d < 1 {
		return CapacityEstimate{}, errors.New("analytic: need at least one disk")
	}
	if err := disk.Validate(); err != nil {
		return CapacityEstimate{}, err
	}
	if objectSize <= 0 || b0 <= 0 {
		return CapacityEstimate{}, errors.New("analytic: object size and rate must be positive")
	}
	totalBytes := float64(d) * float64(disk.Capacity)
	totalBW := float64(d) * float64(disk.EffectiveBandwidth())
	return CapacityEstimate{
		Objects: int(totalBytes / float64(objectSize)),
		Streams: int(totalBW / float64(b0)),
	}, nil
}

// MovieSize returns the storage an object of the given bandwidth and
// duration occupies: b0 · minutes.
func MovieSize(b0 units.Rate, minutes float64) units.ByteSize {
	return units.ByteSize(float64(b0) * minutes * 60)
}

// MixedCapacity sizes a two-class catalog (the intro's "some combination
// of the two"): given fractions of MPEG-1 and MPEG-2 objects (by count),
// it returns how many objects of each class fit in the farm's storage.
type MixedCapacity struct {
	MPEG1Objects, MPEG2Objects int
}

// EstimateMixedCapacity splits storage between two object classes with
// the given count fraction of class 1 (0..1).
func EstimateMixedCapacity(d int, disk diskmodel.Params, size1, size2 units.ByteSize, frac1 float64) (MixedCapacity, error) {
	if frac1 < 0 || frac1 > 1 {
		return MixedCapacity{}, errors.New("analytic: fraction must be in [0,1]")
	}
	if err := disk.Validate(); err != nil {
		return MixedCapacity{}, err
	}
	if size1 <= 0 || size2 <= 0 {
		return MixedCapacity{}, errors.New("analytic: object sizes must be positive")
	}
	total := float64(d) * float64(disk.Capacity)
	// n objects split frac1/1-frac1: n·(frac1·size1 + (1-frac1)·size2) = total.
	avg := frac1*float64(size1) + (1-frac1)*float64(size2)
	n := total / avg
	return MixedCapacity{
		MPEG1Objects: int(math.Floor(n * frac1)),
		MPEG2Objects: int(math.Floor(n * (1 - frac1))),
	}, nil
}
