// Package analytic implements the paper's closed-form comparison model
// (§5, equations (1)-(15)): storage overhead, bandwidth overhead, mean
// time to catastrophic failure (MTTF), mean time to degradation of
// service (MTTDS), maximum simultaneously supported streams N_p, and
// buffer-space requirement BF_p for each of the four schemes
// p ∈ {SR, SG, NC, IB}.
//
// A catastrophic failure is two disks failing in the same parity group
// (data must be rebuilt from tertiary storage); degradation of service is
// running out of the resource a scheme holds in reserve (buffer servers
// for Non-clustered, spare disk bandwidth for Improved-bandwidth), which
// forces active streams to be terminated.
//
// Rounding convention: the paper floors N before deriving the buffer
// counts and reports buffer totals rounded up; Metrics follows the same
// convention so that Tables 2 and 3 are reproduced digit-for-digit, while
// the real-valued functions remain available for the cost model.
package analytic

import (
	"errors"
	"fmt"
	"math"

	"ftmm/internal/diskmodel"
	"ftmm/internal/units"
)

// Scheme identifies one of the four fault-tolerance schemes the paper
// compares.
type Scheme int

const (
	// StreamingRAID (SR, §2): fixed clusters of C disks, one dedicated
	// parity disk; every cycle reads a whole parity group per stream and
	// delivers it in the next cycle (k = k' = C-1).
	StreamingRAID Scheme = iota
	// StaggeredGroup (SG, §2): same layout as SR, but the parity group
	// read in one (short) cycle is delivered over the following C-1
	// cycles (k = C-1, k' = 1), halving memory.
	StaggeredGroup
	// NonClustered (NC, §3): same layout; normal mode reads only the
	// tracks delivered next cycle (k = k' = 1) and switches a cluster to
	// degraded (group-at-a-time) mode only after a failure, accepting a
	// brief transition with hiccups; degraded clusters borrow memory from
	// a shared pool of K buffer servers.
	NonClustered
	// ImprovedBandwidth (IB, §4): parity of cluster i is intermixed with
	// the data disks of cluster i+1, so no bandwidth idles in normal
	// mode; failures are masked by a chained "shift to the right" into K
	// reserved disks' worth of bandwidth (k = k' = C-1).
	ImprovedBandwidth
	// DeclusteredParity (DC): parity groups keep size C but are mapped
	// onto block-design subsets of a larger G-drive declustering group,
	// so rebuilding a failed drive reads every survivor at rate
	// (C-1)/(G-1) instead of saturating C-1 cluster mates. Normal-mode
	// behaviour matches SR (k = k' = C-1); the win is the rebuild
	// window and degraded-mode load spreading.
	DeclusteredParity
)

// Schemes lists the paper's four schemes in its presentation order.
// The golden tables and the paper-reproduction experiments iterate this
// set; extensions beyond the paper live in AllSchemes.
func Schemes() []Scheme {
	return []Scheme{StreamingRAID, StaggeredGroup, NonClustered, ImprovedBandwidth}
}

// AllSchemes lists every implemented scheme: the paper's four plus
// declustered parity.
func AllSchemes() []Scheme {
	return append(Schemes(), DeclusteredParity)
}

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case StreamingRAID:
		return "Streaming RAID"
	case StaggeredGroup:
		return "Staggered-group"
	case NonClustered:
		return "Non-clustered"
	case ImprovedBandwidth:
		return "Improved-bandwidth"
	case DeclusteredParity:
		return "Declustered-parity"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Abbrev returns the two-letter tag used in the paper (§5).
func (s Scheme) Abbrev() string {
	switch s {
	case StreamingRAID:
		return "SR"
	case StaggeredGroup:
		return "SG"
	case NonClustered:
		return "NC"
	case ImprovedBandwidth:
		return "IB"
	case DeclusteredParity:
		return "DC"
	default:
		return "??"
	}
}

// Config is one system design point: a disk farm of D drives organized
// into parity groups of size C, serving objects of bandwidth ObjectRate.
type Config struct {
	// Disk holds the drive parameters (Table 1 by default).
	Disk diskmodel.Params
	// ObjectRate is b0, the constant delivery bandwidth of one object.
	ObjectRate units.Rate
	// D is the total number of disks in the system.
	D int
	// C is the parity-group (cluster) size, parity disk included.
	C int
	// K is the reserve depth: the number of buffer servers for the
	// Non-clustered scheme and the disks' worth of reserved bandwidth,
	// K_IB, for the Improved-bandwidth scheme. The paper's Tables 2-3 use
	// K = 3 and its Figure 9 / §5 sizing example use K = 5.
	K int
	// G is the declustering group size for the DeclusteredParity scheme
	// (the number of drives each size-C parity group is declustered
	// over). Zero defaults to 2C-1, the smallest group that halves the
	// rebuild window. Ignored by the four clustered schemes.
	G int
}

// DeclusterGroup returns the effective G: the configured value, or the
// 2C-1 default.
func (c Config) DeclusterGroup() int {
	if c.G > 0 {
		return c.G
	}
	return 2*c.C - 1
}

// Table1Config returns the paper's Table 1 design point for a given
// cluster size and reserve depth: b0 = 1.5 Mb/s, B = 50 KB,
// Tseek = 25 ms, Ttrk = 20 ms, D = 100 disks.
func Table1Config(c, k int) Config {
	return Config{
		Disk:       diskmodel.Table1(),
		ObjectRate: units.MPEG1,
		D:          100,
		C:          c,
		K:          k,
	}
}

// Validate reports whether the design point is well-formed.
func (c Config) Validate() error {
	if err := c.Disk.Validate(); err != nil {
		return err
	}
	switch {
	case c.ObjectRate <= 0:
		return errors.New("analytic: object rate must be positive")
	case c.C < 2:
		return fmt.Errorf("analytic: parity group size C=%d must be >= 2", c.C)
	case c.D < c.C:
		return fmt.Errorf("analytic: D=%d must be at least C=%d", c.D, c.C)
	case c.K < 0:
		return fmt.Errorf("analytic: reserve depth K=%d must be >= 0", c.K)
	case c.K > c.D:
		return fmt.Errorf("analytic: reserve depth K=%d exceeds D=%d", c.K, c.D)
	case c.G != 0 && c.G < c.C:
		return fmt.Errorf("analytic: declustering group G=%d must be >= C=%d", c.G, c.C)
	case c.G != 0 && c.G > c.D:
		return fmt.Errorf("analytic: declustering group G=%d exceeds D=%d", c.G, c.D)
	}
	return nil
}

// ReadGroup returns (k, k') for the scheme: the tracks read per stream
// per read cycle and transmitted per stream per cycle.
func (c Config) ReadGroup(s Scheme) (k, kPrime int) {
	switch s {
	case StreamingRAID, ImprovedBandwidth, DeclusteredParity:
		return c.C - 1, c.C - 1
	case StaggeredGroup:
		return c.C - 1, 1
	case NonClustered:
		return 1, 1
	default:
		return 0, 0
	}
}

// DataDisks returns D', the number of disks data is read from in normal
// operation: (C-1)/C·D for the dedicated-parity schemes and D - K_IB for
// Improved-bandwidth (whose parity is intermixed but which holds K disks'
// worth of bandwidth in reserve).
func (c Config) DataDisks(s Scheme) float64 {
	if s == ImprovedBandwidth {
		return float64(c.D - c.K)
	}
	return float64(c.C-1) / float64(c.C) * float64(c.D)
}

// StorageOverheadFrac returns the fraction of raw disk storage dedicated
// to parity: 1/C for every scheme (equation (1): S_p = s_d·D/C).
func (c Config) StorageOverheadFrac(Scheme) float64 {
	return 1 / float64(c.C)
}

// StorageOverhead returns S_p, the absolute parity storage (equation (1)).
func (c Config) StorageOverhead(s Scheme) units.ByteSize {
	frac := c.StorageOverheadFrac(s)
	return units.ByteSize(frac * float64(c.D) * float64(c.Disk.Capacity))
}

// BandwidthOverheadFrac returns the fraction of aggregate disk bandwidth
// unavailable for delivering data in normal operation: 1/C for the
// dedicated-parity schemes (equation (2)); K_IB/D for Improved-bandwidth
// (equation (3)), which otherwise uses all disks.
func (c Config) BandwidthOverheadFrac(s Scheme) float64 {
	if s == ImprovedBandwidth {
		return float64(c.K) / float64(c.D)
	}
	return 1 / float64(c.C)
}

// BandwidthOverhead returns BW_p in absolute terms.
func (c Config) BandwidthOverhead(s Scheme) units.Rate {
	d := c.Disk.EffectiveBandwidth()
	return units.Rate(c.BandwidthOverheadFrac(s) * float64(c.D) * float64(d))
}

// MTTFCatastrophic returns the mean time until two disks fail in the same
// parity group (equations (4)-(5)):
//
//	SR/SG/NC: MTTF(disk)² / (D·(C-1)·MTTR)
//	IB:       MTTF(disk)² / (D·(2C-1)·MTTR)
//
// The IB exposure is larger because each disk belongs to two parity
// groups (data for its own cluster, parity for the one to its left).
func (c Config) MTTFCatastrophic(s Scheme) units.Years {
	mttf, mttr := c.Disk.MTTFHours, c.Disk.MTTRHours
	if mttf <= 0 || mttr <= 0 {
		return units.Years(math.Inf(1))
	}
	exposure := float64(c.C - 1)
	switch s {
	case ImprovedBandwidth:
		exposure = float64(2*c.C - 1)
	case DeclusteredParity:
		// Declustering widens the exposure: a second failure anywhere in
		// the G-drive declustering group is catastrophic (λ ≥ 1 — every
		// drive pair shares at least one block). But the repair window
		// shrinks by the same factor the exposure grew: the rebuild reads
		// every survivor at (C-1)/(G-1) of the clustered rate, so
		// (G-1) · MTTR·(C-1)/(G-1) = (C-1)·MTTR and the catastrophic
		// MTTF lands exactly on Streaming RAID's.
		g := float64(c.DeclusterGroup())
		exposure = (g - 1) * (float64(c.C-1) / (g - 1))
	}
	hours := mttf * mttf / (float64(c.D) * exposure * mttr)
	return units.YearsFromHours(hours)
}

// RebuildWindowFrac returns the rebuild window of the scheme relative
// to Streaming RAID's at equal farm size: the bottleneck survivor's
// read load per lost track. The clustered schemes concentrate the whole
// rebuild on C-1 drives (ratio 1); declustered parity spreads it over
// G-1 survivors at rate (C-1)/(G-1).
func (c Config) RebuildWindowFrac(s Scheme) float64 {
	if s != DeclusteredParity {
		return 1
	}
	return float64(c.C-1) / float64(c.DeclusterGroup()-1)
}

// MTTDS returns the mean time to degradation of service. For SR and SG it
// equals the catastrophic MTTF (losing data is the only way those schemes
// degrade). For NC and IB it is the mean time until K overlapping disk
// failures exhaust the reserve of K buffer servers (NC) or K disks' worth
// of spare bandwidth (IB), per equation (6):
//
//	MTTF(disk)^K / (D·(D-1)·…·(D-K+1)·MTTR^(K-1))
func (c Config) MTTDS(s Scheme) units.Years {
	if s == StreamingRAID || s == StaggeredGroup || s == DeclusteredParity {
		// Like SR/SG, declustered parity holds no reserve: losing data
		// is the only way it degrades.
		return c.MTTFCatastrophic(s)
	}
	mttf, mttr := c.Disk.MTTFHours, c.Disk.MTTRHours
	if mttf <= 0 || mttr <= 0 {
		return units.Years(math.Inf(1))
	}
	if c.K == 0 {
		// No reserve at all: the first failure in the farm degrades
		// service, so MTTDS is the time to first failure, MTTF/D.
		return units.YearsFromHours(mttf / float64(c.D))
	}
	// The paper's equation (6) writes the product over K terms,
	// D·(D-1)·…·(D-K+1), with exponents K and K-1; its Table 2/3 values
	// (3 176 862.3 years at D=100, K=3) match that literal form, which
	// models "the K-th overlapping failure finds the reserve empty".
	hours := math.Pow(mttf, float64(c.K))
	for i := 0; i < c.K; i++ {
		hours /= float64(c.D - i)
	}
	hours /= math.Pow(mttr, float64(c.K-1))
	return units.YearsFromHours(hours)
}

// MaxStreams returns the real-valued N_p of equations (8)-(11): the
// per-disk bound of the disk model times D'.
func (c Config) MaxStreams(s Scheme) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	k, kPrime := c.ReadGroup(s)
	perDisk, err := c.Disk.StreamsPerDisk(k, kPrime, c.ObjectRate)
	if err != nil {
		return 0, err
	}
	return perDisk * c.DataDisks(s), nil
}

// MaxStreamsInt returns ⌊N_p⌋ as the paper's tables report it.
func (c Config) MaxStreamsInt(s Scheme) (int, error) {
	n, err := c.MaxStreams(s)
	if err != nil {
		return 0, err
	}
	return int(math.Floor(n + 1e-9)), nil
}

// bufferTracksFromN returns BF_p in tracks for a given stream count
// (equations (12)-(15)). n may be real-valued (cost model) or the floored
// table value.
func (c Config) bufferTracksFromN(s Scheme, n float64) float64 {
	C := float64(c.C)
	switch s {
	case StreamingRAID, DeclusteredParity:
		// A parity group (C tracks) is read while the previous one (C
		// more) drains: 2C buffers per stream. Declustering changes
		// which drives hold the group, not how much of it is staged.
		return 2 * C * n
	case StaggeredGroup:
		// Per group of C-1 staggered streams the peak occupancies are
		// (C+1)+(C-1)+(C-2)+…+3+2 = C(C+1)/2 (the Figure 4 sawtooth:
		// streams at different phases are at different ebbs).
		return n / (C - 1) * C * (C + 1) / 2
	case NonClustered:
		// 2 buffers per stream in normal mode, plus K clusters' worth of
		// staggered-group buffering held by the shared buffer servers for
		// degraded-mode operation. Clusters: D'/C.
		normal := 2 * n
		perClusterDegraded := c.bufferTracksFromN(StaggeredGroup, n) / (c.DataDisks(StaggeredGroup) / C)
		return normal + perClusterDegraded*float64(c.K)
	case ImprovedBandwidth:
		// As SR but no parity buffering: 2(C-1) per stream.
		return 2 * (C - 1) * n
	default:
		return 0
	}
}

// BufferTracks returns the real-valued BF_p in tracks for the scheme's
// maximum stream load.
func (c Config) BufferTracks(s Scheme) (float64, error) {
	n, err := c.MaxStreams(s)
	if err != nil {
		return 0, err
	}
	return c.bufferTracksFromN(s, n), nil
}

// BufferTracksInt returns BF_p the way the paper's tables do: computed
// from the floored stream count and rounded up to whole tracks.
func (c Config) BufferTracksInt(s Scheme) (int, error) {
	n, err := c.MaxStreamsInt(s)
	if err != nil {
		return 0, err
	}
	return int(math.Ceil(c.bufferTracksFromN(s, float64(n)) - 1e-9)), nil
}

// BufferBytes converts BufferTracks into bytes of main memory.
func (c Config) BufferBytes(s Scheme) (units.ByteSize, error) {
	tr, err := c.BufferTracks(s)
	if err != nil {
		return 0, err
	}
	return units.ByteSize(tr * float64(c.Disk.TrackSize)), nil
}

// BufferTracksForStreams returns BF_p in tracks when only n streams are
// active (used by the cost model, which sizes memory for the required
// load rather than the maximum).
func (c Config) BufferTracksForStreams(s Scheme, n float64) float64 {
	return c.bufferTracksFromN(s, n)
}

// Metrics is one column of the paper's Tables 2 and 3.
type Metrics struct {
	Scheme                Scheme
	StorageOverheadFrac   float64     // of raw storage, e.g. 0.20
	BandwidthOverheadFrac float64     // of aggregate bandwidth
	MTTF                  units.Years // catastrophic
	MTTDS                 units.Years // degradation of service
	Streams               int         // ⌊N_p⌋
	BufferTracks          int         // ⌈BF_p⌉, in tracks
	RebuildWindow         float64     // rebuild window relative to SR's
}

// Metrics evaluates every Table 2/3 row for one scheme.
func (c Config) Metrics(s Scheme) (Metrics, error) {
	streams, err := c.MaxStreamsInt(s)
	if err != nil {
		return Metrics{}, err
	}
	buffers, err := c.BufferTracksInt(s)
	if err != nil {
		return Metrics{}, err
	}
	return Metrics{
		Scheme:                s,
		StorageOverheadFrac:   c.StorageOverheadFrac(s),
		BandwidthOverheadFrac: c.BandwidthOverheadFrac(s),
		MTTF:                  c.MTTFCatastrophic(s),
		MTTDS:                 c.MTTDS(s),
		Streams:               streams,
		BufferTracks:          buffers,
		RebuildWindow:         c.RebuildWindowFrac(s),
	}, nil
}

// AllMetrics evaluates Metrics for all four schemes in order.
func (c Config) AllMetrics() ([]Metrics, error) {
	out := make([]Metrics, 0, 4)
	for _, s := range Schemes() {
		m, err := c.Metrics(s)
		if err != nil {
			return nil, fmt.Errorf("analytic: %s: %w", s, err)
		}
		out = append(out, m)
	}
	return out, nil
}

// ClusterMTTFYears returns the §2 example quantity: the MTTF of *some*
// disk in a D-disk system, MTTF(disk)/D, in years. With 1000 drives of
// 300,000 h this is the "300 hours (approximately 12 days)" figure,
// returned in years for consistency.
func (c Config) ClusterMTTFYears() units.Years {
	if c.D <= 0 {
		return units.Years(math.Inf(1))
	}
	return units.YearsFromHours(c.Disk.MTTFHours / float64(c.D))
}
