package analytic

import (
	"math"
	"testing"

	"ftmm/internal/units"
)

func TestMixedLoadSingleClassMatchesMaxStreams(t *testing.T) {
	cfg := Table1Config(5, 3)
	nMax, err := cfg.MaxStreamsInt(StreamingRAID)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly at capacity: feasible.
	plan, err := cfg.MixedLoadPlan(StreamingRAID, []StreamClass{{Name: "m1", Rate: units.MPEG1, Count: nMax}})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible() {
		t.Fatalf("N=%d should be feasible (U=%.4f)", nMax, plan.Utilization)
	}
	// One more: infeasible.
	plan, err = cfg.MixedLoadPlan(StreamingRAID, []StreamClass{{Name: "m1", Rate: units.MPEG1, Count: nMax + 1}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible() {
		t.Fatalf("N=%d should exceed capacity (U=%.4f)", nMax+1, plan.Utilization)
	}
}

func TestMixedLoadTwoClasses(t *testing.T) {
	cfg := Table1Config(5, 3)
	classes := []StreamClass{
		{Name: "mpeg1", Rate: units.MPEG1, Count: 500},
		{Name: "mpeg2", Rate: units.MPEG2, Count: 100},
	}
	plan, err := cfg.MixedLoadPlan(StreamingRAID, classes)
	if err != nil {
		t.Fatal(err)
	}
	// MPEG-1 capacity 1041.67, MPEG-2 capacity is smaller (faster
	// objects); utilization = 500/1041.67 + 100/cap2.
	if plan.PerClassCapacity[1] >= plan.PerClassCapacity[0] {
		t.Fatal("MPEG-2 capacity should be below MPEG-1")
	}
	wantU := 500/plan.PerClassCapacity[0] + 100/plan.PerClassCapacity[1]
	if math.Abs(plan.Utilization-wantU) > 1e-12 {
		t.Fatalf("U = %v, want %v", plan.Utilization, wantU)
	}
	if !plan.Feasible() {
		t.Fatalf("mix should fit (U=%.3f)", plan.Utilization)
	}
	// Headroom is consistent: adding it keeps the mix feasible; adding
	// more than headroom+1 does not.
	for i := range classes {
		grown := append([]StreamClass(nil), classes...)
		grown[i].Count += plan.Headroom[i]
		p2, err := cfg.MixedLoadPlan(StreamingRAID, grown)
		if err != nil {
			t.Fatal(err)
		}
		if !p2.Feasible() {
			t.Errorf("class %d: headroom %d overshoots (U=%.4f)", i, plan.Headroom[i], p2.Utilization)
		}
		grown[i].Count += 2
		p3, err := cfg.MixedLoadPlan(StreamingRAID, grown)
		if err != nil {
			t.Fatal(err)
		}
		if p3.Feasible() {
			t.Errorf("class %d: headroom+2 still feasible", i)
		}
	}
}

func TestMaxMixedStreams(t *testing.T) {
	cfg := Table1Config(5, 3)
	// All-MPEG-1 mix: recovers the single-class capacity.
	n, err := cfg.MaxMixedStreams(StreamingRAID, []StreamClass{{Name: "m1", Rate: units.MPEG1, Count: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1041 {
		t.Fatalf("all-MPEG1 mix capacity = %d, want 1041", n)
	}
	// A 3:1 MPEG1:MPEG2 mix sits between the two pure capacities.
	mixed, err := cfg.MaxMixedStreams(StreamingRAID, []StreamClass{
		{Name: "m1", Rate: units.MPEG1, Count: 3},
		{Name: "m2", Rate: units.MPEG2, Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.ObjectRate = units.MPEG2
	pure2, err := cfg2.MaxStreamsInt(StreamingRAID)
	if err != nil {
		t.Fatal(err)
	}
	if mixed <= pure2 || mixed >= 1041 {
		t.Fatalf("3:1 mix capacity %d not between %d and 1041", mixed, pure2)
	}
	// The returned mix is actually feasible at the returned total (both
	// class counts floored to keep the integer split at or under the
	// continuous proportions).
	total := mixed
	n1 := total * 3 / 4
	n2 := total / 4
	plan, err := cfg.MixedLoadPlan(StreamingRAID, []StreamClass{
		{Name: "m1", Rate: units.MPEG1, Count: n1},
		{Name: "m2", Rate: units.MPEG2, Count: n2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible() {
		t.Fatalf("claimed capacity infeasible (U=%.4f)", plan.Utilization)
	}
}

func TestMixedLoadErrors(t *testing.T) {
	cfg := Table1Config(5, 3)
	if _, err := cfg.MixedLoadPlan(StreamingRAID, nil); err == nil {
		t.Error("empty classes accepted")
	}
	if _, err := cfg.MixedLoadPlan(StreamingRAID, []StreamClass{{Rate: units.MPEG1, Count: -1}}); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := cfg.MixedLoadPlan(StreamingRAID, []StreamClass{{Rate: 0, Count: 1}}); err == nil {
		t.Error("zero rate accepted")
	}
	// A rate so high no stream fits must error, not return Inf.
	if _, err := cfg.MixedLoadPlan(StreamingRAID, []StreamClass{{Rate: units.FromMegabytesPerSecond(100), Count: 1}}); err == nil {
		t.Error("unservable class accepted")
	}
	if _, err := cfg.MaxMixedStreams(StreamingRAID, nil); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := cfg.MaxMixedStreams(StreamingRAID, []StreamClass{{Rate: units.MPEG1, Count: 0}}); err == nil {
		t.Error("zero proportion accepted")
	}
}
