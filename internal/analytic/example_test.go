package analytic_test

import (
	"fmt"

	"ftmm/internal/analytic"
	"ftmm/internal/units"
)

// Reproduce one column of the paper's Table 2: the Streaming RAID
// metrics at C = 5.
func ExampleConfig_Metrics() {
	cfg := analytic.Table1Config(5, 3)
	m, err := cfg.Metrics(analytic.StreamingRAID)
	if err != nil {
		panic(err)
	}
	fmt.Printf("storage overhead:   %.1f%%\n", m.StorageOverheadFrac*100)
	fmt.Printf("bandwidth overhead: %.1f%%\n", m.BandwidthOverheadFrac*100)
	fmt.Printf("MTTF:               %.1f years\n", float64(m.MTTF))
	fmt.Printf("streams:            %d\n", m.Streams)
	fmt.Printf("buffers:            %d tracks\n", m.BufferTracks)
	// Output:
	// storage overhead:   20.0%
	// bandwidth overhead: 20.0%
	// MTTF:               25684.9 years
	// streams:            1041
	// buffers:            10410 tracks
}

// Check whether a mixed MPEG-1/MPEG-2 load fits on the Table 1 farm.
func ExampleConfig_MixedLoadPlan() {
	cfg := analytic.Table1Config(5, 3)
	plan, err := cfg.MixedLoadPlan(analytic.StreamingRAID, []analytic.StreamClass{
		{Name: "mpeg1", Rate: units.MPEG1, Count: 600},
		{Name: "mpeg2", Rate: units.MPEG2, Count: 100},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("utilization: %.3f\n", plan.Utilization)
	fmt.Printf("feasible:    %v\n", plan.Feasible())
	// Output:
	// utilization: 0.879
	// feasible:    true
}
