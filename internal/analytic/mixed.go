package analytic

import (
	"errors"
	"fmt"

	"ftmm/internal/units"
)

// StreamClass is one homogeneous group of streams in a mixed workload —
// the introduction's "some combination of the two" (MPEG-1 and MPEG-2
// traffic sharing one server).
type StreamClass struct {
	// Name labels the class in reports.
	Name string
	// Rate is the class's object bandwidth.
	Rate units.Rate
	// Count is the number of concurrent streams requested.
	Count int
}

// MixedLoad is the admission-planning result for a mixed workload.
type MixedLoad struct {
	// Utilization is the fraction of the scheme's capacity consumed:
	// the sum over classes of count/capacity(class). Feasible iff <= 1.
	Utilization float64
	// PerClassCapacity is each class's solo stream capacity N_p.
	PerClassCapacity []float64
	// Headroom[i] is how many more streams of class i fit with the other
	// classes held fixed.
	Headroom []int
}

// Feasible reports whether the mix fits.
func (m MixedLoad) Feasible() bool { return m.Utilization <= 1+1e-12 }

// MixedLoadPlan sizes a mixed-rate workload under one scheme using the
// conservative fractional-capacity composition rule: each class consumes
// count/N_p(class) of the machine, and the mix is admissible when the
// fractions sum to at most 1. (For a single class this reduces exactly
// to N <= N_p. The rule is conservative for mixes because classes with
// different rates run different cycle lengths; a grouped-sweeping
// scheduler — the paper's reference [3] — can sometimes do better.)
func (c Config) MixedLoadPlan(s Scheme, classes []StreamClass) (MixedLoad, error) {
	if len(classes) == 0 {
		return MixedLoad{}, errors.New("analytic: no stream classes")
	}
	out := MixedLoad{
		PerClassCapacity: make([]float64, len(classes)),
		Headroom:         make([]int, len(classes)),
	}
	for i, cl := range classes {
		if cl.Count < 0 {
			return MixedLoad{}, fmt.Errorf("analytic: class %q has negative count", cl.Name)
		}
		if cl.Rate <= 0 {
			return MixedLoad{}, fmt.Errorf("analytic: class %q has non-positive rate", cl.Name)
		}
		cc := c
		cc.ObjectRate = cl.Rate
		n, err := cc.MaxStreams(s)
		if err != nil {
			return MixedLoad{}, fmt.Errorf("analytic: class %q: %w", cl.Name, err)
		}
		if n <= 0 {
			return MixedLoad{}, fmt.Errorf("analytic: class %q cannot be served at all", cl.Name)
		}
		out.PerClassCapacity[i] = n
		out.Utilization += float64(cl.Count) / n
	}
	for i := range classes {
		free := (1 - out.Utilization) * out.PerClassCapacity[i]
		if free < 0 {
			free = 0
		}
		out.Headroom[i] = int(free)
	}
	return out, nil
}

// MaxMixedStreams scales a fixed class mix (by proportions) up to the
// capacity boundary: it returns the largest total stream count whose
// per-class split matches the given proportions and still fits.
func (c Config) MaxMixedStreams(s Scheme, classes []StreamClass) (int, error) {
	if len(classes) == 0 {
		return 0, errors.New("analytic: no stream classes")
	}
	totalProp := 0
	for _, cl := range classes {
		if cl.Count <= 0 {
			return 0, fmt.Errorf("analytic: class %q needs a positive proportion", cl.Name)
		}
		totalProp += cl.Count
	}
	plan, err := c.MixedLoadPlan(s, classes)
	if err != nil {
		return 0, err
	}
	if plan.Utilization <= 0 {
		return 0, errors.New("analytic: degenerate mix")
	}
	// The mix scales linearly: utilization(x·mix) = x·utilization(mix).
	return int(float64(totalProp) / plan.Utilization), nil
}
