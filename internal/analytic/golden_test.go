package analytic

import (
	"math"
	"testing"
)

// TestTable1Golden pins every derived quantity of the paper's Table 2/3
// design point (ST31200N-class drive, b0 = 1.5 Mb/s, D = 100, C = 5,
// K = 3) to exact expected values. Any drift in the analytic model —
// a changed formula, a reordered floating-point reduction, a new
// rounding rule — must show up here as a deliberate diff, because the
// chaos harness's admission checker and the capacity planner both trust
// these numbers.
func TestTable1Golden(t *testing.T) {
	cfg := Table1Config(5, 3)

	approx := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
			t.Errorf("%s = %.10g, want %.10g", name, got, want)
		}
	}

	golden := []struct {
		scheme              Scheme
		storage, bandwidth  float64
		mttfYears           float64
		mttdsYears          float64
		streams, bufTracks  int
		maxStreams, bufReal float64
	}{
		{StreamingRAID, 0.2, 0.2, 25684.93151, 25684.93151, 1041, 10410, 1041.666667, 10416.66667},
		{StaggeredGroup, 0.2, 0.2, 25684.93151, 25684.93151, 966, 3623, 966.6666667, 3625},
		{NonClustered, 0.2, 0.2, 25684.93151, 3176862.277, 966, 2612, 966.6666667, 2613.020833},
		{ImprovedBandwidth, 0.2, 0.03, 11415.52511, 3176862.277, 1263, 10104, 1263.020833, 10104.16667},
		// Declustered parity matches SR on every normal-mode column —
		// the widened G-1 exposure and the (C-1)/(G-1) rebuild window
		// cancel in the MTTF — and differs only in RebuildWindow below.
		{DeclusteredParity, 0.2, 0.2, 25684.93151, 25684.93151, 1041, 10410, 1041.666667, 10416.66667},
	}
	for _, g := range golden {
		m, err := cfg.Metrics(g.scheme)
		if err != nil {
			t.Fatalf("%s: %v", g.scheme, err)
		}
		approx(g.scheme.String()+" storage overhead", m.StorageOverheadFrac, g.storage)
		approx(g.scheme.String()+" bandwidth overhead", m.BandwidthOverheadFrac, g.bandwidth)
		approx(g.scheme.String()+" MTTF", float64(m.MTTF), g.mttfYears)
		approx(g.scheme.String()+" MTTDS", float64(m.MTTDS), g.mttdsYears)
		if m.Streams != g.streams {
			t.Errorf("%s streams = %d, want %d", g.scheme, m.Streams, g.streams)
		}
		if m.BufferTracks != g.bufTracks {
			t.Errorf("%s buffer tracks = %d, want %d", g.scheme, m.BufferTracks, g.bufTracks)
		}
		n, err := cfg.MaxStreams(g.scheme)
		if err != nil {
			t.Fatalf("%s MaxStreams: %v", g.scheme, err)
		}
		approx(g.scheme.String()+" N", n, g.maxStreams)
		bf, err := cfg.BufferTracks(g.scheme)
		if err != nil {
			t.Fatalf("%s BufferTracks: %v", g.scheme, err)
		}
		approx(g.scheme.String()+" BF", bf, g.bufReal)
	}

	// The §2 motivating number: with D disks of MTTF(disk) hours, some
	// disk fails every MTTF/D — the paper's "a failure every few weeks".
	approx("cluster MTTF", float64(cfg.ClusterMTTFYears()), 0.3424657534)

	// Rebuild-window column: the clustered schemes rebuild at ratio 1;
	// declustered parity at (C-1)/(G-1), which at the default G = 2C-1
	// is exactly one half.
	for _, s := range Schemes() {
		approx(s.String()+" rebuild window", cfg.RebuildWindowFrac(s), 1)
	}
	approx("DC rebuild window (default G=9)", cfg.RebuildWindowFrac(DeclusteredParity), 0.5)
	cfg13 := cfg
	cfg13.C, cfg13.G = 4, 13
	approx("DC rebuild window (G=13,C=4)", cfg13.RebuildWindowFrac(DeclusteredParity), 0.25)
	dcm, err := cfg.Metrics(DeclusteredParity)
	if err != nil {
		t.Fatal(err)
	}
	approx("DC Metrics.RebuildWindow", dcm.RebuildWindow, 0.5)

	// Relative ordering the paper's comparison rests on (Tables 2-3):
	// IB admits the most streams, SR needs the most buffer, NC the
	// least; IB trades bandwidth overhead for MTTF.
	ms, err := cfg.AllMetrics()
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[Scheme]Metrics{}
	for _, m := range ms {
		byScheme[m.Scheme] = m
	}
	if !(byScheme[ImprovedBandwidth].Streams > byScheme[StreamingRAID].Streams &&
		byScheme[StreamingRAID].Streams > byScheme[StaggeredGroup].Streams) {
		t.Errorf("stream capacity ordering IB > SR > SG broken: %+v", ms)
	}
	if !(byScheme[NonClustered].BufferTracks < byScheme[StaggeredGroup].BufferTracks &&
		byScheme[StaggeredGroup].BufferTracks < byScheme[StreamingRAID].BufferTracks) {
		t.Errorf("buffer ordering NC < SG < SR broken: %+v", ms)
	}
}
