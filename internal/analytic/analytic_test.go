package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"ftmm/internal/diskmodel"
	"ftmm/internal/units"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestTable2 reproduces the paper's Table 2 (C = 5, K = 3)
// digit-for-digit. The single deliberate deviation: the published table
// prints the IB bandwidth overhead as 5.0%, inconsistent with its own
// K=3 (Table 3, same K, prints 3.0%); we produce K/D = 3.0%.
func TestTable2(t *testing.T) {
	cfg := Table1Config(5, 3)

	want := map[Scheme]Metrics{
		StreamingRAID:     {StorageOverheadFrac: 0.20, BandwidthOverheadFrac: 0.20, MTTF: 25684.9, MTTDS: 25684.9, Streams: 1041, BufferTracks: 10410},
		StaggeredGroup:    {StorageOverheadFrac: 0.20, BandwidthOverheadFrac: 0.20, MTTF: 25684.9, MTTDS: 25684.9, Streams: 966, BufferTracks: 3623},
		NonClustered:      {StorageOverheadFrac: 0.20, BandwidthOverheadFrac: 0.20, MTTF: 25684.9, MTTDS: 3176862.3, Streams: 966, BufferTracks: 2612},
		ImprovedBandwidth: {StorageOverheadFrac: 0.20, BandwidthOverheadFrac: 0.03, MTTF: 11415.5, MTTDS: 3176862.3, Streams: 1263, BufferTracks: 10104},
	}
	checkTable(t, cfg, want)
}

// TestTable3 reproduces Table 3 (C = 7, K = 3).
func TestTable3(t *testing.T) {
	cfg := Table1Config(7, 3)

	frac := 1.0 / 7.0
	want := map[Scheme]Metrics{
		StreamingRAID:     {StorageOverheadFrac: frac, BandwidthOverheadFrac: frac, MTTF: 17123.3, MTTDS: 17123.3, Streams: 1125, BufferTracks: 15750},
		StaggeredGroup:    {StorageOverheadFrac: frac, BandwidthOverheadFrac: frac, MTTF: 17123.3, MTTDS: 17123.3, Streams: 1035, BufferTracks: 4830},
		NonClustered:      {StorageOverheadFrac: frac, BandwidthOverheadFrac: frac, MTTF: 17123.3, MTTDS: 3176862.3, Streams: 1035, BufferTracks: 3254},
		ImprovedBandwidth: {StorageOverheadFrac: frac, BandwidthOverheadFrac: 0.03, MTTF: 7903.0, MTTDS: 3176862.3, Streams: 1273, BufferTracks: 15276},
	}
	checkTable(t, cfg, want)
}

func checkTable(t *testing.T, cfg Config, want map[Scheme]Metrics) {
	t.Helper()
	for _, s := range Schemes() {
		m, err := cfg.Metrics(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		w := want[s]
		if !almostEqual(m.StorageOverheadFrac, w.StorageOverheadFrac, 1e-9) {
			t.Errorf("%s storage overhead = %.4f, want %.4f", s, m.StorageOverheadFrac, w.StorageOverheadFrac)
		}
		if !almostEqual(m.BandwidthOverheadFrac, w.BandwidthOverheadFrac, 1e-9) {
			t.Errorf("%s bandwidth overhead = %.4f, want %.4f", s, m.BandwidthOverheadFrac, w.BandwidthOverheadFrac)
		}
		if !almostEqual(float64(m.MTTF), float64(w.MTTF), 0.1) {
			t.Errorf("%s MTTF = %.1f years, want %.1f", s, float64(m.MTTF), float64(w.MTTF))
		}
		if !almostEqual(float64(m.MTTDS), float64(w.MTTDS), 0.5) {
			t.Errorf("%s MTTDS = %.1f years, want %.1f", s, float64(m.MTTDS), float64(w.MTTDS))
		}
		if m.Streams != w.Streams {
			t.Errorf("%s streams = %d, want %d", s, m.Streams, w.Streams)
		}
		if m.BufferTracks != w.BufferTracks {
			t.Errorf("%s buffer tracks = %d, want %d", s, m.BufferTracks, w.BufferTracks)
		}
	}
}

// The inline §2 example: a 1000-disk system with clusters of 9 data + 1
// parity disk has a catastrophic MTTF of "about 1100 years" (exactly
// 1141.6 with the 8760 h year, quoted as "1141 years" in §4).
func TestSection2MTTFExample(t *testing.T) {
	cfg := Config{Disk: diskmodel.Table1(), ObjectRate: units.MPEG1, D: 1000, C: 10, K: 5}
	got := float64(cfg.MTTFCatastrophic(StreamingRAID))
	if !almostEqual(got, 1141.55, 0.05) {
		t.Fatalf("1000-disk C=10 MTTF = %.2f years, want ~1141.6", got)
	}
	// MTTF of some disk in the farm: 300 hours ~ 12.5 days.
	someDisk := cfg.ClusterMTTFYears().Hours()
	if !almostEqual(someDisk, 300, 1e-9) {
		t.Fatalf("time to first failure = %v hours, want 300", someDisk)
	}
}

// §3: the mean time to 5 simultaneous failures in a 1000-disk farm is
// "greater than 250 million years".
func TestSection3MTTDSExample(t *testing.T) {
	cfg := Config{Disk: diskmodel.Table1(), ObjectRate: units.MPEG1, D: 1000, C: 10, K: 5}
	got := float64(cfg.MTTDS(NonClustered))
	if got < 250e6 || got > 300e6 {
		t.Fatalf("NC MTTDS = %.3g years, want ~2.8e8 (\">250 million\")", got)
	}
	if ib := float64(cfg.MTTDS(ImprovedBandwidth)); ib != got {
		t.Fatalf("IB MTTDS %v != NC MTTDS %v", ib, got)
	}
}

// §4: the IB catastrophic MTTF with D = 1000, C = 10 is "approximately
// 540 years rather than 1141 years".
func TestSection4IBMTTFExample(t *testing.T) {
	cfg := Config{Disk: diskmodel.Table1(), ObjectRate: units.MPEG1, D: 1000, C: 10, K: 5}
	got := float64(cfg.MTTFCatastrophic(ImprovedBandwidth))
	if !almostEqual(got, 540.7, 0.5) {
		t.Fatalf("IB MTTF = %.1f years, want ~540", got)
	}
}

func TestReadGroup(t *testing.T) {
	cfg := Table1Config(5, 3)
	cases := []struct {
		s       Scheme
		k, kPri int
	}{
		{StreamingRAID, 4, 4},
		{StaggeredGroup, 4, 1},
		{NonClustered, 1, 1},
		{ImprovedBandwidth, 4, 4},
	}
	for _, c := range cases {
		k, kp := cfg.ReadGroup(c.s)
		if k != c.k || kp != c.kPri {
			t.Errorf("%s ReadGroup = (%d,%d), want (%d,%d)", c.s, k, kp, c.k, c.kPri)
		}
	}
}

func TestDataDisks(t *testing.T) {
	cfg := Table1Config(5, 3)
	if got := cfg.DataDisks(StreamingRAID); !almostEqual(got, 80, 1e-9) {
		t.Errorf("SR D' = %v, want 80", got)
	}
	if got := cfg.DataDisks(ImprovedBandwidth); !almostEqual(got, 97, 1e-9) {
		t.Errorf("IB D' = %v, want 97", got)
	}
}

func TestValidate(t *testing.T) {
	ok := Table1Config(5, 3)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Disk: diskmodel.Table1(), ObjectRate: 0, D: 100, C: 5, K: 3},
		{Disk: diskmodel.Table1(), ObjectRate: units.MPEG1, D: 100, C: 1, K: 3},
		{Disk: diskmodel.Table1(), ObjectRate: units.MPEG1, D: 3, C: 5, K: 3},
		{Disk: diskmodel.Table1(), ObjectRate: units.MPEG1, D: 100, C: 5, K: -1},
		{Disk: diskmodel.Table1(), ObjectRate: units.MPEG1, D: 100, C: 5, K: 101},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSchemeStrings(t *testing.T) {
	names := map[Scheme][2]string{
		StreamingRAID:     {"Streaming RAID", "SR"},
		StaggeredGroup:    {"Staggered-group", "SG"},
		NonClustered:      {"Non-clustered", "NC"},
		ImprovedBandwidth: {"Improved-bandwidth", "IB"},
	}
	for s, w := range names {
		if s.String() != w[0] || s.Abbrev() != w[1] {
			t.Errorf("%d: got (%q,%q) want %v", s, s.String(), s.Abbrev(), w)
		}
	}
	if Scheme(99).String() != "Scheme(99)" || Scheme(99).Abbrev() != "??" {
		t.Error("unknown scheme formatting")
	}
}

func TestStorageOverheadAbsolute(t *testing.T) {
	cfg := Table1Config(5, 3)
	// 100 disks of 1 GB, 1/5 parity => 20 GB.
	if got := cfg.StorageOverhead(StreamingRAID); got != 20*units.GB {
		t.Errorf("storage overhead = %v, want 20 GB", got)
	}
}

func TestBandwidthOverheadAbsolute(t *testing.T) {
	cfg := Table1Config(5, 3)
	// 100 disks at 4 MB/s, 1/5 reserved => 80 MB/s.
	if got := cfg.BandwidthOverhead(StreamingRAID).MegabytesPerSecond(); !almostEqual(got, 80, 1e-9) {
		t.Errorf("SR bandwidth overhead = %v MB/s, want 80", got)
	}
	// IB: 3 disks' worth => 12 MB/s.
	if got := cfg.BandwidthOverhead(ImprovedBandwidth).MegabytesPerSecond(); !almostEqual(got, 12, 1e-9) {
		t.Errorf("IB bandwidth overhead = %v MB/s, want 12", got)
	}
}

// Property: the paper's qualitative ordering claims hold across all valid
// (C, K) design points: SG needs roughly half of SR's memory (and never
// more), NC needs no more than SG, IB supports the most streams.
func TestSchemeOrderingProperties(t *testing.T) {
	f := func(cRaw, kRaw uint8) bool {
		c := int(cRaw%9) + 2 // 2..10
		k := int(kRaw%5) + 1 // 1..5
		d := 20 * c          // whole clusters
		cfg := Config{Disk: diskmodel.Table1(), ObjectRate: units.MPEG1, D: d, C: c, K: k}
		if err := cfg.Validate(); err != nil {
			return false
		}
		bfSR, err1 := cfg.BufferTracks(StreamingRAID)
		bfSG, err2 := cfg.BufferTracks(StaggeredGroup)
		bfNC, err3 := cfg.BufferTracks(NonClustered)
		nSR, err4 := cfg.MaxStreams(StreamingRAID)
		nIB, err5 := cfg.MaxStreams(ImprovedBandwidth)
		for _, err := range []error{err1, err2, err3, err4, err5} {
			if err != nil {
				return false
			}
		}
		if bfSG > bfSR {
			return false
		}
		// NC beats SG on memory when the degraded-mode reserve is small
		// relative to the cluster count and SG's per-stream buffer
		// exceeds NC's 2 tracks (true for C >= 4); at C = 3 SG's
		// per-stream peak is only 1.5 tracks so NC legitimately costs
		// more.
		if c >= 4 && k <= 2 && bfNC > bfSG+1e-9 {
			return false
		}
		// IB uses more disks for data whenever K < D/C, so it should beat
		// SR on streams in that regime.
		if k < d/c && nIB <= nSR {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the staggered-group memory saving approaches 1/2 of SR as the
// paper claims ("approximately 1/2 the memory"), modulo the stream-count
// difference: per stream SG needs C(C+1)/(2(C-1)) tracks vs SR's 2C.
// The ratio must fall with C and sit at or below the paper's "1/2" for
// the cluster sizes it evaluates (C >= 5).
func TestStaggeredMemorySaving(t *testing.T) {
	prev := 1.0
	for c := 3; c <= 12; c++ {
		perSR := 2.0 * float64(c)
		perSG := float64(c) * float64(c+1) / 2 / float64(c-1)
		ratio := perSG / perSR
		if ratio >= prev {
			t.Errorf("C=%d: SG/SR per-stream ratio %.3f not decreasing (prev %.3f)", c, ratio, prev)
		}
		if c >= 5 && ratio > 0.5 {
			t.Errorf("C=%d: SG/SR per-stream ratio %.3f, want <= 0.5 for C>=5", c, ratio)
		}
		prev = ratio
	}
}

// Property: MTTF falls as C grows (bigger groups, more exposure), and IB
// is always less reliable than SR at the same C; both per §4/§5.
func TestReliabilityMonotonicity(t *testing.T) {
	f := func(cRaw uint8) bool {
		c := int(cRaw%8) + 2 // 2..9
		// Compare cluster sizes c and c+1 at the same D; D = 90*c*(c+1)
		// is a whole number of clusters for both.
		d := 90 * c * (c + 1)
		a := Config{Disk: diskmodel.Table1(), ObjectRate: units.MPEG1, D: d, C: c, K: 3}
		b := Config{Disk: diskmodel.Table1(), ObjectRate: units.MPEG1, D: d, C: c + 1, K: 3}
		if a.MTTFCatastrophic(StreamingRAID) <= b.MTTFCatastrophic(StreamingRAID) {
			return false
		}
		return a.MTTFCatastrophic(ImprovedBandwidth) < a.MTTFCatastrophic(StreamingRAID)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMTTDSKZero(t *testing.T) {
	cfg := Config{Disk: diskmodel.Table1(), ObjectRate: units.MPEG1, D: 100, C: 5, K: 0}
	// No reserve: first failure degrades. 300000/100 h = 3000 h.
	if got := cfg.MTTDS(NonClustered).Hours(); !almostEqual(got, 3000, 1e-6) {
		t.Fatalf("K=0 MTTDS = %v hours, want 3000", got)
	}
}

func TestMTTFUnsetIsInf(t *testing.T) {
	d := diskmodel.Table1()
	d.MTTFHours = 0
	cfg := Config{Disk: d, ObjectRate: units.MPEG1, D: 100, C: 5, K: 3}
	if !math.IsInf(float64(cfg.MTTFCatastrophic(StreamingRAID)), 1) {
		t.Error("MTTF with no failure model should be +Inf")
	}
	if !math.IsInf(float64(cfg.MTTDS(NonClustered)), 1) {
		t.Error("MTTDS with no failure model should be +Inf")
	}
}

func TestMetricsErrorPropagation(t *testing.T) {
	bad := Config{Disk: diskmodel.Table1(), ObjectRate: 0, D: 100, C: 5, K: 3}
	if _, err := bad.Metrics(StreamingRAID); err == nil {
		t.Error("Metrics on invalid config should error")
	}
	if _, err := bad.AllMetrics(); err == nil {
		t.Error("AllMetrics on invalid config should error")
	}
	if _, err := bad.MaxStreamsInt(StreamingRAID); err == nil {
		t.Error("MaxStreamsInt on invalid config should error")
	}
	if _, err := bad.BufferTracksInt(StreamingRAID); err == nil {
		t.Error("BufferTracksInt on invalid config should error")
	}
	if _, err := bad.BufferBytes(StreamingRAID); err == nil {
		t.Error("BufferBytes on invalid config should error")
	}
}

func TestAllMetricsOrder(t *testing.T) {
	cfg := Table1Config(5, 3)
	ms, err := cfg.AllMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("AllMetrics returned %d entries", len(ms))
	}
	for i, s := range Schemes() {
		if ms[i].Scheme != s {
			t.Errorf("entry %d is %s, want %s", i, ms[i].Scheme, s)
		}
	}
}

func TestBufferBytes(t *testing.T) {
	cfg := Table1Config(5, 3)
	b, err := cfg.BufferBytes(StreamingRAID)
	if err != nil {
		t.Fatal(err)
	}
	// ~10416.7 tracks of 50 KB each ~ 520.8 MB.
	if got := b.Megabytes(); !almostEqual(got, 520.83, 0.1) {
		t.Fatalf("SR buffer = %.2f MB, want ~520.8", got)
	}
}

func TestBufferTracksForStreams(t *testing.T) {
	cfg := Table1Config(5, 3)
	// 1200 required streams under SR at C=5: 2C*1200 = 12000 tracks.
	if got := cfg.BufferTracksForStreams(StreamingRAID, 1200); !almostEqual(got, 12000, 1e-9) {
		t.Fatalf("SR buffers for 1200 streams = %v, want 12000", got)
	}
}
