package netserve

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"ftmm/internal/sched"
)

// activeReport reports whether a cycle did any engine work. Trailing
// idle cycles differ between pipelined and serial runs — the pipelined
// front end removes finished sessions asynchronously, so its driver may
// issue an extra empty step or two before seeing the farm quiesce — and
// carry no delivery content, so the equality check trims them.
func activeReport(r *sched.CycleReport) bool {
	return len(r.Delivered) > 0 || len(r.Hiccups) > 0 ||
		len(r.Finished) > 0 || len(r.Terminated) > 0 ||
		r.DataReads > 0 || r.ParityReads > 0 || r.Reconstructions > 0
}

func trimIdle(reports []*sched.CycleReport) []*sched.CycleReport {
	n := len(reports)
	for n > 0 && !activeReport(reports[n-1]) {
		n--
	}
	return reports[:n]
}

// runPipelineWorkload streams every title of a fresh rig to its own
// client, fails a drive mid-stream, and runs the farm to completion,
// capturing a Clone of every cycle report via the test hook.
func runPipelineWorkload(t *testing.T, scheme string, noPipeline bool) (*loopRig, map[string]*clientResult, []*sched.CycleReport) {
	t.Helper()
	cfg := defaultRig()
	cfg.ns = Options{NoPipeline: noPipeline, Logf: t.Logf}
	r := newLoopRig(t, scheme, cfg)
	var reports []*sched.CycleReport
	r.ns.reportHook = func(rep *sched.CycleReport) { reports = append(reports, rep) }

	chans := make(map[string]chan *clientResult, len(r.titles))
	for _, title := range r.titles {
		c, _ := r.connect(t, title)
		t.Cleanup(func() { c.Close() })
		ch := make(chan *clientResult, 1)
		go func(c *Client) { ch <- consume(c) }(c)
		chans[title] = ch
	}
	r.ns.ScheduleFailure(3, 0)
	r.stepUntilIdle(t, 400)
	res := make(map[string]*clientResult, len(chans))
	for title, ch := range chans {
		res[title] = <-ch
	}
	return r, res, reports
}

// TestPipelineBitExactVsNoPipeline is the pipeline's correctness
// anchor: the same workload — every title streaming, a drive failing
// mid-stream — run pipelined and with NoPipeline must deliver
// bit-identical bytes to every client and produce Equal cycle reports,
// cycle for cycle. Run at two GOMAXPROCS settings so the race detector
// (in CI's -race pass) sees both a starved and a parallel schedule.
func TestPipelineBitExactVsNoPipeline(t *testing.T) {
	for _, procs := range []int{2, 8} {
		t.Run(fmt.Sprintf("procs%d", procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			for _, scheme := range []string{"sr", "nc"} {
				t.Run(scheme, func(t *testing.T) {
					pipeRig, pipeRes, pipeReps := runPipelineWorkload(t, scheme, false)
					serRig, serRes, serReps := runPipelineWorkload(t, scheme, true)

					for _, title := range pipeRig.titles {
						verifyBitExact(t, pipeRig, title, pipeRes[title])
						verifyBitExact(t, serRig, title, serRes[title])
						p, s := pipeRes[title], serRes[title]
						if p.bye != s.bye {
							t.Errorf("%s: bye %q pipelined vs %q serial", title, p.bye, s.bye)
						}
						if len(p.tracks) != len(s.tracks) {
							t.Errorf("%s: %d tracks pipelined vs %d serial", title, len(p.tracks), len(s.tracks))
						}
						for track, data := range p.tracks {
							if !bytes.Equal(data, s.tracks[track]) {
								t.Errorf("%s: track %d bytes differ between pipelined and serial runs", title, track)
							}
						}
						if len(p.hiccups) != len(s.hiccups) {
							t.Errorf("%s: %d hiccups pipelined vs %d serial", title, len(p.hiccups), len(s.hiccups))
						}
					}

					a, b := trimIdle(pipeReps), trimIdle(serReps)
					if len(a) != len(b) {
						t.Fatalf("%d active cycles pipelined vs %d serial", len(a), len(b))
					}
					for i := range a {
						if !a[i].Equal(b[i]) {
							t.Errorf("cycle %d: reports differ between pipelined and serial runs", a[i].Cycle)
						}
					}
				})
			}
		})
	}
}

// TestPipelinedDrainNoLeak checks the arena accounting across a
// graceful drain in pipelined mode: admissions stop mid-stream, live
// streams play out through the overlapped staging passes, and once the
// farm idles every track buffer must be back in the arena. (The
// shed and mid-stream disconnect legs of the same invariant run
// pipelined too, in TestArenaNoLeakAfterShedAndDisconnect.)
func TestPipelinedDrainNoLeak(t *testing.T) {
	cfg := defaultRig()
	cfg.groups = 10
	cfg.ns = Options{Logf: t.Logf}
	r := newLoopRig(t, "sr", cfg)
	arena := r.srv.Engine().Arena()
	if arena == nil {
		t.Fatal("engine has no arena")
	}

	var chans []chan *clientResult
	for _, title := range r.titles {
		c, _ := r.connect(t, title)
		t.Cleanup(func() { c.Close() })
		ch := make(chan *clientResult, 1)
		go func(c *Client) { ch <- consume(c) }(c)
		chans = append(chans, ch)
	}
	for i := 0; i < 3; i++ {
		if err := r.ns.StepCycle(); err != nil {
			t.Fatal(err)
		}
	}
	r.ns.BeginDrain()
	for i := 0; i < 400 && !r.ns.Drained(); i++ {
		if err := r.ns.StepCycle(); err != nil {
			t.Fatal(err)
		}
	}
	if !r.ns.Drained() {
		t.Fatal("drain did not complete")
	}
	for i, ch := range chans {
		res := <-ch
		if res.err != nil || res.bye != "finished" {
			t.Fatalf("client %d: err=%v bye=%q, want a finished playout", i, res.err, res.bye)
		}
	}
	// The engine holds delivered refs for two further Steps; idle-step
	// until every buffer is home.
	deadline := time.Now().Add(10 * time.Second)
	for arena.Outstanding() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("arena has %d buffers outstanding after drain", arena.Outstanding())
		}
		if err := r.ns.StepCycle(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
}
