package netserve

import (
	"sync/atomic"
	"testing"
	"time"
)

// wheelFixture is a fast wheel plus a fire counter, so the tests can
// use millisecond ticks instead of the production 25ms.
type wheelFixture struct {
	w     *TimerWheel
	t     *WheelTimer
	fires atomic.Int64
	fired chan struct{}
}

func newWheelFixture(t *testing.T, tick time.Duration, slots int) *wheelFixture {
	t.Helper()
	f := &wheelFixture{fired: make(chan struct{}, 16)}
	f.w = NewTimerWheel(tick, slots)
	t.Cleanup(f.w.Close)
	f.t = f.w.NewTimer(func() {
		f.fires.Add(1)
		f.fired <- struct{}{}
	})
	return f
}

func (f *wheelFixture) waitFire(t *testing.T, within time.Duration) {
	t.Helper()
	select {
	case <-f.fired:
	case <-time.After(within):
		t.Fatalf("timer did not fire within %v", within)
	}
}

func TestWheelFires(t *testing.T) {
	f := newWheelFixture(t, 2*time.Millisecond, 8)
	start := time.Now()
	f.t.Reset(10 * time.Millisecond)
	f.waitFire(t, 2*time.Second)
	if got := time.Since(start); got < 8*time.Millisecond {
		t.Errorf("fired after %v, want >= 8ms (a tick early at worst)", got)
	}
	if got := f.fires.Load(); got != 1 {
		t.Errorf("fires = %d, want 1", got)
	}
}

func TestWheelStopPreventsFire(t *testing.T) {
	f := newWheelFixture(t, 2*time.Millisecond, 8)
	f.t.Reset(10 * time.Millisecond)
	f.t.Stop()
	time.Sleep(50 * time.Millisecond)
	if got := f.fires.Load(); got != 0 {
		t.Errorf("stopped timer fired %d times", got)
	}
	// Stop is idempotent and a stopped timer re-arms cleanly.
	f.t.Stop()
	f.t.Reset(4 * time.Millisecond)
	f.waitFire(t, 2*time.Second)
}

func TestWheelResetSupersedes(t *testing.T) {
	f := newWheelFixture(t, 2*time.Millisecond, 8)
	// A distant arm followed by a near one: only the near one counts,
	// and it fires exactly once (the stale slot entry is dropped).
	f.t.Reset(10 * time.Second)
	f.t.Reset(6 * time.Millisecond)
	f.waitFire(t, 2*time.Second)
	time.Sleep(50 * time.Millisecond)
	if got := f.fires.Load(); got != 1 {
		t.Errorf("fires = %d, want 1 after re-arm", got)
	}
	// Re-arming after a fire works too: the timer is reusable.
	f.t.Reset(4 * time.Millisecond)
	f.waitFire(t, 2*time.Second)
	if got := f.fires.Load(); got != 2 {
		t.Errorf("fires = %d, want 2", got)
	}
}

func TestWheelLongDelayRounds(t *testing.T) {
	// Horizon beyond one revolution: 4 slots x 2ms = 8ms wheel, 30ms
	// delay needs rounds bookkeeping. It must neither fire early nor
	// get lost.
	f := newWheelFixture(t, 2*time.Millisecond, 4)
	start := time.Now()
	f.t.Reset(30 * time.Millisecond)
	f.waitFire(t, 2*time.Second)
	if got := time.Since(start); got < 20*time.Millisecond {
		t.Errorf("long-delay timer fired after %v, want >= 20ms", got)
	}
}

func TestWheelClose(t *testing.T) {
	f := newWheelFixture(t, 2*time.Millisecond, 8)
	f.t.Reset(10 * time.Millisecond)
	f.w.Close()
	f.w.Close() // idempotent
	time.Sleep(50 * time.Millisecond)
	if got := f.fires.Load(); got != 0 {
		t.Errorf("timer fired %d times after Close", got)
	}
}
