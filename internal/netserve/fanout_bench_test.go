package netserve

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ftmm/internal/diskmodel"
	"ftmm/internal/server"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// BenchmarkFanout64Wave mirrors the ftmmbench NetserveFanout64 baseline
// row (64 concurrent sessions, 8 per title, one op = every client dials
// and streams its whole title) so the fan-out path can be profiled and
// iterated on with `go test -bench` instead of a full baseline run.
func BenchmarkFanout64Wave(b *testing.B) {
	scheme, policy, err := server.ParseScheme("sr")
	if err != nil {
		b.Fatal(err)
	}
	const d, c, titles, groups, fanout = 8, 4, 8, 8, 64
	p := diskmodel.Table1()
	tracksPerTitle := groups * c
	p.Capacity = units.ByteSize(titles*c*tracksPerTitle/d+tracksPerTitle+50) * p.TrackSize
	srv, err := server.New(server.Options{
		Disks: d, ClusterSize: c,
		DiskParams: p, Scheme: scheme, K: 2, NCPolicy: policy,
	})
	if err != nil {
		b.Fatal(err)
	}
	trackSize := int(p.TrackSize)
	titleSize := groups * (c - 1) * trackSize
	names := workload.ObjectNames("bench", titles)
	for i, id := range names {
		if err := srv.AddTitle(id, units.ByteSize(titleSize), i, workload.SyntheticContent(id, titleSize)); err != nil {
			b.Fatal(err)
		}
	}
	ns, err := New(Options{Server: srv, Clock: VirtualClock(), SendQueue: groups + 8})
	if err != nil {
		b.Fatal(err)
	}
	defer ns.Close()

	stream := func(title string) error {
		var cl *Client
		for attempt := 0; ; attempt++ {
			c, err := Dial(ns.Addr().String(), 30*time.Second)
			if err != nil {
				return err
			}
			c.ReuseBuffers(true)
			if _, err := c.Admit(title); err != nil {
				c.Close()
				var rej *RejectedError
				if errors.As(err, &rej) && rej.Reject.RetryAfterMillis >= 0 && attempt < 10000 {
					time.Sleep(200 * time.Microsecond)
					continue
				}
				return err
			}
			cl = c
			break
		}
		defer cl.Close()
		for {
			ev, err := cl.Next()
			if err != nil {
				return err
			}
			if ev.Bye != nil {
				if ev.Bye.Reason != "finished" {
					return fmt.Errorf("bye %q", ev.Bye.Reason)
				}
				return nil
			}
		}
	}

	b.SetBytes(int64(fanout) * int64(titleSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make(chan error, fanout)
		for s := 0; s < fanout; s++ {
			wg.Add(1)
			go func(title string) {
				defer wg.Done()
				if err := stream(title); err != nil {
					errs <- err
				}
			}(names[s%len(names)])
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
	}
}
