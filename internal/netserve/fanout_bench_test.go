package netserve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ftmm/internal/diskmodel"
	"ftmm/internal/server"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// BenchmarkFanout64Tracks mirrors the ftmmbench NetserveFanout64
// baseline row (64 concurrent sessions, 8 per title, manual clock, the
// cohort's dials and ADMIT handshakes off the timer; one op is one
// delivered TRACK frame) so the fan-out path can be profiled and
// iterated on with `go test -bench` instead of a full baseline run.
func BenchmarkFanout64Tracks(b *testing.B) {
	scheme, policy, err := server.ParseScheme("sr")
	if err != nil {
		b.Fatal(err)
	}
	const d, c, titles, groups, fanout = 8, 4, 8, 8, 64
	perCycle := fanout * (c - 1)
	p := diskmodel.Table1()
	tracksPerTitle := groups * c
	p.Capacity = units.ByteSize(titles*c*tracksPerTitle/d+tracksPerTitle+50) * p.TrackSize
	srv, err := server.New(server.Options{
		Disks: d, ClusterSize: c,
		DiskParams: p, Scheme: scheme, K: 2, NCPolicy: policy,
		SlotsPerDisk: fanout,
	})
	if err != nil {
		b.Fatal(err)
	}
	trackSize := int(p.TrackSize)
	titleSize := groups * (c - 1) * trackSize
	names := workload.ObjectNames("bench", titles)
	for i, id := range names {
		if err := srv.AddTitle(id, units.ByteSize(titleSize), i, workload.SyntheticContent(id, titleSize)); err != nil {
			b.Fatal(err)
		}
	}
	// No pacing clock — the bench drives StepCycle — and the send queue
	// holds a whole title so no client can be shed however fast cycles
	// are pushed.
	ns, err := New(Options{Server: srv, SendQueue: groups + 8})
	if err != nil {
		b.Fatal(err)
	}
	defer ns.Close()

	b.SetBytes(int64(trackSize))
	b.ResetTimer()
	for delivered := 0; delivered < b.N; {
		b.StopTimer()
		clients := make([]*Client, fanout)
		for i := range clients {
			cl, err := Dial(ns.Addr().String(), 30*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			cl.ReuseBuffers(true)
			if _, err := cl.Admit(names[i%len(names)]); err != nil {
				b.Fatal(err)
			}
			clients[i] = cl
		}
		var wg sync.WaitGroup
		var finished atomic.Int32
		errs := make(chan error, fanout)
		for _, cl := range clients {
			wg.Add(1)
			go func(cl *Client) {
				defer wg.Done()
				defer finished.Add(1)
				defer cl.Close()
				for {
					ev, err := cl.Next()
					if err != nil {
						errs <- err
						return
					}
					switch {
					case ev.Hiccup != nil:
						errs <- fmt.Errorf("hiccup: %+v", ev.Hiccup)
						return
					case ev.Bye != nil:
						if ev.Bye.Reason != "finished" {
							errs <- fmt.Errorf("bye %q", ev.Bye.Reason)
						}
						return
					}
				}
			}(cl)
		}
		b.StartTimer()
		start := time.Now()
		for cyc := 0; finished.Load() < int32(fanout) && delivered < b.N; cyc++ {
			if err := ns.StepCycle(); err != nil {
				b.Fatal(err)
			}
			if cyc < groups {
				delivered += perCycle
			} else {
				// The whole title is pushed (or queued); the cohort is
				// draining. Stepping is an idle no-op now, so yield.
				time.Sleep(200 * time.Microsecond)
				if time.Since(start) > 2*time.Minute {
					b.Fatal("fan-out cohort never drained")
				}
			}
		}
		b.StopTimer()
		if finished.Load() != int32(fanout) {
			// b.N reached mid-title: unwind the cohort off the clock. The
			// forced closes make the consumers' read errors expected, so
			// they are dropped rather than checked.
			for _, cl := range clients {
				cl.Close()
			}
			wg.Wait()
		} else {
			wg.Wait()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
		}
		b.StartTimer()
	}
	b.StopTimer()
}
