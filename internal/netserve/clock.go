package netserve

import (
	"time"
)

// Clock paces the transmission loop. Pace blocks for one cycle of
// length d (or returns early, reporting false, when stop closes); Now
// returns the accumulated virtual time so session records agree across
// wall and virtual pacing.
//
// Options.Clock == nil selects manual mode: nothing paces, and the
// owner drives cycles explicitly through NetServer.StepCycle. Tests use
// manual mode to place disk failures at exact cycle boundaries.
type Clock interface {
	Pace(d time.Duration, stop <-chan struct{}) bool
	Now() time.Duration
}

// wallClock sleeps real time, optionally sped up. The pacer calls Pace
// once per cycle forever, so the timer is allocated once and re-armed
// with Reset rather than rebuilt per cycle.
type wallClock struct {
	speedup float64
	elapsed time.Duration
	t       *time.Timer
}

// WallClock paces cycles in real time divided by speedup (1 = real
// time, 100 = hundred-fold fast-forward). Use for live demos where the
// client should observe genuine playback pacing.
func WallClock(speedup float64) Clock {
	if speedup <= 0 {
		speedup = 1
	}
	return &wallClock{speedup: speedup}
}

func (c *wallClock) Pace(d time.Duration, stop <-chan struct{}) bool {
	c.elapsed += d
	dur := time.Duration(float64(d) / c.speedup)
	if c.t == nil {
		c.t = time.NewTimer(dur)
	} else {
		// The timer's channel is always drained on the true path, so
		// Reset without a Stop/drain dance is safe here.
		c.t.Reset(dur)
	}
	select {
	case <-c.t.C:
		return true
	case <-stop:
		if !c.t.Stop() {
			select {
			case <-c.t.C:
			default:
			}
		}
		return false
	}
}

func (c *wallClock) Now() time.Duration { return c.elapsed }

// virtualClock advances instantly: cycles run back to back as fast as
// the engine and the sockets allow, while Now still reports proper
// simulated time. Use for throughput tests and load generation.
type virtualClock struct {
	elapsed time.Duration
}

// VirtualClock returns a clock that never sleeps.
func VirtualClock() Clock { return &virtualClock{} }

func (c *virtualClock) Pace(d time.Duration, stop <-chan struct{}) bool {
	select {
	case <-stop:
		return false
	default:
	}
	c.elapsed += d
	return true
}

func (c *virtualClock) Now() time.Duration { return c.elapsed }
