package netserve

import (
	"sync"
	"time"
)

// TimerWheel is a coarse hashed timing wheel: one goroutine and one
// time.Ticker supervise any number of re-armable timers at tick
// granularity. The write path arms a timer around every vectored write;
// a per-write time.Timer (or SetWriteDeadline syscall pair) at that
// frequency is exactly the overhead the wheel amortizes away. Firing is
// late by up to one tick plus scheduling — fine for stall detection,
// wrong for precise scheduling.
type TimerWheel struct {
	tick time.Duration

	mu      sync.Mutex
	slots   [][]wheelEntry
	cur     int
	stopped bool

	// fired is the advance pass's scratch list, reused every tick.
	fired []func()

	stop chan struct{}
	done chan struct{}
}

type wheelEntry struct {
	t *WheelTimer
	// gen snapshots the timer's generation at arm time; a Reset or Stop
	// since then makes this entry stale and it is dropped unfired.
	gen uint64
}

// WheelTimer is one re-armable timer on a wheel. Reset and Stop are
// cheap (one mutex hop, no allocation in steady state) and safe to call
// concurrently with the wheel firing. fn runs on the wheel goroutine
// and must not block.
type WheelTimer struct {
	w      *TimerWheel
	fn     func()
	gen    uint64
	rounds int
	armed  bool
}

// NewTimerWheel starts a wheel with the given tick and slot count
// (defaults applied for non-positive values). Close releases it.
func NewTimerWheel(tick time.Duration, slots int) *TimerWheel {
	if tick <= 0 {
		tick = wheelTick
	}
	if slots < 2 {
		slots = wheelSlots
	}
	w := &TimerWheel{
		tick:  tick,
		slots: make([][]wheelEntry, slots),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go w.run()
	return w
}

// NewTimer creates an unarmed timer that runs fn when it expires.
func (w *TimerWheel) NewTimer(fn func()) *WheelTimer {
	return &WheelTimer{w: w, fn: fn}
}

// Close stops the wheel goroutine. Armed timers never fire afterwards.
func (w *TimerWheel) Close() {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	w.stopped = true
	w.mu.Unlock()
	close(w.stop)
	<-w.done
}

func (w *TimerWheel) run() {
	tk := time.NewTicker(w.tick)
	defer tk.Stop()
	for {
		select {
		case <-w.stop:
			close(w.done)
			return
		case <-tk.C:
			w.advance()
		}
	}
}

// advance moves the wheel one slot and fires that slot's due entries.
// Callbacks run outside the lock so a firing timer may Reset itself.
func (w *TimerWheel) advance() {
	w.mu.Lock()
	w.cur = (w.cur + 1) % len(w.slots)
	slot := w.slots[w.cur]
	keep := slot[:0]
	fired := w.fired[:0]
	for _, e := range slot {
		if e.t.gen != e.gen || !e.t.armed {
			continue // re-armed or stopped since scheduling: stale
		}
		if e.t.rounds > 0 {
			e.t.rounds--
			keep = append(keep, e)
			continue
		}
		e.t.armed = false
		fired = append(fired, e.t.fn)
	}
	for i := len(keep); i < len(slot); i++ {
		slot[i] = wheelEntry{}
	}
	w.slots[w.cur] = keep
	w.fired = fired
	w.mu.Unlock()
	for i, fn := range fired {
		fn()
		fired[i] = nil
	}
}

// Reset arms (or re-arms) the timer to fire after d. Any earlier
// scheduling is superseded.
func (t *WheelTimer) Reset(d time.Duration) {
	w := t.w
	w.mu.Lock()
	slots := len(w.slots)
	ticks := int(d / w.tick)
	if ticks < 1 {
		ticks = 1
	}
	// The wheel reaches the target slot in k0 ticks (1..slots); the
	// remaining delay is spent as full revolutions counted in rounds.
	k0 := ticks % slots
	if k0 == 0 {
		k0 = slots
	}
	t.gen++
	t.armed = true
	t.rounds = (ticks - k0) / slots
	idx := (w.cur + ticks) % slots
	w.slots[idx] = append(w.slots[idx], wheelEntry{t: t, gen: t.gen})
	w.mu.Unlock()
}

// Stop disarms the timer; a pending expiry will not fire. Unlike
// time.Timer there is nothing to drain.
func (t *WheelTimer) Stop() {
	w := t.w
	w.mu.Lock()
	t.gen++
	t.armed = false
	w.mu.Unlock()
}
