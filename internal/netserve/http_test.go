package netserve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestHTTPEndpoints(t *testing.T) {
	r := newLoopRig(t, "sr", defaultRig())
	hs := httptest.NewServer(r.ns.Handler())
	defer hs.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	code, body := get("/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz: %d %s", code, body)
	}
	var st status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if st.Scheme != "Streaming RAID" || st.Titles != 2 || st.Burst != 3 {
		t.Errorf("/statusz = %+v", st)
	}

	code, body = get("/titlesz")
	if code != http.StatusOK {
		t.Fatalf("/titlesz: %d %s", code, body)
	}
	var titles []string
	if err := json.Unmarshal(body, &titles); err != nil || len(titles) != 2 || titles[0] != "title0" {
		t.Errorf("/titlesz = %s (err %v)", body, err)
	}

	code, body = get("/metricsz")
	if code != http.StatusOK {
		t.Fatalf("/metricsz: %d", code)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metricsz not JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"counters", "gauges", "histograms"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("/metricsz missing %q:\n%s", key, body)
		}
	}

	// Admission probe: success, unknown title, wrong method.
	resp, err := http.Post(hs.URL+"/admitz?title=title0", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("/admitz title0: %d, want 204", resp.StatusCode)
	}
	resp, err = http.Post(hs.URL+"/admitz?title=no-such", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/admitz no-such: %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/admitz?title=title0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /admitz: %d, want 405", resp.StatusCode)
	}
}

// TestHTTPAdmitFull checks the capacity path: a full one-cluster farm
// answers the probe with 503 and a Retry-After hint.
func TestHTTPAdmitFull(t *testing.T) {
	cfg := defaultRig()
	cfg.disks, cfg.cluster, cfg.slotsPerDisk = 5, 5, 1
	r := newLoopRig(t, "sr", cfg)
	c, _ := r.connect(t, r.titles[0]) // occupies the only slot
	defer c.Close()

	hs := httptest.NewServer(r.ns.Handler())
	defer hs.Close()
	resp, err := http.Post(hs.URL+"/admitz?title=title1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/admitz on full farm: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}
	// Draining refuses the probe outright.
	_ = r.ns.Drain(time.Nanosecond)
	resp2, err := http.Post(hs.URL+"/admitz?title=title1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/admitz while draining: %d, want 503", resp2.StatusCode)
	}
}
