package netserve

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestArenaNoLeakAfterShedAndDisconnect is the refcount leak check for
// the zero-copy path: after a run that mixes a clean playout, a
// mid-stream client disconnect, and a stalled client shed off a full
// send queue, every track buffer must be back in the arena. A missing
// Release anywhere — engine report, queued burst, in-flight write —
// shows up as a non-zero outstanding count.
func TestArenaNoLeakAfterShedAndDisconnect(t *testing.T) {
	cfg := defaultRig()
	cfg.groups = 10
	cfg.ns = Options{
		SendQueue:        4, // bursts: less than the title's burst count, so the stalled client overflows
		WriteTimeout:     5 * time.Second,
		WriteBufferBytes: 8 << 10,
		Logf:             t.Logf,
	}
	r := newLoopRig(t, "sr", cfg)
	arena := r.srv.Engine().Arena()
	if arena == nil {
		t.Fatal("engine has no arena")
	}

	healthy, hOK := r.connect(t, r.titles[1])
	defer healthy.Close()
	hRes := make(chan *clientResult, 1)
	go func() { hRes <- consume(healthy) }()

	// The quitter reads two frames and hangs up mid-stream; its session
	// still holds queued bursts and possibly an in-flight write.
	quitter, _ := r.connect(t, r.titles[0])
	quitDone := make(chan struct{})
	go func() {
		defer close(quitDone)
		for i := 0; i < 2; i++ {
			if _, err := quitter.Next(); err != nil {
				break
			}
		}
		quitter.Close()
	}()

	stalled, _ := r.connect(t, r.titles[0])
	defer stalled.Close() // never reads a frame

	shed := r.srv.Metrics().Counter("net_sessions_shed")
	for i := 0; i < 300; i++ {
		if r.ns.Sessions() == 0 && r.srv.Engine().Active() == 0 {
			break
		}
		if err := r.ns.StepCycle(); err != nil {
			t.Fatal(err)
		}
		r.waitQueueDrained(hOK.StreamID)
	}
	<-quitDone
	if got := shed.Value(); got < 1 {
		t.Fatalf("net_sessions_shed = %d, want >= 1 (stalled client not shed)", got)
	}
	h := <-hRes
	if h.err != nil || h.bye != "finished" {
		t.Fatalf("healthy stream: err=%v bye=%q", h.err, h.bye)
	}

	// The engine holds the last cycle's delivered refs until the next
	// Step, and writer goroutines may still be unwinding; step idle
	// cycles and poll until every buffer is home.
	deadline := time.Now().Add(10 * time.Second)
	for arena.Outstanding() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("arena has %d buffers outstanding after idle", arena.Outstanding())
		}
		if err := r.ns.StepCycle(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
}

// chunkConn is a net.Conn stub whose Write accepts at most cap bytes
// per call, returning n < len(p) with a nil error — the short-write
// contract violation writeVectored's fallback loop must tolerate. It
// records everything accepted.
type chunkConn struct {
	cap    int
	got    bytes.Buffer
	writes int
}

func (c *chunkConn) Write(p []byte) (int, error) {
	c.writes++
	n := len(p)
	if n > c.cap {
		n = c.cap
	}
	c.got.Write(p[:n])
	return n, nil
}

func (c *chunkConn) Read(p []byte) (int, error)         { return 0, fmt.Errorf("not readable") }
func (c *chunkConn) Close() error                       { return nil }
func (c *chunkConn) LocalAddr() net.Addr                { return nil }
func (c *chunkConn) RemoteAddr() net.Addr               { return nil }
func (c *chunkConn) SetDeadline(t time.Time) error      { return nil }
func (c *chunkConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *chunkConn) SetWriteDeadline(t time.Time) error { return nil }

// TestWriteVectoredPartialWrites feeds writeVectored a conn that
// splits every write mid-buffer (7-byte chunks cut both the 9-byte
// track header and the payloads) and checks the byte stream still
// parses into the exact frames that went in.
func TestWriteVectoredPartialWrites(t *testing.T) {
	payloads := [][]byte{
		bytes.Repeat([]byte{0xAA}, 100),
		bytes.Repeat([]byte{0xBB}, 1),
		bytes.Repeat([]byte{0xCC}, 257),
	}
	var bufs net.Buffers
	var want bytes.Buffer
	hdrs := make([]*[trackHeaderLen]byte, len(payloads))
	for i, p := range payloads {
		hdrs[i] = new([trackHeaderLen]byte)
		encodeTrackHeader(hdrs[i], i, len(p))
		bufs = append(bufs, hdrs[i][:], p)
		want.Write(trackFrame(i, p)) // reference encoding
	}

	for _, chunk := range []int{1, 7, 64} {
		conn := &chunkConn{cap: chunk}
		cp := make(net.Buffers, len(bufs))
		copy(cp, bufs)
		if err := writeVectored(conn, cp); err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if !bytes.Equal(conn.got.Bytes(), want.Bytes()) {
			t.Fatalf("chunk %d: stream corrupted (%d bytes written, want %d)", chunk, conn.got.Len(), want.Len())
		}
		// Parse the stream back as frames for good measure.
		rd := bytes.NewReader(conn.got.Bytes())
		for i, p := range payloads {
			typ, payload, err := readFrame(rd)
			if err != nil {
				t.Fatalf("chunk %d: frame %d: %v", chunk, i, err)
			}
			if typ != frameTrack {
				t.Fatalf("chunk %d: frame %d: type %d, want TRACK", chunk, i, typ)
			}
			track, data, err := parseTrack(payload)
			if err != nil || track != i || !bytes.Equal(data, p) {
				t.Fatalf("chunk %d: frame %d: track=%d err=%v data ok=%v", chunk, i, track, err, bytes.Equal(data, p))
			}
		}
		if rd.Len() != 0 {
			t.Fatalf("chunk %d: %d trailing bytes", chunk, rd.Len())
		}
	}
}

// TestPprofOptIn checks the /debug/pprof endpoints are mounted only
// when Options.EnablePprof is set.
func TestPprofOptIn(t *testing.T) {
	for _, tc := range []struct {
		enable bool
		want   int
	}{
		{enable: false, want: http.StatusNotFound},
		{enable: true, want: http.StatusOK},
	} {
		cfg := defaultRig()
		cfg.ns = Options{EnablePprof: tc.enable}
		r := newLoopRig(t, "sr", cfg)
		req := httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil)
		rec := httptest.NewRecorder()
		r.ns.Handler().ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Errorf("EnablePprof=%v: GET /debug/pprof/ = %d, want %d", tc.enable, rec.Code, tc.want)
		}
	}
}
