// Package netserve is the network delivery layer over internal/server:
// a stdlib-only TCP front-end that admits client sessions over a small
// framed protocol and paces each admitted stream's tracks out at its
// playback rate, plus an HTTP surface for admission probes, status, and
// metrics.
//
// The session protocol is five frame types over one TCP connection:
//
//	client                          server
//	HELLO "FTMM/1"     ──────────▶
//	                   ◀──────────  HELLO "FTMM/1"
//	ADMIT <title>      ──────────▶
//	                   ◀──────────  ADMIT-OK {stream, tracks, burst, …}
//	                                (or REJECT {reason, retry_after_ms})
//	                   ◀──────────  TRACK <index><bytes>   ┐ one burst per
//	                   ◀──────────  TRACK <index><bytes>   ┘ transmission cycle
//	                   ◀──────────  HICCUP {track, reason}   (lost track)
//	                   ◀──────────  BYE {reason}
//	BYE                ──────────▶  (client hang-up at any point)
//
// Every frame is a 1-byte type, a 4-byte big-endian payload length, and
// the payload. Control payloads are JSON; TRACK payloads are a 4-byte
// big-endian track index followed by the raw track bytes. The burst
// field of ADMIT-OK is the scheme's k′: whole-group schemes (Streaming
// RAID, Improved-bandwidth) ship C-1 tracks per read cycle, per-track
// schemes (Staggered-group, Non-clustered) one track per transmission
// cycle.
package netserve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// protocolMagic identifies protocol version 1 in the HELLO exchange.
const protocolMagic = "FTMM/1"

// Frame types.
const (
	frameHello   byte = 0x01
	frameAdmit   byte = 0x02
	frameAdmitOK byte = 0x03
	frameReject  byte = 0x04
	frameTrack   byte = 0x05
	frameHiccup  byte = 0x06
	frameBye     byte = 0x07
	// Cluster verbs. REDIRECT answers ADMIT/RESUME at a coordinator
	// (go ask this node); RESUME is ADMIT from the middle of a title
	// (session failover after a node death); VIEW carries membership —
	// coordinator → node it pushes the current cluster view, node →
	// coordinator it acknowledges with the node's load (the heartbeat).
	frameRedirect byte = 0x08
	frameResume   byte = 0x09
	frameView     byte = 0x0A
	// VCR verbs. PAUSE parks a playing session (position held, cycle
	// bandwidth released); RESUME_PLAY re-admits it at the held position
	// (or drops an FF session back to rate 1); FF carries a 4-byte
	// big-endian rate multiplier; REWIND carries a 4-byte big-endian
	// target track. The server answers each with VCR-OK or, when
	// re-admission or the rate change would exceed the admission bound,
	// REJECT with Retry-After.
	framePause      byte = 0x0B
	frameResumePlay byte = 0x0C
	frameFF         byte = 0x0D
	frameRewind     byte = 0x0E
	frameVcrOK      byte = 0x0F
)

const (
	frameHeaderLen = 5
	// trackHeaderLen covers a TRACK frame's fixed prefix: the frame
	// header plus the 4-byte track index. The server pools headers of
	// this size and ships the payload with a vectored write, so a TRACK
	// frame never exists as one contiguous buffer on the send path.
	trackHeaderLen = frameHeaderLen + 4
	// maxFramePayload bounds a payload: a track plus its index fits with
	// room to spare; anything larger is a protocol violation, not a read.
	maxFramePayload = 16 << 20
)

// AdmitOK is the server's answer to a successful ADMIT.
type AdmitOK struct {
	StreamID  int    `json:"stream_id"`
	Title     string `json:"title"`
	TrackSize int    `json:"track_size"`
	// Tracks is the total number of tracks the stream will carry; Size
	// is the object's exact byte length (the last track may be shorter,
	// padded with zeros on the wire). Clients verifying synthetic
	// content regenerate it from Size.
	Tracks int `json:"tracks"`
	Size   int `json:"size"`
	// CycleNanos is the transmission cycle length; Burst tracks arrive
	// per cycle (k′-aware pacing: C-1 for SR/IB, 1 for SG/NC).
	CycleNanos int64 `json:"cycle_ns"`
	Burst      int   `json:"burst"`
	// StartTrack is the first track this session will carry — 0 for a
	// fresh admission, the resume boundary for a RESUME admission (the
	// parity-group floor of the requested track, so it may be at or
	// before the track the client asked for).
	StartTrack int `json:"start_track,omitempty"`
	// NodeID names the serving node in a cluster; empty standalone.
	NodeID string `json:"node_id,omitempty"`
}

// Redirect is a coordinator's answer to ADMIT or RESUME: the session
// belongs on another node. The client re-runs its handshake there.
type Redirect struct {
	NodeID string `json:"node_id"`
	Addr   string `json:"addr"`
	Reason string `json:"reason,omitempty"`
}

// ResumeReq asks for a session from the middle of a title: NextTrack is
// the first track the client still needs. A node admits the stream at
// the enclosing parity-group boundary; a coordinator picks a live
// holder of the title — excluding Avoid, the node(s) the client just
// lost — and answers with a REDIRECT.
type ResumeReq struct {
	Title     string   `json:"title"`
	NextTrack int      `json:"next_track"`
	Avoid     []string `json:"avoid,omitempty"`
}

// ViewAck is a node's heartbeat reply to a pushed VIEW: the view number
// it now holds plus its live load, which the coordinator uses for
// least-loaded replica choice and drain-completion detection.
type ViewAck struct {
	NodeID   string `json:"node_id"`
	View     int64  `json:"view"`
	Sessions int    `json:"sessions"`
	Active   int    `json:"active"`
}

// Reject is the server's answer to a refused ADMIT. RetryAfterMillis is
// non-zero when the refusal is transient (farm at capacity): the client
// should wait that long and try again.
type Reject struct {
	Reason           string `json:"reason"`
	RetryAfterMillis int64  `json:"retry_after_ms,omitempty"`
}

// HiccupNote tells the client a track was lost (the paper's
// discontinuity in delivery) so it can account for the gap.
type HiccupNote struct {
	Track  int    `json:"track"`
	Reason string `json:"reason"`
}

// Bye ends a session. Reason is "finished", "terminated", "shed", or
// "shutdown".
type Bye struct {
	Reason string `json:"reason"`
}

// maxFFRate caps the FF multiplier a client may request: past a small
// factor the per-cluster draw argument (ceil(r/N) consecutive groups
// per cluster) stops being a useful bound and the request is a protocol
// violation, not an admission question.
const maxFFRate = 8

// VcrOK acknowledges a VCR verb. Verb echoes which one ("pause",
// "resume", "ff", "rewind"); StreamID is the session's current engine
// stream (re-admission on resume assigns a fresh one); NextTrack is the
// position the session holds — for a paused session the first track it
// will deliver on resume, for a playing one the next undelivered track.
// Rate is the session's playback multiplier after the verb (1 = normal).
type VcrOK struct {
	Verb      string `json:"verb"`
	StreamID  int    `json:"stream_id,omitempty"`
	NextTrack int    `json:"next_track"`
	Rate      int    `json:"rate"`
}

// encodeRate encodes the 4-byte big-endian payload shared by FF (a rate
// multiplier) and REWIND (a target track).
func encodeRate(v int) []byte {
	var p [4]byte
	binary.BigEndian.PutUint32(p[:], uint32(v))
	return p[:]
}

// parseFFRate validates an FF payload: exactly four bytes, rate in
// [1, maxFFRate]. Truncated or oversized encodings are protocol errors.
func parseFFRate(payload []byte) (int, error) {
	if len(payload) != 4 {
		return 0, fmt.Errorf("netserve: FF payload is %d bytes, want 4", len(payload))
	}
	rate := int(binary.BigEndian.Uint32(payload))
	if rate < 1 || rate > maxFFRate {
		return 0, fmt.Errorf("netserve: FF rate %d outside [1, %d]", rate, maxFFRate)
	}
	return rate, nil
}

// parseRewindTrack validates a REWIND payload: exactly four bytes, a
// non-negative target track (clamping to the stream's range is the
// session layer's job — the wire layer only rejects malformed frames).
func parseRewindTrack(payload []byte) (int, error) {
	if len(payload) != 4 {
		return 0, fmt.Errorf("netserve: REWIND payload is %d bytes, want 4", len(payload))
	}
	track := int(binary.BigEndian.Uint32(payload))
	if track < 0 || uint32(track) > 1<<31-1 {
		return 0, fmt.Errorf("netserve: REWIND track %d out of range", track)
	}
	return track, nil
}

// writeFrame writes one frame with a single Write — control frames are
// small, and header+payload in one call is one syscall on a socket
// instead of two. Handshakes are several frames each way, so halving
// their syscalls is visible when fan-out benchmarks dial whole cohorts.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("netserve: %d-byte payload exceeds frame limit", len(payload))
	}
	buf := make([]byte, frameHeaderLen+len(payload))
	buf[0] = typ
	binary.BigEndian.PutUint32(buf[1:frameHeaderLen], uint32(len(payload)))
	copy(buf[frameHeaderLen:], payload)
	_, err := w.Write(buf)
	return err
}

// writeJSONFrame writes one control frame with a JSON payload.
func writeJSONFrame(w io.Writer, typ byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(w, typ, payload)
}

// jsonFrame encodes a full control frame into one buffer.
func jsonFrame(typ byte, v any) ([]byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, frameHeaderLen+len(payload))
	buf[0] = typ
	binary.BigEndian.PutUint32(buf[1:frameHeaderLen], uint32(len(payload)))
	copy(buf[frameHeaderLen:], payload)
	return buf, nil
}

// encodeTrackHeader fills a TRACK frame's fixed prefix for a payload of
// dataLen content bytes. The server's hot path writes header and
// payload as separate iovecs; see writeBurst.
func encodeTrackHeader(hdr *[trackHeaderLen]byte, track, dataLen int) {
	hdr[0] = frameTrack
	binary.BigEndian.PutUint32(hdr[1:frameHeaderLen], uint32(4+dataLen))
	binary.BigEndian.PutUint32(hdr[frameHeaderLen:], uint32(track))
}

// trackFrame encodes a full TRACK wire frame in one contiguous buffer,
// copying data. The zero-copy server path no longer uses it (it stages
// pooled headers plus refcounted payloads instead); it remains the
// reference encoding, exercised against the vectored path in tests.
func trackFrame(track int, data []byte) []byte {
	buf := make([]byte, trackHeaderLen+len(data))
	encodeTrackHeader((*[trackHeaderLen]byte)(buf[:trackHeaderLen]), track, len(data))
	copy(buf[trackHeaderLen:], data)
	return buf
}

// parseTrack splits a TRACK payload into index and content. The content
// aliases the payload.
func parseTrack(payload []byte) (int, []byte, error) {
	if len(payload) < 4 {
		return 0, nil, fmt.Errorf("netserve: TRACK payload of %d bytes is too short", len(payload))
	}
	return int(binary.BigEndian.Uint32(payload[:4])), payload[4:], nil
}

// readFrame reads one frame, allocating the payload.
func readFrame(r io.Reader) (byte, []byte, error) {
	return readFrameBuf(r, nil)
}

// frameReadChunk is the step size for payload reads: the decoder grows
// its buffer as bytes actually arrive, never by more than one chunk
// past what the peer has sent.
const frameReadChunk = 64 << 10

// readFrameBuf reads one frame. With a non-nil scratch the payload is
// read into (and aliases) *scratch, grown as needed and updated in
// place — the caller owns the bytes only until its next call with the
// same scratch. With nil scratch the payload is freshly allocated.
//
// The length header is untrusted input: a peer claiming a huge payload
// must actually deliver the bytes before the decoder commits memory to
// them. Allocation is bounded by roughly twice the bytes received plus
// one chunk, not by the claimed length.
func readFrameBuf(r io.Reader, scratch *[]byte) (byte, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[1:]))
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("netserve: frame claims %d-byte payload, limit %d", n, maxFramePayload)
	}
	var payload []byte
	if scratch != nil {
		payload = (*scratch)[:0]
	}
	for len(payload) < n {
		step := n - len(payload)
		if step > frameReadChunk {
			step = frameReadChunk
		}
		if cap(payload)-len(payload) < step {
			grown := 2 * cap(payload)
			if grown < len(payload)+step {
				grown = len(payload) + step
			}
			if grown > n {
				grown = n
			}
			next := make([]byte, len(payload), grown)
			copy(next, payload)
			payload = next
		}
		start := len(payload)
		payload = payload[:start+step]
		if _, err := io.ReadFull(r, payload[start:]); err != nil {
			if scratch != nil {
				*scratch = payload[:0] // keep the grown capacity for reuse
			}
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, err
		}
	}
	if scratch != nil {
		*scratch = payload
	}
	return hdr[0], payload, nil
}
