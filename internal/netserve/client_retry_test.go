package netserve

import (
	"errors"
	"testing"
	"time"
)

// TestAdmitRetryBackoff is the reconnect-path regression test: a full
// farm rejects with a Retry-After hint, the client backs off exactly as
// hinted (through an injected sleep — no wall-clock dependence), and
// once capacity frees the re-admit succeeds on the same connection.
func TestAdmitRetryBackoff(t *testing.T) {
	cfg := defaultRig()
	cfg.titles = 1
	cfg.slotsPerDisk = 1 // one stream per cluster position: capacity 1 for the title's start cluster
	r := newLoopRig(t, "sr", cfg)
	title := r.titles[0]

	// Occupy the title's start cluster.
	blocker, _ := r.connect(t, title)
	defer blocker.Close()

	// Pin the rejection shape first: transient, with the cycle-scale
	// retry hint. The server hangs up after a REJECT, so this probe
	// needs its own connection.
	wantHint := r.ns.CycleTime().Milliseconds()
	if wantHint < 1 {
		wantHint = 1
	}
	probe, err := Dial(r.ns.Addr().String(), 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_, err = probe.Admit(title)
	probe.Close()
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("admit on a full farm returned %v, want *RejectedError", err)
	}
	if rej.Reject.RetryAfterMillis != wantHint {
		t.Fatalf("retry hint = %d ms, want %d", rej.Reject.RetryAfterMillis, wantHint)
	}

	// Now the full loop: rejection → backoff → re-admit. The injected
	// sleep frees capacity on its first call (the blocker hangs up), so
	// a later attempt must land.
	var sleeps []time.Duration
	sleep := func(d time.Duration) {
		sleeps = append(sleeps, d)
		if len(sleeps) == 1 {
			blocker.Close()
		}
		// Teardown is asynchronous (the server's reader notices the
		// hang-up); wait for the slot to actually free.
		for i := 0; i < 5000 && r.ns.Sessions() > 0; i++ {
			time.Sleep(time.Millisecond)
		}
	}
	c2, ok, err := AdmitRetry(r.ns.Addr().String(), title, 20*time.Second, 20, sleep)
	if err != nil {
		t.Fatalf("AdmitRetry never succeeded after %d backoffs: %v", len(sleeps), err)
	}
	defer c2.Close()
	if ok.Title != title {
		t.Fatalf("admitted %q, want %q", ok.Title, title)
	}
	if len(sleeps) == 0 {
		t.Fatal("AdmitRetry succeeded without ever backing off — the farm was never full")
	}
	for i, d := range sleeps {
		if d != time.Duration(wantHint)*time.Millisecond {
			t.Fatalf("backoff %d slept %v, want the server's %d ms hint", i, d, wantHint)
		}
	}

	// The admitted session must actually play: drive cycles to the end.
	done := make(chan *clientResult, 1)
	go func() { done <- consume(c2) }()
	r.stepUntilIdle(t, 4000)
	res := <-done
	verifyBitExact(t, r, title, res)
	if res.bye != "finished" {
		t.Fatalf("bye = %q, want finished", res.bye)
	}
}

// TestAdmitRetryPermanentRejection: no Retry-After means no retry.
func TestAdmitRetryPermanentRejection(t *testing.T) {
	r := newLoopRig(t, "sr", defaultRig())
	calls := 0
	_, _, err := AdmitRetry(r.ns.Addr().String(), "no-such-title", 20*time.Second, 5, func(time.Duration) { calls++ })
	if err == nil {
		t.Fatal("unknown title admitted")
	}
	if calls != 0 {
		t.Fatalf("backed off %d times on a permanent rejection", calls)
	}
}
