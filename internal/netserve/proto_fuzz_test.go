package netserve

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// seedFrames builds one well-formed wire frame of every protocol type,
// the fuzz corpus's starting points.
func seedFrames(t testing.TB) [][]byte {
	t.Helper()
	var frames [][]byte
	add := func(typ byte, v any) {
		buf, err := jsonFrame(typ, v)
		if err != nil {
			t.Fatalf("encoding seed frame %#x: %v", typ, err)
		}
		frames = append(frames, buf)
	}
	var hello bytes.Buffer
	if err := writeFrame(&hello, frameHello, []byte(protocolMagic)); err != nil {
		t.Fatal(err)
	}
	frames = append(frames, hello.Bytes())
	var admit bytes.Buffer
	if err := writeFrame(&admit, frameAdmit, []byte("title0")); err != nil {
		t.Fatal(err)
	}
	frames = append(frames, admit.Bytes())
	add(frameAdmitOK, AdmitOK{StreamID: 1, Title: "title0", TrackSize: 512, Tracks: 12, Size: 6144, CycleNanos: 1e9, Burst: 4})
	add(frameReject, Reject{Reason: "farm at capacity", RetryAfterMillis: 250})
	add(frameHiccup, HiccupNote{Track: 7, Reason: "track lost in degraded-mode transition"})
	add(frameBye, Bye{Reason: "finished"})
	frames = append(frames, trackFrame(3, bytes.Repeat([]byte{0xAB}, 64)))
	// VCR verbs: the empty-payload pause/resume, well-formed FF and
	// REWIND rate encodings, and the server's VCR acknowledgement.
	for _, typ := range []byte{framePause, frameResumePlay} {
		var b bytes.Buffer
		if err := writeFrame(&b, typ, nil); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, b.Bytes())
	}
	var ff bytes.Buffer
	if err := writeFrame(&ff, frameFF, encodeRate(2)); err != nil {
		t.Fatal(err)
	}
	frames = append(frames, ff.Bytes())
	var rw bytes.Buffer
	if err := writeFrame(&rw, frameRewind, encodeRate(9)); err != nil {
		t.Fatal(err)
	}
	frames = append(frames, rw.Bytes())
	add(frameVcrOK, VcrOK{Verb: "ff", StreamID: 1, NextTrack: 6, Rate: 2})
	// Malformed rate encodings the server must refuse without panicking:
	// a truncated 2-byte payload and an oversized 8-byte one.
	var short bytes.Buffer
	if err := writeFrame(&short, frameFF, []byte{0, 2}); err != nil {
		t.Fatal(err)
	}
	frames = append(frames, short.Bytes())
	var long bytes.Buffer
	if err := writeFrame(&long, frameRewind, bytes.Repeat([]byte{0xFF}, 8)); err != nil {
		t.Fatal(err)
	}
	frames = append(frames, long.Bytes())
	return frames
}

// FuzzReadFrame feeds adversarial bytes to the frame decoder: it must
// never panic, never hand back a payload longer than the wire limit,
// and must agree with itself between the allocating and scratch-reusing
// paths.
func FuzzReadFrame(f *testing.F) {
	for _, frame := range seedFrames(f) {
		f.Add(frame)
	}
	// A frame claiming the full 16 MiB with no payload behind it.
	huge := make([]byte, frameHeaderLen)
	huge[0] = frameTrack
	binary.BigEndian.PutUint32(huge[1:], maxFramePayload)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bytes.NewReader(data))
		scratch := make([]byte, 0, 16)
		typ2, payload2, err2 := readFrameBuf(bytes.NewReader(data), &scratch)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("alloc path err=%v, scratch path err=%v", err, err2)
		}
		if err != nil {
			return
		}
		if typ != typ2 || !bytes.Equal(payload, payload2) {
			t.Fatalf("alloc and scratch paths decoded different frames")
		}
		if len(payload) > maxFramePayload {
			t.Fatalf("decoder handed back %d bytes, over the %d limit", len(payload), maxFramePayload)
		}
		if len(data) >= frameHeaderLen {
			if want := int(binary.BigEndian.Uint32(data[1:frameHeaderLen])); len(payload) != want {
				t.Fatalf("payload is %d bytes, header claimed %d", len(payload), want)
			}
		}
		switch typ {
		case frameTrack:
			// parseTrack must tolerate whatever the decoder accepts.
			_, _, _ = parseTrack(payload)
		case frameFF:
			if rate, err := parseFFRate(payload); err == nil && (rate < 1 || rate > maxFFRate) {
				t.Fatalf("parseFFRate accepted out-of-range rate %d", rate)
			}
		case frameRewind:
			if track, err := parseRewindTrack(payload); err == nil && track < 0 {
				t.Fatalf("parseRewindTrack accepted negative track %d", track)
			}
		}
	})
}

// TestReadFrameBoundedAllocation pins the hardening: a header claiming
// the maximum payload backed by only a few real bytes must not make the
// decoder allocate anywhere near the claimed size.
func TestReadFrameBoundedAllocation(t *testing.T) {
	wire := make([]byte, frameHeaderLen, frameHeaderLen+100)
	wire[0] = frameAdmit
	binary.BigEndian.PutUint32(wire[1:], maxFramePayload)
	wire = append(wire, bytes.Repeat([]byte{'x'}, 100)...)

	var scratch []byte
	_, _, err := readFrameBuf(bytes.NewReader(wire), &scratch)
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: got err %v, want io.ErrUnexpectedEOF", err)
	}
	// The scratch buffer keeps its grown capacity for reuse; that
	// capacity is the decoder's allocation footprint for the frame.
	if cap(scratch) > 2*frameReadChunk {
		t.Fatalf("decoder grew scratch to %d bytes for a frame that delivered 100; want <= %d",
			cap(scratch), 2*frameReadChunk)
	}
}

// TestReadFrameScratchReuse pins the scratch contract across frames of
// shrinking and growing sizes: each decode returns exactly its frame's
// payload and reuses the buffer when capacity allows.
func TestReadFrameScratchReuse(t *testing.T) {
	var wire bytes.Buffer
	payloads := [][]byte{
		bytes.Repeat([]byte{1}, 300),
		bytes.Repeat([]byte{2}, 10),
		bytes.Repeat([]byte{3}, 70000), // spans multiple read chunks
		{},
	}
	for _, p := range payloads {
		if err := writeFrame(&wire, frameAdmit, p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for i, want := range payloads {
		_, got, err := readFrameBuf(&wire, &scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload mismatch (%d bytes, want %d)", i, len(got), len(want))
		}
	}
}
