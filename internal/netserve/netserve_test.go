package netserve

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"ftmm/internal/diskmodel"
	"ftmm/internal/server"
	"ftmm/internal/trace"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// rigConfig shapes a loopback test fixture.
type rigConfig struct {
	disks, cluster, k int
	titles, groups    int
	slotsPerDisk      int
	noMergedReads     bool
	ns                Options // Clock/SendQueue/WriteTimeout/WriteBufferBytes knobs
}

func defaultRig() rigConfig {
	return rigConfig{disks: 8, cluster: 4, k: 2, titles: 2, groups: 4}
}

// loopRig is a server farm plus its network front end on a loopback
// listener.
type loopRig struct {
	srv        *server.Server
	ns         *NetServer
	titles     []string
	trackSize  int
	titleSize  int
	trackCount int
}

func newLoopRig(t *testing.T, schemeName string, cfg rigConfig) *loopRig {
	t.Helper()
	scheme, policy, err := server.ParseScheme(schemeName)
	if err != nil {
		t.Fatal(err)
	}
	p := diskmodel.Table1()
	tracksPerTitle := cfg.groups * cfg.cluster
	p.Capacity = units.ByteSize((cfg.titles*cfg.cluster*tracksPerTitle)/cfg.disks+tracksPerTitle+50) * p.TrackSize
	srv, err := server.New(server.Options{
		Disks: cfg.disks, ClusterSize: cfg.cluster,
		DiskParams: p, Scheme: scheme, K: cfg.k, NCPolicy: policy,
		SlotsPerDisk:       cfg.slotsPerDisk,
		DisableMergedReads: cfg.noMergedReads,
	})
	if err != nil {
		t.Fatal(err)
	}
	trackSize := int(p.TrackSize)
	titleSize := cfg.groups * (cfg.cluster - 1) * trackSize
	names := workload.ObjectNames("title", cfg.titles)
	for i, id := range names {
		content := workload.SyntheticContent(id, titleSize)
		if err := srv.AddTitle(id, units.ByteSize(titleSize), i, content); err != nil {
			t.Fatal(err)
		}
	}
	nsOpts := cfg.ns
	nsOpts.Server = srv
	ns, err := New(nsOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ns.Close() })
	return &loopRig{
		srv: srv, ns: ns, titles: names,
		trackSize: trackSize, titleSize: titleSize,
		trackCount: cfg.groups * (cfg.cluster - 1),
	}
}

// connect dials the rig and admits a stream for the title.
func (r *loopRig) connect(t *testing.T, title string) (*Client, AdmitOK) {
	t.Helper()
	c, err := Dial(r.ns.Addr().String(), 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := c.Admit(title)
	if err != nil {
		c.Close()
		t.Fatalf("admit %s: %v", title, err)
	}
	return c, ok
}

// clientResult is everything one consumer saw.
type clientResult struct {
	tracks  map[int][]byte
	hiccups []HiccupNote
	bye     string
	err     error
}

// consume reads a session to its end.
func consume(c *Client) *clientResult {
	res := &clientResult{tracks: map[int][]byte{}}
	for {
		ev, err := c.Next()
		if err != nil {
			res.err = err
			return res
		}
		switch {
		case ev.Bye != nil:
			res.bye = ev.Bye.Reason
			return res
		case ev.Hiccup != nil:
			res.hiccups = append(res.hiccups, *ev.Hiccup)
		default:
			res.tracks[ev.Track] = ev.Data
		}
	}
}

// verifyBitExact checks that every received track matches the title's
// synthetic content byte for byte (trace.CheckTrack is the same
// predicate the engine-side integrity checker uses) and that received
// plus hiccuped tracks cover the title exactly.
func verifyBitExact(t *testing.T, r *loopRig, title string, res *clientResult) {
	t.Helper()
	if res.err != nil {
		t.Fatalf("%s: client error: %v", title, res.err)
	}
	content := workload.SyntheticContent(title, r.titleSize)
	for track, data := range res.tracks {
		if err := trace.CheckTrack(content, r.trackSize, track, data); err != nil {
			t.Errorf("%s: %v", title, err)
		}
	}
	covered := map[int]bool{}
	for track := range res.tracks {
		covered[track] = true
	}
	for _, h := range res.hiccups {
		if covered[h.Track] {
			t.Errorf("%s: track %d both delivered and hiccuped", title, h.Track)
		}
		covered[h.Track] = true
	}
	for track := 0; track < r.trackCount; track++ {
		if !covered[track] {
			t.Errorf("%s: track %d neither delivered nor hiccuped", title, track)
		}
	}
	if len(covered) != r.trackCount {
		t.Errorf("%s: covered %d tracks, want %d", title, len(covered), r.trackCount)
	}
}

// waitQueueDrained blocks until the stream's send queue is empty (its
// writer has handed every pending burst to the kernel) or the session
// is gone.
func (r *loopRig) waitQueueDrained(streamID int) {
	for i := 0; i < 5000; i++ {
		sess := r.ns.sessions.get(streamID)
		if sess == nil || len(sess.sendq) == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// stepUntilIdle drives manual-mode cycles until the farm quiesces.
func (r *loopRig) stepUntilIdle(t *testing.T, maxCycles int) {
	t.Helper()
	for i := 0; i < maxCycles; i++ {
		if r.ns.Sessions() == 0 && r.srv.Engine().Active() == 0 {
			return
		}
		if err := r.ns.StepCycle(); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatalf("farm not idle after %d cycles (%d sessions)", maxCycles, r.ns.Sessions())
}

// TestLoopbackMidStreamFailure is the end-to-end acceptance test: under
// each scheme, two clients stream concurrently over loopback, a data
// disk under the first client's title fails mid-stream, and both
// clients must still receive bit-exact content. The parity schemes
// (SR, SG, IB) mask the failure completely; Non-clustered loses at most
// C-1 tracks inside the degraded-mode transition window and announces
// each loss with a HICCUP frame. The witness client's title lives on a
// different cluster and must never notice.
func TestLoopbackMidStreamFailure(t *testing.T) {
	const failAt = 5
	for _, tc := range []struct {
		scheme      string
		wantHiccups bool // loses tracks in the NC degraded transition
	}{
		{scheme: "sr"},
		{scheme: "sg"},
		{scheme: "nc", wantHiccups: true},
		{scheme: "nc-simple", wantHiccups: true},
		{scheme: "ib"},
	} {
		t.Run(tc.scheme, func(t *testing.T) {
			r := newLoopRig(t, tc.scheme, defaultRig())
			victim, vOK := r.connect(t, r.titles[0])
			witness, _ := r.connect(t, r.titles[1])
			defer victim.Close()
			defer witness.Close()
			vRes := make(chan *clientResult, 1)
			wRes := make(chan *clientResult, 1)
			go func() { vRes <- consume(victim) }()
			go func() { wRes <- consume(witness) }()

			// Step until the victim stream is failAt tracks in, then fail
			// the disk holding the track its read pointer is about to
			// fetch — a cycle-boundary failure, exactly the paper's model.
			// Non-clustered reads one track ahead of delivery and only
			// loses tracks when the failure catches it mid-group, so the
			// failure is timed for a mid-group read (Figures 6/7).
			width := defaultRig().cluster - 1
			failedDisk, n0 := -1, 0
			for i := 0; i < 400; i++ {
				if failedDisk < 0 {
					next, total, ok := r.ns.StreamProgress(vOK.StreamID)
					target := next + 1
					if ok && next >= failAt && target < total &&
						(!tc.wantHiccups || target%width != 0) {
						obj, err := r.srv.Catalog().Object(r.titles[0])
						if err != nil {
							t.Fatal(err)
						}
						loc, err := obj.DataLocation(target)
						if err != nil {
							t.Fatal(err)
						}
						failedDisk, n0 = loc.Disk, next
						if err := r.ns.FailDisk(failedDisk); err != nil {
							t.Fatal(err)
						}
					}
				}
				if err := r.ns.StepCycle(); err != nil {
					t.Fatal(err)
				}
				if failedDisk >= 0 && r.ns.Sessions() == 0 && r.srv.Engine().Active() == 0 {
					break
				}
			}
			if failedDisk < 0 {
				t.Fatal("never reached the failure point")
			}
			r.stepUntilIdle(t, 100)

			v := <-vRes
			w := <-wRes
			verifyBitExact(t, r, r.titles[0], v)
			verifyBitExact(t, r, r.titles[1], w)
			if v.bye != "finished" {
				t.Errorf("victim bye = %q, want finished", v.bye)
			}
			if len(w.hiccups) != 0 {
				t.Errorf("witness on another cluster saw %d hiccups: %v", len(w.hiccups), w.hiccups)
			}
			if !tc.wantHiccups && len(v.hiccups) != 0 {
				t.Errorf("%s should mask the failure, victim saw hiccups %v", tc.scheme, v.hiccups)
			}
			if tc.wantHiccups {
				// Fig 6/7 accounting: at least the failed drive's unread
				// track is lost, losses are bounded by C-1, and all fall in
				// the transition window right after the failure.
				c := defaultRig().cluster
				if len(v.hiccups) == 0 {
					t.Errorf("%s caught mid-group loses the failed drive's track, got none", tc.scheme)
				}
				if len(v.hiccups) > c-1 {
					t.Errorf("victim lost %d tracks, bound is C-1 = %d", len(v.hiccups), c-1)
				}
				for _, h := range v.hiccups {
					if h.Track < n0-1 || h.Track > n0+2*c {
						t.Errorf("hiccup track %d outside transition window [%d,%d]", h.Track, n0-1, n0+2*c)
					}
				}
			}
		})
	}
}

// TestSlowClientShed pins down the isolation property: a client that
// stops reading cannot stall the cycle loop or other streams. Its send
// queue overflows, it is shed (stream cancelled, connection closed),
// and the healthy client still receives everything bit-exact.
func TestSlowClientShed(t *testing.T) {
	cfg := defaultRig()
	cfg.groups = 10 // 10 per-cycle bursts: enough to overflow the queue
	cfg.ns = Options{
		SendQueue: 4, // bursts, not frames: must be < the title's burst count

		WriteTimeout:     5 * time.Second,
		WriteBufferBytes: 8 << 10,
		Logf:             t.Logf,
	}
	r := newLoopRig(t, "sr", cfg)

	stalled, _ := r.connect(t, r.titles[0])
	defer stalled.Close() // never reads a frame
	healthy, hOK := r.connect(t, r.titles[1])
	defer healthy.Close()
	hRes := make(chan *clientResult, 1)
	go func() { hRes <- consume(healthy) }()

	shed := r.srv.Metrics().Counter("net_sessions_shed")
	for i := 0; i < 300; i++ {
		if r.ns.Sessions() == 0 && r.srv.Engine().Active() == 0 {
			break
		}
		if err := r.ns.StepCycle(); err != nil {
			t.Fatal(err)
		}
		// Let the healthy writer drain between bursts so machine speed
		// cannot shed it; the stalled client gets the same grace and
		// still falls behind, because its socket never moves.
		r.waitQueueDrained(hOK.StreamID)
	}
	if got := shed.Value(); got < 1 {
		t.Fatalf("net_sessions_shed = %d, want >= 1", got)
	}
	h := <-hRes
	verifyBitExact(t, r, r.titles[1], h)
	if h.bye != "finished" {
		t.Errorf("healthy bye = %q, want finished", h.bye)
	}
	if len(h.hiccups) != 0 {
		t.Errorf("healthy client saw hiccups %v", h.hiccups)
	}
}

// TestDrain covers graceful shutdown: draining refuses new admissions
// but plays existing streams to completion.
func TestDrain(t *testing.T) {
	r := newLoopRig(t, "sg", defaultRig())
	c, _ := r.connect(t, r.titles[0])
	defer c.Close()
	res := make(chan *clientResult, 1)
	go func() { res <- consume(c) }()
	if err := r.ns.StepCycle(); err != nil {
		t.Fatal(err)
	}

	// Zero timeout: sets the drain in motion and reports "not yet".
	if err := r.ns.Drain(0); err == nil {
		t.Fatal("drain with a live stream reported complete")
	}
	late, err := Dial(r.ns.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	if _, err := late.Admit(r.titles[1]); err == nil {
		t.Fatal("admission during drain succeeded")
	} else {
		var rej *RejectedError
		if !errors.As(err, &rej) || rej.Reject.Reason != "draining" {
			t.Fatalf("drain admission error = %v, want draining rejection", err)
		}
	}

	r.stepUntilIdle(t, 200)
	if !r.ns.Drained() {
		t.Fatal("drain not complete after farm went idle")
	}
	if err := r.ns.Drain(time.Second); err != nil {
		t.Fatalf("drain after idle: %v", err)
	}
	got := <-res
	verifyBitExact(t, r, r.titles[0], got)
	if got.bye != "finished" {
		t.Errorf("bye = %q, want finished", got.bye)
	}
}

// TestAdmissionReject fills a one-cluster farm and checks the transient
// rejection carries a retry hint.
func TestAdmissionReject(t *testing.T) {
	cfg := defaultRig()
	cfg.disks, cfg.cluster, cfg.slotsPerDisk = 5, 5, 1
	r := newLoopRig(t, "sr", cfg)
	first, _ := r.connect(t, r.titles[0])
	defer first.Close()

	second, err := Dial(r.ns.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	_, err = second.Admit(r.titles[1])
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("second admit on a full cluster: err = %v, want rejection", err)
	}
	if rej.Reject.RetryAfterMillis <= 0 {
		t.Errorf("capacity rejection carries no retry hint: %+v", rej.Reject)
	}
}

// TestPacedDelivery checks the clocked modes end to end: with a virtual
// clock (and a sped-up wall clock) the pacer drives cycles without any
// manual stepping and a session plays out whole.
func TestPacedDelivery(t *testing.T) {
	for _, tc := range []struct {
		name  string
		clock Clock
	}{
		{"virtual", VirtualClock()},
		{"wall-fast", WallClock(50000)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := defaultRig()
			cfg.ns = Options{Clock: tc.clock}
			r := newLoopRig(t, "sr", cfg)
			c, _ := r.connect(t, r.titles[0])
			defer c.Close()
			res := consume(c)
			verifyBitExact(t, r, r.titles[0], res)
			if res.bye != "finished" {
				t.Errorf("bye = %q, want finished", res.bye)
			}
		})
	}
}

// TestBurstMatchesScheme pins the k′-aware pacing: whole-group schemes
// ship C-1 tracks per cycle, per-track schemes one.
func TestBurstMatchesScheme(t *testing.T) {
	for _, tc := range []struct {
		scheme string
		burst  int
	}{
		{"sr", 3}, {"ib", 3}, {"sg", 1}, {"nc", 1},
	} {
		r := newLoopRig(t, tc.scheme, defaultRig())
		if r.ns.Burst() != tc.burst {
			t.Errorf("%s: burst = %d, want %d", tc.scheme, r.ns.Burst(), tc.burst)
		}
		c, ok := r.connect(t, r.titles[0])
		if ok.Burst != tc.burst {
			t.Errorf("%s: ADMIT-OK burst = %d, want %d", tc.scheme, ok.Burst, tc.burst)
		}
		c.Close()
	}
}

// TestProtoRoundTrip exercises the framing layer alone.
func TestProtoRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameHello, []byte(protocolMagic)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(&buf)
	if err != nil || typ != frameHello || string(payload) != protocolMagic {
		t.Fatalf("hello round trip: type 0x%02x payload %q err %v", typ, payload, err)
	}

	data := []byte("0123456789abcdef")
	frame := trackFrame(42, data)
	buf.Reset()
	buf.Write(frame)
	typ, payload, err = readFrame(&buf)
	if err != nil || typ != frameTrack {
		t.Fatalf("track frame: type 0x%02x err %v", typ, err)
	}
	track, got, err := parseTrack(payload)
	if err != nil || track != 42 || !bytes.Equal(got, data) {
		t.Fatalf("parseTrack = (%d, %q, %v)", track, got, err)
	}
	// trackFrame must copy: scribbling on the source afterwards cannot
	// change the encoded frame (the arena recycles delivery buffers).
	frame2 := trackFrame(7, data)
	data[0] = 'X'
	if bytes.Contains(frame2, []byte("X123")) {
		t.Fatal("trackFrame aliases its input")
	}

	buf.Reset()
	if err := writeJSONFrame(&buf, frameReject, Reject{Reason: "full", RetryAfterMillis: 800}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = readFrame(&buf)
	if err != nil || typ != frameReject {
		t.Fatalf("reject frame: type 0x%02x err %v", typ, err)
	}
	if !bytes.Contains(payload, []byte(`"retry_after_ms":800`)) {
		t.Errorf("reject payload %s missing retry hint", payload)
	}

	// Oversized and truncated frames are errors, not hangs.
	if err := writeFrame(&buf, frameTrack, make([]byte, maxFramePayload+1)); err == nil {
		t.Error("oversized write accepted")
	}
	var bad bytes.Buffer
	bad.Write([]byte{frameTrack, 0xff, 0xff, 0xff, 0xff})
	if _, _, err := readFrame(&bad); err == nil {
		t.Error("oversized read accepted")
	}
	if _, _, err := parseTrack([]byte{1, 2}); err == nil {
		t.Error("short TRACK payload accepted")
	}
}

// BenchmarkLoopbackStream measures the steady-state delivery path:
// one op is one TRACK frame received by a client streaming a long
// title over loopback under virtual-clock pacing. Dial/admit happen
// off the timer, so ns/op and allocs/op reflect the per-frame cost of
// the zero-copy data plane, not session setup.
func BenchmarkLoopbackStream(b *testing.B) {
	scheme, policy, err := server.ParseScheme("sr")
	if err != nil {
		b.Fatal(err)
	}
	const disks, cluster, groups = 8, 4, 128
	p := diskmodel.Table1()
	tracksPerTitle := groups * cluster
	p.Capacity = units.ByteSize((cluster*tracksPerTitle)/disks+tracksPerTitle+50) * p.TrackSize
	srv, err := server.New(server.Options{
		Disks: disks, ClusterSize: cluster,
		DiskParams: p, Scheme: scheme, K: 2, NCPolicy: policy,
	})
	if err != nil {
		b.Fatal(err)
	}
	trackSize := int(p.TrackSize)
	titleSize := groups * (cluster - 1) * trackSize
	title := "bench-title"
	if err := srv.AddTitle(title, units.ByteSize(titleSize), 0, workload.SyntheticContent(title, titleSize)); err != nil {
		b.Fatal(err)
	}
	// The virtual clock steps cycles back to back with no pacing delay,
	// so the send queue is the only flow control: it must hold a whole
	// title's bursts or the engine outruns the client and sheds it.
	ns, err := New(Options{Server: srv, Clock: VirtualClock(), SendQueue: groups + 8})
	if err != nil {
		b.Fatal(err)
	}
	defer ns.Close()

	dial := func() *Client {
		c, err := Dial(ns.Addr().String(), 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		c.ReuseBuffers(true)
		if _, err := c.Admit(title); err != nil {
			b.Fatal(fmt.Errorf("admit: %w", err))
		}
		return c
	}

	cl := dial()
	defer func() { cl.Close() }()
	b.SetBytes(int64(trackSize))
	b.ResetTimer()
	for delivered := 0; delivered < b.N; {
		ev, err := cl.Next()
		if err != nil {
			b.Fatal(err)
		}
		switch {
		case ev.Bye != nil:
			b.StopTimer()
			cl.Close()
			cl = dial()
			b.StartTimer()
		case ev.Hiccup != nil:
			b.Fatalf("unexpected hiccup on track %d", ev.Hiccup.Track)
		default:
			delivered++
		}
	}
}
