package netserve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ftmm/internal/buffer"
	"ftmm/internal/cluster"
	"ftmm/internal/metrics"
	"ftmm/internal/sched"
	"ftmm/internal/server"
)

// Default tuning knobs.
const (
	defaultSendQueue    = 64
	defaultWriteTimeout = 10 * time.Second
	helloTimeout        = 30 * time.Second

	// sessionShards sizes the session registry's lock striping.
	sessionShards = 16

	// Timer-wheel resolution for write-stall supervision. Stall
	// detection only needs coarse accuracy (WriteTimeout is seconds),
	// so a 25ms tick keeps the wheel goroutine nearly idle.
	wheelTick  = 25 * time.Millisecond
	wheelSlots = 256
)

// Options configures a NetServer.
type Options struct {
	// Server is the cycle-engine back end. NetServer serializes all
	// access to it behind one mutex — server.Server itself is not
	// concurrency-safe.
	Server *server.Server
	// NodeID names this node in a cluster. It rides in ADMIT-OK and on
	// the HTTP status surface; empty for a standalone server.
	NodeID string
	// Addr is the TCP listen address; empty means loopback with an
	// OS-assigned port (the usual test setting).
	Addr string
	// Clock paces transmission cycles. nil selects manual mode: the
	// owner drives cycles through StepCycle, nothing runs on a timer.
	Clock Clock
	// SendQueue bounds the per-session outbound queue, counted in
	// per-cycle bursts. A session whose queue overflows is shed (its
	// stream cancelled, connection closed) so one stalled client cannot
	// delay the cycle loop or other streams.
	SendQueue int
	// WriteTimeout bounds one burst's socket write; a stalled write is
	// detected by the shared timer wheel and the connection is cut.
	WriteTimeout time.Duration
	// WriteBufferBytes shrinks the kernel send buffer on accepted
	// connections when > 0. Shedding tests use a small value so a
	// non-reading client exerts backpressure quickly.
	WriteBufferBytes int
	// EnablePprof mounts net/http/pprof profiling handlers under
	// /debug/pprof/ on Handler's mux. Opt-in: profile endpoints can
	// stall a loaded server and should not be exposed by default.
	EnablePprof bool
	// NoPipeline disables the two-stage cycle pipeline: StepCycle stages,
	// flushes, and closes out the cycle's deliveries before returning,
	// exactly as the pre-pipeline loop did, instead of overlapping them
	// with the next cycle's engine reads. Bisection/debug knob — the
	// bytes every client sees are bit-identical either way.
	NoPipeline bool
	// BatchCycles, when > 0, batches flash-crowd starts: a fresh ADMIT
	// parks for up to this many engine cycles so that same-title arrivals
	// inside the window admit together at one cycle boundary — their
	// engine streams then run in lockstep, so the merged-read/shared-
	// frame machinery serves the whole cohort with one physical staging
	// run. 0 (the default) admits immediately. RESUME admissions never
	// batch: a failover client is already mid-title.
	BatchCycles int
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// scheduledEvent is a fault-injection action bound to a cycle number.
type scheduledEvent struct {
	cycle int
	desc  string
	apply func() error
}

// NetServer accepts framed TCP sessions and paces admitted streams'
// tracks out at playback rate, one burst per transmission cycle.
type NetServer struct {
	opts       Options
	srv        *server.Server
	ln         net.Listener
	cycleTime  time.Duration
	burst      int
	trackSize  int
	groupWidth int

	// sessions is sharded so admission, teardown from reader/writer
	// goroutines, and the HTTP surface do not serialize on the engine
	// lock at high session counts.
	sessions sessionTable

	// wheel supervises every session's in-flight write from a single
	// goroutine, replacing a per-write SetWriteDeadline syscall pair.
	wheel *TimerWheel

	// burstPool recycles burst containers; sharedPool recycles shared-run
	// containers (each carries its own reusable TRACK-header slab).
	// Together with refcounted track payloads they make the steady-state
	// write path allocation-free.
	burstPool  sync.Pool
	sharedPool sync.Pool
	// ctrlPool recycles small per-session control-frame buffers (hiccup
	// notes) whose contents vary; fixed control frames (BYE) are static.
	ctrlPool sync.Pool

	// mu is the engine lock, shrunk to control-plane work: it guards
	// srv (admit/cancel/step), schedule, view, drain state, VCR session
	// state (paused/rate/resumeTrack), the batch table, and the retired
	// stream-ID queue. Delivery staging runs outside it, on the shard
	// workers.
	mu       sync.Mutex
	cond     *sync.Cond
	schedule []scheduledEvent
	view     *cluster.View
	// batches parks flash-crowd ADMITs per title until their window
	// closes (Options.BatchCycles); pendingWaiters counts parked
	// connections so the pacer keeps stepping toward the flush.
	batches        map[string]*titleBatch
	pendingWaiters int
	// retired queues a resumed session's old stream-ID alias for removal
	// once every pipeline pass that might still stage under it has
	// drained (two cycles; see resumeSessionLocked).
	retired []retiredID
	// pausedSessions counts sessions parked by PAUSE (no engine stream);
	// the net_sessions_paused gauge mirrors it.
	pausedSessions int
	// hbConns tracks live coordinator heartbeat channels so Close can
	// cut them (their goroutines otherwise sit in a long read).
	hbConns  map[net.Conn]struct{}
	draining bool
	drained  chan struct{}
	closed   bool

	// stepMu serializes cycle drivers (the pacer, tests, the chaos
	// harness) and guards the pipeline's pass pointers. It is never held
	// while waiting on mu's owner, and staging holds neither lock, so
	// HELLO/ADMIT only ever queue behind the engine's read phase.
	stepMu  sync.Mutex
	curPass *stagePass // the last stepped cycle's pass; may still be staging
	prvPass *stagePass // the pass before it; must finish before the next Step

	// stagers feed the per-shard staging workers (one per session-table
	// shard); scratch[w] is worker w's private touched/finishing lists.
	stagers  [sessionShards]chan *stagePass
	scratch  [sessionShards]stageScratch
	passPool sync.Pool

	// Cached hot-path instruments (a registry lookup per track would
	// contend across 16 workers).
	tracksSent, bytesSent, hiccupsSent, mergedTracks *metrics.Counter
	// Flash-crowd batching instruments: admitted-through-a-batch count,
	// flush count, and per-waiter wait time (ms) whose percentiles ride
	// /metricsz.
	batchedStarts, batchRuns *metrics.Counter
	batchWaitMs              *metrics.Histogram
	// Pipeline phase histograms: engine read time, pass staging time,
	// per-burst socket write time (all µs), and the share of each Step
	// that overlapped the previous cycle's staging (percent).
	phaseRead, phaseStage, phaseFlush, phaseOverlap *metrics.Histogram

	// reportHook, when non-nil, receives a Clone of every stepped
	// cycle's report before its pass is dispatched. Tests use it to
	// compare pipelined and NoPipeline runs report-for-report; set it
	// before the first StepCycle and leave it alone after.
	reportHook func(*sched.CycleReport)

	stop chan struct{}
	wg   sync.WaitGroup
}

// stageScratch is one shard worker's private per-pass scratch: sessions
// with a burst staged this pass, and sessions whose queue closes once
// that burst is flushed. Only worker w touches scratch[w].
type stageScratch struct {
	touched   []*session
	finishing []*session
}

// stagePass is one cycle's delivery staging, fanned across the shard
// workers while the engine may already be computing the next cycle.
// The pass owns nothing of the report's buffers directly — each staged
// frame retains its track's ref — but it does hold one reference on
// every sharedFrames it creates (see sharedFor) until the pass
// completes, so concurrent workers can attach to a shared run without
// racing its teardown.
type stagePass struct {
	rep *sched.CycleReport
	// pending counts shard workers still staging; the last one out
	// releases the pass holds, observes the stage histogram, re-checks
	// drain, and closes done.
	pending atomic.Int32
	done    chan struct{}
	start   time.Time
	// idle marks a pass whose report touched no shard (nothing staged,
	// finished inline). Idle passes skip the stage/overlap histograms so
	// drain-spin cycles don't dilute the phase means with zeros.
	idle bool
	// doneAt is the pass-completion wall time in UnixNanos (0 while
	// running) — the next Step reads it to compute the overlap ratio.
	doneAt atomic.Int64

	// shared maps a run's first payload ref to its staged shared frames
	// within this pass. Sessions whose delivered run is pointer-identical
	// (the engine merged their reads) attach the same sharedFrames
	// instead of re-staging it. Guarded by sharedMu: runs merge across
	// stream IDs, so workers on different shards reach the same entry.
	sharedMu sync.Mutex
	shared   map[*buffer.Ref]*sharedFrames
}

// sessionTable is a lock-striped stream-ID → session map.
type sessionTable struct {
	count  atomic.Int64
	shards [sessionShards]struct {
		mu sync.RWMutex
		m  map[int]*session
	}
}

func (t *sessionTable) init() {
	for i := range t.shards {
		t.shards[i].m = make(map[int]*session)
	}
}

func (t *sessionTable) get(id int) *session {
	sh := &t.shards[uint(id)%sessionShards]
	sh.mu.RLock()
	sess := sh.m[id]
	sh.mu.RUnlock()
	return sess
}

func (t *sessionTable) put(sess *session) { t.putID(sess.id, sess) }

// putID registers the session under an explicit stream ID. A session
// resumed from pause briefly lives under two IDs: the new stream's (its
// identity from here on) and its pre-pause stream's, kept as an alias
// until the pipeline passes that might still stage old-ID tracks drain.
func (t *sessionTable) putID(id int, sess *session) {
	sh := &t.shards[uint(id)%sessionShards]
	sh.mu.Lock()
	sh.m[id] = sess
	sh.mu.Unlock()
	t.count.Add(1)
}

// remove unregisters the session, reporting whether this call was the
// one that removed it (teardown can race from reader, writer, and cycle
// loop; exactly one caller wins and does the back-end cancel).
func (t *sessionTable) remove(sess *session) bool {
	return t.removeID(sess.id, sess)
}

// removeID unregisters one (id → sess) entry, pointer-checked so a
// reused stream ID belonging to a different session is never evicted.
func (t *sessionTable) removeID(id int, sess *session) bool {
	sh := &t.shards[uint(id)%sessionShards]
	sh.mu.Lock()
	cur, ok := sh.m[id]
	if ok && cur == sess {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
	if ok && cur == sess {
		t.count.Add(-1)
		return true
	}
	return false
}

// forEach visits every registered session (aliased sessions may be
// visited twice). Callers must not re-enter the table from f.
func (t *sessionTable) forEach(f func(*session)) {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for _, sess := range sh.m {
			f(sess)
		}
		sh.mu.RUnlock()
	}
}

func (t *sessionTable) len() int { return int(t.count.Load()) }

// drainAll empties the table, invoking f on each removed session.
func (t *sessionTable) drainAll(f func(*session)) {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for id, sess := range sh.m {
			delete(sh.m, id)
			t.count.Add(-1)
			f(sess)
		}
		sh.mu.Unlock()
	}
}

// outFrame is one frame staged into a burst: either a pre-encoded
// control frame (ctrl, with ctrlp set when its buffer came from the
// control-frame pool) or a TRACK frame as a header slice into its
// container's slab plus the payload, where ref (when non-nil) holds the
// payload's refcount.
type outFrame struct {
	ctrl    []byte
	ctrlp   *[]byte
	hdr     []byte
	payload []byte
	ref     *buffer.Ref
}

// sharedFrames is one title+cycle's TRACK frames, staged once and
// written by every session whose delivery this cycle is the same merged
// run (same refcounted buffers, in order — the engine's same-title read
// merging makes these pointer-identical across sessions). holders counts
// the staging pass (which holds one reference from creation until the
// pass completes) plus the bursts that still owe a release; the last one
// to let go releases the refs and recycles the container, slab and all.
type sharedFrames struct {
	frames  []outFrame
	hdrs    []byte // TRACK-header slab, reused across cycles
	holders atomic.Int32
}

// burst is one cycle's worth of frames for one session, written with a
// single vectored write: an optional shared TRACK-frame run (written
// first, preserving track-before-control order) plus the session's
// private frames (control frames, or unshared tracks).
type burst struct {
	shared *sharedFrames
	frames []outFrame
	hdrs   []byte // TRACK-header slab, reused across cycles
	bufs   net.Buffers
}

// appendTrackHeader carves the next TRACK header out of slab, returning
// the grown slab and the header slice. When append moves the slab to a
// bigger backing array, headers carved earlier stay valid — their
// frames keep the old array alive — so only the final backing is kept
// for reuse and steady-state cycles never allocate here.
func appendTrackHeader(slab []byte, track, dataLen int) ([]byte, []byte) {
	var zero [trackHeaderLen]byte
	n := len(slab)
	slab = append(slab, zero[:]...)
	h := slab[n : n+trackHeaderLen : n+trackHeaderLen]
	h[0] = frameTrack
	binary.BigEndian.PutUint32(h[1:frameHeaderLen], uint32(4+dataLen))
	binary.BigEndian.PutUint32(h[frameHeaderLen:], uint32(track))
	return slab, h
}

// session is one admitted client connection.
type session struct {
	id    int
	title string
	conn  net.Conn

	// sendq carries one burst per cycle from the cycle loop to the
	// write loop. The cycle loop closes it on graceful finish so the
	// writer flushes the tail and hangs up.
	sendq chan *burst
	// done is closed when the session is shed or the server shuts down;
	// the writer exits after releasing whatever is still queued.
	done chan struct{}
	once sync.Once

	// sendMu orders enqueue against kill: once dead is observed no new
	// burst can enter sendq, so the writer's final drain is complete.
	sendMu   sync.Mutex
	dead     bool
	finished bool

	// cur accumulates the current cycle's frames; cycle loop only.
	cur *burst
	// wt is the session's slot on the shared timer wheel, armed around
	// each vectored write by the write loop.
	wt *WheelTimer

	// VCR state, guarded by ns.mu. A paused session keeps its connection
	// and table entry but holds no engine stream — its cycle bandwidth is
	// back in the admission pool; resumeTrack is the first track owed when
	// it re-admits. rate is the playback multiplier the engine currently
	// grants this session (0/1 = normal).
	paused      bool
	rate        int
	resumeTrack int
}

// batchWaiter is one connection parked in a flash-crowd batch. The
// flusher admits it at the window boundary, fills sess/reject, and
// closes done; handleConn blocks on done.
type batchWaiter struct {
	conn    net.Conn
	arrival time.Time
	sess    *session
	reject  Reject
	done    chan struct{}
}

// titleBatch collects same-title ADMITs arriving within one batching
// window; due is the engine cycle at which the batch flushes.
type titleBatch struct {
	due     int
	waiters []*batchWaiter
}

// retiredID is a resumed session's old stream-ID alias, removable once
// the engine cycle reaches at (two cycles past the resume, by which
// point every pass that could stage old-ID tracks has been awaited).
type retiredID struct {
	id   int
	sess *session
	at   int
}

// abort closes the connection and releases the writer immediately.
func (s *session) abort() {
	s.once.Do(func() {
		close(s.done)
		s.conn.Close()
	})
}

// kill marks the session dead (no further enqueues) and aborts it.
func (s *session) kill() {
	s.sendMu.Lock()
	s.dead = true
	s.sendMu.Unlock()
	s.abort()
}

// enqueue hands a burst to the writer without blocking. queued=false
// with overflow=true means the queue is full (shed the session);
// queued=false with overflow=false means the session is already dead or
// finished and the caller should just release the burst.
func (s *session) enqueue(b *burst) (queued, overflow bool) {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if s.dead || s.finished {
		return false, false
	}
	select {
	case s.sendq <- b:
		return true, false
	default:
		return false, true
	}
}

// closeQueue ends the graceful-finish path: after the final burst is
// enqueued the queue closes, the writer flushes and hangs up. Dead
// sessions skip the close — their writer exits via done and drains.
func (s *session) closeQueue() {
	s.sendMu.Lock()
	if !s.dead && !s.finished {
		s.finished = true
		close(s.sendq)
	} else {
		s.finished = true
	}
	s.sendMu.Unlock()
}

// New starts listening and, when a Clock is configured, begins pacing.
func New(opts Options) (*NetServer, error) {
	if opts.Server == nil {
		return nil, errors.New("netserve: Options.Server is required")
	}
	if opts.SendQueue <= 0 {
		opts.SendQueue = defaultSendQueue
	}
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = defaultWriteTimeout
	}
	addr := opts.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netserve: listen: %w", err)
	}
	srv := opts.Server
	cycle := srv.CycleTime()
	trackSize := int(srv.Farm().Params().TrackSize)
	burstN := int(math.Round(cycle.Seconds() * srv.Rate().BytesPerSecond() / float64(trackSize)))
	if burstN < 1 {
		burstN = 1
	}
	ns := &NetServer{
		opts:       opts,
		srv:        srv,
		ln:         ln,
		cycleTime:  cycle,
		burst:      burstN,
		trackSize:  trackSize,
		groupWidth: srv.GroupWidth(),
		wheel:      NewTimerWheel(wheelTick, wheelSlots),
		hbConns:    make(map[net.Conn]struct{}),
		batches:    make(map[string]*titleBatch),
		drained:    make(chan struct{}),
		stop:       make(chan struct{}),
	}
	ns.sessions.init()
	ns.burstPool.New = func() any { return new(burst) }
	ns.sharedPool.New = func() any { return new(sharedFrames) }
	ns.ctrlPool.New = func() any { b := make([]byte, 0, 64); return &b }
	ns.cond = sync.NewCond(&ns.mu)
	m := srv.Metrics()
	ns.tracksSent = m.Counter("net_tracks_sent")
	ns.bytesSent = m.Counter("net_bytes_sent")
	ns.hiccupsSent = m.Counter("net_hiccups_sent")
	ns.mergedTracks = m.Counter("net_merged_tracks")
	ns.batchedStarts = m.Counter("net_batched_starts")
	ns.batchRuns = m.Counter("net_batch_runs")
	ns.batchWaitMs = m.Histogram("net_batch_wait_ms", 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)
	usBounds := []int64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000}
	ns.phaseRead = m.Histogram("pipe_read_us", usBounds...)
	ns.phaseStage = m.Histogram("pipe_stage_us", usBounds...)
	ns.phaseFlush = m.Histogram("pipe_flush_us", usBounds...)
	ns.phaseOverlap = m.Histogram("pipe_overlap_pct", 0, 10, 25, 50, 75, 90)
	for w := range ns.stagers {
		ns.stagers[w] = make(chan *stagePass, 2) // ≥ the pipeline depth: dispatch never blocks
		ns.wg.Add(1)
		go ns.stageWorker(w)
	}
	ns.wg.Add(1)
	go ns.acceptLoop()
	if opts.Clock != nil {
		ns.wg.Add(1)
		go ns.paceLoop()
	}
	return ns, nil
}

// Addr returns the bound listen address.
func (ns *NetServer) Addr() net.Addr { return ns.ln.Addr() }

// CycleTime returns the transmission cycle length.
func (ns *NetServer) CycleTime() time.Duration { return ns.cycleTime }

// Burst returns k′: tracks shipped to each stream per transmission
// cycle.
func (ns *NetServer) Burst() int { return ns.burst }

// Sessions returns the number of connected, admitted sessions.
func (ns *NetServer) Sessions() int { return ns.sessions.len() }

// PendingStarts reports connections parked in flash-crowd admission
// batches, waiting for their title's window to flush at a cycle
// boundary (Options.BatchCycles).
func (ns *NetServer) PendingStarts() int {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.pendingWaiters
}

// NodeID returns this node's cluster identity (empty standalone).
func (ns *NetServer) NodeID() string { return ns.opts.NodeID }

// SetView installs a membership view. Stale views (number at or below
// the held one) are ignored, so out-of-order heartbeats cannot roll the
// node backward; the freshest view wins regardless of arrival order. If
// the new view marks this node draining, the node stops admitting.
func (ns *NetServer) SetView(v *cluster.View) {
	if v == nil {
		return
	}
	ns.mu.Lock()
	if ns.view != nil && v.Number <= ns.view.Number {
		ns.mu.Unlock()
		return
	}
	ns.view = v.Clone()
	m, ok := ns.view.Member(ns.opts.NodeID)
	startDrain := ok && m.State == cluster.StateDraining && !ns.draining
	if startDrain {
		ns.beginDrainLocked()
	}
	ns.mu.Unlock()
	if startDrain {
		ns.cond.Broadcast()
	}
}

// View returns a copy of the node's current membership view, or nil if
// none has been installed (standalone operation).
func (ns *NetServer) View() *cluster.View {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.view == nil {
		return nil
	}
	return ns.view.Clone()
}

// StreamProgress reports the back end's delivery progress for a stream.
func (ns *NetServer) StreamProgress(id int) (next, total int, ok bool) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.srv.StreamProgress(id)
}

// FailDisk injects a drive failure at the next cycle boundary.
func (ns *NetServer) FailDisk(id int) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.srv.FailDisk(id)
}

// RepairDisk replaces a failed drive (offline rebuild).
func (ns *NetServer) RepairDisk(id int) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.srv.RepairDisk(id)
}

// StartOnlineRebuild begins a budgeted online rebuild of a drive.
func (ns *NetServer) StartOnlineRebuild(id, readBudget int) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.srv.StartOnlineRebuild(id, readBudget)
}

// ScheduleFailure arranges for drive id to fail at the start of the
// given engine cycle.
func (ns *NetServer) ScheduleFailure(cycle, id int) {
	ns.scheduleEvent(cycle, fmt.Sprintf("fail disk %d", id), func() error { return ns.srv.FailDisk(id) })
}

// ScheduleRepair arranges an offline repair of drive id at the given
// cycle.
func (ns *NetServer) ScheduleRepair(cycle, id int) {
	ns.scheduleEvent(cycle, fmt.Sprintf("repair disk %d", id), func() error { return ns.srv.RepairDisk(id) })
}

// ScheduleRebuild arranges an online rebuild of drive id at the given
// cycle.
func (ns *NetServer) ScheduleRebuild(cycle, id, readBudget int) {
	ns.scheduleEvent(cycle, fmt.Sprintf("rebuild disk %d", id), func() error { return ns.srv.StartOnlineRebuild(id, readBudget) })
}

func (ns *NetServer) scheduleEvent(cycle int, desc string, apply func() error) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.schedule = append(ns.schedule, scheduledEvent{cycle: cycle, desc: desc, apply: apply})
	ns.cond.Broadcast()
}

// BeginDrain stops admitting new sessions without waiting: in-flight
// streams keep running to completion (watch Drained, or use Drain to
// block). A live reconfiguration drains a node this way — the
// coordinator flips the node to draining in a view, the node stops
// taking placements, and once its last stream finishes it leaves the
// cluster with nothing dropped.
func (ns *NetServer) BeginDrain() {
	ns.mu.Lock()
	ns.beginDrainLocked()
	ns.mu.Unlock()
	ns.cond.Broadcast()
}

func (ns *NetServer) beginDrainLocked() {
	if ns.draining {
		return
	}
	ns.draining = true
	ns.srv.BeginDrain()
	// Parked flash-crowd waiters would need a fresh admission; refuse
	// them now rather than strand them until shutdown.
	for title, tb := range ns.batches {
		delete(ns.batches, title)
		for _, w := range tb.waiters {
			w.reject = Reject{Reason: "draining"}
			ns.pendingWaiters--
			close(w.done)
		}
	}
	ns.expelPausedLocked()
	ns.checkDrainedLocked()
}

// expelPausedLocked ends every paused session with a BYE: a paused
// session holds no engine stream and would otherwise never finish, so a
// drain would wait on it forever. Its position is lost — a client that
// wants to continue resumes on another node (or re-admits later).
func (ns *NetServer) expelPausedLocked() {
	var expelled []*session
	ns.sessions.forEach(func(sess *session) {
		if sess.paused {
			expelled = append(expelled, sess)
		}
	})
	for _, sess := range expelled {
		if !ns.sessions.remove(sess) {
			continue
		}
		b := ns.newBurst()
		b.frames = append(b.frames, outFrame{ctrl: byeShutdown})
		if queued, _ := sess.enqueue(b); !queued {
			ns.releaseBurst(b)
		}
		sess.paused = false
		ns.pausedSessions--
		sess.closeQueue()
	}
	if len(expelled) > 0 {
		ns.gaugeSessions()
		ns.gaugePaused()
	}
}

// Drain stops admitting new sessions and waits until every in-flight
// stream finishes (the graceful half of shutdown; Close is the hard
// half). In manual mode the caller must keep stepping cycles for the
// drain to make progress.
func (ns *NetServer) Drain(timeout time.Duration) error {
	ns.BeginDrain()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-ns.drained:
		return nil
	case <-t.C:
		return fmt.Errorf("netserve: drain timed out after %v with %d sessions live", timeout, ns.Sessions())
	}
}

// Draining reports whether admissions have stopped (Drain/BeginDrain,
// or a view push that marked this node draining).
func (ns *NetServer) Draining() bool {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.draining
}

// Drained reports whether a drain has completed.
func (ns *NetServer) Drained() bool {
	select {
	case <-ns.drained:
		return true
	default:
		return false
	}
}

func (ns *NetServer) checkDrainedLocked() {
	if !ns.draining {
		return
	}
	if ns.sessions.len() == 0 && ns.srv.Engine().Active() == 0 {
		select {
		case <-ns.drained:
		default:
			close(ns.drained)
		}
	}
}

// Close tears everything down: the listener, the pacer, every live
// connection, the timer wheel. Pending frames are not flushed — call
// Drain first for a graceful exit.
func (ns *NetServer) Close() error {
	ns.mu.Lock()
	if ns.closed {
		ns.mu.Unlock()
		return nil
	}
	ns.closed = true
	close(ns.stop)
	err := ns.ln.Close()
	for conn := range ns.hbConns {
		conn.Close()
		delete(ns.hbConns, conn)
	}
	ns.mu.Unlock()
	ns.sessions.drainAll(func(sess *session) { sess.kill() })
	ns.gaugeSessions()
	ns.cond.Broadcast()
	ns.wg.Wait()
	ns.wheel.Close()
	return err
}

func (ns *NetServer) logf(format string, args ...any) {
	if ns.opts.Logf != nil {
		ns.opts.Logf(format, args...)
	}
}

// ---- burst staging and recycling ----

func (ns *NetServer) newBurst() *burst { return ns.burstPool.Get().(*burst) }

// releaseBurst drops the burst's hold on its shared run (if any),
// releases every private retained track buffer, returns pooled control
// buffers, and recycles the container with its header slab. Safe on nil.
func (ns *NetServer) releaseBurst(b *burst) {
	if b == nil {
		return
	}
	if b.shared != nil {
		ns.releaseShared(b.shared)
		b.shared = nil
	}
	for i := range b.frames {
		f := &b.frames[i]
		if f.ref != nil {
			f.ref.Release()
		}
		if f.ctrlp != nil {
			*f.ctrlp = f.ctrl[:0]
			ns.ctrlPool.Put(f.ctrlp)
		}
		b.frames[i] = outFrame{}
	}
	b.frames = b.frames[:0]
	b.hdrs = b.hdrs[:0]
	for i := range b.bufs {
		b.bufs[i] = nil
	}
	b.bufs = b.bufs[:0]
	ns.burstPool.Put(b)
}

// releaseShared drops one holder of a shared run. The staging pass holds
// a reference from the moment the run is created until the pass
// completes, and every burst's hold is counted before that release, so
// the decrement that reaches zero is genuinely the last one; it releases
// the run's refs and recycles the container with its header slab. Called
// from writer goroutines and shard workers, hence the atomic.
func (ns *NetServer) releaseShared(sf *sharedFrames) {
	if sf.holders.Add(-1) != 0 {
		return
	}
	for i := range sf.frames {
		f := &sf.frames[i]
		if f.ref != nil {
			f.ref.Release()
		}
		sf.frames[i] = outFrame{}
	}
	sf.frames = sf.frames[:0]
	sf.hdrs = sf.hdrs[:0]
	ns.sharedPool.Put(sf)
}

// runMatches verifies a delivered run is frame-for-frame the same
// physical payloads as an already-staged shared run. Pointer equality on
// the refs is exact: the engine's read merging hands sharers the same
// buffers in the same order, and distinct reads never alias a live ref.
func runMatches(sf *sharedFrames, run []sched.Delivery) bool {
	if len(sf.frames) != len(run) {
		return false
	}
	for i := range run {
		if sf.frames[i].ref != run[i].Buf {
			return false
		}
	}
	return true
}

// sharedFor finds or stages the pass's shared frames for a merged run.
// The pass table is shared across shard workers (merged runs span
// stream IDs, hence shards), so lookup-or-create runs under sharedMu;
// a newly created run starts with one holder — the pass's own, released
// when the pass completes — so a concurrent writer finishing early can
// never tear the run down while another shard is still attaching.
func (p *stagePass) sharedFor(ns *NetServer, run []sched.Delivery) (sf *sharedFrames, merged bool) {
	key := run[0].Buf
	p.sharedMu.Lock()
	defer p.sharedMu.Unlock()
	if sf := p.shared[key]; sf != nil {
		if runMatches(sf, run) {
			return sf, true
		}
		// A different run under the same first buffer cannot happen with
		// the engine's merging; if it ever does, drop the pass's hold on
		// the superseded entry rather than leak it.
		ns.releaseShared(sf)
	}
	sf = ns.sharedPool.Get().(*sharedFrames)
	for i := range run {
		d := &run[i]
		var h []byte
		sf.hdrs, h = appendTrackHeader(sf.hdrs, d.Track, len(d.Data))
		d.Buf.Retain()
		sf.frames = append(sf.frames, outFrame{hdr: h, payload: d.Data, ref: d.Buf})
	}
	sf.holders.Store(1)
	p.shared[key] = sf
	return sf, false
}

// stageRun stages one stream's contiguous delivered run for this cycle.
// Runs whose payloads carry refcounts are staged once per distinct run
// and shared by every session delivering the same buffers — one set of
// headers, retains, and frame bookkeeping for the whole title group
// instead of O(sessions) copies of it. Shard worker only.
func (ns *NetServer) stageRun(p *stagePass, sc *stageScratch, sess *session, run []sched.Delivery) {
	if len(run) == 0 {
		return
	}
	b := ns.burstFor(sc, sess)
	if run[0].Buf == nil || b.shared != nil {
		// No refcount to share (copy-path engine), or the session already
		// carries a shared run this cycle (engines deliver one contiguous
		// run per stream per cycle; tolerate more): stage privately.
		for i := range run {
			ns.stageTrack(sc, sess, &run[i])
		}
		return
	}
	sf, merged := p.sharedFor(ns, run)
	if merged {
		ns.mergedTracks.Add(int64(len(run)))
	}
	sf.holders.Add(1)
	b.shared = sf
}

// burstFor returns the session's in-progress burst for this pass,
// opening one (and remembering the session for the flush sweep) on
// first use. Shard worker only: a session belongs to exactly one shard,
// and each worker consumes passes in dispatch order, so sess.cur is
// single-threaded even with two passes in flight.
func (ns *NetServer) burstFor(sc *stageScratch, sess *session) *burst {
	if sess.cur == nil {
		sess.cur = ns.newBurst()
		sc.touched = append(sc.touched, sess)
	}
	return sess.cur
}

// stageTrack adds one delivered track to the session's pass burst,
// retaining the engine's refcounted buffer instead of copying it. The
// reference is released after the vectored write completes (or when the
// burst is discarded on shed/teardown).
func (ns *NetServer) stageTrack(sc *stageScratch, sess *session, d *sched.Delivery) {
	b := ns.burstFor(sc, sess)
	var h []byte
	b.hdrs, h = appendTrackHeader(b.hdrs, d.Track, len(d.Data))
	f := outFrame{hdr: h, payload: d.Data}
	if d.Buf != nil {
		d.Buf.Retain()
		f.ref = d.Buf
	} else {
		// No refcount available (an engine outside the arena path):
		// fall back to copying at the socket boundary.
		f.payload = append([]byte(nil), d.Data...)
	}
	b.frames = append(b.frames, f)
}

// stageCtrl adds a control frame to the session's pass burst.
func (ns *NetServer) stageCtrl(sc *stageScratch, sess *session, f outFrame) {
	b := ns.burstFor(sc, sess)
	b.frames = append(b.frames, f)
}

// flushStaged hands the session's staged burst to its writer. Overflow
// sheds the session; a dead session's burst is simply released. Runs on
// shard workers, outside the engine lock — only the shed path takes it.
func (ns *NetServer) flushStaged(sess *session) {
	b := sess.cur
	sess.cur = nil
	if b == nil || (len(b.frames) == 0 && b.shared == nil) {
		ns.releaseBurst(b)
		return
	}
	// Tally before the hand-off: the writer may release b immediately.
	// Shared-run tracks count once per holder — each session really does
	// send them on its own socket.
	tracks, nbytes := 0, 0
	if b.shared != nil {
		for i := range b.shared.frames {
			tracks++
			nbytes += len(b.shared.frames[i].payload)
		}
	}
	for i := range b.frames {
		if b.frames[i].hdr != nil {
			tracks++
			nbytes += len(b.frames[i].payload)
		}
	}
	queued, overflow := sess.enqueue(b)
	switch {
	case queued:
		ns.tracksSent.Add(int64(tracks))
		ns.bytesSent.Add(int64(nbytes))
	case overflow:
		ns.releaseBurst(b)
		ns.mu.Lock()
		ns.shedLocked(sess)
		ns.mu.Unlock()
	default:
		ns.releaseBurst(b)
	}
}

// ---- accept / per-connection handling ----

func (ns *NetServer) acceptLoop() {
	defer ns.wg.Done()
	for {
		conn, err := ns.ln.Accept()
		if err != nil {
			select {
			case <-ns.stop:
			default:
				ns.logf("netserve: accept: %v", err)
			}
			return
		}
		ns.srv.Metrics().Counter("net_conns_accepted").Inc()
		ns.wg.Add(1)
		go ns.handleConn(conn)
	}
}

// handleConn runs the HELLO/ADMIT handshake, then becomes the
// connection's reader until the client hangs up.
func (ns *NetServer) handleConn(conn net.Conn) {
	defer ns.wg.Done()
	if ns.opts.WriteBufferBytes > 0 {
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetWriteBuffer(ns.opts.WriteBufferBytes)
		}
	}
	conn.SetReadDeadline(time.Now().Add(helloTimeout))
	typ, payload, err := readFrame(conn)
	if err != nil || typ != frameHello || string(payload) != protocolMagic {
		conn.Close()
		return
	}
	if err := writeFrame(conn, frameHello, []byte(protocolMagic)); err != nil {
		conn.Close()
		return
	}
	typ, payload, err = readFrame(conn)
	if err != nil {
		conn.Close()
		return
	}
	var title string
	var startGroup int
	switch typ {
	case frameAdmit:
		title = string(payload)
	case frameResume:
		var req ResumeReq
		if err := json.Unmarshal(payload, &req); err != nil {
			conn.Close()
			return
		}
		title = req.Title
		if w := ns.groupWidth; w > 0 && req.NextTrack > 0 {
			// Resume at the enclosing parity-group boundary: a stream
			// admitted at group g is indistinguishable from one that
			// aged there, so every per-cluster invariant holds.
			startGroup = req.NextTrack / w
		}
	case frameView:
		// This connection is a coordinator heartbeat channel, not a
		// session: consume views until the coordinator hangs up (or
		// Close cuts the channel).
		ns.mu.Lock()
		closed := ns.closed
		if !closed {
			ns.hbConns[conn] = struct{}{}
		}
		ns.mu.Unlock()
		if !closed {
			ns.heartbeatConn(conn, payload)
			ns.mu.Lock()
			delete(ns.hbConns, conn)
			ns.mu.Unlock()
		}
		conn.Close()
		return
	default:
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})

	var sess *session
	var reject Reject
	if typ == frameAdmit && ns.opts.BatchCycles > 0 {
		sess, reject = ns.admitBatched(conn, title)
	} else {
		sess, reject = ns.admit(conn, title, startGroup)
	}
	if sess == nil {
		_ = writeJSONFrame(conn, frameReject, reject)
		conn.Close()
		return
	}
	ns.wg.Add(1)
	go ns.writeLoop(sess)

	// Reader: after admission the client speaks BYE and the VCR verbs;
	// any read error means it hung up. Either way the session (and its
	// back-end stream, if still live) is torn down on exit.
	for {
		typ, payload, err := readFrame(conn)
		if err != nil || typ == frameBye {
			ns.dropSession(sess, "client gone")
			return
		}
		switch typ {
		case framePause:
			ns.handlePause(sess)
		case frameResumePlay:
			ns.handleResumePlay(sess)
		case frameFF:
			rate, perr := parseFFRate(payload)
			if perr != nil {
				ns.dropSession(sess, "malformed FF")
				return
			}
			ns.handleFF(sess, rate)
		case frameRewind:
			track, perr := parseRewindTrack(payload)
			if perr != nil {
				ns.dropSession(sess, "malformed REWIND")
				return
			}
			ns.handleRewind(sess, track)
		}
	}
}

// sendCtrl enqueues one prebuilt control frame as its own burst — VCR
// replies ride the session's ordered send queue rather than racing the
// writer on the socket. Overflow just drops the reply (the session is
// SendQueue cycles behind; its data bursts will shed it).
func (ns *NetServer) sendCtrl(sess *session, frame []byte) {
	b := ns.newBurst()
	b.frames = append(b.frames, outFrame{ctrl: frame})
	if queued, _ := sess.enqueue(b); !queued {
		ns.releaseBurst(b)
	}
}

// vcrOKCtrl builds a VCR-OK control frame.
func vcrOKCtrl(verb string, id, next, rate int) []byte {
	return mustCtrlFrame(frameVcrOK, VcrOK{Verb: verb, StreamID: id, NextTrack: next, Rate: rate})
}

// vcrRejectCtrl builds a post-admission REJECT control frame, with the
// cycle-granularity Retry-After hint when the refusal is transient.
func (ns *NetServer) vcrRejectCtrl(err error) []byte {
	rej := Reject{Reason: err.Error()}
	if errors.Is(err, server.ErrRejected) {
		ms := ns.cycleTime.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		rej.RetryAfterMillis = ms
	}
	return mustCtrlFrame(frameReject, rej)
}

// handlePause parks a playing session: its engine stream is cancelled
// (the slot returns to the admission pool) and its next owed track is
// recorded for re-admission on resume. Pausing while paused re-acks.
func (ns *NetServer) handlePause(sess *session) {
	ns.mu.Lock()
	if ns.closed {
		ns.mu.Unlock()
		return
	}
	if ns.draining {
		// A paused session could never resume here; keep it playing.
		ns.mu.Unlock()
		ns.sendCtrl(sess, ns.vcrRejectCtrl(errors.New("draining")))
		return
	}
	if sess.paused {
		next := sess.resumeTrack
		ns.mu.Unlock()
		ns.sendCtrl(sess, vcrOKCtrl("pause", 0, next, 1))
		return
	}
	next, _, ok := ns.srv.StreamProgress(sess.id)
	if !ok {
		// The stream already finished or terminated; the BYE is on its
		// way to the client and there is nothing to pause.
		ns.mu.Unlock()
		return
	}
	_ = ns.srv.Cancel(sess.id)
	sess.paused = true
	sess.rate = 1
	sess.resumeTrack = next
	ns.pausedSessions++
	ns.srv.Metrics().Counter("net_vcr_pauses").Inc()
	ns.gaugePaused()
	ns.mu.Unlock()
	ns.sendCtrl(sess, vcrOKCtrl("pause", 0, next, 1))
}

// resumeSessionLocked re-admits a paused session at the parity-group
// floor of track, rekeying its table entry to the new stream ID. The
// old ID stays registered as an alias for two cycles: a still-staging
// pipeline pass may hold pre-pause deliveries under it, and dropping
// the key early would strand those tracks. Returns the VCR-OK to send,
// or the REJECT when the farm cannot take the stream back (the session
// stays paused; Retry-After rides the refusal).
func (ns *NetServer) resumeSessionLocked(sess *session, verb string, track, rate int) []byte {
	startGroup := 0
	if ns.groupWidth > 0 {
		startGroup = track / ns.groupWidth
	}
	id, _, err := ns.srv.RequestAt(sess.title, startGroup)
	if err == nil && rate > 1 {
		if rerr := ns.srv.SetStreamRate(id, rate); rerr != nil {
			_ = ns.srv.Cancel(id)
			err = rerr
		}
	}
	if err != nil {
		ns.srv.Metrics().Counter("net_vcr_rejects").Inc()
		return ns.vcrRejectCtrl(err)
	}
	oldID := sess.id
	sess.id = id
	ns.sessions.put(sess)
	ns.retired = append(ns.retired, retiredID{id: oldID, sess: sess, at: ns.srv.Engine().Cycle() + 2})
	if sess.paused {
		ns.pausedSessions--
	}
	sess.paused = false
	sess.rate = rate
	sess.resumeTrack = 0
	ns.gaugePaused()
	ns.cond.Broadcast() // the pacer may be idling on a paused-only farm
	return vcrOKCtrl(verb, id, startGroup*ns.groupWidth, rate)
}

// handleResumePlay resumes a paused session at its held position
// (re-admission, Retry-After on refusal) or drops a fast-forwarding
// session back to normal rate.
func (ns *NetServer) handleResumePlay(sess *session) {
	ns.mu.Lock()
	if ns.closed {
		ns.mu.Unlock()
		return
	}
	var reply []byte
	if sess.paused {
		if ns.draining {
			reply = ns.vcrRejectCtrl(errors.New("draining"))
		} else {
			reply = ns.resumeSessionLocked(sess, "resume", sess.resumeTrack, 1)
			if bytesIsVcrOK(reply) {
				ns.srv.Metrics().Counter("net_vcr_resumes").Inc()
			}
		}
	} else {
		if sess.rate > 1 {
			if err := ns.srv.SetStreamRate(sess.id, 1); err == nil {
				sess.rate = 1
			}
		}
		next, _, _ := ns.srv.StreamProgress(sess.id)
		reply = vcrOKCtrl("resume", sess.id, next, 1)
	}
	ns.mu.Unlock()
	ns.sendCtrl(sess, reply)
}

// handleFF sets a session's playback multiplier. On a playing session
// it is a rate change, k′-accounted by the engine: a request the
// admission bound cannot absorb is refused with Retry-After instead of
// silently degrading every stream's continuity. On a paused session it
// resumes directly into fast-forward (re-admission plus rate grant,
// all-or-nothing).
func (ns *NetServer) handleFF(sess *session, rate int) {
	ns.mu.Lock()
	if ns.closed {
		ns.mu.Unlock()
		return
	}
	var reply []byte
	if sess.paused {
		if ns.draining {
			reply = ns.vcrRejectCtrl(errors.New("draining"))
		} else {
			reply = ns.resumeSessionLocked(sess, "ff", sess.resumeTrack, rate)
		}
	} else if err := ns.srv.SetStreamRate(sess.id, rate); err != nil {
		ns.srv.Metrics().Counter("net_vcr_rejects").Inc()
		reply = ns.vcrRejectCtrl(err)
	} else {
		sess.rate = rate
		next, _, _ := ns.srv.StreamProgress(sess.id)
		reply = vcrOKCtrl("ff", sess.id, next, rate)
	}
	if reply != nil && bytesIsVcrOK(reply) {
		ns.srv.Metrics().Counter("net_vcr_ffs").Inc()
	}
	ns.mu.Unlock()
	ns.sendCtrl(sess, reply)
}

// bytesIsVcrOK reports whether a prebuilt control frame is a VCR-OK.
func bytesIsVcrOK(frame []byte) bool { return len(frame) > 0 && frame[0] == frameVcrOK }

// handleRewind jumps a session's position backward (or forward — the
// wire carries an absolute target track). A paused session just moves
// its held position; a playing one is cancelled and re-admitted at the
// target's parity-group floor, dropping to normal rate. If the farm
// cannot take the re-admission the session is left paused at the target
// with a Retry-After refusal — the position is not lost.
func (ns *NetServer) handleRewind(sess *session, track int) {
	ns.mu.Lock()
	if ns.closed {
		ns.mu.Unlock()
		return
	}
	var reply []byte
	if sess.paused {
		sess.resumeTrack = track
		sess.rate = 1
		reply = vcrOKCtrl("rewind", 0, track, 1)
		ns.srv.Metrics().Counter("net_vcr_rewinds").Inc()
	} else {
		_, total, ok := ns.srv.StreamProgress(sess.id)
		if !ok {
			ns.mu.Unlock()
			return
		}
		if track >= total {
			track = total - 1
		}
		if track < 0 {
			track = 0
		}
		_ = ns.srv.Cancel(sess.id)
		sess.paused = true
		sess.rate = 1
		sess.resumeTrack = track
		ns.pausedSessions++
		ns.gaugePaused()
		if ns.draining {
			reply = ns.vcrRejectCtrl(errors.New("draining"))
		} else {
			reply = ns.resumeSessionLocked(sess, "rewind", track, 1)
		}
		if bytesIsVcrOK(reply) {
			ns.srv.Metrics().Counter("net_vcr_rewinds").Inc()
		}
	}
	ns.mu.Unlock()
	ns.sendCtrl(sess, reply)
}

// heartbeatConn serves a coordinator's persistent VIEW channel: install
// each pushed view, answer with this node's load. The first frame's
// payload arrives already read by handleConn.
func (ns *NetServer) heartbeatConn(conn net.Conn, payload []byte) {
	for {
		var v cluster.View
		if err := json.Unmarshal(payload, &v); err != nil {
			return
		}
		ns.SetView(&v)
		ack := ViewAck{NodeID: ns.opts.NodeID, Sessions: ns.Sessions()}
		ns.mu.Lock()
		ack.Active = ns.srv.Engine().Active()
		if ns.view != nil {
			ack.View = ns.view.Number
		}
		ns.mu.Unlock()
		if err := writeJSONFrame(conn, frameView, ack); err != nil {
			return
		}
		conn.SetReadDeadline(time.Now().Add(helloTimeout))
		typ, p, err := readFrame(conn)
		if err != nil || typ != frameView {
			return
		}
		payload = p
	}
}

// admit asks the back end for a stream and registers the session. A nil
// session means rejection, with the Reject to send. startGroup > 0 is a
// RESUME admission: the stream starts at that parity-group boundary.
func (ns *NetServer) admit(conn net.Conn, title string, startGroup int) (*session, Reject) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.closed || ns.draining {
		return nil, Reject{Reason: "draining"}
	}
	return ns.admitLocked(conn, title, startGroup)
}

// admitBatched parks a fresh ADMIT in its title's flash-crowd batch and
// blocks until the window closes and the batch flushes at a cycle
// boundary (StepCycle's flushBatchesLocked admits the whole cohort
// under one lock hold, so the members' engine streams run in lockstep
// and merge their reads).
func (ns *NetServer) admitBatched(conn net.Conn, title string) (*session, Reject) {
	ns.mu.Lock()
	if ns.closed || ns.draining {
		ns.mu.Unlock()
		return nil, Reject{Reason: "draining"}
	}
	w := &batchWaiter{conn: conn, arrival: time.Now(), done: make(chan struct{})}
	tb := ns.batches[title]
	if tb == nil {
		tb = &titleBatch{due: ns.srv.Engine().Cycle() + ns.opts.BatchCycles}
		ns.batches[title] = tb
	}
	tb.waiters = append(tb.waiters, w)
	ns.pendingWaiters++
	ns.mu.Unlock()
	ns.cond.Broadcast() // the pacer may be idling; cycles must now run
	select {
	case <-w.done:
		return w.sess, w.reject
	case <-ns.stop:
		select {
		case <-w.done:
			// The flush raced shutdown and won; use its answer (a live
			// session here is torn down by Close's drainAll momentarily).
			return w.sess, w.reject
		default:
			return nil, Reject{Reason: "shutdown"}
		}
	}
}

// flushBatchesLocked admits every batch whose window has closed. Runs
// under mu immediately before the engine Step, so the cohort's streams
// are admitted at the same cycle boundary — the lockstep that lets the
// engine merge their reads and netserve share one staged run.
func (ns *NetServer) flushBatchesLocked(cycle int) {
	for title, tb := range ns.batches {
		if tb.due > cycle {
			continue
		}
		delete(ns.batches, title)
		ns.batchRuns.Inc()
		admitted := int64(0)
		for _, w := range tb.waiters {
			w.sess, w.reject = ns.admitLocked(w.conn, title, 0)
			if w.sess != nil {
				admitted++
			}
			ns.batchWaitMs.Observe(time.Since(w.arrival).Milliseconds())
			ns.pendingWaiters--
			close(w.done)
		}
		ns.batchedStarts.Add(admitted)
	}
}

// admitLocked is admit's core, shared with the batch flusher; the
// caller holds mu and has already checked closed/draining.
func (ns *NetServer) admitLocked(conn net.Conn, title string, startGroup int) (*session, Reject) {
	id, _, err := ns.srv.RequestAt(title, startGroup)
	if err != nil {
		ns.srv.Metrics().Counter("net_rejects").Inc()
		rej := Reject{Reason: err.Error()}
		if errors.Is(err, server.ErrRejected) {
			// Capacity frees up at cycle granularity: one cycle of real
			// time (at least a millisecond) is the natural retry hint.
			ms := ns.cycleTime.Milliseconds()
			if ms < 1 {
				ms = 1
			}
			rej.RetryAfterMillis = ms
		}
		return nil, rej
	}
	_, total, _ := ns.srv.StreamProgress(id)
	size, _ := ns.srv.Library().Size(title)
	sess := &session{
		id:    id,
		title: title,
		conn:  conn,
		sendq: make(chan *burst, ns.opts.SendQueue),
		done:  make(chan struct{}),
	}
	sess.wt = ns.wheel.NewTimer(func() {
		// A vectored write outlived WriteTimeout: the socket is stalled.
		// Cutting the connection fails the write and the writer sheds
		// the session through the normal drop path.
		ns.srv.Metrics().Counter("net_write_timeouts").Inc()
		sess.abort()
	})
	ok, err := jsonFrame(frameAdmitOK, AdmitOK{
		StreamID:   id,
		Title:      title,
		TrackSize:  ns.trackSize,
		Tracks:     total,
		Size:       int(size),
		CycleNanos: ns.cycleTime.Nanoseconds(),
		Burst:      ns.burst,
		StartTrack: startGroup * ns.groupWidth,
		NodeID:     ns.opts.NodeID,
	})
	if err != nil {
		_ = ns.srv.Cancel(id)
		return nil, Reject{Reason: "internal: " + err.Error()}
	}
	hello := ns.newBurst()
	hello.frames = append(hello.frames, outFrame{ctrl: ok})
	if queued, _ := sess.enqueue(hello); !queued {
		ns.releaseBurst(hello) // unreachable on a fresh queue; be safe
	}
	ns.sessions.put(sess)
	ns.srv.Metrics().Counter("net_admits").Inc()
	ns.gaugeSessions()
	ns.cond.Broadcast()
	return sess, Reject{}
}

// writeLoop ships queued bursts onto the socket, one vectored write
// per burst. It exits when the queue closes (graceful finish: flush
// then hang up) or done closes (shed/shutdown: release what remains).
func (ns *NetServer) writeLoop(sess *session) {
	defer ns.wg.Done()
	for {
		select {
		case <-sess.done:
			ns.drainSendq(sess)
			return
		case b, ok := <-sess.sendq:
			if !ok {
				sess.abort() // tail flushed; hang up
				return
			}
			if err := ns.writeBurst(sess, b); err != nil {
				ns.srv.Metrics().Counter("net_write_errors").Inc()
				ns.dropSession(sess, "write error")
				ns.drainSendq(sess)
				return
			}
		}
	}
}

// writeBurst flattens the burst into an iovec list and writes it with
// one vectored write, supervised by the session's wheel timer. The
// burst (headers, refs, container) is recycled before returning.
func (ns *NetServer) writeBurst(sess *session, b *burst) error {
	bufs := b.bufs[:0]
	if b.shared != nil {
		// The shared run goes first: tracks were staged before control
		// frames, and every holder reads sf.frames concurrently but only
		// mutates its own bufs.
		for i := range b.shared.frames {
			f := &b.shared.frames[i]
			bufs = append(bufs, f.hdr, f.payload)
		}
	}
	for i := range b.frames {
		f := &b.frames[i]
		if f.ctrl != nil {
			bufs = append(bufs, f.ctrl)
		} else {
			bufs = append(bufs, f.hdr, f.payload)
		}
	}
	b.bufs = bufs
	sess.wt.Reset(ns.opts.WriteTimeout)
	start := time.Now()
	err := writeVectored(sess.conn, b.bufs)
	ns.phaseFlush.Observe(time.Since(start).Microseconds())
	sess.wt.Stop()
	ns.releaseBurst(b)
	return err
}

// writeVectored writes every buffer fully. On *net.TCPConn the batch
// goes through net.Buffers (one writev syscall for a typical burst);
// any other conn (test stubs, pipes) takes a manual loop that tolerates
// short writes returning n < len(buf) with a nil error — a contract
// violation the stdlib's generic consume path would turn into silent
// stream corruption.
func writeVectored(conn net.Conn, bufs net.Buffers) error {
	if tc, ok := conn.(*net.TCPConn); ok {
		_, err := bufs.WriteTo(tc)
		return err
	}
	for _, buf := range bufs {
		for len(buf) > 0 {
			n, err := conn.Write(buf)
			buf = buf[n:]
			if err != nil {
				return err
			}
			if n == 0 && len(buf) > 0 {
				return io.ErrShortWrite
			}
		}
	}
	return nil
}

// drainSendq releases every burst stranded in the queue after a shed,
// drop, or shutdown so their retained track buffers return to the
// arena. By the time it runs the session is dead (kill/dropSession
// happen before), so no new burst can be enqueued behind the drain.
func (ns *NetServer) drainSendq(sess *session) {
	for {
		select {
		case b, ok := <-sess.sendq:
			if !ok {
				return
			}
			ns.releaseBurst(b)
		default:
			return
		}
	}
}

// dropSession removes a session whose connection died and cancels its
// back-end stream if it is still live.
func (ns *NetServer) dropSession(sess *session, reason string) {
	if ns.sessions.remove(sess) {
		ns.mu.Lock()
		_ = ns.srv.Cancel(sess.id)
		if sess.paused {
			sess.paused = false
			ns.pausedSessions--
			ns.gaugePaused()
		}
		ns.checkDrainedLocked()
		ns.mu.Unlock()
		ns.gaugeSessions()
	}
	sess.kill()
	_ = reason
}

func (ns *NetServer) gaugeSessions() {
	ns.srv.Metrics().Gauge("net_sessions_active").Set(int64(ns.sessions.len()))
}

func (ns *NetServer) gaugePaused() {
	ns.srv.Metrics().Gauge("net_sessions_paused").Set(int64(ns.pausedSessions))
}

// ---- the cycle loop ----

// paceLoop drives cycles on the configured clock, idling (no busy spin)
// while nothing is admitted or scheduled.
func (ns *NetServer) paceLoop() {
	defer ns.wg.Done()
	for {
		ns.mu.Lock()
		for !ns.closed && ns.idleLocked() {
			ns.cond.Wait()
		}
		closed := ns.closed
		ns.mu.Unlock()
		if closed {
			return
		}
		if !ns.opts.Clock.Pace(ns.cycleTime, ns.stop) {
			return
		}
		if err := ns.StepCycle(); err != nil {
			ns.logf("netserve: step: %v", err)
			return
		}
	}
}

// idleLocked gates the pacer: with no sessions, no live streams, and no
// parked flash-crowd waiters there is nothing to transmit, so cycles
// stop (and with them the cycle counter scheduled fault events compare
// against — a failure scheduled for cycle 40 lands forty cycles into
// service, not into an idle farm). Parked waiters keep the pacer
// running: their batch flushes at a cycle boundary, so cycles must keep
// coming for the window to close.
func (ns *NetServer) idleLocked() bool {
	return ns.sessions.len() == 0 && ns.srv.Engine().Active() == 0 && ns.pendingWaiters == 0
}

// StepCycle runs one transmission cycle. Under the engine lock it
// applies due scheduled events and steps the engine (the read/XOR
// phase); the cycle's deliveries, hiccups, and completions are then
// staged and flushed by the shard workers as a pipelined pass, outside
// the lock, while the next StepCycle is free to run the engine again.
// The pipeline is two deep: before stepping cycle N, the driver waits
// for pass N−2 — the engine's double-buffered report keeps cycle N−1's
// buffers and report struct intact across exactly one further Step, so
// "pass N−1 may still be staging while the engine computes N" is the
// deepest overlap that never races a buffer release.
//
// In manual mode (no Clock) this is the only way cycles happen; with a
// Clock it also serves as a test hook. With Options.NoPipeline (or once
// draining, where callers poll completion state between steps) the call
// waits for its own pass, restoring the strictly serial loop.
func (ns *NetServer) StepCycle() error {
	ns.stepMu.Lock()
	defer ns.stepMu.Unlock()
	if p := ns.prvPass; p != nil {
		select {
		case <-p.done:
			ns.recyclePass(p)
		case <-ns.stop:
			return nil
		}
		ns.prvPass = nil
	}

	ns.mu.Lock()
	if ns.closed {
		ns.mu.Unlock()
		return nil
	}
	cycle := ns.srv.Engine().Cycle()
	// Retire resumed sessions' old stream-ID aliases once the passes
	// that might still stage under them have drained (the pipeline-depth
	// wait above guarantees it for entries two cycles old).
	keptIDs := ns.retired[:0]
	for _, r := range ns.retired {
		if r.at > cycle {
			keptIDs = append(keptIDs, r)
			continue
		}
		if ns.sessions.removeID(r.id, r.sess) {
			ns.gaugeSessions()
		}
	}
	ns.retired = keptIDs
	ns.flushBatchesLocked(cycle)
	kept := ns.schedule[:0]
	for _, ev := range ns.schedule {
		if ev.cycle > cycle {
			kept = append(kept, ev)
			continue
		}
		if err := ev.apply(); err != nil {
			ns.logf("netserve: scheduled %s at cycle %d: %v", ev.desc, cycle, err)
		}
	}
	ns.schedule = kept

	start := time.Now()
	rep, err := ns.srv.Step()
	if err != nil {
		ns.mu.Unlock()
		return err
	}
	stepDur := time.Since(start)
	draining := ns.draining
	ns.mu.Unlock()

	ns.phaseRead.Observe(stepDur.Microseconds())
	ns.observeOverlap(start, stepDur)
	if ns.reportHook != nil {
		ns.reportHook(rep.Clone())
	}

	mask := passShardMask(rep)
	p := ns.newPass(rep, mask)
	ns.prvPass, ns.curPass = ns.curPass, p
	if mask == 0 {
		// Idle cycle (common while a cohort drains its queues): nothing
		// to stage, so complete the pass inline rather than waking any
		// workers.
		ns.finishPass(p)
	} else {
		for w := range ns.stagers {
			if mask&(1<<uint(w)) != 0 {
				ns.stagers[w] <- p
			}
		}
	}
	if ns.opts.NoPipeline || draining {
		select {
		case <-p.done:
		case <-ns.stop:
		}
	}
	return nil
}

// observeOverlap records how much of the Step that just finished ran
// while the previous cycle's staging pass was still working — the
// pipeline's payoff, as a percentage of the Step. Called between the
// Step and the pass swap, so curPass is still cycle N−1's pass.
func (ns *NetServer) observeOverlap(start time.Time, stepDur time.Duration) {
	prev := ns.curPass
	if prev == nil {
		return
	}
	if prev.idle {
		// Nothing was staged last cycle, so there was nothing to overlap
		// with; recording 0 here would just dilute the payoff metric with
		// drain-spin cycles.
		return
	}
	overlapped := stepDur
	if doneAt := prev.doneAt.Load(); doneAt != 0 {
		// The pass finished mid-Step (or before it): overlap is the
		// leading slice of the Step, clamped to [0, stepDur].
		d := time.Duration(doneAt - start.UnixNano())
		if d < 0 {
			d = 0
		}
		if d < overlapped {
			overlapped = d
		}
	}
	pct := int64(100)
	if stepDur > 0 {
		pct = int64(100 * overlapped / stepDur)
	}
	ns.phaseOverlap.Observe(pct)
}

// newPass opens a staging pass over one cycle's report; pending is
// sized to the shard mask so only the dispatched workers are waited on.
func (ns *NetServer) newPass(rep *sched.CycleReport, mask uint32) *stagePass {
	p, _ := ns.passPool.Get().(*stagePass)
	if p == nil {
		p = &stagePass{shared: make(map[*buffer.Ref]*sharedFrames)}
	}
	p.rep = rep
	p.start = time.Now()
	p.doneAt.Store(0)
	p.idle = mask == 0
	p.pending.Store(int32(bits.OnesCount32(mask)))
	p.done = make(chan struct{})
	return p
}

// passShardMask returns the set of session shards a report touches.
// Dispatch wakes only those workers: on small cycles — a single
// stream, hiccup-only cycles, the idle steps while a cohort drains —
// most shards have nothing to do, and sixteen channel sends plus
// goroutine wakeups per cycle would dwarf the actual staging work.
func passShardMask(rep *sched.CycleReport) uint32 {
	var mask uint32
	for i := range rep.Delivered {
		mask |= 1 << (uint(rep.Delivered[i].StreamID) % sessionShards)
	}
	for i := range rep.Hiccups {
		mask |= 1 << (uint(rep.Hiccups[i].StreamID) % sessionShards)
	}
	for _, id := range rep.Finished {
		mask |= 1 << (uint(id) % sessionShards)
	}
	for _, id := range rep.Terminated {
		mask |= 1 << (uint(id) % sessionShards)
	}
	return mask
}

func (ns *NetServer) recyclePass(p *stagePass) {
	p.rep = nil
	ns.passPool.Put(p)
}

// stageWorker is one shard's staging goroutine: it consumes passes in
// dispatch order (preserving per-session burst order across cycles) and
// stages the slice of each cycle owed to its shard's sessions. On stop
// it finishes anything already dispatched so every pass completes.
func (ns *NetServer) stageWorker(w int) {
	defer ns.wg.Done()
	work := func(p *stagePass) {
		ns.stageShard(p, w)
		if p.pending.Add(-1) == 0 {
			ns.finishPass(p)
		}
	}
	for {
		select {
		case p := <-ns.stagers[w]:
			work(p)
		case <-ns.stop:
			for {
				select {
				case p := <-ns.stagers[w]:
					work(p)
				default:
					return
				}
			}
		}
	}
}

// stageShard stages one pass's deliveries, hiccups, and completions for
// the sessions of shard w, then flushes its touched sessions and closes
// finishing queues. Every worker scans the whole report — the per-entry
// shard test is a mask against a slice walk, far cheaper than building
// sixteen sub-lists under a lock — and Delivered is in stream order, so
// one stream's tracks form one contiguous run.
func (ns *NetServer) stageShard(p *stagePass, w int) {
	sc := &ns.scratch[w]
	rep := p.rep
	for i := 0; i < len(rep.Delivered); {
		id := rep.Delivered[i].StreamID
		j := i + 1
		for j < len(rep.Delivered) && rep.Delivered[j].StreamID == id {
			j++
		}
		if uint(id)%sessionShards == uint(w) {
			if sess := ns.sessions.get(id); sess != nil {
				ns.stageRun(p, sc, sess, rep.Delivered[i:j])
			}
		}
		i = j
	}
	for _, h := range rep.Hiccups {
		if uint(h.StreamID)%sessionShards != uint(w) {
			continue
		}
		sess := ns.sessions.get(h.StreamID)
		if sess == nil {
			continue
		}
		ns.stageCtrl(sc, sess, ns.hiccupFrame(h.Track, h.Reason))
		ns.hiccupsSent.Inc()
	}
	for _, id := range rep.Finished {
		if uint(id)%sessionShards == uint(w) {
			ns.stageFinish(sc, id, byeFinished)
		}
	}
	for _, id := range rep.Terminated {
		if uint(id)%sessionShards == uint(w) {
			ns.stageFinish(sc, id, byeTerminated)
		}
	}
	for _, sess := range sc.touched {
		ns.flushStaged(sess)
	}
	clearSessions(sc.touched)
	sc.touched = sc.touched[:0]
	for _, sess := range sc.finishing {
		sess.closeQueue()
	}
	clearSessions(sc.finishing)
	sc.finishing = sc.finishing[:0]
}

// finishPass runs on the last worker out of a pass: release the pass's
// holds on its shared runs, stamp the stage histogram and completion
// time, re-check drain completion (sessions may have finished or shed
// this pass), and wake anyone waiting on the pass.
func (ns *NetServer) finishPass(p *stagePass) {
	for key, sf := range p.shared {
		ns.releaseShared(sf)
		delete(p.shared, key)
	}
	if !p.idle {
		ns.phaseStage.Observe(time.Since(p.start).Microseconds())
	}
	p.doneAt.Store(time.Now().UnixNano())
	ns.mu.Lock()
	ns.checkDrainedLocked()
	ns.mu.Unlock()
	close(p.done)
}

// clearSessions drops pointers from a scratch list before truncation.
func clearSessions(list []*session) {
	for i := range list {
		list[i] = nil
	}
}

// Prebuilt BYE control frames for the graceful-finish paths: their
// contents never vary, so the cycle loop ships the same bytes every
// time instead of marshaling per session.
var (
	byeFinished   = mustCtrlFrame(frameBye, Bye{Reason: "finished"})
	byeTerminated = mustCtrlFrame(frameBye, Bye{Reason: "terminated"})
	byeShutdown   = mustCtrlFrame(frameBye, Bye{Reason: "shutdown"})
)

func mustCtrlFrame(typ byte, v any) []byte {
	buf, err := jsonFrame(typ, v)
	if err != nil {
		panic(err)
	}
	return buf
}

// hiccupFrame encodes a HICCUP control frame into a pooled buffer
// (returned to the pool when the burst releases), replacing a
// json.Marshal allocation per lost track on the staging path.
func (ns *NetServer) hiccupFrame(track int, reason string) outFrame {
	bp := ns.ctrlPool.Get().(*[]byte)
	buf := append((*bp)[:0], frameHiccup, 0, 0, 0, 0)
	buf = append(buf, `{"track":`...)
	buf = strconv.AppendInt(buf, int64(track), 10)
	buf = append(buf, `,"reason":`...)
	buf = strconv.AppendQuote(buf, reason)
	buf = append(buf, '}')
	binary.BigEndian.PutUint32(buf[1:frameHeaderLen], uint32(len(buf)-frameHeaderLen))
	*bp = buf
	return outFrame{ctrl: buf, ctrlp: bp}
}

// stageFinish ends a session gracefully: a BYE rides in the session's
// final burst, the session is unregistered, and after the flush sweep
// its queue closes so the writer flushes everything and hangs up.
func (ns *NetServer) stageFinish(sc *stageScratch, id int, bye []byte) {
	sess := ns.sessions.get(id)
	if sess == nil {
		return
	}
	ns.stageCtrl(sc, sess, outFrame{ctrl: bye})
	ns.sessions.remove(sess)
	ns.gaugeSessions()
	sc.finishing = append(sc.finishing, sess)
}

// shedLocked evicts a slow client: its queue overflowed, meaning the
// socket stalled for SendQueue cycles' worth of bursts. The stream is
// cancelled so its disk bandwidth and buffers return to the farm, and
// the connection is closed; other sessions never waited.
func (ns *NetServer) shedLocked(sess *session) {
	ns.logf("netserve: shedding stream %d (%s): send queue full", sess.id, sess.title)
	if ns.sessions.remove(sess) {
		_ = ns.srv.Cancel(sess.id)
		if sess.paused {
			sess.paused = false
			ns.pausedSessions--
			ns.gaugePaused()
		}
		ns.srv.Metrics().Counter("net_sessions_shed").Inc()
		ns.gaugeSessions()
	}
	sess.kill()
	ns.checkDrainedLocked()
}
