package netserve

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"ftmm/internal/server"
)

// Default tuning knobs.
const (
	defaultSendQueue    = 64
	defaultWriteTimeout = 10 * time.Second
	helloTimeout        = 30 * time.Second
)

// Options configures a NetServer.
type Options struct {
	// Server is the cycle-engine back end. NetServer serializes all
	// access to it behind one mutex — server.Server itself is not
	// concurrency-safe.
	Server *server.Server
	// Addr is the TCP listen address; empty means loopback with an
	// OS-assigned port (the usual test setting).
	Addr string
	// Clock paces transmission cycles. nil selects manual mode: the
	// owner drives cycles through StepCycle, nothing runs on a timer.
	Clock Clock
	// SendQueue bounds the per-session outbound frame queue. A session
	// whose queue overflows is shed (its stream cancelled, connection
	// closed) so one stalled client cannot delay the cycle loop or
	// other streams.
	SendQueue int
	// WriteTimeout is the per-frame socket write deadline.
	WriteTimeout time.Duration
	// WriteBufferBytes shrinks the kernel send buffer on accepted
	// connections when > 0. Shedding tests use a small value so a
	// non-reading client exerts backpressure quickly.
	WriteBufferBytes int
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// scheduledEvent is a fault-injection action bound to a cycle number.
type scheduledEvent struct {
	cycle int
	desc  string
	apply func() error
}

// NetServer accepts framed TCP sessions and paces admitted streams'
// tracks out at playback rate, one burst per transmission cycle.
type NetServer struct {
	opts      Options
	srv       *server.Server
	ln        net.Listener
	cycleTime time.Duration
	burst     int
	trackSize int

	mu       sync.Mutex
	cond     *sync.Cond
	sessions map[int]*session
	schedule []scheduledEvent
	draining bool
	drained  chan struct{}
	closed   bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// session is one admitted client connection.
type session struct {
	id    int
	title string
	conn  net.Conn

	// sendq carries encoded frames from the cycle loop to the write
	// loop. Only the cycle loop sends; it closes the queue on graceful
	// finish so the writer flushes the tail and closes the connection.
	sendq chan []byte
	// done is closed when the session is shed or the server shuts down;
	// the writer exits without draining.
	done chan struct{}
	once sync.Once

	shed     bool
	finished bool
}

// abort closes the connection and releases the writer immediately.
func (s *session) abort() {
	s.once.Do(func() {
		close(s.done)
		s.conn.Close()
	})
}

// New starts listening and, when a Clock is configured, begins pacing.
func New(opts Options) (*NetServer, error) {
	if opts.Server == nil {
		return nil, errors.New("netserve: Options.Server is required")
	}
	if opts.SendQueue <= 0 {
		opts.SendQueue = defaultSendQueue
	}
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = defaultWriteTimeout
	}
	addr := opts.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netserve: listen: %w", err)
	}
	srv := opts.Server
	cycle := srv.CycleTime()
	trackSize := int(srv.Farm().Params().TrackSize)
	burst := int(math.Round(cycle.Seconds() * srv.Rate().BytesPerSecond() / float64(trackSize)))
	if burst < 1 {
		burst = 1
	}
	ns := &NetServer{
		opts:      opts,
		srv:       srv,
		ln:        ln,
		cycleTime: cycle,
		burst:     burst,
		trackSize: trackSize,
		sessions:  make(map[int]*session),
		drained:   make(chan struct{}),
		stop:      make(chan struct{}),
	}
	ns.cond = sync.NewCond(&ns.mu)
	ns.wg.Add(1)
	go ns.acceptLoop()
	if opts.Clock != nil {
		ns.wg.Add(1)
		go ns.paceLoop()
	}
	return ns, nil
}

// Addr returns the bound listen address.
func (ns *NetServer) Addr() net.Addr { return ns.ln.Addr() }

// CycleTime returns the transmission cycle length.
func (ns *NetServer) CycleTime() time.Duration { return ns.cycleTime }

// Burst returns k′: tracks shipped to each stream per transmission
// cycle.
func (ns *NetServer) Burst() int { return ns.burst }

// Sessions returns the number of connected, admitted sessions.
func (ns *NetServer) Sessions() int {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return len(ns.sessions)
}

// StreamProgress reports the back end's delivery progress for a stream.
func (ns *NetServer) StreamProgress(id int) (next, total int, ok bool) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.srv.StreamProgress(id)
}

// FailDisk injects a drive failure at the next cycle boundary.
func (ns *NetServer) FailDisk(id int) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.srv.FailDisk(id)
}

// RepairDisk replaces a failed drive (offline rebuild).
func (ns *NetServer) RepairDisk(id int) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.srv.RepairDisk(id)
}

// StartOnlineRebuild begins a budgeted online rebuild of a drive.
func (ns *NetServer) StartOnlineRebuild(id, readBudget int) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.srv.StartOnlineRebuild(id, readBudget)
}

// ScheduleFailure arranges for drive id to fail at the start of the
// given engine cycle.
func (ns *NetServer) ScheduleFailure(cycle, id int) {
	ns.scheduleEvent(cycle, fmt.Sprintf("fail disk %d", id), func() error { return ns.srv.FailDisk(id) })
}

// ScheduleRepair arranges an offline repair of drive id at the given
// cycle.
func (ns *NetServer) ScheduleRepair(cycle, id int) {
	ns.scheduleEvent(cycle, fmt.Sprintf("repair disk %d", id), func() error { return ns.srv.RepairDisk(id) })
}

// ScheduleRebuild arranges an online rebuild of drive id at the given
// cycle.
func (ns *NetServer) ScheduleRebuild(cycle, id, readBudget int) {
	ns.scheduleEvent(cycle, fmt.Sprintf("rebuild disk %d", id), func() error { return ns.srv.StartOnlineRebuild(id, readBudget) })
}

func (ns *NetServer) scheduleEvent(cycle int, desc string, apply func() error) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.schedule = append(ns.schedule, scheduledEvent{cycle: cycle, desc: desc, apply: apply})
	ns.cond.Broadcast()
}

// Drain stops admitting new sessions and waits until every in-flight
// stream finishes (the graceful half of shutdown; Close is the hard
// half). In manual mode the caller must keep stepping cycles for the
// drain to make progress.
func (ns *NetServer) Drain(timeout time.Duration) error {
	ns.mu.Lock()
	ns.draining = true
	ns.srv.BeginDrain()
	ns.checkDrainedLocked()
	ns.mu.Unlock()
	ns.cond.Broadcast()
	select {
	case <-ns.drained:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("netserve: drain timed out after %v with %d sessions live", timeout, ns.Sessions())
	}
}

// Drained reports whether a drain has completed.
func (ns *NetServer) Drained() bool {
	select {
	case <-ns.drained:
		return true
	default:
		return false
	}
}

func (ns *NetServer) checkDrainedLocked() {
	if !ns.draining {
		return
	}
	if len(ns.sessions) == 0 && ns.srv.Engine().Active() == 0 {
		select {
		case <-ns.drained:
		default:
			close(ns.drained)
		}
	}
}

// Close tears everything down: the listener, the pacer, every live
// connection. Pending frames are not flushed — call Drain first for a
// graceful exit.
func (ns *NetServer) Close() error {
	ns.mu.Lock()
	if ns.closed {
		ns.mu.Unlock()
		return nil
	}
	ns.closed = true
	close(ns.stop)
	err := ns.ln.Close()
	for id, sess := range ns.sessions {
		delete(ns.sessions, id)
		sess.abort()
	}
	ns.gaugeSessions()
	ns.mu.Unlock()
	ns.cond.Broadcast()
	ns.wg.Wait()
	return err
}

func (ns *NetServer) logf(format string, args ...any) {
	if ns.opts.Logf != nil {
		ns.opts.Logf(format, args...)
	}
}

// ---- accept / per-connection handling ----

func (ns *NetServer) acceptLoop() {
	defer ns.wg.Done()
	for {
		conn, err := ns.ln.Accept()
		if err != nil {
			select {
			case <-ns.stop:
			default:
				ns.logf("netserve: accept: %v", err)
			}
			return
		}
		ns.srv.Metrics().Counter("net_conns_accepted").Inc()
		ns.wg.Add(1)
		go ns.handleConn(conn)
	}
}

// handleConn runs the HELLO/ADMIT handshake, then becomes the
// connection's reader until the client hangs up.
func (ns *NetServer) handleConn(conn net.Conn) {
	defer ns.wg.Done()
	if ns.opts.WriteBufferBytes > 0 {
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetWriteBuffer(ns.opts.WriteBufferBytes)
		}
	}
	conn.SetReadDeadline(time.Now().Add(helloTimeout))
	typ, payload, err := readFrame(conn)
	if err != nil || typ != frameHello || string(payload) != protocolMagic {
		conn.Close()
		return
	}
	if err := writeFrame(conn, frameHello, []byte(protocolMagic)); err != nil {
		conn.Close()
		return
	}
	typ, payload, err = readFrame(conn)
	if err != nil || typ != frameAdmit {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})

	sess, reject := ns.admit(conn, string(payload))
	if sess == nil {
		_ = writeJSONFrame(conn, frameReject, reject)
		conn.Close()
		return
	}
	ns.wg.Add(1)
	go ns.writeLoop(sess)

	// Reader: the client speaks only BYE after admission; any read
	// error means it hung up. Either way the session (and its back-end
	// stream, if still live) is torn down.
	for {
		typ, _, err := readFrame(conn)
		if err != nil || typ == frameBye {
			ns.dropSession(sess, "client gone")
			return
		}
	}
}

// admit asks the back end for a stream and registers the session. A nil
// session means rejection, with the Reject to send.
func (ns *NetServer) admit(conn net.Conn, title string) (*session, Reject) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.closed || ns.draining {
		return nil, Reject{Reason: "draining"}
	}
	id, _, err := ns.srv.Request(title)
	if err != nil {
		ns.srv.Metrics().Counter("net_rejects").Inc()
		rej := Reject{Reason: err.Error()}
		if errors.Is(err, server.ErrRejected) {
			// Capacity frees up at cycle granularity: one cycle of real
			// time (at least a millisecond) is the natural retry hint.
			ms := ns.cycleTime.Milliseconds()
			if ms < 1 {
				ms = 1
			}
			rej.RetryAfterMillis = ms
		}
		return nil, rej
	}
	_, total, _ := ns.srv.StreamProgress(id)
	size, _ := ns.srv.Library().Size(title)
	sess := &session{
		id:    id,
		title: title,
		conn:  conn,
		sendq: make(chan []byte, ns.opts.SendQueue),
		done:  make(chan struct{}),
	}
	ok, err := jsonFrame(frameAdmitOK, AdmitOK{
		StreamID:   id,
		Title:      title,
		TrackSize:  ns.trackSize,
		Tracks:     total,
		Size:       int(size),
		CycleNanos: ns.cycleTime.Nanoseconds(),
		Burst:      ns.burst,
	})
	if err != nil {
		_ = ns.srv.Cancel(id)
		return nil, Reject{Reason: "internal: " + err.Error()}
	}
	sess.sendq <- ok
	ns.sessions[id] = sess
	ns.srv.Metrics().Counter("net_admits").Inc()
	ns.gaugeSessions()
	ns.cond.Broadcast()
	return sess, Reject{}
}

// writeLoop drains the session's queue onto the socket under per-frame
// deadlines. It exits when the queue closes (graceful finish: flush
// then close) or done closes (shed/shutdown: the connection is already
// closed).
func (ns *NetServer) writeLoop(sess *session) {
	defer ns.wg.Done()
	for {
		select {
		case <-sess.done:
			return
		case buf, ok := <-sess.sendq:
			if !ok {
				sess.abort() // tail flushed; hang up
				return
			}
			sess.conn.SetWriteDeadline(time.Now().Add(ns.opts.WriteTimeout))
			if _, err := sess.conn.Write(buf); err != nil {
				ns.srv.Metrics().Counter("net_write_errors").Inc()
				ns.dropSession(sess, "write error")
				return
			}
		}
	}
}

// dropSession removes a session whose connection died and cancels its
// back-end stream if it is still live.
func (ns *NetServer) dropSession(sess *session, reason string) {
	ns.mu.Lock()
	if cur, ok := ns.sessions[sess.id]; ok && cur == sess {
		delete(ns.sessions, sess.id)
		_ = ns.srv.Cancel(sess.id)
		ns.gaugeSessions()
		ns.checkDrainedLocked()
	}
	ns.mu.Unlock()
	sess.abort()
	_ = reason
}

func (ns *NetServer) gaugeSessions() {
	ns.srv.Metrics().Gauge("net_sessions_active").Set(int64(len(ns.sessions)))
}

// ---- the cycle loop ----

// paceLoop drives cycles on the configured clock, idling (no busy spin)
// while nothing is admitted or scheduled.
func (ns *NetServer) paceLoop() {
	defer ns.wg.Done()
	for {
		ns.mu.Lock()
		for !ns.closed && ns.idleLocked() {
			ns.cond.Wait()
		}
		closed := ns.closed
		ns.mu.Unlock()
		if closed {
			return
		}
		if !ns.opts.Clock.Pace(ns.cycleTime, ns.stop) {
			return
		}
		if err := ns.StepCycle(); err != nil {
			ns.logf("netserve: step: %v", err)
			return
		}
	}
}

// idleLocked gates the pacer: with no sessions and no live streams
// there is nothing to transmit, so cycles stop (and with them the cycle
// counter scheduled fault events compare against — a failure scheduled
// for cycle 40 lands forty cycles into service, not into an idle farm).
func (ns *NetServer) idleLocked() bool {
	return len(ns.sessions) == 0 && ns.srv.Engine().Active() == 0
}

// StepCycle runs one transmission cycle: apply due scheduled events,
// step the engine, and route the cycle's deliveries, hiccups, and
// completions to their sessions. In manual mode (no Clock) this is the
// only way cycles happen; with a Clock it also serves as a test hook.
func (ns *NetServer) StepCycle() error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.stepLocked()
}

func (ns *NetServer) stepLocked() error {
	cycle := ns.srv.Engine().Cycle()
	kept := ns.schedule[:0]
	for _, ev := range ns.schedule {
		if ev.cycle > cycle {
			kept = append(kept, ev)
			continue
		}
		if err := ev.apply(); err != nil {
			ns.logf("netserve: scheduled %s at cycle %d: %v", ev.desc, cycle, err)
		}
	}
	ns.schedule = kept

	rep, err := ns.srv.Step()
	if err != nil {
		return err
	}
	m := ns.srv.Metrics()
	for i := range rep.Delivered {
		d := &rep.Delivered[i]
		sess, ok := ns.sessions[d.StreamID]
		if !ok {
			continue
		}
		// trackFrame copies d.Data: the engine recycles these bytes on
		// its next Step, so the socket boundary owns its own copy.
		if ns.pushLocked(sess, trackFrame(d.Track, d.Data)) {
			m.Counter("net_tracks_sent").Inc()
			m.Counter("net_bytes_sent").Add(int64(len(d.Data)))
		}
	}
	for _, h := range rep.Hiccups {
		sess, ok := ns.sessions[h.StreamID]
		if !ok {
			continue
		}
		buf, err := jsonFrame(frameHiccup, HiccupNote{Track: h.Track, Reason: h.Reason})
		if err != nil {
			continue
		}
		if ns.pushLocked(sess, buf) {
			m.Counter("net_hiccups_sent").Inc()
		}
	}
	for _, id := range rep.Finished {
		ns.finishLocked(id, "finished")
	}
	for _, id := range rep.Terminated {
		ns.finishLocked(id, "terminated")
	}
	ns.checkDrainedLocked()
	return nil
}

// pushLocked enqueues a frame without ever blocking the cycle loop; a
// full queue sheds the session. Reports whether the frame was queued.
func (ns *NetServer) pushLocked(sess *session, frame []byte) bool {
	if sess.shed || sess.finished {
		return false
	}
	select {
	case sess.sendq <- frame:
		return true
	default:
		ns.shedLocked(sess)
		return false
	}
}

// shedLocked evicts a slow client: its queue overflowed, meaning the
// socket stalled for at least SendQueue frames' worth of cycles. The
// stream is cancelled so its disk bandwidth and buffers return to the
// farm, and the connection is closed; other sessions never waited.
func (ns *NetServer) shedLocked(sess *session) {
	ns.logf("netserve: shedding stream %d (%s): send queue full", sess.id, sess.title)
	sess.shed = true
	delete(ns.sessions, sess.id)
	_ = ns.srv.Cancel(sess.id)
	ns.srv.Metrics().Counter("net_sessions_shed").Inc()
	ns.gaugeSessions()
	sess.abort()
	ns.checkDrainedLocked()
}

// finishLocked ends a session gracefully: a BYE frame, then the queue
// closes so the writer flushes everything and hangs up.
func (ns *NetServer) finishLocked(id int, reason string) {
	sess, ok := ns.sessions[id]
	if !ok {
		return
	}
	sess.finished = true
	delete(ns.sessions, id)
	ns.gaugeSessions()
	if buf, err := jsonFrame(frameBye, Bye{Reason: reason}); err == nil {
		select {
		case sess.sendq <- buf:
		default: // full queue: the flush below still delivers the tracks
		}
	}
	// Only the cycle loop sends on sendq and the session is now
	// unregistered, so closing here is safe.
	close(sess.sendq)
}
