package netserve

import (
	"errors"
	"testing"
	"time"
)

// waitVcr reads a client's event stream until the next VCR
// acknowledgement or refusal arrives, tolerating interleaved track and
// hiccup traffic.
func waitVcr(t *testing.T, c *Client) Event {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		ev, err := c.Next()
		if err != nil {
			t.Fatalf("waiting for VCR reply: %v", err)
		}
		if ev.Vcr != nil || ev.VcrReject != nil {
			return ev
		}
		if ev.Bye != nil {
			t.Fatalf("session closed while waiting for VCR reply: %s", ev.Bye.Reason)
		}
	}
	t.Fatal("no VCR reply in 10000 events")
	return Event{}
}

// TestFFCapacityRejectThenPauseAdmits is the k′ acceptance test on a
// single-cluster farm, where the per-cluster surcharge for FF at rate r
// is exactly r-1 slots: fill the farm to its admission bound, ask one
// viewer to fast-forward — the doubled draw would exceed N_p, so the
// server must refuse with a Retry-After — then pause another viewer
// (freeing its slot without giving up its position) and ask again; now
// the fast-forward must be granted.
func TestFFCapacityRejectThenPauseAdmits(t *testing.T) {
	cfg := defaultRig()
	cfg.disks, cfg.cluster = 4, 4 // one cluster: the FF surcharge bound is exact
	cfg.titles, cfg.groups = 2, 6
	r := newLoopRig(t, "sr", cfg)

	// Fill the farm: admit until the first rejection.
	var clients []*Client
	t.Cleanup(func() {
		for _, c := range clients {
			c.Close()
		}
	})
	for i := 0; i < 200; i++ {
		c, err := Dial(r.ns.Addr().String(), 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Admit(r.titles[i%len(r.titles)]); err != nil {
			c.Close()
			var rej *RejectedError
			if !errors.As(err, &rej) {
				t.Fatalf("admission %d failed with a non-reject error: %v", i, err)
			}
			break
		}
		clients = append(clients, c)
	}
	if len(clients) < 2 {
		t.Fatalf("farm admitted only %d streams; need >= 2 for the test", len(clients))
	}

	// At capacity, a fast-forward would push the weighted draw past N_p.
	if err := clients[0].FastForward(2); err != nil {
		t.Fatal(err)
	}
	ev := waitVcr(t, clients[0])
	if ev.VcrReject == nil {
		t.Fatalf("FF at capacity was granted: %+v", ev.Vcr)
	}
	if ev.VcrReject.RetryAfterMillis <= 0 {
		t.Errorf("FF refusal carries no Retry-After: %+v", ev.VcrReject)
	}

	// Another viewer pauses: its slot returns to the pool, its position
	// is held server-side.
	if err := clients[1].Pause(); err != nil {
		t.Fatal(err)
	}
	ev = waitVcr(t, clients[1])
	if ev.Vcr == nil || ev.Vcr.Verb != "pause" {
		t.Fatalf("pause not acknowledged: %+v", ev)
	}

	// The freed slot covers the fast-forward surcharge.
	if err := clients[0].FastForward(2); err != nil {
		t.Fatal(err)
	}
	ev = waitVcr(t, clients[0])
	if ev.Vcr == nil || ev.Vcr.Verb != "ff" || ev.Vcr.Rate != 2 {
		t.Fatalf("FF after a pause still refused: %+v", ev.VcrReject)
	}
}

// TestPauseResumeBitExact plays a title with a pause/resume round-trip
// in the middle and checks the viewer still ends up with every track of
// the title, bit-exact — under both the pipelined cycle loop and the
// NoPipeline staging path, since resume rekeys the session mid-flight
// and the pipeline holds staged frames for the old stream ID.
func TestPauseResumeBitExact(t *testing.T) {
	for _, tc := range []struct {
		name       string
		noPipeline bool
	}{
		{name: "pipelined"},
		{name: "no-pipeline", noPipeline: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := defaultRig()
			cfg.groups = 6
			cfg.ns = Options{NoPipeline: tc.noPipeline, Logf: t.Logf}
			r := newLoopRig(t, "sr", cfg)

			c, ok := r.connect(t, r.titles[0])
			defer c.Close()
			done := make(chan *clientResult, 1)
			resumed := make(chan struct{}, 1)
			go func() {
				// The reader collects tracks and drives the VCR handshake:
				// on the pause ack it asks to play on (the re-admission
				// may bounce off a momentarily full farm; retries ride the
				// VcrReject arm), and on the resume ack it unblocks the
				// cycle driver.
				res := &clientResult{tracks: map[int][]byte{}}
				for {
					ev, err := c.Next()
					if err != nil {
						res.err = err
						done <- res
						return
					}
					switch {
					case ev.Bye != nil:
						res.bye = ev.Bye.Reason
						done <- res
						return
					case ev.Vcr != nil:
						switch ev.Vcr.Verb {
						case "pause":
							if err := c.ResumePlay(); err != nil {
								res.err = err
								done <- res
								return
							}
						case "resume":
							resumed <- struct{}{}
						}
					case ev.VcrReject != nil:
						time.Sleep(time.Duration(ev.VcrReject.RetryAfterMillis) * time.Millisecond)
						if err := c.ResumePlay(); err != nil {
							res.err = err
							done <- res
							return
						}
					case ev.Hiccup != nil:
						res.hiccups = append(res.hiccups, *ev.Hiccup)
					default:
						res.tracks[ev.Track] = ev.Data
					}
				}
			}()

			// Play the stream a few tracks in, then stop the clock — the
			// pause must land mid-flight, and the VCR round-trip needs no
			// cycles (verbs are handled on the session's reader).
			for i := 0; ; i++ {
				next, _, live := r.ns.StreamProgress(ok.StreamID)
				if !live {
					t.Fatal("stream finished before the pause point")
				}
				if next >= 5 {
					break
				}
				if i >= 100 {
					t.Fatalf("stream stuck at track %d", next)
				}
				if err := r.ns.StepCycle(); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.Pause(); err != nil {
				t.Fatal(err)
			}
			select {
			case <-resumed:
			case <-time.After(20 * time.Second):
				t.Fatal("pause/resume handshake never completed")
			}
			r.stepUntilIdle(t, 600)
			res := <-done
			if res.bye != "finished" {
				t.Fatalf("bye = %q (err %v), want finished", res.bye, res.err)
			}
			verifyBitExact(t, r, r.titles[0], res)
			if len(res.hiccups) != 0 {
				t.Errorf("pause/resume caused %d hiccups: %v", len(res.hiccups), res.hiccups)
			}
		})
	}
}
