package netserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"ftmm/internal/cluster"
)

// Coordinator defaults.
const (
	defaultHeartbeatTimeout = 5 * time.Second
	defaultMissThreshold    = 3
	redirectHopLimit        = 4
)

// CoordinatorOptions configures the cluster admission plane.
type CoordinatorOptions struct {
	// Addr is the coordinator's session-protocol listen address; empty
	// means loopback with an OS-assigned port.
	Addr string
	// Nodes is the initial membership: ID and Addr are required,
	// HTTPAddr optional. All start active.
	Nodes []cluster.Member
	// Titles is the full catalog in popularity-rank order (the Zipf
	// head comes first); Placement tunes how it spreads across nodes.
	Titles    []string
	Placement cluster.PlacementConfig
	// HeartbeatInterval paces the failure detector; 0 selects manual
	// mode (tests call Tick). HeartbeatTimeout bounds one heartbeat
	// round-trip; MissThreshold consecutive misses declare a node dead.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	MissThreshold     int
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Coordinator routes admissions across a sharded cluster: HELLO/ADMIT
// and RESUME get a REDIRECT to the right node by placement, heartbeats
// push membership views to nodes and collect their load, missed
// heartbeats declare nodes dead (bumping the view), and add/drain
// reconfigure the cluster live — surviving nodes' streams never stop.
//
// The coordinator holds no stream state. Session failover is
// client-driven: a client that loses its node asks RESUME here, names
// the node it lost in Avoid, and is redirected to a surviving holder of
// its title, resuming at the next parity-group boundary.
type Coordinator struct {
	opts CoordinatorOptions
	ln   net.Listener

	mu        sync.Mutex
	view      *cluster.View
	placement *cluster.Placement
	// placeIDs is the placement membership: every node ever configured
	// or added, dead or not. Placement is computed over this stable set
	// and never reshuffled by a death or drain — a dead node's titles
	// keep their surviving replica holders (routing just filters the
	// dead), instead of migrating to nodes that never staged them.
	// Rendezvous hashing makes additions minimal for the same reason.
	placeIDs []string
	misses   map[string]int
	conns    map[string]net.Conn // persistent heartbeat channels

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewCoordinator starts the admission plane: view number 1 over the
// configured nodes, placement assigned, listener up. With a heartbeat
// interval the failure detector runs on its own goroutine; without one
// the owner calls Tick.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if len(opts.Nodes) == 0 {
		return nil, errors.New("netserve: coordinator needs at least one node")
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = defaultHeartbeatTimeout
	}
	if opts.MissThreshold <= 0 {
		opts.MissThreshold = defaultMissThreshold
	}
	addr := opts.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netserve: coordinator listen: %w", err)
	}
	c := &Coordinator{
		opts:   opts,
		ln:     ln,
		view:   &cluster.View{Number: 1},
		misses: make(map[string]int),
		conns:  make(map[string]net.Conn),
		stop:   make(chan struct{}),
	}
	for _, m := range opts.Nodes {
		m.State = cluster.StateActive
		c.view.Members = append(c.view.Members, m)
		c.placeIDs = append(c.placeIDs, m.ID)
	}
	c.reassignLocked()
	c.wg.Add(1)
	go c.acceptLoop()
	if opts.HeartbeatInterval > 0 {
		c.wg.Add(1)
		go c.heartbeatLoop()
	}
	return c, nil
}

// Addr returns the coordinator's bound session-protocol address.
func (c *Coordinator) Addr() net.Addr { return c.ln.Addr() }

// View returns a copy of the current membership view.
func (c *Coordinator) View() *cluster.View {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view.Clone()
}

// Close stops the listener, the detector, and every heartbeat channel.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	select {
	case <-c.stop:
		c.mu.Unlock()
		return nil
	default:
	}
	close(c.stop)
	err := c.ln.Close()
	for id, conn := range c.conns {
		conn.Close()
		delete(c.conns, id)
	}
	c.mu.Unlock()
	c.wg.Wait()
	return err
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// ---- membership changes ----

// reassignLocked recomputes placement over the stable placement
// membership (see placeIDs) and stamps the summary into the view. The
// summary counts titles as placed, including ones whose holder is
// currently dead — routing, not placement, owns liveness.
func (c *Coordinator) reassignLocked() {
	c.placement = cluster.Assign(c.opts.Titles, c.placeIDs, c.opts.Placement)
	c.view.Placement = c.placement.Counts()
}

// bumpLocked starts the next view epoch after a membership change.
func (c *Coordinator) bumpLocked() {
	c.view.Number++
	c.reassignLocked()
	c.logf("netserve: %v", c.view)
}

// AddNode joins a node to the cluster through a view change: it becomes
// active, placement is recomputed (rendezvous hashing moves only the
// titles the newcomer now owns), and the next heartbeat round
// disseminates the new view. The node should already be serving the
// titles the new placement gives it.
func (c *Coordinator) AddNode(m cluster.Member) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.view.Member(m.ID); ok {
		return fmt.Errorf("netserve: node %s already in view", m.ID)
	}
	m.State = cluster.StateActive
	c.view.Members = append(c.view.Members, m)
	if !contains(c.placeIDs, m.ID) {
		c.placeIDs = append(c.placeIDs, m.ID)
	}
	c.bumpLocked()
	return nil
}

// DrainNode starts a live drain: routing stops sending new sessions to
// the node now, but it keeps serving its streams; once its heartbeat
// reports zero sessions it is removed from the view. Its placement
// entries stay (other holders of the same titles keep serving them),
// and streams on other nodes never notice.
func (c *Coordinator) DrainNode(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.setStateLocked(id, cluster.StateDraining)
}

// RemoveNode drops a node from the view immediately (the hard version
// of drain; its sessions are on their own).
func (c *Coordinator) RemoveNode(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.view.Member(id); !ok {
		return fmt.Errorf("netserve: node %s not in view", id)
	}
	c.removeLocked(id)
	c.bumpLocked()
	return nil
}

func (c *Coordinator) setStateLocked(id string, st cluster.MemberState) error {
	for i := range c.view.Members {
		if c.view.Members[i].ID == id {
			if c.view.Members[i].State == st {
				return nil
			}
			c.view.Members[i].State = st
			c.bumpLocked()
			return nil
		}
	}
	return fmt.Errorf("netserve: node %s not in view", id)
}

func (c *Coordinator) removeLocked(id string) {
	kept := c.view.Members[:0]
	for _, m := range c.view.Members {
		if m.ID != id {
			kept = append(kept, m)
		}
	}
	c.view.Members = kept
	delete(c.misses, id)
	if conn, ok := c.conns[id]; ok {
		conn.Close()
		delete(c.conns, id)
	}
}

// ---- failure detection / view dissemination ----

func (c *Coordinator) heartbeatLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.Tick()
		}
	}
}

// Tick runs one heartbeat round: push the current view to every member
// still serving, fold their load reports into the view, count misses,
// and apply the consequences — MissThreshold consecutive misses mark a
// node dead (view change); a draining node reporting empty is removed
// (drain complete, view change).
func (c *Coordinator) Tick() {
	c.mu.Lock()
	members := append([]cluster.Member(nil), c.view.Members...)
	view := c.view.Clone()
	c.mu.Unlock()

	type result struct {
		id  string
		ack ViewAck
		err error
	}
	results := make([]result, 0, len(members))
	for _, m := range members {
		if m.State == cluster.StateDead {
			continue
		}
		ack, err := c.heartbeat(m, view)
		results = append(results, result{m.ID, ack, err})
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	changed := false
	for _, r := range results {
		m, ok := c.view.Member(r.id)
		if !ok || m.State == cluster.StateDead {
			continue // removed or declared dead while we were on the wire
		}
		if r.err != nil {
			c.misses[r.id]++
			c.logf("netserve: heartbeat %s miss %d/%d: %v", r.id, c.misses[r.id], c.opts.MissThreshold, r.err)
			if c.misses[r.id] >= c.opts.MissThreshold {
				c.logf("netserve: node %s dead", r.id)
				for i := range c.view.Members {
					if c.view.Members[i].ID == r.id {
						c.view.Members[i].State = cluster.StateDead
					}
				}
				changed = true
			}
			continue
		}
		c.misses[r.id] = 0
		for i := range c.view.Members {
			if c.view.Members[i].ID == r.id {
				c.view.Members[i].Sessions = r.ack.Sessions
				c.view.Members[i].Active = r.ack.Active
			}
		}
		if m.State == cluster.StateDraining && r.ack.Sessions == 0 && r.ack.Active == 0 {
			c.logf("netserve: node %s drained, leaving view", r.id)
			c.removeLocked(r.id)
			changed = true
		}
	}
	if changed {
		c.bumpLocked()
	}
}

// heartbeat pushes a view to one node over its persistent channel
// (dialing on first use or after an error) and reads the load ack.
func (c *Coordinator) heartbeat(m cluster.Member, view *cluster.View) (ViewAck, error) {
	conn, err := c.heartbeatConn(m)
	if err != nil {
		return ViewAck{}, err
	}
	drop := func(err error) (ViewAck, error) {
		c.mu.Lock()
		if c.conns[m.ID] == conn {
			delete(c.conns, m.ID)
		}
		c.mu.Unlock()
		conn.Close()
		return ViewAck{}, err
	}
	conn.SetDeadline(time.Now().Add(c.opts.HeartbeatTimeout))
	if err := writeJSONFrame(conn, frameView, view); err != nil {
		return drop(err)
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return drop(err)
	}
	if typ != frameView {
		return drop(fmt.Errorf("unexpected frame 0x%02x to VIEW", typ))
	}
	var ack ViewAck
	if err := json.Unmarshal(payload, &ack); err != nil {
		return drop(err)
	}
	conn.SetDeadline(time.Time{})
	return ack, nil
}

// heartbeatConn returns the node's persistent channel, performing the
// HELLO exchange on first dial.
func (c *Coordinator) heartbeatConn(m cluster.Member) (net.Conn, error) {
	c.mu.Lock()
	conn := c.conns[m.ID]
	c.mu.Unlock()
	if conn != nil {
		return conn, nil
	}
	conn, err := net.DialTimeout("tcp", m.Addr, c.opts.HeartbeatTimeout)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(c.opts.HeartbeatTimeout))
	if err := writeFrame(conn, frameHello, []byte(protocolMagic)); err != nil {
		conn.Close()
		return nil, err
	}
	typ, payload, err := readFrame(conn)
	if err != nil || typ != frameHello || string(payload) != protocolMagic {
		conn.Close()
		return nil, fmt.Errorf("bad HELLO from %s", m.Addr)
	}
	conn.SetDeadline(time.Time{})
	c.mu.Lock()
	c.conns[m.ID] = conn
	c.mu.Unlock()
	return conn, nil
}

// ---- admission routing ----

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.stop:
			default:
				c.logf("netserve: coordinator accept: %v", err)
			}
			return
		}
		c.wg.Add(1)
		go c.handleConn(conn)
	}
}

// handleConn answers one routing request: HELLO, then ADMIT or RESUME
// gets a REDIRECT (or REJECT), VIEW gets the membership view. The
// connection closes after the answer — sessions live on nodes, never
// here.
func (c *Coordinator) handleConn(conn net.Conn) {
	defer c.wg.Done()
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(helloTimeout))
	typ, payload, err := readFrame(conn)
	if err != nil || typ != frameHello || string(payload) != protocolMagic {
		return
	}
	if err := writeFrame(conn, frameHello, []byte(protocolMagic)); err != nil {
		return
	}
	typ, payload, err = readFrame(conn)
	if err != nil {
		return
	}
	switch typ {
	case frameAdmit:
		c.route(conn, string(payload), nil)
	case frameResume:
		var req ResumeReq
		if err := json.Unmarshal(payload, &req); err != nil {
			return
		}
		c.route(conn, req.Title, req.Avoid)
	case frameView:
		_ = writeJSONFrame(conn, frameView, c.View())
	}
}

// route picks the least-loaded live holder of the title (excluding
// avoid) and redirects the client there; no live holder is a REJECT —
// permanent when the title's nodes are gone, transient (Retry-After)
// when they are merely mid-reconfiguration.
func (c *Coordinator) route(conn net.Conn, title string, avoid []string) {
	c.mu.Lock()
	holders := c.placement.Holders(title)
	var candidates []cluster.Member
	for _, id := range holders {
		if contains(avoid, id) {
			continue
		}
		m, ok := c.view.Member(id)
		if ok && m.State == cluster.StateActive {
			candidates = append(candidates, m)
		}
	}
	c.mu.Unlock()
	if len(holders) == 0 {
		_ = writeJSONFrame(conn, frameReject, Reject{Reason: "unknown title"})
		return
	}
	if len(candidates) == 0 {
		_ = writeJSONFrame(conn, frameReject, Reject{Reason: "no live holder for title"})
		return
	}
	// Least-loaded by last reported sessions; placement preference
	// order breaks ties, so the home node wins when the cluster idles.
	sort.SliceStable(candidates, func(i, j int) bool {
		return candidates[i].Sessions < candidates[j].Sessions
	})
	pick := candidates[0]
	_ = writeJSONFrame(conn, frameRedirect, Redirect{NodeID: pick.ID, Addr: pick.Addr})
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// ---- HTTP admin surface ----

// Handler returns the coordinator's HTTP surface:
//
//	GET  /statusz  — view number, member states, placement summary
//	GET  /viewz    — the membership view (JSON)
//	GET  /titlesz  — the full catalog (JSON array; lets ftmmload point
//	     its -http probe at the coordinator unchanged)
//	POST /clusterz/add?id=N&addr=A[&http=H] — join a node (view change)
//	POST /clusterz/drain?id=N — live-drain a node
//	POST /clusterz/remove?id=N — hard-remove a node
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		v := c.View()
		writeHTTPJSON(w, map[string]any{
			"role":        "coordinator",
			"view_number": v.Number,
			"members":     v.Members,
			"placement":   v.Placement,
		})
	})
	mux.HandleFunc("/viewz", func(w http.ResponseWriter, r *http.Request) {
		writeHTTPJSON(w, c.View())
	})
	mux.HandleFunc("/titlesz", func(w http.ResponseWriter, r *http.Request) {
		writeHTTPJSON(w, c.opts.Titles)
	})
	mux.HandleFunc("/clusterz/add", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		id, addr := r.URL.Query().Get("id"), r.URL.Query().Get("addr")
		if id == "" || addr == "" {
			http.Error(w, "missing id or addr", http.StatusBadRequest)
			return
		}
		m := cluster.Member{ID: id, Addr: addr, HTTPAddr: r.URL.Query().Get("http")}
		if err := c.AddNode(m); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/clusterz/drain", c.stateHandler(c.DrainNode))
	mux.HandleFunc("/clusterz/remove", c.stateHandler(c.RemoveNode))
	return mux
}

func (c *Coordinator) stateHandler(f func(string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		id := r.URL.Query().Get("id")
		if id == "" {
			http.Error(w, "missing id", http.StatusBadRequest)
			return
		}
		if err := f(id); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

// ---- cluster-aware client entry points ----

// AdmitVia asks the coordinator (or any node) for the title and follows
// redirects to the serving node. On success the returned Client is
// connected to the node that admitted the stream.
func AdmitVia(addr, title string, readTimeout time.Duration) (*Client, AdmitOK, error) {
	return followRedirects(addr, readTimeout, func(cl *Client) (AdmitOK, error) {
		return cl.Admit(title)
	})
}

// ResumeVia asks the coordinator for a mid-title session — the failover
// path: avoid names the node(s) the client lost, nextTrack the first
// track it still needs. The stream lands on a surviving holder at the
// enclosing parity-group boundary (AdmitOK.StartTrack).
func ResumeVia(addr, title string, nextTrack int, avoid []string, readTimeout time.Duration) (*Client, AdmitOK, error) {
	return followRedirects(addr, readTimeout, func(cl *Client) (AdmitOK, error) {
		return cl.Resume(title, nextTrack, avoid)
	})
}

func followRedirects(addr string, readTimeout time.Duration, ask func(*Client) (AdmitOK, error)) (*Client, AdmitOK, error) {
	for hop := 0; hop < redirectHopLimit; hop++ {
		cl, err := Dial(addr, readTimeout)
		if err != nil {
			return nil, AdmitOK{}, err
		}
		ok, err := ask(cl)
		if err == nil {
			return cl, ok, nil
		}
		cl.Close()
		var rd *RedirectedError
		if !errors.As(err, &rd) {
			return nil, AdmitOK{}, err
		}
		addr = rd.Redirect.Addr
	}
	return nil, AdmitOK{}, fmt.Errorf("netserve: redirect loop after %d hops", redirectHopLimit)
}
