package netserve

import (
	"testing"
)

// runHotTitle drives one rig with nHot viewers of the hottest title plus
// one witness viewer of another title, all in manual-clock lockstep, and
// returns each consumer's result (hot viewers first, witness last) plus
// the net_merged_tracks counter.
func runHotTitle(t *testing.T, scheme string, cfg rigConfig, nHot int) (*loopRig, []*clientResult, int64) {
	t.Helper()
	r := newLoopRig(t, scheme, cfg)
	clients := make([]*Client, 0, nHot+1)
	for i := 0; i < nHot; i++ {
		c, _ := r.connect(t, r.titles[0])
		clients = append(clients, c)
	}
	witness, _ := r.connect(t, r.titles[1])
	clients = append(clients, witness)

	results := make([]*clientResult, len(clients))
	done := make(chan int, len(clients))
	for i, c := range clients {
		go func(i int, c *Client) {
			results[i] = consume(c)
			c.Close()
			done <- i
		}(i, c)
	}
	r.stepUntilIdle(t, 200)
	for range clients {
		<-done
	}
	merged := r.srv.Metrics().Snapshot().Counters["net_merged_tracks"]
	return r, results, merged
}

// TestMergedBurstBitExactEveryScheme is the merged-burst acceptance
// test: under every scheme, a pack of same-title viewers admitted in the
// same cycle (the Zipf head, lockstep) plus a witness on another title
// all receive bit-exact content. Under Streaming RAID the pack's bursts
// are physically shared (one staged run fanned out to every session —
// asserted via net_merged_tracks); under the other schemes, and under SR
// with merging disabled, the same wire contract holds over the
// per-session path, so shared and private delivery are interchangeable
// byte for byte.
func TestMergedBurstBitExactEveryScheme(t *testing.T) {
	const nHot = 4
	for _, tc := range []struct {
		name       string
		scheme     string
		noMerge    bool
		wantShared bool
	}{
		{"sr-merged", "sr", false, true},
		{"sr-unmerged", "sr", true, false},
		{"sg", "sg", false, false},
		{"nc-simple", "nc-simple", false, false},
		{"ib", "ib", false, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := defaultRig()
			// Room for the pack: nHot viewers of title0 land on one
			// cluster in the same cycle.
			cfg.slotsPerDisk = nHot + 2
			cfg.groups = 6
			cfg.noMergedReads = tc.noMerge
			r, results, merged := runHotTitle(t, tc.scheme, cfg, nHot)
			for i := 0; i < nHot; i++ {
				verifyBitExact(t, r, r.titles[0], results[i])
			}
			verifyBitExact(t, r, r.titles[1], results[nHot])
			if tc.wantShared && merged == 0 {
				t.Error("expected merged bursts for the lockstep pack, net_merged_tracks = 0")
			}
			if !tc.wantShared && merged != 0 {
				t.Errorf("unexpected merged bursts: net_merged_tracks = %d", merged)
			}
		})
	}
}
