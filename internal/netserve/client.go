package netserve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// clientReadBufBytes sizes the client's buffered reader: large enough
// that a whole per-cycle burst (k' tracks plus headers — three 50,000-
// byte tracks for the default Table 1 Streaming-RAID geometry is about
// 150 KB) drains in about one read syscall, and that any single track
// frame fits — which is what lets the ReuseBuffers path hand out
// payload slices straight from this buffer without a copy. Kept close
// to one burst rather than rounder-but-larger: every Dial zeroes a
// fresh buffer of this size, which is pure overhead in fan-out runs
// that open many short-lived sessions.
const clientReadBufBytes = 160 << 10

// Client is the consumer half of the session protocol, used by ftmmload
// and the loopback tests. It is not concurrency-safe: one goroutine per
// client. Frame reads go through a buffered reader; writes (handshake,
// BYE) hit the socket directly.
type Client struct {
	conn        net.Conn
	br          *bufio.Reader
	readTimeout time.Duration
	admit       AdmitOK
	reuse       bool
	buf         []byte
}

// ReuseBuffers switches Next to fill one reused payload buffer instead
// of allocating per frame. With it on, Event.Data is valid only until
// the next call to Next — right for consumers that verify or copy each
// track immediately (ftmmload, benchmarks), wrong for ones that retain
// tracks. Off by default.
func (c *Client) ReuseBuffers(on bool) { c.reuse = on }

// RejectedError is the admission refusal as the client sees it.
type RejectedError struct {
	Reject Reject
}

func (e *RejectedError) Error() string {
	if e.Reject.RetryAfterMillis > 0 {
		return fmt.Sprintf("netserve: rejected: %s (retry after %d ms)", e.Reject.Reason, e.Reject.RetryAfterMillis)
	}
	return "netserve: rejected: " + e.Reject.Reason
}

// RedirectedError reports that the peer (a coordinator, or a node that
// no longer holds the title) wants the session on another node. The
// caller should dial Redirect.Addr and repeat its handshake there.
type RedirectedError struct {
	Redirect Redirect
}

func (e *RedirectedError) Error() string {
	return fmt.Sprintf("netserve: redirected to %s (%s)", e.Redirect.Addr, e.Redirect.NodeID)
}

// Dial connects and completes the HELLO exchange. readTimeout bounds
// every subsequent frame read (0 means no deadline).
func Dial(addr string, readTimeout time.Duration) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, br: bufio.NewReaderSize(conn, clientReadBufBytes), readTimeout: readTimeout}
	if err := writeFrame(conn, frameHello, []byte(protocolMagic)); err != nil {
		conn.Close()
		return nil, err
	}
	typ, payload, err := c.read()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if typ != frameHello || string(payload) != protocolMagic {
		conn.Close()
		return nil, fmt.Errorf("netserve: bad HELLO reply (type 0x%02x %q)", typ, payload)
	}
	return c, nil
}

// Admit requests a stream for the title. A refusal returns
// *RejectedError; a cluster hand-off returns *RedirectedError.
func (c *Client) Admit(title string) (AdmitOK, error) {
	if err := writeFrame(c.conn, frameAdmit, []byte(title)); err != nil {
		return AdmitOK{}, err
	}
	return c.admitReply("ADMIT")
}

// Resume requests a stream from the middle of a title — the failover
// half of a session hand-off. nextTrack is the first track the client
// still needs; the serving node starts at the enclosing parity-group
// boundary (check AdmitOK.StartTrack — it may be ≤ nextTrack, and the
// client should skip the overlap). Against a coordinator, avoid lists
// nodes the client just lost so the answer (a *RedirectedError) points
// at a surviving replica.
func (c *Client) Resume(title string, nextTrack int, avoid []string) (AdmitOK, error) {
	if err := writeJSONFrame(c.conn, frameResume, ResumeReq{Title: title, NextTrack: nextTrack, Avoid: avoid}); err != nil {
		return AdmitOK{}, err
	}
	return c.admitReply("RESUME")
}

func (c *Client) admitReply(verb string) (AdmitOK, error) {
	typ, payload, err := c.read()
	if err != nil {
		return AdmitOK{}, err
	}
	switch typ {
	case frameAdmitOK:
		if err := json.Unmarshal(payload, &c.admit); err != nil {
			return AdmitOK{}, fmt.Errorf("netserve: bad ADMIT-OK payload: %w", err)
		}
		return c.admit, nil
	case frameReject:
		var rej Reject
		if err := json.Unmarshal(payload, &rej); err != nil {
			return AdmitOK{}, fmt.Errorf("netserve: bad REJECT payload: %w", err)
		}
		return AdmitOK{}, &RejectedError{Reject: rej}
	case frameRedirect:
		var rd Redirect
		if err := json.Unmarshal(payload, &rd); err != nil {
			return AdmitOK{}, fmt.Errorf("netserve: bad REDIRECT payload: %w", err)
		}
		return AdmitOK{}, &RedirectedError{Redirect: rd}
	default:
		return AdmitOK{}, fmt.Errorf("netserve: unexpected frame 0x%02x to %s", typ, verb)
	}
}

// AdmitRetry is the reconnect path: dial, admit, and on a transient
// rejection (Retry-After present) back off as hinted and try again on a
// fresh connection — the server hangs up after a REJECT, so each retry
// reconnects. Up to attempts tries; sleep is injectable so tests need
// no wall clock (nil means time.Sleep). Permanent rejections,
// redirects, and transport errors return immediately. On success the
// caller owns the returned connected Client.
func AdmitRetry(addr, title string, readTimeout time.Duration, attempts int, sleep func(time.Duration)) (*Client, AdmitOK, error) {
	if sleep == nil {
		sleep = time.Sleep
	}
	var err error
	for try := 0; try < attempts; try++ {
		var c *Client
		c, err = Dial(addr, readTimeout)
		if err != nil {
			return nil, AdmitOK{}, err
		}
		var ok AdmitOK
		ok, err = c.Admit(title)
		if err == nil {
			return c, ok, nil
		}
		c.Close()
		var rej *RejectedError
		if !errors.As(err, &rej) || rej.Reject.RetryAfterMillis <= 0 {
			return nil, AdmitOK{}, err
		}
		if try < attempts-1 {
			sleep(time.Duration(rej.Reject.RetryAfterMillis) * time.Millisecond)
		}
	}
	return nil, AdmitOK{}, err
}

// Event is one post-admission frame, decoded.
type Event struct {
	// Track and Data are set for track deliveries. Data is owned by the
	// caller, unless ReuseBuffers is on — then it is valid only until
	// the next call to Next.
	Track int
	Data  []byte
	// Hiccup is set for lost-track notes.
	Hiccup *HiccupNote
	// Vcr is set when the server acknowledges a VCR verb (pause,
	// resume, ff, rewind).
	Vcr *VcrOK
	// VcrReject is set when the server refuses a VCR verb — a resume or
	// fast-forward the admission bound cannot absorb right now
	// (RetryAfterMillis hints when to retry) or a verb sent while the
	// node drains. The session itself stays up.
	VcrReject *Reject
	// Bye is set when the server ends the session; no further events
	// follow.
	Bye *Bye
}

// Pause asks the server to park the session: its engine stream is
// released (freeing the admission slot) and its position held. The ack
// (or refusal) arrives as a later Event.Vcr / Event.VcrReject — track
// frames already in flight may precede it.
func (c *Client) Pause() error {
	return writeFrame(c.conn, framePause, nil)
}

// ResumePlay resumes a paused session at its held position, or drops a
// fast-forwarding session back to normal rate. Resuming re-runs
// admission; a refusal arrives as Event.VcrReject with a Retry-After
// hint and the session stays paused.
func (c *Client) ResumePlay() error {
	return writeFrame(c.conn, frameResumePlay, nil)
}

// FastForward asks for playback at rate× normal (rate in [1,
// maxFFRate]). The server accounts the extra per-cycle draw against the
// admission bound and refuses (Event.VcrReject, Retry-After) rather
// than oversubscribe a cycle.
func (c *Client) FastForward(rate int) error {
	if rate < 1 || rate > maxFFRate {
		return fmt.Errorf("netserve: FF rate %d out of range [1,%d]", rate, maxFFRate)
	}
	return writeFrame(c.conn, frameFF, encodeRate(rate))
}

// Rewind jumps the session to an absolute track (the server floors it
// to the enclosing parity-group boundary; the ack's NextTrack says
// where delivery restarts). Playback rate drops to normal.
func (c *Client) Rewind(track int) error {
	if track < 0 {
		return fmt.Errorf("netserve: rewind track %d is negative", track)
	}
	return writeFrame(c.conn, frameRewind, encodeRate(track))
}

// internedByes maps the exact payloads of the server's prebuilt BYE
// frames to shared decoded values, so the common session endings skip
// json.Unmarshal (the map index on a byte slice does not allocate).
// The values are shared across sessions — callers must treat Event.Bye
// as read-only, which they already must for Data under ReuseBuffers.
var internedByes = func() map[string]*Bye {
	m := make(map[string]*Bye)
	for _, reason := range []string{"finished", "terminated"} {
		p, err := json.Marshal(Bye{Reason: reason})
		if err != nil {
			panic(err)
		}
		m[string(p)] = &Bye{Reason: reason}
	}
	return m
}()

// Next returns the next event. After a Bye event (or an error) the
// session is over.
func (c *Client) Next() (Event, error) {
	for {
		typ, payload, err := c.read()
		if err != nil {
			return Event{}, err
		}
		switch typ {
		case frameTrack:
			track, data, err := parseTrack(payload)
			if err != nil {
				return Event{}, err
			}
			return Event{Track: track, Data: data}, nil
		case frameHiccup:
			var h HiccupNote
			if err := json.Unmarshal(payload, &h); err != nil {
				return Event{}, fmt.Errorf("netserve: bad HICCUP payload: %w", err)
			}
			return Event{Hiccup: &h}, nil
		case frameVcrOK:
			var v VcrOK
			if err := json.Unmarshal(payload, &v); err != nil {
				return Event{}, fmt.Errorf("netserve: bad VCR-OK payload: %w", err)
			}
			return Event{Vcr: &v}, nil
		case frameReject:
			// Post-admission REJECT: a VCR verb the farm cannot absorb
			// right now. The session continues.
			var rej Reject
			if err := json.Unmarshal(payload, &rej); err != nil {
				return Event{}, fmt.Errorf("netserve: bad REJECT payload: %w", err)
			}
			return Event{VcrReject: &rej}, nil
		case frameBye:
			if b := internedByes[string(payload)]; b != nil {
				return Event{Bye: b}, nil
			}
			var b Bye
			if err := json.Unmarshal(payload, &b); err != nil {
				return Event{}, fmt.Errorf("netserve: bad BYE payload: %w", err)
			}
			return Event{Bye: &b}, nil
		default:
			// Tolerate unknown control frames from newer servers.
			continue
		}
	}
}

// Admitted returns the handshake parameters from the last Admit.
func (c *Client) Admitted() AdmitOK { return c.admit }

// Close sends BYE (best-effort) and closes the connection.
func (c *Client) Close() error {
	_ = writeJSONFrame(c.conn, frameBye, Bye{Reason: "client close"})
	return c.conn.Close()
}

func (c *Client) read() (byte, []byte, error) {
	if c.readTimeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.readTimeout))
	}
	if c.reuse {
		return readFrameZeroCopy(c.br, &c.buf)
	}
	return readFrame(c.br)
}

// readFrameZeroCopy reads one frame, returning the payload as a slice
// of the buffered reader's own buffer — no copy. The slice is valid
// only until the next read (a later fill may compact the buffer), which
// is exactly the ReuseBuffers contract. Frames too large for the buffer
// fall back to the copying scratch path; the header is still unread
// then, so the fallback decodes the whole frame itself.
func readFrameZeroCopy(br *bufio.Reader, scratch *[]byte) (byte, []byte, error) {
	hdr, err := br.Peek(frameHeaderLen)
	if err != nil {
		if len(hdr) > 0 && err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	typ := hdr[0]
	n := int(binary.BigEndian.Uint32(hdr[1:frameHeaderLen]))
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("netserve: frame claims %d-byte payload, limit %d", n, maxFramePayload)
	}
	if frameHeaderLen+n > br.Size() {
		return readFrameBuf(br, scratch)
	}
	full, err := br.Peek(frameHeaderLen + n)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	payload := full[frameHeaderLen:]
	if _, err := br.Discard(frameHeaderLen + n); err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}
