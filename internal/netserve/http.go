package netserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"ftmm/internal/server"
)

// status is the /statusz document.
type status struct {
	Scheme     string `json:"scheme"`
	Cycle      int    `json:"cycle"`
	CycleNanos int64  `json:"cycle_ns"`
	Burst      int    `json:"burst"`
	Sessions   int    `json:"sessions"`
	Active     int    `json:"active_streams"`
	Draining   bool   `json:"draining"`
	TrackSize  int    `json:"track_size"`
	Titles     int    `json:"titles"`
	// Cluster identity; zero values standalone.
	NodeID     string         `json:"node_id,omitempty"`
	ViewNumber int64          `json:"view_number,omitempty"`
	Placement  map[string]int `json:"placement,omitempty"`
}

// Handler returns the HTTP control surface:
//
//	GET  /statusz  — scheme, cycle, sessions, drain state, and (in a
//	     cluster) node identity, view number, placement summary (JSON)
//	GET  /metricsz — the full metrics registry (JSON, stable key order)
//	GET  /titlesz  — the catalog of admittable titles (JSON array)
//	GET  /viewz    — the membership view this node holds (JSON; 404
//	     standalone)
//	POST /admitz?title=T — admission probe: stages the title and checks
//	     capacity, then immediately releases the slot. 204 on success,
//	     503 + Retry-After when the farm is full, 404 for unknown
//	     titles.
//
// With Options.EnablePprof the standard /debug/pprof/ profiling
// endpoints are mounted too (opt-in; see the option's doc).
func (ns *NetServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/statusz", ns.handleStatus)
	mux.HandleFunc("/metricsz", ns.handleMetrics)
	mux.HandleFunc("/titlesz", ns.handleTitles)
	mux.HandleFunc("/admitz", ns.handleAdmit)
	mux.HandleFunc("/viewz", ns.handleView)
	if ns.opts.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (ns *NetServer) handleStatus(w http.ResponseWriter, r *http.Request) {
	ns.mu.Lock()
	st := status{
		Scheme:     ns.srv.Engine().Name(),
		Cycle:      ns.srv.Engine().Cycle(),
		CycleNanos: ns.cycleTime.Nanoseconds(),
		Burst:      ns.burst,
		Sessions:   ns.sessions.len(),
		Active:     ns.srv.Engine().Active(),
		Draining:   ns.draining,
		TrackSize:  ns.trackSize,
		Titles:     ns.srv.Library().Objects(),
		NodeID:     ns.opts.NodeID,
	}
	if ns.view != nil {
		st.ViewNumber = ns.view.Number
		st.Placement = ns.view.Placement
	}
	ns.mu.Unlock()
	writeHTTPJSON(w, st)
}

// handleView serves the membership view this node currently holds.
func (ns *NetServer) handleView(w http.ResponseWriter, r *http.Request) {
	v := ns.View()
	if v == nil {
		http.Error(w, "no view installed (standalone)", http.StatusNotFound)
		return
	}
	writeHTTPJSON(w, v)
}

func (ns *NetServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := ns.srv.MetricsSnapshot()
	w.Header().Set("Content-Type", "application/json")
	if err := snap.WriteJSON(w); err != nil {
		// Headers are gone; nothing more to do than note it.
		ns.logf("netserve: /metricsz: %v", err)
	}
}

func (ns *NetServer) handleTitles(w http.ResponseWriter, r *http.Request) {
	writeHTTPJSON(w, ns.srv.Library().IDs())
}

// handleAdmit answers "would a session for this title be admitted right
// now?" by actually admitting and immediately cancelling. The probe has
// the side effect of staging the title to disk, which makes it a useful
// prefetch before a real session.
func (ns *NetServer) handleAdmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	title := r.URL.Query().Get("title")
	if title == "" {
		http.Error(w, "missing title parameter", http.StatusBadRequest)
		return
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.closed || ns.draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	id, _, err := ns.srv.Request(title)
	switch {
	case err == nil:
		_ = ns.srv.Cancel(id)
		w.WriteHeader(http.StatusNoContent)
	case isNotFound(err):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		retry := ns.cycleTime.Seconds()
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(int(retry)))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	}
}

func isNotFound(err error) bool {
	// Admission failures wrap server.ErrRejected; anything else (unknown
	// title, staging trouble) is the client's fault or permanent.
	return !errors.Is(err, server.ErrRejected)
}

func writeHTTPJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(w, "{}")
	}
}
