// Package node hosts one shard of a multimedia server farm: a cycle
// engine (internal/server) behind the framed network front end
// (internal/netserve), with the title catalog loaded and prestaged and
// an optional HTTP status surface. It is the engine-owning core that
// cmd/ftmmserve wraps — one process (or, in tests, one Node value) is
// one shard, and a cluster is several Nodes behind a coordinator.
//
// Nodes are disposable by design: all state a node holds (its slice of
// the catalog, its admitted streams) can be reconstructed on or shifted
// to another node, so losing one costs at most the sessions that had no
// replica — never the cluster.
package node

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"ftmm/internal/diskmodel"
	"ftmm/internal/netserve"
	"ftmm/internal/server"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// Config assembles one node. The zero value is not runnable: Scheme is
// required; everything else has serviceable defaults.
type Config struct {
	// ID is the node's cluster identity (rides in ADMIT-OK, /statusz,
	// heartbeat acks). Empty is fine standalone.
	ID string
	// Scheme names the fault-tolerance scheme: sr, sg, nc, nc-simple,
	// ib, dc.
	Scheme string
	// Farm geometry. Zero values default to 20 drives, C=5, K=2.
	Disks, Cluster, K int
	// Decluster is G, the declustering group size, for the dc scheme
	// (0 = 2·Cluster-1); ignored otherwise. Disks must be a whole
	// number of declustering groups.
	Decluster int
	// Workers is the engine's per-cluster read parallelism (0 =
	// GOMAXPROCS); SlotsPerDisk caps streams per drive (0 = analytic
	// bound).
	Workers, SlotsPerDisk int
	// DisableMergedReads turns off same-title read merging in the
	// Streaming RAID engine (benchmarking/bisection knob; reports are
	// identical either way).
	DisableMergedReads bool
	// NoPipeline turns off the front end's two-stage cycle pipeline, so
	// each cycle stages and flushes before the next engine step
	// (benchmarking/bisection knob; delivered bytes are identical either
	// way).
	NoPipeline bool
	// Titles is the catalog this node serves. In a cluster this is the
	// node's placement slice, not the full library. Nil loads
	// GenTitles synthetic names.
	Titles []string
	// GenTitles/Groups size the default synthetic catalog: GenTitles
	// titles (default 8) of Groups parity groups each (default 20).
	// Groups also sizes titles named through Titles.
	GenTitles, Groups int
	// Addr is the session-protocol listen address ("" = loopback,
	// OS-assigned port). HTTPAddr mounts the status surface when
	// non-empty; "auto" picks a loopback port.
	Addr, HTTPAddr string
	// Clock paces cycles; nil = manual mode (tests drive StepCycle).
	Clock netserve.Clock
	// Front-end tuning, passed through to netserve.
	SendQueue        int
	WriteTimeout     time.Duration
	WriteBufferBytes int
	// BatchCycles holds flash-crowd ADMITs per title for up to this many
	// cycles so same-title arrivals start as one merged cohort (0: off).
	BatchCycles int
	EnablePprof bool
	Logf        func(format string, args ...any)
}

// Node is one running shard: engine + network front end (+ HTTP).
type Node struct {
	cfg  Config
	srv  *server.Server
	ns   *netserve.NetServer
	hs   *http.Server
	hln  net.Listener
	size int // bytes per title
}

// Start builds the farm, loads and prestages the catalog, and begins
// listening.
func Start(cfg Config) (*Node, error) {
	if cfg.Disks == 0 {
		cfg.Disks = 20
	}
	if cfg.Cluster == 0 {
		cfg.Cluster = 5
	}
	if cfg.K == 0 {
		cfg.K = 2
	}
	if cfg.GenTitles == 0 {
		cfg.GenTitles = 8
	}
	if cfg.Groups == 0 {
		cfg.Groups = 20
	}
	if cfg.Titles == nil {
		cfg.Titles = workload.ObjectNames("title", cfg.GenTitles)
	}
	scheme, policy, err := server.ParseScheme(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	p := diskmodel.Table1()
	// Size the farm for the catalog plus staging slack: each title
	// spreads its tracks over all drives, and prestaging needs one
	// title's worth of headroom.
	tracksPerTitle := cfg.Groups * cfg.Cluster
	nTitles := len(cfg.Titles)
	p.Capacity = units.ByteSize((nTitles*cfg.Cluster*tracksPerTitle)/cfg.Disks+tracksPerTitle+50) * p.TrackSize
	srv, err := server.New(server.Options{
		Disks: cfg.Disks, ClusterSize: cfg.Cluster,
		DeclusterGroup: cfg.Decluster,
		DiskParams:     p, Scheme: scheme, K: cfg.K, NCPolicy: policy,
		Workers: cfg.Workers, SlotsPerDisk: cfg.SlotsPerDisk,
		DisableMergedReads: cfg.DisableMergedReads,
	})
	if err != nil {
		return nil, err
	}
	trackSize := int(p.TrackSize)
	size := cfg.Groups * (cfg.Cluster - 1) * trackSize
	for i, id := range cfg.Titles {
		if err := srv.AddTitle(id, units.ByteSize(size), i/4, workload.SyntheticContent(id, size)); err != nil {
			return nil, err
		}
		// Prestage: an admit-and-cancel pulls the title from tape onto
		// the farm now, so later admissions (possibly under a failed
		// drive, when staging writes would be refused) find it resident.
		sid, _, err := srv.Request(id)
		if err != nil {
			return nil, fmt.Errorf("prestaging %s: %w", id, err)
		}
		if err := srv.Cancel(sid); err != nil {
			return nil, err
		}
	}

	ns, err := netserve.New(netserve.Options{
		Server:           srv,
		NodeID:           cfg.ID,
		Addr:             cfg.Addr,
		Clock:            cfg.Clock,
		SendQueue:        cfg.SendQueue,
		WriteTimeout:     cfg.WriteTimeout,
		WriteBufferBytes: cfg.WriteBufferBytes,
		BatchCycles:      cfg.BatchCycles,
		EnablePprof:      cfg.EnablePprof,
		NoPipeline:       cfg.NoPipeline,
		Logf:             cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	n := &Node{cfg: cfg, srv: srv, ns: ns, size: size}
	if cfg.HTTPAddr != "" {
		addr := cfg.HTTPAddr
		if addr == "auto" {
			addr = "127.0.0.1:0"
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			ns.Close()
			return nil, fmt.Errorf("node %s: http listen: %w", cfg.ID, err)
		}
		n.hln = ln
		n.hs = &http.Server{Handler: ns.Handler()}
		go func() {
			if err := n.hs.Serve(ln); err != nil && err != http.ErrServerClosed {
				n.logf("node %s: http: %v", cfg.ID, err)
			}
		}()
	}
	return n, nil
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// ID returns the node's cluster identity.
func (n *Node) ID() string { return n.cfg.ID }

// Addr returns the session-protocol listen address.
func (n *Node) Addr() string { return n.ns.Addr().String() }

// HTTPAddr returns the bound HTTP address, or "" if HTTP is off.
func (n *Node) HTTPAddr() string {
	if n.hln == nil {
		return ""
	}
	return n.hln.Addr().String()
}

// NS exposes the network front end (cycle stepping, drain state,
// fault-injection scheduling).
func (n *Node) NS() *netserve.NetServer { return n.ns }

// Server exposes the cycle engine. Not concurrency-safe — callers must
// not race the front end; prefer NS methods.
func (n *Node) Server() *server.Server { return n.srv }

// Titles returns the catalog this node serves.
func (n *Node) Titles() []string { return append([]string(nil), n.cfg.Titles...) }

// TitleSize returns the byte length of each (synthetic) title.
func (n *Node) TitleSize() int { return n.size }

// Drain stops admissions and waits for live streams to play out.
func (n *Node) Drain(timeout time.Duration) error { return n.ns.Drain(timeout) }

// Close tears the node down hard (no flush; Drain first for grace).
func (n *Node) Close() error {
	if n.hs != nil {
		n.hs.Close()
	}
	return n.ns.Close()
}
