package node

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ftmm/internal/cluster"
	"ftmm/internal/netserve"
	"ftmm/internal/trace"
	"ftmm/internal/workload"
)

// clusterRig is three (or so) loopback nodes behind a coordinator, all
// on manual clocks: the test drives every node's transmission cycles
// and the coordinator's heartbeat ticks, so kills and drains land at
// controlled points.
type clusterRig struct {
	t      *testing.T
	titles []string
	nodes  map[string]*Node
	coord  *netserve.Coordinator

	mu       sync.Mutex
	stepping map[string]bool // nodes the stepper still drives
	stop     chan struct{}
	wg       sync.WaitGroup

	groups, width int
}

const rigScheme = "sr"

// startCluster brings up the nodes and coordinator. fullCatalog loads
// every title on every node (placement is pure routing); otherwise each
// node loads exactly its placement slice, so a title is servable only
// where the placement put it.
func startCluster(t *testing.T, nodeIDs []string, nTitles, groups int, plCfg cluster.PlacementConfig, fullCatalog bool) *clusterRig {
	t.Helper()
	titles := workload.ObjectNames("movie", nTitles)
	pl := cluster.Assign(titles, nodeIDs, plCfg)
	rig := &clusterRig{
		t: t, titles: titles,
		nodes:    make(map[string]*Node),
		stepping: make(map[string]bool),
		stop:     make(chan struct{}),
		groups:   groups, width: 3, // Cluster=4 below
	}
	var members []cluster.Member
	for _, id := range nodeIDs {
		catalog := pl.Titles(id)
		if fullCatalog {
			catalog = titles
		}
		n, err := Start(Config{
			ID: id, Scheme: rigScheme,
			Disks: 8, Cluster: 4, K: 2,
			Titles: catalog, Groups: groups,
		})
		if err != nil {
			t.Fatalf("node %s: %v", id, err)
		}
		rig.nodes[id] = n
		rig.stepping[id] = true
		members = append(members, cluster.Member{ID: id, Addr: n.Addr()})
	}
	coord, err := netserve.NewCoordinator(netserve.CoordinatorOptions{
		Nodes:            members,
		Titles:           titles,
		Placement:        plCfg,
		HeartbeatTimeout: 2 * time.Second,
		MissThreshold:    2,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.coord = coord
	coord.Tick() // disseminate view 1, collect initial load
	t.Cleanup(func() {
		close(rig.stop)
		rig.wg.Wait()
		coord.Close()
		for _, n := range rig.nodes {
			n.Close()
		}
	})
	// The stepper drives every live node's cycles continuously; nodes
	// are unhooked (stopStepping) before they are killed.
	rig.wg.Add(1)
	go func() {
		defer rig.wg.Done()
		for {
			select {
			case <-rig.stop:
				return
			default:
			}
			rig.mu.Lock()
			for id, on := range rig.stepping {
				if !on {
					continue
				}
				if err := rig.nodes[id].NS().StepCycle(); err != nil {
					t.Errorf("step %s: %v", id, err)
				}
			}
			rig.mu.Unlock()
			time.Sleep(time.Millisecond)
		}
	}()
	return rig
}

func (r *clusterRig) stopStepping(id string) {
	r.mu.Lock()
	r.stepping[id] = false
	r.mu.Unlock()
}

func (r *clusterRig) coordAddr() string { return r.coord.Addr().String() }

func (r *clusterRig) titleSize() int {
	for _, n := range r.nodes {
		return n.TitleSize()
	}
	return 0
}

// sessionResult is one client's life, possibly spanning nodes.
type sessionResult struct {
	title    string
	tracks   map[int][]byte
	nodes    []string // every node that served us, in order
	resumes  int
	maxJump  int // largest resume rewind (next-needed − StartTrack)
	received atomic.Int64
	err      error
	done     chan struct{}
}

func (s *sessionResult) nextNeeded(total int) int {
	for i := 0; i < total; i++ {
		if _, ok := s.tracks[i]; !ok {
			return i
		}
	}
	return total
}

// runSession admits via the coordinator and consumes to the end,
// failing over with RESUME when the serving node dies mid-stream.
func (r *clusterRig) runSession(title string) *sessionResult {
	res := &sessionResult{title: title, tracks: map[int][]byte{}, done: make(chan struct{})}
	go func() {
		defer close(res.done)
		cl, ok, err := netserve.AdmitVia(r.coordAddr(), title, 20*time.Second)
		if err != nil {
			res.err = fmt.Errorf("admit %s: %w", title, err)
			return
		}
		res.nodes = append(res.nodes, ok.NodeID)
		total := ok.Tracks
		defer func() { cl.Close() }()
		for {
			ev, err := cl.Next()
			if err != nil {
				// The serving node died under us: resume on a replica
				// at the next group boundary, avoiding the lost node.
				cl.Close()
				next := res.nextNeeded(total)
				lost := res.nodes[len(res.nodes)-1]
				cl, ok, err = r.resume(title, next, lost)
				if err != nil {
					res.err = err
					return
				}
				if next-ok.StartTrack >= r.width {
					res.err = fmt.Errorf("%s: resume rewound to %d for next-needed %d (> one group)", title, ok.StartTrack, next)
					return
				}
				if jump := next - ok.StartTrack; jump > res.maxJump {
					res.maxJump = jump
				}
				res.nodes = append(res.nodes, ok.NodeID)
				res.resumes++
				continue
			}
			switch {
			case ev.Bye != nil:
				if ev.Bye.Reason != "finished" {
					res.err = fmt.Errorf("%s: bye %q", title, ev.Bye.Reason)
				}
				return
			case ev.Hiccup != nil:
				res.err = fmt.Errorf("%s: hiccup on healthy farm: %+v", title, *ev.Hiccup)
				return
			default:
				res.tracks[ev.Track] = ev.Data
				res.received.Store(int64(len(res.tracks)))
			}
		}
	}()
	return res
}

// resume retries ResumeVia until the coordinator has noticed the death
// and routed us somewhere alive.
func (r *clusterRig) resume(title string, next int, lost string) (*netserve.Client, netserve.AdmitOK, error) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		cl, ok, err := netserve.ResumeVia(r.coordAddr(), title, next, []string{lost}, 20*time.Second)
		if err == nil {
			return cl, ok, nil
		}
		if time.Now().After(deadline) {
			return nil, netserve.AdmitOK{}, fmt.Errorf("resume %s from track %d: %w", title, next, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// verify checks full bit-exact coverage of the title.
func (r *clusterRig) verify(res *sessionResult) {
	r.t.Helper()
	if res.err != nil {
		r.t.Errorf("session %s: %v", res.title, res.err)
		return
	}
	size := r.titleSize()
	trackSize := size / (r.groups * r.width)
	content := workload.SyntheticContent(res.title, size)
	total := r.groups * r.width
	for i := 0; i < total; i++ {
		data, ok := res.tracks[i]
		if !ok {
			r.t.Errorf("session %s: track %d never delivered", res.title, i)
			continue
		}
		if err := trace.CheckTrack(content, trackSize, i, data); err != nil {
			r.t.Errorf("session %s: %v", res.title, err)
		}
	}
}

func waitAll(t *testing.T, sessions []*sessionResult, timeout time.Duration) {
	t.Helper()
	deadline := time.After(timeout)
	for _, s := range sessions {
		select {
		case <-s.done:
		case <-deadline:
			t.Fatalf("session %s still running after %v (%d tracks)", s.title, timeout, s.received.Load())
		}
	}
}

// TestClusterFailoverMidStream is the acceptance test: three nodes,
// every title replicated on two, one node killed mid-stream. Sessions
// on the dead node must fail over to the replica and finish bit-exact
// with at most one parity group of rewind; sessions on survivors must
// never notice.
func TestClusterFailoverMidStream(t *testing.T) {
	rig := startCluster(t, []string{"n0", "n1", "n2"}, 6, 12,
		cluster.PlacementConfig{Seed: 4, Replicas: 2}, false)

	sessions := make([]*sessionResult, len(rig.titles))
	for i, title := range rig.titles {
		sessions[i] = rig.runSession(title)
	}
	// Let every session get solidly mid-stream (a couple of groups in,
	// far from the 120-track end).
	for _, s := range sessions {
		for w := 0; s.received.Load() < int64(2*rig.width); w++ {
			if w > 5000 {
				t.Fatalf("session %s stuck at %d tracks", s.title, s.received.Load())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Kill the node serving the first session.
	victim := sessions[0].nodes[0]
	if victim == "" {
		t.Fatal("no node id in ADMIT-OK")
	}
	before := rig.coord.View()
	rig.stopStepping(victim)
	rig.nodes[victim].Close()
	// Two missed heartbeats declare it dead and bump the view.
	rig.coord.Tick()
	rig.coord.Tick()
	after := rig.coord.View()
	if after.Number <= before.Number {
		t.Fatalf("view did not advance on node death: %d -> %d", before.Number, after.Number)
	}
	if m, ok := after.Member(victim); !ok || m.State != cluster.StateDead {
		t.Fatalf("victim %s not marked dead in %v", victim, after)
	}

	waitAll(t, sessions, 60*time.Second)

	failedOver, survived := 0, 0
	for _, s := range sessions {
		rig.verify(s)
		if s.nodes[0] == victim {
			failedOver++
			if s.resumes == 0 || s.nodes[len(s.nodes)-1] == victim {
				t.Errorf("session %s started on the victim but never failed over (nodes %v)", s.title, s.nodes)
			}
		} else {
			survived++
			if s.resumes != 0 {
				t.Errorf("session %s on survivor %s resumed %d times (nodes %v)", s.title, s.nodes[0], s.resumes, s.nodes)
			}
		}
	}
	if failedOver == 0 {
		t.Fatal("no session was placed on the victim — the kill tested nothing")
	}
	if survived == 0 {
		t.Fatal("every session was on one node — placement is degenerate")
	}
	t.Logf("failover: %d sessions followed the death of %s, %d untouched", failedOver, victim, survived)

	// Dissemination: survivors hold the post-death view.
	rig.coord.Tick()
	for id, n := range rig.nodes {
		if id == victim {
			continue
		}
		v := n.NS().View()
		if v == nil || v.Number < after.Number {
			t.Errorf("node %s holds view %v, want ≥ %d", id, v, after.Number)
		}
	}
}

// TestClusterLiveDrain reconfigures live: a draining node finishes its
// streams (zero drops, zero leaks), leaves the view, and new admissions
// route around it — while the other nodes' streams run on undisturbed.
func TestClusterLiveDrain(t *testing.T) {
	// Replicas: 2 — placement membership is stable across drains, so a
	// title survives its home draining only if a second holder staged it.
	rig := startCluster(t, []string{"n0", "n1", "n2"}, 6, 12,
		cluster.PlacementConfig{Seed: 4, Replicas: 2}, true)

	sessions := make([]*sessionResult, len(rig.titles))
	for i, title := range rig.titles {
		sessions[i] = rig.runSession(title)
	}
	for _, s := range sessions {
		for w := 0; s.received.Load() < int64(2*rig.width); w++ {
			if w > 5000 {
				t.Fatalf("session %s stuck at %d tracks", s.title, s.received.Load())
			}
			time.Sleep(time.Millisecond)
		}
	}

	victim := sessions[0].nodes[0]
	before := rig.coord.View()
	if err := rig.coord.DrainNode(victim); err != nil {
		t.Fatal(err)
	}
	rig.coord.Tick() // push the draining view; the node stops admitting
	if !rig.nodes[victim].NS().Draining() {
		t.Fatalf("node %s did not begin draining on the view push", victim)
	}

	// New sessions must route around the draining node, even for a
	// title it used to home.
	cl, ok, err := netserve.AdmitVia(rig.coordAddr(), rig.titles[0], 20*time.Second)
	if err != nil {
		t.Fatalf("admission during drain: %v", err)
	}
	if ok.NodeID == victim {
		t.Fatalf("admission during drain landed on the draining node %s", victim)
	}
	cl.Close()

	// Every pre-drain stream plays out, including the draining node's.
	waitAll(t, sessions, 60*time.Second)
	for _, s := range sessions {
		rig.verify(s)
		if s.resumes != 0 {
			t.Errorf("session %s resumed during a drain (nodes %v)", s.title, s.nodes)
		}
	}

	// Drain completion: next heartbeat sees the node empty and removes
	// it from the view.
	rig.coord.Tick()
	after := rig.coord.View()
	if _, ok := after.Member(victim); ok {
		t.Fatalf("drained node %s still in %v", victim, after)
	}
	if after.Number <= before.Number {
		t.Fatalf("view did not advance across the drain: %d -> %d", before.Number, after.Number)
	}

	// Zero dropped streams, zero leaks on the drained node.
	n := rig.nodes[victim]
	if !n.NS().Drained() {
		t.Errorf("node %s does not report drained", victim)
	}
	rig.stopStepping(victim)
	eng := n.Server().Engine()
	if eng.Active() != 0 {
		t.Errorf("drained node %s still has %d active streams", victim, eng.Active())
	}
	// Two idle cycles release the engine's double-buffered delivery refs
	// (reports stay valid for two Steps); only then is a held buffer a
	// leak.
	for i := 0; i < 2; i++ {
		if err := n.NS().StepCycle(); err != nil {
			t.Fatal(err)
		}
	}
	if out := eng.Arena().Outstanding(); out != 0 {
		t.Errorf("drained node %s leaks %d arena buffers", victim, out)
	}
	if in := eng.BufferInUse(); in != 0 {
		t.Errorf("drained node %s has %d pool tracks in use", victim, in)
	}
}

// TestClusterAddNode joins a node through a view change and checks the
// placement hands it titles — rendezvous hashing moves only what the
// newcomer wins.
func TestClusterAddNode(t *testing.T) {
	plCfg := cluster.PlacementConfig{Seed: 4, Replicas: 1}
	rig := startCluster(t, []string{"n0", "n1"}, 8, 4, plCfg, true)

	titles := rig.titles
	n2, err := Start(Config{ID: "n2", Scheme: rigScheme, Disks: 8, Cluster: 4, K: 2, Titles: titles, Groups: 4})
	if err != nil {
		t.Fatal(err)
	}
	rig.mu.Lock()
	rig.nodes["n2"] = n2
	rig.stepping["n2"] = true
	rig.mu.Unlock()

	before := rig.coord.View()
	if err := rig.coord.AddNode(cluster.Member{ID: "n2", Addr: n2.Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := rig.coord.AddNode(cluster.Member{ID: "n2", Addr: n2.Addr()}); err == nil {
		t.Fatal("duplicate AddNode accepted")
	}
	after := rig.coord.View()
	if after.Number <= before.Number {
		t.Fatalf("view did not advance on add: %d -> %d", before.Number, after.Number)
	}
	if after.Placement["n2"] == 0 {
		t.Fatalf("new node attracted no titles: %v", after.Placement)
	}

	// Only titles the newcomer won changed homes — everything else
	// stays, which is the minimal-rebalance property end to end.
	oldPl := cluster.Assign(titles, []string{"n0", "n1"}, plCfg)
	newPl := cluster.Assign(titles, []string{"n0", "n1", "n2"}, plCfg)
	for _, title := range titles {
		oldHome, newHome := oldPl.Holders(title)[0], newPl.Holders(title)[0]
		if newHome != oldHome && newHome != "n2" {
			t.Errorf("title %s moved %s -> %s on an unrelated add", title, oldHome, newHome)
		}
	}

	// An admission for a title the newcomer now homes lands there.
	var won string
	for _, title := range titles {
		if newPl.Holders(title)[0] == "n2" {
			won = title
			break
		}
	}
	if won == "" {
		t.Fatal("placement counts n2 titles but none homed there")
	}
	rig.coord.Tick() // refresh load so tie-break favors preference order
	cl, ok, err := netserve.AdmitVia(rig.coordAddr(), won, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if ok.NodeID != "n2" {
		t.Errorf("title %s admitted on %s, want the new home n2", won, ok.NodeID)
	}
}

// TestCoordinatorRejects pins the coordinator's refusal shapes.
func TestCoordinatorRejects(t *testing.T) {
	rig := startCluster(t, []string{"n0", "n1"}, 4, 4,
		cluster.PlacementConfig{Seed: 1, Replicas: 1}, true)

	if _, _, err := netserve.AdmitVia(rig.coordAddr(), "no-such-title", 5*time.Second); err == nil {
		t.Fatal("unknown title admitted")
	} else {
		var rej *netserve.RejectedError
		if !errors.As(err, &rej) {
			t.Fatalf("unknown title returned %v, want *RejectedError", err)
		}
	}

	// A title whose only holder is avoided has no live holder.
	title := rig.titles[0]
	pl := cluster.Assign(rig.titles, []string{"n0", "n1"}, cluster.PlacementConfig{Seed: 1, Replicas: 1})
	home := pl.Holders(title)[0]
	_, _, err := netserve.ResumeVia(rig.coordAddr(), title, 3, []string{home}, 5*time.Second)
	var rej *netserve.RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("resume avoiding the only holder returned %v, want *RejectedError", err)
	}
}
