package diskmodel

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"ftmm/internal/units"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestReadTime(t *testing.T) {
	p := Table1()
	cases := []struct {
		r    int
		want time.Duration
	}{
		{0, 0},
		{-3, 0},
		{1, 45 * time.Millisecond},
		{4, 105 * time.Millisecond},
		{20, 425 * time.Millisecond},
	}
	for _, c := range cases {
		if got := p.ReadTime(c.r); got != c.want {
			t.Errorf("ReadTime(%d) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestCycleTime(t *testing.T) {
	p := Table1()
	// One 50 KB track at 1.5 Mb/s (=0.1875 MB/s) displays for 266.66 ms.
	got := p.CycleTime(1, units.MPEG1)
	secs := 0.05 / 0.1875
	want := time.Duration(secs * float64(time.Second))
	if d := got - want; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("CycleTime(1, MPEG1) = %v, want %v", got, want)
	}
	// k'=4 is four times as long.
	got4 := p.CycleTime(4, units.MPEG1)
	if d := got4 - 4*got; d < -4*time.Microsecond || d > 4*time.Microsecond {
		t.Errorf("CycleTime(4) = %v, want 4x %v", got4, got)
	}
	if p.CycleTime(0, units.MPEG1) != 0 || p.CycleTime(1, 0) != 0 {
		t.Error("degenerate CycleTime should be 0")
	}
}

// The §2 worked example: B = 100 KB, Tseek = 30 ms, Ttrk = 10 ms.
// For b0 = 1.5 Mb/s the paper reports ~5% variation between k=1 and k=10;
// for b0 = 4.5 Mb/s it prints N/D' <= 14.7, 16.2, 17.4 for k = 1, 2, 10.
func TestSection2KSweep(t *testing.T) {
	p := Section2()

	mpeg2 := []struct {
		k    int
		want float64 // paper's printed (truncated) values
	}{
		{1, 14.7},
		{2, 16.2},
		{10, 17.4},
	}
	for _, c := range mpeg2 {
		got, err := p.StreamsPerDisk(c.k, c.k, units.MPEG2)
		if err != nil {
			t.Fatalf("StreamsPerDisk(k=%d): %v", c.k, err)
		}
		// The paper truncates to one decimal; allow the true value to sit
		// within [want, want+0.1).
		if got < c.want || got >= c.want+0.1 {
			t.Errorf("MPEG-2 k=%d: N/D' = %.4f, want in [%.1f, %.1f)", c.k, got, c.want, c.want+0.1)
		}
	}

	// MPEG-1 variation ~5%.
	n1, err := p.StreamsPerDisk(1, 1, units.MPEG1)
	if err != nil {
		t.Fatal(err)
	}
	n10, err := p.StreamsPerDisk(10, 10, units.MPEG1)
	if err != nil {
		t.Fatal(err)
	}
	variation := (n10 - n1) / n10
	if variation < 0.04 || variation > 0.06 {
		t.Errorf("MPEG-1 k-sweep variation = %.3f, want ~0.05", variation)
	}

	// MPEG-2 variation ~15%.
	m1, _ := p.StreamsPerDisk(1, 1, units.MPEG2)
	m10, _ := p.StreamsPerDisk(10, 10, units.MPEG2)
	variation2 := (m10 - m1) / m10
	if variation2 < 0.13 || variation2 > 0.17 {
		t.Errorf("MPEG-2 k-sweep variation = %.3f, want ~0.15", variation2)
	}
}

// Table 1 parameters with C=5 / SR (k = k' = C-1 = 4) must give the
// bracket value 13.0208 streams/disk used throughout Table 2.
func TestTable1Bracket(t *testing.T) {
	p := Table1()
	got, err := p.StreamsPerDisk(4, 4, units.MPEG1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 13.0208333, 1e-4) {
		t.Fatalf("SR bracket = %.6f, want 13.0208", got)
	}
	// SG / NC use k'=1 (SG reads k=C-1, NC reads k=1); both end up with
	// the same per-disk bound B/(b0*Ttrk) - Tseek/Ttrk = 12.0833.
	sg, err := p.StreamsPerDisk(4, 1, units.MPEG1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sg, 12.0833333, 1e-4) {
		t.Fatalf("SG bracket = %.6f, want 12.0833", sg)
	}
	nc, err := p.StreamsPerDisk(1, 1, units.MPEG1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(nc, 12.0833333, 1e-4) {
		t.Fatalf("NC bracket = %.6f, want 12.0833", nc)
	}
}

func TestStreamsPerDiskErrors(t *testing.T) {
	p := Table1()
	if _, err := p.StreamsPerDisk(0, 1, units.MPEG1); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := p.StreamsPerDisk(3, 2, units.MPEG1); err == nil {
		t.Error("k not multiple of k' should error")
	}
	if _, err := p.StreamsPerDisk(1, 1, 0); err == nil {
		t.Error("b0=0 should error")
	}
	bad := p
	bad.Track = 0
	if _, err := bad.StreamsPerDisk(1, 1, units.MPEG1); err == nil {
		t.Error("invalid params should error")
	}
}

func TestStreamsPerDiskMonotonicInK(t *testing.T) {
	// With k = k', increasing k amortizes the seek over more tracks, so
	// the per-disk bound must be non-decreasing in k (§2's observation).
	p := Table1()
	f := func(a, b uint8) bool {
		k1, k2 := int(a%30)+1, int(b%30)+1
		if k1 > k2 {
			k1, k2 = k2, k1
		}
		n1, err1 := p.StreamsPerDisk(k1, k1, units.MPEG1)
		n2, err2 := p.StreamsPerDisk(k2, k2, units.MPEG1)
		return err1 == nil && err2 == nil && n2 >= n1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamsPerDiskFasterObjectsFewerStreams(t *testing.T) {
	p := Table1()
	n1, _ := p.StreamsPerDisk(4, 4, units.MPEG1)
	n2, _ := p.StreamsPerDisk(4, 4, units.MPEG2)
	if n2 >= n1 {
		t.Fatalf("MPEG-2 streams/disk (%v) should be below MPEG-1 (%v)", n2, n1)
	}
}

func TestTrackBudget(t *testing.T) {
	p := Table1()
	cases := []struct {
		window time.Duration
		want   int
	}{
		{0, 0},
		{25 * time.Millisecond, 0}, // only seek fits
		{45 * time.Millisecond, 1}, // seek + 1 track
		{64 * time.Millisecond, 1}, // not quite 2
		{65 * time.Millisecond, 2},
		{1025 * time.Millisecond, 50}, // seek + 50 tracks
	}
	for _, c := range cases {
		if got := p.TrackBudget(c.window); got != c.want {
			t.Errorf("TrackBudget(%v) = %d, want %d", c.window, got, c.want)
		}
	}
}

func TestTrackBudgetConsistentWithStreamBound(t *testing.T) {
	// Reading floor(N/D') streams' worth of k tracks must fit in the read
	// window implied by the cycle length.
	p := Table1()
	for _, k := range []int{1, 2, 4, 8} {
		nd, err := p.StreamsPerDisk(k, k, units.MPEG1)
		if err != nil {
			t.Fatal(err)
		}
		window := p.CycleTime(k, units.MPEG1)
		budget := p.TrackBudget(window)
		need := int(nd) * k
		if need > budget {
			t.Errorf("k=%d: stream bound implies %d tracks, budget only %d", k, need, budget)
		}
		// And one more stream must NOT fit (the bound is tight).
		if (int(nd)+1)*k <= budget {
			t.Errorf("k=%d: bound not tight: %d streams would also fit in %d slots", k, int(nd)+1, budget)
		}
	}
}

func TestTracksPerDisk(t *testing.T) {
	p := Table1()
	if got := p.TracksPerDisk(); got != 20000 {
		t.Fatalf("TracksPerDisk = %d, want 20000 (1 GB / 50 KB)", got)
	}
}

func TestEffectiveBandwidth(t *testing.T) {
	p := Table1()
	if got := p.EffectiveBandwidth().MegabytesPerSecond(); !almostEqual(got, 4, 1e-9) {
		t.Errorf("EffectiveBandwidth = %v, want 4 MB/s", got)
	}
	p.Bandwidth = 0
	// Falls back to B/Ttrk = 50KB/20ms = 2.5 MB/s.
	if got := p.EffectiveBandwidth().MegabytesPerSecond(); !almostEqual(got, 2.5, 1e-9) {
		t.Errorf("fallback EffectiveBandwidth = %v, want 2.5 MB/s", got)
	}
}

func TestRates(t *testing.T) {
	p := Table1()
	if got := p.FailureRate(); !almostEqual(got, 1.0/300000, 1e-15) {
		t.Errorf("FailureRate = %v", got)
	}
	if got := p.RepairRate(); !almostEqual(got, 1, 1e-15) {
		t.Errorf("RepairRate = %v", got)
	}
	var zero Params
	if zero.FailureRate() != 0 || zero.RepairRate() != 0 {
		t.Error("zero params should have zero rates")
	}
}

func TestValidate(t *testing.T) {
	if err := Table1().Validate(); err != nil {
		t.Fatalf("Table1 invalid: %v", err)
	}
	if err := Section2().Validate(); err != nil {
		t.Fatalf("Section2 invalid: %v", err)
	}
	bad := Table1()
	bad.TrackSize = 0
	if bad.Validate() == nil {
		t.Error("zero track size should be invalid")
	}
	bad = Table1()
	bad.Seek = -time.Millisecond
	if bad.Validate() == nil {
		t.Error("negative seek should be invalid")
	}
	bad = Table1()
	bad.MTTFHours = -1
	if bad.Validate() == nil {
		t.Error("negative MTTF should be invalid")
	}
}
