package diskmodel_test

import (
	"fmt"

	"ftmm/internal/diskmodel"
	"ftmm/internal/units"
)

// Compute the per-disk stream bound behind Table 2's Streaming RAID
// column: 13.02 streams per data disk at C = 5.
func ExampleParams_StreamsPerDisk() {
	p := diskmodel.Table1()
	perDisk, err := p.StreamsPerDisk(4, 4, units.MPEG1) // k = k' = C-1 = 4
	if err != nil {
		panic(err)
	}
	fmt.Printf("streams per data disk: %.4f\n", perDisk)
	fmt.Printf("N for 80 data disks:   %d\n", int(perDisk*80))
	// Output:
	// streams per data disk: 13.0208
	// N for 80 data disks:   1041
}
