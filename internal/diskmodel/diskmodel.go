// Package diskmodel implements the paper's "simple disk model" (§2):
//
//	T(r) = Tseek + r * Ttrk
//
// where Tseek is the maximum seek between the extreme cylinders and Ttrk
// is the per-track time including the read itself plus the speed-up /
// slow-down fraction of each seek. The unit of disk I/O is one track (a
// full-track read starts at the next sector boundary, so rotational
// latency is negligible).
//
// From this model the package derives the paper's cycle-based scheduling
// quantities: the cycle time Tcyc = k'·B/b0, the per-disk per-cycle track
// budget, and the bound on the number of streams a disk can sustain:
//
//	N/D' <= B/(b0·Ttrk) - Tseek/(k'·Ttrk)  =  (k'·B/b0 - Tseek)/(k'·Ttrk)
//
// with k tracks read per stream per "read cycle" and k' tracks transmitted
// per stream per cycle (k an integer multiple of k'). Because read cycles
// of different streams are staggered, each disk reads N·k'/D' tracks per
// cycle in steady state and pays one maximum seek per cycle; this is the
// form that reduces to the paper's per-scheme equations (8)-(11): with
// k = k' it is §2's sweep formula, and with k' = 1 it is the
// staggered-group/non-clustered bound B/(b0·Ttrk) - Tseek/Ttrk.
package diskmodel

import (
	"errors"
	"fmt"
	"time"

	"ftmm/internal/units"
)

// Params describes one disk drive in the terms the paper uses.
type Params struct {
	// Seek is Tseek: the maximum seek time between the extreme inner and
	// outer cylinders.
	Seek time.Duration
	// Track is Ttrk: the maximum time attributable to reading one track,
	// including the slowdown/speedup fraction of the seek.
	Track time.Duration
	// TrackSize is B: the number of bytes per track.
	TrackSize units.ByteSize
	// Bandwidth is d: the sustained transfer bandwidth of the disk, used
	// by the bandwidth-overhead accounting. If zero, TrackSize/Track is
	// used.
	Bandwidth units.Rate
	// MTTFHours is the mean time to failure of the drive, in hours.
	MTTFHours float64
	// MTTRHours is the mean time to repair-and-reload the drive, in hours.
	MTTRHours float64
	// Capacity is s_d: the storage capacity of the drive.
	Capacity units.ByteSize
}

// Table1 returns the parameter set of the paper's Table 1, "similar to
// those of a Seagate ST31200N drive": B = 50 KB, Tseek = 25 ms,
// Ttrk = 20 ms, MTTF = 300,000 h, MTTR = 1 h. Capacity is the 1 GB
// ("s_d = 1000" MB) figure used by the cost model, and Bandwidth the
// 4 MB/s the introduction assumes.
func Table1() Params {
	return Params{
		Seek:      25 * time.Millisecond,
		Track:     20 * time.Millisecond,
		TrackSize: 50 * units.KB,
		Bandwidth: units.FromMegabytesPerSecond(4),
		MTTFHours: 300_000,
		MTTRHours: 1,
		Capacity:  1000 * units.MB,
	}
}

// Section2 returns the parameter set of the §2 worked example used for the
// k sweep: Tseek = 30 ms, Ttrk = 10 ms, B = 100 KB.
func Section2() Params {
	return Params{
		Seek:      30 * time.Millisecond,
		Track:     10 * time.Millisecond,
		TrackSize: 100 * units.KB,
		Bandwidth: units.FromMegabytesPerSecond(4),
		MTTFHours: 300_000,
		MTTRHours: 1,
		Capacity:  1000 * units.MB,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.Seek < 0:
		return errors.New("diskmodel: negative seek time")
	case p.Track <= 0:
		return errors.New("diskmodel: track time must be positive")
	case p.TrackSize <= 0:
		return errors.New("diskmodel: track size must be positive")
	case p.MTTFHours < 0 || p.MTTRHours < 0:
		return errors.New("diskmodel: negative MTTF/MTTR")
	case p.Capacity < 0:
		return errors.New("diskmodel: negative capacity")
	}
	return nil
}

// EffectiveBandwidth returns d, falling back to TrackSize/Track when the
// Bandwidth field is unset.
func (p Params) EffectiveBandwidth() units.Rate {
	if p.Bandwidth > 0 {
		return p.Bandwidth
	}
	return units.Rate(float64(p.TrackSize) / p.Track.Seconds())
}

// TracksPerDisk returns the number of whole tracks a drive stores.
func (p Params) TracksPerDisk() int {
	return int(p.Capacity / p.TrackSize)
}

// ReadTime is T(r) = Tseek + r*Ttrk, the maximum time to read r tracks in
// one cycle (the single max seek amortizes over the sorted batch; each
// track charge includes its own start/stop seek fraction).
func (p Params) ReadTime(r int) time.Duration {
	if r <= 0 {
		return 0
	}
	return p.Seek + time.Duration(r)*p.Track
}

// CycleTime is Tcyc = k'·B/b0: the wall-clock length of one scheduling
// cycle when each stream transmits k' tracks per cycle at object
// bandwidth b0.
func (p Params) CycleTime(kPrime int, b0 units.Rate) time.Duration {
	if kPrime <= 0 || b0 <= 0 {
		return 0
	}
	bytes := float64(kPrime) * float64(p.TrackSize)
	return time.Duration(bytes / float64(b0) * float64(time.Second))
}

// StreamsPerDisk is the bound on N/D', the number of streams one data
// disk can serve when each stream reads k tracks per read cycle and
// transmits k' per cycle:
//
//	N/D' <= B/(b0·Ttrk) - Tseek/(k'·Ttrk)
//
// In steady state the staggered read cycles load each disk with N·k'/D'
// tracks per cycle of length Tcyc = k'·B/b0, against which the disk pays
// one maximum seek; k itself only affects buffering, not the bandwidth
// bound, but is validated here because k % k' == 0 is a scheduling
// precondition. The result is the real-valued bound; callers floor it.
func (p Params) StreamsPerDisk(k, kPrime int, b0 units.Rate) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if k <= 0 || kPrime <= 0 {
		return 0, fmt.Errorf("diskmodel: k=%d, k'=%d must be positive", k, kPrime)
	}
	if k%kPrime != 0 {
		return 0, fmt.Errorf("diskmodel: k=%d must be an integer multiple of k'=%d", k, kPrime)
	}
	if b0 <= 0 {
		return 0, errors.New("diskmodel: object bandwidth must be positive")
	}
	bMB := p.TrackSize.Megabytes()
	b0MB := b0.MegabytesPerSecond()
	ttrk := p.Track.Seconds()
	tseek := p.Seek.Seconds()
	n := bMB/(b0MB*ttrk) - tseek/(ttrk*float64(kPrime))
	if n < 0 {
		n = 0
	}
	return n, nil
}

// TrackBudget returns the maximum number of whole tracks one disk can read
// within a window of the given length: floor((window - Tseek)/Ttrk). This
// is the per-disk per-cycle slot count the simulated schedulers use.
func (p Params) TrackBudget(window time.Duration) int {
	if window <= p.Seek {
		return 0
	}
	return int((window - p.Seek) / p.Track)
}

// FailureRate returns the failure rate lambda = 1/MTTF in 1/hours, or 0
// if MTTF is unset.
func (p Params) FailureRate() float64 {
	if p.MTTFHours <= 0 {
		return 0
	}
	return 1 / p.MTTFHours
}

// RepairRate returns mu = 1/MTTR in 1/hours, or 0 if MTTR is unset.
func (p Params) RepairRate() float64 {
	if p.MTTRHours <= 0 {
		return 0
	}
	return 1 / p.MTTRHours
}
