// Package metrics provides the cheap, concurrency-safe instrumentation
// the cycle engines and the Monte-Carlo harness record into: counters,
// gauges with high-water tracking, and fixed-bucket histograms, grouped
// in a Registry with a stable Snapshot export.
//
// Everything is stdlib-only and safe for concurrent use: instruments are
// lock-free (atomics), the registry serializes only get-or-create and
// snapshotting. All instrument methods are nil-receiver-safe, so code can
// record unconditionally and pay nothing when instrumentation is off.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (no-op on a nil counter).
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value with a high-water mark.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set records the current value, updating the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the last value set (zero on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the largest value ever set (zero on a nil gauge).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Histogram counts integer observations into fixed buckets. Bucket i
// counts observations <= bounds[i]; one implicit overflow bucket counts
// the rest.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	count  atomic.Int64
	sum    atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (zero on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Registry is a named collection of instruments. The zero value is not
// usable; construct with New. A nil *Registry hands out nil instruments,
// so recording through an unconfigured registry is free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (sorted ascending) on first use; later calls
// return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		bs := append([]int64(nil), bounds...)
		sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
		h = &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
		r.histograms[name] = h
	}
	return h
}

// GaugeValue is a gauge's exported state.
type GaugeValue struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Bucket is one exported histogram bucket; the overflow bucket has
// Overflow set and UpperBound 0.
type Bucket struct {
	UpperBound int64 `json:"upper_bound"`
	Overflow   bool  `json:"overflow,omitempty"`
	Count      int64 `json:"count"`
}

// HistogramValue is a histogram's exported state. P50/P90/P99 are
// bucket-resolution percentile estimates (see Quantile); -1 means the
// percentile fell past the largest bound (or there were no
// observations).
type HistogramValue struct {
	Buckets []Bucket `json:"buckets"`
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	P50     int64    `json:"p50"`
	P90     int64    `json:"p90"`
	P99     int64    `json:"p99"`
}

// Quantile returns the smallest bucket upper bound covering at least a
// q fraction of the observations — the usual bucketed-histogram
// percentile estimate, biased up by at most one bucket width. It
// returns -1 when the q-th observation landed in the overflow bucket
// (beyond every bound) or when nothing was observed.
func (h HistogramValue) Quantile(q float64) int64 {
	if h.Count == 0 {
		return -1
	}
	need := int64(q*float64(h.Count) + 0.5)
	if need < 1 {
		need = 1
	}
	var seen int64
	for _, b := range h.Buckets {
		seen += b.Count
		if seen >= need {
			if b.Overflow {
				return -1
			}
			return b.UpperBound
		}
	}
	return -1
}

// Snapshot is a point-in-time copy of every instrument's value.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]GaugeValue     `json:"gauges"`
	Histograms map[string]HistogramValue `json:"histograms"`
}

// Snapshot exports the registry's current values. Safe to call while
// instruments are being updated; each instrument is read atomically.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]GaugeValue),
		Histograms: make(map[string]HistogramValue),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeValue{Value: g.Value(), Max: g.Max()}
	}
	for name, h := range r.histograms {
		hv := HistogramValue{Count: h.Count(), Sum: h.Sum()}
		for i, b := range h.bounds {
			hv.Buckets = append(hv.Buckets, Bucket{UpperBound: b, Count: h.counts[i].Load()})
		}
		hv.Buckets = append(hv.Buckets, Bucket{Overflow: true, Count: h.counts[len(h.bounds)].Load()})
		hv.P50, hv.P90, hv.P99 = hv.Quantile(0.50), hv.Quantile(0.90), hv.Quantile(0.99)
		s.Histograms[name] = hv
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON. Key order is
// deterministic — encoding/json sorts map keys — so the same registry
// state always encodes to the same bytes. ftmmserve's /metricsz
// endpoint and ftmmsim's -metrics-json flag share this encoder.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteJSON snapshots the registry and writes it as JSON (see
// Snapshot.WriteJSON). A nil registry writes an empty snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}

// Values flattens the snapshot into name -> float64, with gauge maxima
// as "<name>_max" and histograms as "<name>_count"/"<name>_mean".
func (s Snapshot) Values() map[string]float64 {
	out := make(map[string]float64, len(s.Counters)+2*len(s.Gauges)+2*len(s.Histograms))
	for name, v := range s.Counters {
		out[name] = float64(v)
	}
	for name, g := range s.Gauges {
		out[name] = float64(g.Value)
		out[name+"_max"] = float64(g.Max)
	}
	for name, h := range s.Histograms {
		out[name+"_count"] = float64(h.Count)
		if h.Count > 0 {
			out[name+"_mean"] = float64(h.Sum) / float64(h.Count)
			out[name+"_p50"] = float64(h.P50)
			out[name+"_p90"] = float64(h.P90)
			out[name+"_p99"] = float64(h.P99)
		}
	}
	return out
}

// String renders the snapshot as sorted "name value" lines — stable
// output for logs and tests.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-40s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := s.Gauges[n]
		fmt.Fprintf(&b, "%-40s %d (max %d)\n", n, g.Value, g.Max)
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "%-40s count %d mean %.2f", n, h.Count, meanOf(h))
		for _, bk := range h.Buckets {
			if bk.Overflow {
				fmt.Fprintf(&b, " [+Inf]=%d", bk.Count)
			} else {
				fmt.Fprintf(&b, " [<=%d]=%d", bk.UpperBound, bk.Count)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func meanOf(h HistogramValue) float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}
