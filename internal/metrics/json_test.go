package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteJSONStableKeyOrder pins the property ftmmserve's /metricsz
// and ftmmsim -metrics-json rely on: the same registry state always
// encodes to the same bytes, with instrument names in sorted order.
func TestWriteJSONStableKeyOrder(t *testing.T) {
	r := New()
	r.Counter("zeta_reads").Add(7)
	r.Counter("alpha_reads").Add(3)
	r.Counter("mid_reads").Add(5)
	r.Gauge("z_depth").Set(2)
	r.Gauge("a_depth").Set(9)
	r.Histogram("lat", 1, 4).Observe(3)

	var first, second bytes.Buffer
	if err := r.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("two encodes of the same state differ:\n%s\n----\n%s", first.String(), second.String())
	}

	out := first.String()
	for _, pair := range [][2]string{
		{`"alpha_reads"`, `"mid_reads"`},
		{`"mid_reads"`, `"zeta_reads"`},
		{`"a_depth"`, `"z_depth"`},
	} {
		i, j := strings.Index(out, pair[0]), strings.Index(out, pair[1])
		if i < 0 || j < 0 {
			t.Fatalf("output missing %v:\n%s", pair, out)
		}
		if i > j {
			t.Errorf("key %s appears after %s; want sorted order", pair[0], pair[1])
		}
	}

	// The document must round-trip into an equivalent Snapshot.
	var got Snapshot
	if err := json.Unmarshal(first.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Counters["zeta_reads"] != 7 || got.Counters["alpha_reads"] != 3 {
		t.Errorf("counters did not round-trip: %+v", got.Counters)
	}
	if got.Gauges["a_depth"].Value != 9 {
		t.Errorf("gauges did not round-trip: %+v", got.Gauges)
	}
	h := got.Histograms["lat"]
	if h.Count != 1 || h.Sum != 3 || len(h.Buckets) != 3 {
		t.Errorf("histogram did not round-trip: %+v", h)
	}
	if !h.Buckets[2].Overflow {
		t.Errorf("last bucket should be the overflow bucket: %+v", h.Buckets)
	}
}

// TestWriteJSONNilRegistry checks a nil registry writes a valid empty
// document instead of panicking.
func TestWriteJSONNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Counters)+len(got.Gauges)+len(got.Histograms) != 0 {
		t.Errorf("nil registry produced instruments: %+v", got)
	}
}
