package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("reads")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("reads") != c {
		t.Fatal("counter not memoized")
	}

	g := r.Gauge("buffer")
	g.Set(7)
	g.Set(3)
	if g.Value() != 3 || g.Max() != 7 {
		t.Fatalf("gauge = %d max %d, want 3 max 7", g.Value(), g.Max())
	}

	h := r.Histogram("slots", 1, 4, 16)
	for _, v := range []int64{0, 1, 2, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 108 {
		t.Fatalf("hist count/sum = %d/%d", h.Count(), h.Sum())
	}
	if m := h.Mean(); m != 108.0/5 {
		t.Fatalf("mean = %v", m)
	}
	snap := r.Snapshot()
	hv := snap.Histograms["slots"]
	wantCounts := []int64{2, 1, 1, 0, 1} // <=1, <=4, <=16, then overflow... bounds are 1,4,16
	if len(hv.Buckets) != 4 {
		t.Fatalf("bucket count = %d, want 4", len(hv.Buckets))
	}
	got := []int64{hv.Buckets[0].Count, hv.Buckets[1].Count, hv.Buckets[2].Count, hv.Buckets[3].Count}
	// 0,1 <= 1; 2 <= 4; 5 <= 16; 100 overflow.
	if got[0] != 2 || got[1] != 1 || got[2] != 1 || got[3] != 1 {
		t.Fatalf("bucket counts = %v, want [2 1 1 1] (wantCounts doc: %v)", got, wantCounts)
	}
	if !hv.Buckets[3].Overflow {
		t.Fatal("last bucket not marked overflow")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter recorded")
	}
	g := r.Gauge("y")
	g.Set(9)
	if g.Value() != 0 || g.Max() != 0 {
		t.Fatal("nil gauge recorded")
	}
	h := r.Histogram("z", 1, 2)
	h.Observe(5)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram recorded")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(int64(i))
				r.Histogram("h", 10, 100).Observe(int64(i % 200))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if max := r.Gauge("g").Max(); max != 999 {
		t.Fatalf("gauge max = %d, want 999", max)
	}
}

func TestSnapshotRendering(t *testing.T) {
	r := New()
	r.Counter("b_counter").Add(2)
	r.Counter("a_counter").Add(1)
	r.Gauge("g").Set(4)
	r.Histogram("h", 1).Observe(3)
	s := r.Snapshot()
	text := s.String()
	if !strings.Contains(text, "a_counter") || !strings.Contains(text, "b_counter") {
		t.Fatalf("rendering missing counters:\n%s", text)
	}
	if strings.Index(text, "a_counter") > strings.Index(text, "b_counter") {
		t.Fatal("counters not sorted")
	}
	vals := s.Values()
	if vals["a_counter"] != 1 || vals["g"] != 4 || vals["g_max"] != 4 {
		t.Fatalf("values = %v", vals)
	}
	if vals["h_count"] != 1 || vals["h_mean"] != 3 {
		t.Fatalf("histogram values = %v", vals)
	}
}
