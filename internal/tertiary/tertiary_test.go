package tertiary

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ftmm/internal/units"
)

func newTestLibrary(t *testing.T) *Library {
	t.Helper()
	l, err := NewLibrary(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewLibraryValidation(t *testing.T) {
	if _, err := NewLibrary(Config{MountLatency: -1, DriveRate: 1}); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := NewLibrary(Config{MountLatency: 1, DriveRate: 0}); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestStoreFetchRoundTrip(t *testing.T) {
	l := newTestLibrary(t)
	content := bytes.Repeat([]byte{0xA5}, 1000)
	if err := l.Store("movie", 3, content); err != nil {
		t.Fatal(err)
	}
	if !l.Has("movie") || l.Has("other") {
		t.Fatal("Has broken")
	}
	if n, err := l.Size("movie"); err != nil || n != 1000 {
		t.Fatalf("Size = %v,%v", n, err)
	}
	got, cost, err := l.Fetch("movie")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("content differs")
	}
	// Cost = 60 s mount + 1000 B at 0.5 MB/s = 60.002 s.
	want := 60*time.Second + 2*time.Millisecond
	if d := cost - want; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("cost = %v, want ~%v", cost, want)
	}
	if l.BusyTime() != cost {
		t.Fatalf("busy = %v, want %v", l.BusyTime(), cost)
	}
	if l.Objects() != 1 {
		t.Fatalf("Objects = %d", l.Objects())
	}
}

func TestStoreCopies(t *testing.T) {
	l := newTestLibrary(t)
	buf := []byte{1, 2, 3}
	if err := l.Store("x", 0, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99
	got, _, _ := l.Fetch("x")
	if got[0] != 1 {
		t.Fatal("Store did not copy")
	}
}

func TestStoreErrors(t *testing.T) {
	l := newTestLibrary(t)
	if err := l.Store("", 0, []byte{1}); err == nil {
		t.Error("empty id accepted")
	}
	if err := l.Store("x", -1, []byte{1}); err == nil {
		t.Error("negative tape accepted")
	}
	if err := l.Store("x", 0, nil); err == nil {
		t.Error("empty content accepted")
	}
}

func TestFetchRange(t *testing.T) {
	l := newTestLibrary(t)
	content := make([]byte, 100)
	for i := range content {
		content[i] = byte(i)
	}
	if err := l.Store("x", 0, content); err != nil {
		t.Fatal(err)
	}
	got, _, err := l.FetchRange("x", 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content[10:30]) {
		t.Fatal("range content differs")
	}
	// length < 0 reads to the end.
	got, _, err = l.FetchRange("x", 90, -1)
	if err != nil || len(got) != 10 {
		t.Fatalf("tail fetch = %d bytes, %v", len(got), err)
	}
	if _, _, err := l.FetchRange("x", -1, 5); err == nil {
		t.Error("negative offset accepted")
	}
	if _, _, err := l.FetchRange("x", 101, 1); err == nil {
		t.Error("offset beyond end accepted")
	}
	if _, _, err := l.FetchRange("x", 95, 10); err == nil {
		t.Error("range beyond end accepted")
	}
	if _, _, err := l.FetchRange("nope", 0, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing object: %v", err)
	}
}

func TestPlanCostSharesMounts(t *testing.T) {
	l := newTestLibrary(t)
	content := make([]byte, 1_000_000)
	for _, obj := range []struct {
		id   string
		tape int
	}{{"a", 0}, {"b", 0}, {"c", 1}} {
		if err := l.Store(obj.id, obj.tape, content); err != nil {
			t.Fatal(err)
		}
	}
	needs := []Need{
		{ObjectID: "a", Offset: 0, Length: 500_000},
		{ObjectID: "b", Offset: 0, Length: 500_000},
		{ObjectID: "c", Offset: 0, Length: 500_000},
	}
	cost, err := l.PlanCost(needs)
	if err != nil {
		t.Fatal(err)
	}
	// Two tapes (a,b share tape 0) => 2 mounts + 1.5 MB at 0.5 MB/s = 3 s.
	want := 2*60*time.Second + 3*time.Second
	if d := cost - want; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("plan cost = %v, want %v", cost, want)
	}
	// Errors propagate.
	if _, err := l.PlanCost([]Need{{ObjectID: "zzz"}}); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing object in plan: %v", err)
	}
	if _, err := l.PlanCost([]Need{{ObjectID: "a", Offset: 0, Length: 2_000_000}}); err == nil {
		t.Error("oversized range in plan accepted")
	}
}

// The property the paper's architecture depends on: staging from tape is
// orders of magnitude slower than the stream it feeds, so objects cannot
// be served from tertiary directly.
func TestTertiaryIsSlowerThanDelivery(t *testing.T) {
	l := newTestLibrary(t)
	size := 10 * units.MB
	content := make([]byte, size)
	if err := l.Store("clip", 0, content); err != nil {
		t.Fatal(err)
	}
	_, cost, err := l.Fetch("clip")
	if err != nil {
		t.Fatal(err)
	}
	playTime := units.MPEG1.TimeFor(size)
	if cost < playTime {
		t.Fatalf("tertiary fetch (%v) faster than playback (%v); model broken", cost, playTime)
	}
}

func TestTapesOf(t *testing.T) {
	l := newTestLibrary(t)
	_ = l.Store("a", 2, []byte{1})
	_ = l.Store("b", 0, []byte{1})
	_ = l.Store("c", 2, []byte{1})
	tapes, err := l.TapesOf([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tapes) != 2 || tapes[0] != 0 || tapes[1] != 2 {
		t.Fatalf("TapesOf = %v", tapes)
	}
	if _, err := l.TapesOf([]string{"zzz"}); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing object: %v", err)
	}
}
