// Package tertiary simulates the tape library at the bottom of the
// paper's storage hierarchy (Figure 1): the entire database resides here
// permanently, objects are staged to disk on demand, and a catastrophic
// disk failure forces portions of many objects to be re-read — "many
// tapes may need to be referenced and that is very time consuming".
//
// Only the properties the paper's design depends on are modelled: long
// mount/position latency, low per-drive bandwidth (the footnote prices a
// ~4 Mbit/s tape drive against a ~32 Mbit/s disk), and the
// one-object-per-fetch serialization of a tape drive. Fetches return the
// stored bytes plus the simulated wall-clock time the retrieval costs, so
// rebuild experiments can account for time without sleeping.
package tertiary

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ftmm/internal/units"
)

// ErrNotFound is returned for objects the library does not hold.
var ErrNotFound = errors.New("tertiary: object not found")

// Config sets the library's performance characteristics.
type Config struct {
	// MountLatency is the time to fetch, mount and position one tape.
	MountLatency time.Duration
	// DriveRate is the sustained transfer bandwidth of one tape drive.
	DriveRate units.Rate
}

// DefaultConfig matches the paper's footnote: a 4 Mbit/s tape drive, with
// a representative 60 s robot-mount-and-position latency.
func DefaultConfig() Config {
	return Config{
		MountLatency: 60 * time.Second,
		DriveRate:    units.FromMegabitsPerSecond(4),
	}
}

type storedObject struct {
	tape    int
	content []byte
}

// Library is the simulated tape library.
type Library struct {
	cfg Config

	mu      sync.Mutex
	objects map[string]*storedObject
	// busy accumulates the total simulated drive-seconds consumed, a
	// measure of rebuild cost.
	busy time.Duration
}

// NewLibrary creates an empty library.
func NewLibrary(cfg Config) (*Library, error) {
	if cfg.MountLatency < 0 {
		return nil, errors.New("tertiary: negative mount latency")
	}
	if cfg.DriveRate <= 0 {
		return nil, errors.New("tertiary: drive rate must be positive")
	}
	return &Library{cfg: cfg, objects: make(map[string]*storedObject)}, nil
}

// Store archives an object's full content on the given tape. Content is
// copied. Re-storing an ID overwrites it.
func (l *Library) Store(id string, tape int, content []byte) error {
	if id == "" {
		return errors.New("tertiary: empty object id")
	}
	if tape < 0 {
		return fmt.Errorf("tertiary: negative tape number %d", tape)
	}
	if len(content) == 0 {
		return fmt.Errorf("tertiary: object %q has no content", id)
	}
	buf := make([]byte, len(content))
	copy(buf, content)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.objects[id] = &storedObject{tape: tape, content: buf}
	return nil
}

// Has reports whether the library holds the object.
func (l *Library) Has(id string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.objects[id]
	return ok
}

// Size returns the object's archived length.
func (l *Library) Size(id string) (units.ByteSize, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	o, ok := l.objects[id]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return units.ByteSize(len(o.content)), nil
}

// Objects returns the number of archived objects.
func (l *Library) Objects() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.objects)
}

// IDs returns the archived object IDs, sorted — the server's title
// catalog as clients (ftmmserve /titlesz, ftmmload) see it.
func (l *Library) IDs() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	ids := make([]string, 0, len(l.objects))
	for id := range l.objects {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Fetch retrieves the object's full content and the simulated time the
// retrieval took (one mount plus the transfer).
func (l *Library) Fetch(id string) ([]byte, time.Duration, error) {
	return l.FetchRange(id, 0, -1)
}

// FetchRange retrieves length bytes starting at offset (length < 0 means
// "to the end") and the simulated retrieval time. Partial fetches are
// what a rebuild issues: only the failed disk's share of each object.
func (l *Library) FetchRange(id string, offset, length int) ([]byte, time.Duration, error) {
	if offset < 0 {
		return nil, 0, fmt.Errorf("tertiary: negative offset %d", offset)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	o, ok := l.objects[id]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if offset > len(o.content) {
		return nil, 0, fmt.Errorf("tertiary: offset %d beyond object %q (%d bytes)", offset, id, len(o.content))
	}
	end := len(o.content)
	if length >= 0 {
		if offset+length > end {
			return nil, 0, fmt.Errorf("tertiary: range [%d,%d) beyond object %q (%d bytes)", offset, offset+length, id, end)
		}
		end = offset + length
	}
	out := make([]byte, end-offset)
	copy(out, o.content[offset:end])
	cost := l.cfg.MountLatency + l.cfg.DriveRate.TimeFor(units.ByteSize(len(out)))
	l.busy += cost
	return out, cost, nil
}

// BusyTime returns the cumulative simulated drive time consumed.
func (l *Library) BusyTime() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.busy
}

// Need is one item of a rebuild plan: a byte range of one object.
type Need struct {
	ObjectID string
	Offset   int
	Length   int
}

// PlanCost estimates the simulated time to satisfy a set of needs with
// one tape drive: needs on the same tape share a single mount (the robot
// keeps the tape loaded), distinct tapes each pay MountLatency. This is
// why the paper calls rebuild from tertiary "a slow process".
func (l *Library) PlanCost(needs []Need) (time.Duration, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	tapes := map[int]bool{}
	var transfer units.ByteSize
	for _, n := range needs {
		o, ok := l.objects[n.ObjectID]
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrNotFound, n.ObjectID)
		}
		if n.Offset < 0 || n.Length < 0 || n.Offset+n.Length > len(o.content) {
			return 0, fmt.Errorf("tertiary: bad range [%d,%d) for %q", n.Offset, n.Offset+n.Length, n.ObjectID)
		}
		tapes[o.tape] = true
		transfer += units.ByteSize(n.Length)
	}
	return time.Duration(len(tapes))*l.cfg.MountLatency + l.cfg.DriveRate.TimeFor(transfer), nil
}

// TapesOf returns the sorted distinct tapes holding the given objects.
func (l *Library) TapesOf(ids []string) ([]int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seen := map[int]bool{}
	for _, id := range ids {
		o, ok := l.objects[id]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
		}
		seen[o.tape] = true
	}
	out := make([]int, 0, len(seen))
	for tp := range seen {
		out = append(out, tp)
	}
	sort.Ints(out)
	return out, nil
}
