package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const validJSON = `{
  "scheme": "nc",
  "disks": 10,
  "cluster_size": 5,
  "k": 2,
  "titles": 4,
  "title_groups": 8,
  "requests": [
    {"cycle": 0, "title": "title0"},
    {"cycle": 1, "title": "title1"},
    {"cycle": 2, "title": "title2"}
  ],
  "failures": [
    {"cycle": 6, "drive": 2, "repair_cycle": 20}
  ]
}`

func TestParseValid(t *testing.T) {
	s, err := Parse([]byte(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	if s.Scheme != "nc" || s.Disks != 10 || len(s.Requests) != 3 || len(s.Failures) != 1 {
		t.Fatalf("parsed = %+v", s)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	bad := strings.Replace(validJSON, `"k": 2,`, `"k": 2, "tyop": 1,`, 1)
	if _, err := Parse([]byte(bad)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	cases := []struct{ name, from, to string }{
		{"bad scheme", `"scheme": "nc"`, `"scheme": "zz"`},
		{"bad farm", `"disks": 10`, `"disks": 3`},
		{"no titles", `"titles": 4`, `"titles": 0`},
		{"bad drive", `"drive": 2`, `"drive": 99`},
		{"repair before failure", `"repair_cycle": 20`, `"repair_cycle": 5`},
		{"negative request cycle", `{"cycle": 0, "title": "title0"}`, `{"cycle": -1, "title": "title0"}`},
		{"empty title", `"title": "title1"`, `"title": ""`},
	}
	for _, c := range cases {
		bad := strings.Replace(validJSON, c.from, c.to, 1)
		if bad == validJSON {
			t.Fatalf("%s: replacement did not apply", c.name)
		}
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := Parse([]byte(`{`)); err == nil {
		t.Error("truncated JSON accepted")
	}
	empty := strings.Replace(validJSON, `{"cycle": 0, "title": "title0"},
    {"cycle": 1, "title": "title1"},
    {"cycle": 2, "title": "title2"}`, ``, 1)
	if _, err := Parse([]byte(empty)); err == nil {
		t.Error("no requests accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	s, err := Parse([]byte(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.IntegrityErr != nil {
		t.Fatalf("integrity: %v", res.IntegrityErr)
	}
	if res.Admitted != 3 || res.Rejected != 0 {
		t.Fatalf("admitted/rejected = %d/%d", res.Admitted, res.Rejected)
	}
	if res.Stats.Finished != 3 {
		t.Fatalf("finished = %d", res.Stats.Finished)
	}
	// NC failure at cycle 6: the transition may cost a couple of tracks.
	if res.Summary.Hiccups > 4 {
		t.Fatalf("hiccups = %d", res.Summary.Hiccups)
	}
	if res.Stats.Reconstructions == 0 {
		t.Fatal("no reconstructions despite failure")
	}
	if res.CycleTime <= 0 || res.StagingTime <= 0 {
		t.Fatal("missing timings")
	}
}

func TestRunTertiaryRepair(t *testing.T) {
	tert := strings.Replace(validJSON, `"repair_cycle": 20}`, `"repair_cycle": 20, "tertiary": true}`, 1)
	s, err := Parse([]byte(tert))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.IntegrityErr != nil {
		t.Fatal(res.IntegrityErr)
	}
	// Tape reload adds its latency to the staging total? No — it is
	// accounted separately; just assert the run completed cleanly.
	if res.Stats.Finished != 3 {
		t.Fatalf("finished = %d", res.Stats.Finished)
	}
}

func TestRunMaxCyclesBound(t *testing.T) {
	s, err := Parse([]byte(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	s.MaxCycles = 3 // too few to finish
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Finished != 0 {
		t.Fatal("finished despite tiny cycle bound")
	}
}

func TestRunAllSchemes(t *testing.T) {
	for _, scheme := range []string{"sr", "sg", "nc", "nc-simple", "ib"} {
		spec := strings.Replace(validJSON, `"scheme": "nc"`, `"scheme": "`+scheme+`"`, 1)
		s, err := Parse([]byte(spec))
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.IntegrityErr != nil {
			t.Fatalf("%s: %v", scheme, res.IntegrityErr)
		}
		if res.Stats.Finished != 3 {
			t.Fatalf("%s: finished = %d", scheme, res.Stats.Finished)
		}
	}
}

// The scenario files shipped in scenarios/ must stay parseable and
// runnable.
func TestShippedScenarios(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	ran := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		spec, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if spec.Nodes > 1 {
			// Cluster specs run through the chaos cluster runner; the
			// chaos corpus test covers them. Parseability checked above.
			continue
		}
		res, err := spec.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if res.IntegrityErr != nil {
			t.Fatalf("%s: %v", e.Name(), res.IntegrityErr)
		}
		ran++
	}
	if ran == 0 {
		t.Fatal("no shipped scenarios found")
	}
}
