package scenario

import (
	"testing"
)

// FuzzParse hardens the scenario JSON surface: arbitrary input must
// either parse into a spec that passes Validate, or error — never panic,
// and never produce a spec that Run would crash on structurally.
func FuzzParse(f *testing.F) {
	f.Add([]byte(validJSON))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"scheme":"sr","disks":10,"cluster_size":5,"titles":1,"title_groups":1,"requests":[{"cycle":0,"title":"title0"}]}`))
	f.Add([]byte(`{"scheme":"sr","disks":8,"cluster_size":4,"titles":1,"title_groups":2,"requests":[{"cycle":0,"title":"title0"}],"vcr_events":[{"cycle":1,"kind":"pause","stream":0},{"cycle":2,"kind":"ff","stream":0,"rate":2},{"cycle":3,"kind":"rewind","stream":0,"track":1},{"cycle":4,"kind":"resume","stream":0}]}`))
	f.Add([]byte(`{"vcr_events":[{"cycle":-1,"kind":"warp","stream":-3,"rate":-9,"track":-1}]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		// A parsed spec must re-validate.
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse accepted a spec Validate rejects: %v", err)
		}
	})
}
