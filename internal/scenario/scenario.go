// Package scenario runs declarative, reproducible simulation scenarios:
// a JSON description of a farm, a catalog, a request schedule, and a
// failure/repair schedule is executed against the full server and
// summarized. cmd/ftmmsim consumes these via -scenario; tests use them
// to pin down regression cases.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"ftmm/internal/diskmodel"
	"ftmm/internal/server"
	"ftmm/internal/trace"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// Spec is the JSON scenario description.
type Spec struct {
	// Scheme is a server.ParseScheme name: sr, sg, nc, nc-simple, ib.
	Scheme string `json:"scheme"`
	// Disks and ClusterSize shape the farm.
	Disks       int `json:"disks"`
	ClusterSize int `json:"cluster_size"`
	// K is the reserve depth (buffer servers / reserved bandwidth).
	K int `json:"k"`
	// Titles to archive, each TitleGroups parity groups long.
	Titles      int `json:"titles"`
	TitleGroups int `json:"title_groups"`
	// Requests schedules stream admissions.
	Requests []Request `json:"requests"`
	// Failures schedules drive failures and repairs.
	Failures []Failure `json:"failures"`
	// MaxCycles bounds the run (default 10000).
	MaxCycles int `json:"max_cycles"`
}

// Request admits a stream for a title at a cycle.
type Request struct {
	Cycle int    `json:"cycle"`
	Title string `json:"title"`
}

// Failure fails a drive at a cycle, optionally repairing it later.
// RepairCycle <= 0 means never; Tertiary selects tape reload instead of
// parity rebuild.
type Failure struct {
	Cycle       int  `json:"cycle"`
	Drive       int  `json:"drive"`
	RepairCycle int  `json:"repair_cycle"`
	Tertiary    bool `json:"tertiary"`
}

// Result summarizes a run.
type Result struct {
	Stats       server.Stats
	Summary     trace.Summary
	CycleTime   time.Duration
	StagingTime time.Duration
	// IntegrityErr is non-nil if any delivered track's bytes differed
	// from the stored content (should never happen).
	IntegrityErr error
	// Admitted and Rejected count request outcomes.
	Admitted, Rejected int
}

// Parse decodes and validates a JSON spec. Unknown fields are rejected
// so typos in scenario files fail loudly.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec's shape.
func (s *Spec) Validate() error {
	if _, _, err := server.ParseScheme(s.Scheme); err != nil {
		return err
	}
	switch {
	case s.Disks < s.ClusterSize || s.ClusterSize < 2:
		return fmt.Errorf("scenario: bad farm %dx%d", s.Disks, s.ClusterSize)
	case s.Titles < 1 || s.TitleGroups < 1:
		return errors.New("scenario: need at least one title with one group")
	case len(s.Requests) == 0:
		return errors.New("scenario: no requests")
	}
	for _, r := range s.Requests {
		if r.Cycle < 0 || r.Title == "" {
			return fmt.Errorf("scenario: bad request %+v", r)
		}
	}
	for _, f := range s.Failures {
		if f.Cycle < 0 || f.Drive < 0 || f.Drive >= s.Disks {
			return fmt.Errorf("scenario: bad failure %+v", f)
		}
		if f.RepairCycle > 0 && f.RepairCycle <= f.Cycle {
			return fmt.Errorf("scenario: repair at %d not after failure at %d", f.RepairCycle, f.Cycle)
		}
	}
	return nil
}

// Run executes the scenario.
func (s *Spec) Run() (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	scheme, policy, err := server.ParseScheme(s.Scheme)
	if err != nil {
		return nil, err
	}
	srv, err := server.New(server.Options{
		Disks: s.Disks, ClusterSize: s.ClusterSize,
		Scheme: scheme, NCPolicy: policy, K: s.K,
		DiskParams: s.diskParams(),
	})
	if err != nil {
		return nil, err
	}
	trackSize := int(srv.Farm().Params().TrackSize)
	content := map[string][]byte{}
	for i := 0; i < s.Titles; i++ {
		id := fmt.Sprintf("title%d", i)
		c := workload.SyntheticContent(id, s.TitleGroups*(s.ClusterSize-1)*trackSize)
		content[id] = c
		if err := srv.AddTitle(id, units.ByteSize(len(c)), i/4, c); err != nil {
			return nil, err
		}
	}
	rec, err := trace.NewRecorder(content, trackSize)
	if err != nil {
		return nil, err
	}

	maxCycles := s.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 10_000
	}
	res := &Result{}
	lastEvent := 0
	for _, r := range s.Requests {
		if r.Cycle > lastEvent {
			lastEvent = r.Cycle
		}
	}
	for _, f := range s.Failures {
		if f.Cycle > lastEvent {
			lastEvent = f.Cycle
		}
		if f.RepairCycle > lastEvent {
			lastEvent = f.RepairCycle
		}
	}
	for cycle := 0; cycle < maxCycles; cycle++ {
		for _, r := range s.Requests {
			if r.Cycle != cycle {
				continue
			}
			if _, _, err := srv.Request(r.Title); err != nil {
				res.Rejected++
			} else {
				res.Admitted++
			}
		}
		for _, f := range s.Failures {
			if f.Cycle == cycle {
				if err := srv.FailDisk(f.Drive); err != nil {
					return nil, fmt.Errorf("scenario: failing drive %d at cycle %d: %w", f.Drive, cycle, err)
				}
			}
			if f.RepairCycle == cycle && f.RepairCycle > 0 {
				if f.Tertiary {
					if _, err := srv.RebuildFromTertiary(f.Drive); err != nil {
						return nil, err
					}
				} else if err := srv.RepairDisk(f.Drive); err != nil {
					return nil, err
				}
			}
		}
		rep, err := srv.Step()
		if err != nil {
			return nil, err
		}
		rec.Observe(rep)
		if cycle >= lastEvent && srv.Engine().Active() == 0 {
			break
		}
	}
	res.Stats = srv.Stats()
	res.Summary = rec.Summarize()
	res.CycleTime = srv.CycleTime()
	res.StagingTime = srv.StagingTime()
	res.IntegrityErr = rec.VerifyIntegrity()
	return res, nil
}

// diskParams sizes drives to hold the catalog comfortably.
func (s *Spec) diskParams() diskmodel.Params {
	p := diskmodel.Table1()
	tracksPerTitle := s.TitleGroups * s.ClusterSize
	p.Capacity = units.ByteSize((s.Titles*tracksPerTitle)/s.Disks+tracksPerTitle+50) * p.TrackSize
	return p
}
