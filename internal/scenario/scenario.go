// Package scenario runs declarative, reproducible simulation scenarios:
// a JSON description of a farm, a catalog, a request schedule, and a
// failure/repair schedule is executed against the full server and
// summarized. cmd/ftmmsim consumes these via -scenario; tests use them
// to pin down regression cases.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"ftmm/internal/diskmodel"
	"ftmm/internal/server"
	"ftmm/internal/trace"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// Spec is the JSON scenario description.
type Spec struct {
	// Scheme is a server.ParseScheme name: sr, sg, nc, nc-simple, ib,
	// dc.
	Scheme string `json:"scheme"`
	// Disks and ClusterSize shape the farm.
	Disks       int `json:"disks"`
	ClusterSize int `json:"cluster_size"`
	// DeclusterGroup is G, the declustering group size, for the dc
	// scheme (0 = 2·ClusterSize-1); ignored otherwise.
	DeclusterGroup int `json:"decluster_group,omitempty"`
	// K is the reserve depth (buffer servers / reserved bandwidth).
	K int `json:"k"`
	// Titles to archive, each TitleGroups parity groups long.
	Titles      int `json:"titles"`
	TitleGroups int `json:"title_groups"`
	// Requests schedules stream admissions.
	Requests []Request `json:"requests"`
	// Failures schedules drive failures and repairs.
	Failures []Failure `json:"failures"`
	// Cancels schedules client hang-ups, applied best-effort: a cancel
	// whose stream is unknown or already finished is silently skipped,
	// so shrunk chaos traces stay runnable after events are removed.
	Cancels []Cancel `json:"cancels,omitempty"`
	// VcrEvents schedules interactive-viewer verbs (pause, resume, ff,
	// rewind) against admitted streams, applied best-effort like Cancels.
	VcrEvents []VcrEvent `json:"vcr_events,omitempty"`
	// MaxCycles bounds the run (default 10000).
	MaxCycles int `json:"max_cycles"`
	// Cluster topology: Nodes > 1 runs the spec across a farm-per-node
	// cluster (the chaos cluster runner; ftmmsim -scenario routes
	// there automatically). Replicas and PlacementSeed feed the
	// rendezvous placement; NodeEvents kill or drain whole nodes. Zero
	// values mean the classic single-node run.
	Nodes         int         `json:"nodes,omitempty"`
	Replicas      int         `json:"replicas,omitempty"`
	PlacementSeed int64       `json:"placement_seed,omitempty"`
	NodeEvents    []NodeEvent `json:"node_events,omitempty"`
}

// Request admits a stream for a title at a cycle.
type Request struct {
	Cycle int    `json:"cycle"`
	Title string `json:"title"`
}

// Failure fails a drive at a cycle, optionally repairing it later.
// RepairCycle <= 0 means never; Tertiary selects tape reload instead of
// parity rebuild. RebuildBudget > 0 selects the paper's online rebuild
// mode instead of an instant repair: at RepairCycle the drive is
// replaced and its contents restored incrementally, at most
// RebuildBudget spare track reads per cycle (must be >= C-1).
type Failure struct {
	Cycle         int  `json:"cycle"`
	Drive         int  `json:"drive"`
	RepairCycle   int  `json:"repair_cycle"`
	Tertiary      bool `json:"tertiary"`
	RebuildBudget int  `json:"rebuild_budget,omitempty"`
	// Node is the shard whose drive fails, for cluster specs.
	Node int `json:"node,omitempty"`
}

// NodeEvent kills or drains one cluster node at a cycle. "kill" stops
// the node dead (its sessions fail over to replica holders); "drain"
// stops it taking placements while its streams play out.
type NodeEvent struct {
	Cycle int    `json:"cycle"`
	Kind  string `json:"kind"`
	Node  int    `json:"node"`
}

// Cancel hangs up the stream admitted by the Stream-th successful
// request (0-based, in schedule order) at the given cycle.
type Cancel struct {
	Cycle  int `json:"cycle"`
	Stream int `json:"stream"`
}

// VcrEvent applies one interactive-viewer verb to the Stream-th
// successful admission at a cycle. Kind is "pause" (park the stream,
// freeing its slot), "resume" (re-admit a paused stream at its held
// position's group floor; a rejection leaves it parked), "ff" (set
// playback multiplier Rate; refusals and engines without rate support
// are tolerated), or "rewind" (jump to absolute track Track, clamped;
// refusals park the stream at the target).
type VcrEvent struct {
	Cycle  int    `json:"cycle"`
	Kind   string `json:"kind"`
	Stream int    `json:"stream"`
	Rate   int    `json:"rate,omitempty"`
	Track  int    `json:"track,omitempty"`
}

// Result summarizes a run.
type Result struct {
	Stats       server.Stats
	Summary     trace.Summary
	CycleTime   time.Duration
	StagingTime time.Duration
	// IntegrityErr is non-nil if any delivered track's bytes differed
	// from the stored content (should never happen).
	IntegrityErr error
	// Admitted and Rejected count request outcomes.
	Admitted, Rejected int
}

// Parse decodes and validates a JSON spec. Unknown fields are rejected
// so typos in scenario files fail loudly.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec's shape.
func (s *Spec) Validate() error {
	if _, _, err := server.ParseScheme(s.Scheme); err != nil {
		return err
	}
	switch {
	case s.Disks < s.ClusterSize || s.ClusterSize < 2:
		return fmt.Errorf("scenario: bad farm %dx%d", s.Disks, s.ClusterSize)
	case s.Titles < 1 || s.TitleGroups < 1:
		return errors.New("scenario: need at least one title with one group")
	case len(s.Requests) == 0:
		return errors.New("scenario: no requests")
	}
	for _, r := range s.Requests {
		if r.Cycle < 0 || r.Title == "" {
			return fmt.Errorf("scenario: bad request %+v", r)
		}
	}
	for _, f := range s.Failures {
		if f.Cycle < 0 || f.Drive < 0 || f.Drive >= s.Disks {
			return fmt.Errorf("scenario: bad failure %+v", f)
		}
		if f.RepairCycle > 0 && f.RepairCycle <= f.Cycle {
			return fmt.Errorf("scenario: repair at %d not after failure at %d", f.RepairCycle, f.Cycle)
		}
		if f.RebuildBudget < 0 {
			return fmt.Errorf("scenario: negative rebuild budget %d", f.RebuildBudget)
		}
		if f.RebuildBudget > 0 && f.Tertiary {
			return fmt.Errorf("scenario: failure %+v mixes tertiary reload with online rebuild", f)
		}
	}
	for _, c := range s.Cancels {
		if c.Cycle < 0 || c.Stream < 0 {
			return fmt.Errorf("scenario: bad cancel %+v", c)
		}
	}
	for _, v := range s.VcrEvents {
		if v.Cycle < 0 || v.Stream < 0 {
			return fmt.Errorf("scenario: bad vcr event %+v", v)
		}
		switch v.Kind {
		case "pause", "resume":
		case "ff":
			if v.Rate < 1 {
				return fmt.Errorf("scenario: ff rate %d below 1", v.Rate)
			}
		case "rewind":
			if v.Track < 0 {
				return fmt.Errorf("scenario: rewind to negative track %d", v.Track)
			}
		default:
			return fmt.Errorf("scenario: unknown vcr event kind %q", v.Kind)
		}
	}
	if s.Nodes < 0 {
		return errors.New("scenario: negative node count")
	}
	if s.Replicas < 0 || (s.Nodes > 1 && s.Replicas > s.Nodes) {
		return fmt.Errorf("scenario: %d replicas do not fit %d nodes", s.Replicas, s.Nodes)
	}
	nodes := s.Nodes
	if nodes < 1 {
		nodes = 1
	}
	for _, f := range s.Failures {
		if f.Node < 0 || f.Node >= nodes {
			return fmt.Errorf("scenario: failure %+v on node outside [0,%d)", f, nodes)
		}
	}
	for _, ne := range s.NodeEvents {
		if s.Nodes < 2 {
			return errors.New("scenario: node events need nodes > 1")
		}
		if ne.Kind != "kill" && ne.Kind != "drain" {
			return fmt.Errorf("scenario: unknown node event kind %q", ne.Kind)
		}
		if ne.Cycle < 0 || ne.Node < 0 || ne.Node >= s.Nodes {
			return fmt.Errorf("scenario: bad node event %+v", ne)
		}
	}
	return nil
}

// Run executes the scenario. Cluster specs (Nodes > 1) are not
// runnable here — they need the farm-per-node chaos runner, which
// would invert the package dependency; ftmmsim routes them there.
func (s *Spec) Run() (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Nodes > 1 {
		return nil, errors.New("scenario: cluster spec needs the chaos cluster runner (ftmmsim -scenario routes automatically)")
	}
	scheme, policy, err := server.ParseScheme(s.Scheme)
	if err != nil {
		return nil, err
	}
	srv, err := server.New(server.Options{
		Disks: s.Disks, ClusterSize: s.ClusterSize,
		DeclusterGroup: s.DeclusterGroup,
		Scheme:         scheme, NCPolicy: policy, K: s.K,
		DiskParams: s.DiskParams(),
	})
	if err != nil {
		return nil, err
	}
	trackSize := int(srv.Farm().Params().TrackSize)
	content := map[string][]byte{}
	for i := 0; i < s.Titles; i++ {
		id := fmt.Sprintf("title%d", i)
		c := workload.SyntheticContent(id, s.TitleGroups*(s.ClusterSize-1)*trackSize)
		content[id] = c
		if err := srv.AddTitle(id, units.ByteSize(len(c)), i/4, c); err != nil {
			return nil, err
		}
	}
	rec, err := trace.NewRecorder(content, trackSize)
	if err != nil {
		return nil, err
	}

	maxCycles := s.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 10_000
	}
	res := &Result{}
	lastEvent := 0
	for _, r := range s.Requests {
		if r.Cycle > lastEvent {
			lastEvent = r.Cycle
		}
	}
	for _, f := range s.Failures {
		if f.Cycle > lastEvent {
			lastEvent = f.Cycle
		}
		if f.RepairCycle > lastEvent {
			lastEvent = f.RepairCycle
		}
	}
	for _, c := range s.Cancels {
		if c.Cycle > lastEvent {
			lastEvent = c.Cycle
		}
	}
	for _, v := range s.VcrEvents {
		if v.Cycle > lastEvent {
			lastEvent = v.Cycle
		}
	}
	var admittedIDs []int
	var admittedTitles []string
	// paused maps ordinal -> next owed track for streams a pause (or a
	// refused rewind) has parked.
	paused := map[int]int{}
	width := s.ClusterSize - 1
	for cycle := 0; cycle < maxCycles; cycle++ {
		for _, r := range s.Requests {
			if r.Cycle != cycle {
				continue
			}
			if id, _, err := srv.Request(r.Title); err != nil {
				res.Rejected++
			} else {
				res.Admitted++
				admittedIDs = append(admittedIDs, id)
				admittedTitles = append(admittedTitles, r.Title)
			}
		}
		for _, f := range s.Failures {
			if f.Cycle == cycle {
				if err := srv.FailDisk(f.Drive); err != nil {
					return nil, fmt.Errorf("scenario: failing drive %d at cycle %d: %w", f.Drive, cycle, err)
				}
			}
			if f.RepairCycle == cycle && f.RepairCycle > 0 {
				switch {
				case f.Tertiary:
					if _, err := srv.RebuildFromTertiary(f.Drive); err != nil {
						return nil, err
					}
				case f.RebuildBudget > 0:
					if err := srv.StartOnlineRebuild(f.Drive, f.RebuildBudget); err != nil {
						return nil, err
					}
				default:
					if err := srv.RepairDisk(f.Drive); err != nil {
						return nil, err
					}
				}
			}
		}
		for _, c := range s.Cancels {
			// Best-effort: skip cancels whose admission never happened or
			// whose stream already finished.
			if c.Cycle == cycle && c.Stream < len(admittedIDs) {
				if _, ok := paused[c.Stream]; ok {
					delete(paused, c.Stream)
					continue
				}
				_ = srv.Cancel(admittedIDs[c.Stream])
			}
		}
		for _, v := range s.VcrEvents {
			// Same best-effort contract as Cancels: verbs whose stream is
			// unknown, finished, or in the wrong state are skipped, so
			// shrunk chaos traces stay runnable.
			if v.Cycle != cycle || v.Stream >= len(admittedIDs) {
				continue
			}
			switch v.Kind {
			case "pause":
				if _, ok := paused[v.Stream]; ok {
					break
				}
				next, _, ok := srv.StreamProgress(admittedIDs[v.Stream])
				if !ok {
					break
				}
				_ = srv.Cancel(admittedIDs[v.Stream])
				paused[v.Stream] = next
			case "resume":
				next, ok := paused[v.Stream]
				if !ok {
					break
				}
				id, _, err := srv.RequestAt(admittedTitles[v.Stream], next/width)
				if err != nil {
					break // stays parked, like a viewer holding a Retry-After
				}
				admittedIDs[v.Stream] = id
				delete(paused, v.Stream)
			case "ff":
				if _, ok := paused[v.Stream]; ok {
					break
				}
				_ = srv.SetStreamRate(admittedIDs[v.Stream], v.Rate)
			case "rewind":
				target := v.Track
				if t := s.TitleGroups * width; target >= t {
					target = t - 1
				}
				if _, ok := paused[v.Stream]; ok {
					paused[v.Stream] = target
					break
				}
				if _, _, ok := srv.StreamProgress(admittedIDs[v.Stream]); !ok {
					break
				}
				_ = srv.Cancel(admittedIDs[v.Stream])
				id, _, err := srv.RequestAt(admittedTitles[v.Stream], target/width)
				if err != nil {
					paused[v.Stream] = target
					break
				}
				admittedIDs[v.Stream] = id
			}
		}
		rep, err := srv.Step()
		if err != nil {
			return nil, err
		}
		rec.Observe(rep)
		if cycle >= lastEvent && srv.Engine().Active() == 0 && srv.RebuildRemaining() == 0 {
			break
		}
	}
	res.Stats = srv.Stats()
	res.Summary = rec.Summarize()
	res.CycleTime = srv.CycleTime()
	res.StagingTime = srv.StagingTime()
	res.IntegrityErr = rec.VerifyIntegrity()
	return res, nil
}

// DiskParams sizes drives to hold the catalog comfortably. It is
// exported so the chaos harness builds its servers with exactly the
// geometry a scenario replay will use — a shrunk trace must reproduce
// its violation byte for byte when re-run through ftmmsim -scenario.
func (s *Spec) DiskParams() diskmodel.Params {
	p := diskmodel.Table1()
	tracksPerTitle := s.TitleGroups * s.ClusterSize
	p.Capacity = units.ByteSize((s.Titles*tracksPerTitle)/s.Disks+tracksPerTitle+50) * p.TrackSize
	return p
}
