// Block designs for parity declustering.
//
// A balanced incomplete block design BIBD(G, C, λ) is a family of
// C-element subsets ("blocks") of a G-element point set such that every
// point appears in the same number of blocks r and every pair of points
// co-occurs in exactly λ blocks. Mapping points to the drives of a
// G-drive declustering group and parity groups to blocks spreads
// reconstruction load uniformly: rebuilding one drive reads each
// survivor at rate (C−1)/(G−1) of the per-drive clustered rate, so the
// rebuild window shrinks by the same factor (Holland & Gibson's parity
// declustering, and the t-design construction of Dau et al.).
//
// A small table of classic designs covers the (G, C) pairs the paper's
// geometries produce; every other admissible pair falls back to the
// complete design (all C-subsets of G drives), which is always a BIBD
// with λ = binom(G−2, C−2).
package layout

import "fmt"

// DesignError reports an invalid (G, C) declustering request. It is a
// typed error so callers can distinguish bad geometry from allocation
// failures.
type DesignError struct {
	G, C   int
	Reason string
}

func (e *DesignError) Error() string {
	return fmt.Sprintf("layout: no block design for G=%d C=%d: %s", e.G, e.C, e.Reason)
}

// Design is a balanced incomplete block design over G points (drives of
// one declustering group) with blocks of size C.
type Design struct {
	// G is the number of points (drives per declustering group); C is
	// the block (parity group) size.
	G, C int
	// Replication r is the number of blocks containing each point;
	// Lambda λ is the number of blocks containing each pair of points.
	Replication, Lambda int
	// Blocks lists the b blocks; each is a sorted C-subset of [0, G).
	Blocks [][]int
}

// maxCompleteBlocks bounds the complete-design fallback: binom(G, C)
// blocks are materialized, so refuse geometries where that explodes.
const maxCompleteBlocks = 1 << 14

// knownDesigns holds hand-written tables for (G, C) pairs with compact
// classic designs; everything else uses the complete design. Each table
// is verified by TestKnownDesignTables against the BIBD axioms.
var knownDesigns = map[[2]int][][]int{
	// Fano plane PG(2,2): b=7, r=3, λ=1.
	{7, 3}: {
		{0, 1, 3}, {1, 2, 4}, {2, 3, 5}, {3, 4, 6},
		{0, 4, 5}, {1, 5, 6}, {0, 2, 6},
	},
	// Affine plane AG(2,3) (the 9-point Steiner triple system):
	// b=12, r=4, λ=1.
	{9, 3}: {
		{0, 1, 2}, {3, 4, 5}, {6, 7, 8},
		{0, 3, 6}, {1, 4, 7}, {2, 5, 8},
		{0, 4, 8}, {1, 5, 6}, {2, 3, 7},
		{0, 5, 7}, {1, 3, 8}, {2, 4, 6},
	},
	// Projective plane PG(2,3): b=13, r=4, λ=1. Difference set
	// {0,1,3,9} mod 13.
	{13, 4}: designFromDifferenceSet(13, []int{0, 1, 3, 9}),
	// Projective plane PG(2,4): b=21, r=5, λ=1. Difference set
	// {0,1,6,8,18} mod 21.
	{21, 5}: designFromDifferenceSet(21, []int{0, 1, 6, 8, 18}),
}

// designFromDifferenceSet develops a perfect difference set modulo g
// into the g blocks of a cyclic design.
func designFromDifferenceSet(g int, base []int) [][]int {
	blocks := make([][]int, g)
	for s := 0; s < g; s++ {
		blk := make([]int, len(base))
		for i, v := range base {
			blk[i] = (v + s) % g
		}
		sortInts(blk)
		blocks[s] = blk
	}
	return blocks
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// NewDesign builds the block design used to decluster parity groups of
// size c over declustering groups of g drives: a classic table when one
// is known for (g, c), the complete design otherwise. Invalid
// geometries return a *DesignError.
func NewDesign(g, c int) (*Design, error) {
	if c < 2 {
		return nil, &DesignError{G: g, C: c, Reason: "parity group size must be >= 2"}
	}
	if g < c {
		return nil, &DesignError{G: g, C: c, Reason: "declustering group must be at least the parity group size"}
	}
	var blocks [][]int
	if tbl, ok := knownDesigns[[2]int{g, c}]; ok {
		blocks = tbl
	} else {
		n := binomial(g, c)
		if n > maxCompleteBlocks {
			return nil, &DesignError{G: g, C: c,
				Reason: fmt.Sprintf("no table and complete design has %d blocks (max %d)", n, maxCompleteBlocks)}
		}
		blocks = completeDesign(g, c)
	}
	b := len(blocks)
	d := &Design{
		G: g, C: c,
		Replication: b * c / g,
		Blocks:      blocks,
	}
	if g > 1 {
		d.Lambda = d.Replication * (c - 1) / (g - 1)
	}
	return d, nil
}

// completeDesign enumerates every C-subset of [0, G) in lexicographic
// order: the always-valid BIBD fallback.
func completeDesign(g, c int) [][]int {
	var out [][]int
	comb := make([]int, c)
	for i := range comb {
		comb[i] = i
	}
	for {
		out = append(out, append([]int(nil), comb...))
		// Advance to the next combination.
		i := c - 1
		for i >= 0 && comb[i] == g-c+i {
			i--
		}
		if i < 0 {
			return out
		}
		comb[i]++
		for j := i + 1; j < c; j++ {
			comb[j] = comb[j-1] + 1
		}
	}
}

// binomial returns binom(n, k), saturating at maxCompleteBlocks+1 to
// avoid overflow on absurd geometries.
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1
	for i := 1; i <= k; i++ {
		r = r * (n - k + i) / i
		if r > maxCompleteBlocks {
			return maxCompleteBlocks + 1
		}
	}
	return r
}
