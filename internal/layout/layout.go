// Package layout maps multimedia objects onto the disk farm the way the
// paper's schemes require.
//
// An object's data tracks are grouped into parity groups of C-1 tracks
// plus one parity track. The sequence of parity groups is allocated
// round-robin over the clusters: if the first group of an object lands on
// cluster h, group j lands on cluster (h+j) mod Nc (§2). Two placements
// are supported:
//
//   - DedicatedParity (Streaming RAID, Staggered-group, Non-clustered):
//     each cluster's last drive is its parity disk; the C-1 data tracks of
//     a group go to the cluster's C-1 data drives, one each (Figure 3).
//
//   - IntermixedParity (Improved-bandwidth, §4): every drive stores data;
//     a group's C-1 data tracks go to C-1 of the C drives of cluster i
//     (rotating which drive is skipped so load spreads evenly) and its
//     parity track goes to a drive of cluster i+1, also rotating
//     (Figure 8). A drive therefore belongs to two parity group families:
//     data for its own cluster and parity for the cluster to its left.
//
//   - DeclusteredParity (parity declustering via block designs): the farm
//     is divided into declustering groups of G drives, but parity groups
//     keep size C < G. Each group is mapped onto a C-drive block of a
//     balanced incomplete block design over the G drives (design.go),
//     cycling through the design's blocks and rotating which block member
//     holds parity. Rebuilding a failed drive then reads every survivor
//     of its declustering group at rate (C−1)/(G−1) instead of
//     saturating C−1 cluster mates. Built with NewDeclustered; the
//     layout's "cluster" is the G-drive declustering group.
//
// Observation 1 of the paper — never mix blocks of different objects in
// one parity group — is enforced structurally: groups are built from a
// single object's consecutive tracks, padding the final short group with
// zero tracks.
package layout

import (
	"errors"
	"fmt"
	"sort"

	"ftmm/internal/disk"
	"ftmm/internal/parity"
	"ftmm/internal/units"
)

// Placement selects the parity placement family.
type Placement int

const (
	// DedicatedParity reserves the last drive of each cluster for parity.
	DedicatedParity Placement = iota
	// IntermixedParity spreads parity of cluster i over cluster i+1.
	IntermixedParity
	// DeclusteredParity maps size-C parity groups onto block-design
	// subsets of a G-drive declustering group (NewDeclustered).
	DeclusteredParity
)

// String names the placement.
func (p Placement) String() string {
	switch p {
	case DedicatedParity:
		return "dedicated-parity"
	case IntermixedParity:
		return "intermixed-parity"
	case DeclusteredParity:
		return "declustered-parity"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Location addresses one track on one drive.
type Location struct {
	Disk  int
	Track int
}

// Group is one placed parity group: C-1 data track locations, in object
// order, plus the parity track location.
type Group struct {
	// Index is the group's sequence number within its object.
	Index int
	// Cluster is the cluster holding the data tracks.
	Cluster int
	// Data lists the data track locations; entries beyond the object's
	// last track are zero-padding tracks that still exist on disk.
	Data []Location
	// Parity is the parity track location.
	Parity Location
	// ValidTracks is how many of Data hold real object content (the rest
	// is padding in the object's final group).
	ValidTracks int
}

// Object is one placed object.
type Object struct {
	// ID names the object.
	ID string
	// Tracks is the number of real data tracks.
	Tracks int
	// Rate is the object's delivery bandwidth b0.
	Rate units.Rate
	// StartCluster is h, the cluster of group 0.
	StartCluster int
	// Groups are the object's parity groups in order.
	Groups []Group
}

// DataLocation returns where data track i of the object lives.
func (o *Object) DataLocation(i int) (Location, error) {
	if i < 0 || i >= o.Tracks {
		return Location{}, fmt.Errorf("layout: track %d out of range [0,%d)", i, o.Tracks)
	}
	g := i / len(o.Groups[0].Data)
	off := i % len(o.Groups[0].Data)
	return o.Groups[g].Data[off], nil
}

// GroupOf returns the parity group covering data track i and the track's
// offset within the group.
func (o *Object) GroupOf(i int) (*Group, int, error) {
	if i < 0 || i >= o.Tracks {
		return nil, 0, fmt.Errorf("layout: track %d out of range [0,%d)", i, o.Tracks)
	}
	width := len(o.Groups[0].Data)
	return &o.Groups[i/width], i % width, nil
}

// Layout owns track allocation across a farm-shaped topology and the
// placed objects.
type Layout struct {
	d, c          int
	tracksPerDisk int
	placement     Placement
	// groupC is the parity group size: equal to c for the clustered
	// placements, and the block size C < c (= G) under DeclusteredParity.
	groupC int
	// design is the block design mapping groups onto drive subsets;
	// non-nil only under DeclusteredParity.
	design *Design

	objects map[string]*Object
	// free[disk] is a stack of reusable track numbers; cursor[disk] is
	// the next never-used track.
	free   [][]int
	cursor []int
}

// New creates an empty layout for d drives in clusters of c, each with
// tracksPerDisk tracks.
func New(d, c, tracksPerDisk int, placement Placement) (*Layout, error) {
	if c < 2 {
		return nil, fmt.Errorf("layout: cluster size %d must be >= 2", c)
	}
	if d < c || d%c != 0 {
		return nil, fmt.Errorf("layout: %d drives is not a whole number of clusters of %d", d, c)
	}
	if placement == IntermixedParity && d/c < 2 {
		return nil, errors.New("layout: intermixed parity needs at least 2 clusters")
	}
	if placement == DeclusteredParity {
		return nil, errors.New("layout: declustered parity needs a parity group size; use NewDeclustered")
	}
	if tracksPerDisk < 1 {
		return nil, fmt.Errorf("layout: tracksPerDisk %d must be >= 1", tracksPerDisk)
	}
	return &Layout{
		d: d, c: c, tracksPerDisk: tracksPerDisk, placement: placement,
		groupC:  c,
		objects: make(map[string]*Object),
		free:    make([][]int, d),
		cursor:  make([]int, d),
	}, nil
}

// NewDeclustered creates an empty declustered-parity layout for d drives
// in declustering groups of g, placing parity groups of c tracks onto
// block-design subsets of each group. Invalid (g, c) geometries surface
// the design layer's *DesignError.
func NewDeclustered(d, g, c, tracksPerDisk int) (*Layout, error) {
	design, err := NewDesign(g, c)
	if err != nil {
		return nil, err
	}
	if d < g || d%g != 0 {
		return nil, fmt.Errorf("layout: %d drives is not a whole number of declustering groups of %d", d, g)
	}
	if tracksPerDisk < 1 {
		return nil, fmt.Errorf("layout: tracksPerDisk %d must be >= 1", tracksPerDisk)
	}
	return &Layout{
		d: d, c: g, tracksPerDisk: tracksPerDisk, placement: DeclusteredParity,
		groupC: c, design: design,
		objects: make(map[string]*Object),
		free:    make([][]int, d),
		cursor:  make([]int, d),
	}, nil
}

// ForFarm creates a layout matching an existing farm.
func ForFarm(f *disk.Farm, placement Placement) (*Layout, error) {
	return New(f.Size(), f.ClusterSize(), f.Params().TracksPerDisk(), placement)
}

// ForFarmDeclustered creates a declustered layout matching an existing
// farm whose clusters are the G-drive declustering groups, with parity
// groups of c tracks.
func ForFarmDeclustered(f *disk.Farm, c int) (*Layout, error) {
	return NewDeclustered(f.Size(), f.ClusterSize(), c, f.Params().TracksPerDisk())
}

// Clusters returns the cluster count.
func (l *Layout) Clusters() int { return l.d / l.c }

// ClusterSize returns C.
func (l *Layout) ClusterSize() int { return l.c }

// Placement returns the parity placement family.
func (l *Layout) Placement() Placement { return l.placement }

// GroupWidth returns the data tracks per parity group: C-1, where C is
// the parity group size (smaller than the declustering group under
// DeclusteredParity).
func (l *Layout) GroupWidth() int { return l.groupC - 1 }

// DeclusterGroup returns G, the drives per declustering group, or 0 for
// the clustered placements.
func (l *Layout) DeclusterGroup() int {
	if l.placement != DeclusteredParity {
		return 0
	}
	return l.c
}

// Design returns the block design behind a declustered layout (nil for
// the clustered placements).
func (l *Layout) Design() *Design { return l.design }

// Object returns a placed object by ID.
func (l *Layout) Object(id string) (*Object, bool) {
	o, ok := l.objects[id]
	return o, ok
}

// Objects returns the number of placed objects.
func (l *Layout) Objects() int { return len(l.objects) }

// FreeTracks reports how many unallocated tracks remain farm-wide.
func (l *Layout) FreeTracks() int {
	n := 0
	for d := 0; d < l.d; d++ {
		n += l.tracksPerDisk - l.cursor[d] + len(l.free[d])
	}
	return n
}

// allocTrack takes one track on the given drive.
func (l *Layout) allocTrack(d int) (int, error) {
	if n := len(l.free[d]); n > 0 {
		t := l.free[d][n-1]
		l.free[d] = l.free[d][:n-1]
		return t, nil
	}
	if l.cursor[d] >= l.tracksPerDisk {
		return 0, fmt.Errorf("layout: drive %d is full", d)
	}
	t := l.cursor[d]
	l.cursor[d]++
	return t, nil
}

// groupDrives returns, for group g on cluster cl, the drives holding its
// data tracks (in order) and the drive holding its parity track.
func (l *Layout) groupDrives(cl, g int) (data []int, par int) {
	base := cl * l.c
	switch l.placement {
	case DedicatedParity:
		data = make([]int, l.c-1)
		for i := range data {
			data[i] = base + i
		}
		return data, base + l.c - 1
	case IntermixedParity:
		// Skip one drive of the cluster, rotating per group, so every
		// drive carries data; parity goes to the next cluster, also
		// rotating over its drives.
		skip := g % l.c
		data = make([]int, 0, l.c-1)
		for i := 0; i < l.c; i++ {
			if i != skip {
				data = append(data, base+i)
			}
		}
		nextBase := ((cl + 1) % l.Clusters()) * l.c
		return data, nextBase + g%l.c
	case DeclusteredParity:
		// Map the group onto a block of the design, cycling through the
		// blocks so consecutive groups hit different drive subsets, and
		// rotate which block member holds parity so parity storage
		// spreads over the whole declustering group.
		b := len(l.design.Blocks)
		block := l.design.Blocks[g%b]
		pi := g % len(block)
		data = make([]int, 0, len(block)-1)
		for i, m := range block {
			if i == pi {
				continue
			}
			data = append(data, base+m)
		}
		return data, base + block[pi]
	default:
		return nil, -1
	}
}

// ParityHomeCluster returns the cluster whose drives hold the parity for
// data stored on cluster cl: cl itself under dedicated parity, cl+1 under
// intermixed parity.
func (l *Layout) ParityHomeCluster(cl int) int {
	if l.placement == IntermixedParity {
		return (cl + 1) % l.Clusters()
	}
	return cl
}

// AddObject places an object of dataTracks tracks starting at cluster
// startCluster. The final group is padded to full width. On allocation
// failure the layout is left unchanged.
func (l *Layout) AddObject(id string, dataTracks, startCluster int, rate units.Rate) (*Object, error) {
	if _, dup := l.objects[id]; dup {
		return nil, fmt.Errorf("layout: object %q already placed", id)
	}
	if dataTracks < 1 {
		return nil, fmt.Errorf("layout: object %q has %d tracks; need >= 1", id, dataTracks)
	}
	if startCluster < 0 || startCluster >= l.Clusters() {
		return nil, fmt.Errorf("layout: start cluster %d out of range [0,%d)", startCluster, l.Clusters())
	}
	width := l.GroupWidth()
	nGroups := (dataTracks + width - 1) / width

	// Snapshot allocation state for rollback.
	savedCursor := append([]int(nil), l.cursor...)
	savedFree := make([][]int, l.d)
	for i := range l.free {
		savedFree[i] = append([]int(nil), l.free[i]...)
	}
	rollback := func() {
		l.cursor = savedCursor
		l.free = savedFree
	}

	obj := &Object{ID: id, Tracks: dataTracks, Rate: rate, StartCluster: startCluster,
		Groups: make([]Group, 0, nGroups)}
	for g := 0; g < nGroups; g++ {
		cl := (startCluster + g) % l.Clusters()
		dataDrives, parDrive := l.groupDrives(cl, g)
		grp := Group{Index: g, Cluster: cl, Data: make([]Location, 0, width)}
		for _, d := range dataDrives {
			t, err := l.allocTrack(d)
			if err != nil {
				rollback()
				return nil, fmt.Errorf("layout: placing %q group %d: %w", id, g, err)
			}
			grp.Data = append(grp.Data, Location{Disk: d, Track: t})
		}
		pt, err := l.allocTrack(parDrive)
		if err != nil {
			rollback()
			return nil, fmt.Errorf("layout: placing %q group %d parity: %w", id, g, err)
		}
		grp.Parity = Location{Disk: parDrive, Track: pt}
		grp.ValidTracks = width
		if g == nGroups-1 {
			if rem := dataTracks % width; rem != 0 {
				grp.ValidTracks = rem
			}
		}
		obj.Groups = append(obj.Groups, grp)
	}
	l.objects[id] = obj
	return obj, nil
}

// RemoveObject frees an object's tracks (the purge of §1, making space
// for a newly requested object).
func (l *Layout) RemoveObject(id string) error {
	obj, ok := l.objects[id]
	if !ok {
		return fmt.Errorf("layout: object %q not placed", id)
	}
	for _, g := range obj.Groups {
		for _, loc := range g.Data {
			l.free[loc.Disk] = append(l.free[loc.Disk], loc.Track)
		}
		l.free[g.Parity.Disk] = append(l.free[g.Parity.Disk], g.Parity.Track)
	}
	delete(l.objects, id)
	return nil
}

// WriteObject materializes an object's content onto the farm: the byte
// stream is cut into tracks, the final group zero-padded, and every
// group's parity computed and written. content longer than the object's
// track count is rejected.
func WriteObject(f *disk.Farm, obj *Object, content []byte) error {
	trackSize := int(f.Params().TrackSize)
	if len(content) > obj.Tracks*trackSize {
		return fmt.Errorf("layout: content %d bytes exceeds object's %d tracks", len(content), obj.Tracks)
	}
	width := len(obj.Groups[0].Data)
	trackData := func(i int) []byte {
		buf := make([]byte, trackSize)
		start := i * trackSize
		if start < len(content) {
			copy(buf, content[start:])
		}
		return buf
	}
	for _, g := range obj.Groups {
		blocks := make([][]byte, 0, width)
		for off, loc := range g.Data {
			buf := trackData(g.Index*width + off)
			blocks = append(blocks, buf)
			drv, err := f.Drive(loc.Disk)
			if err != nil {
				return err
			}
			if err := drv.WriteTrack(loc.Track, buf); err != nil {
				return fmt.Errorf("layout: writing %q group %d track %d: %w", obj.ID, g.Index, off, err)
			}
		}
		p, err := parity.Encode(blocks)
		if err != nil {
			return err
		}
		drv, err := f.Drive(g.Parity.Disk)
		if err != nil {
			return err
		}
		if err := drv.WriteTrack(g.Parity.Track, p); err != nil {
			return fmt.Errorf("layout: writing %q group %d parity: %w", obj.ID, g.Index, err)
		}
	}
	return nil
}

// ReadDataTrack reads data track i of the object directly (no
// reconstruction); it fails if the holding drive has failed.
func ReadDataTrack(f *disk.Farm, obj *Object, i int) ([]byte, error) {
	loc, err := obj.DataLocation(i)
	if err != nil {
		return nil, err
	}
	drv, err := f.Drive(loc.Disk)
	if err != nil {
		return nil, err
	}
	return drv.ReadTrack(loc.Track)
}

// AllObjects returns every placed object, sorted by ID. The order is
// deterministic on purpose: consumers like the incremental rebuilder
// derive track-restore order from it, and the chaos harness requires
// bit-identical runs for a given seed.
func (l *Layout) AllObjects() []*Object {
	out := make([]*Object, 0, len(l.objects))
	for _, o := range l.objects {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RebuildDrive restores every track of a replaced drive from the
// surviving members of each parity group (the paper's rebuild mode,
// without going back to tertiary storage): data tracks are reconstructed
// via parity, parity tracks re-encoded from their data. The drive must be
// operational (already replaced) and all other drives intact.
func RebuildDrive(f *disk.Farm, l *Layout, driveID int) error {
	drv, err := f.Drive(driveID)
	if err != nil {
		return err
	}
	for _, obj := range l.AllObjects() {
		for gi := range obj.Groups {
			g := &obj.Groups[gi]
			// Data tracks on the failed drive.
			for off, loc := range g.Data {
				if loc.Disk != driveID {
					continue
				}
				survivors := make([][]byte, 0, len(g.Data))
				for j, other := range g.Data {
					if j == off {
						continue
					}
					od, err := f.Drive(other.Disk)
					if err != nil {
						return err
					}
					blk, err := od.ReadTrack(other.Track)
					if err != nil {
						return fmt.Errorf("layout: rebuild of drive %d needs drive %d: %w", driveID, other.Disk, err)
					}
					survivors = append(survivors, blk)
				}
				pd, err := f.Drive(g.Parity.Disk)
				if err != nil {
					return err
				}
				pblk, err := pd.ReadTrack(g.Parity.Track)
				if err != nil {
					return fmt.Errorf("layout: rebuild of drive %d needs parity drive %d: %w", driveID, g.Parity.Disk, err)
				}
				survivors = append(survivors, pblk)
				rec, err := parity.Reconstruct(survivors)
				if err != nil {
					return err
				}
				if err := drv.WriteTrack(loc.Track, rec); err != nil {
					return err
				}
			}
			// Parity track on the failed drive.
			if g.Parity.Disk == driveID {
				blocks := make([][]byte, 0, len(g.Data))
				for _, other := range g.Data {
					od, err := f.Drive(other.Disk)
					if err != nil {
						return err
					}
					blk, err := od.ReadTrack(other.Track)
					if err != nil {
						return fmt.Errorf("layout: rebuild of parity on drive %d needs drive %d: %w", driveID, other.Disk, err)
					}
					blocks = append(blocks, blk)
				}
				p, err := parity.Encode(blocks)
				if err != nil {
					return err
				}
				if err := drv.WriteTrack(g.Parity.Track, p); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ReconstructDataTrack rebuilds data track i of the object from the rest
// of its parity group, without touching the drive that holds it. This is
// the on-the-fly degraded-mode read of Observation 2.
func ReconstructDataTrack(f *disk.Farm, obj *Object, i int) ([]byte, error) {
	g, off, err := obj.GroupOf(i)
	if err != nil {
		return nil, err
	}
	survivors := make([][]byte, 0, len(g.Data))
	for j, loc := range g.Data {
		if j == off {
			continue
		}
		drv, err := f.Drive(loc.Disk)
		if err != nil {
			return nil, err
		}
		blk, err := drv.ReadTrack(loc.Track)
		if err != nil {
			return nil, fmt.Errorf("layout: reconstructing %q track %d needs drive %d: %w", obj.ID, i, loc.Disk, err)
		}
		survivors = append(survivors, blk)
	}
	drv, err := f.Drive(g.Parity.Disk)
	if err != nil {
		return nil, err
	}
	p, err := drv.ReadTrack(g.Parity.Track)
	if err != nil {
		return nil, fmt.Errorf("layout: reconstructing %q track %d needs parity drive %d: %w", obj.ID, i, g.Parity.Disk, err)
	}
	survivors = append(survivors, p)
	return parity.Reconstruct(survivors)
}

// WriteObjectTolerant is WriteObject for recovery scenarios: tracks whose
// home drive is failed are skipped (counted in skipped) instead of
// aborting the whole write, so a multi-drive catastrophe can be recovered
// drive by drive. Parity tracks are likewise skipped when their drive is
// down.
func WriteObjectTolerant(f *disk.Farm, obj *Object, content []byte) (skipped int, err error) {
	trackSize := int(f.Params().TrackSize)
	if len(content) > obj.Tracks*trackSize {
		return 0, fmt.Errorf("layout: content %d bytes exceeds object's %d tracks", len(content), obj.Tracks)
	}
	width := len(obj.Groups[0].Data)
	trackData := func(i int) []byte {
		buf := make([]byte, trackSize)
		start := i * trackSize
		if start < len(content) {
			copy(buf, content[start:])
		}
		return buf
	}
	for gi := range obj.Groups {
		g := &obj.Groups[gi]
		blocks := make([][]byte, 0, width)
		for off, loc := range g.Data {
			buf := trackData(g.Index*width + off)
			blocks = append(blocks, buf)
			drv, derr := f.Drive(loc.Disk)
			if derr != nil {
				return skipped, derr
			}
			if drv.State() != disk.Operational {
				skipped++
				continue
			}
			if werr := drv.WriteTrack(loc.Track, buf); werr != nil {
				return skipped, fmt.Errorf("layout: writing %q group %d track %d: %w", obj.ID, g.Index, off, werr)
			}
		}
		p, perr := parity.Encode(blocks)
		if perr != nil {
			return skipped, perr
		}
		drv, derr := f.Drive(g.Parity.Disk)
		if derr != nil {
			return skipped, derr
		}
		if drv.State() != disk.Operational {
			skipped++
			continue
		}
		if werr := drv.WriteTrack(g.Parity.Track, p); werr != nil {
			return skipped, fmt.Errorf("layout: writing %q group %d parity: %w", obj.ID, g.Index, werr)
		}
	}
	return skipped, nil
}
