package layout

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ftmm/internal/units"
)

// Property: across any sequence of adds and removes, no two live groups
// ever share a (disk, track) location, every group's drives are
// distinct, data stays inside the group's cluster, and parity sits in
// the placement's parity-home cluster.
func TestLayoutInvariantsUnderChurn(t *testing.T) {
	for _, placement := range []Placement{DedicatedParity, IntermixedParity} {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			l, err := New(15, 5, 40, placement)
			if err != nil {
				return false
			}
			live := map[string]bool{}
			next := 0
			for op := 0; op < 60; op++ {
				if len(live) > 0 && rng.Intn(3) == 0 {
					// Remove a random live object.
					for id := range live {
						if err := l.RemoveObject(id); err != nil {
							return false
						}
						delete(live, id)
						break
					}
					continue
				}
				id := string(rune('a'+next%26)) + string(rune('0'+next/26))
				next++
				tracks := 1 + rng.Intn(20)
				start := rng.Intn(l.Clusters())
				if _, err := l.AddObject(id, tracks, start, units.MPEG1); err != nil {
					// Full is fine; anything else means a bug, but we
					// cannot distinguish here — check invariants below
					// regardless.
					continue
				}
				live[id] = true
			}
			return checkInvariants(t, l)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("%v: %v", placement, err)
		}
	}
}

func checkInvariants(t *testing.T, l *Layout) bool {
	t.Helper()
	used := map[Location]string{}
	for _, obj := range l.AllObjects() {
		for gi := range obj.Groups {
			g := &obj.Groups[gi]
			drives := map[int]bool{}
			for _, loc := range g.Data {
				if owner, dup := used[loc]; dup {
					t.Logf("location %v shared by %s and %s", loc, owner, obj.ID)
					return false
				}
				used[loc] = obj.ID
				if drives[loc.Disk] {
					t.Logf("group %s/%d uses drive %d twice", obj.ID, gi, loc.Disk)
					return false
				}
				drives[loc.Disk] = true
				if loc.Disk/l.ClusterSize() != g.Cluster {
					t.Logf("group %s/%d data outside its cluster", obj.ID, gi)
					return false
				}
			}
			if owner, dup := used[g.Parity]; dup {
				t.Logf("parity %v shared by %s and %s", g.Parity, owner, obj.ID)
				return false
			}
			used[g.Parity] = obj.ID
			if drives[g.Parity.Disk] {
				t.Logf("group %s/%d parity on a data drive of the group", obj.ID, gi)
				return false
			}
			if g.Parity.Disk/l.ClusterSize() != l.ParityHomeCluster(g.Cluster) {
				t.Logf("group %s/%d parity outside its home cluster", obj.ID, gi)
				return false
			}
			// Round-robin group placement.
			want := (obj.StartCluster + gi) % l.Clusters()
			if g.Cluster != want {
				t.Logf("group %s/%d on cluster %d, want %d", obj.ID, gi, g.Cluster, want)
				return false
			}
		}
	}
	return true
}

// Property: FreeTracks is conserved: adds consume exactly
// groups*(width+1) tracks and removes return them.
func TestFreeTracksConservation(t *testing.T) {
	f := func(tracksRaw uint8) bool {
		l, err := New(10, 5, 100, DedicatedParity)
		if err != nil {
			return false
		}
		before := l.FreeTracks()
		tracks := int(tracksRaw%50) + 1
		obj, err := l.AddObject("x", tracks, 0, units.MPEG1)
		if err != nil {
			return true // full; nothing to check
		}
		groups := len(obj.Groups)
		if l.FreeTracks() != before-groups*5 {
			return false
		}
		if err := l.RemoveObject("x"); err != nil {
			return false
		}
		return l.FreeTracks() == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
