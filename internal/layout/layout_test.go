package layout

import (
	"bytes"
	"math/rand"
	"testing"

	"ftmm/internal/disk"
	"ftmm/internal/diskmodel"
	"ftmm/internal/units"
)

func smallParams(tracks int) diskmodel.Params {
	p := diskmodel.Table1()
	p.Capacity = units.ByteSize(tracks) * p.TrackSize
	return p
}

func newTestFarm(t *testing.T, d, c, tracks int) *disk.Farm {
	t.Helper()
	f, err := disk.NewFarm(d, c, smallParams(tracks))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	if _, err := New(10, 5, 100, DedicatedParity); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
	cases := []struct {
		d, c, tracks int
		p            Placement
	}{
		{11, 5, 100, DedicatedParity}, // ragged clusters
		{10, 1, 100, DedicatedParity}, // C too small
		{3, 5, 100, DedicatedParity},  // fewer than one cluster
		{10, 5, 0, DedicatedParity},   // no tracks
		{5, 5, 100, IntermixedParity}, // IB needs 2+ clusters
	}
	for i, c := range cases {
		if _, err := New(c.d, c.c, c.tracks, c.p); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDedicatedPlacementShape(t *testing.T) {
	l, err := New(10, 5, 100, DedicatedParity)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := l.AddObject("X", 8, 0, units.MPEG1)
	if err != nil {
		t.Fatal(err)
	}
	if len(obj.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(obj.Groups))
	}
	// Group 0 on cluster 0: data on drives 0..3, parity on 4 (Figure 3).
	g0 := obj.Groups[0]
	if g0.Cluster != 0 {
		t.Errorf("group 0 cluster = %d", g0.Cluster)
	}
	for i, loc := range g0.Data {
		if loc.Disk != i {
			t.Errorf("group 0 data %d on drive %d, want %d", i, loc.Disk, i)
		}
	}
	if g0.Parity.Disk != 4 {
		t.Errorf("group 0 parity on drive %d, want 4", g0.Parity.Disk)
	}
	// Group 1 round-robins to cluster 1 (drives 5..9).
	g1 := obj.Groups[1]
	if g1.Cluster != 1 {
		t.Errorf("group 1 cluster = %d", g1.Cluster)
	}
	if g1.Data[0].Disk != 5 || g1.Parity.Disk != 9 {
		t.Errorf("group 1 drives: data0=%d parity=%d", g1.Data[0].Disk, g1.Parity.Disk)
	}
	if g0.ValidTracks != 4 || g1.ValidTracks != 4 {
		t.Errorf("valid tracks = %d,%d", g0.ValidTracks, g1.ValidTracks)
	}
}

func TestPartialFinalGroup(t *testing.T) {
	l, _ := New(10, 5, 100, DedicatedParity)
	obj, err := l.AddObject("X", 6, 0, units.MPEG1)
	if err != nil {
		t.Fatal(err)
	}
	if len(obj.Groups) != 2 {
		t.Fatalf("groups = %d", len(obj.Groups))
	}
	if obj.Groups[1].ValidTracks != 2 {
		t.Fatalf("final group valid = %d, want 2", obj.Groups[1].ValidTracks)
	}
	// Padding tracks are still allocated on disk.
	if len(obj.Groups[1].Data) != 4 {
		t.Fatalf("final group width = %d, want 4", len(obj.Groups[1].Data))
	}
}

func TestIntermixedPlacementShape(t *testing.T) {
	l, err := New(10, 5, 100, IntermixedParity)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := l.AddObject("X", 12, 0, units.MPEG1)
	if err != nil {
		t.Fatal(err)
	}
	// Group 0 on cluster 0 skips drive 0: data on 1..4, parity on the
	// next cluster (drive 5).
	g0 := obj.Groups[0]
	if g0.Data[0].Disk != 1 || g0.Data[3].Disk != 4 {
		t.Errorf("group 0 data drives = %v", g0.Data)
	}
	if g0.Parity.Disk != 5 {
		t.Errorf("group 0 parity drive = %d, want 5 (next cluster)", g0.Parity.Disk)
	}
	// Group 1 on cluster 1 skips its second drive (index 1 => drive 6),
	// parity back on cluster 0 drive 1.
	g1 := obj.Groups[1]
	if g1.Cluster != 1 {
		t.Errorf("group 1 cluster = %d", g1.Cluster)
	}
	for _, loc := range g1.Data {
		if loc.Disk == 6 {
			t.Errorf("group 1 should skip drive 6, data = %v", g1.Data)
		}
	}
	if g1.Parity.Disk != 0*5+1 {
		t.Errorf("group 1 parity drive = %d, want 1", g1.Parity.Disk)
	}
	// Every drive in the farm ends up holding data for some group of a
	// long enough object (10 groups cover both clusters' rotations).
	long, err := l.AddObject("long", 40, 0, units.MPEG1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, g := range long.Groups {
		for _, loc := range g.Data {
			seen[loc.Disk] = true
		}
	}
	if len(seen) != 10 {
		t.Errorf("data touches %d drives, want all 10", len(seen))
	}
}

func TestParityHomeCluster(t *testing.T) {
	ded, _ := New(10, 5, 100, DedicatedParity)
	if ded.ParityHomeCluster(1) != 1 {
		t.Error("dedicated parity home should be same cluster")
	}
	ib, _ := New(10, 5, 100, IntermixedParity)
	if ib.ParityHomeCluster(0) != 1 || ib.ParityHomeCluster(1) != 0 {
		t.Error("intermixed parity home should be next cluster (mod Nc)")
	}
}

func TestAddObjectErrors(t *testing.T) {
	l, _ := New(10, 5, 10, DedicatedParity)
	if _, err := l.AddObject("X", 0, 0, units.MPEG1); err == nil {
		t.Error("zero-track object accepted")
	}
	if _, err := l.AddObject("X", 4, 5, units.MPEG1); err == nil {
		t.Error("bad start cluster accepted")
	}
	if _, err := l.AddObject("X", 4, 0, units.MPEG1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AddObject("X", 4, 0, units.MPEG1); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestCapacityExhaustionAndRollback(t *testing.T) {
	// 10 drives x 10 tracks = 100 tracks total; each 4-data-track group
	// consumes 5.
	l, _ := New(10, 5, 10, DedicatedParity)
	if _, err := l.AddObject("big", 72, 0, units.MPEG1); err != nil {
		t.Fatalf("18 groups should fit: %v", err)
	}
	free := l.FreeTracks()
	if free != 10 {
		t.Fatalf("free = %d, want 10", free)
	}
	// 3 more groups (15 tracks) cannot fit; allocation must roll back.
	if _, err := l.AddObject("over", 12, 0, units.MPEG1); err == nil {
		t.Fatal("overflow accepted")
	}
	if l.FreeTracks() != free {
		t.Fatalf("failed AddObject leaked tracks: free = %d, want %d", l.FreeTracks(), free)
	}
	if _, ok := l.Object("over"); ok {
		t.Fatal("failed object registered")
	}
}

func TestRemoveObjectReusesTracks(t *testing.T) {
	l, _ := New(10, 5, 10, DedicatedParity)
	if _, err := l.AddObject("a", 40, 0, units.MPEG1); err != nil {
		t.Fatal(err)
	}
	if err := l.RemoveObject("a"); err != nil {
		t.Fatal(err)
	}
	if err := l.RemoveObject("a"); err == nil {
		t.Error("double remove accepted")
	}
	if l.FreeTracks() != 100 {
		t.Fatalf("free after remove = %d, want 100", l.FreeTracks())
	}
	if _, err := l.AddObject("b", 72, 0, units.MPEG1); err != nil {
		t.Fatalf("reuse failed: %v", err)
	}
	if l.Objects() != 1 {
		t.Fatalf("objects = %d", l.Objects())
	}
}

func TestDataLocationAndGroupOf(t *testing.T) {
	l, _ := New(10, 5, 100, DedicatedParity)
	obj, _ := l.AddObject("X", 10, 1, units.MPEG1)
	// Track 0 is group 0 (cluster 1), offset 0.
	g, off, err := obj.GroupOf(0)
	if err != nil || g.Index != 0 || off != 0 || g.Cluster != 1 {
		t.Fatalf("GroupOf(0) = %v,%d,%v", g, off, err)
	}
	// Track 5 is group 1 (cluster 0, wrapped), offset 1.
	g, off, err = obj.GroupOf(5)
	if err != nil || g.Index != 1 || off != 1 || g.Cluster != 0 {
		t.Fatalf("GroupOf(5) = %+v,%d,%v", g, off, err)
	}
	if _, _, err := obj.GroupOf(10); err == nil {
		t.Error("out-of-range GroupOf accepted")
	}
	loc, err := obj.DataLocation(5)
	if err != nil || loc != g.Data[1] {
		t.Fatalf("DataLocation(5) = %v,%v", loc, err)
	}
	if _, err := obj.DataLocation(-1); err == nil {
		t.Error("negative DataLocation accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, placement := range []Placement{DedicatedParity, IntermixedParity} {
		f := newTestFarm(t, 10, 5, 50)
		l, err := ForFarm(f, placement)
		if err != nil {
			t.Fatal(err)
		}
		trackSize := int(f.Params().TrackSize)
		content := make([]byte, 9*trackSize+123) // 10 tracks, last partial
		rand.New(rand.NewSource(42)).Read(content)
		obj, err := l.AddObject("movie", 10, 0, units.MPEG1)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteObject(f, obj, content); err != nil {
			t.Fatal(err)
		}
		var got []byte
		for i := 0; i < obj.Tracks; i++ {
			blk, err := ReadDataTrack(f, obj, i)
			if err != nil {
				t.Fatalf("%v: read track %d: %v", placement, i, err)
			}
			got = append(got, blk...)
		}
		if !bytes.Equal(got[:len(content)], content) {
			t.Fatalf("%v: round trip differs", placement)
		}
		for _, b := range got[len(content):] {
			if b != 0 {
				t.Fatalf("%v: padding not zeroed", placement)
			}
		}
	}
}

func TestWriteObjectTooLong(t *testing.T) {
	f := newTestFarm(t, 10, 5, 50)
	l, _ := ForFarm(f, DedicatedParity)
	obj, _ := l.AddObject("movie", 4, 0, units.MPEG1)
	tooLong := make([]byte, 5*int(f.Params().TrackSize))
	if err := WriteObject(f, obj, tooLong); err == nil {
		t.Fatal("oversized content accepted")
	}
}

// The core fault-tolerance property, for both placements: fail any single
// drive, and every track of every object is still reconstructible
// bit-for-bit from the survivors.
func TestReconstructUnderAnySingleFailure(t *testing.T) {
	for _, placement := range []Placement{DedicatedParity, IntermixedParity} {
		f := newTestFarm(t, 10, 5, 60)
		l, _ := ForFarm(f, placement)
		trackSize := int(f.Params().TrackSize)
		rng := rand.New(rand.NewSource(7))

		contents := map[string][]byte{}
		for _, id := range []string{"X", "Y", "Z"} {
			content := make([]byte, 12*trackSize)
			rng.Read(content)
			contents[id] = content
			obj, err := l.AddObject(id, 12, rng.Intn(l.Clusters()), units.MPEG1)
			if err != nil {
				t.Fatal(err)
			}
			if err := WriteObject(f, obj, content); err != nil {
				t.Fatal(err)
			}
		}

		for failed := 0; failed < f.Size(); failed++ {
			drv, _ := f.Drive(failed)
			if err := drv.Fail(); err != nil {
				t.Fatal(err)
			}
			for id, content := range contents {
				obj, _ := l.Object(id)
				for i := 0; i < obj.Tracks; i++ {
					loc, _ := obj.DataLocation(i)
					var blk []byte
					var err error
					if loc.Disk == failed {
						blk, err = ReconstructDataTrack(f, obj, i)
					} else {
						blk, err = ReadDataTrack(f, obj, i)
					}
					if err != nil {
						t.Fatalf("%v: drive %d failed, object %s track %d: %v", placement, failed, id, i, err)
					}
					want := content[i*trackSize : (i+1)*trackSize]
					if !bytes.Equal(blk, want) {
						t.Fatalf("%v: drive %d failed, object %s track %d content differs", placement, failed, id, i)
					}
				}
			}
			if err := drv.Replace(); err != nil {
				t.Fatal(err)
			}
			// Rewrite everything the blank replacement lost.
			for id, content := range contents {
				obj, _ := l.Object(id)
				if err := WriteObject(f, obj, content); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// With two failures in one parity group, reconstruction must fail
// (catastrophic failure), not return wrong data.
func TestReconstructDoubleFailureFails(t *testing.T) {
	f := newTestFarm(t, 10, 5, 60)
	l, _ := ForFarm(f, DedicatedParity)
	content := make([]byte, 8*int(f.Params().TrackSize))
	obj, _ := l.AddObject("X", 8, 0, units.MPEG1)
	if err := WriteObject(f, obj, content); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{0, 1} { // two data drives of cluster 0
		drv, _ := f.Drive(id)
		if err := drv.Fail(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ReconstructDataTrack(f, obj, 0); err == nil {
		t.Fatal("double failure reconstruction succeeded")
	}
}

// RebuildDrive must restore a replaced drive's exact contents — data and
// parity tracks — for both placements.
func TestRebuildDrive(t *testing.T) {
	for _, placement := range []Placement{DedicatedParity, IntermixedParity} {
		f := newTestFarm(t, 10, 5, 60)
		l, _ := ForFarm(f, placement)
		trackSize := int(f.Params().TrackSize)
		contents := map[string][]byte{}
		for i, id := range []string{"X", "Y"} {
			content := make([]byte, 12*trackSize)
			rand.New(rand.NewSource(int64(i))).Read(content)
			contents[id] = content
			obj, err := l.AddObject(id, 12, i, units.MPEG1)
			if err != nil {
				t.Fatal(err)
			}
			if err := WriteObject(f, obj, content); err != nil {
				t.Fatal(err)
			}
		}
		for _, victim := range []int{0, 4, 7} { // data, parity, other-cluster
			drv, _ := f.Drive(victim)
			if err := drv.Fail(); err != nil {
				t.Fatal(err)
			}
			if err := drv.Replace(); err != nil {
				t.Fatal(err)
			}
			if err := RebuildDrive(f, l, victim); err != nil {
				t.Fatalf("%v: rebuild drive %d: %v", placement, victim, err)
			}
			// Everything reads back directly, bit for bit, and parity
			// still verifies (reconstruction works for every track).
			for id, content := range contents {
				obj, _ := l.Object(id)
				for i := 0; i < obj.Tracks; i++ {
					blk, err := ReadDataTrack(f, obj, i)
					if err != nil {
						t.Fatalf("%v: after rebuild of %d: read %s/%d: %v", placement, victim, id, i, err)
					}
					if !bytes.Equal(blk, content[i*trackSize:(i+1)*trackSize]) {
						t.Fatalf("%v: after rebuild of %d: %s/%d differs", placement, victim, id, i)
					}
					rec, err := ReconstructDataTrack(f, obj, i)
					if err != nil || !bytes.Equal(rec, blk) {
						t.Fatalf("%v: parity inconsistent after rebuild of %d (%s/%d): %v", placement, victim, id, i, err)
					}
				}
			}
		}
	}
}

func TestRebuildDriveErrors(t *testing.T) {
	f := newTestFarm(t, 10, 5, 60)
	l, _ := ForFarm(f, DedicatedParity)
	obj, _ := l.AddObject("X", 8, 0, units.MPEG1)
	if err := WriteObject(f, obj, make([]byte, 8*int(f.Params().TrackSize))); err != nil {
		t.Fatal(err)
	}
	if err := RebuildDrive(f, l, 99); err == nil {
		t.Error("bad drive id accepted")
	}
	// Rebuilding while a second drive in the group is down must fail.
	d0, _ := f.Drive(0)
	if err := d0.Fail(); err != nil {
		t.Fatal(err)
	}
	if err := d0.Replace(); err != nil {
		t.Fatal(err)
	}
	d1, _ := f.Drive(1)
	if err := d1.Fail(); err != nil {
		t.Fatal(err)
	}
	if err := RebuildDrive(f, l, 0); err == nil {
		t.Error("rebuild with a second failure succeeded")
	}
}

func TestPlacementString(t *testing.T) {
	if DedicatedParity.String() != "dedicated-parity" || IntermixedParity.String() != "intermixed-parity" {
		t.Error("placement names")
	}
	if Placement(9).String() != "Placement(9)" {
		t.Error("unknown placement name")
	}
}

// Intermixed placement must balance parity across the next cluster's
// drives rather than pile it on one.
func TestIntermixedParitySpread(t *testing.T) {
	l, _ := New(10, 5, 200, IntermixedParity)
	obj, err := l.AddObject("X", 4*20, 0, units.MPEG1) // 20 groups
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, g := range obj.Groups {
		counts[g.Parity.Disk]++
	}
	for d, n := range counts {
		if n > 3 {
			t.Errorf("drive %d holds %d parity tracks; expected spread", d, n)
		}
	}
	if len(counts) < 8 {
		t.Errorf("parity on only %d drives", len(counts))
	}
}
