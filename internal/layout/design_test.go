package layout

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ftmm/internal/units"
)

// checkBIBD verifies the block design axioms: every block has exactly C
// distinct in-range drives, every drive appears in the same number of
// blocks (r), and every drive pair co-occurs in exactly λ blocks with
// λ = r(C−1)/(G−1).
func checkBIBD(t *testing.T, d *Design) {
	t.Helper()
	perDrive := make([]int, d.G)
	pair := make(map[[2]int]int)
	for bi, blk := range d.Blocks {
		if len(blk) != d.C {
			t.Fatalf("block %d has %d drives, want C=%d", bi, len(blk), d.C)
		}
		seen := map[int]bool{}
		for _, m := range blk {
			if m < 0 || m >= d.G {
				t.Fatalf("block %d member %d out of range [0,%d)", bi, m, d.G)
			}
			if seen[m] {
				t.Fatalf("block %d repeats drive %d", bi, m)
			}
			seen[m] = true
			perDrive[m]++
		}
		for i := 0; i < len(blk); i++ {
			for j := i + 1; j < len(blk); j++ {
				a, b := blk[i], blk[j]
				if a > b {
					a, b = b, a
				}
				pair[[2]int{a, b}]++
			}
		}
	}
	for drv, n := range perDrive {
		if n != d.Replication {
			t.Errorf("drive %d appears in %d blocks, want r=%d", drv, n, d.Replication)
		}
	}
	wantLambda := d.Replication * (d.C - 1) / (d.G - 1)
	if d.Lambda != wantLambda {
		t.Errorf("Lambda=%d, want r(C-1)/(G-1)=%d", d.Lambda, wantLambda)
	}
	for a := 0; a < d.G; a++ {
		for b := a + 1; b < d.G; b++ {
			if got := pair[[2]int{a, b}]; got != d.Lambda {
				t.Errorf("pair (%d,%d) co-occurs in %d blocks, want λ=%d", a, b, got, d.Lambda)
			}
		}
	}
}

func TestKnownDesignTables(t *testing.T) {
	for _, gc := range [][2]int{{7, 3}, {9, 3}, {13, 4}, {21, 5}} {
		d, err := NewDesign(gc[0], gc[1])
		if err != nil {
			t.Fatalf("NewDesign(%d,%d): %v", gc[0], gc[1], err)
		}
		checkBIBD(t, d)
	}
}

func TestCompleteDesignFallback(t *testing.T) {
	// None of these pairs has a table; all must satisfy the BIBD axioms
	// via the complete design, with λ = binom(G−2, C−2).
	for _, gc := range [][2]int{{5, 2}, {5, 3}, {6, 3}, {8, 4}, {9, 4}, {4, 4}} {
		d, err := NewDesign(gc[0], gc[1])
		if err != nil {
			t.Fatalf("NewDesign(%d,%d): %v", gc[0], gc[1], err)
		}
		if want := binomial(gc[0], gc[1]); len(d.Blocks) != want {
			t.Errorf("(%d,%d): %d blocks, want binom=%d", gc[0], gc[1], len(d.Blocks), want)
		}
		checkBIBD(t, d)
	}
}

func TestNewDesignRejectsInvalidGeometry(t *testing.T) {
	cases := []struct{ g, c int }{
		{7, 1},   // parity group too small
		{3, 4},   // declustering group smaller than parity group
		{40, 15}, // complete design would explode
	}
	for _, tc := range cases {
		_, err := NewDesign(tc.g, tc.c)
		if err == nil {
			t.Fatalf("NewDesign(%d,%d): want error, got nil", tc.g, tc.c)
		}
		var de *DesignError
		if !errors.As(err, &de) {
			t.Errorf("NewDesign(%d,%d): error %v is not a *DesignError", tc.g, tc.c, err)
		} else if de.G != tc.g || de.C != tc.c {
			t.Errorf("DesignError carries (%d,%d), want (%d,%d)", de.G, de.C, tc.g, tc.c)
		}
	}
}

func TestNewRejectsDeclusteredPlacement(t *testing.T) {
	if _, err := New(18, 9, 40, DeclusteredParity); err == nil {
		t.Fatal("New with DeclusteredParity must error (needs NewDeclustered)")
	}
}

// The churn invariants of property_test.go hold for declustered layouts
// too: no shared locations, distinct drives per group, data and parity
// inside the declustering group, round-robin group placement.
func TestDeclusteredLayoutInvariantsUnderChurn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l, err := NewDeclustered(18, 9, 3, 40)
		if err != nil {
			return false
		}
		if l.GroupWidth() != 2 || l.DeclusterGroup() != 9 || l.Clusters() != 2 {
			return false
		}
		live := map[string]bool{}
		next := 0
		for op := 0; op < 60; op++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				for id := range live {
					if err := l.RemoveObject(id); err != nil {
						return false
					}
					delete(live, id)
					break
				}
				continue
			}
			id := string(rune('a'+next%26)) + string(rune('0'+next/26))
			next++
			tracks := 1 + rng.Intn(20)
			start := rng.Intn(l.Clusters())
			if _, err := l.AddObject(id, tracks, start, units.MPEG1); err != nil {
				continue
			}
			live[id] = true
		}
		return checkInvariants(t, l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Consecutive groups of one object cycle through the design's blocks,
// and parity duty rotates over each block's members.
func TestDeclusteredGroupMapping(t *testing.T) {
	l, err := NewDeclustered(9, 9, 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	b := len(l.Design().Blocks)
	obj, err := l.AddObject("x", 2*b*2, 0, units.MPEG1) // two full passes over the blocks
	if err != nil {
		t.Fatal(err)
	}
	parityDuty := make(map[int]int)
	for gi := range obj.Groups {
		g := &obj.Groups[gi]
		want := l.Design().Blocks[gi%b]
		members := map[int]bool{g.Parity.Disk: true}
		for _, loc := range g.Data {
			members[loc.Disk] = true
		}
		for _, m := range want {
			if !members[m] {
				t.Fatalf("group %d misses block member %d (block %v)", gi, m, want)
			}
		}
		if len(members) != len(want) {
			t.Fatalf("group %d spans %d drives, want %d", gi, len(members), len(want))
		}
		parityDuty[g.Parity.Disk]++
	}
	if len(parityDuty) < 2 {
		t.Errorf("parity never rotates: duty map %v", parityDuty)
	}
}
