// Package report renders the experiment outputs — tables matching the
// paper's Tables 2-3 and text series matching its figures — as aligned
// ASCII, so the bench harness prints the same rows the paper reports.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named curve: y values over shared x values.
type Series struct {
	Name string
	Y    []float64
}

// RenderSeries prints curves as one aligned column per series, the way
// the Figure 9 data reads.
func RenderSeries(title, xLabel string, xs []float64, series []Series, prec int) string {
	tbl := NewTable(title, append([]string{xLabel}, names(series)...)...)
	for i, x := range xs {
		row := []string{trimFloat(x, prec)}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, trimFloat(s.Y[i], prec))
			} else {
				row = append(row, "")
			}
		}
		tbl.AddRow(row...)
	}
	return tbl.String()
}

func names(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}

func trimFloat(v float64, prec int) string {
	s := fmt.Sprintf("%.*f", prec, v)
	if prec == 0 {
		return s
	}
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

// Pct formats a fraction as a percentage like the paper's tables
// ("20.0%").
func Pct(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }

// Years formats a year count like the paper ("25684.9").
func Years(y float64) string { return fmt.Sprintf("%.1f", y) }

// Dollars formats a cost ("$173400").
func Dollars(d float64) string { return fmt.Sprintf("$%.0f", d) }

// Int formats an integer cell.
func Int(n int) string { return fmt.Sprintf("%d", n) }

// Float formats with the given precision, trimming trailing zeros.
func Float(v float64, prec int) string { return trimFloat(v, prec) }

// CSV renders the table as comma-separated values (header row first,
// cells with commas or quotes quoted), for piping experiment output into
// plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
