package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Results", "Metric", "SR", "IB")
	tbl.AddRow("Streams", "1041", "1263")
	tbl.AddRow("MTTF", "25684.9")
	out := tbl.String()
	if !strings.HasPrefix(out, "Results\n") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5", len(lines))
	}
	// Header, separator, rows all share the same width.
	if len(lines[1]) != len(lines[2]) {
		t.Error("separator misaligned")
	}
	if !strings.Contains(lines[3], "1041") || !strings.Contains(lines[3], "1263") {
		t.Errorf("row content: %q", lines[3])
	}
	// Short row padded, not panicking.
	if !strings.Contains(lines[4], "25684.9") {
		t.Errorf("padded row: %q", lines[4])
	}
	if tbl.Rows() != 2 {
		t.Error("Rows")
	}
}

func TestTableNoTitle(t *testing.T) {
	tbl := NewTable("", "A")
	tbl.AddRow("x")
	if strings.HasPrefix(tbl.String(), "\n") {
		t.Error("empty title should not emit a blank line")
	}
}

func TestRenderSeries(t *testing.T) {
	out := RenderSeries("Fig 9(b)", "C", []float64{2, 3},
		[]Series{{Name: "SR", Y: []float64{1208.3, 1250}}, {Name: "IB", Y: []float64{2356.2}}}, 1)
	if !strings.Contains(out, "SR") || !strings.Contains(out, "IB") {
		t.Error("missing series names")
	}
	if !strings.Contains(out, "1208.3") {
		t.Error("missing value")
	}
	// The short IB series leaves a blank cell rather than panicking.
	if !strings.Contains(out, "2356.2") {
		t.Error("missing IB value")
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct{ got, want string }{
		{Pct(0.2), "20.0%"},
		{Pct(1.0 / 7.0), "14.3%"},
		{Years(25684.93), "25684.9"},
		{Dollars(173400.4), "$173400"},
		{Int(42), "42"},
		{Float(1.500, 2), "1.5"},
		{Float(2, 3), "2"},
		{Float(2.125, 2), "2.12"}, // round-half-to-even
		{Float(3, 0), "3"},
	}
	for i, c := range cases {
		if c.got != c.want {
			t.Errorf("case %d: got %q want %q", i, c.got, c.want)
		}
	}
}

func TestCSV(t *testing.T) {
	tbl := NewTable("ignored title", "A", "B")
	tbl.AddRow("plain", "with,comma")
	tbl.AddRow(`with"quote`, "multi\nline")
	got := tbl.CSV()
	want := "A,B\nplain,\"with,comma\"\n\"with\"\"quote\",\"multi\nline\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
