package gss_test

import (
	"fmt"

	"ftmm/internal/diskgeom"
	"ftmm/internal/gss"
	"ftmm/internal/units"
)

// Find the buffer-minimizing feasible grouping for one disk serving
// eight MPEG-1 streams.
func ExampleParams_MinBufferFeasibleGroups() {
	p := gss.Params{
		Geometry:  diskgeom.Default(),
		TrackSize: 50 * units.KB,
		Rate:      units.MPEG1,
		Streams:   8,
		Groups:    1,
	}
	g, err := p.MinBufferFeasibleGroups()
	if err != nil {
		panic(err)
	}
	p.Groups = g
	fmt.Printf("groups: %d\n", g)
	fmt.Printf("buffers: %.0f tracks\n", p.BufferTracks())
	// Output:
	// groups: 2
	// buffers: 12 tracks
}
