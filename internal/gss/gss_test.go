package gss

import (
	"math"
	"testing"
	"time"

	"ftmm/internal/diskgeom"
	"ftmm/internal/units"
)

func testParams(n, g int) Params {
	return Params{
		Geometry:  diskgeom.Default(),
		TrackSize: 50 * units.KB,
		Rate:      units.MPEG1,
		Streams:   n,
		Groups:    g,
	}
}

func TestValidate(t *testing.T) {
	if err := testParams(10, 2).Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Geometry: diskgeom.Default(), TrackSize: 0, Rate: units.MPEG1, Streams: 5, Groups: 1},
		{Geometry: diskgeom.Default(), TrackSize: units.KB, Rate: 0, Streams: 5, Groups: 1},
		{Geometry: diskgeom.Default(), TrackSize: units.KB, Rate: units.MPEG1, Streams: 0, Groups: 1},
		{Geometry: diskgeom.Default(), TrackSize: units.KB, Rate: units.MPEG1, Streams: 5, Groups: 6},
		{Geometry: diskgeom.Default(), TrackSize: units.KB, Rate: units.MPEG1, Streams: 5, Groups: 0},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestCycleAndSubcycle(t *testing.T) {
	p := testParams(12, 4)
	// T = 50KB / 0.1875 MB/s = 266.7 ms.
	if d := p.CycleTime() - 266666*time.Microsecond; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("CycleTime = %v", p.CycleTime())
	}
	if p.SubcycleTime() != p.CycleTime()/4 {
		t.Errorf("SubcycleTime = %v", p.SubcycleTime())
	}
}

// The GSS tradeoff: more groups => less buffer, but tighter subcycle
// deadlines => fewer feasible streams.
func TestGroupingTradeoff(t *testing.T) {
	// Buffer decreases monotonically with g.
	prev := math.Inf(1)
	for g := 1; g <= 12; g++ {
		p := testParams(12, g)
		b := p.BufferTracks()
		if b >= prev {
			t.Errorf("g=%d: buffer %v not decreasing", g, b)
		}
		prev = b
	}
	// SCAN needs 2 tracks/stream, full grouping approaches 1+1/N.
	if b := testParams(12, 1).BufferTracks(); b != 24 {
		t.Errorf("g=1 buffer = %v, want 24", b)
	}
	if b := testParams(12, 12).BufferTracks(); math.Abs(b-13) > 1e-9 {
		t.Errorf("g=12 buffer = %v, want 13", b)
	}

	// Capacity decreases with g at a fixed stream count: find the max N
	// feasible at g=1 vs forcing round-robin (g=N).
	maxAny := testParams(1, 1).MaxStreams(100)
	if maxAny < 8 {
		t.Fatalf("max streams under GSS = %d; expected a healthy disk to serve several", maxAny)
	}
	// At the capacity point, fully-grouped schedules are infeasible.
	full := testParams(maxAny, maxAny)
	if full.Feasible() {
		t.Errorf("g=N feasible at the g-optimal capacity %d; expected seek costs to bite", maxAny)
	}
	one := testParams(maxAny, 1)
	if !one.Feasible() {
		t.Errorf("g=1 infeasible at its own capacity %d", maxAny)
	}
}

func TestMinBufferFeasibleGroups(t *testing.T) {
	p := testParams(8, 1)
	g, err := p.MinBufferFeasibleGroups()
	if err != nil {
		t.Fatal(err)
	}
	if g < 1 || g > 8 {
		t.Fatalf("g = %d out of range", g)
	}
	// It is the largest feasible g: g+1 (if <= N) must be infeasible or
	// out of range.
	if g < 8 {
		q := testParams(8, g+1)
		if q.Feasible() {
			t.Fatalf("g=%d feasible but MinBufferFeasibleGroups said %d", g+1, g)
		}
	}
	// An absurd load is infeasible at every grouping.
	over := testParams(200, 1)
	over.Streams = 200
	if _, err := over.MinBufferFeasibleGroups(); err == nil {
		t.Error("200 streams on one disk accepted")
	}
}

// The simulator confirms the closed forms: feasible configurations meet
// every subcycle deadline, and the max inter-read gap stays within the
// (1 + 1/g) cycles the buffer accounting charges.
func TestSimulateMatchesModel(t *testing.T) {
	for _, cfg := range []struct{ n, g int }{{8, 1}, {8, 2}, {6, 3}} {
		g := cfg.g
		p := testParams(cfg.n, g)
		if !p.Feasible() {
			t.Fatalf("n=%d g=%d: expected feasible", cfg.n, g)
		}
		res, err := p.Simulate(40, int64(g))
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxLateness > 0 {
			t.Errorf("g=%d: feasible schedule missed deadlines by %v", g, res.MaxLateness)
		}
		bound := time.Duration(float64(p.CycleTime()) * (1 + 1/float64(g)))
		if res.MaxGap > bound {
			t.Errorf("g=%d: max inter-read gap %v exceeds buffer bound %v", g, res.MaxGap, bound)
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	p := testParams(4, 1)
	if _, err := p.Simulate(0, 1); err == nil {
		t.Error("zero cycles accepted")
	}
	bad := p
	bad.Streams = 0
	if _, err := bad.Simulate(10, 1); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestBufferRatio(t *testing.T) {
	if BufferRatio(1) != 1 {
		t.Error("g=1 ratio should be 1")
	}
	if r := BufferRatio(4); math.Abs(r-0.625) > 1e-12 {
		t.Errorf("g=4 ratio = %v", r)
	}
	if !math.IsNaN(BufferRatio(0)) {
		t.Error("g=0 should be NaN")
	}
}

func TestWorstSweepMonotone(t *testing.T) {
	p := testParams(10, 1)
	prev := time.Duration(0)
	for n := 1; n <= 20; n++ {
		w := p.WorstSweepTime(n)
		if w <= prev {
			t.Fatalf("WorstSweepTime(%d) = %v not increasing", n, w)
		}
		prev = w
	}
	if p.WorstSweepTime(0) != 0 {
		t.Error("empty sweep should be free")
	}
}
