// Package gss implements Grouped Sweeping Scheduling — the paper's
// reference [3] (Chen, Kandlur, Yu, ACM Multimedia '93) — which the §2
// discussion of "tradeoffs between improving bandwidth utilization by
// amortizing seeks over a greater number of streams and increases in
// buffer space" leans on.
//
// GSS partitions the N streams served by one disk into g groups. Each
// cycle of length T is divided into g subcycles; during its subcycle a
// group's N/g requests are served in one elevator sweep. The knobs:
//
//   - g = 1 is pure SCAN: every stream served in one sweep per cycle —
//     best seek amortization, but a stream's next read can land almost a
//     whole cycle after its previous one, so each stream needs ~2 cycles
//     of buffering.
//   - g = N is round-robin FCFS: fixed per-stream order, worst seek cost,
//     but a stream's reads are exactly one cycle apart, needing minimal
//     buffering.
//
// The sweet spot minimizes buffer space subject to the schedule being
// feasible (all g sweeps fit in T). This package provides the closed-form
// feasibility/buffer model and a discrete simulator over the diskgeom
// substrate to validate it.
package gss

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"ftmm/internal/diskgeom"
	"ftmm/internal/units"
)

// Params describes one disk serving N identical-rate streams under GSS.
type Params struct {
	// Geometry is the drive's mechanical model.
	Geometry diskgeom.Geometry
	// TrackSize is the retrieval unit B.
	TrackSize units.ByteSize
	// Rate is the per-stream consumption bandwidth b0.
	Rate units.Rate
	// Streams is N, the streams served by this disk.
	Streams int
	// Groups is g, the number of sweep groups (1..N).
	Groups int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if err := p.Geometry.Validate(); err != nil {
		return err
	}
	switch {
	case p.TrackSize <= 0:
		return errors.New("gss: track size must be positive")
	case p.Rate <= 0:
		return errors.New("gss: rate must be positive")
	case p.Streams < 1:
		return errors.New("gss: need at least one stream")
	case p.Groups < 1 || p.Groups > p.Streams:
		return fmt.Errorf("gss: groups %d must be in [1,%d]", p.Groups, p.Streams)
	}
	return nil
}

// CycleTime is T = B/b0: each stream consumes one track per cycle.
func (p Params) CycleTime() time.Duration {
	secs := float64(p.TrackSize) / float64(p.Rate)
	return time.Duration(secs * float64(time.Second))
}

// SubcycleTime is T/g.
func (p Params) SubcycleTime() time.Duration {
	return p.CycleTime() / time.Duration(p.Groups)
}

// groupSize returns the size of group i under an even split.
func (p Params) groupSize(i int) int {
	base := p.Streams / p.Groups
	if i < p.Streams%p.Groups {
		return base + 1
	}
	return base
}

// WorstSweepTime bounds one subcycle's sweep: a full-stroke positioning
// seek plus, for the group's n requests, n rotations and n seeks of an
// even 1/n split of the stroke (the worst case for a concave seek
// curve).
func (p Params) WorstSweepTime(n int) time.Duration {
	if n == 0 {
		return 0
	}
	g := p.Geometry
	span := g.Cylinders - 1
	per := span / n
	if per < 1 {
		per = 1
	}
	perSeek := g.SeekTime(0, per)
	return g.SeekMax + time.Duration(n)*(g.Rotation+perSeek)
}

// Feasible reports whether every subcycle's worst-case sweep fits in
// T/g.
func (p Params) Feasible() bool {
	if p.Validate() != nil {
		return false
	}
	sub := p.SubcycleTime()
	for i := 0; i < p.Groups; i++ {
		if p.WorstSweepTime(p.groupSize(i)) > sub {
			return false
		}
	}
	return true
}

// BufferTracks is the per-disk buffer requirement in tracks. A stream's
// consecutive reads are at most one cycle plus one subcycle apart (it
// can be served first in one sweep and last in the next), so each stream
// needs 1 + 1/g cycles' worth of track buffering; the classic GSS
// accounting charges (1 + 1/g) tracks per stream.
func (p Params) BufferTracks() float64 {
	return float64(p.Streams) * (1 + 1/float64(p.Groups))
}

// MinBufferFeasibleGroups searches g in [1, N] for the feasible group
// count minimizing buffer space. Larger g always means less buffering,
// so this is the largest feasible g; it returns an error when even g=1
// cannot fit.
func (p Params) MinBufferFeasibleGroups() (int, error) {
	best := 0
	for g := 1; g <= p.Streams; g++ {
		q := p
		q.Groups = g
		if q.Feasible() {
			best = g
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("gss: %d streams infeasible at any grouping", p.Streams)
	}
	return best, nil
}

// MaxStreams searches for the largest N servable at ANY grouping — the
// disk's admission capacity under GSS.
func (p Params) MaxStreams(limit int) int {
	best := 0
	for n := 1; n <= limit; n++ {
		q := p
		q.Streams = n
		feasibleAny := false
		for g := 1; g <= n; g++ {
			q.Groups = g
			if q.Feasible() {
				feasibleAny = true
				break
			}
		}
		if !feasibleAny {
			break
		}
		best = n
	}
	return best
}

// SimResult is one simulated service run.
type SimResult struct {
	// Cycles simulated.
	Cycles int
	// MaxLatenessNs is the worst lateness of any read past its deadline
	// (0 for a feasible schedule).
	MaxLateness time.Duration
	// MaxGap is the largest observed time between a stream's consecutive
	// reads, which bounds its buffer need.
	MaxGap time.Duration
}

// Simulate services random track positions for the configured streams
// over the given number of cycles and measures deadline lateness and
// inter-read gaps, validating Feasible and BufferTracks empirically.
func (p Params) Simulate(cycles int, seed int64) (SimResult, error) {
	if err := p.Validate(); err != nil {
		return SimResult{}, err
	}
	if cycles < 1 {
		return SimResult{}, errors.New("gss: need at least one cycle")
	}
	rng := rand.New(rand.NewSource(seed))
	res := SimResult{Cycles: cycles}
	lastRead := make([]time.Duration, p.Streams)
	for i := range lastRead {
		lastRead[i] = -1
	}
	T := p.CycleTime()
	sub := p.SubcycleTime()

	// Assign streams to groups round-robin.
	groupOf := make([]int, p.Streams)
	for i := range groupOf {
		groupOf[i] = i % p.Groups
	}
	now := time.Duration(0)
	for c := 0; c < cycles; c++ {
		for g := 0; g < p.Groups; g++ {
			subStart := time.Duration(c)*T + time.Duration(g)*sub
			subEnd := subStart + sub
			if now < subStart {
				now = subStart
			}
			// Collect the group's requests at random cylinders and sweep.
			var members []int
			var cyls []int
			for s := 0; s < p.Streams; s++ {
				if groupOf[s] == g {
					members = append(members, s)
					cyls = append(cyls, rng.Intn(p.Geometry.Cylinders))
				}
			}
			if len(members) == 0 {
				continue
			}
			order := diskgeom.SweepOrder(0, cyls)
			// Serve in sweep order; attribute completion times to the
			// members in cylinder order (the sweep visits sorted
			// positions; which stream owns which position doesn't matter
			// for gap accounting under random addressing, so pair sorted
			// cylinders with members in index order).
			pos := 0
			t := now
			for i, cyl := range order {
				t += p.Geometry.SeekTime(pos, cyl) + p.Geometry.Rotation
				pos = cyl
				s := members[i%len(members)]
				if lastRead[s] >= 0 {
					if gap := t - lastRead[s]; gap > res.MaxGap {
						res.MaxGap = gap
					}
				}
				lastRead[s] = t
			}
			now = t
			if now > subEnd {
				if late := now - subEnd; late > res.MaxLateness {
					res.MaxLateness = late
				}
			}
		}
	}
	return res, nil
}

// BufferRatio returns the buffer saving of grouping g versus SCAN (g=1):
// (1+1/g)/2, approaching 1/2 as g grows.
func BufferRatio(g int) float64 {
	if g < 1 {
		return math.NaN()
	}
	return (1 + 1/float64(g)) / 2
}
