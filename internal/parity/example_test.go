package parity_test

import (
	"fmt"

	"ftmm/internal/parity"
)

// Encode a parity group and reconstruct a lost block on the fly — the
// core operation behind every scheme in the paper.
func ExampleGroup_ReconstructData() {
	tracks := [][]byte{
		[]byte("track-0!"),
		[]byte("track-1!"),
		[]byte("track-2!"),
		[]byte("track-3!"),
	}
	g, err := parity.NewGroup(tracks)
	if err != nil {
		panic(err)
	}
	// Drive holding track 2 fails; rebuild it from the survivors.
	rec, err := g.ReconstructData(2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s\n", rec)
	// Output:
	// track-2!
}
