package parity

import (
	"bytes"
	"testing"
)

// FuzzReconstruct drives the erasure-coding core with arbitrary block
// contents and widths: for every data block, reconstruction from the
// survivors must reproduce it exactly.
func FuzzReconstruct(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(4))
	f.Add([]byte{0}, uint8(1))
	f.Add([]byte{0xFF, 0x00, 0xAA, 0x55}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, widthRaw uint8) {
		width := int(widthRaw%9) + 1
		if len(raw) < width {
			return
		}
		blockSize := len(raw) / width
		if blockSize == 0 {
			return
		}
		data := make([][]byte, width)
		for i := range data {
			data[i] = raw[i*blockSize : (i+1)*blockSize]
		}
		g, err := NewGroup(data)
		if err != nil {
			t.Fatalf("NewGroup: %v", err)
		}
		if !g.Verify() {
			t.Fatal("fresh group does not verify")
		}
		for i := range data {
			rec, err := g.ReconstructData(i)
			if err != nil {
				t.Fatalf("reconstruct %d: %v", i, err)
			}
			if !bytes.Equal(rec, data[i]) {
				t.Fatalf("block %d: reconstruction differs", i)
			}
		}
	})
}

// FuzzXORKernel differentially tests the word-wise kernel against the
// byte-wise reference on arbitrary (and in particular unaligned) lengths
// and offsets. The offset bytes shift both operands off word boundaries
// so the fuzzer explores misaligned base pointers as well as ragged
// tails.
func FuzzXORKernel(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{4, 5, 6, 7}, uint8(0), uint8(0))
	f.Add(make([]byte, 129), make([]byte, 64), uint8(3), uint8(5))
	f.Add([]byte{0xFF}, []byte{0xAA, 0x55}, uint8(7), uint8(1))
	f.Fuzz(func(t *testing.T, a, b []byte, offA, offB uint8) {
		da, db := int(offA%8), int(offB%8)
		if len(a) < da || len(b) < db {
			return
		}
		a, b = a[da:], b[db:]
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		dst := append([]byte(nil), a[:n]...)
		want := append([]byte(nil), a[:n]...)
		if err := XORIntoRef(want, b[:n]); err != nil {
			t.Fatal(err)
		}
		if err := XORInto(dst, b[:n]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("len %d offsets (%d,%d): kernel differs from reference", n, da, db)
		}
		// XOR is an involution: applying the same src twice restores dst.
		if err := XORInto(dst, b[:n]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, a[:n]) {
			t.Fatalf("len %d: double XOR does not restore input", n)
		}
	})
}

// FuzzUpdate checks the parity-delta path against a full re-encode for
// arbitrary updates.
func FuzzUpdate(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, []byte{9, 9}, uint8(0))
	f.Fuzz(func(t *testing.T, raw, fresh []byte, idxRaw uint8) {
		if len(raw) < 2 {
			return
		}
		blockSize := len(raw) / 2
		data := [][]byte{
			append([]byte(nil), raw[:blockSize]...),
			append([]byte(nil), raw[blockSize:2*blockSize]...),
		}
		g, err := NewGroup(data)
		if err != nil {
			t.Fatal(err)
		}
		idx := int(idxRaw) % 2
		newBlock := make([]byte, blockSize)
		copy(newBlock, fresh)
		old := append([]byte(nil), g.Data[idx]...)
		if err := g.Update(idx, old, newBlock); err != nil {
			t.Fatal(err)
		}
		want, err := Encode(g.Data)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(g.Parity, want) {
			t.Fatal("delta parity differs from re-encode")
		}
	})
}
