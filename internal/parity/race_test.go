//go:build race

package parity

// raceEnabled reports whether the race detector instruments this build;
// timing-sensitive tests skip under it.
const raceEnabled = true
