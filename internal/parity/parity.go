// Package parity implements the bitwise exclusive-or redundancy the
// paper's schemes rely on: a parity group is C-1 equally sized data
// blocks plus one parity block XOp = X0 ⊕ X1 ⊕ … ⊕ X(C-2), from which any
// single missing block can be reconstructed on the fly.
//
// The package operates on real bytes so that the simulation layers above
// it can verify, bit for bit, that data delivered during degraded-mode
// operation equals the data that was stored.
//
// Four implementations of the XOR fold coexist, forming a differential
// oracle chain from slowest/most-obvious to fastest: the byte-wise
// reference (XORIntoRef), the word-wise kernel (XORIntoWord, eight
// 64-bit lanes per unrolled iteration through encoding/binary loads),
// the register-blocked kernel (XORIntoBlocked, four words loaded into
// locals per iteration so the compiler keeps the whole block in
// registers), and the production entry point XORInto, which dispatches
// to crypto/subtle.XORBytes — the stdlib's architecture-tuned (SIMD on
// amd64/arm64) XOR that is still portable Go API. Each implementation
// is tested bit-for-bit against the one below it, so the hot path's
// speed never rests on unverified code.
package parity

import (
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrSizeMismatch is returned when blocks in one group differ in length.
var ErrSizeMismatch = errors.New("parity: blocks in a group must have equal length")

// ErrEmptyGroup is returned for groups with no data blocks.
var ErrEmptyGroup = errors.New("parity: group needs at least one data block")

// xorWords is the word-wise XOR kernel: dst[i] ^= src[i] for equally
// sized slices, eight uint64 lanes per unrolled iteration with a
// word-wise then byte-wise tail. Callers guarantee len(dst) == len(src).
func xorWords(dst, src []byte) {
	n := len(dst)
	i := 0
	// Main loop: 64 bytes (8 words) per iteration.
	for ; i+64 <= n; i += 64 {
		d := dst[i : i+64 : i+64]
		s := src[i : i+64 : i+64]
		binary.LittleEndian.PutUint64(d[0:8], binary.LittleEndian.Uint64(d[0:8])^binary.LittleEndian.Uint64(s[0:8]))
		binary.LittleEndian.PutUint64(d[8:16], binary.LittleEndian.Uint64(d[8:16])^binary.LittleEndian.Uint64(s[8:16]))
		binary.LittleEndian.PutUint64(d[16:24], binary.LittleEndian.Uint64(d[16:24])^binary.LittleEndian.Uint64(s[16:24]))
		binary.LittleEndian.PutUint64(d[24:32], binary.LittleEndian.Uint64(d[24:32])^binary.LittleEndian.Uint64(s[24:32]))
		binary.LittleEndian.PutUint64(d[32:40], binary.LittleEndian.Uint64(d[32:40])^binary.LittleEndian.Uint64(s[32:40]))
		binary.LittleEndian.PutUint64(d[40:48], binary.LittleEndian.Uint64(d[40:48])^binary.LittleEndian.Uint64(s[40:48]))
		binary.LittleEndian.PutUint64(d[48:56], binary.LittleEndian.Uint64(d[48:56])^binary.LittleEndian.Uint64(s[48:56]))
		binary.LittleEndian.PutUint64(d[56:64], binary.LittleEndian.Uint64(d[56:64])^binary.LittleEndian.Uint64(s[56:64]))
	}
	// Word tail.
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:i+8], binary.LittleEndian.Uint64(dst[i:i+8])^binary.LittleEndian.Uint64(src[i:i+8]))
	}
	// Byte tail.
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// xorWordsBlocked is the 4-way register-blocked XOR kernel: each
// iteration loads four destination and four source words into locals,
// folds them, and stores the results, so the working set of one block
// lives entirely in registers instead of bouncing through memory
// between the load and the store of each lane. Callers guarantee
// len(dst) == len(src).
func xorWordsBlocked(dst, src []byte) {
	n := len(dst)
	i := 0
	// Main loop: 32 bytes (4 words) per register block.
	for ; i+32 <= n; i += 32 {
		d := dst[i : i+32 : i+32]
		s := src[i : i+32 : i+32]
		d0 := binary.LittleEndian.Uint64(d[0:8])
		d1 := binary.LittleEndian.Uint64(d[8:16])
		d2 := binary.LittleEndian.Uint64(d[16:24])
		d3 := binary.LittleEndian.Uint64(d[24:32])
		s0 := binary.LittleEndian.Uint64(s[0:8])
		s1 := binary.LittleEndian.Uint64(s[8:16])
		s2 := binary.LittleEndian.Uint64(s[16:24])
		s3 := binary.LittleEndian.Uint64(s[24:32])
		binary.LittleEndian.PutUint64(d[0:8], d0^s0)
		binary.LittleEndian.PutUint64(d[8:16], d1^s1)
		binary.LittleEndian.PutUint64(d[16:24], d2^s2)
		binary.LittleEndian.PutUint64(d[24:32], d3^s3)
	}
	// Word tail.
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:i+8], binary.LittleEndian.Uint64(dst[i:i+8])^binary.LittleEndian.Uint64(src[i:i+8]))
	}
	// Byte tail.
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// XORInto xors src into dst element-wise: dst[i] ^= src[i]. It performs
// no allocations and dispatches to crypto/subtle.XORBytes, whose exact
// dst==x aliasing contract matches this in-place fold and whose
// amd64/arm64 implementations run SIMD-wide — roughly 2x the word
// kernel on track-sized blocks.
func XORInto(dst, src []byte) error {
	if len(dst) != len(src) {
		return fmt.Errorf("%w: dst %d bytes, src %d", ErrSizeMismatch, len(dst), len(src))
	}
	subtle.XORBytes(dst, dst, src)
	return nil
}

// XORIntoWord is the word-wise 8-lane kernel behind the pre-subtle
// XORInto, kept exported as a differential oracle and benchmark rung
// between the byte-wise reference and the production path.
func XORIntoWord(dst, src []byte) error {
	if len(dst) != len(src) {
		return fmt.Errorf("%w: dst %d bytes, src %d", ErrSizeMismatch, len(dst), len(src))
	}
	xorWords(dst, src)
	return nil
}

// XORIntoBlocked is the 4-way register-blocked kernel — the fastest
// pure-Go rung of the oracle chain, and the portable fallback a build
// without a tuned subtle.XORBytes would use.
func XORIntoBlocked(dst, src []byte) error {
	if len(dst) != len(src) {
		return fmt.Errorf("%w: dst %d bytes, src %d", ErrSizeMismatch, len(dst), len(src))
	}
	xorWordsBlocked(dst, src)
	return nil
}

// XORIntoRef is the byte-wise reference implementation of XORInto, kept
// for differential tests and kernel-speedup benchmarks. Production code
// uses XORInto.
func XORIntoRef(dst, src []byte) error {
	if len(dst) != len(src) {
		return fmt.Errorf("%w: dst %d bytes, src %d", ErrSizeMismatch, len(dst), len(src))
	}
	for i, b := range src {
		dst[i] ^= b
	}
	return nil
}

// EncodeInto computes the parity of the data blocks into dst without
// allocating: dst = data[0] ⊕ data[1] ⊕ … The blocks must be non-empty,
// equally sized, and the same length as dst. dst may alias data[0] (the
// copy is skipped) but no other block.
func EncodeInto(dst []byte, data [][]byte) error {
	if len(data) == 0 {
		return ErrEmptyGroup
	}
	if len(dst) != len(data[0]) {
		return fmt.Errorf("%w: dst %d bytes, blocks %d", ErrSizeMismatch, len(dst), len(data[0]))
	}
	next := 1
	if len(data) > 1 && len(data[1]) == len(dst) {
		// Fold the first pair in one pass: dst = data[0] ^ data[1] skips
		// the copy a copy-then-XOR start would spend on data[0].
		subtle.XORBytes(dst, data[0], data[1])
		next = 2
	} else if len(dst) > 0 && &dst[0] != &data[0][0] {
		copy(dst, data[0])
	}
	for i, blk := range data[next:] {
		if err := XORInto(dst, blk); err != nil {
			return fmt.Errorf("parity: block %d: %w", i+next, err)
		}
	}
	return nil
}

// Encode computes the parity block of the given data blocks. The blocks
// must be non-empty and equally sized; the result is freshly allocated.
// Allocation-sensitive callers use EncodeInto.
func Encode(data [][]byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, ErrEmptyGroup
	}
	p := make([]byte, len(data[0]))
	if err := EncodeInto(p, data); err != nil {
		return nil, err
	}
	return p, nil
}

// ReconstructInto rebuilds the missing block of a parity group into dst
// given every other block (the surviving data blocks and the parity
// block, in any order), without allocating. It is the same fold as
// EncodeInto: XOR of all survivors.
func ReconstructInto(dst []byte, survivors [][]byte) error {
	return EncodeInto(dst, survivors)
}

// Reconstruct rebuilds the missing block of a parity group given every
// other block (the surviving data blocks and the parity block, in any
// order). It is the same fold as Encode: XOR of all survivors.
func Reconstruct(survivors [][]byte) ([]byte, error) {
	return Encode(survivors)
}

// Group is one parity group: the data blocks of one stripe and their
// parity block.
type Group struct {
	Data   [][]byte
	Parity []byte
}

// NewGroup encodes a parity group over the given data blocks. The data
// slices are referenced, not copied.
func NewGroup(data [][]byte) (*Group, error) {
	p, err := Encode(data)
	if err != nil {
		return nil, err
	}
	return &Group{Data: data, Parity: p}, nil
}

// Verify reports whether the parity block is consistent with the data.
func (g *Group) Verify() bool {
	p, err := Encode(g.Data)
	if err != nil || len(p) != len(g.Parity) {
		return false
	}
	for i := range p {
		if p[i] != g.Parity[i] {
			return false
		}
	}
	return true
}

// ReconstructData rebuilds data block i from the other data blocks and
// the parity block, without consulting Data[i] itself. The result is
// freshly allocated; allocation-sensitive callers use
// ReconstructDataInto.
func (g *Group) ReconstructData(i int) ([]byte, error) {
	if i < 0 || i >= len(g.Data) {
		return nil, fmt.Errorf("parity: block index %d out of range [0,%d)", i, len(g.Data))
	}
	rec := make([]byte, len(g.Parity))
	if err := g.ReconstructDataInto(rec, i); err != nil {
		return nil, err
	}
	return rec, nil
}

// ReconstructDataInto rebuilds data block i into dst from the other
// data blocks and the parity block, without consulting Data[i] itself
// and without allocating. It is the same fused fold as EncodeInto —
// the first survivor pair folds in one pass — so reconstruction runs at
// encode speed. dst must not alias any of the group's blocks.
func (g *Group) ReconstructDataInto(dst []byte, i int) error {
	if i < 0 || i >= len(g.Data) {
		return fmt.Errorf("parity: block index %d out of range [0,%d)", i, len(g.Data))
	}
	if len(dst) != len(g.Parity) {
		return fmt.Errorf("%w: dst %d bytes, parity %d", ErrSizeMismatch, len(dst), len(g.Parity))
	}
	// prev carries the first operand until a pair is available to fold.
	prev := g.Parity
	for j, blk := range g.Data {
		if j == i {
			continue
		}
		if len(blk) != len(dst) {
			return fmt.Errorf("%w: block %d is %d bytes, parity %d", ErrSizeMismatch, j, len(blk), len(dst))
		}
		if prev != nil {
			subtle.XORBytes(dst, prev, blk)
			prev = nil
			continue
		}
		subtle.XORBytes(dst, dst, blk)
	}
	if prev != nil {
		// Single-data-block group: the missing block is the parity itself.
		copy(dst, prev)
	}
	return nil
}

// Update recomputes parity after data block i changes from old to new
// content, using the parity-delta trick (p ^= old ^ new) rather than a
// full re-encode.
func (g *Group) Update(i int, oldBlock, newBlock []byte) error {
	if i < 0 || i >= len(g.Data) {
		return fmt.Errorf("parity: block index %d out of range [0,%d)", i, len(g.Data))
	}
	if len(oldBlock) != len(g.Parity) || len(newBlock) != len(g.Parity) {
		return ErrSizeMismatch
	}
	if err := XORInto(g.Parity, oldBlock); err != nil {
		return err
	}
	if err := XORInto(g.Parity, newBlock); err != nil {
		return err
	}
	g.Data[i] = newBlock
	return nil
}
