// Package parity implements the bitwise exclusive-or redundancy the
// paper's schemes rely on: a parity group is C-1 equally sized data
// blocks plus one parity block XOp = X0 ⊕ X1 ⊕ … ⊕ X(C-2), from which any
// single missing block can be reconstructed on the fly.
//
// The package operates on real bytes so that the simulation layers above
// it can verify, bit for bit, that data delivered during degraded-mode
// operation equals the data that was stored.
//
// Two implementations of the XOR fold coexist: the word-wise kernel
// (xorWords) that every public entry point uses, and the byte-wise
// reference (XORIntoRef) retained for differential testing. The kernel
// folds eight 64-bit words per unrolled iteration through
// encoding/binary loads, then finishes unaligned tails word- and
// byte-wise, so track-sized blocks move at memory bandwidth without any
// unsafe or architecture-specific code.
package parity

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrSizeMismatch is returned when blocks in one group differ in length.
var ErrSizeMismatch = errors.New("parity: blocks in a group must have equal length")

// ErrEmptyGroup is returned for groups with no data blocks.
var ErrEmptyGroup = errors.New("parity: group needs at least one data block")

// xorWords is the word-wise XOR kernel: dst[i] ^= src[i] for equally
// sized slices, eight uint64 lanes per unrolled iteration with a
// word-wise then byte-wise tail. Callers guarantee len(dst) == len(src).
func xorWords(dst, src []byte) {
	n := len(dst)
	i := 0
	// Main loop: 64 bytes (8 words) per iteration.
	for ; i+64 <= n; i += 64 {
		d := dst[i : i+64 : i+64]
		s := src[i : i+64 : i+64]
		binary.LittleEndian.PutUint64(d[0:8], binary.LittleEndian.Uint64(d[0:8])^binary.LittleEndian.Uint64(s[0:8]))
		binary.LittleEndian.PutUint64(d[8:16], binary.LittleEndian.Uint64(d[8:16])^binary.LittleEndian.Uint64(s[8:16]))
		binary.LittleEndian.PutUint64(d[16:24], binary.LittleEndian.Uint64(d[16:24])^binary.LittleEndian.Uint64(s[16:24]))
		binary.LittleEndian.PutUint64(d[24:32], binary.LittleEndian.Uint64(d[24:32])^binary.LittleEndian.Uint64(s[24:32]))
		binary.LittleEndian.PutUint64(d[32:40], binary.LittleEndian.Uint64(d[32:40])^binary.LittleEndian.Uint64(s[32:40]))
		binary.LittleEndian.PutUint64(d[40:48], binary.LittleEndian.Uint64(d[40:48])^binary.LittleEndian.Uint64(s[40:48]))
		binary.LittleEndian.PutUint64(d[48:56], binary.LittleEndian.Uint64(d[48:56])^binary.LittleEndian.Uint64(s[48:56]))
		binary.LittleEndian.PutUint64(d[56:64], binary.LittleEndian.Uint64(d[56:64])^binary.LittleEndian.Uint64(s[56:64]))
	}
	// Word tail.
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:i+8], binary.LittleEndian.Uint64(dst[i:i+8])^binary.LittleEndian.Uint64(src[i:i+8]))
	}
	// Byte tail.
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// XORInto xors src into dst element-wise: dst[i] ^= src[i]. It uses the
// word-wise kernel and performs no allocations.
func XORInto(dst, src []byte) error {
	if len(dst) != len(src) {
		return fmt.Errorf("%w: dst %d bytes, src %d", ErrSizeMismatch, len(dst), len(src))
	}
	xorWords(dst, src)
	return nil
}

// XORIntoRef is the byte-wise reference implementation of XORInto, kept
// for differential tests and kernel-speedup benchmarks. Production code
// uses XORInto.
func XORIntoRef(dst, src []byte) error {
	if len(dst) != len(src) {
		return fmt.Errorf("%w: dst %d bytes, src %d", ErrSizeMismatch, len(dst), len(src))
	}
	for i, b := range src {
		dst[i] ^= b
	}
	return nil
}

// EncodeInto computes the parity of the data blocks into dst without
// allocating: dst = data[0] ⊕ data[1] ⊕ … The blocks must be non-empty,
// equally sized, and the same length as dst. dst may alias data[0] (the
// copy is skipped) but no other block.
func EncodeInto(dst []byte, data [][]byte) error {
	if len(data) == 0 {
		return ErrEmptyGroup
	}
	if len(dst) != len(data[0]) {
		return fmt.Errorf("%w: dst %d bytes, blocks %d", ErrSizeMismatch, len(dst), len(data[0]))
	}
	if len(dst) > 0 && &dst[0] != &data[0][0] {
		copy(dst, data[0])
	}
	for i, blk := range data[1:] {
		if err := XORInto(dst, blk); err != nil {
			return fmt.Errorf("parity: block %d: %w", i+1, err)
		}
	}
	return nil
}

// Encode computes the parity block of the given data blocks. The blocks
// must be non-empty and equally sized; the result is freshly allocated.
// Allocation-sensitive callers use EncodeInto.
func Encode(data [][]byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, ErrEmptyGroup
	}
	p := make([]byte, len(data[0]))
	if err := EncodeInto(p, data); err != nil {
		return nil, err
	}
	return p, nil
}

// ReconstructInto rebuilds the missing block of a parity group into dst
// given every other block (the surviving data blocks and the parity
// block, in any order), without allocating. It is the same fold as
// EncodeInto: XOR of all survivors.
func ReconstructInto(dst []byte, survivors [][]byte) error {
	return EncodeInto(dst, survivors)
}

// Reconstruct rebuilds the missing block of a parity group given every
// other block (the surviving data blocks and the parity block, in any
// order). It is the same fold as Encode: XOR of all survivors.
func Reconstruct(survivors [][]byte) ([]byte, error) {
	return Encode(survivors)
}

// Group is one parity group: the data blocks of one stripe and their
// parity block.
type Group struct {
	Data   [][]byte
	Parity []byte
}

// NewGroup encodes a parity group over the given data blocks. The data
// slices are referenced, not copied.
func NewGroup(data [][]byte) (*Group, error) {
	p, err := Encode(data)
	if err != nil {
		return nil, err
	}
	return &Group{Data: data, Parity: p}, nil
}

// Verify reports whether the parity block is consistent with the data.
func (g *Group) Verify() bool {
	p, err := Encode(g.Data)
	if err != nil || len(p) != len(g.Parity) {
		return false
	}
	for i := range p {
		if p[i] != g.Parity[i] {
			return false
		}
	}
	return true
}

// ReconstructData rebuilds data block i from the other data blocks and
// the parity block, without consulting Data[i] itself.
func (g *Group) ReconstructData(i int) ([]byte, error) {
	if i < 0 || i >= len(g.Data) {
		return nil, fmt.Errorf("parity: block index %d out of range [0,%d)", i, len(g.Data))
	}
	rec := make([]byte, len(g.Parity))
	copy(rec, g.Parity)
	for j, blk := range g.Data {
		if j == i {
			continue
		}
		if err := XORInto(rec, blk); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// Update recomputes parity after data block i changes from old to new
// content, using the parity-delta trick (p ^= old ^ new) rather than a
// full re-encode.
func (g *Group) Update(i int, oldBlock, newBlock []byte) error {
	if i < 0 || i >= len(g.Data) {
		return fmt.Errorf("parity: block index %d out of range [0,%d)", i, len(g.Data))
	}
	if len(oldBlock) != len(g.Parity) || len(newBlock) != len(g.Parity) {
		return ErrSizeMismatch
	}
	if err := XORInto(g.Parity, oldBlock); err != nil {
		return err
	}
	if err := XORInto(g.Parity, newBlock); err != nil {
		return err
	}
	g.Data[i] = newBlock
	return nil
}
