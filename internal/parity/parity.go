// Package parity implements the bitwise exclusive-or redundancy the
// paper's schemes rely on: a parity group is C-1 equally sized data
// blocks plus one parity block XOp = X0 ⊕ X1 ⊕ … ⊕ X(C-2), from which any
// single missing block can be reconstructed on the fly.
//
// The package operates on real bytes so that the simulation layers above
// it can verify, bit for bit, that data delivered during degraded-mode
// operation equals the data that was stored.
package parity

import (
	"errors"
	"fmt"
)

// ErrSizeMismatch is returned when blocks in one group differ in length.
var ErrSizeMismatch = errors.New("parity: blocks in a group must have equal length")

// ErrEmptyGroup is returned for groups with no data blocks.
var ErrEmptyGroup = errors.New("parity: group needs at least one data block")

// XORInto xors src into dst element-wise: dst[i] ^= src[i].
func XORInto(dst, src []byte) error {
	if len(dst) != len(src) {
		return fmt.Errorf("%w: dst %d bytes, src %d", ErrSizeMismatch, len(dst), len(src))
	}
	for i, b := range src {
		dst[i] ^= b
	}
	return nil
}

// Encode computes the parity block of the given data blocks. The blocks
// must be non-empty and equally sized; the result is freshly allocated.
func Encode(data [][]byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, ErrEmptyGroup
	}
	p := make([]byte, len(data[0]))
	copy(p, data[0])
	for i, blk := range data[1:] {
		if err := XORInto(p, blk); err != nil {
			return nil, fmt.Errorf("parity: block %d: %w", i+1, err)
		}
	}
	return p, nil
}

// Reconstruct rebuilds the missing block of a parity group given every
// other block (the surviving data blocks and the parity block, in any
// order). It is the same fold as Encode: XOR of all survivors.
func Reconstruct(survivors [][]byte) ([]byte, error) {
	return Encode(survivors)
}

// Group is one parity group: the data blocks of one stripe and their
// parity block.
type Group struct {
	Data   [][]byte
	Parity []byte
}

// NewGroup encodes a parity group over the given data blocks. The data
// slices are referenced, not copied.
func NewGroup(data [][]byte) (*Group, error) {
	p, err := Encode(data)
	if err != nil {
		return nil, err
	}
	return &Group{Data: data, Parity: p}, nil
}

// Verify reports whether the parity block is consistent with the data.
func (g *Group) Verify() bool {
	p, err := Encode(g.Data)
	if err != nil || len(p) != len(g.Parity) {
		return false
	}
	for i := range p {
		if p[i] != g.Parity[i] {
			return false
		}
	}
	return true
}

// ReconstructData rebuilds data block i from the other data blocks and
// the parity block, without consulting Data[i] itself.
func (g *Group) ReconstructData(i int) ([]byte, error) {
	if i < 0 || i >= len(g.Data) {
		return nil, fmt.Errorf("parity: block index %d out of range [0,%d)", i, len(g.Data))
	}
	survivors := make([][]byte, 0, len(g.Data))
	for j, blk := range g.Data {
		if j != i {
			survivors = append(survivors, blk)
		}
	}
	survivors = append(survivors, g.Parity)
	return Reconstruct(survivors)
}

// Update recomputes parity after data block i changes from old to new
// content, using the parity-delta trick (p ^= old ^ new) rather than a
// full re-encode.
func (g *Group) Update(i int, oldBlock, newBlock []byte) error {
	if i < 0 || i >= len(g.Data) {
		return fmt.Errorf("parity: block index %d out of range [0,%d)", i, len(g.Data))
	}
	if len(oldBlock) != len(g.Parity) || len(newBlock) != len(g.Parity) {
		return ErrSizeMismatch
	}
	if err := XORInto(g.Parity, oldBlock); err != nil {
		return err
	}
	if err := XORInto(g.Parity, newBlock); err != nil {
		return err
	}
	g.Data[i] = newBlock
	return nil
}
