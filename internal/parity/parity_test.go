package parity

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBlocks(r *rand.Rand, n, size int) [][]byte {
	blocks := make([][]byte, n)
	for i := range blocks {
		blocks[i] = make([]byte, size)
		r.Read(blocks[i])
	}
	return blocks
}

func TestXORInto(t *testing.T) {
	dst := []byte{0x0F, 0xF0, 0xAA}
	src := []byte{0xFF, 0xFF, 0xAA}
	if err := XORInto(dst, src); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, []byte{0xF0, 0x0F, 0x00}) {
		t.Fatalf("XORInto = %x", dst)
	}
	if err := XORInto(dst, []byte{1}); err == nil {
		t.Fatal("size mismatch not detected")
	}
}

func TestEncodeKnownValue(t *testing.T) {
	data := [][]byte{{0x01}, {0x02}, {0x04}, {0x08}}
	p, err := Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 0x0F {
		t.Fatalf("parity = %x, want 0f", p)
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := Encode([][]byte{{1, 2}, {1}}); err == nil {
		t.Error("ragged group accepted")
	}
}

func TestEncodeDoesNotAliasInput(t *testing.T) {
	data := [][]byte{{0xAB}, {0xCD}}
	p, _ := Encode(data)
	p[0] = 0
	if data[0][0] != 0xAB {
		t.Fatal("Encode aliased its input")
	}
}

// Core invariant: any single erased block is reconstructible from the
// survivors plus parity — for any group width and content.
func TestReconstructAnySingleErasure(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(9)
		size := 1 + r.Intn(256)
		data := randBlocks(r, n, size)
		g, err := NewGroup(data)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			got, err := g.ReconstructData(i)
			if err != nil {
				t.Fatalf("reconstruct %d: %v", i, err)
			}
			if !bytes.Equal(got, data[i]) {
				t.Fatalf("trial %d: reconstructed block %d differs", trial, i)
			}
		}
	}
}

// Property (testing/quick): parity of (a, b, a⊕b) is zero, and
// reconstructing from {b, parity} returns a.
func TestParityProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a) != len(b) {
			if len(a) > len(b) {
				a = a[:len(b)]
			} else {
				b = b[:len(a)]
			}
		}
		if len(a) == 0 {
			return true
		}
		g, err := NewGroup([][]byte{a, b})
		if err != nil {
			return false
		}
		if !g.Verify() {
			return false
		}
		rec, err := Reconstruct([][]byte{b, g.Parity})
		if err != nil {
			return false
		}
		return bytes.Equal(rec, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	data := [][]byte{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	g, err := NewGroup(data)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Verify() {
		t.Fatal("fresh group does not verify")
	}
	g.Data[1][0] ^= 0x80
	if g.Verify() {
		t.Fatal("corruption not detected")
	}
	g.Data[1][0] ^= 0x80
	g.Parity[2] ^= 1
	if g.Verify() {
		t.Fatal("parity corruption not detected")
	}
}

func TestVerifyRaggedGroup(t *testing.T) {
	g := &Group{Data: [][]byte{{1, 2}, {3}}, Parity: []byte{0, 0}}
	if g.Verify() {
		t.Fatal("ragged group verified")
	}
	g2 := &Group{Data: [][]byte{{1, 2}}, Parity: []byte{1}}
	if g2.Verify() {
		t.Fatal("short parity verified")
	}
}

func TestReconstructDataBounds(t *testing.T) {
	g, _ := NewGroup([][]byte{{1}, {2}})
	if _, err := g.ReconstructData(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := g.ReconstructData(2); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestUpdate(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{4, 5, 6}
	g, err := NewGroup([][]byte{append([]byte(nil), a...), b})
	if err != nil {
		t.Fatal(err)
	}
	newA := []byte{9, 9, 9}
	if err := g.Update(0, a, newA); err != nil {
		t.Fatal(err)
	}
	if !g.Verify() {
		t.Fatal("group does not verify after Update")
	}
	rec, err := g.ReconstructData(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec, newA) {
		t.Fatalf("reconstructed %v, want %v", rec, newA)
	}
}

func TestUpdateErrors(t *testing.T) {
	g, _ := NewGroup([][]byte{{1}, {2}})
	if err := g.Update(5, []byte{1}, []byte{2}); err == nil {
		t.Error("out-of-range update accepted")
	}
	if err := g.Update(0, []byte{1, 2}, []byte{2}); err == nil {
		t.Error("mis-sized old block accepted")
	}
	if err := g.Update(0, []byte{1}, []byte{2, 3}); err == nil {
		t.Error("mis-sized new block accepted")
	}
}

// Property: Update is equivalent to re-encoding from scratch.
func TestUpdateMatchesReencode(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(6)
		size := 1 + r.Intn(64)
		data := randBlocks(r, n, size)
		g, err := NewGroup(data)
		if err != nil {
			t.Fatal(err)
		}
		i := r.Intn(n)
		old := append([]byte(nil), g.Data[i]...)
		fresh := make([]byte, size)
		r.Read(fresh)
		if err := g.Update(i, old, fresh); err != nil {
			t.Fatal(err)
		}
		want, err := Encode(g.Data)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(g.Parity, want) {
			t.Fatalf("trial %d: delta parity differs from re-encode", trial)
		}
	}
}
