package parity

import (
	"bytes"
	"math/rand"
	"testing"
)

// xorKernels is the oracle chain: every implementation of the XOR fold,
// slowest first. Differential tests run each against the byte-wise
// reference so the production path's speed never rests on unverified
// code.
var xorKernels = []struct {
	name string
	fn   func(dst, src []byte) error
}{
	{"word", XORIntoWord},
	{"blocked", XORIntoBlocked},
	{"subtle", XORInto},
}

// TestXORKernelMatchesReference checks every kernel in the oracle chain
// against the byte-wise reference across sizes that exercise every tail
// path: empty, sub-word, word-aligned, unrolled-block-aligned, and
// ragged lengths just around both boundaries.
func TestXORKernelMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	sizes := []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 129, 1000, 4096, 50_000, 50_001}
	for _, k := range xorKernels {
		for _, n := range sizes {
			dst := make([]byte, n)
			src := make([]byte, n)
			r.Read(dst)
			r.Read(src)
			want := append([]byte(nil), dst...)
			if err := XORIntoRef(want, src); err != nil {
				t.Fatal(err)
			}
			if err := k.fn(dst, src); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dst, want) {
				t.Fatalf("%s kernel, size %d: differs from reference", k.name, n)
			}
		}
	}
}

// TestXORKernelUnalignedOffsets slides both operands across sub-word
// offsets within a larger backing array, so the kernel runs with every
// combination of misaligned base pointers.
func TestXORKernelUnalignedOffsets(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	backingD := make([]byte, 256)
	backingS := make([]byte, 256)
	for _, k := range xorKernels {
		for do := 0; do < 9; do++ {
			for so := 0; so < 9; so++ {
				for _, n := range []int{1, 8, 17, 64, 100} {
					r.Read(backingD)
					r.Read(backingS)
					dst := backingD[do : do+n]
					src := backingS[so : so+n]
					want := append([]byte(nil), dst...)
					if err := XORIntoRef(want, src); err != nil {
						t.Fatal(err)
					}
					if err := k.fn(dst, src); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(dst, want) {
						t.Fatalf("%s kernel, offsets (%d,%d) size %d: differs", k.name, do, so, n)
					}
				}
			}
		}
	}
}

// TestEncodeInto checks the destination-buffer encode against Encode,
// including the dst-aliases-first-block fast path.
func TestEncodeInto(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	data := randBlocks(r, 4, 333)
	want, err := Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 333)
	if err := EncodeInto(dst, data); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, want) {
		t.Fatal("EncodeInto differs from Encode")
	}
	// dst aliasing data[0]: fold the rest in place.
	alias := append([]byte(nil), data[0]...)
	aliased := [][]byte{alias, data[1], data[2], data[3]}
	if err := EncodeInto(alias, aliased); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(alias, want) {
		t.Fatal("aliased EncodeInto differs from Encode")
	}
}

func TestEncodeIntoErrors(t *testing.T) {
	if err := EncodeInto(nil, nil); err == nil {
		t.Error("empty group accepted")
	}
	if err := EncodeInto([]byte{0}, [][]byte{{1, 2}}); err == nil {
		t.Error("mis-sized dst accepted")
	}
	if err := EncodeInto([]byte{0, 0}, [][]byte{{1, 2}, {3}}); err == nil {
		t.Error("ragged group accepted")
	}
}

// TestReconstructInto checks the allocation-free reconstruction path.
func TestReconstructInto(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	data := randBlocks(r, 5, 777)
	g, err := NewGroup(data)
	if err != nil {
		t.Fatal(err)
	}
	for miss := range data {
		survivors := make([][]byte, 0, len(data))
		for j, blk := range data {
			if j != miss {
				survivors = append(survivors, blk)
			}
		}
		survivors = append(survivors, g.Parity)
		dst := make([]byte, 777)
		if err := ReconstructInto(dst, survivors); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, data[miss]) {
			t.Fatalf("ReconstructInto block %d differs", miss)
		}
	}
}

// TestXORIntoZeroAllocs pins the zero-allocation guarantee of the
// steady-state kernel entry points.
func TestXORIntoZeroAllocs(t *testing.T) {
	dst := make([]byte, 50_000)
	src := make([]byte, 50_000)
	if n := testing.AllocsPerRun(100, func() {
		if err := XORInto(dst, src); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("XORInto allocates %.1f per run, want 0", n)
	}
}

// TestEncodeIntoZeroAllocs pins EncodeInto's allocation-free contract.
func TestEncodeIntoZeroAllocs(t *testing.T) {
	data := [][]byte{make([]byte, 50_000), make([]byte, 50_000), make([]byte, 50_000), make([]byte, 50_000)}
	dst := make([]byte, 50_000)
	if n := testing.AllocsPerRun(100, func() {
		if err := EncodeInto(dst, data); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("EncodeInto allocates %.1f per run, want 0", n)
	}
}

// BenchmarkXORIntoWord measures the word-wise kernel on one track-sized
// (50 KB) block pair.
func BenchmarkXORIntoWord(b *testing.B) {
	dst := make([]byte, 50_000)
	src := make([]byte, 50_000)
	b.SetBytes(50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := XORIntoWord(dst, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXORIntoBlocked measures the 4-way register-blocked kernel.
func BenchmarkXORIntoBlocked(b *testing.B) {
	dst := make([]byte, 50_000)
	src := make([]byte, 50_000)
	b.SetBytes(50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := XORIntoBlocked(dst, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXORInto measures the production dispatch (subtle.XORBytes).
func BenchmarkXORInto(b *testing.B) {
	dst := make([]byte, 50_000)
	src := make([]byte, 50_000)
	b.SetBytes(50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := XORInto(dst, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXORIntoRef measures the retained byte-wise reference on the
// same block size, pinning the kernel speedup claim.
func BenchmarkXORIntoRef(b *testing.B) {
	dst := make([]byte, 50_000)
	src := make([]byte, 50_000)
	b.SetBytes(50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := XORIntoRef(dst, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeInto measures the allocation-free group encode at C=5.
func BenchmarkEncodeInto(b *testing.B) {
	data := randBlocks(rand.New(rand.NewSource(1)), 4, 50_000)
	dst := make([]byte, 50_000)
	b.SetBytes(4 * 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := EncodeInto(dst, data); err != nil {
			b.Fatal(err)
		}
	}
}

// TestKernelSpeedup asserts the headline acceptance criterion: the
// word-wise kernel is at least 4x faster than the byte-wise reference on
// track-sized (>= 16 KiB) blocks. Run as a test so CI catches kernel
// regressions without a separate bench pass; skipped in -short mode
// (timing-sensitive).
func TestKernelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if raceEnabled {
		t.Skip("race instrumentation penalizes the word kernel's accesses; timing ratio is meaningless")
	}
	const size = 50_000
	dst := make([]byte, size)
	src := make([]byte, size)
	word := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = XORInto(dst, src)
		}
	})
	ref := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = XORIntoRef(dst, src)
		}
	})
	speedup := float64(ref.NsPerOp()) / float64(word.NsPerOp())
	t.Logf("word %d ns/op, ref %d ns/op, speedup %.1fx", word.NsPerOp(), ref.NsPerOp(), speedup)
	if speedup < 4 {
		t.Errorf("kernel speedup %.1fx, want >= 4x (word %d ns/op, ref %d ns/op)",
			speedup, word.NsPerOp(), ref.NsPerOp())
	}
}

// TestReconstructDataInto checks the allocation-free group
// reconstruction against ReconstructData for every missing-block index,
// including a single-data-block group (whose reconstruction is the
// parity itself).
func TestReconstructDataInto(t *testing.T) {
	r := rand.New(rand.NewSource(46))
	for _, width := range []int{1, 2, 4, 5} {
		data := randBlocks(r, width, 501)
		g, err := NewGroup(data)
		if err != nil {
			t.Fatal(err)
		}
		for miss := range data {
			want, err := g.ReconstructData(miss)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, data[miss]) {
				t.Fatalf("width %d: ReconstructData(%d) differs from original", width, miss)
			}
			dst := make([]byte, 501)
			if err := g.ReconstructDataInto(dst, miss); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dst, want) {
				t.Fatalf("width %d: ReconstructDataInto(%d) differs from ReconstructData", width, miss)
			}
		}
	}
}

// TestReconstructDataIntoZeroAllocs pins the no-allocation contract the
// reconstruct bench row relies on.
func TestReconstructDataIntoZeroAllocs(t *testing.T) {
	g, err := NewGroup(randBlocks(rand.New(rand.NewSource(47)), 4, 50_000))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 50_000)
	if n := testing.AllocsPerRun(100, func() {
		if err := g.ReconstructDataInto(dst, 2); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("ReconstructDataInto allocates %.1f per run, want 0", n)
	}
}

// TestReconstructThroughput asserts the reconstruct path dispatches to
// the fast kernel: rebuilding one block of a C=5 group must run at no
// less than half the encode throughput over the same four-block fold
// (both are the identical fused XOR; the factor-of-two headroom absorbs
// scheduling noise). This is the regression the bench suite once hid —
// a reconstruct that quietly falls back to byte-wise speed fails here.
func TestReconstructThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts kernel timing ratios")
	}
	const size = 50_000
	data := randBlocks(rand.New(rand.NewSource(48)), 4, size)
	g, err := NewGroup(data)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, size)
	enc := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = EncodeInto(dst, data)
		}
	})
	rec := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = g.ReconstructDataInto(dst, 2)
		}
	})
	ratio := float64(enc.NsPerOp()) / float64(rec.NsPerOp())
	t.Logf("encode %d ns/op, reconstruct %d ns/op, reconstruct/encode throughput %.2fx",
		enc.NsPerOp(), rec.NsPerOp(), ratio)
	if ratio < 0.5 {
		t.Errorf("reconstruct runs at %.2fx encode throughput, want >= 0.5x", ratio)
	}
}
