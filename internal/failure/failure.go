// Package failure estimates the reliability quantities of §5 by
// continuous-time Monte-Carlo simulation, validating the paper's closed
// forms (equations (4)-(6)).
//
// Disks fail independently at rate 1/MTTF and are repaired in exponential
// time with mean MTTR. A catastrophic failure is a pair of concurrently
// failed disks that share a parity group family:
//
//   - dedicated parity (SR/SG/NC): two failures in the same cluster;
//   - intermixed parity (IB): two failures in the same cluster or in
//     adjacent clusters (cluster i's parity lives on cluster i+1, so a
//     pair {i, i+1} loses the groups that span both failed drives).
//
// Note the intermixed exposure seen by the simulation is 3C-1 (same
// cluster, next cluster, and previous cluster) where the paper's equation
// (5) uses 2C-1 — it counts only one adjacent side; the Monte-Carlo
// results quantify the difference (see EXPERIMENTS.md).
//
// Degradation of service is K concurrent failures anywhere in the farm
// (equation (6)): the K-th overlapping failure finds the shared reserve —
// buffer servers (NC) or spare bandwidth (IB) — exhausted.
package failure

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"ftmm/internal/layout"
	"ftmm/internal/units"
)

// Model is one reliability design point.
type Model struct {
	// D is the number of disks, C the cluster size.
	D, C int
	// MTTFHours and MTTRHours are per-disk failure and repair means.
	MTTFHours, MTTRHours float64
	// Placement selects the catastrophe topology.
	Placement layout.Placement
	// K is the reserve depth for degradation of service.
	K int
}

// Validate reports whether the model is well-formed.
func (m Model) Validate() error {
	switch {
	case m.C < 2:
		return fmt.Errorf("failure: cluster size %d must be >= 2", m.C)
	case m.D < m.C || m.D%m.C != 0:
		return fmt.Errorf("failure: %d disks is not a whole number of clusters of %d", m.D, m.C)
	case m.MTTFHours <= 0 || m.MTTRHours <= 0:
		return errors.New("failure: MTTF and MTTR must be positive")
	case m.MTTFHours <= m.MTTRHours:
		return errors.New("failure: MTTF must exceed MTTR")
	case m.K < 0:
		return errors.New("failure: negative reserve depth")
	}
	return nil
}

// Estimate is a Monte-Carlo mean with its standard error.
type Estimate struct {
	Trials       int
	MeanHours    float64
	StdErrHours  float64
	MeanYears    units.Years
	AnalyticNote string
}

// farmState tracks concurrent failures during one trial.
type farmState struct {
	m          Model
	rng        *rand.Rand
	failed     map[int]float64 // disk -> repair completion time
	perCluster []int
}

func newFarmState(m Model, rng *rand.Rand) *farmState {
	return &farmState{
		m: m, rng: rng,
		failed:     make(map[int]float64),
		perCluster: make([]int, m.D/m.C),
	}
}

// step advances to the next event (failure or repair) and returns the
// disk that failed, or -1 for a repair event, plus the new clock.
func (f *farmState) step(now float64) (int, float64) {
	lambda := 1 / f.m.MTTFHours
	operational := f.m.D - len(f.failed)
	tFail := now + f.rng.ExpFloat64()/(lambda*float64(operational))

	repairDisk, tRepair := -1, math.Inf(1)
	for d, t := range f.failed {
		if t < tRepair {
			repairDisk, tRepair = d, t
		}
	}
	if tRepair < tFail {
		delete(f.failed, repairDisk)
		f.perCluster[repairDisk/f.m.C]--
		return -1, tRepair
	}
	// Pick a uniformly random operational disk.
	idx := f.rng.Intn(operational)
	d := 0
	for {
		if _, down := f.failed[d]; !down {
			if idx == 0 {
				break
			}
			idx--
		}
		d++
	}
	f.failed[d] = tFail + f.rng.ExpFloat64()*f.m.MTTRHours
	f.perCluster[d/f.m.C]++
	return d, tFail
}

// catastrophicWith reports whether the newly failed disk forms a
// catastrophic pair with any other failed disk.
func (f *farmState) catastrophicWith(d int) bool {
	cl := d / f.m.C
	if f.perCluster[cl] >= 2 {
		return true
	}
	if f.m.Placement == layout.IntermixedParity {
		nc := len(f.perCluster)
		if f.perCluster[(cl+1)%nc] >= 1 || f.perCluster[(cl+nc-1)%nc] >= 1 {
			return true
		}
	}
	return false
}

// timeToCatastrophe runs one trial.
func (m Model) timeToCatastrophe(rng *rand.Rand) float64 {
	f := newFarmState(m, rng)
	now := 0.0
	for {
		d, t := f.step(now)
		now = t
		if d >= 0 && f.catastrophicWith(d) {
			return now
		}
	}
}

// timeToKOverlapping runs one degradation trial: the first instant K
// disks are down simultaneously.
func (m Model) timeToKOverlapping(rng *rand.Rand) float64 {
	if m.K <= 0 {
		return 0
	}
	f := newFarmState(m, rng)
	now := 0.0
	for {
		d, t := f.step(now)
		now = t
		if d >= 0 && len(f.failed) >= m.K {
			return now
		}
	}
}

// TrialSeed derives the RNG seed of trial i from the caller's seed with
// a splitmix64 finalizer. Each trial owns an independent source, so
// sample i depends only on (seed, i) — never on which worker ran it or
// how many trials precede it — and nearby caller seeds do not produce
// overlapping trial streams (a naive seed+i would share all but one
// stream between seeds 42 and 43). It is exported as the repo-wide
// convention for deriving per-trial seeds (the chaos campaign engine
// uses it for per-run schedule seeds).
func TrialSeed(seed int64, i int) int64 {
	z := uint64(seed) + (uint64(i)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// sample runs trials independent simulations of fn across at most
// workers goroutines (workers <= 0 means GOMAXPROCS) and returns the
// samples in trial order. Results are bit-identical at any worker count.
func sample(trials int, seed int64, workers int, fn func(*rand.Rand) float64) []float64 {
	samples := make([]float64, trials)
	run := func(i int) {
		samples[i] = fn(rand.New(rand.NewSource(TrialSeed(seed, i))))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	if workers <= 1 {
		for i := 0; i < trials; i++ {
			run(i)
		}
		return samples
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= trials {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	return samples
}

// estimate folds samples into a mean and standard error. Summation is
// serial and in trial order, so the floating-point result is exactly
// reproducible for a given (seed, trials) pair.
func estimate(samples []float64) Estimate {
	n := float64(len(samples))
	mean := 0.0
	for _, s := range samples {
		mean += s
	}
	mean /= n
	varsum := 0.0
	for _, s := range samples {
		varsum += (s - mean) * (s - mean)
	}
	stderr := 0.0
	if len(samples) > 1 {
		stderr = math.Sqrt(varsum / (n - 1) / n)
	}
	return Estimate{
		Trials:      len(samples),
		MeanHours:   mean,
		StdErrHours: stderr,
		MeanYears:   units.YearsFromHours(mean),
	}
}

// EstimateMTTF runs trials independent catastrophe simulations across
// GOMAXPROCS workers.
func (m Model) EstimateMTTF(trials int, seed int64) (Estimate, error) {
	return m.EstimateMTTFWorkers(trials, seed, 0)
}

// EstimateMTTFWorkers is EstimateMTTF with an explicit worker count
// (<= 0 means GOMAXPROCS). The estimate is identical at any count.
func (m Model) EstimateMTTFWorkers(trials int, seed int64, workers int) (Estimate, error) {
	if err := m.Validate(); err != nil {
		return Estimate{}, err
	}
	if trials < 1 {
		return Estimate{}, errors.New("failure: need at least one trial")
	}
	e := estimate(sample(trials, seed, workers, m.timeToCatastrophe))
	e.AnalyticNote = "equations (4)-(5)"
	return e, nil
}

// timeToServerExhaustion simulates the Non-clustered scheme's actual
// degradation condition, which equation (6) only approximates: a buffer
// server is occupied per cluster with a failed *data* disk (parity-disk
// failures need no server, and a second failure in an already-degraded
// cluster is a catastrophe, not a new server demand). Degradation is the
// first data-disk failure that finds all K servers busy.
func (m Model) timeToServerExhaustion(rng *rand.Rand) float64 {
	f := newFarmState(m, rng)
	now := 0.0
	dataPerCluster := make([]int, m.D/m.C)
	// Recompute cluster data-failure counts from the failed set after
	// each event (cheap at these sizes, and immune to ordering bugs).
	recount := func() int {
		for i := range dataPerCluster {
			dataPerCluster[i] = 0
		}
		busy := 0
		for d := range f.failed {
			if d%m.C == m.C-1 {
				continue // dedicated parity drive
			}
			cl := d / m.C
			if dataPerCluster[cl] == 0 {
				busy++
			}
			dataPerCluster[cl]++
		}
		return busy
	}
	for {
		d, t := f.step(now)
		now = t
		if d < 0 {
			continue // repair
		}
		if d%m.C == m.C-1 {
			continue // parity drive: no server needed
		}
		busy := recount() // includes the new failure
		if dataPerCluster[d/m.C] > 1 {
			// Same cluster again: catastrophic, not a new server demand.
			continue
		}
		// The new cluster demands a server; servers are sticky, so if
		// demand now exceeds K the newcomer finds none: degradation.
		if busy > m.K {
			return now
		}
	}
}

// EstimateMTTDSNonClustered runs trials of the scheme-faithful
// Non-clustered degradation simulation. It is longer than equation (6)'s
// estimate on two counts: parity-drive failures (1/C of all failures)
// never consume a server, and repeat failures within a degraded cluster
// are catastrophes rather than server demands.
func (m Model) EstimateMTTDSNonClustered(trials int, seed int64) (Estimate, error) {
	return m.EstimateMTTDSNonClusteredWorkers(trials, seed, 0)
}

// EstimateMTTDSNonClusteredWorkers is EstimateMTTDSNonClustered with an
// explicit worker count (<= 0 means GOMAXPROCS).
func (m Model) EstimateMTTDSNonClusteredWorkers(trials int, seed int64, workers int) (Estimate, error) {
	if err := m.Validate(); err != nil {
		return Estimate{}, err
	}
	if m.K < 1 {
		return Estimate{}, errors.New("failure: degradation needs K >= 1")
	}
	if trials < 1 {
		return Estimate{}, errors.New("failure: need at least one trial")
	}
	e := estimate(sample(trials, seed, workers, m.timeToServerExhaustion))
	e.AnalyticNote = "scheme-faithful NC degradation (cf. equation (6))"
	return e, nil
}

// EstimateMTTDS runs trials degradation simulations (time to K
// overlapping failures) across GOMAXPROCS workers.
func (m Model) EstimateMTTDS(trials int, seed int64) (Estimate, error) {
	return m.EstimateMTTDSWorkers(trials, seed, 0)
}

// EstimateMTTDSWorkers is EstimateMTTDS with an explicit worker count
// (<= 0 means GOMAXPROCS).
func (m Model) EstimateMTTDSWorkers(trials int, seed int64, workers int) (Estimate, error) {
	if err := m.Validate(); err != nil {
		return Estimate{}, err
	}
	if m.K < 1 {
		return Estimate{}, errors.New("failure: degradation needs K >= 1")
	}
	if trials < 1 {
		return Estimate{}, errors.New("failure: need at least one trial")
	}
	e := estimate(sample(trials, seed, workers, m.timeToKOverlapping))
	e.AnalyticNote = "equation (6)"
	return e, nil
}

// AnalyticMTTFHours returns the paper's closed form for the model:
// MTTF²/(D·(C-1)·MTTR) for dedicated parity, MTTF²/(D·(2C-1)·MTTR) for
// intermixed (equations (4)-(5)).
func (m Model) AnalyticMTTFHours() float64 {
	exposure := float64(m.C - 1)
	if m.Placement == layout.IntermixedParity {
		exposure = float64(2*m.C - 1)
	}
	return m.MTTFHours * m.MTTFHours / (float64(m.D) * exposure * m.MTTRHours)
}

// CorrectedIntermixedMTTFHours returns the exposure the simulation
// actually sees for intermixed parity — 3C-1 rather than the paper's
// 2C-1 (both adjacent clusters can pair with a failure, not just the
// right-hand one). For three or more clusters this is the form the
// Monte-Carlo results converge to.
func (m Model) CorrectedIntermixedMTTFHours() float64 {
	return m.MTTFHours * m.MTTFHours / (float64(m.D) * float64(3*m.C-1) * m.MTTRHours)
}

// AnalyticMTTDSHours returns equation (6):
// MTTF^K/(D·(D-1)·…·(D-K+1)·MTTR^(K-1)).
func (m Model) AnalyticMTTDSHours() float64 {
	h := math.Pow(m.MTTFHours, float64(m.K))
	for i := 0; i < m.K; i++ {
		h /= float64(m.D - i)
	}
	return h / math.Pow(m.MTTRHours, float64(m.K-1))
}
