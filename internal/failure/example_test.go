package failure_test

import (
	"fmt"

	"ftmm/internal/failure"
	"ftmm/internal/layout"
)

// Solve the paper's Table 2 reliability point exactly with the
// birth-death chain and compare with equation (4)'s closed form.
func ExampleModel_MarkovMTTFHours() {
	m := failure.Model{
		D: 100, C: 5,
		MTTFHours: 300_000, MTTRHours: 1,
		Placement: layout.DedicatedParity, K: 3,
	}
	exact, err := m.MarkovMTTFHours()
	if err != nil {
		panic(err)
	}
	closed := m.AnalyticMTTFHours()
	fmt.Printf("closed form: %.1f years\n", closed/8760)
	fmt.Printf("exact chain: %.1f years\n", exact/8760)
	// Output:
	// closed form: 25684.9 years
	// exact chain: 25685.7 years
}
