package failure

import (
	"errors"
	"fmt"
)

// This file computes the reliability quantities exactly, as mean
// absorption times of continuous-time birth-death Markov chains — a
// third, independent check sitting between the paper's closed-form
// approximations (equations (4)-(6)) and the Monte-Carlo simulation.
//
// State j counts concurrently failed disks. For the dedicated-parity
// catastrophe chain, reachable states have every failed disk in a
// distinct cluster; from state j a new failure is catastrophic exactly
// when it hits one of the j damaged clusters' C-1 surviving drives:
//
//	up      a_j = (D - j·C)·λ      (failure in an untouched cluster)
//	absorb  c_j = j·(C-1)·λ        (second failure in a damaged cluster)
//	down    b_j = j·μ              (a repair completes)
//
// The mean time to absorption T_0 solves the tridiagonal system
// (a_j+b_j+c_j)·T_j − a_j·T_{j+1} − b_j·T_{j−1} = 1.

// MarkovMTTFHours returns the exact mean time to catastrophic failure
// for dedicated parity placement (two failures in one cluster), solving
// the birth-death chain above. Only the dedicated topology has the
// product-form state space that keeps the chain one-dimensional; use the
// Monte-Carlo estimator for intermixed parity.
func (m Model) MarkovMTTFHours() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	lambda := 1 / m.MTTFHours
	mu := 1 / m.MTTRHours
	nc := m.D / m.C
	// States j = 0..nc (all clusters damaged at j = nc).
	n := nc + 1
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for j := 0; j < n; j++ {
		up := float64(m.D-j*m.C) * lambda
		if up < 0 {
			up = 0
		}
		if j == n-1 {
			up = 0 // no untouched cluster left
		}
		a[j] = up
		b[j] = float64(j) * mu
		c[j] = float64(j*(m.C-1)) * lambda
	}
	return solveAbsorption(a, b, c)
}

// MarkovMTTDSHours returns the exact mean time until K disks are down
// concurrently (the degradation-of-service event of equation (6)),
// regardless of placement: a pure birth-death chain on the failed count
// absorbing at K.
func (m Model) MarkovMTTDSHours() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if m.K < 1 {
		return 0, errors.New("failure: degradation needs K >= 1")
	}
	if m.K > m.D {
		return 0, fmt.Errorf("failure: K=%d exceeds D=%d", m.K, m.D)
	}
	lambda := 1 / m.MTTFHours
	mu := 1 / m.MTTRHours
	// States j = 0..K-1; from K-1 any further failure absorbs.
	n := m.K
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for j := 0; j < n; j++ {
		rate := float64(m.D-j) * lambda
		if j == n-1 {
			a[j], c[j] = 0, rate // the K-th failure absorbs
		} else {
			a[j], c[j] = rate, 0
		}
		b[j] = float64(j) * mu
	}
	return solveAbsorption(a, b, c)
}

// solveAbsorption solves (a_j+b_j+c_j)·T_j − a_j·T_{j+1} − b_j·T_{j−1} = 1
// for T_0 with the Thomas algorithm. b_0 must be 0; every state needs a
// path to absorption (some c_j > 0 reachable).
func solveAbsorption(a, b, c []float64) (float64, error) {
	n := len(a)
	if n == 0 {
		return 0, errors.New("failure: empty chain")
	}
	// Forward elimination on the tridiagonal system
	//   diag_j = a_j + b_j + c_j,  upper_j = -a_j,  lower_j = -b_j.
	diag := make([]float64, n)
	rhs := make([]float64, n)
	for j := 0; j < n; j++ {
		diag[j] = a[j] + b[j] + c[j]
		rhs[j] = 1
	}
	for j := 1; j < n; j++ {
		if diag[j-1] == 0 {
			return 0, errors.New("failure: chain has an isolated state (no rates)")
		}
		factor := b[j] / diag[j-1]
		diag[j] -= factor * a[j-1]
		rhs[j] += factor * rhs[j-1]
	}
	// Back substitution.
	t := make([]float64, n)
	if diag[n-1] == 0 {
		return 0, errors.New("failure: chain cannot absorb from its top state")
	}
	t[n-1] = rhs[n-1] / diag[n-1]
	for j := n - 2; j >= 0; j-- {
		if diag[j] == 0 {
			return 0, errors.New("failure: degenerate chain state")
		}
		t[j] = (rhs[j] + a[j]*t[j+1]) / diag[j]
	}
	return t[0], nil
}
