package failure

import (
	"math"
	"testing"

	"ftmm/internal/layout"
)

// The Markov solution must agree with the Monte-Carlo estimate within
// sampling error, and sit close to the closed form (which drops
// higher-order terms).
func TestMarkovMTTFMatchesMonteCarlo(t *testing.T) {
	m := scaled(layout.DedicatedParity, 3)
	exact, err := m.MarkovMTTFHours()
	if err != nil {
		t.Fatal(err)
	}
	mc, err := m.EstimateMTTF(3000, 21)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc.MeanHours-exact) > 4*mc.StdErrHours {
		t.Fatalf("Markov %.1f h vs MC %.1f ± %.1f h", exact, mc.MeanHours, mc.StdErrHours)
	}
	// The closed form underestimates slightly; within 10% at this scale.
	closed := m.AnalyticMTTFHours()
	if ratio := exact / closed; ratio < 0.95 || ratio > 1.10 {
		t.Fatalf("Markov/closed ratio = %.3f", ratio)
	}
}

func TestMarkovMTTDSMatchesMonteCarlo(t *testing.T) {
	m := scaled(layout.DedicatedParity, 2)
	m.MTTFHours = 5000
	exact, err := m.MarkovMTTDSHours()
	if err != nil {
		t.Fatal(err)
	}
	mc, err := m.EstimateMTTDS(3000, 22)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc.MeanHours-exact) > 4*mc.StdErrHours {
		t.Fatalf("Markov %.1f h vs MC %.1f ± %.1f h", exact, mc.MeanHours, mc.StdErrHours)
	}
}

// At the paper's scale the closed forms converge to the Markov solution.
func TestMarkovConvergesToClosedFormAtPaperScale(t *testing.T) {
	m := Model{D: 100, C: 5, MTTFHours: 300_000, MTTRHours: 1, Placement: layout.DedicatedParity, K: 3}
	exact, err := m.MarkovMTTFHours()
	if err != nil {
		t.Fatal(err)
	}
	closed := m.AnalyticMTTFHours()
	if ratio := exact / closed; math.Abs(ratio-1) > 0.002 {
		t.Fatalf("paper-scale Markov/closed = %.5f, want ~1", ratio)
	}
	// Finding: the paper's equation (6) omits a (K-1)! factor — with j
	// disks under repair the aggregate repair rate is j·mu, so the true
	// mean time to K overlapping failures is (K-1)! times the equation's
	// value. At K=3 the exact chain sits at 2.0x the closed form (the
	// conservative direction: real MTTDS is better than the paper says).
	exactDS, err := m.MarkovMTTDSHours()
	if err != nil {
		t.Fatal(err)
	}
	closedDS := m.AnalyticMTTDSHours()
	if ratio := exactDS / closedDS; math.Abs(ratio-2) > 0.01 {
		t.Fatalf("paper-scale MTTDS Markov/closed = %.5f, want ~(K-1)! = 2", ratio)
	}
}

// Monte-Carlo confirmation of the (K-1)! finding at K=3: the simulation
// agrees with the Markov chain, not with equation (6).
func TestMTTDSFactorialFactorConfirmedByMC(t *testing.T) {
	m := scaled(layout.DedicatedParity, 3)
	m.MTTFHours = 3000
	exact, err := m.MarkovMTTDSHours()
	if err != nil {
		t.Fatal(err)
	}
	mc, err := m.EstimateMTTDS(1500, 31)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc.MeanHours-exact) > 4*mc.StdErrHours+0.05*exact {
		t.Fatalf("MC %.0f ± %.0f h vs Markov %.0f h", mc.MeanHours, mc.StdErrHours, exact)
	}
	// And it is clearly ~2x the closed form, not ~1x.
	if ratio := mc.MeanHours / m.AnalyticMTTDSHours(); ratio < 1.6 {
		t.Fatalf("MC/closed ratio = %.2f; expected the (K-1)! factor to show", ratio)
	}
}

// MTTDS with K=1 is simply the time to first failure, MTTF/D — an exact
// anchor for the solver.
func TestMarkovMTTDSKOne(t *testing.T) {
	m := Model{D: 50, C: 5, MTTFHours: 1000, MTTRHours: 1, Placement: layout.DedicatedParity, K: 1}
	got, err := m.MarkovMTTDSHours()
	if err != nil {
		t.Fatal(err)
	}
	if want := 1000.0 / 50; math.Abs(got-want) > 1e-9 {
		t.Fatalf("K=1 MTTDS = %v, want %v", got, want)
	}
}

// With C=2 (mirrored pairs) the chain is still well-formed.
func TestMarkovMirroredPairs(t *testing.T) {
	m := Model{D: 10, C: 2, MTTFHours: 1000, MTTRHours: 1, Placement: layout.DedicatedParity, K: 2}
	got, err := m.MarkovMTTFHours()
	if err != nil {
		t.Fatal(err)
	}
	closed := m.AnalyticMTTFHours() // 1000²/(10·1·1) = 100,000 h
	if ratio := got / closed; ratio < 0.95 || ratio > 1.1 {
		t.Fatalf("mirrored Markov/closed = %.3f", ratio)
	}
}

func TestMarkovErrors(t *testing.T) {
	bad := Model{D: 40, C: 0, MTTFHours: 500, MTTRHours: 1}
	if _, err := bad.MarkovMTTFHours(); err == nil {
		t.Error("invalid model accepted")
	}
	m := scaled(layout.DedicatedParity, 0)
	if _, err := m.MarkovMTTDSHours(); err == nil {
		t.Error("K=0 accepted")
	}
	m.K = 1000
	if _, err := m.MarkovMTTDSHours(); err == nil {
		t.Error("K>D accepted")
	}
	if _, err := solveAbsorption(nil, nil, nil); err == nil {
		t.Error("empty chain accepted")
	}
	// A chain with no absorption anywhere must error, not loop.
	if _, err := solveAbsorption([]float64{0}, []float64{0}, []float64{0}); err == nil {
		t.Error("absorption-free chain accepted")
	}
}

// Monotonicity: faster repair extends MTTF; bigger farms shrink it.
func TestMarkovMonotonicity(t *testing.T) {
	base := scaled(layout.DedicatedParity, 3)
	fast := base
	fast.MTTRHours = 0.5
	tBase, _ := base.MarkovMTTFHours()
	tFast, _ := fast.MarkovMTTFHours()
	if tFast <= tBase {
		t.Fatalf("halving MTTR should raise MTTF: %v <= %v", tFast, tBase)
	}
	big := base
	big.D = 80
	tBig, _ := big.MarkovMTTFHours()
	if tBig >= tBase {
		t.Fatalf("doubling D should lower MTTF: %v >= %v", tBig, tBase)
	}
}
