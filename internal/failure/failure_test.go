package failure

import (
	"math"
	"testing"

	"ftmm/internal/layout"
)

// scaled returns a model small enough to Monte-Carlo quickly: MTTF is
// scaled down but stays >> MTTR, preserving the rare-event structure.
func scaled(placement layout.Placement, k int) Model {
	return Model{
		D: 40, C: 4,
		MTTFHours: 500, MTTRHours: 1,
		Placement: placement, K: k,
	}
}

func TestValidate(t *testing.T) {
	if err := scaled(layout.DedicatedParity, 3).Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := []Model{
		{D: 40, C: 1, MTTFHours: 500, MTTRHours: 1},
		{D: 41, C: 4, MTTFHours: 500, MTTRHours: 1},
		{D: 40, C: 4, MTTFHours: 0, MTTRHours: 1},
		{D: 40, C: 4, MTTFHours: 500, MTTRHours: 0},
		{D: 40, C: 4, MTTFHours: 1, MTTRHours: 2},
		{D: 40, C: 4, MTTFHours: 500, MTTRHours: 1, K: -1},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

// The dedicated-parity Monte-Carlo MTTF must agree with equation (4).
func TestMTTFDedicatedMatchesAnalytic(t *testing.T) {
	m := scaled(layout.DedicatedParity, 3)
	est, err := m.EstimateMTTF(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := m.AnalyticMTTFHours() // 500²/(40·3·1) = 2083 h
	if math.Abs(est.MeanHours-want) > 4*est.StdErrHours+0.05*want {
		t.Fatalf("MC MTTF = %.0f ± %.0f h, analytic %.0f h", est.MeanHours, est.StdErrHours, want)
	}
}

// The intermixed-parity Monte-Carlo MTTF converges to the corrected
// 3C-1 exposure, sitting between the paper's 2C-1 form and half of it.
func TestMTTFIntermixedMatchesCorrectedForm(t *testing.T) {
	m := scaled(layout.IntermixedParity, 3)
	est, err := m.EstimateMTTF(2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	corrected := m.CorrectedIntermixedMTTFHours() // exposure 3C-1 = 11
	if math.Abs(est.MeanHours-corrected) > 4*est.StdErrHours+0.05*corrected {
		t.Fatalf("MC MTTF = %.0f ± %.0f h, corrected analytic %.0f h", est.MeanHours, est.StdErrHours, corrected)
	}
	// And it must be clearly below the paper's 2C-1 form and the
	// dedicated-parity MTTF (IB is less reliable, §4).
	if est.MeanHours >= m.AnalyticMTTFHours() {
		t.Fatalf("MC %.0f h >= paper's optimistic form %.0f h", est.MeanHours, m.AnalyticMTTFHours())
	}
	ded := scaled(layout.DedicatedParity, 3)
	if est.MeanHours >= ded.AnalyticMTTFHours() {
		t.Fatal("intermixed MTTF not below dedicated MTTF")
	}
}

// The degradation Monte-Carlo must agree with equation (6). The formula
// is a rare-event approximation (it drops the O(MTTR·D/MTTF) terms), so
// this test scales MTTF less aggressively than the others.
func TestMTTDSMatchesAnalytic(t *testing.T) {
	m := scaled(layout.DedicatedParity, 2)
	m.MTTFHours = 5000
	est, err := m.EstimateMTTDS(2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := m.AnalyticMTTDSHours() // 500²/(40·39·1) = 160.3 h
	if math.Abs(est.MeanHours-want) > 4*est.StdErrHours+0.08*want {
		t.Fatalf("MC MTTDS = %.1f ± %.1f h, analytic %.1f h", est.MeanHours, est.StdErrHours, want)
	}
}

// MTTDS grows enormously with K (each extra overlapping failure is a
// factor of roughly MTTF/(D·MTTR)).
func TestMTTDSGrowsWithK(t *testing.T) {
	m2 := scaled(layout.DedicatedParity, 2)
	m3 := scaled(layout.DedicatedParity, 3)
	e2, err := m2.EstimateMTTDS(400, 4)
	if err != nil {
		t.Fatal(err)
	}
	e3, err := m3.EstimateMTTDS(400, 5)
	if err != nil {
		t.Fatal(err)
	}
	if e3.MeanHours < 3*e2.MeanHours {
		t.Fatalf("K=3 MTTDS (%.0f) not much larger than K=2 (%.0f)", e3.MeanHours, e2.MeanHours)
	}
}

func TestEstimateErrors(t *testing.T) {
	m := scaled(layout.DedicatedParity, 0)
	if _, err := m.EstimateMTTDS(10, 1); err == nil {
		t.Error("K=0 MTTDS accepted")
	}
	if _, err := m.EstimateMTTF(0, 1); err == nil {
		t.Error("zero trials accepted")
	}
	bad := m
	bad.C = 0
	if _, err := bad.EstimateMTTF(10, 1); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestDeterminism(t *testing.T) {
	m := scaled(layout.DedicatedParity, 3)
	a, _ := m.EstimateMTTF(50, 42)
	b, _ := m.EstimateMTTF(50, 42)
	if a.MeanHours != b.MeanHours {
		t.Fatal("same seed produced different estimates")
	}
	c, _ := m.EstimateMTTF(50, 43)
	if a.MeanHours == c.MeanHours {
		t.Fatal("different seeds produced identical estimates")
	}
}

// TestWorkerCountInvariance pins the parallel sampler's contract: trial
// i draws from a source derived only from (seed, i), and the summation
// runs in trial order, so the estimate is bit-identical at any worker
// count.
func TestWorkerCountInvariance(t *testing.T) {
	m := scaled(layout.DedicatedParity, 3)
	type est func(trials int, seed int64, workers int) (Estimate, error)
	cases := []struct {
		name string
		fn   est
	}{
		{"mttf", m.EstimateMTTFWorkers},
		{"mttds", m.EstimateMTTDSWorkers},
		{"mttds-nc", m.EstimateMTTDSNonClusteredWorkers},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial, err := tc.fn(64, 7, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				par, err := tc.fn(64, 7, workers)
				if err != nil {
					t.Fatal(err)
				}
				if par != serial {
					t.Fatalf("workers=%d: %+v != serial %+v", workers, par, serial)
				}
			}
		})
	}
}

// Sanity on the closed forms themselves at the paper's scale.
func TestAnalyticFormsPaperScale(t *testing.T) {
	m := Model{D: 100, C: 5, MTTFHours: 300_000, MTTRHours: 1, Placement: layout.DedicatedParity, K: 3}
	if got := m.AnalyticMTTFHours(); math.Abs(got-2.25e8) > 1 {
		t.Errorf("analytic MTTF = %v, want 2.25e8", got)
	}
	mi := m
	mi.Placement = layout.IntermixedParity
	if got := mi.AnalyticMTTFHours(); math.Abs(got-1e8) > 1 {
		t.Errorf("analytic IB MTTF = %v, want 1e8", got)
	}
	if got := m.AnalyticMTTDSHours(); math.Abs(got-2.7e16/970200) > 1e6 {
		t.Errorf("analytic MTTDS = %v", got)
	}
}

// The scheme-faithful Non-clustered degradation must be rarer than the
// generic K-overlapping-failure approximation of equation (6): parity
// drives (1/C of failures) never demand a server, and repeat failures in
// an already-degraded cluster do not either.
func TestNCDegradationRarerThanEquation6(t *testing.T) {
	m := scaled(layout.DedicatedParity, 2)
	m.MTTFHours = 2000
	generic, err := m.EstimateMTTDS(1200, 51)
	if err != nil {
		t.Fatal(err)
	}
	faithful, err := m.EstimateMTTDSNonClustered(1200, 52)
	if err != nil {
		t.Fatal(err)
	}
	if faithful.MeanHours <= generic.MeanHours {
		t.Fatalf("faithful NC MTTDS %.0f h not above generic %.0f h", faithful.MeanHours, generic.MeanHours)
	}
	// The gap must exceed what the parity-drive discount alone gives:
	// demands arrive at (C-1)/C the failure rate, so with K=2 the time
	// scales by at least (C/(C-1))^2 = 16/9.
	minRatio := 16.0 / 9 * 0.85 // sampling slack
	if ratio := faithful.MeanHours / generic.MeanHours; ratio < minRatio {
		t.Fatalf("faithful/generic = %.2f, want >= %.2f", ratio, minRatio)
	}
}

func TestNCDegradationErrors(t *testing.T) {
	m := scaled(layout.DedicatedParity, 0)
	if _, err := m.EstimateMTTDSNonClustered(10, 1); err == nil {
		t.Error("K=0 accepted")
	}
	m.K = 2
	if _, err := m.EstimateMTTDSNonClustered(0, 1); err == nil {
		t.Error("zero trials accepted")
	}
	bad := m
	bad.C = 0
	if _, err := bad.EstimateMTTDSNonClustered(10, 1); err == nil {
		t.Error("invalid model accepted")
	}
}
