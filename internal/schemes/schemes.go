// Package schemes implements the paper's four fault-tolerance schemes as
// operational cycle-driven simulators over a real (simulated) disk farm:
//
//   - StreamingRAID (§2): whole parity group read per stream per cycle,
//     delivered the next cycle; single failures masked with zero hiccups.
//   - StaggeredGroup (§2): same layout, group read once per C-1 short
//     cycles and delivered one track per cycle; ~half the memory.
//   - NonClustered (§3): one track read per stream per cycle; a failure
//     puts the cluster through a C-cycle transition (losing some tracks,
//     per Figures 6-7) into a degraded group-at-a-time mode backed by a
//     shared buffer-server pool.
//   - ImprovedBandwidth (§4): parity intermixed on the next cluster; no
//     parity bandwidth spent in normal mode; failures masked by a chained
//     "shift to the right" into reserved capacity.
//
// A fifth scheme extends the paper: Declustered (dc.go) keeps SR's
// group-at-a-time cycle but maps parity groups onto block-design
// subsets of G-drive declustering groups, spreading rebuild load over
// every survivor instead of C-1 cluster mates.
//
// Every simulator moves real bytes: deliveries carry track content that
// tests compare against the originally written object data, so masking a
// failure means proving the reconstructed bytes are identical.
//
// # Report retention
//
// The *sched.CycleReport returned by Step — and every Delivery.Data
// slice inside it — is valid only until the engine's next Step: engines
// reuse the report's backing slices and recycle delivered track buffers
// through a buffer.Arena (DESIGN.md, "Zero-alloc data path"). A caller
// that holds a report across Steps must deep-copy it first with
// CycleReport.Clone; trace.Recorder.Observe copies delivered bytes for
// the same reason, and the network layer copies them into wire frames
// at the socket boundary. Reading a stale report is a use-after-free
// the race detector cannot see — the bytes stay valid, just wrong.
package schemes

import (
	"errors"
	"fmt"
	"time"

	"ftmm/internal/buffer"
	"ftmm/internal/disk"
	"ftmm/internal/layout"
	"ftmm/internal/metrics"
	"ftmm/internal/parity"
	"ftmm/internal/sched"
	"ftmm/internal/units"
)

// Simulator is the behaviour common to all four scheme engines.
type Simulator interface {
	// Name returns the paper's name for the scheme.
	Name() string
	// Cycle returns the index of the next cycle Step will run.
	Cycle() int
	// CycleTime returns the wall-clock length of one cycle.
	CycleTime() time.Duration
	// AddStream admits a stream for a placed object, returning its ID.
	// Admission fails when the scheme's bandwidth budget is exhausted.
	AddStream(obj *layout.Object) (int, error)
	// Step simulates one cycle: reads, failure handling, deliveries.
	Step() (*sched.CycleReport, error)
	// FailDisk fails a drive at the upcoming cycle boundary.
	FailDisk(id int) error
	// Active returns the number of streams still being served.
	Active() int
	// BufferPeak returns the high-water buffer occupancy in tracks.
	BufferPeak() int
	// BufferInUse returns the current buffer occupancy in tracks; with
	// no streams active and deliveries drained it must return to zero
	// (the chaos harness's leak checker asserts exactly that).
	BufferInUse() int
	// Arena exposes the engine's track-buffer recycler, mainly so leak
	// tests can assert every shared buffer was Released.
	Arena() *buffer.Arena
}

// Config carries what every scheme engine needs.
type Config struct {
	Farm   *disk.Farm
	Layout *layout.Layout
	// Rate is the object bandwidth b0 (uniform across streams, as in the
	// paper's analysis).
	Rate units.Rate
	// SlotsPerDisk overrides the per-disk per-cycle track budget; 0
	// derives it from the disk model and the scheme's cycle time.
	SlotsPerDisk int
	// Workers bounds the per-cluster parallelism inside a cycle: 0 uses
	// GOMAXPROCS, 1 runs fully serial. Any value produces bit-identical
	// cycle reports for the same inputs.
	Workers int
	// DisableMergedReads turns off same-title read merging in the
	// Streaming RAID engine (streams staging the same parity group in
	// the same cycle share one physical read). Merging never changes
	// reports — every sharer still pays slots, pool tracks, and read
	// counters — so this knob exists for benchmarking the unmerged path
	// and bisecting, not for correctness.
	DisableMergedReads bool
	// Metrics, when non-nil, receives the engine's counters, gauges and
	// histograms (see sched.NewRecorder for the instrument set).
	Metrics *metrics.Registry
}

func (c Config) validate() error {
	if c.Farm == nil || c.Layout == nil {
		return errors.New("schemes: nil farm or layout")
	}
	if c.Rate <= 0 {
		return errors.New("schemes: object rate must be positive")
	}
	if c.SlotsPerDisk < 0 {
		return errors.New("schemes: negative slot budget")
	}
	if c.Farm.Size() != c.Layout.Clusters()*c.Layout.ClusterSize() ||
		c.Farm.ClusterSize() != c.Layout.ClusterSize() {
		return errors.New("schemes: farm and layout topologies differ")
	}
	return nil
}

// slotsFor resolves the per-disk budget for a cycle of the given k'.
func (c Config) slotsFor(kPrime int) (int, error) {
	if c.SlotsPerDisk > 0 {
		return c.SlotsPerDisk, nil
	}
	window := c.Farm.Params().CycleTime(kPrime, c.Rate)
	budget := c.Farm.Params().TrackBudget(window)
	if budget < 1 {
		return 0, fmt.Errorf("schemes: cycle of k'=%d tracks leaves no read budget", kPrime)
	}
	return budget, nil
}

// groupRead is the outcome of reading one parity group with failures
// tolerated: per-track data (nil where unreadable), the parity block (nil
// if unreadable), and how many track reads succeeded.
type groupRead struct {
	data        [][]byte
	par         []byte
	dataReads   int
	parityReads int
}

// readTrackArena reads one track into a buffer from the arena, returning
// the buffer to the arena on failure. A nil arena falls back to plain
// allocation (used by tests poking at helpers directly).
func readTrackArena(drv *disk.Drive, track int, arena *buffer.Arena) ([]byte, error) {
	if arena == nil {
		return drv.ReadTrack(track)
	}
	buf := arena.Get()
	if err := drv.ReadTrackInto(buf, track); err != nil {
		arena.Put(buf)
		return nil, err
	}
	return buf, nil
}

// readGroup reads every block of a parity group from the farm into arena
// buffers, tolerating failed drives.
func readGroup(f *disk.Farm, g *layout.Group, withParity bool, arena *buffer.Arena) groupRead {
	out := groupRead{data: make([][]byte, len(g.Data))}
	for i, loc := range g.Data {
		drv, err := f.Drive(loc.Disk)
		if err != nil {
			continue
		}
		blk, err := readTrackArena(drv, loc.Track, arena)
		if err == nil {
			out.data[i] = blk
			out.dataReads++
		}
	}
	if withParity {
		if drv, err := f.Drive(g.Parity.Disk); err == nil {
			if blk, err := readTrackArena(drv, g.Parity.Track, arena); err == nil {
				out.par = blk
				out.parityReads++
			}
		}
	}
	return out
}

// recoverGroup fills in a single missing data block from the others plus
// parity, in place and without allocating: the surviving data blocks are
// folded into the parity buffer, whose ownership then moves to the
// missing data slot (par becomes nil). It returns the index recovered,
// or -1 if nothing was missing, and an error when recovery is impossible
// (two or more blocks missing, or parity unavailable).
func (gr *groupRead) recoverGroup() (int, error) {
	missing := -1
	for i, d := range gr.data {
		if d == nil {
			if missing >= 0 {
				return 0, errors.New("schemes: two data blocks missing in one parity group (catastrophic)")
			}
			missing = i
		}
	}
	if missing < 0 {
		return -1, nil
	}
	if gr.par == nil {
		return 0, errors.New("schemes: missing block and no parity available")
	}
	for i, d := range gr.data {
		if i == missing {
			continue
		}
		if err := parity.XORInto(gr.par, d); err != nil {
			return 0, err
		}
	}
	gr.data[missing] = gr.par
	gr.par = nil
	return missing, nil
}

// bufferedGroup is a fully (or partially) read parity group staged for
// delivery. Under same-title read merging several streams may stage the
// same group in one cycle and share this struct; the physical buffers
// are read once, but every sharer carries its own logical accounting
// (slots, pooled tracks, report counters), so merged and unmerged runs
// produce bit-identical reports.
type bufferedGroup struct {
	group *layout.Group
	// data[i] holds track i of the group, nil where lost (or after its
	// ownership moved to refs[i] at delivery).
	data [][]byte
	// reconstructed[i] marks tracks rebuilt from parity.
	reconstructed []bool
	// next is the next in-group offset to deliver.
	next int
	// pooled is how many buffer-pool tracks ONE sharer of this group
	// holds; each sharer Acquires and Releases this amount.
	pooled int
	// shares counts the streams currently sharing this staged group.
	// Delivery and cancellation each drop one share; the buffers recycle
	// only when the last sharer lets go.
	shares int
	// refs[i] is the delivery ref for track i, filled by the first
	// sharer to deliver it; later sharers Retain the same ref instead of
	// minting a second one (two independent refs on one buffer would
	// double-free it back to the arena).
	refs []*buffer.Ref
	// dataReads/parityReads/recovered snapshot the physical read outcome
	// so sharers staging after the read replay identical report counters.
	dataReads   int
	parityReads int
	recovered   bool
}

// newPool builds the unbounded accounting pool every engine uses.
func newPool() *buffer.Pool {
	p, err := buffer.NewPool(0)
	if err != nil {
		// NewPool(0) cannot fail; keep the invariant loud.
		panic(err)
	}
	return p
}
