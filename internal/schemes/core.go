package schemes

import (
	"errors"
	"fmt"

	"ftmm/internal/buffer"
	"ftmm/internal/layout"
	"ftmm/internal/sched"
)

// ErrCapacity marks an admission-bound refusal — a rate change or
// admission that would push some cluster past its per-disk slot budget.
// Callers distinguish it from unknown-stream or validation errors to
// decide whether a retry later can succeed.
var ErrCapacity = errors.New("schemes: capacity")

// engineCore is the chassis shared by the four scheme engines: the
// validated configuration, the per-disk slot budget, the cycle counter,
// stream-ID allocation, the buffer pool, the metrics recorder, and the
// bounded per-cluster worker pool. Engines embed it and keep only their
// scheme-specific scheduling logic.
type engineCore struct {
	cfg          Config
	slotsPerDisk int
	cycle        int
	nextID       int
	pool         *buffer.Pool
	// arena recycles track-sized byte buffers across cycles; pool above
	// remains the paper's track-count accounting.
	arena   *buffer.Arena
	rec     *sched.Recorder
	workers int
	// ctx and shards are the persistent cycle context and per-cluster
	// shards, reset each Step instead of reallocated. The context
	// double-buffers its report, so a report returned by Step is valid
	// until the second-next Step (then its struct is reused).
	ctx    *sched.CycleContext
	shards []*sched.CycleContext
	// delivered holds the engine's own reference on every track buffer
	// shared into the last Step's report; deliveredPrev holds the
	// references for the Step before that. beginCycle releases the older
	// generation and rotates, so delivered bytes stay intact for two
	// Steps — matching the double-buffered report — which lets a
	// pipelined consumer stage cycle N's tracks while the engine reads
	// cycle N+1. Consumers that need a track longer Retain its
	// Delivery.Buf.
	delivered     []*buffer.Ref
	deliveredPrev []*buffer.Ref
	// stageCaches[cl] maps group → staged bufferedGroup for same-title
	// read merging within one cycle's read phase. One map per cluster:
	// a group lives on exactly one cluster, and the read phase shards by
	// cluster, so each map is touched by a single goroutine.
	stageCaches []map[*layout.Group]*bufferedGroup
}

// newEngineCore validates the config and builds the chassis for an
// engine whose cycle reads k' tracks per stream.
func newEngineCore(cfg Config, kPrime int) (engineCore, error) {
	if err := cfg.validate(); err != nil {
		return engineCore{}, err
	}
	slots, err := cfg.slotsFor(kPrime)
	if err != nil {
		return engineCore{}, err
	}
	return engineCore{
		cfg:          cfg,
		slotsPerDisk: slots,
		pool:         newPool(),
		arena:        buffer.NewArena(int(cfg.Farm.Params().TrackSize)),
		rec:          sched.NewRecorder(cfg.Metrics),
		workers:      cfg.Workers,
	}, nil
}

// Cycle implements Simulator.
func (c *engineCore) Cycle() int { return c.cycle }

// SlotsPerDisk returns the per-disk per-cycle track budget in use.
func (c *engineCore) SlotsPerDisk() int { return c.slotsPerDisk }

// BufferPeak implements Simulator.
func (c *engineCore) BufferPeak() int { return c.pool.Peak() }

// BufferInUse returns the current buffer occupancy in tracks.
func (c *engineCore) BufferInUse() int { return c.pool.InUse() }

// Arena implements Simulator, exposing the byte-buffer recycler for
// refcount leak accounting.
func (c *engineCore) Arena() *buffer.Arena { return c.arena }

// shareDelivered wraps a delivered track buffer in a refcounted handle.
// The engine keeps its own reference until the second-next Step's
// beginCycle (the delivered/deliveredPrev rotation).
func (c *engineCore) shareDelivered(buf []byte) *buffer.Ref {
	ref := c.arena.Share(buf)
	c.delivered = append(c.delivered, ref)
	return ref
}

// FailDisk implements Simulator for engines with no extra failure
// bookkeeping (the Non-clustered engine overrides this).
func (c *engineCore) FailDisk(id int) error {
	drv, err := c.cfg.Farm.Drive(id)
	if err != nil {
		return err
	}
	return drv.Fail()
}

// allocStreamID hands out the next stream ID.
func (c *engineCore) allocStreamID() int {
	id := c.nextID
	c.nextID++
	return id
}

// beginCycle opens the cycle's context: cleared slot budgets, the shared
// pool, an emptied report, and the recorder. The context is persistent —
// reset, not reallocated — and double-buffered, so the report Step hands
// out is valid until the second-next Step.
func (c *engineCore) beginCycle() (*sched.CycleContext, error) {
	// Drop the engine's references on the delivered tracks from two
	// cycles ago; buffers with no other holders return to the arena
	// here, before this cycle's reads can reuse them. Last cycle's
	// tracks rotate into the about-to-be-released slot, keeping them —
	// and the report that lists them — intact across this whole Step.
	for i, ref := range c.deliveredPrev {
		ref.Release()
		c.deliveredPrev[i] = nil
	}
	c.delivered, c.deliveredPrev = c.deliveredPrev[:0], c.delivered
	if c.ctx == nil {
		slots, err := sched.NewSlots(c.cfg.Farm.Size(), c.slotsPerDisk)
		if err != nil {
			return nil, err
		}
		c.ctx = sched.NewCycleContext(c.cycle, slots, c.pool, c.rec)
		return c.ctx, nil
	}
	c.ctx.Reset(c.cycle)
	return c.ctx, nil
}

// endCycle closes the cycle: stamps buffer occupancy, feeds the metrics
// recorder, and advances the clock.
func (c *engineCore) endCycle(ctx *sched.CycleContext) *sched.CycleReport {
	rep := ctx.Finish()
	c.cycle++
	return rep
}

// runClusters fans one cycle phase out across clusters on the bounded
// worker pool. Each cluster's work records into a private shard of ctx;
// shards merge back in cluster-index order, so the assembled report is
// bit-identical at any worker count. Correct only for phases whose
// per-cluster work touches disjoint disks (true for every scheme here:
// a stream's reads stay within its current cluster).
func (c *engineCore) runClusters(ctx *sched.CycleContext, fn func(shard *sched.CycleContext, cl int) error) error {
	n := c.cfg.Layout.Clusters()
	if c.shards == nil {
		c.shards = make([]*sched.CycleContext, n)
	}
	if err := sched.RunClusters(n, c.workers, func(cl int) error {
		shard := c.shards[cl]
		if shard == nil {
			shard = ctx.Shard()
			c.shards[cl] = shard
		} else {
			// Rewind only the shard's private report; slot budgets are
			// shared with ctx and were reset in beginCycle.
			shard.Cycle = ctx.Cycle
			shard.Rep.Reset(ctx.Cycle)
		}
		return fn(shard, cl)
	}); err != nil {
		return err
	}
	ctx.MergeShards(c.shards...)
	return nil
}

// ensureStageCaches sizes the per-cluster stage-cache table. Called
// before the parallel read phase so workers only ever write their own
// cluster's slot.
func (c *engineCore) ensureStageCaches() {
	if c.stageCaches == nil {
		c.stageCaches = make([]map[*layout.Group]*bufferedGroup, c.cfg.Layout.Clusters())
	}
}

// stageCacheFor returns cluster cl's same-title stage cache, emptied for
// this cycle. Callers must have run ensureStageCaches first and must be
// the (single) goroutine working cluster cl.
func (c *engineCore) stageCacheFor(cl int) map[*layout.Group]*bufferedGroup {
	m := c.stageCaches[cl]
	if m == nil {
		m = make(map[*layout.Group]*bufferedGroup, 4)
		c.stageCaches[cl] = m
	}
	clear(m)
	return m
}

// releaseGroups drops one sharer's hold on the given buffered groups
// (nils are fine): the sharer's pooled tracks return to the pool, and
// when the last sharer lets go the byte buffers recycle to the arena.
func (c *engineCore) releaseGroups(bgs ...*bufferedGroup) error {
	for _, bg := range bgs {
		if bg == nil {
			continue
		}
		if bg.pooled > 0 {
			if err := c.pool.Release(bg.pooled); err != nil {
				return err
			}
		}
		if bg.shares > 1 {
			bg.shares--
			continue
		}
		bg.shares = 0
		bg.pooled = 0
		c.recycleGroup(bg)
	}
	return nil
}

// recycleGroup hands a buffered group's remaining track buffers back to
// the arena and clears the slots. Callers must ensure no live CycleReport
// older than the current Step references the buffers (delivered buffers
// recycled here stay intact until the next Step's reads reuse them).
func (c *engineCore) recycleGroup(bg *bufferedGroup) {
	if bg == nil {
		return
	}
	for i, d := range bg.data {
		if d != nil {
			c.arena.Put(d)
			bg.data[i] = nil
		}
	}
}

// engineStream lets generic helpers reach the embedded sched.Stream of
// any engine's stream type.
type engineStream interface {
	stream() *sched.Stream
}

// streamProgress reports a stream's delivery progress: the next track
// owed to the client and the object's total tracks. ok is false for
// streams the engine never knew or has forgotten; finished and
// terminated streams still report (next pinned at total for finished).
func streamProgress[S engineStream](streams []S, id int) (next, total int, ok bool) {
	for _, s := range streams {
		if st := s.stream(); st.ID == id {
			return st.NextDeliver, st.Obj.Tracks, true
		}
	}
	return 0, 0, false
}

// checkStartGroup validates an AddStreamAt origin: it must index an
// existing parity group of the object.
func checkStartGroup(obj *layout.Object, startGroup int) error {
	if startGroup < 0 || startGroup >= len(obj.Groups) {
		return fmt.Errorf("schemes: start group %d outside [0,%d) of %s", startGroup, len(obj.Groups), obj.ID)
	}
	return nil
}

// activeCount counts streams still being served.
func activeCount[S engineStream](streams []S) int {
	n := 0
	for _, s := range streams {
		if st := s.stream(); !st.Done && !st.Terminated {
			n++
		}
	}
	return n
}

// findActive locates an active stream by ID.
func findActive[S engineStream](streams []S, id int) (S, error) {
	var zero S
	for _, s := range streams {
		st := s.stream()
		if st.ID != id {
			continue
		}
		if st.Done || st.Terminated {
			return zero, fmt.Errorf("schemes: stream %d is not active", id)
		}
		return s, nil
	}
	return zero, fmt.Errorf("schemes: no stream %d", id)
}

// groupStream is the double-buffered stream state shared by the
// whole-group engines (Streaming RAID and Improved-bandwidth): the group
// read this cycle is staged; the group read last cycle is delivering.
type groupStream struct {
	sched.Stream
	// nextGroup is the next parity-group index to read.
	nextGroup  int
	staged     *bufferedGroup
	delivering *bufferedGroup
	// rate is the playback multiplier: 0 and 1 mean normal playback (one
	// group per cycle), r > 1 means fast-forward — r groups staged and
	// delivered per cycle. The extra groups beyond the first live in
	// stagedExtra/deliveringExtra, in group order, so the rate-1 fields
	// above keep their exact pre-VCR behaviour.
	rate            int
	stagedExtra     []*bufferedGroup
	deliveringExtra []*bufferedGroup
}

func (s *groupStream) stream() *sched.Stream { return &s.Stream }

// ffRate normalizes a stream's playback multiplier (0 means 1).
func ffRate(s *groupStream) int {
	if s.rate > 1 {
		return s.rate
	}
	return 1
}

// groupClusterLoad counts the normal-rate streams whose next group read
// lands on each cluster. Fast-forward streams are excluded: their draw
// is not tied to one cluster (a rate-r stream touches up to r clusters
// per cycle) and is accounted separately by ffClusterDraw.
func (c *engineCore) groupClusterLoad(streams []*groupStream) []int {
	return c.groupClusterLoadOmit(streams, nil)
}

// ffClusterDraw bounds the extra per-cluster slot draw of every active
// fast-forward stream (excluding skip). Consecutive parity groups of an
// object land on consecutive clusters mod N (layout places group g on
// cluster (start+g) mod N), so the r groups a rate-r stream reads in
// one cycle spread over r consecutive clusters and hit any single
// cluster at most ceil(r/N) times. Summing that ceiling over all FF
// streams gives a per-cluster draw bound that holds on every cluster in
// every future cycle, which is what lets admission treat FF draw as a
// position-independent surcharge on top of the rotating rate-1 loads.
func (c *engineCore) ffClusterDraw(streams []*groupStream, skip *groupStream) int {
	n := c.cfg.Layout.Clusters()
	draw := 0
	for _, s := range streams {
		if s == skip || s.Done || s.Terminated || s.nextGroup >= len(s.Obj.Groups) {
			continue
		}
		if r := ffRate(s); r > 1 {
			draw += (r + n - 1) / n
		}
	}
	return draw
}

// setGroupStreamRate changes a stream's playback multiplier for the
// whole-group engines. Dropping the rate (or holding it) always
// succeeds — it only releases draw. Raising it re-runs the admission
// argument: the worst-case cluster must absorb the stream's new
// ceil(rate/N) draw on top of every other stream's, or the change is
// refused wrapping ErrCapacity (the caller can retry after capacity
// frees up). The stream's current seat — one rate-1 slot or its old FF
// draw — is excluded from the check, since the new draw replaces it.
func (c *engineCore) setGroupStreamRate(streams []*groupStream, id, rate int) error {
	if rate < 1 {
		return fmt.Errorf("schemes: rate %d must be at least 1", rate)
	}
	s, err := findActive(streams, id)
	if err != nil {
		return err
	}
	if rate <= ffRate(s) {
		s.rate = rate
		return nil
	}
	n := c.cfg.Layout.Clusters()
	maxLoad := 0
	for _, l := range c.groupClusterLoadOmit(streams, s) {
		if l > maxLoad {
			maxLoad = l
		}
	}
	need := (rate + n - 1) / n
	if maxLoad+c.ffClusterDraw(streams, s)+need > c.slotsPerDisk {
		return fmt.Errorf("%w: rate %d needs %d slots over the worst cluster's %d-of-%d budget",
			ErrCapacity, rate, need, maxLoad+c.ffClusterDraw(streams, s), c.slotsPerDisk)
	}
	s.rate = rate
	return nil
}

// groupClusterLoadOmit is groupClusterLoad with one stream left out —
// the stream whose seat is being re-priced by a rate change.
func (c *engineCore) groupClusterLoadOmit(streams []*groupStream, skip *groupStream) []int {
	load := make([]int, c.cfg.Layout.Clusters())
	for _, s := range streams {
		if s == skip || s.Done || s.Terminated || s.nextGroup >= len(s.Obj.Groups) || ffRate(s) > 1 {
			continue
		}
		load[s.Obj.Groups[s.nextGroup].Cluster]++
	}
	return load
}

// weightedActive sums max(rate, 1) over active streams: the per-cycle
// k′ draw the farm is actually committed to, which is what the paper's
// N_p bound constrains once fast-forward multiplies a viewer's draw.
func weightedActive(streams []*groupStream) int {
	n := 0
	for _, s := range streams {
		if s.Done || s.Terminated {
			continue
		}
		n += ffRate(s)
	}
	return n
}

// cancelGroupStream implements CancelStream for double-buffered engines:
// the stream stops immediately (a client hanging up, not a degradation
// event) and its buffers are returned.
func (c *engineCore) cancelGroupStream(streams []*groupStream, id int) error {
	s, err := findActive(streams, id)
	if err != nil {
		return err
	}
	s.Done = true
	if err := c.releaseGroups(s.staged, s.delivering); err != nil {
		return err
	}
	s.staged, s.delivering = nil, nil
	if err := c.releaseGroups(s.stagedExtra...); err != nil {
		return err
	}
	if err := c.releaseGroups(s.deliveringExtra...); err != nil {
		return err
	}
	s.stagedExtra, s.deliveringExtra = s.stagedExtra[:0], s.deliveringExtra[:0]
	return nil
}

// groupReadEntry is one group read of this cycle's plan: stream s reads
// group g into its primary staged slot (slot == -1) or stagedExtra[slot]
// (a fast-forward stream's extra group).
type groupReadEntry struct {
	s    *groupStream
	g    *layout.Group
	slot int
}

// groupReadPlan lays out this cycle's group reads by cluster,
// fast-forward aware: a rate-r stream contributes its next r groups
// (capped at the object's end), the first to its primary slot and the
// rest to stagedExtra in group order. nextGroup advances here, in the
// single-threaded planning pass, so the parallel read phase only writes
// each entry's private slot — two entries of one stream can land on the
// same cluster (rate > cluster count) and are then staged serially by
// that cluster's one worker, while entries on different clusters write
// disjoint slots. want filters which streams read this cycle.
func (c *engineCore) groupReadPlan(streams []*groupStream, want func(*groupStream) bool) [][]groupReadEntry {
	plan := make([][]groupReadEntry, c.cfg.Layout.Clusters())
	for _, s := range streams {
		if s.Done || s.Terminated || s.nextGroup >= len(s.Obj.Groups) {
			continue
		}
		if want != nil && !want(s) {
			continue
		}
		rate := ffRate(s)
		if remaining := len(s.Obj.Groups) - s.nextGroup; rate > remaining {
			rate = remaining
		}
		if need := rate - 1; cap(s.stagedExtra) < need {
			s.stagedExtra = make([]*bufferedGroup, need)
		} else {
			s.stagedExtra = s.stagedExtra[:need]
			for i := range s.stagedExtra {
				s.stagedExtra[i] = nil
			}
		}
		for j := 0; j < rate; j++ {
			g := &s.Obj.Groups[s.nextGroup]
			s.nextGroup++
			plan[g.Cluster] = append(plan[g.Cluster], groupReadEntry{s: s, g: g, slot: j - 1})
		}
	}
	return plan
}

// stageGroup schedules and reads one whole parity group for later
// delivery, tolerating failed drives: one slot is taken on every drive
// of the group's cluster (failed drives keep their slot — the arm is
// still scheduled — but yield nothing), a single missing track is
// rebuilt from parity, and the group's buffers are acquired. When the
// slot budget is exceeded (over-admission under a manual SlotsPerDisk
// override) the group stays empty and hiccups at delivery.
//
// cache, when non-nil, merges same-title reads: a group already staged
// this cycle on this cluster is shared instead of re-read. Sharing is
// physical only — every sharer still takes its slots first, Acquires the
// same pooled track count, and adds the recorded read/reconstruction
// counters to its shard report — so a merged run's CycleReports are
// bit-identical to an unmerged run's. Slot exhaustion is monotone within
// a cycle, so a sharer that would have failed admission unmerged fails
// here too, before the cache is consulted.
func (c *engineCore) stageGroup(ctx *sched.CycleContext, g *layout.Group, cache map[*layout.Group]*bufferedGroup) (*bufferedGroup, error) {
	ok := true
	for _, loc := range g.Data {
		if !ctx.Slots.Take(loc.Disk) {
			ok = false
		}
	}
	if !ctx.Slots.Take(g.Parity.Disk) {
		ok = false
	}
	if !ok {
		return &bufferedGroup{
			group:         g,
			data:          make([][]byte, len(g.Data)),
			reconstructed: make([]bool, len(g.Data)),
			shares:        1,
		}, nil
	}
	if bg := cache[g]; bg != nil {
		bg.shares++
		ctx.Rep.DataReads += bg.dataReads
		ctx.Rep.ParityReads += bg.parityReads
		if bg.recovered {
			ctx.Rep.Reconstructions++
		}
		if err := c.pool.Acquire(bg.pooled); err != nil {
			return nil, err
		}
		return bg, nil
	}
	staged := &bufferedGroup{
		group:         g,
		reconstructed: make([]bool, len(g.Data)),
		shares:        1,
	}
	gr := readGroup(c.cfg.Farm, g, true, c.arena)
	staged.dataReads = gr.dataReads
	staged.parityReads = gr.parityReads
	ctx.Rep.DataReads += gr.dataReads
	ctx.Rep.ParityReads += gr.parityReads
	if rec, recErr := gr.recoverGroup(); recErr == nil && rec >= 0 {
		staged.reconstructed[rec] = true
		staged.recovered = true
		ctx.Rep.Reconstructions++
	}
	// The parity buffer's only post-read use is the recovery above (which
	// consumes it on success); recycle whatever is left.
	c.arena.Put(gr.par)
	gr.par = nil
	staged.data = gr.data
	staged.pooled = len(g.Data) + 1
	if err := c.pool.Acquire(staged.pooled); err != nil {
		return nil, err
	}
	if cache != nil {
		cache[g] = staged
	}
	return staged, nil
}

// deliverDouble runs the delivery phase for double-buffered engines:
// groups read in the previous cycle go out now, hiccuping tracks that
// could not be read or rebuilt (hiccupReason labels the loss). A
// fast-forward stream delivers its primary group and then its extras in
// group order, so the tracks on the wire stay consecutive.
func (c *engineCore) deliverDouble(ctx *sched.CycleContext, streams []*groupStream, hiccupReason string) error {
	for _, s := range streams {
		if s.Terminated || s.Done {
			continue
		}
		bg := s.delivering
		extras := s.deliveringExtra
		s.delivering, s.staged = s.staged, nil
		s.deliveringExtra, s.stagedExtra = s.stagedExtra, extras[:0]
		if bg != nil {
			if err := c.deliverGroup(ctx, s, bg, hiccupReason); err != nil {
				return err
			}
		}
		for i, ebg := range extras {
			extras[i] = nil
			if ebg == nil {
				continue
			}
			if err := c.deliverGroup(ctx, s, ebg, hiccupReason); err != nil {
				return err
			}
		}
		if bg == nil && len(extras) == 0 {
			continue
		}
		if s.Done {
			ctx.Rep.Finished = append(ctx.Rep.Finished, s.ID)
		}
	}
	return nil
}

// deliverGroup ships one buffered group of one stream: tracks out (or
// hiccups), the sharer's pool hold released, the stream advanced. The
// caller appends Finished once after all of the stream's groups.
func (c *engineCore) deliverGroup(ctx *sched.CycleContext, s *groupStream, bg *bufferedGroup, hiccupReason string) error {
	width := len(bg.group.Data)
	base := bg.group.Index * width
	for off := 0; off < bg.group.ValidTracks; off++ {
		var ref *buffer.Ref
		var data []byte
		switch {
		case bg.refs != nil && bg.refs[off] != nil:
			// An earlier sharer already minted the ref for this track;
			// retain the SAME ref (a second Share would double-free).
			ref = bg.refs[off]
			ref.Retain()
			c.delivered = append(c.delivered, ref)
			data = ref.Bytes()
		case bg.data[off] != nil:
			data = bg.data[off]
			ref = c.shareDelivered(data)
			if bg.shares > 1 {
				if bg.refs == nil {
					bg.refs = make([]*buffer.Ref, len(bg.data))
				}
				bg.refs[off] = ref
			}
			// Ownership moved to the Ref; clear the slot so recycleGroup
			// below does not Put the buffer behind the report's back.
			bg.data[off] = nil
		default:
			ctx.Rep.Hiccups = append(ctx.Rep.Hiccups, sched.Hiccup{
				StreamID: s.ID, ObjectID: s.Obj.ID, Track: base + off,
				Reason: hiccupReason,
			})
			continue
		}
		ctx.Rep.Delivered = append(ctx.Rep.Delivered, sched.Delivery{
			StreamID: s.ID, ObjectID: s.Obj.ID, Track: base + off,
			Data: data, Buf: ref, Reconstructed: bg.reconstructed[off],
		})
	}
	if bg.pooled > 0 {
		if err := c.pool.Release(bg.pooled); err != nil {
			return err
		}
	}
	if bg.shares > 1 {
		bg.shares--
	} else {
		bg.shares = 0
		bg.pooled = 0
		// Delivered slots were handed to refs above; recycle only the
		// leftovers (failed reads, padding past ValidTracks).
		c.recycleGroup(bg)
		if bg.refs != nil {
			for i := range bg.refs {
				bg.refs[i] = nil
			}
		}
	}
	s.Advance(bg.group.ValidTracks)
	return nil
}
