package schemes

import (
	"fmt"
	"testing"

	"ftmm/internal/layout"
	"ftmm/internal/units"
)

// The engines' slot-based admission must agree with the paper's analytic
// stream bounds: a cluster of C-1 data disks admits floor(bound·(C-1))
// streams under SR, and the staggered schemes admit the same aggregate
// across their C-1 phases.
func TestAdmissionMatchesAnalyticBound(t *testing.T) {
	const c = 5

	// Per-disk bounds from the disk model (Table 1, MPEG-1):
	// SR: 13.0208..., SG/NC: 12.0833...
	r := newRig(t, 10, c, 1, 4, layout.DedicatedParity)
	srBound, err := r.farm.Params().StreamsPerDisk(c-1, c-1, units.MPEG1)
	if err != nil {
		t.Fatal(err)
	}
	sgBound, err := r.farm.Params().StreamsPerDisk(c-1, 1, units.MPEG1)
	if err != nil {
		t.Fatal(err)
	}
	wantSR := int(srBound * (c - 1)) // 52 streams per cluster
	wantSG := int(sgBound * (c - 1)) // 48 streams per cluster

	// Streaming RAID: admit streams on one cluster until rejection.
	{
		rig := manyObjectsRig(t, wantSR+2, layout.DedicatedParity)
		e, err := NewStreamingRAID(rig.config())
		if err != nil {
			t.Fatal(err)
		}
		admitted := 0
		for i := 0; ; i++ {
			if _, err := e.AddStream(rig.object(t, i)); err != nil {
				break
			}
			admitted++
		}
		if admitted != wantSR {
			t.Errorf("SR cluster capacity = %d streams, analytic bound says %d", admitted, wantSR)
		}
	}

	// Staggered-group: per phase the cluster admits slotsPerDisk streams;
	// across the C-1 phases the aggregate equals the analytic bound.
	{
		rig := manyObjectsRig(t, wantSG+6, layout.DedicatedParity)
		e, err := NewStaggeredGroup(rig.config())
		if err != nil {
			t.Fatal(err)
		}
		admitted := 0
		next := 0
		for phase := 0; phase < c-1; phase++ {
			for {
				if _, err := e.AddStream(rig.object(t, next)); err != nil {
					break
				}
				next++
				admitted++
			}
			if _, err := e.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if admitted != wantSG {
			t.Errorf("SG aggregate capacity = %d streams, analytic bound says %d", admitted, wantSG)
		}
	}

	// Non-clustered: same aggregate bound as SG (k'=1).
	{
		rig := manyObjectsRig(t, wantSG+6, layout.DedicatedParity)
		e, err := NewNonClustered(rig.config(), AlternateSwitchover, 2)
		if err != nil {
			t.Fatal(err)
		}
		admitted := 0
		next := 0
		for phase := 0; phase < c-1; phase++ {
			for {
				if _, err := e.AddStream(rig.object(t, next)); err != nil {
					break
				}
				next++
				admitted++
			}
			if _, err := e.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if admitted != wantSG {
			t.Errorf("NC aggregate capacity = %d streams, analytic bound says %d", admitted, wantSG)
		}
	}

	// Improved-bandwidth: SR's bound minus the reserve.
	{
		reserve := 3
		rig := manyObjectsRig(t, wantSR+2, layout.IntermixedParity)
		e, err := NewImprovedBandwidth(rig.config(), reserve)
		if err != nil {
			t.Fatal(err)
		}
		admitted := 0
		for i := 0; ; i++ {
			if _, err := e.AddStream(rig.object(t, i)); err != nil {
				break
			}
			admitted++
		}
		if want := wantSR - reserve; admitted != want {
			t.Errorf("IB cluster capacity = %d streams, want %d (bound minus reserve)", admitted, want)
		}
	}
}

// manyObjectsRig places many small same-start-cluster objects so streams
// can be admitted until a cluster saturates. Admission never runs these
// streams, so drive capacity just needs to hold the placements: each
// 8-track object consumes one track per drive.
func manyObjectsRig(t *testing.T, n int, placement layout.Placement) *rig {
	t.Helper()
	r := newRig(t, 10, 5, 1, n+4, placement) // capacity-sizing only
	if err := r.lay.RemoveObject("obj0"); err != nil {
		t.Fatal(err)
	}
	trackSize := int(r.farm.Params().TrackSize)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("obj%d", i)
		obj, err := r.lay.AddObject(id, 8, 0, units.MPEG1)
		if err != nil {
			t.Fatal(err)
		}
		if err := layout.WriteObject(r.farm, obj, make([]byte, 8*trackSize)); err != nil {
			t.Fatal(err)
		}
		r.content[id] = make([]byte, 8*trackSize)
	}
	return r
}
