package schemes

import (
	"errors"
	"fmt"
	"time"

	"ftmm/internal/buffer"
	"ftmm/internal/layout"
	"ftmm/internal/parity"
	"ftmm/internal/sched"
)

// TransitionPolicy selects how a Non-clustered cluster moves into
// degraded mode after a data-disk failure.
type TransitionPolicy int

const (
	// SimpleSwitchover (Figure 6): the cluster immediately shifts to
	// group-at-a-time reads; streams caught mid-group drop all remaining
	// tracks of their current group.
	SimpleSwitchover TransitionPolicy = iota
	// AlternateSwitchover (Figure 7): streams caught mid-group keep
	// their per-track schedule (losing only the failed disk's unread
	// track), and streams at a group boundary run an XOR accumulator,
	// delaying the extra reads until the cycle the missing track is
	// needed. Loses strictly fewer tracks than SimpleSwitchover.
	AlternateSwitchover
)

// String names the policy.
func (p TransitionPolicy) String() string {
	switch p {
	case SimpleSwitchover:
		return "simple"
	case AlternateSwitchover:
		return "alternate"
	default:
		return fmt.Sprintf("TransitionPolicy(%d)", int(p))
	}
}

// ncClusterMode is the operating mode of one cluster.
type ncClusterMode int

const (
	ncNormal ncClusterMode = iota
	// ncParityLost: the parity drive failed; normal operation continues
	// (parity is never read in normal mode) but protection is gone.
	ncParityLost
	// ncDegraded: a data drive failed and a buffer server carries the
	// cluster through group-at-a-time (or XOR-accumulator) operation.
	ncDegraded
	// ncUnprotected: a data drive failed and no buffer server was free —
	// the paper's degradation of service. The failed drive's track is
	// lost on every pass.
	ncUnprotected
)

type ncCluster struct {
	mode ncClusterMode
	// failedOffset is the in-cluster index of the failed data drive
	// (0..C-2), meaningful in ncDegraded/ncUnprotected.
	failedOffset int
}

type ncStaged struct {
	data          []byte
	reconstructed bool
}

type ncStream struct {
	sched.Stream
	// read is the absolute index of the next data track to read.
	read int
	// startCycle is the cycle of the stream's first read (-1 before);
	// delivery begins the following cycle.
	startCycle int
	// staged maps absolute track index -> buffered content.
	staged map[int]ncStaged
	// lost marks absolute track indices that will hiccup when due.
	lost map[int]bool
	// legacyGroup, when >= 0, is a group the stream finishes with plain
	// per-track reads even though its cluster is degraded (alternate
	// switchover for streams caught mid-group).
	legacyGroup int
	// xor is the running accumulator for the group being read on a
	// degraded cluster under the alternate policy.
	xor      []byte
	xorGroup int
}

func (s *ncStream) stream() *sched.Stream { return &s.Stream }

// NonClustered is the §3 engine: in normal mode each stream reads exactly
// the track it delivers next cycle (two buffers per stream). A data-disk
// failure sends that cluster through a short transition — losing a few
// tracks per Figures 6-7 — into a degraded mode backed by one of K shared
// buffer servers, after which service continues hiccup-free.
type NonClustered struct {
	engineCore
	policy   TransitionPolicy
	streams  []*ncStream
	servers  *buffer.Servers
	clusters []ncCluster
	// degradations counts failures that found no free buffer server.
	degradations int
}

// NewNonClustered builds the engine with K shared buffer servers.
func NewNonClustered(cfg Config, policy TransitionPolicy, k int) (*NonClustered, error) {
	if cfg.Layout != nil && cfg.Layout.Placement() != layout.DedicatedParity {
		return nil, fmt.Errorf("schemes: Non-clustered needs dedicated parity, got %v", cfg.Layout.Placement())
	}
	if policy != SimpleSwitchover && policy != AlternateSwitchover {
		return nil, fmt.Errorf("schemes: unknown transition policy %v", policy)
	}
	core, err := newEngineCore(cfg, 1)
	if err != nil {
		return nil, err
	}
	servers, err := buffer.NewServers(k)
	if err != nil {
		return nil, err
	}
	return &NonClustered{
		engineCore: core, policy: policy, servers: servers,
		clusters: make([]ncCluster, cfg.Layout.Clusters()),
	}, nil
}

// Name implements Simulator.
func (e *NonClustered) Name() string { return "Non-clustered" }

// Policy returns the transition policy in use.
func (e *NonClustered) Policy() TransitionPolicy { return e.policy }

// CycleTime implements Simulator: Tcyc = B/b0 (k' = 1).
func (e *NonClustered) CycleTime() time.Duration {
	return e.cfg.Farm.Params().CycleTime(1, e.cfg.Rate)
}

// Active implements Simulator.
func (e *NonClustered) Active() int { return activeCount(e.streams) }

// StreamProgress reports the next track owed to the stream and its
// object's total tracks; ok is false for unknown streams.
func (e *NonClustered) StreamProgress(id int) (next, total int, ok bool) {
	return streamProgress(e.streams, id)
}

// Degradations counts data-disk failures that found every buffer server
// busy (the paper's degradation-of-service events).
func (e *NonClustered) Degradations() int { return e.degradations }

// ClusterDegraded reports whether the cluster is running degraded.
func (e *NonClustered) ClusterDegraded(cl int) bool {
	if cl < 0 || cl >= len(e.clusters) {
		return false
	}
	return e.clusters[cl].mode == ncDegraded || e.clusters[cl].mode == ncUnprotected
}

// ClusterUnprotected reports whether the cluster is in the paper's
// degradation-of-service mode: a data drive failed with every buffer
// server busy, so the failed drive's track is lost on every pass. The
// chaos harness's continuity checker exempts streams on unprotected
// clusters from the bounded-loss-window invariant, which only holds
// when a buffer server carries the cluster.
func (e *NonClustered) ClusterUnprotected(cl int) bool {
	if cl < 0 || cl >= len(e.clusters) {
		return false
	}
	return e.clusters[cl].mode == ncUnprotected
}

// width returns C-1.
func (e *NonClustered) width() int { return e.cfg.Layout.GroupWidth() }

// position splits an absolute track index into (group, offset).
func (e *NonClustered) position(r int) (g, o int) {
	return r / e.width(), r % e.width()
}

// AddStream implements Simulator. A Non-clustered stream reads one track
// per cycle, walking the drives of its current cluster in order; two
// streams conflict only when they sit at the same (cluster, offset), and
// they advance in lockstep, so admission checks the occupancy of the new
// stream's starting position.
func (e *NonClustered) AddStream(obj *layout.Object) (int, error) {
	return e.AddStreamAt(obj, 0)
}

// AddStreamAt admits a stream beginning at the given parity group — the
// session-resume seam. The stream's first read lands at the start
// group's offset 0, so the occupancy check moves with it; after that it
// advances in lockstep like any stream that reached the position
// naturally.
func (e *NonClustered) AddStreamAt(obj *layout.Object, startGroup int) (int, error) {
	if err := checkStartGroup(obj, startGroup); err != nil {
		return 0, err
	}
	start := obj.Groups[startGroup].Cluster
	load := 0
	for _, s := range e.streams {
		if s.Done || s.Terminated || s.read >= s.Obj.Tracks {
			continue
		}
		g, o := e.position(s.read)
		if o == 0 && s.Obj.Groups[g].Cluster == start {
			load++
		}
	}
	if load >= e.slotsPerDisk {
		return 0, fmt.Errorf("schemes: position (cluster %d, offset 0) is at its %d-stream capacity", start, e.slotsPerDisk)
	}
	startTrack := startGroup * e.width()
	id := e.allocStreamID()
	e.streams = append(e.streams, &ncStream{
		Stream: sched.Stream{ID: id, Obj: obj, NextDeliver: startTrack},
		read:   startTrack,
		staged: make(map[int]ncStaged), lost: make(map[int]bool),
		legacyGroup: -1, xorGroup: -1, startCycle: -1,
	})
	return id, nil
}

// CancelStream stops serving a stream immediately and returns its
// buffers (staged tracks and any XOR accumulator).
func (e *NonClustered) CancelStream(id int) error {
	s, err := findActive(e.streams, id)
	if err != nil {
		return err
	}
	s.Done = true
	for r, st := range s.staged {
		delete(s.staged, r)
		e.arena.Put(st.data)
		if err := e.pool.Release(1); err != nil {
			return err
		}
	}
	e.dropXOR(s)
	return nil
}

// FailDisk implements Simulator: the drive fails at the upcoming cycle
// boundary, and the owning cluster transitions per the policy.
func (e *NonClustered) FailDisk(id int) error {
	drv, err := e.cfg.Farm.Drive(id)
	if err != nil {
		return err
	}
	if err := drv.Fail(); err != nil {
		return err
	}
	cl, err := e.cfg.Farm.ClusterOf(id)
	if err != nil {
		return err
	}
	offset := id % e.cfg.Farm.ClusterSize()
	if offset == e.cfg.Farm.ClusterSize()-1 {
		// Dedicated parity drive: no operational impact in normal mode.
		if e.clusters[cl].mode == ncNormal {
			e.clusters[cl].mode = ncParityLost
		}
		return nil
	}
	st := &e.clusters[cl]
	st.failedOffset = offset
	if err := e.servers.Attach(cl); err != nil {
		if errors.Is(err, buffer.ErrExhausted) {
			st.mode = ncUnprotected
			e.degradations++
		} else {
			return err
		}
	} else {
		st.mode = ncDegraded
	}
	e.transition(cl, offset)
	return nil
}

// transition applies the policy to streams caught mid-group on the
// failed cluster.
func (e *NonClustered) transition(cl, failedOffset int) {
	width := e.width()
	for _, s := range e.streams {
		if s.Done || s.Terminated || s.read >= s.Obj.Tracks {
			continue
		}
		g, o := e.position(s.read)
		if s.Obj.Groups[g].Cluster != cl || o == 0 {
			continue
		}
		groupEnd := (g + 1) * width
		if groupEnd > s.Obj.Tracks {
			groupEnd = s.Obj.Tracks
		}
		switch e.policy {
		case SimpleSwitchover:
			// Drop every remaining track of the current group.
			for r := s.read; r < groupEnd; r++ {
				s.lost[r] = true
			}
			s.read = groupEnd
		case AlternateSwitchover:
			// Keep the schedule; only the failed drive's unread track is
			// unrecoverable (earlier tracks have left the buffers).
			failedTrack := g*width + failedOffset
			if failedTrack >= s.read && failedTrack < groupEnd {
				s.lost[failedTrack] = true
			}
			s.legacyGroup = g
		}
	}
}

// RepairDisk replaces the failed drive, rebuilds its contents from
// parity (rebuild mode), returns the cluster to normal operation, and
// frees its buffer server.
func (e *NonClustered) RepairDisk(id int) error {
	drv, err := e.cfg.Farm.Drive(id)
	if err != nil {
		return err
	}
	if err := drv.Replace(); err != nil {
		return err
	}
	if err := layout.RebuildDrive(e.cfg.Farm, e.cfg.Layout, id); err != nil {
		return err
	}
	return e.OnDriveRebuilt(id)
}

// OnDriveRebuilt tells the engine a drive's contents are whole again
// (after an external — possibly incremental — rebuild): the cluster
// returns to normal operation and its buffer server is released.
func (e *NonClustered) OnDriveRebuilt(id int) error {
	cl, err := e.cfg.Farm.ClusterOf(id)
	if err != nil {
		return err
	}
	st := &e.clusters[cl]
	switch st.mode {
	case ncDegraded:
		if err := e.servers.Detach(cl); err != nil {
			return err
		}
	case ncParityLost, ncUnprotected, ncNormal:
		// nothing extra
	}
	st.mode = ncNormal
	// Streams finishing a group in a special mode revert to plain reads.
	for _, s := range e.streams {
		if s.xorGroup >= 0 && s.Obj.Groups[s.xorGroup].Cluster == cl {
			e.dropXOR(s)
		}
		if s.legacyGroup >= 0 && s.Obj.Groups[s.legacyGroup].Cluster == cl {
			s.legacyGroup = -1
		}
	}
	return nil
}

// dropXOR releases a stream's accumulator buffer (accounting and bytes).
func (e *NonClustered) dropXOR(s *ncStream) {
	if s.xor != nil {
		_ = e.pool.Release(1)
		e.arena.Put(s.xor)
		s.xor = nil
	}
	s.xorGroup = -1
}

// Step implements Simulator.
func (e *NonClustered) Step() (*sched.CycleReport, error) {
	ctx, err := e.beginCycle()
	if err != nil {
		return nil, err
	}

	degraded := 0
	for _, c := range e.clusters {
		if c.mode == ncDegraded || c.mode == ncUnprotected {
			degraded++
		}
	}
	e.rec.DegradedClusterCycles.Add(int64(degraded))

	if degraded > 0 {
		// Degraded-mode work (group reads, XOR accumulators) releases
		// buffers mid-read and its slot priority depends on pass order,
		// so degraded cycles keep the engine's original serial two-pass
		// schedule: deadline-bound degraded reads take slots first.
		for _, s := range e.streams {
			if e.readable(s) && e.isDegradedWork(s) {
				if err := e.readForStream(s, ctx); err != nil {
					return nil, err
				}
			}
		}
		for _, s := range e.streams {
			if e.readable(s) && !e.isDegradedWork(s) {
				if err := e.readForStream(s, ctx); err != nil {
					return nil, err
				}
			}
		}
	} else {
		// Normal steady state: every read is a plain single-track read on
		// the stream's current cluster — acquire-only on the pool and
		// disjoint across clusters — so the pass fans out per cluster.
		readers := make([][]*ncStream, e.cfg.Layout.Clusters())
		for _, s := range e.streams {
			if !e.readable(s) {
				continue
			}
			g, _ := e.position(s.read)
			cl := s.Obj.Groups[g].Cluster
			readers[cl] = append(readers[cl], s)
		}
		if err := e.runClusters(ctx, func(shard *sched.CycleContext, cl int) error {
			for _, s := range readers[cl] {
				if err := e.readForStream(s, shard); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// Delivery pass.
	for _, s := range e.streams {
		if s.Done || s.Terminated || s.startCycle < 0 || e.cycle <= s.startCycle {
			continue
		}
		r := s.NextDeliver
		if st, ok := s.staged[r]; ok {
			ref := e.shareDelivered(st.data)
			ctx.Rep.Delivered = append(ctx.Rep.Delivered, sched.Delivery{
				StreamID: s.ID, ObjectID: s.Obj.ID, Track: r,
				Data: st.data, Buf: ref, Reconstructed: st.reconstructed,
			})
			delete(s.staged, r)
			if err := e.pool.Release(1); err != nil {
				return nil, err
			}
		} else {
			reason := "track lost in degraded-mode transition"
			if !s.lost[r] {
				reason = "track not staged (overload)"
			}
			delete(s.lost, r)
			ctx.Rep.Hiccups = append(ctx.Rep.Hiccups, sched.Hiccup{
				StreamID: s.ID, ObjectID: s.Obj.ID, Track: r, Reason: reason,
			})
		}
		s.Advance(1)
		if s.Done {
			ctx.Rep.Finished = append(ctx.Rep.Finished, s.ID)
			// Release anything still staged (early reads past the end
			// cannot exist, but be defensive) and the accumulator.
			for r, st := range s.staged {
				delete(s.staged, r)
				e.arena.Put(st.data)
				if err := e.pool.Release(1); err != nil {
					return nil, err
				}
			}
			e.dropXOR(s)
		}
	}

	return e.endCycle(ctx), nil
}

// readable reports whether the stream has read work this cycle.
func (e *NonClustered) readable(s *ncStream) bool {
	if s.Done || s.Terminated || s.read >= s.Obj.Tracks {
		return false
	}
	// Before the first read the target is the delivery origin (track 0
	// for normal admissions, the resume point for AddStreamAt streams);
	// afterwards the stream reads one track ahead of delivery.
	target := s.NextDeliver
	if s.startCycle >= 0 {
		target = s.NextDeliver + 1
	}
	return s.read <= target
}

// isDegradedWork reports whether the stream's next read touches a
// degraded cluster in a mode that needs priority slots.
func (e *NonClustered) isDegradedWork(s *ncStream) bool {
	g, o := e.position(s.read)
	cl := s.Obj.Groups[g].Cluster
	if e.clusters[cl].mode != ncDegraded {
		return false
	}
	if s.legacyGroup == g {
		return false // finishing the group with plain reads
	}
	if e.policy == SimpleSwitchover {
		return o == 0
	}
	// Alternate: the reconstruction cycle (o == failedOffset) issues the
	// batched early reads.
	return o == e.clusters[cl].failedOffset
}

// readForStream performs the stream's reads for this cycle, recording
// into the given cycle context (a shard in parallel normal-mode passes).
func (e *NonClustered) readForStream(s *ncStream, ctx *sched.CycleContext) error {
	if s.startCycle < 0 {
		s.startCycle = e.cycle
	}
	r := s.read
	if _, already := s.staged[r]; already {
		s.read++
		return nil
	}
	if s.lost[r] {
		s.read++
		return nil
	}
	g, o := e.position(r)
	grp := &s.Obj.Groups[g]
	cl := grp.Cluster
	state := e.clusters[cl]

	switch {
	case state.mode == ncNormal || state.mode == ncParityLost || s.legacyGroup == g:
		return e.plainRead(s, grp, r, o, ctx)
	case state.mode == ncUnprotected:
		if o == state.failedOffset {
			s.lost[r] = true // recurring loss: the paper's degradation
			s.read++
			return nil
		}
		return e.plainRead(s, grp, r, o, ctx)
	case state.mode == ncDegraded && e.policy == SimpleSwitchover:
		if o != 0 {
			// Mid-group on a degraded cluster outside legacy mode should
			// not happen (transition drops remnants), but read plainly if
			// it does.
			return e.plainRead(s, grp, r, o, ctx)
		}
		return e.groupRead(s, grp, g, state.failedOffset, ctx)
	case state.mode == ncDegraded && e.policy == AlternateSwitchover:
		return e.xorRead(s, grp, g, o, state.failedOffset, ctx)
	}
	return fmt.Errorf("schemes: unhandled cluster mode %d", state.mode)
}

// plainRead reads a single track; on slot exhaustion or drive failure the
// track is lost.
func (e *NonClustered) plainRead(s *ncStream, grp *layout.Group, r, o int, ctx *sched.CycleContext) error {
	s.read++
	loc := grp.Data[o]
	if !ctx.Slots.Take(loc.Disk) {
		s.lost[r] = true
		return nil
	}
	drv, err := e.cfg.Farm.Drive(loc.Disk)
	if err != nil {
		return err
	}
	blk, err := readTrackArena(drv, loc.Track, e.arena)
	if err != nil {
		s.lost[r] = true
		return nil
	}
	ctx.Rep.DataReads++
	if err := e.pool.Acquire(1); err != nil {
		return err
	}
	s.staged[r] = ncStaged{data: blk}
	return nil
}

// groupRead stages an entire parity group at once (degraded steady state
// under the simple policy), reconstructing the failed drive's track.
func (e *NonClustered) groupRead(s *ncStream, grp *layout.Group, g, failedOffset int, ctx *sched.CycleContext) error {
	width := e.width()
	base := g * width
	groupEnd := base + width
	if groupEnd > s.Obj.Tracks {
		groupEnd = s.Obj.Tracks
	}
	s.read = groupEnd

	// Every offset of the group is read, padding tracks included (they
	// exist on disk as zeros and are needed for reconstruction).
	gr := groupRead{data: make([][]byte, len(grp.Data))}
	for j, loc := range grp.Data {
		if j == failedOffset {
			continue
		}
		if !ctx.Slots.Take(loc.Disk) {
			continue
		}
		drv, err := e.cfg.Farm.Drive(loc.Disk)
		if err != nil {
			return err
		}
		if blk, err := readTrackArena(drv, loc.Track, e.arena); err == nil {
			gr.data[j] = blk
			ctx.Rep.DataReads++
		}
	}
	reconstructedIdx := -1
	hadPar := false
	if ctx.Slots.Take(grp.Parity.Disk) {
		if drv, err := e.cfg.Farm.Drive(grp.Parity.Disk); err == nil {
			if blk, err := readTrackArena(drv, grp.Parity.Track, e.arena); err == nil {
				gr.par = blk
				hadPar = true
				ctx.Rep.ParityReads++
			}
		}
	}
	if gr.par != nil {
		// recoverGroup consumes the parity buffer on success (it becomes
		// the reconstructed track); otherwise recycle it below.
		if rec, err := gr.recoverGroup(); err == nil && rec >= 0 {
			reconstructedIdx = rec
			ctx.Rep.Reconstructions++
		}
		e.arena.Put(gr.par)
		gr.par = nil
	}
	// Parity occupied a buffer during the read; account and drop it.
	if hadPar {
		if err := e.pool.Acquire(1); err != nil {
			return err
		}
		if err := e.pool.Release(1); err != nil {
			return err
		}
	}
	for r := base; r < groupEnd; r++ {
		j := r - base
		if gr.data[j] == nil {
			s.lost[r] = true
			continue
		}
		if err := e.pool.Acquire(1); err != nil {
			return err
		}
		s.staged[r] = ncStaged{data: gr.data[j], reconstructed: j == reconstructedIdx}
		gr.data[j] = nil
	}
	// Padding tracks of a short final group were read for reconstruction
	// but are never staged; recycle them.
	for _, d := range gr.data {
		e.arena.Put(d)
	}
	return nil
}

// xorRead handles the alternate policy on a degraded cluster: tracks
// before the failed offset are read normally while folding into the
// accumulator; at the failed offset the remaining tracks and parity are
// read early and the missing track reconstructed; tracks beyond are
// already staged.
func (e *NonClustered) xorRead(s *ncStream, grp *layout.Group, g, o, failedOffset int, ctx *sched.CycleContext) error {
	width := e.width()
	base := g * width
	if o > failedOffset {
		// Past the reconstruction point without staged data (possible
		// only after an unusual repair/re-fail interleaving): read
		// plainly; the drive at this offset is healthy.
		return e.plainRead(s, grp, s.read, o, ctx)
	}
	if o < failedOffset {
		if s.xorGroup != g {
			// Start the accumulator (one buffer).
			e.dropXOR(s)
			if err := e.pool.Acquire(1); err != nil {
				return err
			}
			s.xor = e.arena.GetZeroed()
			s.xorGroup = g
		}
		r := s.read
		if err := e.plainRead(s, grp, r, o, ctx); err != nil {
			return err
		}
		if st, ok := s.staged[r]; ok {
			if err := parity.XORInto(s.xor, st.data); err != nil {
				return err
			}
		} else {
			// The read failed; the accumulator is now useless for
			// reconstruction.
			e.dropXOR(s)
		}
		return nil
	}

	// o == failedOffset: the reconstruction cycle. Read every remaining
	// track of the group plus parity, reconstruct, stage the lot.
	groupEnd := base + width
	if groupEnd > s.Obj.Tracks {
		groupEnd = s.Obj.Tracks
	}
	failedTrack := base + failedOffset
	s.read = groupEnd

	canRecon := s.xorGroup == g || failedOffset == 0
	if s.xorGroup != g && failedOffset == 0 {
		// Group starts at the failed drive: accumulator is trivially
		// empty.
		if err := e.pool.Acquire(1); err != nil {
			return err
		}
		s.xor = e.arena.GetZeroed()
		s.xorGroup = g
	}

	for r := failedTrack + 1; r < groupEnd; r++ {
		j := r - base
		loc := grp.Data[j]
		if !ctx.Slots.Take(loc.Disk) {
			s.lost[r] = true
			canRecon = false
			continue
		}
		drv, err := e.cfg.Farm.Drive(loc.Disk)
		if err != nil {
			return err
		}
		blk, err := readTrackArena(drv, loc.Track, e.arena)
		if err != nil {
			s.lost[r] = true
			canRecon = false
			continue
		}
		ctx.Rep.DataReads++
		if err := e.pool.Acquire(1); err != nil {
			return err
		}
		s.staged[r] = ncStaged{data: blk}
		if s.xor != nil {
			if err := parity.XORInto(s.xor, blk); err != nil {
				return err
			}
		}
	}
	var par []byte
	if ctx.Slots.Take(grp.Parity.Disk) {
		if drv, err := e.cfg.Farm.Drive(grp.Parity.Disk); err == nil {
			if blk, err := readTrackArena(drv, grp.Parity.Track, e.arena); err == nil {
				par = blk
				ctx.Rep.ParityReads++
			}
		}
	}
	if canRecon && par != nil && s.xor != nil && failedTrack < s.Obj.Tracks {
		if err := parity.XORInto(s.xor, par); err != nil {
			return err
		}
		// Padding tracks of a short final group are zero, so the fold
		// above is complete even when groupEnd < base+width.
		rec := s.xor
		s.xor = nil // buffer ownership moves to the staged track
		s.xorGroup = -1
		s.staged[failedTrack] = ncStaged{data: rec, reconstructed: true}
		ctx.Rep.Reconstructions++
	} else {
		if failedTrack < s.Obj.Tracks {
			s.lost[failedTrack] = true
		}
		e.dropXOR(s)
	}
	e.arena.Put(par) // parity's only use is the fold above
	return nil
}
