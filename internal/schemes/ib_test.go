package schemes

import (
	"testing"

	"ftmm/internal/layout"
)

func TestIBConstructorValidation(t *testing.T) {
	r := newRig(t, 15, 5, 1, 6, layout.IntermixedParity)
	if _, err := NewImprovedBandwidth(r.config(), 1); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	ded := newRig(t, 15, 5, 1, 6, layout.DedicatedParity)
	if _, err := NewImprovedBandwidth(ded.config(), 1); err == nil {
		t.Error("dedicated layout accepted")
	}
	if _, err := NewImprovedBandwidth(r.config(), -1); err == nil {
		t.Error("negative reserve accepted")
	}
	if _, err := NewImprovedBandwidth(r.config(), 1000); err == nil {
		t.Error("reserve >= slots accepted")
	}
}

// In normal operation the Improved-bandwidth scheme spends zero
// bandwidth on parity — that is its entire point.
func TestIBNormalModeNoParityBandwidth(t *testing.T) {
	r := newRig(t, 15, 5, 3, 9, layout.IntermixedParity)
	e, err := NewImprovedBandwidth(r.config(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 3)
	for i := 0; i < 3; i++ {
		ids[i], err = e.AddStream(r.object(t, i))
		if err != nil {
			t.Fatal(err)
		}
	}
	deliveries, hiccups, reports := runToCompletion(t, e, 100)
	if len(hiccups) != 0 {
		t.Fatalf("hiccups in normal mode: %v", hiccups)
	}
	for _, rep := range reports {
		if rep.ParityReads != 0 {
			t.Fatalf("cycle %d read %d parity blocks in normal mode", rep.Cycle, rep.ParityReads)
		}
	}
	for i, id := range ids {
		verifyStream(t, r, r.object(t, i), deliveries[id], nil)
	}
	if e.Terminations() != 0 {
		t.Error("terminations in normal mode")
	}
}

func TestIBBufferAccounting(t *testing.T) {
	r := newRig(t, 15, 5, 1, 6, layout.IntermixedParity)
	e, _ := NewImprovedBandwidth(r.config(), 0)
	if _, err := e.AddStream(r.object(t, 0)); err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, e, 100)
	// 2(C-1) per stream: one group staged, one delivering, no parity.
	if e.BufferPeak() != 8 {
		t.Errorf("peak = %d, want 8 (= 2(C-1))", e.BufferPeak())
	}
	if e.BufferInUse() != 0 {
		t.Errorf("buffers leaked: %d", e.BufferInUse())
	}
}

// A cycle-boundary failure is fully masked when there is spare capacity:
// the shift reads parity from the next cluster.
func TestIBBoundaryFailureMasked(t *testing.T) {
	for failed := 0; failed < 5; failed++ {
		r := newRig(t, 15, 5, 2, 9, layout.IntermixedParity)
		e, _ := NewImprovedBandwidth(r.config(), 2)
		id0, err := e.AddStream(r.object(t, 0))
		if err != nil {
			t.Fatal(err)
		}
		id1, err := e.AddStream(r.object(t, 1))
		if err != nil {
			t.Fatal(err)
		}
		early, _, _ := stepN(t, e, 2)
		if err := e.FailDisk(failed); err != nil {
			t.Fatal(err)
		}
		deliveries, hiccups, reports := runToCompletion(t, e, 100)
		if len(hiccups) != 0 {
			t.Fatalf("drive %d: hiccups despite reserve: %v", failed, hiccups)
		}
		all := merge(early, deliveries)
		verifyStream(t, r, r.object(t, 0), all[id0], nil)
		verifyStream(t, r, r.object(t, 1), all[id1], nil)
		parity := 0
		for _, rep := range reports {
			parity += rep.ParityReads
		}
		if parity == 0 {
			t.Errorf("drive %d: failure masked without parity reads?", failed)
		}
		if e.Terminations() != 0 {
			t.Errorf("drive %d: terminations despite reserve", failed)
		}
	}
}

// A mid-cycle failure produces the paper's isolated hiccup: the track
// whose read was in flight is lost once, everything afterwards is masked.
func TestIBMidCycleFailureSingleHiccup(t *testing.T) {
	r := newRig(t, 15, 5, 1, 9, layout.IntermixedParity)
	e, _ := NewImprovedBandwidth(r.config(), 2)
	id, err := e.AddStream(r.object(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	early, _, _ := stepN(t, e, 1)
	// The stream's next group (group 1, cluster 1) reads drives 5,7,8,9
	// (skip rotates to 6). Fail drive 7 mid-cycle: its single scheduled
	// read is lost.
	if err := e.FailDiskMidCycle(7); err != nil {
		t.Fatal(err)
	}
	deliveries, hiccups, _ := runToCompletion(t, e, 100)
	if len(hiccups) != 1 {
		t.Fatalf("hiccups = %v, want exactly 1", hiccups)
	}
	lost := map[int]bool{hiccups[0].Track: true}
	all := merge(early, deliveries)
	verifyStream(t, r, r.object(t, 0), all[id], lost)
	if e.Terminations() != 0 {
		t.Error("mid-cycle hiccup should not terminate the stream")
	}
}

func TestIBAdmissionReserve(t *testing.T) {
	r := newRig(t, 15, 5, 3, 6, layout.IntermixedParity)
	cfg := r.config()
	cfg.SlotsPerDisk = 2
	e, err := NewImprovedBandwidth(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity = 2 - 1 = 1 stream per cluster. obj0 and... objects start
	// at clusters 0,1,2 in the rig, so all three are admitted; a second
	// stream of obj0 is not.
	for i := 0; i < 3; i++ {
		if _, err := e.AddStream(r.object(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.AddStream(r.object(t, 0)); err == nil {
		t.Fatal("stream beyond reserve-adjusted capacity admitted")
	}
}

// At full load with no reserve, a failure forces the shift to drop local
// reads; when the chain wraps without finding capacity, streams are
// terminated — the paper's degradation of service. With one slot of
// reserve, the identical scenario is fully masked.
func TestIBReservePreventsDegradation(t *testing.T) {
	run := func(slots, reserve int) (hiccups int, terminations int) {
		r := newRig(t, 10, 5, 3, 8, layout.IntermixedParity)
		cfg := r.config()
		cfg.SlotsPerDisk = slots
		e, err := NewImprovedBandwidth(cfg, reserve)
		if err != nil {
			t.Fatal(err)
		}
		// Two streams of cluster-0-starting objects, admitted a cycle
		// apart: they alternate clusters in anti-phase with different
		// group rotations, so under failure the parity block lands on a
		// drive the other stream is using — otherwise the parity always
		// falls on the very drive the next cluster's group happens to
		// skip.
		if _, err := e.AddStream(r.object(t, 0)); err != nil {
			t.Fatal(err)
		}
		stepN(t, e, 1)
		if _, err := e.AddStream(r.object(t, 2)); err != nil {
			t.Fatal(err)
		}
		if err := e.FailDisk(0); err != nil {
			t.Fatal(err)
		}
		_, h, _ := runToCompletion(t, e, 100)
		return len(h), e.Terminations()
	}

	// No reserve, one slot per drive: the farm is saturated.
	h0, t0 := run(1, 0)
	if t0 == 0 {
		t.Errorf("saturated farm absorbed a failure without degradation (hiccups=%d)", h0)
	}
	// One spare slot per drive: fully masked.
	h1, t1 := run(2, 1)
	if h1 != 0 || t1 != 0 {
		t.Errorf("with reserve: hiccups=%d terminations=%d, want 0,0", h1, t1)
	}
}

// The victim chain itself: engineer a collision where the parity read
// must displace the next cluster's local read, which is then recovered
// from the cluster after that (Figure 8's cascading shift).
func TestIBShiftPropagatesRight(t *testing.T) {
	r := newRig(t, 15, 5, 3, 9, layout.IntermixedParity)
	cfg := r.config()
	cfg.SlotsPerDisk = 2
	e, err := NewImprovedBandwidth(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 3)
	for i := 0; i < 3; i++ {
		ids[i], err = e.AddStream(r.object(t, i))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := e.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	deliveries, hiccups, reports := runToCompletion(t, e, 100)
	if len(hiccups) != 0 || e.Terminations() != 0 {
		t.Fatalf("hiccups=%d terminations=%d, want 0,0", len(hiccups), e.Terminations())
	}
	for i, id := range ids {
		verifyStream(t, r, r.object(t, i), deliveries[id], nil)
	}
	// Reconstructions must cover every cluster-0 group the failed drive
	// participated in.
	recs := 0
	for _, rep := range reports {
		recs += rep.Reconstructions
	}
	if recs == 0 {
		t.Fatal("no reconstructions despite failure under load")
	}
}

var _ Simulator = (*ImprovedBandwidth)(nil)
