package schemes

import (
	"testing"

	"ftmm/internal/layout"
)

// One failure in EACH cluster simultaneously: the dedicated-parity
// schemes mask all of them (the paper: "Multiple disks can fail (as long
// as they aren't in the same parity group)").
func TestMultiClusterFailuresMaskedSR(t *testing.T) {
	r := newRig(t, 15, 5, 3, 9, layout.DedicatedParity)
	e, err := NewStreamingRAID(r.config())
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 3)
	for i := 0; i < 3; i++ {
		ids[i], err = e.AddStream(r.object(t, i))
		if err != nil {
			t.Fatal(err)
		}
	}
	// One drive per cluster: 1 (cluster 0), 7 (cluster 1), 12 (cluster 2).
	for _, d := range []int{1, 7, 12} {
		if err := e.FailDisk(d); err != nil {
			t.Fatal(err)
		}
	}
	deliveries, hiccups, _ := runToCompletion(t, e, 100)
	if len(hiccups) != 0 {
		t.Fatalf("three one-per-cluster failures caused hiccups: %v", hiccups)
	}
	for i, id := range ids {
		verifyStream(t, r, r.object(t, i), deliveries[id], nil)
	}
}

func TestMultiClusterFailuresMaskedSG(t *testing.T) {
	r := newRig(t, 15, 5, 3, 9, layout.DedicatedParity)
	e, err := NewStaggeredGroup(r.config())
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 3)
	early, _, _ := stepN(t, e, 0)
	for i := 0; i < 3; i++ {
		ids[i], err = e.AddStream(r.object(t, i))
		if err != nil {
			t.Fatal(err)
		}
		d, h, _ := stepN(t, e, 1)
		early = merge(early, d)
		if len(h) != 0 {
			t.Fatal("early hiccups")
		}
	}
	for _, d := range []int{0, 8, 13} {
		if err := e.FailDisk(d); err != nil {
			t.Fatal(err)
		}
	}
	deliveries, hiccups, _ := runToCompletion(t, e, 300)
	if len(hiccups) != 0 {
		t.Fatalf("hiccups: %v", hiccups)
	}
	all := merge(early, deliveries)
	for i, id := range ids {
		verifyStream(t, r, r.object(t, i), all[id], nil)
	}
}

// NC with two failures in different clusters and two buffer servers:
// both clusters transition (bounded losses), then run hiccup-free.
func TestNCTwoClustersDegraded(t *testing.T) {
	r := newRig(t, 15, 5, 3, 9, layout.DedicatedParity)
	cfg := r.config()
	e, err := NewNonClustered(cfg, AlternateSwitchover, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := e.AddStream(r.object(t, i)); err != nil {
			t.Fatal(err)
		}
		stepN(t, e, 1)
	}
	if err := e.FailDisk(2); err != nil { // cluster 0
		t.Fatal(err)
	}
	if err := e.FailDisk(6); err != nil { // cluster 1
		t.Fatal(err)
	}
	if !e.ClusterDegraded(0) || !e.ClusterDegraded(1) {
		t.Fatal("clusters not degraded")
	}
	if e.Degradations() != 0 {
		t.Fatal("two servers should cover two clusters")
	}
	_, hiccups, _ := runToCompletion(t, e, 400)
	// Each stream can lose at most one track per failed cluster in the
	// transition (alternate policy), plus slot-conflict victims.
	if len(hiccups) > 2*3*2 {
		t.Fatalf("transition losses %d exceed bound", len(hiccups))
	}
}

// IB's Achilles heel (§4): failures in ADJACENT clusters lose data — the
// groups whose data touches the first failed drive and whose parity sits
// on the second. Same-distance failures in NON-adjacent clusters are
// masked.
func TestIBAdjacentVsDistantClusterFailures(t *testing.T) {
	run := func(second int) (hiccups int) {
		r := newRig(t, 20, 5, 2, 12, layout.IntermixedParity)
		e, err := NewImprovedBandwidth(r.config(), 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := e.AddStream(r.object(t, i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.FailDisk(1); err != nil { // cluster 0 data
			t.Fatal(err)
		}
		if err := e.FailDisk(second); err != nil {
			t.Fatal(err)
		}
		_, h, _ := runToCompletion(t, e, 200)
		return len(h)
	}

	// Second failure in cluster 1 (parity home of cluster 0): the groups
	// whose data hits drive 1 and whose parity landed on the failed
	// cluster-1 drive cannot be reconstructed -> hiccups. The in-cluster
	// positions must differ: a group's parity position in cluster 1
	// equals the position it skips in cluster 0, so position-1 data and
	// position-1 parity never co-occur; drive 7 (position 2) collides
	// with drive 1 data on every group with index ≡ 2 (mod 5).
	adjacent := run(7)
	if adjacent == 0 {
		t.Fatal("adjacent-cluster double failure lost no data; the (2C-1) exposure should bite")
	}
	// With four clusters, a second failure two clusters away shares no
	// parity relationship with the first (cluster 0's parity home is 1,
	// cluster 2's is 3): fully masked.
	distant := run(12)
	if distant != 0 {
		t.Fatalf("distant-cluster failures lost %d tracks, want 0", distant)
	}
}
