package schemes

import (
	"testing"
	"time"

	"ftmm/internal/layout"
)

func TestSGConstructorValidation(t *testing.T) {
	r := newRig(t, 10, 5, 1, 4, layout.DedicatedParity)
	if _, err := NewStaggeredGroup(r.config()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	ib := newRig(t, 10, 5, 1, 4, layout.IntermixedParity)
	if _, err := NewStaggeredGroup(ib.config()); err == nil {
		t.Error("intermixed layout accepted")
	}
	bad := r.config()
	bad.Rate = 0
	if _, err := NewStaggeredGroup(bad); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestSGCycleTime(t *testing.T) {
	r := newRig(t, 10, 5, 1, 4, layout.DedicatedParity)
	e, _ := NewStaggeredGroup(r.config())
	// Tcyc = B/b0 = 50KB / 0.1875 MB/s = 266.7 ms — a quarter of SR's.
	secs := 0.05 / 0.1875
	want := time.Duration(secs * float64(time.Second))
	if d := e.CycleTime() - want; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("CycleTime = %v, want ~%v", e.CycleTime(), want)
	}
	// Budget = (266.7 - 25) / 20 = 12 tracks: fewer streams per disk than
	// SR's 52/4 = 13, the paper's "slight cost in disk bandwidth".
	if e.SlotsPerDisk() != 12 {
		t.Errorf("SlotsPerDisk = %d, want 12", e.SlotsPerDisk())
	}
	if e.Name() != "Staggered-group" {
		t.Error("name")
	}
}

func TestSGNoFailureDeliversEverything(t *testing.T) {
	r := newRig(t, 10, 5, 3, 8, layout.DedicatedParity)
	e, err := NewStaggeredGroup(r.config())
	if err != nil {
		t.Fatal(err)
	}
	// Stagger admissions across cycles (that is the scheme's point).
	ids := map[int]int{}
	collected, _, _ := stepN(t, e, 0)
	for i := 0; i < 3; i++ {
		id, err := e.AddStream(r.object(t, i))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		d, h, _ := stepN(t, e, 1)
		collected = merge(collected, d)
		if len(h) != 0 {
			t.Fatal("hiccups in normal operation")
		}
	}
	deliveries, hiccups, _ := runToCompletion(t, e, 200)
	if len(hiccups) != 0 {
		t.Fatalf("hiccups in normal operation: %v", hiccups)
	}
	all := merge(collected, deliveries)
	for i := 0; i < 3; i++ {
		verifyStream(t, r, r.object(t, i), all[ids[i]], nil)
	}
}

func TestSGDeliveryRateOneTrackPerCycle(t *testing.T) {
	r := newRig(t, 10, 5, 1, 6, layout.DedicatedParity)
	e, _ := NewStaggeredGroup(r.config())
	if _, err := e.AddStream(r.object(t, 0)); err != nil {
		t.Fatal(err)
	}
	_, _, reports := runToCompletion(t, e, 200)
	if len(reports[0].Delivered) != 0 {
		t.Errorf("cycle 0 delivered %d, want 0 (read only)", len(reports[0].Delivered))
	}
	for i := 1; i < len(reports); i++ {
		if got := len(reports[i].Delivered); got != 1 {
			t.Errorf("cycle %d delivered %d tracks, want 1 (k'=1)", i, got)
		}
	}
	// 6 groups x 4 tracks = 24 tracks over 24 cycles + 1 lead-in.
	if e.Cycle() != 25 {
		t.Errorf("completed at cycle %d, want 25", e.Cycle())
	}
}

func TestSGReadsEveryCMinusOneCycles(t *testing.T) {
	r := newRig(t, 10, 5, 1, 6, layout.DedicatedParity)
	e, _ := NewStaggeredGroup(r.config())
	if _, err := e.AddStream(r.object(t, 0)); err != nil {
		t.Fatal(err)
	}
	_, _, reports := runToCompletion(t, e, 200)
	for i, rep := range reports {
		wantReads := 0
		if i%4 == 0 && i < 24 {
			wantReads = 4 // one whole group: 4 data tracks
		}
		if rep.DataReads != wantReads {
			t.Errorf("cycle %d data reads = %d, want %d", i, rep.DataReads, wantReads)
		}
		if wantReads > 0 && rep.ParityReads != 1 {
			t.Errorf("cycle %d parity reads = %d, want 1", i, rep.ParityReads)
		}
	}
}

func TestSGSingleFailureMaskedBitForBit(t *testing.T) {
	for failed := 0; failed < 5; failed++ {
		r := newRig(t, 10, 5, 1, 8, layout.DedicatedParity)
		e, _ := NewStaggeredGroup(r.config())
		id, err := e.AddStream(r.object(t, 0))
		if err != nil {
			t.Fatal(err)
		}
		early, _, _ := stepN(t, e, 6) // mid-delivery of a group
		if err := e.FailDisk(failed); err != nil {
			t.Fatal(err)
		}
		deliveries, hiccups, _ := runToCompletion(t, e, 200)
		if len(hiccups) != 0 {
			t.Fatalf("drive %d: hiccups despite single failure: %v", failed, hiccups)
		}
		all := merge(early, deliveries)
		verifyStream(t, r, r.object(t, 0), all[id], nil)
	}
}

func TestSGBufferSawtooth(t *testing.T) {
	r := newRig(t, 10, 5, 1, 6, layout.DedicatedParity)
	e, _ := NewStaggeredGroup(r.config())
	if _, err := e.AddStream(r.object(t, 0)); err != nil {
		t.Fatal(err)
	}
	_, _, reports := runToCompletion(t, e, 200)
	// End-of-cycle occupancy pattern in steady state: 4,3,2,1 repeating
	// (C-1 data tracks after the read cycle, draining one per cycle).
	for i := 0; i+4 < len(reports)-1; i += 4 {
		wants := []int{4, 3, 2, 1}
		for j, w := range wants {
			if reports[i+j].BufferInUse != w {
				t.Errorf("cycle %d buffer = %d, want %d", i+j, reports[i+j].BufferInUse, w)
			}
		}
	}
	// Within-cycle peak: C+1 = 6 (paper's Figure 4 top of sawtooth).
	if e.BufferPeak() != 6 {
		t.Errorf("peak = %d, want 6 (= C+1)", e.BufferPeak())
	}
	if e.BufferInUse() != 0 {
		t.Errorf("buffers leaked: %d", e.BufferInUse())
	}
}

// Figure 4's aggregate claim: C-1 streams staggered one per phase peak at
// C(C+1)/2 tracks, roughly half of Streaming RAID's 2C(C-1) for the same
// four streams.
func TestSGAggregateBufferHalfOfSR(t *testing.T) {
	r := newRig(t, 10, 5, 4, 12, layout.DedicatedParity)
	sg, _ := NewStaggeredGroup(r.config())
	for i := 0; i < 4; i++ {
		if _, err := sg.AddStream(r.object(t, i)); err != nil {
			t.Fatal(err)
		}
		if _, err := sg.Step(); err != nil { // stagger phases
			t.Fatal(err)
		}
	}
	runToCompletion(t, sg, 300)
	if got, want := sg.BufferPeak(), 5*6/2; got != want {
		t.Errorf("SG aggregate peak = %d, want %d (= C(C+1)/2)", got, want)
	}

	r2 := newRig(t, 10, 5, 4, 12, layout.DedicatedParity)
	sr, _ := NewStreamingRAID(r2.config())
	for i := 0; i < 4; i++ {
		if _, err := sr.AddStream(r2.object(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	runToCompletion(t, sr, 300)
	if got, want := sr.BufferPeak(), 2*5*4; got != want {
		t.Errorf("SR aggregate peak = %d, want %d (= 2C x 4 streams)", got, want)
	}
	ratio := float64(sg.BufferPeak()) / float64(sr.BufferPeak())
	if ratio > 0.5 {
		t.Errorf("SG/SR buffer ratio = %.2f, want <= 0.5", ratio)
	}
}

func TestSGAdmissionLimitPerPhase(t *testing.T) {
	r := newRig(t, 10, 5, 4, 4, layout.DedicatedParity)
	cfg := r.config()
	cfg.SlotsPerDisk = 1
	e, err := NewStaggeredGroup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// obj0 and obj2 start on cluster 0. Same cycle => same phase: only
	// one fits.
	if _, err := e.AddStream(r.object(t, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddStream(r.object(t, 2)); err == nil {
		t.Fatal("second same-phase same-cluster stream admitted")
	}
	// Next cycle => next phase: now it fits.
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddStream(r.object(t, 2)); err != nil {
		t.Fatalf("different phase rejected: %v", err)
	}
}

var _ Simulator = (*StaggeredGroup)(nil)
