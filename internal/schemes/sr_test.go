package schemes

import (
	"testing"
	"time"

	"ftmm/internal/layout"
	"ftmm/internal/units"
)

func TestSRConstructorValidation(t *testing.T) {
	r := newRig(t, 10, 5, 1, 4, layout.DedicatedParity)
	cfg := r.config()
	if _, err := NewStreamingRAID(cfg); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := cfg
	bad.Rate = 0
	if _, err := NewStreamingRAID(bad); err == nil {
		t.Error("zero rate accepted")
	}
	bad = cfg
	bad.Farm = nil
	if _, err := NewStreamingRAID(bad); err == nil {
		t.Error("nil farm accepted")
	}
	// Wrong placement.
	ib := newRig(t, 10, 5, 1, 4, layout.IntermixedParity)
	if _, err := NewStreamingRAID(ib.config()); err == nil {
		t.Error("intermixed layout accepted")
	}
}

func TestSRCycleTimeAndSlots(t *testing.T) {
	r := newRig(t, 10, 5, 1, 4, layout.DedicatedParity)
	e, _ := NewStreamingRAID(r.config())
	// Tcyc = 4 * 50KB / 0.1875 MB/s = 1.0667 s.
	secs := 4 * 0.05 / 0.1875
	want := time.Duration(secs * float64(time.Second))
	if d := e.CycleTime() - want; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("CycleTime = %v, want ~%v", e.CycleTime(), want)
	}
	// Budget = (1066.7ms - 25ms) / 20ms = 52 tracks.
	if e.SlotsPerDisk() != 52 {
		t.Errorf("SlotsPerDisk = %d, want 52", e.SlotsPerDisk())
	}
	if e.Name() != "Streaming RAID" {
		t.Error("name")
	}
}

func TestSRNoFailureDeliversEverything(t *testing.T) {
	r := newRig(t, 10, 5, 3, 8, layout.DedicatedParity)
	e, err := NewStreamingRAID(r.config())
	if err != nil {
		t.Fatal(err)
	}
	var ids []int
	for i := 0; i < 3; i++ {
		id, err := e.AddStream(r.object(t, i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	deliveries, hiccups, _ := runToCompletion(t, e, 100)
	if len(hiccups) != 0 {
		t.Fatalf("hiccups in normal operation: %v", hiccups)
	}
	for i, id := range ids {
		verifyStream(t, r, r.object(t, i), deliveries[id], nil)
	}
	// 8 groups: read cycles 0..7, deliveries 1..8, done after cycle 8.
	if e.Cycle() != 9 {
		t.Errorf("completed at cycle %d, want 9", e.Cycle())
	}
}

func TestSRDeliveryRate(t *testing.T) {
	r := newRig(t, 10, 5, 1, 6, layout.DedicatedParity)
	e, _ := NewStreamingRAID(r.config())
	if _, err := e.AddStream(r.object(t, 0)); err != nil {
		t.Fatal(err)
	}
	_, _, reports := runToCompletion(t, e, 100)
	if len(reports[0].Delivered) != 0 {
		t.Errorf("cycle 0 delivered %d tracks, want 0", len(reports[0].Delivered))
	}
	for i := 1; i < len(reports); i++ {
		if got := len(reports[i].Delivered); got != 4 {
			t.Errorf("cycle %d delivered %d tracks, want 4 (k'=C-1)", i, got)
		}
	}
}

func TestSRSingleFailureMaskedBitForBit(t *testing.T) {
	// Fail each drive of cluster 0 in turn (data drives and the parity
	// drive); single failures must always be fully masked.
	for failed := 0; failed < 5; failed++ {
		r := newRig(t, 10, 5, 2, 8, layout.DedicatedParity)
		e, _ := NewStreamingRAID(r.config())
		id0, err := e.AddStream(r.object(t, 0))
		if err != nil {
			t.Fatal(err)
		}
		id1, err := e.AddStream(r.object(t, 1))
		if err != nil {
			t.Fatal(err)
		}
		early, earlyHiccups, earlyReports := stepN(t, e, 3)
		if len(earlyHiccups) != 0 {
			t.Fatal("hiccups before failure")
		}
		if err := e.FailDisk(failed); err != nil {
			t.Fatal(err)
		}
		deliveries, hiccups, reports := runToCompletion(t, e, 100)
		if len(hiccups) != 0 {
			t.Fatalf("drive %d: hiccups despite single failure: %v", failed, hiccups)
		}
		all := merge(early, deliveries)
		verifyStream(t, r, r.object(t, 0), all[id0], nil)
		verifyStream(t, r, r.object(t, 1), all[id1], nil)
		recs := 0
		for _, rep := range append(earlyReports, reports...) {
			recs += rep.Reconstructions
		}
		if failed == 4 && recs != 0 {
			t.Errorf("parity-drive failure should need no reconstruction, got %d", recs)
		}
		if failed < 4 && recs == 0 {
			t.Errorf("data-drive %d failure produced no reconstructions", failed)
		}
	}
}

func TestSRReconstructedFlagSet(t *testing.T) {
	r := newRig(t, 10, 5, 1, 8, layout.DedicatedParity)
	e, _ := NewStreamingRAID(r.config())
	id, _ := e.AddStream(r.object(t, 0))
	if err := e.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	deliveries, _, _ := runToCompletion(t, e, 100)
	recon := 0
	for _, d := range deliveries[id] {
		if d.Reconstructed {
			recon++
		}
	}
	// Drive 0 holds the first track of every cluster-0 group of obj0:
	// groups 0, 2, 4, 6 (two clusters round-robin) => 4 reconstructions.
	if recon != 4 {
		t.Errorf("reconstructed deliveries = %d, want 4", recon)
	}
}

func TestSRDoubleFailureCatastrophic(t *testing.T) {
	r := newRig(t, 10, 5, 1, 8, layout.DedicatedParity)
	e, _ := NewStreamingRAID(r.config())
	id, _ := e.AddStream(r.object(t, 0))
	if err := e.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	if err := e.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	deliveries, hiccups, _ := runToCompletion(t, e, 100)
	if len(hiccups) == 0 {
		t.Fatal("two failures in one cluster must cause hiccups")
	}
	// Hiccups are exactly the cluster-0 groups' tracks; delivered tracks
	// (cluster-1 groups) are still bit-exact.
	lost := map[int]bool{}
	for _, h := range hiccups {
		lost[h.Track] = true
	}
	verifyStream(t, r, r.object(t, 0), deliveries[id], lost)
	// Cluster-0 groups (0,2,4,6) each lose exactly the two tracks that
	// lived on the failed drives: 8 tracks total; the healthy drives'
	// tracks still deliver.
	if len(lost) != 8 {
		t.Errorf("lost %d distinct tracks, want 8", len(lost))
	}
}

func TestSRAdmissionLimit(t *testing.T) {
	r := newRig(t, 10, 5, 3, 4, layout.DedicatedParity)
	cfg := r.config()
	cfg.SlotsPerDisk = 2
	e, err := NewStreamingRAID(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// obj0 and obj2 both start on cluster 0 (i%2), obj1 on cluster 1.
	if _, err := e.AddStream(r.object(t, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddStream(r.object(t, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddStream(r.object(t, 0)); err == nil {
		t.Fatal("third stream on cluster 0 admitted beyond budget")
	}
	// Cluster 1 still has room.
	if _, err := e.AddStream(r.object(t, 1)); err != nil {
		t.Fatalf("cluster 1 admission failed: %v", err)
	}
}

func TestSRBufferAccounting(t *testing.T) {
	r := newRig(t, 10, 5, 1, 6, layout.DedicatedParity)
	e, _ := NewStreamingRAID(r.config())
	if _, err := e.AddStream(r.object(t, 0)); err != nil {
		t.Fatal(err)
	}
	_, _, reports := runToCompletion(t, e, 100)
	// Steady state end-of-cycle: one group staged (C tracks incl parity).
	for i := 0; i < len(reports)-1; i++ {
		if reports[i].BufferInUse != 5 {
			t.Errorf("cycle %d buffer = %d, want 5", i, reports[i].BufferInUse)
		}
	}
	// Within-cycle peak: 2C = 10 (group being read + group delivering).
	if e.BufferPeak() != 10 {
		t.Errorf("peak = %d, want 10 (= 2C)", e.BufferPeak())
	}
	// All buffers returned at the end.
	if e.BufferInUse() != 0 {
		t.Errorf("buffers leaked: %d in use after completion", e.BufferInUse())
	}
}

func TestSRFailDiskErrors(t *testing.T) {
	r := newRig(t, 10, 5, 1, 4, layout.DedicatedParity)
	e, _ := NewStreamingRAID(r.config())
	if err := e.FailDisk(99); err == nil {
		t.Error("bad drive id accepted")
	}
	if err := e.FailDisk(3); err != nil {
		t.Fatal(err)
	}
	if err := e.FailDisk(3); err == nil {
		t.Error("double failure accepted")
	}
}

func TestSRMidStreamAdmission(t *testing.T) {
	// Admit a second stream some cycles into the first; both finish
	// cleanly with full content.
	r := newRig(t, 10, 5, 2, 8, layout.DedicatedParity)
	e, _ := NewStreamingRAID(r.config())
	id0, _ := e.AddStream(r.object(t, 0))
	early, _, _ := stepN(t, e, 5)
	id1, err := e.AddStream(r.object(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	deliveries, hiccups, _ := runToCompletion(t, e, 100)
	if len(hiccups) != 0 {
		t.Fatal("hiccups")
	}
	all := merge(early, deliveries)
	verifyStream(t, r, r.object(t, 0), all[id0], nil)
	verifyStream(t, r, r.object(t, 1), all[id1], nil)
}

var _ Simulator = (*StreamingRAID)(nil)
var _ = units.MPEG1
