package schemes

import (
	"fmt"
	"sort"
	"testing"

	"ftmm/internal/disk"
	"ftmm/internal/diskmodel"
	"ftmm/internal/layout"
	"ftmm/internal/sched"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// figureRig builds the Figures 5-7 scenario: one farm of two clusters
// (C=5), four objects all starting on cluster 0, slot budget 1 per disk
// per cycle (each disk serves one track per cycle, as drawn).
func figureRig(t *testing.T, groups int) *rig {
	t.Helper()
	p := diskmodel.Table1()
	p.Capacity = units.ByteSize(groups*5+10) * p.TrackSize
	farm, err := disk.NewFarm(10, 5, p)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := layout.ForFarm(farm, layout.DedicatedParity)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{farm: farm, lay: lay, content: map[string][]byte{}}
	trackSize := int(p.TrackSize)
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("obj%d", i)
		tracks := groups * 4
		content := workload.SyntheticContent(id, tracks*trackSize)
		obj, err := lay.AddObject(id, tracks, 0, units.MPEG1)
		if err != nil {
			t.Fatal(err)
		}
		if err := layout.WriteObject(farm, obj, content); err != nil {
			t.Fatal(err)
		}
		r.content[id] = content
	}
	return r
}

func newNC(t *testing.T, r *rig, policy TransitionPolicy, k, slots int) *NonClustered {
	t.Helper()
	cfg := r.config()
	cfg.SlotsPerDisk = slots
	e, err := NewNonClustered(cfg, policy, k)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNCConstructorValidation(t *testing.T) {
	r := newRig(t, 10, 5, 1, 4, layout.DedicatedParity)
	if _, err := NewNonClustered(r.config(), SimpleSwitchover, 2); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	ib := newRig(t, 10, 5, 1, 4, layout.IntermixedParity)
	if _, err := NewNonClustered(ib.config(), SimpleSwitchover, 2); err == nil {
		t.Error("intermixed layout accepted")
	}
	if _, err := NewNonClustered(r.config(), TransitionPolicy(9), 2); err == nil {
		t.Error("bad policy accepted")
	}
	if _, err := NewNonClustered(r.config(), SimpleSwitchover, -1); err == nil {
		t.Error("negative K accepted")
	}
	if SimpleSwitchover.String() != "simple" || AlternateSwitchover.String() != "alternate" {
		t.Error("policy names")
	}
	if TransitionPolicy(9).String() != "TransitionPolicy(9)" {
		t.Error("unknown policy name")
	}
}

func TestNCNormalModeDelivery(t *testing.T) {
	r := newRig(t, 10, 5, 3, 6, layout.DedicatedParity)
	e, err := NewNonClustered(r.config(), SimpleSwitchover, 2)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 3)
	for i := 0; i < 3; i++ {
		id, err := e.AddStream(r.object(t, i))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	deliveries, hiccups, reports := runToCompletion(t, e, 100)
	if len(hiccups) != 0 {
		t.Fatalf("hiccups in normal mode: %v", hiccups)
	}
	for i, id := range ids {
		verifyStream(t, r, r.object(t, i), deliveries[id], nil)
	}
	// 24 tracks per stream, one per cycle, one lead-in cycle.
	if e.Cycle() != 25 {
		t.Errorf("completed at cycle %d, want 25", e.Cycle())
	}
	// Each stream delivers exactly one track per cycle from cycle 1.
	for i := 1; i < len(reports)-1; i++ {
		if got := len(reports[i].Delivered); got != 3 {
			t.Errorf("cycle %d delivered %d, want 3", i, got)
		}
	}
}

func TestNCNormalModeTwoBuffersPerStream(t *testing.T) {
	r := newRig(t, 10, 5, 2, 6, layout.DedicatedParity)
	e, _ := NewNonClustered(r.config(), SimpleSwitchover, 2)
	for i := 0; i < 2; i++ {
		if _, err := e.AddStream(r.object(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	runToCompletion(t, e, 100)
	// Within-cycle peak: 2 tracks per stream (one delivering, one being
	// read) => 4 total.
	if e.BufferPeak() != 4 {
		t.Errorf("peak = %d, want 4 (2 per stream)", e.BufferPeak())
	}
	if e.BufferInUse() != 0 {
		t.Errorf("buffers leaked: %d", e.BufferInUse())
	}
}

func TestNCParityDiskFailureHarmless(t *testing.T) {
	r := newRig(t, 10, 5, 2, 6, layout.DedicatedParity)
	e, _ := NewNonClustered(r.config(), SimpleSwitchover, 2)
	ids := make([]int, 2)
	for i := 0; i < 2; i++ {
		ids[i], _ = e.AddStream(r.object(t, i))
	}
	early, _, _ := stepN(t, e, 3)
	if err := e.FailDisk(4); err != nil { // cluster 0's parity drive
		t.Fatal(err)
	}
	deliveries, hiccups, _ := runToCompletion(t, e, 100)
	if len(hiccups) != 0 {
		t.Fatalf("parity-drive failure caused hiccups: %v", hiccups)
	}
	if e.ClusterDegraded(0) {
		t.Error("parity loss should not degrade the cluster")
	}
	all := merge(early, deliveries)
	for i, id := range ids {
		verifyStream(t, r, r.object(t, i), all[id], nil)
	}
}

// figureFailure reproduces the Figures 6/7 scenario: streams staggered at
// offsets 3,2,1,0 on cluster 0 when disk 2 fails. Returns per-object lost
// track sets and total hiccups, after running to completion.
func figureFailure(t *testing.T, policy TransitionPolicy) (map[string]map[int]bool, []sched.Hiccup, *rig, map[string]int, *NonClustered) {
	t.Helper()
	r := figureRig(t, 6)
	e := newNC(t, r, policy, 2, 1)
	// Admission order: U (cycle 0), W (1), Y (2), A (3).
	names := []string{"U", "W", "Y", "A"}
	ids := map[string]int{}
	collected := map[int][]sched.Delivery{}
	var allHiccups []sched.Hiccup
	for i, name := range names {
		id, err := e.AddStream(r.object(t, i))
		if err != nil {
			t.Fatalf("admitting %s: %v", name, err)
		}
		ids[name] = id
		if name == "A" {
			break // A is admitted just before the failure cycle
		}
		d, h, _ := stepN(t, e, 1)
		collected = merge(collected, d)
		allHiccups = append(allHiccups, h...)
	}
	if err := e.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	deliveries, hiccups, _ := runToCompletion(t, e, 200)
	collected = merge(collected, deliveries)
	allHiccups = append(allHiccups, hiccups...)

	lost := map[string]map[int]bool{}
	objOf := map[int]string{}
	for name, id := range ids {
		lost[name] = map[int]bool{}
		objOf[id] = name
	}
	for _, h := range allHiccups {
		lost[objOf[h.StreamID]][h.Track] = true
	}
	// Verify all delivered bytes, with losses excused.
	for i, name := range names {
		verifyStream(t, r, r.object(t, i), collected[ids[name]], lost[name])
	}
	return lost, allHiccups, r, ids, e
}

// Figure 6: the simple switchover loses 6 tracks — Y1,Y2,Y3 (stream one
// cycle into its group), W2,W3, and U3.
func TestNCFigure6SimpleSwitchover(t *testing.T) {
	lost, hiccups, _, _, e := figureFailure(t, SimpleSwitchover)
	if len(hiccups) != 6 {
		t.Fatalf("simple switchover lost %d tracks, want 6 (paper Fig 6): %v", len(hiccups), lost)
	}
	want := map[string][]int{"A": {}, "Y": {1, 2, 3}, "W": {2, 3}, "U": {3}}
	for name, tracks := range want {
		if len(lost[name]) != len(tracks) {
			t.Errorf("%s lost %v, want %v", name, keys(lost[name]), tracks)
			continue
		}
		for _, tr := range tracks {
			if !lost[name][tr] {
				t.Errorf("%s: track %d not lost; lost = %v", name, tr, keys(lost[name]))
			}
		}
	}
	if e.Degradations() != 0 {
		t.Error("unexpected degradation")
	}
}

// Figure 7: the alternate switchover loses only 3 tracks — Y2 and W2 to
// the failure itself, Y3 to the slot conflict with A's delayed
// reconstruction reads.
func TestNCFigure7AlternateSwitchover(t *testing.T) {
	lost, hiccups, _, _, _ := figureFailure(t, AlternateSwitchover)
	if len(hiccups) != 3 {
		t.Fatalf("alternate switchover lost %d tracks, want 3 (paper Fig 7): %v", len(hiccups), lost)
	}
	want := map[string][]int{"A": {}, "Y": {2, 3}, "W": {2}, "U": {}}
	for name, tracks := range want {
		if len(lost[name]) != len(tracks) {
			t.Errorf("%s lost %v, want %v", name, keys(lost[name]), tracks)
			continue
		}
		for _, tr := range tracks {
			if !lost[name][tr] {
				t.Errorf("%s: track %d not lost; lost = %v", name, tr, keys(lost[name]))
			}
		}
	}
}

func keys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// After the transition, later passes over the degraded cluster deliver
// everything (the figure tests already enforce this via verifyStream: the
// objects have 6 groups, so each stream crosses the degraded cluster two
// more times with zero losses). This test makes the claim explicit: all
// hiccups happen within C cycles of the failure.
func TestNCTransitionBounded(t *testing.T) {
	for _, policy := range []TransitionPolicy{SimpleSwitchover, AlternateSwitchover} {
		r := figureRig(t, 6)
		e := newNC(t, r, policy, 2, 1)
		for i := 0; i < 4; i++ {
			if _, err := e.AddStream(r.object(t, i)); err != nil {
				t.Fatal(err)
			}
			if i < 3 {
				stepN(t, e, 1)
			}
		}
		failCycle := e.Cycle()
		if err := e.FailDisk(2); err != nil {
			t.Fatal(err)
		}
		_, _, reports := runToCompletion(t, e, 200)
		for _, rep := range reports {
			if len(rep.Hiccups) > 0 && rep.Cycle >= failCycle+5 {
				t.Errorf("%v: hiccup at cycle %d, more than C cycles after failure at %d", policy, rep.Cycle, failCycle)
			}
		}
	}
}

// The alternate switchover never loses more than the simple one, across
// every failed-disk position.
func TestNCAlternateNeverWorse(t *testing.T) {
	for failedDisk := 0; failedDisk < 4; failedDisk++ {
		losses := map[TransitionPolicy]int{}
		for _, policy := range []TransitionPolicy{SimpleSwitchover, AlternateSwitchover} {
			r := figureRig(t, 6)
			e := newNC(t, r, policy, 2, 1)
			for i := 0; i < 4; i++ {
				if _, err := e.AddStream(r.object(t, i)); err != nil {
					t.Fatal(err)
				}
				if i < 3 {
					stepN(t, e, 1)
				}
			}
			if err := e.FailDisk(failedDisk); err != nil {
				t.Fatal(err)
			}
			_, hiccups, _ := runToCompletion(t, e, 200)
			losses[policy] = len(hiccups)
		}
		if losses[AlternateSwitchover] > losses[SimpleSwitchover] {
			t.Errorf("disk %d: alternate lost %d > simple %d", failedDisk,
				losses[AlternateSwitchover], losses[SimpleSwitchover])
		}
	}
}

// Reconstructed tracks must be flagged and the content must be bit-exact
// (already checked by verifyStream; here we check the flag shows up).
func TestNCDegradedModeReconstructs(t *testing.T) {
	for _, policy := range []TransitionPolicy{SimpleSwitchover, AlternateSwitchover} {
		r := figureRig(t, 6)
		e := newNC(t, r, policy, 2, 1)
		id, err := e.AddStream(r.object(t, 0))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.FailDisk(2); err != nil {
			t.Fatal(err)
		}
		deliveries, hiccups, _ := runToCompletion(t, e, 200)
		if len(hiccups) != 0 {
			t.Fatalf("%v: lone o=0 stream should lose nothing, got %v", policy, hiccups)
		}
		recon := 0
		for _, d := range deliveries[id] {
			if d.Reconstructed {
				recon++
			}
		}
		// Groups 0, 2, 4 are on cluster 0; each has one track on disk 2.
		if recon != 3 {
			t.Errorf("%v: reconstructed %d tracks, want 3", policy, recon)
		}
	}
}

// When every buffer server is busy, a further data-disk failure is a
// degradation of service: the failed drive's track hiccups on every pass.
func TestNCBufferServerExhaustion(t *testing.T) {
	r := figureRig(t, 6)
	e := newNC(t, r, SimpleSwitchover, 1, 1) // only one server
	id, err := e.AddStream(r.object(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.FailDisk(2); err != nil { // cluster 0: takes the server
		t.Fatal(err)
	}
	if err := e.FailDisk(6); err != nil { // cluster 1: no server left
		t.Fatal(err)
	}
	if e.Degradations() != 1 {
		t.Fatalf("degradations = %d, want 1", e.Degradations())
	}
	if !e.ClusterDegraded(1) {
		t.Fatal("cluster 1 not marked degraded")
	}
	deliveries, hiccups, _ := runToCompletion(t, e, 200)
	// Groups 1, 3, 5 are on cluster 1; disk 6 is its second data drive
	// (offset 1): one loss per pass, every pass.
	if len(hiccups) != 3 {
		t.Fatalf("unprotected cluster lost %d tracks, want 3 (one per pass)", len(hiccups))
	}
	lost := map[int]bool{}
	for _, h := range hiccups {
		lost[h.Track] = true
	}
	for _, tr := range []int{5, 13, 21} { // offset 1 of groups 1,3,5
		if !lost[tr] {
			t.Errorf("expected recurring loss of track %d; lost = %v", tr, keys(lost))
		}
	}
	verifyStream(t, r, r.object(t, 0), deliveries[id], lost)
}

// RepairDisk rebuilds the drive from parity, frees the buffer server, and
// restores hiccup-free normal operation.
func TestNCRepairDisk(t *testing.T) {
	r := figureRig(t, 10)
	e := newNC(t, r, SimpleSwitchover, 1, 1)
	id, err := e.AddStream(r.object(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	early, _, _ := stepN(t, e, 2)
	if err := e.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	mid, midHiccups, _ := stepN(t, e, 8)
	if err := e.RepairDisk(2); err != nil {
		t.Fatal(err)
	}
	if e.ClusterDegraded(0) {
		t.Fatal("cluster still degraded after repair")
	}
	// The freed server can protect another cluster.
	if err := e.FailDisk(6); err != nil {
		t.Fatal(err)
	}
	if e.Degradations() != 0 {
		t.Fatal("repair did not free the buffer server")
	}
	deliveries, hiccups, _ := runToCompletion(t, e, 300)
	all := merge(merge(early, mid), deliveries)
	lost := map[int]bool{}
	for _, h := range append(midHiccups, hiccups...) {
		lost[h.Track] = true
	}
	verifyStream(t, r, r.object(t, 0), all[id], lost)
}

func TestNCAdmission(t *testing.T) {
	r := figureRig(t, 4)
	e := newNC(t, r, SimpleSwitchover, 2, 1)
	if _, err := e.AddStream(r.object(t, 0)); err != nil {
		t.Fatal(err)
	}
	// Same cycle, same start position: rejected at slot budget 1.
	if _, err := e.AddStream(r.object(t, 1)); err == nil {
		t.Fatal("second stream at same position admitted")
	}
	stepN(t, e, 1)
	if _, err := e.AddStream(r.object(t, 1)); err != nil {
		t.Fatalf("staggered admission rejected: %v", err)
	}
}

var _ Simulator = (*NonClustered)(nil)
