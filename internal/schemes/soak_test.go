package schemes

import (
	"fmt"
	"math/rand"
	"testing"

	"ftmm/internal/layout"
	"ftmm/internal/trace"
)

// The soak test drives every scheme through randomized failure/repair
// schedules and asserts the paper's hard guarantees hold throughout:
// every delivered byte is exactly the stored byte (reconstruction never
// fabricates data), streams never stall or reorder, nothing leaks, and
// the schemes that promise zero hiccups under single failures keep that
// promise.
func TestSoakRandomFailures(t *testing.T) {
	type build func(r *rig) (Simulator, error)
	cases := []struct {
		name        string
		placement   layout.Placement
		build       build
		allowHiccup bool // NC may lose tracks in transitions
	}{
		{"StreamingRAID", layout.DedicatedParity, func(r *rig) (Simulator, error) {
			return NewStreamingRAID(r.config())
		}, false},
		{"StaggeredGroup", layout.DedicatedParity, func(r *rig) (Simulator, error) {
			return NewStaggeredGroup(r.config())
		}, false},
		{"NonClusteredSimple", layout.DedicatedParity, func(r *rig) (Simulator, error) {
			return NewNonClustered(r.config(), SimpleSwitchover, 4)
		}, true},
		{"NonClusteredAlternate", layout.DedicatedParity, func(r *rig) (Simulator, error) {
			return NewNonClustered(r.config(), AlternateSwitchover, 4)
		}, true},
		{"ImprovedBandwidth", layout.IntermixedParity, func(r *rig) (Simulator, error) {
			cfg := r.config()
			return NewImprovedBandwidth(cfg, 4)
		}, false},
	}
	for _, tc := range cases {
		for seed := int64(0); seed < 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				soakOnce(t, seed, tc.placement, tc.build, tc.allowHiccup)
			})
		}
	}
}

func soakOnce(t *testing.T, seed int64, placement layout.Placement, build func(*rig) (Simulator, error), allowHiccup bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const nObjects, groups = 6, 30
	r := newRig(t, 20, 5, nObjects, groups, placement)
	e, err := build(r)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := trace.NewRecorder(r.content, int(r.farm.Params().TrackSize))
	if err != nil {
		t.Fatal(err)
	}

	streams := map[int]string{}
	for i := 0; i < nObjects; i++ {
		obj := r.object(t, i)
		id, err := e.AddStream(obj)
		if err != nil {
			t.Fatalf("admitting stream %d: %v", i, err)
		}
		streams[id] = obj.ID
		// Stagger: one admission per cycle.
		rep, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		rec.Observe(rep)
	}

	// Randomized failure/repair schedule: at most one failed drive at a
	// time (the single-failure regime every scheme must tolerate).
	failedDrive := -1
	failures, repairs := 0, 0
	for cycle := 0; e.Active() > 0 && cycle < 5000; cycle++ {
		switch {
		case failedDrive < 0 && rng.Intn(10) == 0:
			failedDrive = rng.Intn(r.farm.Size())
			if err := e.FailDisk(failedDrive); err != nil {
				t.Fatal(err)
			}
			failures++
		case failedDrive >= 0 && rng.Intn(12) == 0:
			if err := repairDrive(e, r, failedDrive); err != nil {
				t.Fatalf("repairing drive %d: %v", failedDrive, err)
			}
			failedDrive = -1
			repairs++
		}
		rep, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		rec.Observe(rep)
		if len(rep.Terminated) > 0 {
			t.Fatalf("cycle %d: streams terminated under single-failure regime: %v", rep.Cycle, rep.Terminated)
		}
	}
	if e.Active() != 0 {
		t.Fatal("streams still active after soak bound")
	}
	if failures == 0 {
		t.Fatal("soak injected no failures; lower the odds")
	}

	// Hard guarantees.
	if err := rec.VerifyIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
	if err := rec.VerifyContinuity(); err != nil {
		t.Fatalf("continuity: %v", err)
	}
	if err := rec.VerifyComplete(streams); err != nil {
		t.Fatalf("completeness: %v", err)
	}
	sum := rec.Summarize()
	if !allowHiccup && sum.Hiccups != 0 {
		t.Fatalf("%d hiccups despite full masking scheme (failures=%d repairs=%d): %+v",
			sum.Hiccups, failures, repairs, rec.Hiccups())
	}
	if allowHiccup {
		// NC may lose at most C-1 tracks per stream per transition.
		bound := failures * 5 * len(streams)
		if sum.Hiccups > bound {
			t.Fatalf("hiccups %d exceed transition bound %d", sum.Hiccups, bound)
		}
	}
	if sum.Reconstructed == 0 && failures > 0 && sum.Hiccups == 0 {
		// Failures occurred, nothing lost: reconstruction must have
		// happened somewhere (unless only parity drives failed — too
		// unlikely across 3 seeds to ignore silently).
		t.Log("note: no reconstructions recorded (all failures on parity drives?)")
	}
	if leak := bufferInUse(e); leak != 0 {
		t.Fatalf("buffer leak: %d tracks still held", leak)
	}
}

// repairDrive uses the engine's own repair when it has one (NC must
// release its buffer server) and a plain replace+rebuild otherwise.
func repairDrive(e Simulator, r *rig, id int) error {
	if nc, ok := e.(*NonClustered); ok {
		return nc.RepairDisk(id)
	}
	drv, err := r.farm.Drive(id)
	if err != nil {
		return err
	}
	if err := drv.Replace(); err != nil {
		return err
	}
	return layout.RebuildDrive(r.farm, r.lay, id)
}

// bufferInUse reads the current occupancy off any engine.
func bufferInUse(e Simulator) int {
	switch v := e.(type) {
	case *StreamingRAID:
		return v.BufferInUse()
	case *StaggeredGroup:
		return v.BufferInUse()
	case *NonClustered:
		return v.BufferInUse()
	case *ImprovedBandwidth:
		return v.BufferInUse()
	default:
		return 0
	}
}
