package schemes

import (
	"fmt"
	"testing"

	"ftmm/internal/disk"
	"ftmm/internal/diskmodel"
	"ftmm/internal/layout"
	"ftmm/internal/units"
	"ftmm/internal/workload"
)

// partialRig places objects whose track count is NOT a multiple of C-1,
// so every engine must handle a short (padded) final group, including
// through degraded-mode reconstruction.
func partialRig(t *testing.T, placement layout.Placement, tracks int) *rig {
	t.Helper()
	p := diskmodel.Table1()
	p.Capacity = units.ByteSize(tracks*2+40) * p.TrackSize
	farm, err := disk.NewFarm(10, 5, p)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := layout.ForFarm(farm, placement)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{farm: farm, lay: lay, content: map[string][]byte{}}
	trackSize := int(p.TrackSize)
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("obj%d", i)
		content := workload.SyntheticContent(id, tracks*trackSize-trackSize/3) // partial last track too
		obj, err := lay.AddObject(id, tracks, 0, units.MPEG1)
		if err != nil {
			t.Fatal(err)
		}
		if err := layout.WriteObject(farm, obj, content); err != nil {
			t.Fatal(err)
		}
		// Pad recorded content to whole tracks for verification.
		padded := make([]byte, tracks*trackSize)
		copy(padded, content)
		r.content[id] = padded
	}
	return r
}

// Every engine must deliver an object with a short final group
// bit-exactly, before and after a failure.
func TestPartialFinalGroupAllSchemes(t *testing.T) {
	const tracks = 10 // 2.5 groups at C=5
	cases := []struct {
		name  string
		build func(r *rig) (Simulator, error)
		place layout.Placement
	}{
		{"SR", func(r *rig) (Simulator, error) { return NewStreamingRAID(r.config()) }, layout.DedicatedParity},
		{"SG", func(r *rig) (Simulator, error) { return NewStaggeredGroup(r.config()) }, layout.DedicatedParity},
		{"NCsimple", func(r *rig) (Simulator, error) {
			cfg := r.config()
			cfg.SlotsPerDisk = 4
			return NewNonClustered(cfg, SimpleSwitchover, 2)
		}, layout.DedicatedParity},
		{"NCalternate", func(r *rig) (Simulator, error) {
			cfg := r.config()
			cfg.SlotsPerDisk = 4
			return NewNonClustered(cfg, AlternateSwitchover, 2)
		}, layout.DedicatedParity},
		{"IB", func(r *rig) (Simulator, error) { return NewImprovedBandwidth(r.config(), 2) }, layout.IntermixedParity},
	}
	for _, tc := range cases {
		for failDisk := -1; failDisk < 4; failDisk++ {
			t.Run(fmt.Sprintf("%s/fail%d", tc.name, failDisk), func(t *testing.T) {
				r := partialRig(t, tc.place, tracks)
				e, err := tc.build(r)
				if err != nil {
					t.Fatal(err)
				}
				id, err := e.AddStream(r.object(t, 0))
				if err != nil {
					t.Fatal(err)
				}
				if failDisk >= 0 {
					if err := e.FailDisk(failDisk); err != nil {
						t.Fatal(err)
					}
				}
				deliveries, hiccups, _ := runToCompletion(t, e, 300)
				lost := map[int]bool{}
				for _, h := range hiccups {
					lost[h.Track] = true
				}
				// The only scheme allowed to lose anything here is NC,
				// and only... with the stream at a group boundary at
				// failure time even NC loses nothing.
				if len(hiccups) != 0 {
					t.Fatalf("hiccups on o=0 failure: %v", hiccups)
				}
				verifyStream(t, r, r.object(t, 0), deliveries[id], lost)
			})
		}
	}
}

// A padded final group must also survive being the site of the NC
// degraded transition (the failed track inside the padding region must
// not surface as a stream hiccup).
func TestPartialFinalGroupNCTransition(t *testing.T) {
	for _, policy := range []TransitionPolicy{SimpleSwitchover, AlternateSwitchover} {
		r := partialRig(t, layout.DedicatedParity, 10)
		cfg := r.config()
		cfg.SlotsPerDisk = 4
		e, err := NewNonClustered(cfg, policy, 2)
		if err != nil {
			t.Fatal(err)
		}
		id, err := e.AddStream(r.object(t, 0))
		if err != nil {
			t.Fatal(err)
		}
		// Walk the stream into its final (short) group: groups 0 and 1
		// take 8 delivery cycles; position it mid-final-group.
		early, earlyHiccups, _ := stepN(t, e, 10)
		if len(earlyHiccups) != 0 {
			t.Fatal("hiccups before failure")
		}
		// The final group lives on cluster 0 (group 2): fail disk 3 —
		// its track is padding (group 2 holds tracks 8,9 + padding).
		if err := e.FailDisk(3); err != nil {
			t.Fatal(err)
		}
		deliveries, hiccups, _ := runToCompletion(t, e, 300)
		lost := map[int]bool{}
		for _, h := range hiccups {
			if h.Track >= 10 {
				t.Fatalf("%v: hiccup reported for padding track %d", policy, h.Track)
			}
			lost[h.Track] = true
		}
		all := merge(early, deliveries)
		verifyStream(t, r, r.object(t, 0), all[id], lost)
	}
}
