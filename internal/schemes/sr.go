package schemes

import (
	"fmt"
	"time"

	"ftmm/internal/buffer"
	"ftmm/internal/layout"
	"ftmm/internal/sched"
)

// StreamingRAID is the §2 baseline engine: for every active stream, every
// cycle, one entire parity group (C-1 data tracks plus parity, one track
// from each drive of one cluster) is read, and the group read in the
// previous cycle is delivered. Because the parity block is always in
// memory together with its group, any single drive failure per cluster is
// masked with zero hiccups, whenever it strikes.
type StreamingRAID struct {
	cfg          Config
	slotsPerDisk int
	cycle        int
	nextID       int
	streams      []*srStream
	pool         *buffer.Pool
}

type srStream struct {
	sched.Stream
	// nextGroup is the next parity-group index to read.
	nextGroup int
	// staged is the group read this cycle; delivering is the group read
	// last cycle, owed to the client this cycle.
	staged     *bufferedGroup
	delivering *bufferedGroup
}

// NewStreamingRAID builds the engine. The layout must use dedicated
// parity placement.
func NewStreamingRAID(cfg Config) (*StreamingRAID, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Layout.Placement() != layout.DedicatedParity {
		return nil, fmt.Errorf("schemes: Streaming RAID needs dedicated parity, got %v", cfg.Layout.Placement())
	}
	slots, err := cfg.slotsFor(cfg.Layout.GroupWidth())
	if err != nil {
		return nil, err
	}
	return &StreamingRAID{cfg: cfg, slotsPerDisk: slots, pool: newPool()}, nil
}

// Name implements Simulator.
func (e *StreamingRAID) Name() string { return "Streaming RAID" }

// Cycle implements Simulator.
func (e *StreamingRAID) Cycle() int { return e.cycle }

// CycleTime implements Simulator: Tcyc = (C-1)·B/b0.
func (e *StreamingRAID) CycleTime() time.Duration {
	return e.cfg.Farm.Params().CycleTime(e.cfg.Layout.GroupWidth(), e.cfg.Rate)
}

// SlotsPerDisk returns the per-disk per-cycle track budget in use.
func (e *StreamingRAID) SlotsPerDisk() int { return e.slotsPerDisk }

// Active implements Simulator.
func (e *StreamingRAID) Active() int {
	n := 0
	for _, s := range e.streams {
		if !s.Done && !s.Terminated {
			n++
		}
	}
	return n
}

// BufferPeak implements Simulator.
func (e *StreamingRAID) BufferPeak() int { return e.pool.Peak() }

// BufferInUse returns the current buffer occupancy in tracks.
func (e *StreamingRAID) BufferInUse() int { return e.pool.InUse() }

// clusterLoad counts the streams whose next read is on each cluster.
func (e *StreamingRAID) clusterLoad() []int {
	load := make([]int, e.cfg.Layout.Clusters())
	for _, s := range e.streams {
		if s.Done || s.Terminated || s.nextGroup >= len(s.Obj.Groups) {
			continue
		}
		load[s.Obj.Groups[s.nextGroup].Cluster]++
	}
	return load
}

// AddStream implements Simulator. A stream consumes one track read on
// every drive of its current cluster each cycle, and every active stream
// advances one cluster per cycle, so per-cluster stream counts are
// invariant over time: admission only needs the start cluster's current
// count to be under the per-disk budget.
func (e *StreamingRAID) AddStream(obj *layout.Object) (int, error) {
	start := obj.Groups[0].Cluster
	if e.clusterLoad()[start] >= e.slotsPerDisk {
		return 0, fmt.Errorf("schemes: cluster %d is at its %d-stream capacity", start, e.slotsPerDisk)
	}
	id := e.nextID
	e.nextID++
	e.streams = append(e.streams, &srStream{Stream: sched.Stream{ID: id, Obj: obj}})
	return id, nil
}

// CancelStream stops serving a stream immediately (a client hanging
// up); its buffers are returned. It is not a degradation event.
func (e *StreamingRAID) CancelStream(id int) error {
	for _, s := range e.streams {
		if s.ID != id {
			continue
		}
		if s.Done || s.Terminated {
			return fmt.Errorf("schemes: stream %d is not active", id)
		}
		s.Done = true
		for _, bg := range []*bufferedGroup{s.staged, s.delivering} {
			if bg != nil && bg.pooled > 0 {
				if err := e.pool.Release(bg.pooled); err != nil {
					return err
				}
				bg.pooled = 0
			}
		}
		s.staged, s.delivering = nil, nil
		return nil
	}
	return fmt.Errorf("schemes: no stream %d", id)
}

// FailDisk implements Simulator.
func (e *StreamingRAID) FailDisk(id int) error {
	drv, err := e.cfg.Farm.Drive(id)
	if err != nil {
		return err
	}
	return drv.Fail()
}

// Step implements Simulator.
func (e *StreamingRAID) Step() (*sched.CycleReport, error) {
	rep := &sched.CycleReport{Cycle: e.cycle}
	slots, err := sched.NewSlots(e.cfg.Farm.Size(), e.slotsPerDisk)
	if err != nil {
		return nil, err
	}

	// Read phase: each active stream reads its next whole parity group.
	for _, s := range e.streams {
		if s.Done || s.Terminated || s.nextGroup >= len(s.Obj.Groups) {
			continue
		}
		g := &s.Obj.Groups[s.nextGroup]
		s.nextGroup++
		staged := &bufferedGroup{group: g, data: make([][]byte, len(g.Data)), reconstructed: make([]bool, len(g.Data))}
		// One slot on every drive of the group's cluster; failed drives
		// keep their slot (the arm is still scheduled) but yield nothing.
		ok := true
		for _, loc := range g.Data {
			if !slots.Take(loc.Disk) {
				ok = false
			}
		}
		if !slots.Take(g.Parity.Disk) {
			ok = false
		}
		if ok {
			gr := readGroup(e.cfg.Farm, g, true)
			rep.DataReads += gr.dataReads
			rep.ParityReads += gr.parityReads
			if rec, recErr := gr.recoverGroup(); recErr == nil && rec >= 0 {
				staged.reconstructed[rec] = true
				rep.Reconstructions++
			}
			staged.data = gr.data
			staged.pooled = len(g.Data) + 1
			if err := e.pool.Acquire(staged.pooled); err != nil {
				return nil, err
			}
		}
		// When !ok (over-admission under a manual SlotsPerDisk override)
		// the group stays empty and hiccups at delivery.
		s.staged = staged
	}

	// Delivery phase: groups read in the previous cycle go out now.
	for _, s := range e.streams {
		if s.Terminated || s.Done {
			continue
		}
		bg := s.delivering
		s.delivering, s.staged = s.staged, nil
		if bg == nil {
			continue
		}
		width := len(bg.group.Data)
		base := bg.group.Index * width
		for off := 0; off < bg.group.ValidTracks; off++ {
			if bg.data[off] == nil {
				rep.Hiccups = append(rep.Hiccups, sched.Hiccup{
					StreamID: s.ID, ObjectID: s.Obj.ID, Track: base + off,
					Reason: "parity group unrecoverable",
				})
				continue
			}
			rep.Delivered = append(rep.Delivered, sched.Delivery{
				StreamID: s.ID, ObjectID: s.Obj.ID, Track: base + off,
				Data: bg.data[off], Reconstructed: bg.reconstructed[off],
			})
		}
		if bg.pooled > 0 {
			if err := e.pool.Release(bg.pooled); err != nil {
				return nil, err
			}
		}
		s.Advance(bg.group.ValidTracks)
		if s.Done {
			rep.Finished = append(rep.Finished, s.ID)
		}
	}

	rep.BufferInUse = e.pool.InUse()
	e.cycle++
	return rep, nil
}
