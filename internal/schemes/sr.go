package schemes

import (
	"fmt"
	"time"

	"ftmm/internal/layout"
	"ftmm/internal/sched"
)

// StreamingRAID is the §2 baseline engine: for every active stream, every
// cycle, one entire parity group (C-1 data tracks plus parity, one track
// from each drive of one cluster) is read, and the group read in the
// previous cycle is delivered. Because the parity block is always in
// memory together with its group, any single drive failure per cluster is
// masked with zero hiccups, whenever it strikes.
type StreamingRAID struct {
	engineCore
	streams []*groupStream
}

// NewStreamingRAID builds the engine. The layout must use dedicated
// parity placement.
func NewStreamingRAID(cfg Config) (*StreamingRAID, error) {
	if cfg.Layout != nil && cfg.Layout.Placement() != layout.DedicatedParity {
		return nil, fmt.Errorf("schemes: Streaming RAID needs dedicated parity, got %v", cfg.Layout.Placement())
	}
	core, err := newEngineCore(cfg, cfg.Layout.GroupWidth())
	if err != nil {
		return nil, err
	}
	return &StreamingRAID{engineCore: core}, nil
}

// Name implements Simulator.
func (e *StreamingRAID) Name() string { return "Streaming RAID" }

// CycleTime implements Simulator: Tcyc = (C-1)·B/b0.
func (e *StreamingRAID) CycleTime() time.Duration {
	return e.cfg.Farm.Params().CycleTime(e.cfg.Layout.GroupWidth(), e.cfg.Rate)
}

// Active implements Simulator.
func (e *StreamingRAID) Active() int { return activeCount(e.streams) }

// StreamProgress reports the next track owed to the stream and its
// object's total tracks; ok is false for unknown streams.
func (e *StreamingRAID) StreamProgress(id int) (next, total int, ok bool) {
	return streamProgress(e.streams, id)
}

// AddStream implements Simulator. A stream consumes one track read on
// every drive of its current cluster each cycle, and every active stream
// advances one cluster per cycle, so per-cluster stream counts are
// invariant over time: admission only needs the start cluster's current
// count to be under the per-disk budget.
func (e *StreamingRAID) AddStream(obj *layout.Object) (int, error) {
	return e.AddStreamAt(obj, 0)
}

// AddStreamAt admits a stream whose delivery begins at the given parity
// group instead of the title's start — the session-resume seam cluster
// failover rides on. A stream started at group g is indistinguishable
// from one admitted earlier that has advanced to g, so the per-cluster
// admission invariant is unchanged; only the start cluster moves.
func (e *StreamingRAID) AddStreamAt(obj *layout.Object, startGroup int) (int, error) {
	if err := checkStartGroup(obj, startGroup); err != nil {
		return 0, err
	}
	start := obj.Groups[startGroup].Cluster
	if e.groupClusterLoad(e.streams)[start] >= e.slotsPerDisk {
		return 0, fmt.Errorf("schemes: cluster %d is at its %d-stream capacity", start, e.slotsPerDisk)
	}
	id := e.allocStreamID()
	e.streams = append(e.streams, &groupStream{
		Stream:    sched.Stream{ID: id, Obj: obj, NextDeliver: startGroup * e.cfg.Layout.GroupWidth()},
		nextGroup: startGroup,
	})
	return id, nil
}

// CancelStream stops serving a stream immediately (a client hanging
// up); its buffers are returned. It is not a degradation event.
func (e *StreamingRAID) CancelStream(id int) error {
	return e.cancelGroupStream(e.streams, id)
}

// SetStreamRate sets a stream's playback multiplier (1 = normal, r > 1
// = fast-forward reading r parity groups per cycle). Raising the rate
// re-runs the admission argument and fails wrapping ErrCapacity when
// the extra ceil(r/clusters) per-cluster draw would not fit; lowering
// it always succeeds.
func (e *StreamingRAID) SetStreamRate(id, rate int) error {
	return e.setGroupStreamRate(e.streams, id, rate)
}

// WeightedActive sums max(rate,1) over active streams — the true
// per-cycle k′ draw the admission bound constrains under fast-forward.
func (e *StreamingRAID) WeightedActive() int { return weightedActive(e.streams) }

// Step implements Simulator.
func (e *StreamingRAID) Step() (*sched.CycleReport, error) {
	ctx, err := e.beginCycle()
	if err != nil {
		return nil, err
	}

	// Read phase: each active stream reads its next whole parity group.
	// A stream's reads stay on one cluster this cycle, so clusters are
	// independent and run on the worker pool; the buffer pool only grows
	// during this phase, keeping its peak worker-count-independent.
	// Streams staging the same group this cycle (the Zipf head: many
	// viewers of one hot title in lockstep) share one physical read via
	// the per-cluster stage cache; see stageGroup for why reports stay
	// bit-identical to the unmerged path.
	merge := !e.cfg.DisableMergedReads
	if merge {
		e.ensureStageCaches()
	}
	plan := e.groupReadPlan(e.streams, nil)
	if err := e.runClusters(ctx, func(shard *sched.CycleContext, cl int) error {
		var cache map[*layout.Group]*bufferedGroup
		if merge && len(plan[cl]) > 1 {
			cache = e.stageCacheFor(cl)
		}
		for _, ent := range plan[cl] {
			staged, err := e.stageGroup(shard, ent.g, cache)
			if err != nil {
				return err
			}
			if ent.slot < 0 {
				ent.s.staged = staged
			} else {
				ent.s.stagedExtra[ent.slot] = staged
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Delivery phase: groups read in the previous cycle go out now.
	if err := e.deliverDouble(ctx, e.streams, "parity group unrecoverable"); err != nil {
		return nil, err
	}

	return e.endCycle(ctx), nil
}
