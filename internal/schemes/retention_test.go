package schemes

import (
	"bytes"
	"testing"

	"ftmm/internal/layout"
	"ftmm/internal/sched"
)

// TestReportRetentionNeedsClone pins the buffer ownership contract from
// the package doc: a CycleReport and the Data it references are valid
// only until the second-next Step, because the engine recycles delivery
// buffers through its arena. A caller that retains reports across
// cycles must Clone them — and a Clone must stay intact even when the
// original's buffers are recycled and scribbled over.
func TestReportRetentionNeedsClone(t *testing.T) {
	r := newRig(t, 8, 4, 1, 4, layout.DedicatedParity)
	e, err := NewStreamingRAID(r.config())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddStream(r.object(t, 0)); err != nil {
		t.Fatal(err)
	}

	// The first cycle only reads ahead; step until delivery starts.
	var rep *sched.CycleReport
	for i := 0; i < 4 && (rep == nil || len(rep.Delivered) == 0); i++ {
		var err error
		if rep, err = e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if len(rep.Delivered) == 0 {
		t.Fatal("no deliveries within the warmup window")
	}
	clone := rep.Clone()
	want := make(map[int][]byte, len(rep.Delivered))
	for _, d := range rep.Delivered {
		want[d.Track] = append([]byte(nil), d.Data...)
	}

	// Simulate the use-after-free: scribble over the recycled buffers the
	// original report still points at, then keep stepping so the engine
	// reuses its report backing arrays too.
	for i := range rep.Delivered {
		for j := range rep.Delivered[i].Data {
			rep.Delivered[i].Data[j] = 0xEE
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}

	if len(clone.Delivered) != len(want) {
		t.Fatalf("clone lost deliveries: %d, want %d", len(clone.Delivered), len(want))
	}
	for _, d := range clone.Delivered {
		if !bytes.Equal(d.Data, want[d.Track]) {
			t.Errorf("clone track %d corrupted by buffer recycling", d.Track)
		}
	}
}

// TestReportBackingReused documents why retention without Clone is
// unsafe — and pins the exact window. The engine ping-pongs between two
// CycleReport structs: consecutive Steps hand out different structs
// (cycle N's report survives cycle N+1's assembly, which is what the
// pipelined front end stages from), but the second-next Step reuses the
// first struct, so a pointer retained that long silently shows the
// newest cycle's contents.
func TestReportBackingReused(t *testing.T) {
	r := newRig(t, 8, 4, 1, 4, layout.DedicatedParity)
	e, err := NewStreamingRAID(r.config())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddStream(r.object(t, 0)); err != nil {
		t.Fatal(err)
	}
	step := func() *sched.CycleReport {
		rep, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	first, second, third := step(), step(), step()
	if first == second {
		t.Fatal("consecutive Steps returned the same report struct; the double-buffer window is gone")
	}
	if first != third {
		t.Skip("engine no longer rotates two report structs; retention rule may be relaxed")
	}
	if first.Cycle != third.Cycle {
		t.Errorf("aliased reports disagree on cycle: %d vs %d", first.Cycle, third.Cycle)
	}
}
